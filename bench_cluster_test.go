// Fleet-scale cluster benchmark: the BenchMix tiny-job mix dispatched on
// one shared platform at N = 4, 16, 64, 128 tenants, written
// machine-readably to BENCH_cluster.json:
//
//	go test -run '^$' -bench BenchmarkCluster .
//
// Three series share the artifact:
//
//   - fleet: per-N wall-clock and dispatches/sec, cold (empty result
//     cache) vs warm (fresh Cache instance over the same directory, so
//     every hit pays the disk load + integrity check), plus an
//     end-to-end heap-vs-scan pair proven byte-identical before either
//     timing is trusted.
//   - pick: the dispatch-selection microbenchmark — ns per pick for the
//     production heap vs the linear-scan reference on synthetic tenants,
//     simulation excluded. End-to-end times are dominated by Step(), so
//     this is the series the CI heap-vs-scan floor gates at N >= 64.
//   - router: the M=4 routed fan-out at workers=1 vs workers=4 — the
//     scheduler-level scaling number (gated on multi-core runners only).
package cachedarrays

import (
	"container/heap"
	"encoding/json"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"cachedarrays/internal/cluster"
	"cachedarrays/internal/engine"
	"cachedarrays/internal/sched"
	"cachedarrays/internal/units"
)

// clusterBenchConfig is the shared platform every fleet row runs on: a
// deliberately tight fast tier, so at fleet scale the tenants genuinely
// contend — eviction and movement churn is what makes the cold pass cost
// real simulation time (and the cache worth having).
var clusterBenchConfig = engine.Config{
	FastCapacity: 16 * units.MB,
	SlowCapacity: 2 * units.GB,
	Iterations:   24,
}

type clusterBenchResult struct {
	GOMAXPROCS int                `json:"gomaxprocs"`
	Fleet      []fleetPoint       `json:"fleet"`
	Pick       []pickPoint        `json:"pick"`
	Router     routerScalingPoint `json:"router"`
}

type fleetPoint struct {
	Tenants    int `json:"tenants"`
	Dispatches int `json:"dispatches"`
	// HeapSeconds/ScanSeconds are fresh uncached simulations through the
	// production heap dispatcher and the linear-scan reference;
	// Identical records that the two results were reflect.DeepEqual
	// before either timing was reported.
	HeapSeconds    float64 `json:"heap_s"`
	ScanSeconds    float64 `json:"scan_s"`
	HeapVsScanX    float64 `json:"heap_vs_scan_x"`
	Identical      bool    `json:"identical"`
	DispatchPerSec float64 `json:"dispatch_per_s"`
	// Cold/Warm time the memoized path against one on-disk cache
	// directory: cold simulates and stores, warm decodes from disk.
	ColdSeconds  float64 `json:"cold_s"`
	WarmSeconds  float64 `json:"warm_s"`
	WarmSpeedupX float64 `json:"warm_speedup_x"`
}

type pickPoint struct {
	Tenants       int     `json:"tenants"`
	HeapNsPerPick float64 `json:"heap_ns_per_pick"`
	ScanNsPerPick float64 `json:"scan_ns_per_pick"`
	HeapVsScanX   float64 `json:"heap_vs_scan_x"`
}

type routerScalingPoint struct {
	Platforms        int     `json:"platforms"`
	Jobs             int     `json:"jobs"`
	Workers          int     `json:"workers"`
	SerialSeconds    float64 `json:"serial_s"`
	ParallelSeconds  float64 `json:"parallel_s"`
	ParallelSpeedupX float64 `json:"parallel_speedup_x"`
}

// fleetSizes is the tenant-count series. The mix seed is fixed: the same
// jobs every run, so artifact rows are comparable across commits.
var fleetSizes = []int{4, 16, 64, 128}

const fleetSeed = 42

// BenchmarkCluster measures the whole fleet series end to end. One
// invocation performs the full measurement; the b.N loop only repeats it.
func BenchmarkCluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := clusterBenchResult{GOMAXPROCS: runtime.GOMAXPROCS(0)}
		for _, n := range fleetSizes {
			res.Fleet = append(res.Fleet, fleetRow(b, n))
		}
		for _, n := range fleetSizes {
			res.Pick = append(res.Pick, pickRow(n))
		}
		res.Router = routerRow(b)

		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_cluster.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		for _, f := range res.Fleet {
			b.Logf("N=%d: heap %.3fs scan %.3fs (%.2fx) %.0f dispatch/s, cold %.3fs warm %.3fs (%.1fx)",
				f.Tenants, f.HeapSeconds, f.ScanSeconds, f.HeapVsScanX, f.DispatchPerSec,
				f.ColdSeconds, f.WarmSeconds, f.WarmSpeedupX)
		}
		for _, p := range res.Pick {
			b.Logf("pick N=%d: heap %.1fns scan %.1fns (%.2fx)",
				p.Tenants, p.HeapNsPerPick, p.ScanNsPerPick, p.HeapVsScanX)
		}
		b.Logf("router M=%d: serial %.3fs workers=%d %.3fs (%.2fx)",
			res.Router.Platforms, res.Router.SerialSeconds, res.Router.Workers,
			res.Router.ParallelSeconds, res.Router.ParallelSpeedupX)
	}
}

// fleetRow measures one tenant count: byte-identity first, then the four
// timings.
func fleetRow(b *testing.B, n int) fleetPoint {
	cfg := cluster.Config{Engine: clusterBenchConfig, Jobs: cluster.BenchMix(fleetSeed, n)}
	row := fleetPoint{Tenants: n}

	start := time.Now()
	heapRes, err := cluster.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	row.HeapSeconds = time.Since(start).Seconds()

	start = time.Now()
	scanRes, err := cluster.RunScanReference(cfg)
	if err != nil {
		b.Fatal(err)
	}
	row.ScanSeconds = time.Since(start).Seconds()

	row.Identical = reflect.DeepEqual(heapRes, scanRes)
	if !row.Identical {
		b.Fatalf("N=%d: heap dispatch result differs from scan reference", n)
	}
	row.Dispatches = heapRes.Dispatches
	if row.HeapSeconds > 0 {
		row.DispatchPerSec = float64(heapRes.Dispatches) / row.HeapSeconds
		row.HeapVsScanX = row.ScanSeconds / row.HeapSeconds
	}

	dir := b.TempDir()
	cold, err := sched.OpenCache(dir)
	if err != nil {
		b.Fatal(err)
	}
	coldCfg := cfg
	coldCfg.Sched = &sched.Scheduler{Cache: cold}
	start = time.Now()
	if _, err := cluster.Run(coldCfg); err != nil {
		b.Fatal(err)
	}
	row.ColdSeconds = time.Since(start).Seconds()

	// Warm: best of three passes, each through a fresh Cache instance so
	// every pass pays the full disk load + integrity check + decode (no
	// in-memory map hit). Min-of-3 is the steady-state read the CI floor
	// gates on — a single pass is at the mercy of one slow disk op.
	for pass := 0; pass < 3; pass++ {
		warm, err := sched.OpenCache(dir)
		if err != nil {
			b.Fatal(err)
		}
		warmCfg := cfg
		warmCfg.Sched = &sched.Scheduler{Cache: warm}
		start = time.Now()
		warmRes, err := cluster.Run(warmCfg)
		if err != nil {
			b.Fatal(err)
		}
		secs := time.Since(start).Seconds()
		if pass == 0 || secs < row.WarmSeconds {
			row.WarmSeconds = secs
		}
		if st := warm.Stats(); st.Hits == 0 || st.Misses != 0 {
			b.Fatalf("N=%d: warm pass was not fully cached: %+v", n, st)
		}
		if !reflect.DeepEqual(warmRes, heapRes) {
			b.Fatalf("N=%d: warm cache hit differs from fresh simulation", n)
		}
	}
	if row.WarmSeconds > 0 {
		row.WarmSpeedupX = row.ColdSeconds / row.WarmSeconds
	}
	return row
}

// pickRow times dispatch selection alone — peek + bump/sift or finish —
// on synthetic tenants, no simulation. This isolates the O(log N) vs
// O(N) difference the heap exists for, and is the number the CI floor
// gates: end-to-end times bury it under Step() cost.
func pickRow(n int) pickPoint {
	const stepsPer = 16
	drain := func(q benchQueue) int {
		picks := 0
		for {
			t := q.peek()
			if t == nil {
				return picks
			}
			picks++
			if t.steps >= stepsPer {
				t.finished = true
				q.remove()
				continue
			}
			t.steps++
			t.next += 1 + float64(t.idx%7)*0.25
			q.bumped()
		}
	}
	time1 := func(mk func([]*benchTenant) benchQueue) float64 {
		// Each pass repeats the whole drain enough times that per-pick cost
		// is resolvable above timer noise; min-of-3 passes discards warmup
		// and scheduling hiccups.
		const rounds = 200
		best := 0.0
		for pass := 0; pass < 3; pass++ {
			totalPicks := 0
			start := time.Now()
			for r := 0; r < rounds; r++ {
				ts := make([]*benchTenant, n)
				for i := range ts {
					ts[i] = &benchTenant{idx: i, next: float64(i % 4)}
				}
				totalPicks += drain(mk(ts))
			}
			per := float64(time.Since(start).Nanoseconds()) / float64(totalPicks)
			if pass == 0 || per < best {
				best = per
			}
		}
		return best
	}
	row := pickPoint{Tenants: n}
	row.HeapNsPerPick = time1(func(ts []*benchTenant) benchQueue { return newBenchHeap(ts) })
	row.ScanNsPerPick = time1(func(ts []*benchTenant) benchQueue { return &benchScan{ts: ts} })
	if row.HeapNsPerPick > 0 {
		row.HeapVsScanX = row.ScanNsPerPick / row.HeapNsPerPick
	}
	return row
}

// benchTenant and the two benchQueue implementations mirror the
// cluster's dispatch-relevant tenant fields and both of its queue
// implementations; the real types are package-private, so the
// microbenchmark carries faithful replicas (the cluster's own
// differential tests prove the real pair equivalent).
type benchTenant struct {
	idx      int
	steps    int
	next     float64
	finished bool
}

type benchQueue interface {
	peek() *benchTenant
	bumped()
	remove()
}

type benchHeap struct{ ts []*benchTenant }

func newBenchHeap(ts []*benchTenant) *benchHeap {
	h := &benchHeap{ts: ts}
	heap.Init(h)
	return h
}

func (h *benchHeap) Len() int { return len(h.ts) }
func (h *benchHeap) Less(i, j int) bool {
	a, b := h.ts[i], h.ts[j]
	if a.next != b.next {
		return a.next < b.next
	}
	return a.idx < b.idx
}
func (h *benchHeap) Swap(i, j int) { h.ts[i], h.ts[j] = h.ts[j], h.ts[i] }
func (h *benchHeap) Push(x any)    { h.ts = append(h.ts, x.(*benchTenant)) }
func (h *benchHeap) Pop() any {
	n := len(h.ts) - 1
	t := h.ts[n]
	h.ts[n] = nil
	h.ts = h.ts[:n]
	return t
}
func (h *benchHeap) peek() *benchTenant {
	if len(h.ts) == 0 {
		return nil
	}
	return h.ts[0]
}
func (h *benchHeap) bumped() { heap.Fix(h, 0) }
func (h *benchHeap) remove() { heap.Pop(h) }

// benchScan matches the real scanQueue: remove is a no-op, the scan just
// skips tenants the dispatch loop marked finished.
type benchScan struct{ ts []*benchTenant }

func (q *benchScan) peek() *benchTenant {
	best := -1
	for i, t := range q.ts {
		if t.finished {
			continue
		}
		if best < 0 || t.next < q.ts[best].next {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return q.ts[best]
}
func (q *benchScan) bumped() {}
func (q *benchScan) remove() {}

// routerRow measures the M=4 routed fan-out serial vs parallel,
// uncached, same placement both times (worker count never changes a
// byte — the router tests pin that; this row times it).
func routerRow(b *testing.B) routerScalingPoint {
	const platforms = 4
	pcfgs := make([]engine.Config, platforms)
	for i := range pcfgs {
		pcfgs[i] = clusterBenchConfig
	}
	jobs := cluster.BenchMix(fleetSeed, 128)
	run := func(workers int) float64 {
		// Min-of-3: each routed pass is tens of milliseconds, so a single
		// scheduling hiccup on a busy runner would swamp the comparison.
		best := 0.0
		for pass := 0; pass < 3; pass++ {
			start := time.Now()
			if _, err := cluster.Route(cluster.RouterConfig{
				Platforms: pcfgs,
				Jobs:      jobs,
				Policy:    cluster.LeastLoaded,
				Workers:   workers,
			}); err != nil {
				b.Fatal(err)
			}
			secs := time.Since(start).Seconds()
			if pass == 0 || secs < best {
				best = secs
			}
		}
		return best
	}
	row := routerScalingPoint{Platforms: platforms, Jobs: len(jobs), Workers: platforms}
	row.SerialSeconds = run(1)
	row.ParallelSeconds = run(platforms)
	if row.ParallelSeconds > 0 {
		row.ParallelSpeedupX = row.SerialSeconds / row.ParallelSeconds
	}
	return row
}
