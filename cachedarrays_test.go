package cachedarrays

import "testing"

// TestFacadeEndToEnd exercises the root-package API the way a downstream
// application would.
func TestFacadeEndToEnd(t *testing.T) {
	rt := NewRuntime(Config{
		FastBytes: 1 << 20,
		SlowBytes: 1 << 24,
		Mode:      ModeLocalRetire,
	})
	if rt.Mode() != "CA:LM" {
		t.Fatalf("mode = %s", rt.Mode())
	}
	a, err := rt.NewArray(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Kernel(nil, []*Array{a}, func(_, w [][]byte) {
		SetF32(w[0], 0, 42.5)
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Evict(); err != nil {
		t.Fatal(err)
	}
	var got float32
	if err := rt.Kernel([]*Array{a}, nil, func(r, _ [][]byte) {
		got = F32(r[0], 0)
	}); err != nil {
		t.Fatal(err)
	}
	if got != 42.5 {
		t.Fatalf("value %v after round trip", got)
	}
	f, err := rt.NewFloat32Array(16)
	if err != nil {
		t.Fatal(err)
	}
	var _ *Float32Array = f
	a.Retire()
	f.Retire()
	if err := a.WillRead(); err != ErrRetired {
		t.Fatalf("retired hint error = %v", err)
	}
	var tel Telemetry = rt.Telemetry()
	if tel.LiveArrays != 0 {
		t.Fatalf("leaked arrays: %d", tel.LiveArrays)
	}
	if err := rt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestModeConstantsDistinct guards the re-exported constants.
func TestModeConstantsDistinct(t *testing.T) {
	seen := map[Mode]bool{}
	for _, m := range []Mode{ModeCacheLike, ModeLocal, ModeLocalRetire, ModeLocalRetirePrefetch} {
		if seen[m] {
			t.Fatalf("duplicate mode %v", m)
		}
		seen[m] = true
	}
}
