// Command cacluster runs the multi-tenant cluster simulation: N jobs
// multiplexed onto one shared tiered platform under a single virtual
// clock, or routed across M platforms behind a placement policy. Job
// mixes are seeded and deterministic — the same flags always reproduce
// the same bytes.
//
// Examples:
//
//	cacluster                          # 4-job seeded mix, one platform
//	cacluster -jobs 6 -seed 9          # a different, bigger mix
//	cacluster -fast 128MB -iters 3     # tighter fast tier, longer jobs
//	cacluster -platforms 2 -policy headroom
//	cacluster -nobase                  # skip the solo fairness baselines
//	cacluster -check -json             # audited run, machine-readable
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cachedarrays/internal/cluster"
	"cachedarrays/internal/engine"
	"cachedarrays/internal/experiments"
	"cachedarrays/internal/runcfg"
	"cachedarrays/internal/sched"
	"cachedarrays/internal/units"
)

func main() {
	var (
		jobs      = flag.Int("jobs", 4, "number of tenant jobs in the seeded mix")
		seed      = flag.Int64("seed", 1, "mix seed (same seed, same bytes)")
		platforms = flag.Int("platforms", 1, "platforms behind the router (1 = one shared platform, no routing)")
		policy    = flag.String("policy", cluster.LeastLoaded,
			fmt.Sprintf("router placement policy %v", cluster.Policies))
		fast   = flag.String("fast", "192MB", "fast-tier (DRAM) capacity per platform")
		slow   = flag.String("slow", "4GB", "slow-tier capacity per platform")
		iters  = flag.Int("iters", 2, "training iterations per job")
		nobase = flag.Bool("nobase", false, "skip the solo baseline runs (no slowdown/induced-eviction columns)")
		asJSON = flag.Bool("json", false, "print the full result as JSON on stdout")
	)
	shared := runcfg.Register(flag.CommandLine)
	flag.Parse()

	sess, err := shared.Start(*platforms > 1, os.Stdout)
	fatal(err)
	defer sess.Close()

	fastB, err := units.ParseBytes(*fast)
	fatal(err)
	slowB, err := units.ParseBytes(*slow)
	fatal(err)

	ecfg := engine.Config{
		FastCapacity: fastB,
		SlowCapacity: slowB,
		Iterations:   *iters,
	}
	mix := cluster.Mix(*seed, *jobs)
	// One session scheduler serves everything: the solo fairness
	// baselines, and the whole-cluster memoization (with -cache, repeated
	// identical invocations re-serve entire cluster results from disk).
	runner := sess.Scheduler(os.Stderr)
	var baselines *sched.Scheduler
	if !*nobase {
		baselines = runner
	}

	if *platforms <= 1 {
		ccfg := cluster.Config{Engine: ecfg, Jobs: mix, Baselines: baselines, Sched: runner}
		finish := sess.ApplyCluster("cluster", &ccfg)
		res, err := cluster.Run(ccfg)
		fatal(err)
		fatal(finish(res))
		if *asJSON {
			emitJSON(res)
			return
		}
		fmt.Println(tenantTable("cluster: one shared platform", res, !*nobase).Text())
		fmt.Printf("makespan: %s over %d dispatched events\n",
			units.Seconds(res.Makespan), res.Dispatches)
		return
	}

	pcfgs := make([]engine.Config, *platforms)
	for i := range pcfgs {
		pcfgs[i] = ecfg
	}
	res, err := cluster.Route(cluster.RouterConfig{
		Platforms: pcfgs,
		Jobs:      mix,
		Policy:    *policy,
		Workers:   shared.Parallel,
		Baselines: baselines,
		Sched:     runner,
		Metrics:   sess.Registry("router"),
	})
	fatal(err)
	if *asJSON {
		emitJSON(res)
		return
	}
	fmt.Println(placementTable(mix, res, *policy).Text())
	for pi, pr := range res.Platforms {
		if pr == nil {
			continue
		}
		title := fmt.Sprintf("platform %d", pi)
		fmt.Println(tenantTable(title, pr, !*nobase).Text())
	}
}

// tenantTable renders one platform's per-tenant outcome and fairness
// metrics.
func tenantTable(title string, res *cluster.Result, base bool) *experiments.Table {
	t := &experiments.Table{
		Title:  title,
		Header: []string{"tenant", "mode", "events", "busy", "wait", "fast traffic", "fast share"},
	}
	if base {
		t.Header = append(t.Header, "solo time", "slowdown", "induced evict")
	}
	for _, tn := range res.Tenants {
		row := []string{
			tn.Name, tn.Mode,
			fmt.Sprintf("%d", tn.Steps),
			units.Seconds(tn.Busy),
			units.Seconds(tn.Wait),
			units.Bytes(tn.FastBytes),
			fmt.Sprintf("%.1f%%", 100*tn.FastShare),
		}
		if base {
			row = append(row,
				units.Seconds(tn.SoloTime),
				fmt.Sprintf("%.2fx", tn.Slowdown),
				fmt.Sprintf("%d", tn.InducedEvictions))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// placementTable renders the router's placement decisions.
func placementTable(jobs []cluster.Job, res *cluster.RouterResult, policy string) *experiments.Table {
	t := &experiments.Table{
		Title:  fmt.Sprintf("router placement (%s)", policy),
		Header: []string{"job", "mode", "arrival", "platform"},
	}
	for i, j := range jobs {
		placed := fmt.Sprintf("%d", res.Placement[i])
		if res.Placement[i] < 0 {
			placed = "rejected"
		}
		t.Rows = append(t.Rows, []string{
			j.Name, j.Mode, units.Seconds(j.Arrival), placed,
		})
	}
	if n := len(res.Rejected); n > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("%d job(s) rejected under pressure", n))
	}
	return t
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	fatal(enc.Encode(v))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cacluster:", err)
		os.Exit(1)
	}
}
