package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/tracing"
	"cachedarrays/internal/units"
)

func TestBuildModelNames(t *testing.T) {
	for _, name := range []string{"densenet264", "densenet121", "resnet200",
		"resnet50", "vgg416", "vgg116", "vgg16", "mlp", "RESNET50"} {
		m, err := buildModel(name, 4)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := buildModel("alexnet", 4); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRunModeDispatch(t *testing.T) {
	m, err := buildModel("mlp", 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.Config{Iterations: 1,
		FastCapacity: 2 * units.GB, SlowCapacity: 16 * units.GB}
	for _, mode := range []string{"2LM:0", "2lm:m", "CA:0", "ca:l", "CA:LM",
		"CA:LMP", "os:page", "AutoTM", "plan"} {
		r, err := run(m, mode, cfg)
		if err != nil {
			t.Errorf("%s: %v", mode, err)
			continue
		}
		if r.IterTime <= 0 {
			t.Errorf("%s: zero iteration time", mode)
		}
	}
	if _, err := run(m, "NUMA", cfg); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestWriteTrace(t *testing.T) {
	m, err := buildModel("mlp", 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.Config{Iterations: 2, Trace: true,
		FastCapacity: 2 * units.GB, SlowCapacity: 16 * units.GB}
	r, err := run(m, "CA:LMP", cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	jsonlPath := filepath.Join(dir, "trace.jsonl")
	if err := writeTrace(jsonlPath, r); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	events, err := tracing.ReadJSONL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := tracing.Verify(events); err != nil {
		t.Fatalf("written jsonl fails verification: %v", err)
	}

	chromePath := filepath.Join(dir, "trace.json")
	if err := writeTrace(chromePath, r); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}

	// Modes outside the CA engines produce no trace; the flag must fail
	// loudly instead of writing an empty file.
	r2, err := run(m, "2LM:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeTrace(filepath.Join(dir, "none.json"), r2); err == nil {
		t.Fatal("writeTrace succeeded on a traceless result")
	}
}
