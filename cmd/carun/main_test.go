package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/metrics"
	"cachedarrays/internal/sched"
	"cachedarrays/internal/tracing"
	"cachedarrays/internal/units"
)

func TestBuildModelNames(t *testing.T) {
	for _, name := range []string{"densenet264", "densenet121", "resnet200",
		"resnet50", "vgg416", "vgg116", "vgg16", "mlp", "RESNET50"} {
		m, err := buildModel(name, 4)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := buildModel("alexnet", 4); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRunModeDispatch(t *testing.T) {
	m, err := buildModel("mlp", 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.Config{Iterations: 1,
		FastCapacity: 2 * units.GB, SlowCapacity: 16 * units.GB}
	for _, mode := range []string{"2LM:0", "2lm:m", "CA:0", "ca:l", "CA:LM",
		"CA:LMP", "os:page", "AutoTM", "plan"} {
		r, err := sched.RunMode(m, mode, cfg)
		if err != nil {
			t.Errorf("%s: %v", mode, err)
			continue
		}
		if r.IterTime <= 0 {
			t.Errorf("%s: zero iteration time", mode)
		}
	}
	if _, err := sched.RunMode(m, "NUMA", cfg); err == nil {
		t.Error("unknown mode accepted")
	}
}

// carun runs cliMain with small-model arguments prepended and returns
// the exit code plus captured stdout/stderr.
func carun(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	base := []string{"-model", "mlp", "-batch", "16", "-iters", "2",
		"-dram", "2GB", "-nvram", "16GB"}
	code := cliMain(append(base, args...), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCLIRunsAndPrintsSummary(t *testing.T) {
	code, out, errOut := carun(t, "-mode", "CA:LMP", "-v", "-check")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"model       :", "mode        : CA:LMP",
		"iteration   :", "invariants  :", "per-iteration:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

func TestCLIExitCodes(t *testing.T) {
	tests := []struct {
		name string
		args []string
		code int
		err  string // substring expected on stderr
	}{
		{"bad flag", []string{"-nosuchflag"}, 2, "flag provided but not defined"},
		{"bad model", []string{"-model", "alexnet"}, 1, "unknown model"},
		{"bad mode", []string{"-mode", "NUMA"}, 1, "unknown mode"},
		{"bad dram", []string{"-dram", "lots"}, 1, ""},
		{"negative metrics interval", []string{"-metrics", "x.csv", "-metrics-interval", "-1"}, 1, "metrics-interval"},
		{"trace on traceless mode", []string{"-mode", "2LM:0", "-trace", filepath.Join(t.TempDir(), "t.json")}, 1, "no trace"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			args := tc.args
			if tc.name != "bad model" {
				args = append([]string{"-model", "mlp", "-batch", "16", "-iters", "1",
					"-dram", "2GB", "-nvram", "16GB"}, args...)
			}
			code := cliMain(args, &stdout, &stderr)
			if code != tc.code {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if tc.err != "" && !strings.Contains(stderr.String(), tc.err) {
				t.Errorf("stderr %q missing %q", stderr.String(), tc.err)
			}
		})
	}
}

func TestCLITraceExport(t *testing.T) {
	dir := t.TempDir()

	jsonlPath := filepath.Join(dir, "trace.jsonl")
	code, _, errOut := carun(t, "-mode", "CA:LMP", "-trace", jsonlPath)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	f, err := os.Open(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	events, err := tracing.ReadJSONL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := tracing.Verify(events); err != nil {
		t.Fatalf("written jsonl fails verification: %v", err)
	}

	chromePath := filepath.Join(dir, "trace.json")
	code, _, errOut = carun(t, "-mode", "CA:LMP", "-trace", chromePath)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	raw, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
}

func TestCLIMetricsExport(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "run.csv")
	sumPath := filepath.Join(dir, "run.json")
	code, out, errOut := carun(t, "-mode", "CA:LM", "-metrics", csvPath, "-metrics-summary", sumPath)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "metrics     :") {
		t.Errorf("stdout missing metrics status line:\n%s", out)
	}

	f, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := metrics.ReadCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Times) == 0 || len(ts.Names) == 0 {
		t.Fatalf("empty metrics CSV: %d times, %d series", len(ts.Times), len(ts.Names))
	}

	sf, err := os.Open(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := metrics.ReadSummary(sf)
	sf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Meta["run"] != "mlp3-ca_lm" {
		t.Errorf("summary run meta = %q", sum.Meta["run"])
	}
	if _, ok := sum.Series["engine_iterations"]; !ok {
		t.Error("summary missing engine_iterations")
	}
	// A summary self-diff must be empty — the regression gate's baseline
	// property.
	if deltas := metrics.Diff(sum, sum, 0); len(deltas) != 0 {
		t.Errorf("self-diff produced %d deltas", len(deltas))
	}
}
