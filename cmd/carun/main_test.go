package main

import (
	"testing"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/units"
)

func TestBuildModelNames(t *testing.T) {
	for _, name := range []string{"densenet264", "densenet121", "resnet200",
		"resnet50", "vgg416", "vgg116", "vgg16", "mlp", "RESNET50"} {
		m, err := buildModel(name, 4)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := buildModel("alexnet", 4); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRunModeDispatch(t *testing.T) {
	m, err := buildModel("mlp", 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.Config{Iterations: 1,
		FastCapacity: 2 * units.GB, SlowCapacity: 16 * units.GB}
	for _, mode := range []string{"2LM:0", "2lm:m", "CA:0", "ca:l", "CA:LM",
		"CA:LMP", "os:page", "AutoTM", "plan"} {
		r, err := run(m, mode, cfg)
		if err != nil {
			t.Errorf("%s: %v", mode, err)
			continue
		}
		if r.IterTime <= 0 {
			t.Errorf("%s: zero iteration time", mode)
		}
	}
	if _, err := run(m, "NUMA", cfg); err == nil {
		t.Error("unknown mode accepted")
	}
}
