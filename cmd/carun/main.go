// Command carun executes one training experiment — a paper model under a
// CachedArrays operating mode or a 2LM baseline — and prints the paper's
// measurement set: iteration time, movement stalls, per-device traffic,
// cache statistics and policy counters.
//
// Examples:
//
//	carun -model resnet200 -batch 2048 -mode CA:LM
//	carun -model densenet264 -batch 1536 -mode 2LM:0 -iters 4
//	carun -model vgg116 -batch 320 -mode CA:LM -dram 30GB
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/models"
	"cachedarrays/internal/pagemig"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/profiling"
	"cachedarrays/internal/tracing"
	"cachedarrays/internal/units"
)

func buildModel(name string, batch int) (*models.Model, error) {
	switch strings.ToLower(name) {
	case "densenet264":
		return models.DenseNet(264, batch), nil
	case "densenet121":
		return models.DenseNet(121, batch), nil
	case "resnet200":
		return models.ResNet(200, batch), nil
	case "resnet50":
		return models.ResNet(50, batch), nil
	case "vgg416":
		return models.VGG(416, batch), nil
	case "vgg116":
		return models.VGG(116, batch), nil
	case "vgg16":
		return models.VGG(16, batch), nil
	case "mlp":
		return models.MLP(4096, []int{4096, 4096}, 1000, batch), nil
	default:
		return nil, fmt.Errorf("unknown model %q (densenet264, densenet121, resnet200, resnet50, vgg416, vgg116, vgg16, mlp)", name)
	}
}

func run(model *models.Model, mode string, cfg engine.Config) (*engine.Result, error) {
	switch strings.ToUpper(mode) {
	case "2LM:0", "2LM:O":
		return engine.Run2LM(model, false, cfg)
	case "2LM:M":
		return engine.Run2LM(model, true, cfg)
	case "CA:0", "CA:O":
		return engine.RunCA(model, policy.CAZero, cfg)
	case "CA:L":
		return engine.RunCA(model, policy.CAL, cfg)
	case "CA:LM":
		return engine.RunCA(model, policy.CALM, cfg)
	case "CA:LMP":
		return engine.RunCA(model, policy.CALMP, cfg)
	case "OS:PAGE", "OS":
		return engine.RunPageMig(model, pagemig.DefaultConfig(), cfg)
	case "AUTOTM", "PLAN":
		return engine.RunPlanned(model, nil, cfg)
	default:
		return nil, fmt.Errorf("unknown mode %q (2LM:0, 2LM:M, CA:0, CA:L, CA:LM, CA:LMP, OS:page, AutoTM)", mode)
	}
}

func main() {
	var (
		modelName = flag.String("model", "resnet200", "workload: densenet264, resnet200, vgg416, vgg116, ...")
		batch     = flag.Int("batch", 2048, "training batch size")
		mode      = flag.String("mode", "CA:LM", "operating mode: 2LM:0, 2LM:M, CA:0, CA:L, CA:LM, CA:LMP, OS:page, AutoTM")
		iters     = flag.Int("iters", 4, "training iterations (first is warm-up)")
		dram      = flag.String("dram", "", "DRAM budget, e.g. 180GB; \"0\" for NVRAM-only (default: paper 180 GB)")
		nvram     = flag.String("nvram", "", "NVRAM budget (default: paper 1300 GB)")
		verbose   = flag.Bool("v", false, "print per-iteration metrics")
		async     = flag.Bool("async", false, "use the asynchronous data mover (CA modes; §V-c future work, implemented)")
		lookahead = flag.Int("lookahead", 0, "emit will_read hints this many kernels ahead")
		allocator = flag.String("alloc", "", "heap allocator: firstfit (default), bestfit, buddy")
		workload  = flag.String("workload", "", "load the workload from a JSON trace file instead of -model")
		dump      = flag.String("dumpworkload", "", "write the built workload as JSON to this file and exit")
		events    = flag.Int("events", 0, "print the last N data-manager events (CA modes)")
		tracePath = flag.String("trace", "", "write the execution trace to this file (CA modes; .jsonl for the raw event log, anything else for Chrome/Perfetto trace-event JSON)")
		check     = flag.Bool("check", false, "audit runtime invariants at every clock advance (CA modes; slower)")
		faultSpec = flag.String("faults", "", "inject a deterministic fault schedule (CA modes), e.g. 'seed=42;allocfail:fast:t0=0.1,t1=0.3,p=0.5;copystall:nvram:t0=0,stall=2ms'")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprof, *memprof)
	fatal(err)
	defer func() { fatal(stopProf()) }()

	var model *models.Model
	if *workload != "" {
		f, err := os.Open(*workload)
		fatal(err)
		model, err = models.LoadJSON(f)
		f.Close()
		fatal(err)
	} else {
		var err error
		model, err = buildModel(*modelName, *batch)
		fatal(err)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		fatal(err)
		fatal(model.SaveJSON(f))
		fatal(f.Close())
		fmt.Printf("wrote %s (%d tensors, %d kernels)\n", *dump, len(model.Tensors), len(model.Kernels))
		return
	}
	cfg := engine.Config{
		Iterations:        *iters,
		AsyncMovement:     *async,
		HintLookahead:     *lookahead,
		Allocator:         *allocator,
		TraceEvents:       *events,
		Trace:             *tracePath != "",
		CheckEveryAdvance: *check,
		FaultSpec:         *faultSpec,
	}
	if *dram != "" {
		n, err := units.ParseBytes(*dram)
		fatal(err)
		if n == 0 {
			n = engine.NVRAMOnly
		}
		cfg.FastCapacity = n
	}
	if *nvram != "" {
		n, err := units.ParseBytes(*nvram)
		fatal(err)
		cfg.SlowCapacity = n
	}

	fmt.Printf("model       : %s (batch %d)\n", model.Name, model.BatchSize)
	fmt.Printf("footprint   : %s peak live (weights %s)\n",
		units.Bytes(model.PeakFootprint()), units.Bytes(model.WeightBytes()))
	fmt.Printf("kernels     : %d (%d tensors), %.1f TFLOP/iteration\n",
		len(model.Kernels), len(model.Tensors), model.TotalFLOPs()/1e12)

	r, err := run(model, *mode, cfg)
	fatal(err)

	if *tracePath != "" {
		fatal(writeTrace(*tracePath, r))
	}

	fmt.Printf("mode        : %s\n", r.Mode)
	fmt.Printf("iteration   : %s (compute+kernels %s, movement stalls %s, gc %s)\n",
		units.Seconds(r.IterTime), units.Seconds(r.ComputeTime),
		units.Seconds(r.MoveTime), units.Seconds(r.GCTime))
	fmt.Printf("async proj. : %s (paper Fig. 7 red line)\n", units.Seconds(r.ProjectedAsyncTime))
	fmt.Printf("DRAM        : read %s, write %s, utilization %.1f%%\n",
		units.Bytes(r.Fast.ReadBytes), units.Bytes(r.Fast.WriteBytes), 100*r.FastBusUtil)
	fmt.Printf("NVRAM       : read %s, write %s, utilization %.1f%%\n",
		units.Bytes(r.Slow.ReadBytes), units.Bytes(r.Slow.WriteBytes), 100*r.SlowBusUtil)
	fmt.Printf("peak heap   : %s\n", units.Bytes(r.PeakHeap))
	if r.Cache.Accesses() > 0 {
		fmt.Printf("DRAM cache  : hit %.1f%%, clean miss %.1f%%, dirty miss %.1f%%\n",
			100*r.Cache.HitRate(), 100*r.Cache.CleanMissRate(), 100*r.Cache.DirtyMissRate())
	}
	if strings.HasPrefix(strings.ToUpper(*mode), "CA") {
		p := r.Policy
		fmt.Printf("policy      : %d prefetches (%s), %d evictions (%s), %d elided writebacks\n",
			p.Prefetches, units.Bytes(p.PrefetchBytes), p.Evictions,
			units.Bytes(p.EvictionBytes), p.ElidedWritebacks)
		fmt.Printf("retire      : %d eager, %d deferred; gc: %d collections\n",
			p.EagerRetires, p.DeferredRetires, r.GC.Collections)
	}
	if f := r.Faults; f.Total() > 0 {
		fmt.Printf("faults      : %d alloc failures, %d copy errors, %d copy stalls (%s), %d throttle hits, %d shrink rejects\n",
			f.AllocFailures, f.CopyErrors, f.CopyStalls, units.Seconds(f.StallSeconds),
			f.ThrottleHits, f.ShrinkRejects)
		fmt.Printf("degradation : %d alloc retries, %d copy retries, %d slow-tier fallbacks, %d fetch failures\n",
			r.DM.AllocRetries, r.DM.CopyRetries, r.Policy.FallbackAllocs, r.Policy.FetchFailures)
	}
	if *check {
		fmt.Printf("invariants  : %d audits passed\n", r.InvariantChecks)
	}
	if *events > 0 && len(r.Events) > 0 {
		fmt.Printf("\nlast %d data-manager events:\n", len(r.Events))
		for _, e := range r.Events {
			fmt.Println(" ", e)
		}
	}
	if *verbose {
		fmt.Println("\nper-iteration:")
		for i, it := range r.Iterations {
			fmt.Printf("  iter %d: %s (move %s, gc %s)  dram %s/%s  nvram %s/%s\n",
				i, units.Seconds(it.Time), units.Seconds(it.MoveTime), units.Seconds(it.GCTime),
				units.Bytes(it.Fast.ReadBytes), units.Bytes(it.Fast.WriteBytes),
				units.Bytes(it.Slow.ReadBytes), units.Bytes(it.Slow.WriteBytes))
		}
	}
}

// writeTrace exports the run's execution trace, verifying first that it is
// an exact decomposition of the run's aggregates. The extension picks the
// format: .jsonl gets the raw event log (catrace's input), anything else
// the Chrome trace-event JSON for chrome://tracing / ui.perfetto.dev.
func writeTrace(path string, r *engine.Result) error {
	if len(r.Trace) == 0 {
		return fmt.Errorf("-trace: mode produced no trace (tracing covers the CA engines)")
	}
	if err := tracing.Verify(r.Trace); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = tracing.WriteJSONL(f, r.Trace)
	} else {
		err = tracing.WriteChrome(f, r.Trace)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("trace       : %d events -> %s (consistency verified)\n", len(r.Trace), path)
	return nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "carun:", err)
		os.Exit(1)
	}
}
