// Command carun executes one training experiment — a paper model under a
// CachedArrays operating mode or a 2LM baseline — and prints the paper's
// measurement set: iteration time, movement stalls, per-device traffic,
// cache statistics and policy counters.
//
// Examples:
//
//	carun -model resnet200 -batch 2048 -mode CA:LM
//	carun -model densenet264 -batch 1536 -mode 2LM:0 -iters 4
//	carun -model vgg116 -batch 320 -mode CA:LM -dram 30GB
//	carun -model resnet50 -batch 256 -mode CA:LMP -metrics run.csv -metrics-summary run.json
//	carun -model resnet200 -mode CA:LM -listen :8080   # live /metrics while it runs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/models"
	"cachedarrays/internal/profiling"
	"cachedarrays/internal/runcfg"
	"cachedarrays/internal/sched"
	"cachedarrays/internal/units"
)

func buildModel(name string, batch int) (*models.Model, error) {
	switch strings.ToLower(name) {
	case "densenet264":
		return models.DenseNet(264, batch), nil
	case "densenet121":
		return models.DenseNet(121, batch), nil
	case "resnet200":
		return models.ResNet(200, batch), nil
	case "resnet50":
		return models.ResNet(50, batch), nil
	case "vgg416":
		return models.VGG(416, batch), nil
	case "vgg116":
		return models.VGG(116, batch), nil
	case "vgg16":
		return models.VGG(16, batch), nil
	case "mlp":
		return models.MLP(4096, []int{4096, 4096}, 1000, batch), nil
	default:
		return nil, fmt.Errorf("unknown model %q (densenet264, densenet121, resnet200, resnet50, vgg416, vgg116, vgg16, mlp)", name)
	}
}

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

// cliMain is the testable entry point: it parses args, runs the
// experiment, and returns the process exit code (0 ok, 1 run error,
// 2 usage error).
func cliMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("carun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		modelName = fs.String("model", "resnet200", "workload: densenet264, resnet200, vgg416, vgg116, ...")
		batch     = fs.Int("batch", 2048, "training batch size")
		mode      = fs.String("mode", "CA:LM", "operating mode: 2LM:0, 2LM:M, CA:0, CA:L, CA:LM, CA:LMP, OS:page, AutoTM")
		iters     = fs.Int("iters", 4, "training iterations (first is warm-up)")
		dram      = fs.String("dram", "", "DRAM budget, e.g. 180GB; \"0\" for NVRAM-only (default: paper 180 GB)")
		nvram     = fs.String("nvram", "", "NVRAM budget (default: paper 1300 GB)")
		verbose   = fs.Bool("v", false, "print per-iteration metrics")
		async     = fs.Bool("async", false, "use the asynchronous data mover (CA modes; §V-c future work, implemented)")
		lookahead = fs.Int("lookahead", 0, "emit will_read hints this many kernels ahead")
		allocator = fs.String("alloc", "", "heap allocator: firstfit (default), bestfit, buddy")
		workload  = fs.String("workload", "", "load the workload from a JSON trace file instead of -model")
		dump      = fs.String("dumpworkload", "", "write the built workload as JSON to this file and exit")
		events    = fs.Int("events", 0, "print the last N data-manager events (CA modes)")
		cpuprof   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprof   = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	shared := runcfg.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2 // flag package already printed the error + usage
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "carun:", err)
		return 1
	}

	stopProf, err := profiling.Start(*cpuprof, *memprof)
	if err != nil {
		return fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "carun:", err)
		}
	}()

	var model *models.Model
	if *workload != "" {
		f, err := os.Open(*workload)
		if err != nil {
			return fail(err)
		}
		model, err = models.LoadJSON(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
	} else {
		model, err = buildModel(*modelName, *batch)
		if err != nil {
			return fail(err)
		}
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			return fail(err)
		}
		err = model.SaveJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "wrote %s (%d tensors, %d kernels)\n", *dump, len(model.Tensors), len(model.Kernels))
		return 0
	}
	cfg := engine.Config{
		Iterations:    *iters,
		AsyncMovement: *async,
		HintLookahead: *lookahead,
		Allocator:     *allocator,
		TraceEvents:   *events,
	}
	if *dram != "" {
		n, err := units.ParseBytes(*dram)
		if err != nil {
			return fail(err)
		}
		if n == 0 {
			n = engine.NVRAMOnly
		}
		cfg.FastCapacity = n
	}
	if *nvram != "" {
		n, err := units.ParseBytes(*nvram)
		if err != nil {
			return fail(err)
		}
		cfg.SlowCapacity = n
	}

	sess, err := shared.Start(false, stdout)
	if err != nil {
		return fail(err)
	}
	defer sess.Close()
	done := sess.Apply(runcfg.Name(model.Name, *mode), &cfg)

	fmt.Fprintf(stdout, "model       : %s (batch %d)\n", model.Name, model.BatchSize)
	fmt.Fprintf(stdout, "footprint   : %s peak live (weights %s)\n",
		units.Bytes(model.PeakFootprint()), units.Bytes(model.WeightBytes()))
	fmt.Fprintf(stdout, "kernels     : %d (%d tensors), %.1f TFLOP/iteration\n",
		len(model.Kernels), len(model.Tensors), model.TotalFLOPs()/1e12)

	// A single cell still goes through the scheduler so that -cache can
	// serve it from a previous process's results (instrumented runs
	// bypass the cache and always simulate).
	results, err := sess.Scheduler(nil).Run([]sched.Cell{{
		Name: runcfg.Name(model.Name, *mode), Model: model, Mode: *mode, Cfg: cfg, Done: done,
	}})
	if err != nil {
		return fail(err)
	}
	r := results[0]
	if st := sess.CacheStats(); st.Hits > 0 {
		fmt.Fprintf(stdout, "cache       : result served from the -cache directory (no simulation)\n")
	}

	fmt.Fprintf(stdout, "mode        : %s\n", r.Mode)
	fmt.Fprintf(stdout, "iteration   : %s (compute+kernels %s, movement stalls %s, gc %s)\n",
		units.Seconds(r.IterTime), units.Seconds(r.ComputeTime),
		units.Seconds(r.MoveTime), units.Seconds(r.GCTime))
	fmt.Fprintf(stdout, "async proj. : %s (paper Fig. 7 red line)\n", units.Seconds(r.ProjectedAsyncTime))
	fmt.Fprintf(stdout, "DRAM        : read %s, write %s, utilization %.1f%%\n",
		units.Bytes(r.Fast.ReadBytes), units.Bytes(r.Fast.WriteBytes), 100*r.FastBusUtil)
	fmt.Fprintf(stdout, "NVRAM       : read %s, write %s, utilization %.1f%%\n",
		units.Bytes(r.Slow.ReadBytes), units.Bytes(r.Slow.WriteBytes), 100*r.SlowBusUtil)
	fmt.Fprintf(stdout, "peak heap   : %s\n", units.Bytes(r.PeakHeap))
	if r.Cache.Accesses() > 0 {
		fmt.Fprintf(stdout, "DRAM cache  : hit %.1f%%, clean miss %.1f%%, dirty miss %.1f%%\n",
			100*r.Cache.HitRate(), 100*r.Cache.CleanMissRate(), 100*r.Cache.DirtyMissRate())
	}
	if strings.HasPrefix(strings.ToUpper(*mode), "CA") {
		p := r.Policy
		fmt.Fprintf(stdout, "policy      : %d prefetches (%s), %d evictions (%s), %d elided writebacks\n",
			p.Prefetches, units.Bytes(p.PrefetchBytes), p.Evictions,
			units.Bytes(p.EvictionBytes), p.ElidedWritebacks)
		fmt.Fprintf(stdout, "retire      : %d eager, %d deferred; gc: %d collections\n",
			p.EagerRetires, p.DeferredRetires, r.GC.Collections)
	}
	if f := r.Faults; f.Total() > 0 {
		fmt.Fprintf(stdout, "faults      : %d alloc failures, %d copy errors, %d copy stalls (%s), %d throttle hits, %d shrink rejects\n",
			f.AllocFailures, f.CopyErrors, f.CopyStalls, units.Seconds(f.StallSeconds),
			f.ThrottleHits, f.ShrinkRejects)
		fmt.Fprintf(stdout, "degradation : %d alloc retries, %d copy retries, %d slow-tier fallbacks, %d fetch failures\n",
			r.DM.AllocRetries, r.DM.CopyRetries, r.Policy.FallbackAllocs, r.Policy.FetchFailures)
	}
	if shared.Check {
		fmt.Fprintf(stdout, "invariants  : %d audits passed\n", r.InvariantChecks)
	}
	if *events > 0 && len(r.Events) > 0 {
		fmt.Fprintf(stdout, "\nlast %d data-manager events:\n", len(r.Events))
		for _, e := range r.Events {
			fmt.Fprintln(stdout, " ", e)
		}
	}
	if *verbose {
		fmt.Fprintln(stdout, "\nper-iteration:")
		for i, it := range r.Iterations {
			fmt.Fprintf(stdout, "  iter %d: %s (move %s, gc %s)  dram %s/%s  nvram %s/%s\n",
				i, units.Seconds(it.Time), units.Seconds(it.MoveTime), units.Seconds(it.GCTime),
				units.Bytes(it.Fast.ReadBytes), units.Bytes(it.Fast.WriteBytes),
				units.Bytes(it.Slow.ReadBytes), units.Bytes(it.Slow.WriteBytes))
		}
	}
	return 0
}
