package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/metrics"
	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/units"
)

// runOnce executes a small CA run with a metrics registry attached and
// writes its CSV and summary into dir, returning the two paths.
func runOnce(t *testing.T, dir, tag string, iters int) (csvPath, sumPath string) {
	t.Helper()
	reg := metrics.New(0)
	reg.SetMeta("run", tag)
	cfg := engine.Config{Iterations: iters, Metrics: reg,
		FastCapacity: 2 * units.GB, SlowCapacity: 16 * units.GB}
	if _, err := engine.RunCA(models.MLP(4096, []int{4096, 4096}, 1000, 16), policy.CALM, cfg); err != nil {
		t.Fatal(err)
	}
	csvPath = filepath.Join(dir, tag+".csv")
	sumPath = filepath.Join(dir, tag+".json")
	cf, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteCSV(cf); err != nil {
		t.Fatal(err)
	}
	cf.Close()
	sf, err := os.Create(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.WriteSummary(sf, reg.Summarize()); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	return csvPath, sumPath
}

func runCLI(args ...string) (int, string, string) {
	var stdout, stderr bytes.Buffer
	code := cliMain(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestShowCSVAndSummary(t *testing.T) {
	dir := t.TempDir()
	csvPath, sumPath := runOnce(t, dir, "show", 2)

	code, out, errOut := runCLI("show", csvPath)
	if code != 0 {
		t.Fatalf("show csv: exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "engine_iterations") || !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Errorf("show csv output lacks series or sparkline:\n%s", out)
	}

	code, out, errOut = runCLI("show", sumPath)
	if code != 0 {
		t.Fatalf("show summary: exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"run:", "engine_iterations", "mean", "last"} {
		if !strings.Contains(out, want) {
			t.Errorf("show summary output missing %q:\n%s", want, out)
		}
	}
}

// TestDiffSelfIsZero is the gate's baseline property: a summary diffed
// against itself reports nothing and exits 0.
func TestDiffSelfIsZero(t *testing.T) {
	dir := t.TempDir()
	_, sumPath := runOnce(t, dir, "self", 2)
	code, out, errOut := runCLI("diff", "-rel", "0", sumPath, sumPath)
	if code != 0 {
		t.Fatalf("self-diff: exit %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(out, "no deltas") {
		t.Errorf("self-diff output: %s", out)
	}
}

// TestDiffTripsOnPerturbedRun perturbs the configuration (one extra
// iteration) and checks the gate flags it.
func TestDiffTripsOnPerturbedRun(t *testing.T) {
	dir := t.TempDir()
	_, base := runOnce(t, dir, "base", 2)
	_, cur := runOnce(t, dir, "cur", 3)
	code, out, _ := runCLI("diff", "-rel", "0.05", base, cur)
	if code != 1 {
		t.Fatalf("perturbed diff: exit %d, want 1\nstdout: %s", code, out)
	}
	if !strings.Contains(out, "engine_iterations") {
		t.Errorf("diff report does not name the moved series:\n%s", out)
	}
}

func TestUsageAndBadInputs(t *testing.T) {
	dir := t.TempDir()
	_, sumPath := runOnce(t, dir, "ok", 1)
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("{\"not\":\"a summary\"}"), 0o644); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		args []string
		code int
	}{
		{"no args", nil, 2},
		{"unknown command", []string{"frobnicate"}, 2},
		{"show missing operand", []string{"show"}, 2},
		{"show nonexistent", []string{"show", filepath.Join(dir, "nope.csv")}, 1},
		{"diff one operand", []string{"diff", sumPath}, 2},
		{"diff negative rel", []string{"diff", "-rel", "-1", sumPath, sumPath}, 1},
		{"diff garbage summary", []string{"diff", garbage, sumPath}, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			code, _, _ := runCLI(tc.args...)
			if code != tc.code {
				t.Errorf("exit %d, want %d", code, tc.code)
			}
		})
	}
}
