package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/metrics"
	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/units"
)

// runOnce executes a small CA run with a metrics registry attached and
// writes its CSV and summary into dir, returning the two paths.
func runOnce(t *testing.T, dir, tag string, iters int) (csvPath, sumPath string) {
	t.Helper()
	reg := metrics.New(0)
	reg.SetMeta("run", tag)
	cfg := engine.Config{Iterations: iters, Metrics: reg,
		FastCapacity: 2 * units.GB, SlowCapacity: 16 * units.GB}
	if _, err := engine.RunCA(models.MLP(4096, []int{4096, 4096}, 1000, 16), policy.CALM, cfg); err != nil {
		t.Fatal(err)
	}
	csvPath = filepath.Join(dir, tag+".csv")
	sumPath = filepath.Join(dir, tag+".json")
	cf, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteCSV(cf); err != nil {
		t.Fatal(err)
	}
	cf.Close()
	sf, err := os.Create(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.WriteSummary(sf, reg.Summarize()); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	return csvPath, sumPath
}

func runCLI(args ...string) (int, string, string) {
	var stdout, stderr bytes.Buffer
	code := cliMain(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestShowCSVAndSummary(t *testing.T) {
	dir := t.TempDir()
	csvPath, sumPath := runOnce(t, dir, "show", 2)

	code, out, errOut := runCLI("show", csvPath)
	if code != 0 {
		t.Fatalf("show csv: exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "engine_iterations") || !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Errorf("show csv output lacks series or sparkline:\n%s", out)
	}

	code, out, errOut = runCLI("show", sumPath)
	if code != 0 {
		t.Fatalf("show summary: exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"run:", "engine_iterations", "mean", "last"} {
		if !strings.Contains(out, want) {
			t.Errorf("show summary output missing %q:\n%s", want, out)
		}
	}
}

// TestDiffSelfIsZero is the gate's baseline property: a summary diffed
// against itself reports nothing and exits 0.
func TestDiffSelfIsZero(t *testing.T) {
	dir := t.TempDir()
	_, sumPath := runOnce(t, dir, "self", 2)
	code, out, errOut := runCLI("diff", "-rel", "0", sumPath, sumPath)
	if code != 0 {
		t.Fatalf("self-diff: exit %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(out, "no deltas") {
		t.Errorf("self-diff output: %s", out)
	}
}

// TestDiffTripsOnPerturbedRun perturbs the configuration (one extra
// iteration) and checks the gate flags it.
func TestDiffTripsOnPerturbedRun(t *testing.T) {
	dir := t.TempDir()
	_, base := runOnce(t, dir, "base", 2)
	_, cur := runOnce(t, dir, "cur", 3)
	code, out, _ := runCLI("diff", "-rel", "0.05", base, cur)
	if code != 1 {
		t.Fatalf("perturbed diff: exit %d, want 1\nstdout: %s", code, out)
	}
	if !strings.Contains(out, "engine_iterations") {
		t.Errorf("diff report does not name the moved series:\n%s", out)
	}
}

// writeSummary fabricates a summary file with fixed gauge values and the
// given run/tenant meta — the shape of a cacluster -metrics-summary
// export, without running a cluster.
func writeSummary(t *testing.T, dir, file, runName, tenantMeta string, series map[string]float64) string {
	t.Helper()
	reg := metrics.New(0)
	reg.SetMeta("run", runName)
	if tenantMeta != "" {
		reg.SetMeta("tenant", tenantMeta)
	}
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v := series[n]
		reg.Gauge(n, func() float64 { return v })
	}
	reg.Flush(0)
	path := filepath.Join(dir, file)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.WriteSummary(f, reg.Summarize()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

// TestDiffTenantScopesClusterSummary: -tenant restricts the gate to one
// tenant's cluster_<label>_* series, so a neighbour's drift neither trips
// nor hides behind the selected tenant.
func TestDiffTenantScopesClusterSummary(t *testing.T) {
	dir := t.TempDir()
	base := writeSummary(t, dir, "base.json", "cluster", "", map[string]float64{
		"cluster_a_fast_bytes": 100,
		"cluster_b_fast_bytes": 50,
		"cluster_dispatches":   7,
	})
	cur := writeSummary(t, dir, "cur.json", "cluster", "", map[string]float64{
		"cluster_a_fast_bytes": 100,
		"cluster_b_fast_bytes": 80, // only tenant b moved
		"cluster_dispatches":   7,
	})

	// Tenant a is unchanged: scoped self-consistent diff passes.
	if code, out, errOut := runCLI("diff", "-rel", "0", "-tenant", "a", base, cur); code != 0 {
		t.Fatalf("-tenant a: exit %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	// Tenant b moved: scoped diff trips and names the series.
	code, out, _ := runCLI("diff", "-rel", "0", "-tenant", "b", base, cur)
	if code != 1 || !strings.Contains(out, "cluster_b_fast_bytes") {
		t.Fatalf("-tenant b: exit %d\nstdout: %s", code, out)
	}
	// Unscoped diff still sees the full export.
	if code, _, _ := runCLI("diff", "-rel", "0", base, cur); code != 1 {
		t.Fatalf("unscoped diff: exit %d, want 1", code)
	}
	// An unknown tenant is an error, not a vacuous pass.
	code, _, errOut := runCLI("diff", "-tenant", "zz", base, cur)
	if code != 1 || !strings.Contains(errOut, "no series for tenant") {
		t.Fatalf("-tenant zz: exit %d, stderr: %s", code, errOut)
	}
}

// TestDiffRunGuard: -run refuses to compare a summary from a different
// run instead of reporting spurious deltas.
func TestDiffRunGuard(t *testing.T) {
	dir := t.TempDir()
	s := writeSummary(t, dir, "s.json", "cluster", "", map[string]float64{"cluster_dispatches": 3})
	if code, _, _ := runCLI("diff", "-rel", "0", "-run", "cluster", s, s); code != 0 {
		t.Fatalf("matching -run: exit %d, want 0", code)
	}
	code, _, errOut := runCLI("diff", "-run", "other", s, s)
	if code != 1 || !strings.Contains(errOut, `not "other"`) {
		t.Fatalf("mismatched -run: exit %d, stderr: %s", code, errOut)
	}
}

// TestDiffTenantSelfIsZero: a per-tenant export (meta tenant=<label>)
// diffed against itself under its own -tenant filter reports nothing —
// the scoped gate's baseline property.
func TestDiffTenantSelfIsZero(t *testing.T) {
	dir := t.TempDir()
	s := writeSummary(t, dir, "tenant.json", "cluster", "mix0-ca_lm", map[string]float64{
		"engine_iterations": 2,
		"mem_dram_used":     1 << 20,
	})
	code, out, errOut := runCLI("diff", "-rel", "0", "-tenant", "mix0-ca_lm", s, s)
	if code != 0 {
		t.Fatalf("tenant self-diff: exit %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(out, "no deltas") {
		t.Errorf("tenant self-diff output: %s", out)
	}
}

func TestUsageAndBadInputs(t *testing.T) {
	dir := t.TempDir()
	_, sumPath := runOnce(t, dir, "ok", 1)
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("{\"not\":\"a summary\"}"), 0o644); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		args []string
		code int
	}{
		{"no args", nil, 2},
		{"unknown command", []string{"frobnicate"}, 2},
		{"show missing operand", []string{"show"}, 2},
		{"show nonexistent", []string{"show", filepath.Join(dir, "nope.csv")}, 1},
		{"diff one operand", []string{"diff", sumPath}, 2},
		{"diff negative rel", []string{"diff", "-rel", "-1", sumPath, sumPath}, 1},
		{"diff garbage summary", []string{"diff", garbage, sumPath}, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			code, _, _ := runCLI(tc.args...)
			if code != tc.code {
				t.Errorf("exit %d, want %d", code, tc.code)
			}
		})
	}
}

// TestDiffGroupsByPrefix: a summary mixing cluster, router and engine
// series reports its deltas under per-family headers, in fixed
// cluster/router/engine order, each series under its own family — and
// families with no deltas print no header.
func TestDiffGroupsByPrefix(t *testing.T) {
	dir := t.TempDir()
	base := writeSummary(t, dir, "base.json", "grouped", "", map[string]float64{
		"cluster_a_fast_bytes":  100,
		"cluster_dispatches":    7,
		"router_rejected_jobs":  0,
		"router_p0_placed_jobs": 3,
		"engine_iterations":     2,
	})
	cur := writeSummary(t, dir, "cur.json", "grouped", "", map[string]float64{
		"cluster_a_fast_bytes":  150, // moved
		"cluster_dispatches":    7,
		"router_rejected_jobs":  2, // moved
		"router_p0_placed_jobs": 3,
		"engine_iterations":     4, // moved
	})
	code, out, _ := runCLI("diff", "-rel", "0.05", base, cur)
	if code != 1 {
		t.Fatalf("grouped diff: exit %d, want 1\nstdout: %s", code, out)
	}
	ci := strings.Index(out, "cluster_* (")
	ri := strings.Index(out, "router_* (")
	ei := strings.Index(out, "engine (")
	if ci < 0 || ri < 0 || ei < 0 {
		t.Fatalf("missing group headers:\n%s", out)
	}
	if !(ci < ri && ri < ei) {
		t.Fatalf("groups out of order (cluster=%d router=%d engine=%d):\n%s", ci, ri, ei, out)
	}
	// Each moved series sits inside its own group's section.
	section := func(from, to int) string {
		if to < 0 {
			return out[from:]
		}
		return out[from:to]
	}
	if s := section(ci, ri); !strings.Contains(s, "cluster_a_fast_bytes") || strings.Contains(s, "router_") {
		t.Errorf("cluster section wrong:\n%s", s)
	}
	if s := section(ri, ei); !strings.Contains(s, "router_rejected_jobs") || strings.Contains(s, "cluster_") {
		t.Errorf("router section wrong:\n%s", s)
	}
	if s := section(ei, -1); !strings.Contains(s, "engine_iterations") {
		t.Errorf("engine section wrong:\n%s", s)
	}

	// Only the engine series moves: no cluster/router headers at all.
	base2 := writeSummary(t, dir, "base2.json", "grouped", "", map[string]float64{
		"cluster_a_fast_bytes": 100, "engine_iterations": 2,
	})
	cur2 := writeSummary(t, dir, "cur2.json", "grouped", "", map[string]float64{
		"cluster_a_fast_bytes": 100, "engine_iterations": 4,
	})
	code, out, _ = runCLI("diff", "-rel", "0.05", base2, cur2)
	if code != 1 {
		t.Fatalf("engine-only diff: exit %d, want 1\nstdout: %s", code, out)
	}
	if strings.Contains(out, "cluster_* (") || strings.Contains(out, "router_* (") {
		t.Errorf("empty groups printed headers:\n%s", out)
	}
}
