// Command cametrics inspects and compares the metrics exports of carun,
// casweep and cafigures.
//
//	cametrics show run.csv          # sparkline per series from a wide CSV
//	cametrics show run.json         # statistics table from a JSON summary
//	cametrics diff base.json cur.json           # compare two runs
//	cametrics diff -rel 0.05 base.json cur.json # 5% regression threshold
//	cametrics diff -run cluster -tenant mix0-ca_lm base.json cur.json
//
// diff exits nonzero when any per-series statistic moved by more than the
// relative threshold — the CI regression gate. -run refuses to compare
// summaries from a differently named run; -tenant scopes a cluster
// summary to one tenant's series.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"cachedarrays/internal/metrics"
)

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

const usage = `usage:
  cametrics show <run.csv | run.json>
  cametrics diff [-rel <frac>] [-run <name>] [-tenant <label>] <base.json> <cur.json>
`

// cliMain is the testable entry point; it returns the process exit code
// (0 ok / no deltas, 1 deltas found or run error, 2 usage error).
func cliMain(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprint(stderr, usage)
		return 2
	}
	switch args[0] {
	case "show":
		return cmdShow(args[1:], stdout, stderr)
	case "diff":
		return cmdDiff(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "cametrics: unknown command %q\n%s", args[0], usage)
		return 2
	}
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "cametrics:", err)
	return 1
}

// cmdShow renders one run: sparklines from a CSV time series, a
// statistics table from a JSON summary.
func cmdShow(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cametrics show", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprint(stderr, usage)
		return 2
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return fail(stderr, err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		s, err := metrics.ReadSummary(f)
		if err != nil {
			return fail(stderr, err)
		}
		showSummary(stdout, s)
		return 0
	}
	ts, err := metrics.ReadCSV(f)
	if err != nil {
		return fail(stderr, err)
	}
	showSeries(stdout, ts)
	return 0
}

// sparkTicks are the eight block-element levels of a sparkline.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values into width cells, each the mean of its span,
// scaled to the series' own min..max range.
func sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	if width > len(values) {
		width = len(values)
	}
	cells := make([]float64, width)
	for i := range cells {
		lo, hi := i*len(values)/width, (i+1)*len(values)/width
		if hi == lo {
			hi = lo + 1
		}
		var sum float64
		for _, v := range values[lo:hi] {
			sum += v
		}
		cells[i] = sum / float64(hi-lo)
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range cells {
		min, max = math.Min(min, v), math.Max(max, v)
	}
	var b strings.Builder
	for _, v := range cells {
		tick := 0
		if max > min {
			tick = int((v - min) / (max - min) * float64(len(sparkTicks)-1))
		}
		b.WriteRune(sparkTicks[tick])
	}
	return b.String()
}

// showSeries prints one sparkline row per series of a CSV export.
func showSeries(w io.Writer, ts *metrics.TimeSeries) {
	if len(ts.Times) == 0 {
		fmt.Fprintln(w, "no samples")
		return
	}
	fmt.Fprintf(w, "%d samples, t = %g .. %g\n\n", len(ts.Times), ts.Times[0], ts.Times[len(ts.Times)-1])
	nameW := 0
	for _, n := range ts.Names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	for _, n := range ts.Names {
		col := ts.Cols[n]
		min, max := math.Inf(1), math.Inf(-1)
		for _, v := range col {
			min, max = math.Min(min, v), math.Max(max, v)
		}
		fmt.Fprintf(w, "%-*s  %s  [%.4g .. %.4g] last %.4g\n",
			nameW, n, sparkline(col, 40), min, max, col[len(col)-1])
	}
}

// showSummary prints the per-series statistics table of a JSON summary.
func showSummary(w io.Writer, s *metrics.Summary) {
	if len(s.Meta) > 0 {
		keys := make([]string, 0, len(s.Meta))
		for k := range s.Meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%-10s %s\n", k+":", s.Meta[k])
		}
	}
	fmt.Fprintf(w, "%-10s %d points every %gs, t = %g .. %g\n\n", "samples:", s.Samples, s.Interval, s.Start, s.End)

	names := make([]string, 0, len(s.Series))
	nameW := len("series")
	for n := range s.Series {
		names = append(names, n)
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-*s  %-7s  %12s  %12s  %12s  %12s\n", nameW, "series", "kind", "min", "max", "mean", "last")
	for _, n := range names {
		ss := s.Series[n]
		fmt.Fprintf(w, "%-*s  %-7s  %12.5g  %12.5g  %12.5g  %12.5g\n",
			nameW, n, ss.Kind, ss.Min, ss.Max, ss.Mean, ss.Last)
	}
	if len(s.Histograms) > 0 {
		hnames := make([]string, 0, len(s.Histograms))
		for n := range s.Histograms {
			hnames = append(hnames, n)
		}
		sort.Strings(hnames)
		fmt.Fprintln(w)
		for _, n := range hnames {
			h := s.Histograms[n]
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Fprintf(w, "%s: %d observations, min %.5g, max %.5g, mean %.5g\n",
				n, h.Count, h.Min, h.Max, mean)
		}
	}
}

// cmdDiff compares two summaries and reports every statistic that moved
// by more than -rel; any delta is exit code 1.
func cmdDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cametrics diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rel := fs.Float64("rel", 0.02, "relative-delta threshold: |new-old|/max(|old|,|new|) above this is a regression")
	run := fs.String("run", "", "require both summaries to come from this run (meta run=...)")
	tenant := fs.String("tenant", "", "diff only this tenant's series (cluster_<label>_* or a per-tenant export)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprint(stderr, usage)
		return 2
	}
	if *rel < 0 {
		return fail(stderr, fmt.Errorf("negative -rel %g", *rel))
	}
	read := func(path string) (*metrics.Summary, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return metrics.ReadSummary(f)
	}
	base, err := read(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	cur, err := read(fs.Arg(1))
	if err != nil {
		return fail(stderr, err)
	}
	if base, err = filterSummary(base, *run, *tenant, fs.Arg(0)); err != nil {
		return fail(stderr, err)
	}
	if cur, err = filterSummary(cur, *run, *tenant, fs.Arg(1)); err != nil {
		return fail(stderr, err)
	}
	deltas := metrics.Diff(base, cur, *rel)
	if len(deltas) == 0 {
		fmt.Fprintf(stdout, "no deltas above %.3g%% across %d series\n", 100**rel, len(base.Series))
		return 0
	}
	fmt.Fprintf(stdout, "%d deltas above %.3g%% (%s -> %s):\n", len(deltas), 100**rel, fs.Arg(0), fs.Arg(1))
	for _, g := range groupDeltas(deltas) {
		fmt.Fprintf(stdout, "%s (%d):\n", g.name, len(g.deltas))
		for _, d := range g.deltas {
			switch d.Stat {
			case "added":
				fmt.Fprintf(stdout, "  %-40s series only in %s (last %.6g)\n", d.Series, fs.Arg(1), d.New)
			case "missing":
				fmt.Fprintf(stdout, "  %-40s series only in %s (last %.6g)\n", d.Series, fs.Arg(0), d.Old)
			default:
				fmt.Fprintf(stdout, "  %-40s %-5s %.6g -> %.6g (%+.2f%%)\n",
					d.Series, d.Stat, d.Old, d.New, 100*(d.New-d.Old)/math.Max(math.Abs(d.Old), math.Abs(d.New)))
			}
		}
	}
	return 1
}

// deltaGroup is one prefix family of the diff report.
type deltaGroup struct {
	name   string
	deltas []metrics.Delta
}

// seriesGroup classifies a series name by its prefix family: the cluster
// fairness/quota series (cluster_*), the router placement series
// (router_*), and everything else — the engine's solo series. A cluster
// summary mixes all three, so the flat delta list interleaved unrelated
// subsystems; the grouped report keeps each family under its own header.
func seriesGroup(series string) string {
	switch {
	case strings.HasPrefix(series, "cluster_"):
		return "cluster_*"
	case strings.HasPrefix(series, "router_"):
		return "router_*"
	default:
		return "engine"
	}
}

// groupDeltas partitions the deltas by prefix family, preserving Diff's
// (series, stat) order inside each group. Group order is fixed —
// cluster, router, engine — and empty groups are omitted.
func groupDeltas(deltas []metrics.Delta) []deltaGroup {
	byName := map[string][]metrics.Delta{}
	for _, d := range deltas {
		g := seriesGroup(d.Series)
		byName[g] = append(byName[g], d)
	}
	var out []deltaGroup
	for _, name := range []string{"cluster_*", "router_*", "engine"} {
		if ds := byName[name]; len(ds) > 0 {
			out = append(out, deltaGroup{name: name, deltas: ds})
		}
	}
	return out
}

// filterSummary restricts a summary to the selected run and tenant before
// diffing. -run guards against comparing unrelated exports; -tenant scopes
// the gate to one tenant of a cluster run, accepting either a per-tenant
// export (meta tenant=<label>) or a cluster summary's cluster_<label>_*
// series.
func filterSummary(s *metrics.Summary, run, tenant, path string) (*metrics.Summary, error) {
	if run != "" && s.Meta["run"] != run {
		return nil, fmt.Errorf("%s: summary is from run %q, not %q", path, s.Meta["run"], run)
	}
	if tenant == "" || s.Meta["tenant"] == tenant {
		return s, nil
	}
	prefix := "cluster_" + tenant + "_"
	out := *s
	out.Series = make(map[string]metrics.SeriesSummary)
	for n, ss := range s.Series {
		if strings.HasPrefix(n, prefix) {
			out.Series[n] = ss
		}
	}
	out.Histograms = make(map[string]metrics.HistogramSnapshot)
	for n, h := range s.Histograms {
		if strings.HasPrefix(n, prefix) {
			out.Histograms[n] = h
		}
	}
	if len(out.Series) == 0 {
		return nil, fmt.Errorf("%s: no series for tenant %q (summary is tenant %q and has no %s* series)",
			path, tenant, s.Meta["tenant"], prefix)
	}
	return &out, nil
}
