package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cachedarrays/internal/cluster"
	"cachedarrays/internal/engine"
	"cachedarrays/internal/models"
	"cachedarrays/internal/sched"
	"cachedarrays/internal/tracing"
	"cachedarrays/internal/units"
)

// writeClusterTraceFile runs a small traced three-tenant cluster (with
// solo baselines so induced-eviction counters are populated) and writes
// its JSONL export to a temp file.
func writeClusterTraceFile(t *testing.T) (string, []tracing.Event) {
	t.Helper()
	m := func() *models.Model { return models.MLP(1024, []int{4096, 4096}, 10, 256) }
	cfg := engine.Config{
		FastCapacity: 32 * units.MB,
		SlowCapacity: 2 * units.GB,
		Iterations:   2,
		Trace:        true,
	}
	res, err := cluster.Run(cluster.Config{
		Engine: cfg,
		Jobs: []cluster.Job{
			{Name: "a", Model: m(), Mode: "CA:LMP"},
			{Name: "b", Model: m(), Mode: "CA:LM", Arrival: 0.001},
			{Name: "c", Model: m(), Mode: "2LM:M", Arrival: 0.002},
		},
		Baselines: &sched.Scheduler{},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracing.WriteJSONL(&buf, res.Trace); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cluster.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, res.Trace
}

// TestCLISummarizesClusterTrace drives the full command path on a genuine
// cacluster -trace export: lane verification, the tenant table, and both
// interference matrices.
func TestCLISummarizesClusterTrace(t *testing.T) {
	path, _ := writeClusterTraceFile(t)
	var stdout, stderr bytes.Buffer
	if code := cliMain([]string{path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"per-lane consistency verified",
		"per-tenant outcome:",
		"stall/wait attribution",
		"induced-eviction attribution",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	for _, tenant := range []string{"a", "b", "c"} {
		if !strings.Contains(out, tenant) {
			t.Errorf("tenant %q missing from report:\n%s", tenant, out)
		}
	}
	// A cluster trace must not fall through to the solo report.
	if strings.Contains(out, "most-moved objects") {
		t.Errorf("cluster trace produced the solo object listing:\n%s", out)
	}
}

// TestCLIRejectsTamperedClusterTrace: corrupting the cluster record's
// per-tenant attribution must fail lane re-verification with exit 1.
func TestCLIRejectsTamperedClusterTrace(t *testing.T) {
	_, events := writeClusterTraceFile(t)
	tampered := make([]tracing.Event, len(events))
	copy(tampered, events)
	hit := false
	for i := range tampered {
		if tampered[i].Cluster != nil {
			c := *tampered[i].Cluster
			c.Tenants = append([]tracing.TenantTotals(nil), c.Tenants...)
			c.Tenants[0].FastReadBytes += 4096
			tampered[i].Cluster = &c
			hit = true
		}
	}
	if !hit {
		t.Fatal("trace has no cluster record")
	}
	var buf bytes.Buffer
	if err := tracing.WriteJSONL(&buf, tampered); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tampered.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := cliMain([]string{path}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "catrace:") {
		t.Errorf("stderr lacks the error line: %q", stderr.String())
	}
}

// matrixRow finds the matrix row for a tenant and splits it into fields.
func matrixRow(t *testing.T, out, tenant string) []string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		// Rows are "  <name padded> cells..."; the column-header line
		// starts with the padding only.
		if strings.HasPrefix(line, "  "+tenant+" ") {
			return strings.Fields(line)
		}
	}
	t.Fatalf("no row for tenant %q in:\n%s", tenant, out)
	return nil
}

// TestEvictionMatrixAttribution pins the attribution rule on a synthetic
// stream: each of a victim's last InducedEvictions eviction decisions is
// blamed on the co-tenant holding the most fast-tier bytes at that
// instant, and each row sums to the victim's induced-eviction counter.
func TestEvictionMatrixAttribution(t *testing.T) {
	c := &tracing.ClusterTotals{Tenants: []tracing.TenantTotals{
		{Name: "A", InducedEvictions: 2},
		{Name: "B", InducedEvictions: 0},
		{Name: "C", InducedEvictions: 1},
	}}
	events := []tracing.Event{
		{Kind: tracing.KindAlloc, Tenant: "A", To: "fast", Bytes: 100},
		{Kind: tracing.KindAlloc, Tenant: "B", To: "fast", Bytes: 200},
		{Kind: tracing.KindAlloc, Tenant: "C", To: "fast", Bytes: 50},
		// C evicts while B holds the most fast bytes -> blamed on B.
		{Kind: tracing.KindDecision, Tenant: "C", Op: "evict"},
		{Kind: tracing.KindFree, Tenant: "B", From: "fast", Bytes: 200},
		// A evicts three times with B empty and C at 50 -> blamed on C;
		// only the last two count against A's induced total.
		{Kind: tracing.KindDecision, Tenant: "A", Op: "evict"},
		{Kind: tracing.KindDecision, Tenant: "A", Op: "evict-forced"},
		{Kind: tracing.KindDecision, Tenant: "A", Op: "evict"},
		// Non-eviction decisions never enter the matrix.
		{Kind: tracing.KindDecision, Tenant: "A", Op: "prefetch"},
	}
	var buf bytes.Buffer
	printEvictionMatrix(&buf, events, c)
	out := buf.String()

	// Columns: A, B, C, total; the self cell renders as "-".
	if got := matrixRow(t, out, "A"); got[1] != "-" || got[2] != "0" || got[3] != "2" || got[4] != "2" {
		t.Errorf("row A = %v, want [A - 0 2 2]", got)
	}
	if got := matrixRow(t, out, "B"); got[2] != "-" || got[4] != "0" {
		t.Errorf("row B = %v, want self '-' and total 0", got)
	}
	if got := matrixRow(t, out, "C"); got[1] != "0" || got[2] != "1" || got[4] != "1" {
		t.Errorf("row C = %v, want [C 0 1 - 1]", got)
	}
}

// TestEvictionMatrixOmittedWhenNoInterference: zero induced evictions
// (solo-equivalent run, or no baselines) prints the note, not a matrix.
func TestEvictionMatrixOmittedWhenNoInterference(t *testing.T) {
	c := &tracing.ClusterTotals{Tenants: []tracing.TenantTotals{
		{Name: "A"}, {Name: "B"},
	}}
	var buf bytes.Buffer
	printEvictionMatrix(&buf, nil, c)
	if !strings.Contains(buf.String(), "no induced evictions") {
		t.Errorf("output: %q", buf.String())
	}
}

// TestWaitMatrixWindows pins the wait attribution: only another lane's
// clock advances that end inside the victim's [start, finish] span count.
func TestWaitMatrixWindows(t *testing.T) {
	c := &tracing.ClusterTotals{Tenants: []tracing.TenantTotals{
		{Name: "A", Start: 0, Finish: 10, Wait: 4},
		{Name: "B", Start: 0, Finish: 20},
	}}
	events := []tracing.Event{
		// Inside A's span: charged to B on A's row.
		{Kind: tracing.KindClock, Tenant: "B", T0: 5, Dur: 4},
		// After A finished: not A's wait.
		{Kind: tracing.KindClock, Tenant: "B", T0: 15, Dur: 3},
		// A's own advances never appear on its row.
		{Kind: tracing.KindClock, Tenant: "A", T0: 6, Dur: 2},
		// Untagged advances (setup between dispatches) are unattributed.
		{Kind: tracing.KindClock, T0: 7, Dur: 1},
	}
	var buf bytes.Buffer
	printWaitMatrix(&buf, events, c)
	out := buf.String()
	rowA := strings.Join(matrixRow(t, out, "A"), " ")
	if !strings.Contains(rowA, "4.000 s") || strings.Contains(rowA, "7.000") {
		t.Errorf("row A = %q, want 4 s charged to B", rowA)
	}
	rowB := strings.Join(matrixRow(t, out, "B"), " ")
	if !strings.Contains(rowB, "2.000 s") {
		t.Errorf("row B = %q, want A's 2 s advance charged while B ran", rowB)
	}
}
