package main

import (
	"fmt"
	"io"

	"cachedarrays/internal/tracing"
	"cachedarrays/internal/units"
)

// clusterReport summarizes a multi-tenant (tenant-tagged) trace: per-lane
// re-verification, the per-tenant outcome table, and the two cross-tenant
// interference matrices — wait time attributed to the tenant that was
// running, and induced evictions attributed to the tenant holding the
// most fast-tier bytes when the eviction fired.
func clusterReport(w io.Writer, events []tracing.Event, c *tracing.ClusterTotals) error {
	if err := tracing.VerifyLanes(events); err != nil {
		return err
	}
	fmt.Fprintf(w, "cluster trace: %d events, %d tenants, devices %s+%s (per-lane consistency verified)\n",
		len(events), len(c.Tenants), c.FastDevice, c.SlowDevice)
	fmt.Fprintf(w, "makespan    : %s over %d dispatched events\n",
		units.Seconds(c.Makespan), c.Dispatches)
	fmt.Fprintf(w, "traffic     : %s read %s, write %s; %s read %s, write %s\n",
		c.FastDevice, units.Bytes(c.FastReadBytes), units.Bytes(c.FastWriteBytes),
		c.SlowDevice, units.Bytes(c.SlowReadBytes), units.Bytes(c.SlowWriteBytes))

	fmt.Fprintln(w, "\nper-tenant outcome:")
	fmt.Fprintf(w, "  %-16s %-8s %6s %10s %10s %9s %14s %14s\n",
		"tenant", "mode", "events", "busy", "wait", "slowdown", "fast traffic", "induced evict")
	for _, t := range c.Tenants {
		slowdown := "-"
		if t.Slowdown > 0 {
			slowdown = fmt.Sprintf("%.2fx", t.Slowdown)
		}
		fmt.Fprintf(w, "  %-16s %-8s %6d %10s %10s %9s %14s %14d\n",
			clip(t.Name, 16), t.Mode, t.Steps,
			units.Seconds(t.Busy), units.Seconds(t.Wait), slowdown,
			units.Bytes(t.FastReadBytes+t.FastWriteBytes), t.InducedEvictions)
	}

	printWaitMatrix(w, events, c)
	printEvictionMatrix(w, events, c)
	return nil
}

// printWaitMatrix attributes each tenant's wait time to the tenants whose
// events the platform was running meanwhile: every clock advance inside
// the victim's active span that belongs to another lane is time that lane
// kept the victim off the platform (in-flight transfers and quota holds
// both surface as the blocker's clock advances).
func printWaitMatrix(w io.Writer, events []tracing.Event, c *tracing.ClusterTotals) {
	idx := laneIndex(c)
	n := len(c.Tenants)
	wait := make([][]float64, n)
	for i := range wait {
		wait[i] = make([]float64, n)
	}
	for _, e := range events {
		if e.Kind != tracing.KindClock || e.Tenant == "" {
			continue
		}
		bi, ok := idx[e.Tenant]
		if !ok {
			continue
		}
		for vi := range c.Tenants {
			if vi == bi {
				continue
			}
			v := &c.Tenants[vi]
			// The advance ends at T0; it blocked tenants that were live
			// (started, unfinished) while it ran.
			if e.T0 > v.Start && e.T0 <= v.Finish {
				wait[vi][bi] += e.Dur
			}
		}
	}
	printMatrix(w, c, wait, "stall/wait attribution (seconds the column tenant ran while the row tenant waited):",
		func(v float64) string { return units.Seconds(v) },
		func(vi int) string { return units.Seconds(c.Tenants[vi].Wait) })
}

// printEvictionMatrix attributes each tenant's induced evictions (its
// evictions beyond the solo baseline) to the co-tenant holding the most
// fast-tier bytes at the instant the eviction fired — the neighbour whose
// residency squeezed the victim. A tenant's first evictions are the ones
// it would also have suffered solo, so the attribution takes the *last*
// InducedEvictions of each lane. Row sums therefore equal the cluster's
// per-tenant induced-eviction counters by construction.
func printEvictionMatrix(w io.Writer, events []tracing.Event, c *tracing.ClusterTotals) {
	idx := laneIndex(c)
	n := len(c.Tenants)
	var induced int64
	for _, t := range c.Tenants {
		induced += t.InducedEvictions
	}
	if induced == 0 {
		fmt.Fprintln(w, "\nno induced evictions (no cross-tenant capacity interference, or run without baselines)")
		return
	}

	// Pass 1: walk the merged stream, tracking each tenant's fast-tier
	// holdings from its alloc/free events; at every eviction decision
	// record the victim and the co-tenant with the largest holdings.
	holdings := make([]int64, n)
	type evict struct{ victim, blamed int }
	var evicts []evict
	for _, e := range events {
		ti, ok := idx[e.Tenant]
		if !ok {
			continue
		}
		switch e.Kind {
		case tracing.KindAlloc:
			if e.To == "fast" {
				holdings[ti] += e.Bytes
			}
		case tracing.KindFree:
			if e.From == "fast" {
				holdings[ti] -= e.Bytes
			}
		case tracing.KindDecision:
			if e.Op != "evict" && e.Op != "evict-forced" {
				continue
			}
			blamed := -1
			for ci := 0; ci < n; ci++ {
				if ci == ti {
					continue
				}
				if blamed < 0 || holdings[ci] > holdings[blamed] {
					blamed = ci
				}
			}
			if blamed >= 0 {
				evicts = append(evicts, evict{victim: ti, blamed: blamed})
			}
		}
	}

	// Pass 2: per victim, count only its last InducedEvictions records.
	counts := make([][]float64, n)
	perVictim := make([][]evict, n)
	for i := range counts {
		counts[i] = make([]float64, n)
	}
	for _, ev := range evicts {
		perVictim[ev.victim] = append(perVictim[ev.victim], ev)
	}
	for vi := range c.Tenants {
		k := int(c.Tenants[vi].InducedEvictions)
		evs := perVictim[vi]
		if k > len(evs) {
			k = len(evs)
		}
		for _, ev := range evs[len(evs)-k:] {
			counts[vi][ev.blamed]++
		}
	}
	printMatrix(w, c, counts, "induced-eviction attribution (evictions of the row tenant induced by the column tenant):",
		func(v float64) string { return fmt.Sprintf("%d", int64(v)) },
		func(vi int) string { return fmt.Sprintf("%d", c.Tenants[vi].InducedEvictions) })
}

// laneIndex maps tenant lane names to their cluster-record positions.
func laneIndex(c *tracing.ClusterTotals) map[string]int {
	idx := make(map[string]int, len(c.Tenants))
	for i, t := range c.Tenants {
		idx[t.Name] = i
	}
	return idx
}

// printMatrix renders one who-did-what-to-whom matrix: rows are victims,
// columns the co-tenants the effect is attributed to, with a trailing
// total column from the cluster record.
func printMatrix(w io.Writer, c *tracing.ClusterTotals, m [][]float64,
	title string, cell func(float64) string, total func(int) string) {

	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "  %-16s", "")
	cols := make([]string, len(c.Tenants))
	for i, t := range c.Tenants {
		cols[i] = clip(t.Name, 12)
		fmt.Fprintf(w, " %12s", cols[i])
	}
	fmt.Fprintf(w, " %12s\n", "total")
	for vi, t := range c.Tenants {
		fmt.Fprintf(w, "  %-16s", clip(t.Name, 16))
		for bi := range c.Tenants {
			s := "-"
			if bi != vi {
				s = cell(m[vi][bi])
			}
			fmt.Fprintf(w, " %12s", s)
		}
		fmt.Fprintf(w, " %12s\n", total(vi))
	}
}
