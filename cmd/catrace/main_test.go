package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/tracing"
)

// syntheticTrace builds a hand-written event stream with known stall
// sites, movement history and fault activity, so the tables' aggregation
// and ordering can be asserted exactly.
func syntheticTrace() []tracing.Event {
	return []tracing.Event{
		{Kind: tracing.KindBind, Obj: 7, Op: "conv1.weight"},
		{Kind: tracing.KindBind, Obj: 9, Op: "fc.activations"},
		// Three stall sites: a dominant hint stall under conv1, a wait
		// on object 9, and an end-of-iteration drain.
		{Kind: tracing.KindStall, Op: "hint", KName: "conv1", Dur: 3.0},
		{Kind: tracing.KindStall, Op: "hint", KName: "conv1", Dur: 2.0},
		{Kind: tracing.KindStall, Op: "wait", KName: "fc", Obj: 9, Dur: 1.0},
		{Kind: tracing.KindStall, Op: "drain", Dur: 0.5},
		// Zero-duration stalls must not create rows.
		{Kind: tracing.KindStall, Op: "hint", KName: "conv2", Dur: 0},
		// Movement history: object 7 moved twice, object 9 once.
		{Kind: tracing.KindCopy, Obj: 7, Bytes: 4096, From: "fast", To: "slow", Cause: "archive"},
		{Kind: tracing.KindCopy, Obj: 7, Bytes: 4096, From: "slow", To: "fast", Cause: "willread"},
		{Kind: tracing.KindCopy, Obj: 9, Bytes: 1024, From: "fast", To: "slow", Cause: "evict"},
	}
}

// faultedTrace extends the synthetic stream with injector activity: two
// alloc-fail faults inside a willwrite hint window, the victim's retries,
// and the policy's fallback decision.
func faultedTrace() []tracing.Event {
	return append(syntheticTrace(),
		tracing.Event{Kind: tracing.KindFault, Op: "alloc-fail", Bytes: 4096, Cause: "willwrite"},
		tracing.Event{Kind: tracing.KindFault, Op: "alloc-fail", Bytes: 4096, Cause: "willwrite"},
		tracing.Event{Kind: tracing.KindFault, Op: "copy-error", Bytes: 2048, Cause: "archive"},
		tracing.Event{Kind: tracing.KindRetry, Op: "alloc-retry", Obj: 7, Dur: 50e-6, Cause: "willwrite"},
		tracing.Event{Kind: tracing.KindRetry, Op: "alloc-retry", Obj: 7, Dur: 100e-6, Cause: "willwrite"},
		tracing.Event{Kind: tracing.KindRetry, Op: "copy-retry", Obj: 9, Dur: 100e-6, Cause: "archive"},
		tracing.Event{Kind: tracing.KindDecision, Op: "fallback-slow", Bytes: 4096, Cause: "willwrite"},
		tracing.Event{Kind: tracing.KindDecision, Op: "fetch-failure", Obj: 9, Bytes: 1024, Cause: "willread"},
		// Ordinary policy decisions must stay out of the fault table.
		tracing.Event{Kind: tracing.KindDecision, Op: "evict", Obj: 9, Bytes: 1024, Cause: "willwrite"},
	)
}

func TestStallTableAggregatesAndRanks(t *testing.T) {
	events := syntheticTrace()
	names := tensorNames(events)
	if names[7] != "conv1.weight" || names[9] != "fc.activations" {
		t.Fatalf("tensorNames = %v", names)
	}

	var buf bytes.Buffer
	printStallTable(&buf, events, names, 6.5, 10)
	out := buf.String()

	if !strings.Contains(out, "top stall sites (of 3):") {
		t.Fatalf("zero-duration stall created a row:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header line, column line, then rows ranked by seconds descending:
	// hint/conv1 (5 s), wait/fc (1 s), drain (0.5 s).
	rows := lines[2:]
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d:\n%s", len(rows), out)
	}
	for i, want := range []string{"hint", "wait", "drain"} {
		if !strings.HasPrefix(strings.TrimSpace(rows[i]), want) {
			t.Fatalf("row %d = %q, want site %q", i, rows[i], want)
		}
	}
	// The hint row aggregates both conv1 stalls and owns 5/6.5 of the total.
	if !strings.Contains(rows[0], "conv1") || !strings.Contains(rows[0], "2") ||
		!strings.Contains(rows[0], "76.9%") {
		t.Fatalf("hint row misaggregated: %q", rows[0])
	}
	// The wait row is attributed to the blocking tensor by name.
	if !strings.Contains(rows[1], "fc.activations") {
		t.Fatalf("wait row lost its tensor attribution: %q", rows[1])
	}
	// The drain row renders the empty kernel as end-of-iteration.
	if !strings.Contains(rows[2], "(end of iteration)") {
		t.Fatalf("drain row = %q", rows[2])
	}
}

func TestStallTableHonorsTopN(t *testing.T) {
	events := syntheticTrace()
	var buf bytes.Buffer
	printStallTable(&buf, events, tensorNames(events), 6.5, 1)
	out := buf.String()
	if !strings.Contains(out, "top stall sites (of 3):") {
		t.Fatalf("truncation changed the site count:\n%s", out)
	}
	if strings.Contains(out, "wait") || strings.Contains(out, "drain") {
		t.Fatalf("-top 1 printed more than one row:\n%s", out)
	}
}

func TestStallTableEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	printStallTable(&buf, nil, nil, 0, 10)
	if !strings.Contains(buf.String(), "no movement stalls recorded") {
		t.Fatalf("empty trace output: %q", buf.String())
	}
}

func TestFaultTableAttributesDegradation(t *testing.T) {
	events := faultedTrace()
	var buf bytes.Buffer
	printFaultTable(&buf, events, tensorNames(events))
	out := buf.String()

	// Six distinct sites: 2 fault kinds, 2 retry kinds, 2 degradation
	// decisions — the plain "evict" decision must not appear.
	if !strings.Contains(out, "injected faults and degradation (6 sites):") {
		t.Fatalf("site count wrong:\n%s", out)
	}
	if strings.Contains(out, "evict\n") || strings.Contains(out, " evict ") {
		t.Fatalf("ordinary decision leaked into the fault table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	rows := lines[2:]
	if len(rows) != 6 {
		t.Fatalf("want 6 rows, got %d:\n%s", len(rows), out)
	}
	// Class ordering: faults, then retries, then decisions; within a
	// class, higher counts first.
	wantPrefix := []string{"fault", "fault", "retry", "retry", "decision", "decision"}
	for i, want := range wantPrefix {
		if !strings.HasPrefix(strings.TrimSpace(rows[i]), want) {
			t.Fatalf("row %d = %q, want class %q", i, rows[i], want)
		}
	}
	// The double alloc-fail outranks the single copy-error.
	if !strings.Contains(rows[0], "alloc-fail") || !strings.Contains(rows[1], "copy-error") {
		t.Fatalf("fault rows misordered:\n%s", out)
	}
	// Each event is attributed to the hint window it fired in.
	if !strings.Contains(rows[0], "willwrite") || !strings.Contains(rows[1], "archive") {
		t.Fatalf("faults lost their hint attribution:\n%s", out)
	}
	// Retries name their victim tensors.
	if !strings.Contains(rows[2], "conv1.weight") || !strings.Contains(rows[3], "fc.activations") {
		t.Fatalf("retries lost their tensor attribution:\n%s", out)
	}
	// The policy's degradation decisions surface with their causes.
	if !strings.Contains(out, "fallback-slow") || !strings.Contains(out, "fetch-failure") {
		t.Fatalf("degradation decisions missing:\n%s", out)
	}
}

// writeTraceFile runs a small traced experiment and writes its JSONL
// export to a temp file, returning the path and raw bytes.
func writeTraceFile(t *testing.T) (string, []byte) {
	t.Helper()
	r, err := engine.RunCA(models.MLP(4096, []int{4096, 4096}, 1000, 16), policy.CALM,
		engine.Config{Iterations: 2, Trace: true,
			FastCapacity: 2 * 1 << 30, SlowCapacity: 16 * 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracing.WriteJSONL(&buf, r.Trace); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, buf.Bytes()
}

// TestCLISummarizesRealTrace drives the full command path on a genuine
// carun-style export.
func TestCLISummarizesRealTrace(t *testing.T) {
	path, _ := writeTraceFile(t)
	var stdout, stderr bytes.Buffer
	if code := cliMain([]string{path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"consistency verified", "movement", "stalls"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("output missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestCLIRejectsCorruptedTrace is the regression test for the malformed
// JSONL bug: a truncated or corrupted trace file must produce a clear
// line-numbered error and a nonzero exit, never a panic or a silently
// wrong summary.
func TestCLIRejectsCorruptedTrace(t *testing.T) {
	_, raw := writeTraceFile(t)
	dir := t.TempDir()
	corrupt := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	tests := []struct {
		name string
		path string
		want string // stderr substring
	}{
		// Cut at a comma so the last line is guaranteed mid-object.
		{"truncated mid-line", corrupt("trunc.jsonl",
			raw[:bytes.LastIndexByte(raw[:len(raw)*2/3], ',')]), "line"},
		{"null line injected", corrupt("null.jsonl",
			append([]byte("null\n"), raw...)), "line 1"},
		{"not a trace at all", corrupt("csv.jsonl", []byte("t,kind,dur\n0,stall,1\n")), "line 1"},
		{"empty file", corrupt("empty.jsonl", nil), "empty trace"},
		{"nonexistent file", filepath.Join(dir, "nope.jsonl"), "no such file"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := cliMain([]string{tc.path}, &stdout, &stderr)
			if code != 1 {
				t.Fatalf("exit %d, want 1 (stdout: %s)", code, stdout.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr %q missing %q", stderr.String(), tc.want)
			}
		})
	}
	// Usage errors are distinct from data errors.
	var stdout, stderr bytes.Buffer
	if code := cliMain(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
}

func TestFaultTableOmittedForCleanTrace(t *testing.T) {
	var buf bytes.Buffer
	printFaultTable(&buf, syntheticTrace(), nil)
	if buf.Len() != 0 {
		t.Fatalf("fault-free trace produced a fault section: %q", buf.String())
	}
}

// TestFaultTableOnRealFaultedRun closes the loop end to end: a faulted
// engine run's trace, fed through the same printers the CLI uses, must
// surface retries and faults attributed to hint windows.
func TestFaultTableOnRealFaultedRun(t *testing.T) {
	r, err := engine.RunCA(models.ResNet(50, 512), policy.CALMP, engine.Config{
		Iterations: 2,
		Trace:      true,
		FaultSpec:  "seed=3;allocfail:fast:t0=0,p=0.3;copyerr:t0=0,p=0.2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults.Total() == 0 {
		t.Skip("schedule never fired at this scale")
	}
	var buf bytes.Buffer
	printFaultTable(&buf, r.Trace, tensorNames(r.Trace))
	out := buf.String()
	if !strings.Contains(out, "injected faults and degradation") {
		t.Fatalf("faulted run produced no fault section:\n%s", out)
	}
	if !strings.Contains(out, "fault") || !strings.Contains(out, "retry") {
		t.Fatalf("fault section missing classes:\n%s", out)
	}
}
