// Command catrace summarizes an execution trace recorded with
// carun -trace <file>.jsonl: it re-verifies the trace against the run's
// embedded aggregates, attributes movement stalls to their sites,
// attributes injected faults and the resulting retries and degradation
// decisions to their hint windows, and reconstructs per-object movement
// histories.
//
// Cluster traces (cacluster -trace) are detected automatically: the tool
// re-verifies every tenant's lane instead, then prints the per-tenant
// outcome table and the two cross-tenant interference matrices — stall
// time attributed to the tenant that was running, and induced evictions
// attributed to the tenant crowding the fast tier.
//
// Examples:
//
//	carun -model vgg416 -batch 256 -mode CA:LMP -trace run.jsonl
//	catrace run.jsonl
//	catrace -top 20 -objects 5 -v run.jsonl
//	cacluster -jobs 3 -trace cluster.jsonl && catrace cluster.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"cachedarrays/internal/tracing"
	"cachedarrays/internal/units"
)

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

// cliMain is the testable entry point: it returns the process exit code
// (0 ok, 1 unreadable/malformed/inconsistent trace, 2 usage error).
func cliMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("catrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		top     = fs.Int("top", 10, "rows in the stall-attribution table")
		objects = fs.Int("objects", 10, "objects in the movement-history listing")
		verbose = fs.Bool("v", false, "print every movement event of the listed objects")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: catrace [-top N] [-objects N] [-v] trace.jsonl")
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "catrace:", err)
		return 1
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	events, err := tracing.ReadJSONL(f)
	f.Close()
	if err != nil {
		return fail(fmt.Errorf("%s: %w", fs.Arg(0), err))
	}
	if len(events) == 0 {
		return fail(fmt.Errorf("%s: empty trace", fs.Arg(0)))
	}

	if c := tracing.FindCluster(events); c != nil {
		if err := clusterReport(stdout, events, c); err != nil {
			return fail(err)
		}
		return 0
	}

	t := tracing.FindTotals(events)
	if t == nil {
		return fail(fmt.Errorf("%s: no totals record — is this a carun -trace .jsonl file?", fs.Arg(0)))
	}
	if err := tracing.Verify(events); err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "trace       : %d events, %d iterations, devices %s+%s (consistency verified)\n",
		len(events), len(t.MoveTimeByIter), t.FastDevice, t.SlowDevice)

	s := tracing.Summarize(events)
	fmt.Fprintf(stdout, "movement    : %d copies — %s %s, %s %s, %s within fast, %s within slow; %d defrag moves\n",
		s.Copies,
		units.Bytes(s.BytesFastToSlow), "fast->slow",
		units.Bytes(s.BytesSlowToFast), "slow->fast",
		units.Bytes(s.BytesWithinFast), units.Bytes(s.BytesWithinSlow), s.DefragMoves)
	fmt.Fprintf(stdout, "traffic     : %s read %s, write %s; %s read %s, write %s\n",
		t.FastDevice, units.Bytes(t.FastReadBytes), units.Bytes(t.FastWriteBytes),
		t.SlowDevice, units.Bytes(t.SlowReadBytes), units.Bytes(t.SlowWriteBytes))
	fmt.Fprintf(stdout, "stalls      : %s total", units.Seconds(s.StallSeconds))
	for i, m := range t.MoveTimeByIter {
		fmt.Fprintf(stdout, "  iter%d=%s", i, units.Seconds(m))
	}
	fmt.Fprintln(stdout)

	names := tensorNames(events)
	printStallTable(stdout, events, names, s.StallSeconds, *top)
	printFaultTable(stdout, events, names)
	printObjectHistories(stdout, events, names, *objects, *verbose)
	return 0
}

// tensorNames maps object IDs to tensor names via the bind events.
func tensorNames(events []tracing.Event) map[uint64]string {
	names := map[uint64]string{}
	for _, e := range events {
		if e.Kind == tracing.KindBind {
			names[e.Obj] = e.Op
		}
	}
	return names
}

// stallKey identifies one stall site: where the application thread blocked,
// and on what.
type stallKey struct {
	op     string // hint / wait / drain
	kernel string // kernel about to run ("" at end of iteration)
	tensor string // blocking tensor (async waits only)
}

// printStallTable aggregates stalls by site and prints the top-n table —
// the "where did my iteration time go" view.
func printStallTable(w io.Writer, events []tracing.Event, names map[uint64]string, total float64, n int) {
	type row struct {
		key     stallKey
		seconds float64
		count   int64
	}
	byKey := map[stallKey]*row{}
	for _, e := range events {
		if e.Kind != tracing.KindStall || e.Dur <= 0 {
			continue
		}
		k := stallKey{op: e.Op, kernel: e.KName}
		if e.Op == "wait" {
			k.tensor = names[e.Obj]
		}
		r := byKey[k]
		if r == nil {
			r = &row{key: k}
			byKey[k] = r
		}
		r.seconds += e.Dur
		r.count++
	}
	rows := make([]*row, 0, len(byKey))
	for _, r := range byKey {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].seconds > rows[j].seconds })
	if len(rows) == 0 {
		fmt.Fprintln(w, "\nno movement stalls recorded")
		return
	}
	fmt.Fprintf(w, "\ntop stall sites (of %d):\n", len(rows))
	fmt.Fprintf(w, "  %-6s %-24s %-24s %8s %12s %7s\n", "site", "kernel", "tensor", "count", "seconds", "share")
	shown := rows
	if len(shown) > n {
		shown = shown[:n]
	}
	for _, r := range shown {
		kernel, tensor := r.key.kernel, r.key.tensor
		if kernel == "" {
			kernel = "(end of iteration)"
		}
		if tensor == "" {
			tensor = "-"
		}
		share := 0.0
		if total > 0 {
			share = 100 * r.seconds / total
		}
		fmt.Fprintf(w, "  %-6s %-24s %-24s %8d %12s %6.1f%%\n",
			r.key.op, clip(kernel, 24), clip(tensor, 24), r.count,
			units.Seconds(r.seconds), share)
	}
}

// degradations names the policy decisions that exist only as graceful
// responses to injected faults; catrace surfaces them next to the faults
// that caused them.
var degradations = map[string]bool{
	"fallback-slow":   true,
	"evict-abandoned": true,
	"fetch-failure":   true,
}

// printFaultTable attributes injected faults to the hint windows they fired
// in, alongside the victims' responses: bounded retry/backoff steps and the
// policy's degradation decisions. Traces from fault-free runs carry none of
// these events and the section is omitted entirely.
func printFaultTable(w io.Writer, events []tracing.Event, names map[uint64]string) {
	type key struct {
		kind  string // fault / retry / decision
		op    string // alloc-fail, copy-retry, fallback-slow, ...
		cause string // hint window the event fired in
	}
	type row struct {
		key     key
		count   int64
		bytes   int64
		seconds float64 // injected stall or backoff waited
		tensors map[string]bool
	}
	byKey := map[key]*row{}
	add := func(k key, e tracing.Event) {
		r := byKey[k]
		if r == nil {
			r = &row{key: k, tensors: map[string]bool{}}
			byKey[k] = r
		}
		r.count++
		r.bytes += e.Bytes
		r.seconds += e.Dur
		if name := names[e.Obj]; name != "" {
			r.tensors[name] = true
		}
	}
	for _, e := range events {
		switch {
		case e.Kind == tracing.KindFault:
			add(key{kind: "fault", op: e.Op, cause: e.Cause}, e)
		case e.Kind == tracing.KindRetry:
			add(key{kind: "retry", op: e.Op, cause: e.Cause}, e)
		case e.Kind == tracing.KindDecision && degradations[e.Op]:
			add(key{kind: "decision", op: e.Op, cause: e.Cause}, e)
		}
	}
	if len(byKey) == 0 {
		return
	}
	rows := make([]*row, 0, len(byKey))
	for _, r := range byKey {
		rows = append(rows, r)
	}
	// Faults first, then the retries they triggered, then the decisions
	// the policy took; within a class, heaviest hitters first.
	rank := map[string]int{"fault": 0, "retry": 1, "decision": 2}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if rank[a.key.kind] != rank[b.key.kind] {
			return rank[a.key.kind] < rank[b.key.kind]
		}
		if a.count != b.count {
			return a.count > b.count
		}
		if a.key.op != b.key.op {
			return a.key.op < b.key.op
		}
		return a.key.cause < b.key.cause
	})
	fmt.Fprintf(w, "\ninjected faults and degradation (%d sites):\n", len(rows))
	fmt.Fprintf(w, "  %-8s %-16s %-12s %8s %10s %12s %s\n",
		"class", "event", "during", "count", "bytes", "seconds", "tensors")
	for _, r := range rows {
		cause := r.key.cause
		if cause == "" {
			cause = "-"
		}
		fmt.Fprintf(w, "  %-8s %-16s %-12s %8d %10s %12s %s\n",
			r.key.kind, r.key.op, clip(cause, 12), r.count,
			units.Bytes(r.bytes), units.Seconds(r.seconds),
			tensorList(r.tensors, 3))
	}
}

// tensorList renders up to n tensor names from a set, sorted for
// deterministic output.
func tensorList(set map[string]bool, n int) string {
	if len(set) == 0 {
		return "-"
	}
	all := make([]string, 0, len(set))
	for name := range set {
		all = append(all, name)
	}
	sort.Strings(all)
	out := ""
	for i, name := range all {
		if i == n {
			out += fmt.Sprintf(" +%d more", len(all)-n)
			break
		}
		if i > 0 {
			out += " "
		}
		out += name
	}
	return out
}

// printObjectHistories lists the n objects with the most moved bytes and
// reconstructs each one's movement history from its copy events.
func printObjectHistories(w io.Writer, events []tracing.Event, names map[uint64]string, n int, verbose bool) {
	type hist struct {
		obj    uint64
		bytes  int64
		copies []tracing.Event
	}
	byObj := map[uint64]*hist{}
	for _, e := range events {
		if e.Kind != tracing.KindCopy || e.Obj == 0 {
			continue
		}
		h := byObj[e.Obj]
		if h == nil {
			h = &hist{obj: e.Obj}
			byObj[e.Obj] = h
		}
		h.bytes += e.Bytes
		h.copies = append(h.copies, e)
	}
	hists := make([]*hist, 0, len(byObj))
	for _, h := range byObj {
		hists = append(hists, h)
	}
	sort.Slice(hists, func(i, j int) bool {
		if hists[i].bytes != hists[j].bytes {
			return hists[i].bytes > hists[j].bytes
		}
		return hists[i].obj < hists[j].obj
	})
	if len(hists) == 0 {
		fmt.Fprintln(w, "\nno object movement recorded")
		return
	}
	fmt.Fprintf(w, "\nmost-moved objects (of %d):\n", len(hists))
	if len(hists) > n {
		hists = hists[:n]
	}
	for _, h := range hists {
		name := names[h.obj]
		if name == "" {
			name = "?"
		}
		fmt.Fprintf(w, "  obj %-5d %-28s %10s moved in %d copies\n",
			h.obj, clip(name, 28), units.Bytes(h.bytes), len(h.copies))
		if !verbose {
			continue
		}
		for _, e := range h.copies {
			site := e.KName
			if site == "" {
				site = "(between kernels)"
			}
			cause := e.Cause
			if cause == "" {
				cause = "-"
			}
			fmt.Fprintf(w, "    iter %d  t=%-12s %5s->%-5s %10s  cause=%-10s at %s\n",
				e.Iter, units.Seconds(e.T0), e.From, e.To, units.Bytes(e.Bytes), cause, site)
		}
	}
}

// clip shortens s to at most n runes.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
