// Command cafigures regenerates every table and figure of the paper's
// evaluation section and prints them as text tables (default) or writes
// them as CSV files into a directory.
//
// Examples:
//
//	cafigures                      # everything, text, paper scale
//	cafigures -only fig2,fig5      # just the Fig. 2 and Fig. 5 data
//	cafigures -scale 8 -iters 2    # 1/8-batch quick look
//	cafigures -outdir results/     # write CSVs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cachedarrays/internal/experiments"
	"cachedarrays/internal/models"
	"cachedarrays/internal/profiling"
	"cachedarrays/internal/runcfg"
)

func main() {
	var (
		only    = flag.String("only", "", "comma list of: table3,fig2,fig3,fig4,fig5,fig6,fig7,fig7async,baselines,beyond,ablations,cxl,copybw,dlrm (default all)")
		iters   = flag.Int("iters", 4, "training iterations per run")
		scale   = flag.Int("scale", 1, "divide batch sizes by this factor (quick looks)")
		outdir  = flag.String("outdir", "", "write CSV files here instead of printing text")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	shared := runcfg.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprof, *memprof)
	fatal(err)
	defer func() { fatal(stopProf()) }()

	sess, err := shared.Start(true, os.Stdout)
	fatal(err)
	defer sess.Close()

	want := map[string]bool{}
	if *only == "" {
		for _, k := range []string{"table3", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig7async", "baselines", "beyond", "ablations", "cxl", "copybw", "dlrm"} {
			want[k] = true
		}
	} else {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	// One scheduler serves every figure: worker bound and result cache
	// are shared, so a cell two figures both need (e.g. baselines' CA:LM
	// column and the matrix's) simulates once. Progress goes to stderr.
	opts := experiments.Options{
		Iterations: *iters, Scale: *scale,
		Instrument: sess.Apply, Sched: sess.Scheduler(os.Stderr),
	}

	emit := func(name string, tab *experiments.Table) {
		if *outdir == "" {
			fmt.Println(tab.Text())
			return
		}
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*outdir, name+".csv")
		if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}

	if want["table3"] {
		emit("table3", experiments.TableIII())
	}

	needMatrix := want["fig2"] || want["fig4"] || want["fig5"] || want["fig6"]
	if needMatrix {
		mat, err := experiments.RunMatrix(opts)
		fatal(err)
		if want["fig2"] {
			emit("fig2", experiments.Fig2(mat))
		}
		if want["fig4"] {
			emit("fig4", experiments.Fig4(mat))
		}
		if want["fig5"] {
			emit("fig5", experiments.Fig5(mat))
		}
		if want["fig6"] {
			emit("fig6", experiments.Fig6(mat))
		}
	}
	if want["fig3"] {
		tab, err := experiments.Fig3(opts, 64)
		fatal(err)
		emit("fig3", tab)
	}
	if want["fig7"] {
		tab, err := experiments.Fig7(opts, nil)
		fatal(err)
		emit("fig7", tab)
	}
	if want["fig7async"] {
		tab, err := experiments.Fig7Async(opts, nil)
		fatal(err)
		emit("fig7async", tab)
	}
	if want["baselines"] {
		tab, err := experiments.Baselines(opts)
		fatal(err)
		emit("baselines", tab)
	}
	if want["beyond"] {
		tab, err := experiments.BeyondCNNs(opts)
		fatal(err)
		emit("beyond", tab)
	}
	if want["ablations"] {
		tab, err := experiments.Ablations(opts)
		fatal(err)
		emit("ablations", tab)
	}
	if want["cxl"] {
		tab, err := experiments.CXLPortability(opts)
		fatal(err)
		emit("cxl", tab)
	}
	if want["copybw"] {
		emit("copybw", experiments.CopyBandwidth())
		emit("copysizes", experiments.CopyTransferSizes())
	}
	if want["dlrm"] {
		r, err := experiments.RunDLRM(models.DefaultDLRMConfig())
		fatal(err)
		emit("dlrm", r.Table())
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cafigures:", err)
		os.Exit(1)
	}
}
