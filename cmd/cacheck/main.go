// Command cacheck verifies the reproduction: it runs the full evaluation
// and scores every qualitative claim the paper makes against this build's
// measurements, printing a PASS/FAIL table. It exits non-zero if any
// claim fails, so CI can gate on it.
//
// Examples:
//
//	cacheck               # paper scale, 4 iterations (~30 s)
//	cacheck -iters 2      # quicker
package main

import (
	"flag"
	"fmt"
	"os"

	"cachedarrays/internal/experiments"
)

func main() {
	var (
		iters    = flag.Int("iters", 4, "training iterations per run")
		parallel = flag.Int("parallel", 8, "concurrent simulation runs")
	)
	flag.Parse()

	claims, err := experiments.CheckClaims(experiments.Options{
		Iterations: *iters, Parallel: *parallel,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cacheck:", err)
		os.Exit(1)
	}
	fmt.Print(experiments.ClaimsTable(claims).Text())
	for _, c := range claims {
		if !c.Pass {
			os.Exit(1)
		}
	}
}
