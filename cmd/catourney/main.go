// Command catourney runs the policy tournament: every candidate policy
// (the four static CachedArrays modes plus the adaptive stacks) against
// every tournament workload — the paper's figure configurations plus
// fault-injected variants — and prints a deterministic ranked comparison.
//
// Examples:
//
//	catourney                         # full tournament, text tables
//	catourney -scale 16 -iters 2      # 1/16-batch quick look
//	catourney -modes CA:LMP,CA:TG     # head-to-head
//	catourney -nofaults               # clean runs only
//	catourney -outdir results/        # write ranking.csv + cells.csv
//	catourney -json                   # machine-readable full result
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cachedarrays/internal/experiments"
	"cachedarrays/internal/runcfg"
	"cachedarrays/internal/tourney"
)

func main() {
	var (
		iters     = flag.Int("iters", 2, "training iterations per run (first is warm-up)")
		scale     = flag.Int("scale", 1, "divide batch sizes by this factor (quick looks)")
		modes     = flag.String("modes", "", "comma list of candidate modes (default: all CA modes incl. adaptive)")
		nofaults  = flag.Bool("nofaults", false, "skip the fault-injected degradation variants")
		nocluster = flag.Bool("nocluster", false, "skip the noisy-neighbour contention column (2-tenant cluster run per mode)")
		fault     = flag.String("fault", "", "replace the default fault variants with one name=spec pair ({slow} expands to the workload's slow device)")
		outdir    = flag.String("outdir", "", "write ranking.csv and cells.csv here instead of printing text")
		asJSON    = flag.Bool("json", false, "print the full result as JSON on stdout")
	)
	shared := runcfg.Register(flag.CommandLine)
	flag.Parse()

	sess, err := shared.Start(true, os.Stdout)
	fatal(err)
	defer sess.Close()

	opts := tourney.Options{
		Iterations: *iters,
		Scale:      *scale,
		NoCluster:  *nocluster,
		Instrument: sess.Apply,
		Sched:      sess.Scheduler(os.Stderr),
	}
	if *modes != "" {
		for _, m := range strings.Split(*modes, ",") {
			opts.Modes = append(opts.Modes, strings.TrimSpace(m))
		}
	}
	switch {
	case *nofaults:
		opts.Faults = []tourney.FaultVariant{}
	case *fault != "":
		name, spec, ok := strings.Cut(*fault, "=")
		if !ok {
			fatal(fmt.Errorf("-fault wants name=spec, got %q", *fault))
		}
		opts.Faults = []tourney.FaultVariant{{Name: name, Spec: spec}}
	}

	res, err := tourney.Run(opts)
	fatal(err)

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(res))
		return
	}
	emit := func(name string, tab *experiments.Table) {
		if *outdir == "" {
			fmt.Println(tab.Text())
			return
		}
		fatal(os.MkdirAll(*outdir, 0o755))
		path := filepath.Join(*outdir, name+".csv")
		fatal(os.WriteFile(path, []byte(tab.CSV()), 0o644))
		fmt.Println("wrote", path)
	}
	emit("ranking", res.Ranking())
	emit("cells", res.CellTable())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "catourney:", err)
		os.Exit(1)
	}
}
