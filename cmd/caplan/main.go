// Command caplan is a capacity planner for heterogeneous memory: given a
// workload (a built-in model or a JSON trace), it sweeps DRAM budgets and
// operating modes and reports the cheapest configuration within a chosen
// slowdown tolerance of all-DRAM performance — the question a deployment
// engineer actually asks ("how much DRAM does this workload really need?").
//
// Examples:
//
//	caplan -model densenet264 -batch 504
//	caplan -workload mytrace.json -tolerance 1.25
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/units"
)

func main() {
	var (
		modelName = flag.String("model", "densenet264", "workload: densenet264, resnet200, vgg116, mlp, transformer")
		batch     = flag.Int("batch", 504, "batch size")
		workload  = flag.String("workload", "", "JSON trace file instead of -model")
		iters     = flag.Int("iters", 2, "iterations per evaluation point")
		tolerance = flag.Float64("tolerance", 1.15, "acceptable slowdown vs all-DRAM (e.g. 1.15 = 15%)")
		async     = flag.Bool("async", false, "plan assuming the asynchronous mover")
	)
	flag.Parse()

	var m *models.Model
	var err error
	if *workload != "" {
		f, ferr := os.Open(*workload)
		fatal(ferr)
		m, err = models.LoadJSON(f)
		f.Close()
		fatal(err)
	} else {
		m, err = buildModel(*modelName, *batch)
		fatal(err)
	}
	peak := m.PeakFootprint()
	fmt.Printf("workload %s: footprint %s\n", m.Name, units.Bytes(peak))

	// Reference: everything in DRAM.
	refCfg := engine.Config{Iterations: *iters, FastCapacity: peak + peak/8, AsyncMovement: *async}
	ref, err := engine.RunCA(m, policy.CALM, refCfg)
	fatal(err)
	fmt.Printf("all-DRAM reference: %s/iteration\n\n", units.Seconds(ref.IterTime))
	fmt.Printf("%-12s %-8s %-12s %-10s %s\n", "DRAM", "mode", "iter", "slowdown", "verdict")

	budgets := []int64{peak, peak * 3 / 4, peak / 2, peak / 3, peak / 4, peak / 8}
	var bestBudget int64 = -1
	var bestMode string
	for _, b := range budgets {
		for _, mode := range []policy.Mode{policy.CALM, policy.CALMP} {
			cfg := engine.Config{Iterations: *iters, FastCapacity: b, AsyncMovement: *async}
			r, err := engine.RunCA(m, mode, cfg)
			fatal(err)
			slow := r.IterTime / ref.IterTime
			verdict := ""
			if slow <= *tolerance {
				verdict = "ok"
				if bestBudget == -1 || b < bestBudget {
					bestBudget, bestMode = b, mode.String()
				}
			}
			fmt.Printf("%-12s %-8s %-12s %-10.2f %s\n",
				units.Bytes(b), mode, units.Seconds(r.IterTime), slow, verdict)
		}
	}
	fmt.Println()
	if bestBudget >= 0 {
		fmt.Printf("recommendation: %s of DRAM under %s stays within %.0f%% of all-DRAM speed\n",
			units.Bytes(bestBudget), bestMode, 100*(*tolerance-1))
		fmt.Printf("(that is %.0f%% of the %s footprint)\n",
			100*float64(bestBudget)/float64(peak), units.Bytes(peak))
	} else {
		fmt.Printf("no swept budget stays within %.2fx of all-DRAM; this workload wants its full footprint resident\n", *tolerance)
	}
}

func buildModel(name string, batch int) (*models.Model, error) {
	switch strings.ToLower(name) {
	case "densenet264":
		return models.DenseNet(264, batch), nil
	case "resnet200":
		return models.ResNet(200, batch), nil
	case "vgg116":
		return models.VGG(116, batch), nil
	case "mlp":
		return models.MLP(4096, []int{4096, 4096}, 1000, batch), nil
	case "transformer":
		cfg := models.DefaultTransformerConfig()
		cfg.BatchSize = batch
		return models.Transformer(cfg), nil
	default:
		return nil, fmt.Errorf("unknown model %q", name)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "caplan:", err)
		os.Exit(1)
	}
}
