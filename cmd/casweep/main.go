// Command casweep runs the Figure 7 DRAM-budget sensitivity sweep: the
// small Table III networks under CA:LM as the DRAM allowance shrinks from
// the full socket budget down to NVRAM-only, reporting wall-clock and
// async-projected iteration times.
//
// Examples:
//
//	casweep
//	casweep -budgets 180GB,90GB,30GB,0 -iters 4
//	casweep -csv > fig7.csv
//	casweep -metrics sweep.csv        # per-run series: sweep-fig7-<model>-<budget>.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/experiments"
	"cachedarrays/internal/runcfg"
	"cachedarrays/internal/units"
)

func main() {
	var (
		iters   = flag.Int("iters", 4, "training iterations per point")
		budgets = flag.String("budgets", "", "comma-separated DRAM budgets (e.g. 180GB,90GB,0); default: paper sweep")
		scale   = flag.Int("scale", 1, "divide batch sizes by this factor (quick looks)")
		csv     = flag.Bool("csv", false, "emit CSV instead of a text table")
	)
	shared := runcfg.Register(flag.CommandLine)
	flag.Parse()

	var list []int64
	if *budgets != "" {
		for _, part := range strings.Split(*budgets, ",") {
			n, err := units.ParseBytes(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintln(os.Stderr, "casweep:", err)
				os.Exit(1)
			}
			if n == 0 {
				n = engine.NVRAMOnly
			}
			list = append(list, n)
		}
	}
	// Instrumentation status and scheduler progress go to stderr so -csv
	// output stays clean.
	sess, err := shared.Start(true, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "casweep:", err)
		os.Exit(1)
	}
	defer sess.Close()
	opts := experiments.Options{
		Iterations: *iters, Scale: *scale,
		Instrument: sess.Apply, Sched: sess.Scheduler(os.Stderr),
	}
	tab, err := experiments.Fig7(opts, list)
	if err != nil {
		fmt.Fprintln(os.Stderr, "casweep:", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(tab.CSV())
	} else {
		fmt.Print(tab.Text())
	}
}
