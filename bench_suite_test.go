// Suite-scale wall-clock benchmark: one figure regenerated cold (empty
// result cache), warm (same cache directory, everything served from
// disk) and at growing worker counts, written machine-readably to
// BENCH_suite.json:
//
//	go test -run '^$' -bench BenchmarkSuite .
//
// The warm/cold ratio is the result cache's value; the scaling rows are
// the scheduler's. CI gates warm_speedup_x.
package cachedarrays

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"cachedarrays/internal/experiments"
	"cachedarrays/internal/sched"
)

type suiteResult struct {
	ColdSeconds  float64        `json:"cold_s"`
	WarmSeconds  float64        `json:"warm_s"`
	WarmSpeedupX float64        `json:"warm_speedup_x"`
	Scaling      []scalingPoint `json:"scaling"`
}

type scalingPoint struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
}

// BenchmarkSuite measures the Fig. 7 sweep (24 paper-scale cells) end to
// end. One invocation performs the whole measurement; the b.N loop only
// repeats it, so the harness's first b.N=1 pass is the result.
func BenchmarkSuite(b *testing.B) {
	fig7 := func(s *sched.Scheduler) time.Duration {
		start := time.Now()
		if _, err := experiments.Fig7(experiments.Options{Iterations: 4, Sched: s}, nil); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	for i := 0; i < b.N; i++ {
		var res suiteResult

		// Parallel scaling, uncached: the same batch at 1, 2 and N workers.
		workers := []int{1, 2}
		if n := runtime.GOMAXPROCS(0); n > 2 {
			workers = append(workers, n)
		}
		for _, w := range workers {
			res.Scaling = append(res.Scaling, scalingPoint{
				Workers: w, Seconds: fig7(&sched.Scheduler{Workers: w}).Seconds(),
			})
		}

		// Cold vs warm through one on-disk cache directory. The warm pass
		// uses a fresh Cache instance so every hit pays the full disk
		// load + integrity check, not the in-memory map.
		dir := b.TempDir()
		cold, err := sched.OpenCache(dir)
		if err != nil {
			b.Fatal(err)
		}
		res.ColdSeconds = fig7(&sched.Scheduler{Workers: workers[len(workers)-1], Cache: cold}).Seconds()
		warm, err := sched.OpenCache(dir)
		if err != nil {
			b.Fatal(err)
		}
		res.WarmSeconds = fig7(&sched.Scheduler{Workers: workers[len(workers)-1], Cache: warm}).Seconds()
		if st := warm.Stats(); st.Misses != 0 || st.Hits == 0 {
			b.Fatalf("warm pass was not fully cached: %+v", st)
		}
		if res.WarmSeconds > 0 {
			res.WarmSpeedupX = res.ColdSeconds / res.WarmSeconds
		}

		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_suite.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("cold %.2fs warm %.2fs (%.1fx), scaling %v",
			res.ColdSeconds, res.WarmSeconds, res.WarmSpeedupX, res.Scaling)
	}
}
