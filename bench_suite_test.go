// Suite-scale wall-clock benchmark: one figure regenerated cold (empty
// result cache), warm (same cache directory, everything served from
// disk) and across a worker scaling series, written machine-readably to
// BENCH_suite.json:
//
//	go test -run '^$' -bench BenchmarkSuite .
//
// The warm/cold ratio is the result cache's value; the scaling series
// (workers = 1, 2, 4, GOMAXPROCS, deduplicated) is the scheduler's, with
// per-row mutex-wait seconds from runtime/metrics so a scaling
// regression is diagnosable from the artifact alone: if seconds stop
// falling while mutex_wait_s climbs, a serialization point came back.
// CI gates warm_speedup_x and (on multi-core runners) parallel_speedup_x.
package cachedarrays

import (
	"encoding/json"
	"os"
	"runtime"
	"runtime/metrics"
	"sort"
	"testing"
	"time"

	"cachedarrays/internal/experiments"
	"cachedarrays/internal/sched"
)

type suiteResult struct {
	GOMAXPROCS       int            `json:"gomaxprocs"`
	ColdSeconds      float64        `json:"cold_s"`
	WarmSeconds      float64        `json:"warm_s"`
	WarmSpeedupX     float64        `json:"warm_speedup_x"`
	ParallelSpeedupX float64        `json:"parallel_speedup_x"`
	Scaling          []scalingPoint `json:"scaling"`
}

type scalingPoint struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	// MutexWaitSeconds is the goroutine-seconds spent blocked on mutexes
	// during this row (delta of /sync/mutex/wait/total:seconds) — the
	// contention fingerprint behind the wall-clock number.
	MutexWaitSeconds float64 `json:"mutex_wait_s"`
}

// mutexWaitSeconds reads the runtime's cumulative mutex-wait clock.
func mutexWaitSeconds() float64 {
	sample := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindFloat64 {
		return 0
	}
	return sample[0].Value.Float64()
}

// scalingWorkers is the measured series: 1, 2, 4 and GOMAXPROCS,
// deduplicated and ascending, so the artifact always carries the
// single-worker baseline, the first two doubling steps and the
// all-cores point CI gates on.
func scalingWorkers() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.GOMAXPROCS(0): true}
	var ws []int
	for w := range set {
		ws = append(ws, w)
	}
	sort.Ints(ws)
	return ws
}

// BenchmarkSuite measures the Fig. 7 sweep (24 paper-scale cells) end to
// end. One invocation performs the whole measurement; the b.N loop only
// repeats it, so the harness's first b.N=1 pass is the result.
func BenchmarkSuite(b *testing.B) {
	fig7 := func(s *sched.Scheduler) time.Duration {
		start := time.Now()
		if _, err := experiments.Fig7(experiments.Options{Iterations: 4, Sched: s}, nil); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	for i := 0; i < b.N; i++ {
		res := suiteResult{GOMAXPROCS: runtime.GOMAXPROCS(0)}

		// Parallel scaling, uncached: the same batch at each worker count.
		for _, w := range scalingWorkers() {
			before := mutexWaitSeconds()
			secs := fig7(&sched.Scheduler{Workers: w}).Seconds()
			res.Scaling = append(res.Scaling, scalingPoint{
				Workers: w, Seconds: secs, MutexWaitSeconds: mutexWaitSeconds() - before,
			})
		}
		// parallel_speedup_x compares the single-worker row against the
		// all-cores row — the number the CI scaling gate enforces.
		var oneWorker, allCores float64
		for _, p := range res.Scaling {
			if p.Workers == 1 {
				oneWorker = p.Seconds
			}
			if p.Workers == res.GOMAXPROCS {
				allCores = p.Seconds
			}
		}
		if allCores > 0 {
			res.ParallelSpeedupX = oneWorker / allCores
		}

		// Cold vs warm through one on-disk cache directory. The warm pass
		// uses a fresh Cache instance so every hit pays the full disk
		// load + integrity check, not the in-memory map.
		dir := b.TempDir()
		cold, err := sched.OpenCache(dir)
		if err != nil {
			b.Fatal(err)
		}
		workers := runtime.GOMAXPROCS(0)
		res.ColdSeconds = fig7(&sched.Scheduler{Workers: workers, Cache: cold}).Seconds()
		warm, err := sched.OpenCache(dir)
		if err != nil {
			b.Fatal(err)
		}
		res.WarmSeconds = fig7(&sched.Scheduler{Workers: workers, Cache: warm}).Seconds()
		if st := warm.Stats(); st.Misses != 0 || st.Hits == 0 {
			b.Fatalf("warm pass was not fully cached: %+v", st)
		}
		if res.WarmSeconds > 0 {
			res.WarmSpeedupX = res.ColdSeconds / res.WarmSeconds
		}

		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_suite.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("cold %.2fs warm %.2fs (%.1fx), parallel %.2fx across %v",
			res.ColdSeconds, res.WarmSeconds, res.WarmSpeedupX, res.ParallelSpeedupX, res.Scaling)
	}
}
