// Hot-path micro-benchmarks for the simulator's indexed data structures,
// each paired with the seed O(n) implementation it replaced so the
// speedup is measured, not assumed:
//
//	go test -run '^$' -bench BenchmarkHotPaths .
//
// The suite writes machine-readable results to BENCH_hotpaths.json
// (benchmark name, ns/op, iterations) for regression tracking. The
// "indexed" variants must not regress toward their "reference"
// counterparts as live-object counts or line counts grow: the indexed
// allocator is O(log n) per op and O(1) for LargestFree where the
// reference is O(n), and the batched 2LM walk is O(min(lines, 2·sets))
// where the reference is O(lines) with a modulo per line.
package cachedarrays

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"cachedarrays/internal/alloc"
	"cachedarrays/internal/dm"
	"cachedarrays/internal/memsim"
	"cachedarrays/internal/metrics"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/tracing"
	"cachedarrays/internal/twolm"
	"cachedarrays/internal/units"
)

// hotpathResult is one row of BENCH_hotpaths.json.
type hotpathResult struct {
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	Iters       int      `json:"iters"`
	SpeedupX    float64  `json:"speedup_x,omitempty"`     // indexed vs reference, same scenario
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"` // instrumentation rows: heap allocations per op
}

// allocChurn drives a steady-state free-then-alloc churn over a heap
// holding ~live blocks, the access pattern that made the seed allocator's
// head-to-tail scan the simulator's hottest loop at high object counts.
func allocChurn(b *testing.B, a alloc.Allocator, live int) {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(live)))
	size := func() int64 { return 64 * (1 + rng.Int63n(64)) } // 64 B .. 4 KiB
	offs := make([]int64, 0, live)
	for len(offs) < live {
		off, err := a.Alloc(size())
		if err != nil {
			b.Fatalf("prefill exhausted at %d blocks: %v", len(offs), err)
		}
		offs = append(offs, off)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := rng.Intn(len(offs))
		a.Free(offs[j])
		off, err := a.Alloc(size())
		for err != nil { // fragmentation fallback: free more, retry
			k := rng.Intn(len(offs))
			if k != j {
				a.Free(offs[k])
				offs[k] = offs[len(offs)-1]
				offs = offs[:len(offs)-1]
			}
			off, err = a.Alloc(size())
		}
		offs[j] = off
	}
}

// churnHeap sizes the heap to ~50% occupancy for a live-block target.
func churnHeap(live int) int64 { return int64(live) * 8 << 10 / 2 * 2 } // live * 4 KiB avg * 2

// BenchmarkHotPaths measures every indexed hot path against its seed
// reference implementation and writes BENCH_hotpaths.json.
func BenchmarkHotPaths(b *testing.B) {
	var (
		order   []string
		byName  = map[string]hotpathResult{}
		results []hotpathResult
	)
	add := func(r hotpathResult) {
		// The benchmark body reruns as the harness grows b.N; keep only
		// the final (largest-N) measurement for each name.
		if _, seen := byName[r.Name]; !seen {
			order = append(order, r.Name)
		}
		byName[r.Name] = r
	}
	record := func(name string, fn func(b *testing.B)) float64 {
		var nsPerOp float64
		b.Run(name, func(b *testing.B) {
			fn(b)
			nsPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			add(hotpathResult{Name: name, NsPerOp: nsPerOp, Iters: b.N})
		})
		return nsPerOp
	}
	pair := func(scenario string, indexed, reference func(b *testing.B)) {
		idx := record(scenario+"/indexed", indexed)
		ref := record(scenario+"/reference", reference)
		if idx > 0 && ref > 0 {
			add(hotpathResult{Name: scenario + "/speedup", SpeedupX: ref / idx})
		}
	}

	// Allocator churn: Alloc+Free at growing live-block counts. The
	// reference scan is linear in live blocks; the treap descent is
	// logarithmic, so the gap must widen with the count.
	for _, live := range []int{1024, 8192, 65536} {
		pair(fmt.Sprintf("alloc-churn/live=%d", live),
			func(b *testing.B) { allocChurn(b, alloc.NewFreeList(churnHeap(live), alloc.FirstFit), live) },
			func(b *testing.B) { allocChurn(b, alloc.NewReference(churnHeap(live), alloc.FirstFit), live) },
		)
	}

	// LargestFree at a high live count: O(1) cached root maximum vs the
	// full-list rescan (the fragmentation-ratio hot path).
	{
		const live = 65536
		largest := func(b *testing.B, a alloc.Allocator) {
			b.Helper()
			rng := rand.New(rand.NewSource(live))
			for i := 0; i < live; i++ {
				if _, err := a.Alloc(64 * (1 + rng.Int63n(64))); err != nil {
					b.Fatal(err)
				}
			}
			// Punch holes so free blocks are plentiful and scattered.
			var frees []int64
			a.Blocks(func(off, size int64) bool {
				if rng.Intn(2) == 0 {
					frees = append(frees, off)
				}
				return true
			})
			for _, off := range frees {
				a.Free(off)
			}
			b.ResetTimer()
			var sink int64
			for i := 0; i < b.N; i++ {
				sink += a.LargestFree()
			}
			_ = sink
		}
		pair(fmt.Sprintf("largest-free/live=%d", live),
			func(b *testing.B) { largest(b, alloc.NewFreeList(churnHeap(live), alloc.FirstFit)) },
			func(b *testing.B) { largest(b, alloc.NewReference(churnHeap(live), alloc.FirstFit)) },
		)
	}

	// Fine-granularity 2LM streaming: 64 B lines (true hardware tracking,
	// the configuration too slow to simulate densely before batching)
	// streaming 1 MiB reads and writes over an 8 MiB working set through
	// a 1 MiB cache.
	{
		const (
			lineSize = 64
			fastCap  = 1 * units.MB
			slowCap  = 16 * units.MB
			stream   = 1 * units.MB
		)
		mkCache := func(b *testing.B) *twolm.Cache {
			b.Helper()
			p := memsim.NewPlatform(memsim.PlatformConfig{
				FastCapacity: fastCap, SlowCapacity: slowCap, CopyThreads: 4,
			})
			c, err := twolm.New(p.Fast, p.Slow, twolm.Config{LineSize: lineSize, HWLineBytes: 64})
			if err != nil {
				b.Fatal(err)
			}
			return c
		}
		run := func(b *testing.B, access func(c *twolm.Cache, addr, size int64, write bool) twolm.Cost) {
			b.Helper()
			c := mkCache(b)
			b.SetBytes(stream)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				addr := int64(i) % 8 * stream
				access(c, addr, stream, i%2 == 1)
			}
		}
		pair("twolm-stream/line=64B",
			func(b *testing.B) {
				run(b, func(c *twolm.Cache, addr, size int64, w bool) twolm.Cost { return c.Access(addr, size, w) })
			},
			func(b *testing.B) {
				run(b, func(c *twolm.Cache, addr, size int64, w bool) twolm.Cost { return c.AccessReference(addr, size, w) })
			},
		)
	}

	// Instrumented clock advances: the per-advance cost of an attached
	// tracer and metrics registry, with allocs/op measured directly. The
	// pooled trace chunks and pre-grown sample buffers must keep the
	// steady-state figure at (amortized) zero — chunk turnover is one
	// pooled fetch per 1024 events and a sample append lands in
	// pre-grown capacity.
	recordAllocs := func(name string, fn func(b *testing.B)) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			fn(b)
			runtime.ReadMemStats(&after)
			allocs := float64(after.Mallocs-before.Mallocs) / float64(b.N)
			add(hotpathResult{
				Name:    name,
				NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				Iters:   b.N, AllocsPerOp: &allocs,
			})
		})
	}
	advance := func(traced, metered bool) func(b *testing.B) {
		return func(b *testing.B) {
			c := &memsim.Clock{}
			if traced {
				c.Tracer = tracing.New(c.Now)
			}
			if metered {
				reg := metrics.New(0.001)
				reg.Gauge("bench_gauge", func() float64 { return 1 })
				c.Metrics = reg
			}
			c.Advance(1e-9) // warm the first trace chunk
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Advance(1e-9)
			}
		}
	}
	recordAllocs("clock-advance/bare", advance(false, false))
	recordAllocs("clock-advance/traced", advance(true, false))
	recordAllocs("clock-advance/metered", advance(false, true))
	recordAllocs("clock-advance/traced+metered", advance(true, true))

	// Eviction storm: a policy working set several times the fast tier,
	// so every new object drives makeRoomInFast's victim walk and the
	// incremental evictable-bytes accounting. No reference twin exists
	// in-tree (the seed code is gone), so this is an absolute regression
	// number.
	record("policy-eviction-storm", func(b *testing.B) {
		const (
			objSize = 256 << 10
			fastCap = 64 << 20  // 256 resident objects
			slowCap = 512 << 20 // window + eviction headroom
			window  = 1024      // 4x fast capacity
		)
		p := memsim.NewPlatform(memsim.PlatformConfig{
			FastCapacity: fastCap, SlowCapacity: slowCap, CopyThreads: 4,
		})
		pol := policy.NewTiered(dm.New(p), policy.CALM, nil)
		var queue []*dm.Object
		mk := func() *dm.Object {
			o, err := pol.NewObject(objSize)
			if err != nil {
				b.Fatal(err)
			}
			pol.Archive(o)
			return o
		}
		for i := 0; i < window; i++ {
			queue = append(queue, mk())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pol.Retire(queue[0])
			queue = append(queue[1:], mk())
		}
	})

	for _, name := range order {
		results = append(results, byName[name])
	}
	if len(results) > 0 {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_hotpaths.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Log("wrote BENCH_hotpaths.json")
	}
}
