package sched

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/models"
)

// TestFlightGroupSharesResult pins the single-flight contract with
// deterministic interleaving: a follower arriving while the leader is in
// flight never executes its own function and shares the leader's exact
// pointer, flagged as a dedup.
func TestFlightGroupSharesResult(t *testing.T) {
	var g flightGroup
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	want := &engine.Result{Mode: "X"}

	type out struct {
		r      any
		shared bool
		err    error
	}
	leaderOut := make(chan out, 1)
	go func() {
		r, shared, err := g.Do("k", func() (any, error) {
			close(leaderIn)
			<-release
			return want, nil
		})
		leaderOut <- out{r, shared, err}
	}()
	<-leaderIn // leader is now in flight

	followerOut := make(chan out, 1)
	go func() {
		r, shared, err := g.Do("k", func() (any, error) {
			t.Error("follower executed its function despite an in-flight leader")
			return nil, nil
		})
		followerOut <- out{r, shared, err}
	}()
	// Wait until the follower is registered on the in-flight call, then
	// confirm it is blocked rather than completed.
	for {
		g.mu.Lock()
		waiting := g.m["k"] != nil && g.m["k"].waiters == 1
		g.mu.Unlock()
		if waiting {
			break
		}
		runtime.Gosched()
	}
	select {
	case o := <-followerOut:
		t.Fatalf("follower returned %+v before the leader finished", o)
	default:
	}
	close(release)

	l, f := <-leaderOut, <-followerOut
	if l.err != nil || f.err != nil {
		t.Fatalf("errors: leader %v, follower %v", l.err, f.err)
	}
	if l.shared {
		t.Fatal("leader flagged as shared")
	}
	if !f.shared {
		t.Fatal("follower not flagged as shared")
	}
	if l.r != want || f.r != want {
		t.Fatal("leader and follower do not share the result pointer")
	}

	// The key is gone after completion: a fresh call runs its function.
	ran := false
	if _, shared, _ := g.Do("k", func() (any, error) { ran = true; return want, nil }); shared || !ran {
		t.Fatal("completed flight entry was not cleared")
	}
}

// TestSchedulerSingleFlightStress hammers one Scheduler plus one shared
// disk-backed Cache from many workers with overlapping identical and
// distinct cells (lazily built on the workers). The hard invariant under
// -race: the number of simulations actually executed equals the number
// of distinct keys — every duplicate was served by the cache or by
// another cell's in-flight simulation — and every replica's result is
// DeepEqual-identical to its group's.
func TestSchedulerSingleFlightStress(t *testing.T) {
	const distinct, replicas = 4, 12
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := &Scheduler{Workers: 4 * runtime.GOMAXPROCS(0), Cache: cache}

	var cells []Cell
	for rep := 0; rep < replicas; rep++ {
		for d := 0; d < distinct; d++ {
			cells = append(cells, Cell{
				Name:  fmt.Sprintf("stress-%d-rep%d", d, rep),
				Build: func() (*models.Model, error) { return models.MLP(256, []int{256}, 64, 8), nil },
				Mode:  "CA:LM",
				Cfg:   engine.Config{Iterations: d + 1},
			})
		}
	}
	results, err := s.Run(cells)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Simulations(); got != distinct {
		t.Fatalf("Simulations() = %d, want %d (one per distinct key)", got, distinct)
	}
	if st := cache.Stats(); st.Stores != distinct {
		t.Fatalf("cache stores = %d, want %d (one writer per key)", st.Stores, distinct)
	}
	for i, r := range results {
		if r == nil {
			t.Fatalf("result %d is nil", i)
		}
		group := i % distinct
		if !reflect.DeepEqual(r, results[group]) {
			t.Fatalf("replica %d differs from its group %d result", i, group)
		}
	}
	t.Logf("stress: %d cells, %d simulations, %d single-flight dedups, stats %+v",
		len(cells), s.Simulations(), s.Dedups(), cache.Stats())
}

// TestCacheConcurrentPutGet drives the sharded cache directly from many
// goroutines mixing distinct-key writes, same-key overwrites and reads
// — the -race witness that prefix-sharded locking and atomic stats hold
// without the old cache-wide mutex.
func TestCacheConcurrentPutGet(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers, keys = 8, 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				key := fmt.Sprintf("%02x-stress-key-%d", k*17%256, k)
				r := &engine.Result{Mode: "CA:LM", IterTime: float64(k)}
				if err := cache.Put(key, r); err != nil {
					t.Error(err)
					return
				}
				got, ok := cache.Get(key)
				if !ok || got.IterTime != float64(k) {
					t.Errorf("key %s: got %+v ok=%v", key, got, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := cache.Stats(); st.Hits != workers*keys || st.Stores != workers*keys {
		t.Fatalf("stats = %+v, want %d hits and stores", st, workers*keys)
	}
}

// TestKeyErrorSurfacedOncePerDistinctError: an un-keyable cacheable cell
// prints one stderr notice per *distinct* error message — repeats of the
// same failure stay quiet instead of spamming per cell, but a different
// key failure later in the session still surfaces instead of being
// swallowed by a process-global once.
func TestKeyErrorSurfacedOncePerDistinctError(t *testing.T) {
	var buf bytes.Buffer
	keyErrMu.Lock()
	oldOut, oldSeen := keyErrOut, keyErrSeen
	keyErrOut, keyErrSeen = &buf, nil
	keyErrMu.Unlock()
	defer func() {
		keyErrMu.Lock()
		keyErrOut, keyErrSeen = oldOut, oldSeen
		keyErrMu.Unlock()
	}()

	warnKeyError(fmt.Errorf("config field Cfg.Widget carries live state"))
	warnKeyError(fmt.Errorf("config field Cfg.Widget carries live state"))
	out := buf.String()
	if !strings.Contains(out, "Cfg.Widget") {
		t.Fatalf("first key error not surfaced: %q", out)
	}
	if n := strings.Count(out, "\n"); n != 1 {
		t.Fatalf("repeated key error surfaced %d times, want once: %q", n, out)
	}

	warnKeyError(fmt.Errorf("config field Cfg.Gadget is unexported"))
	out = buf.String()
	if !strings.Contains(out, "Cfg.Gadget") {
		t.Fatalf("second distinct key error swallowed: %q", out)
	}
	if n := strings.Count(out, "\n"); n != 2 {
		t.Fatalf("got %d warning lines, want 2 (one per distinct error): %q", n, out)
	}
}

// TestBuildErrorFailsCell: a Build error fails the batch wrapped with
// the cell's name, and a Build returning nil is rejected.
func TestBuildErrorFailsCell(t *testing.T) {
	s := &Scheduler{}
	_, err := s.Run([]Cell{{
		Name:  "broken",
		Build: func() (*models.Model, error) { return nil, fmt.Errorf("no such graph") },
		Mode:  "CA:LM",
	}})
	if err == nil || !strings.Contains(err.Error(), "broken:") || !strings.Contains(err.Error(), "no such graph") {
		t.Fatalf("Build error not propagated with cell name: %v", err)
	}
	_, err = s.Run([]Cell{{
		Name:  "nilbuild",
		Build: func() (*models.Model, error) { return nil, nil },
		Mode:  "CA:LM",
	}})
	if err == nil || !strings.Contains(err.Error(), "nil model") {
		t.Fatalf("nil Build result not rejected: %v", err)
	}
	if _, err = s.Run([]Cell{{Name: "empty", Mode: "CA:LM"}}); err == nil {
		t.Fatal("cell with neither Model nor Build accepted")
	}
}
