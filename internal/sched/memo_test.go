package sched

import (
	"encoding/json"
	"errors"
	"testing"
)

type memoVal struct {
	N int
	S string
}

func decodeMemoVal(body []byte) (any, error) {
	var v memoVal
	if err := json.Unmarshal(body, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// TestMemoCachesAndCounts pins Memo's contract on one scheduler: the
// first call computes (sims+1, hit=false), the repeat is served from the
// in-memory cache (no new sim, hit=true), and distinct keys compute
// independently.
func TestMemoCachesAndCounts(t *testing.T) {
	cache, err := OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	s := &Scheduler{Cache: cache}
	calls := 0
	compute := func() (any, error) {
		calls++
		return &memoVal{N: calls, S: "x"}, nil
	}
	v1, hit, err := s.Memo("memo-a", decodeMemoVal, compute)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first call reported a hit")
	}
	v2, hit, err := s.Memo("memo-a", decodeMemoVal, compute)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("repeat call missed")
	}
	if calls != 1 || s.Simulations() != 1 {
		t.Fatalf("computed %d times (sims=%d), want 1", calls, s.Simulations())
	}
	if v1.(*memoVal) != v2.(*memoVal) {
		t.Fatal("repeat call did not share the settled pointer")
	}
	if _, hit, err = s.Memo("memo-b", decodeMemoVal, compute); err != nil || hit {
		t.Fatalf("distinct key: hit=%v err=%v, want fresh compute", hit, err)
	}
	if calls != 2 {
		t.Fatalf("distinct key computed %d times total, want 2", calls)
	}
}

// TestMemoDiskDecode proves a second scheduler over the same cache
// directory rebuilds the value through the decode callback — the
// cross-process path cluster runs rely on.
func TestMemoDiskDecode(t *testing.T) {
	dir := t.TempDir()
	c1, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := &Scheduler{Cache: c1}
	want := &memoVal{N: 42, S: "answer"}
	if _, _, err := s1.Memo("memo-disk", decodeMemoVal, func() (any, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := &Scheduler{Cache: c2}
	v, hit, err := s2.Memo("memo-disk", decodeMemoVal, func() (any, error) {
		t.Fatal("compute ran despite a disk entry")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("disk entry missed")
	}
	if got := v.(*memoVal); *got != *want {
		t.Fatalf("decoded %+v, want %+v", got, want)
	}
}

// TestMemoNilCache pins that a cache-less scheduler still works: every
// settled call recomputes, errors pass through, and nothing panics.
func TestMemoNilCache(t *testing.T) {
	s := &Scheduler{}
	calls := 0
	compute := func() (any, error) {
		calls++
		return &memoVal{N: calls}, nil
	}
	for i := 1; i <= 2; i++ {
		v, hit, err := s.Memo("memo-nocache", decodeMemoVal, compute)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatalf("call %d: hit without a cache", i)
		}
		if v.(*memoVal).N != i {
			t.Fatalf("call %d returned %+v", i, v)
		}
	}
}

// TestMemoError pins error propagation: a failing compute surfaces its
// error, stores nothing, and the next call retries.
func TestMemoError(t *testing.T) {
	cache, err := OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	s := &Scheduler{Cache: cache}
	boom := errors.New("boom")
	if _, _, err := s.Memo("memo-err", decodeMemoVal, func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if st := cache.Stats(); st.Stores != 0 {
		t.Fatalf("failed compute stored %d entries", st.Stores)
	}
	v, hit, err := s.Memo("memo-err", decodeMemoVal, func() (any, error) { return &memoVal{N: 7}, nil })
	if err != nil || hit {
		t.Fatalf("retry: hit=%v err=%v", hit, err)
	}
	if v.(*memoVal).N != 7 {
		t.Fatalf("retry returned %+v", v)
	}
}
