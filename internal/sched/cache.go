package sched

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"cachedarrays/internal/engine"
)

// cacheHeader versions the on-disk format; the trailing hex digest
// authenticates the body, so a truncated, bit-flipped or hand-edited file
// is detected and recomputed instead of trusted.
const cacheHeader = "cachedarrays-cache v1"

// cacheShards is the in-memory map's shard count. Keys are hex SHA-256
// digests, so the leading bytes are uniform and a prefix shard spreads
// concurrent writers evenly. 64 shards keep the chance of two of
// GOMAXPROCS workers colliding on one lock small.
const cacheShards = 64

// cacheShard is one slice of the in-memory index behind its own short
// lock: concurrent Get/Put on different key prefixes never contend.
// Values are untyped: engine results and cluster results share the store
// (their content-hash key spaces are disjoint by format header).
type cacheShard struct {
	mu  sync.Mutex
	mem map[string]any
}

// Cache is a content-addressed store of engine results: a sharded
// in-memory map for hits within one process, optionally backed by a
// directory of integrity-checked JSON files for cross-process reuse.
// Locking is sharded by key prefix and statistics are atomics, so
// concurrent readers and writers of distinct keys share no lock at all.
// All methods are safe for concurrent use; a nil *Cache never hits and
// never stores.
type Cache struct {
	dir string

	shards [cacheShards]cacheShard

	hits, misses, stores, corrupt atomic.Int64
}

// CacheStats counts the cache's traffic.
type CacheStats struct {
	Hits    int64 // results served without simulation
	Misses  int64 // lookups that fell through to the simulator
	Stores  int64 // results written into the cache
	Corrupt int64 // disk entries rejected by the integrity check
}

// OpenCache returns a cache persisting to dir ("" = in-memory only). The
// directory is created if missing.
func OpenCache(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("sched: cache dir: %w", err)
		}
	}
	c := &Cache{dir: dir}
	for i := range c.shards {
		c.shards[i].mem = map[string]any{}
	}
	return c, nil
}

// shard maps a key to its lock shard by prefix. Keys are hex digests;
// two leading hex digits give 256 uniform buckets folded onto the shard
// count. Short keys (tests, ad-hoc callers) fold what is there.
func (c *Cache) shard(key string) *cacheShard {
	var h uint
	for i := 0; i < len(key) && i < 2; i++ {
		h = h<<4 + uint(hexVal(key[i]))
	}
	return &c.shards[h%cacheShards]
}

func hexVal(b byte) byte {
	switch {
	case b >= '0' && b <= '9':
		return b - '0'
	case b >= 'a' && b <= 'f':
		return b - 'a' + 10
	case b >= 'A' && b <= 'F':
		return b - 'A' + 10
	default:
		return b & 0xf
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Stores:  c.stores.Load(),
		Corrupt: c.corrupt.Load(),
	}
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// decodeEngineResult rebuilds an engine result from a verified disk
// entry's body — the decode hook Get passes to GetAny.
func decodeEngineResult(body []byte) (any, error) {
	var r engine.Result
	if err := json.Unmarshal(body, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Get returns the cached engine result for key, consulting memory first
// and the backing directory second. Disk entries failing the integrity
// check count as corrupt and miss (the caller recomputes and overwrites).
func (c *Cache) Get(key string) (*engine.Result, bool) {
	v, ok := c.GetAny(key, decodeEngineResult)
	if !ok {
		return nil, false
	}
	return v.(*engine.Result), true
}

// GetAny is Get for an arbitrary value type: decode rebuilds the value
// from a verified disk entry's JSON body (in-memory hits return the
// stored pointer directly and never invoke it). Callers must pair a key
// space with one decode shape — the format header hashed into every key
// guarantees engine and cluster entries never alias.
func (c *Cache) GetAny(key string, decode func([]byte) (any, error)) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	v, ok := s.mem[key]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return v, true
	}
	if c.dir != "" {
		if v, err := c.load(key, decode); err == nil {
			s.mu.Lock()
			s.mem[key] = v
			s.mu.Unlock()
			c.hits.Add(1)
			return v, true
		} else if !errors.Is(err, fs.ErrNotExist) {
			c.corrupt.Add(1)
		}
	}
	c.misses.Add(1)
	return nil, false
}

// load reads and verifies one disk entry: a header line binding the
// format version to the body's SHA-256, then the JSON-encoded value.
func (c *Cache) load(key string, decode func([]byte) (any, error)) (any, error) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, err
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("sched: cache entry %s: missing header", key)
	}
	header, body := string(data[:nl]), data[nl+1:]
	want := fmt.Sprintf("%s %x", cacheHeader, sha256.Sum256(body))
	if header != want {
		return nil, fmt.Errorf("sched: cache entry %s: integrity check failed", key)
	}
	v, err := decode(body)
	if err != nil {
		return nil, fmt.Errorf("sched: cache entry %s: %w", key, err)
	}
	return v, nil
}

// Put stores an engine result under key (see PutAny).
func (c *Cache) Put(key string, r *engine.Result) error { return c.PutAny(key, r) }

// PutAny stores a JSON-marshalable value under key, in memory and (when
// backed) on disk via a temp-file rename so concurrent readers never
// observe a partial entry. Encoding and disk I/O run outside any lock:
// concurrent writers only touch their key's shard for the map insert.
func (c *Cache) PutAny(key string, v any) error {
	if c == nil {
		return nil
	}
	s := c.shard(key)
	s.mu.Lock()
	s.mem[key] = v
	s.mu.Unlock()
	c.stores.Add(1)
	if c.dir == "" {
		return nil
	}
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sched: cache encode: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(tmp, "%s %x\n", cacheHeader, sha256.Sum256(body))
	if err == nil {
		_, err = tmp.Write(body)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}
