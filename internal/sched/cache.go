package sched

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"cachedarrays/internal/engine"
)

// cacheHeader versions the on-disk format; the trailing hex digest
// authenticates the body, so a truncated, bit-flipped or hand-edited file
// is detected and recomputed instead of trusted.
const cacheHeader = "cachedarrays-cache v1"

// Cache is a content-addressed store of engine results: an in-memory map
// for hits within one process, optionally backed by a directory of
// integrity-checked JSON files for cross-process reuse. All methods are
// safe for concurrent use; a nil *Cache never hits and never stores.
type Cache struct {
	dir string

	mu    sync.Mutex
	mem   map[string]*engine.Result
	stats CacheStats
}

// CacheStats counts the cache's traffic.
type CacheStats struct {
	Hits    int64 // results served without simulation
	Misses  int64 // lookups that fell through to the simulator
	Stores  int64 // results written into the cache
	Corrupt int64 // disk entries rejected by the integrity check
}

// OpenCache returns a cache persisting to dir ("" = in-memory only). The
// directory is created if missing.
func OpenCache(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("sched: cache dir: %w", err)
		}
	}
	return &Cache{dir: dir, mem: map[string]*engine.Result{}}, nil
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the cached result for key, consulting memory first and the
// backing directory second. Disk entries failing the integrity check
// count as corrupt and miss (the caller recomputes and overwrites).
func (c *Cache) Get(key string) (*engine.Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	if r, ok := c.mem[key]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		return r, true
	}
	c.mu.Unlock()
	if c.dir != "" {
		if r, err := c.load(key); err == nil {
			c.mu.Lock()
			c.mem[key] = r
			c.stats.Hits++
			c.mu.Unlock()
			return r, true
		} else if !errors.Is(err, fs.ErrNotExist) {
			c.mu.Lock()
			c.stats.Corrupt++
			c.mu.Unlock()
		}
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return nil, false
}

// load reads and verifies one disk entry: a header line binding the
// format version to the body's SHA-256, then the JSON-encoded result.
func (c *Cache) load(key string) (*engine.Result, error) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, err
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("sched: cache entry %s: missing header", key)
	}
	header, body := string(data[:nl]), data[nl+1:]
	want := fmt.Sprintf("%s %x", cacheHeader, sha256.Sum256(body))
	if header != want {
		return nil, fmt.Errorf("sched: cache entry %s: integrity check failed", key)
	}
	var r engine.Result
	if err := json.Unmarshal(body, &r); err != nil {
		return nil, fmt.Errorf("sched: cache entry %s: %w", key, err)
	}
	return &r, nil
}

// Put stores a result under key, in memory and (when backed) on disk via
// a temp-file rename so concurrent readers never observe a partial entry.
func (c *Cache) Put(key string, r *engine.Result) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	c.mem[key] = r
	c.stats.Stores++
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	body, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("sched: cache encode: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(tmp, "%s %x\n", cacheHeader, sha256.Sum256(body))
	if err == nil {
		_, err = tmp.Write(body)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}
