// Package sched is the run scheduler every experiment driver submits its
// engine cells to: a bounded worker pool with one mode dispatcher and an
// optional content-addressed result cache.
//
// The simulation is fully deterministic — identical (model, mode, config)
// cells produce byte-identical results, a property the repository's tests
// prove repeatedly — which is exactly what makes memoization safe: a cell
// another figure (or another process) already computed is returned from
// the cache as a reflect.DeepEqual-identical result instead of being
// re-simulated. Runs that attach instrumentation (tracing, fault
// injection, invariant audits, metrics) bypass the cache entirely, so an
// instrumented run never serves — or stores — a stale artifact.
//
// The parallel path is built to scale: result slots are written without
// any lock (each cell owns its index), completion counters are atomics,
// the progress line is throttled and skipped under contention rather
// than serializing workers, model construction runs on the worker (Cell.
// Build) overlapped with other cells' simulation, and concurrent
// submissions of the identical cell are single-flighted — one leader
// simulates while the rest share its result, so the cache sees one
// writer per key.
package sched

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/models"
)

// Cell is one schedulable engine run: a model under an operating mode
// with a merged config. Name labels the cell in errors and progress
// output; Done, when non-nil, receives the completed (or cache-served)
// result on the worker goroutine — per-run exports hook here.
type Cell struct {
	Name string
	// Model is the pre-built workload graph. Leave it nil and set Build
	// instead to defer construction to the worker: the build then
	// overlaps with other cells' simulation instead of serializing the
	// submitting driver's collect loop.
	Model *models.Model
	// Build constructs the cell's model on the worker (used when Model
	// is nil). It must be deterministic and must return a private
	// instance — concurrent cells never share a model.
	Build func() (*models.Model, error)
	Mode  string
	Cfg   engine.Config
	Done  func(*engine.Result) error
}

// model resolves the cell's workload graph, building lazily on the
// calling (worker) goroutine when only Build is set.
func (c *Cell) model() (*models.Model, error) {
	if c.Model != nil {
		return c.Model, nil
	}
	if c.Build == nil {
		return nil, fmt.Errorf("sched: cell has neither Model nor Build")
	}
	m, err := c.Build()
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("sched: Build returned a nil model")
	}
	return m, nil
}

// Scheduler executes cells on a bounded worker pool. The zero value is a
// serial, uncached scheduler.
type Scheduler struct {
	// Workers bounds concurrent simulations (<= 1 = serial).
	Workers int
	// Cache, when non-nil, memoizes cacheable cells (see Cacheable).
	Cache *Cache
	// Progress, when non-nil, receives a single live progress line
	// (carriage-return rewritten) plus a final summary per Run batch.
	// Commands point it at stderr so stdout stays clean for CSV output.
	Progress io.Writer
	// ProgressEvery is the minimum interval between live progress
	// rewrites (0 = the 50ms default). The final summary always prints.
	ProgressEvery time.Duration

	// flight deduplicates concurrent submissions of the identical cell:
	// one simulation, shared result, one cache writer per key.
	flight flightGroup
	// sims counts simulations actually executed over the scheduler's
	// lifetime; dedups counts cells served by another cell's in-flight
	// simulation.
	sims   atomic.Int64
	dedups atomic.Int64
}

// Simulations reports how many cells this scheduler actually simulated
// (cache hits and single-flight followers excluded) over its lifetime.
func (s *Scheduler) Simulations() int64 { return s.sims.Load() }

// Dedups reports how many cells were served by another concurrent
// cell's in-flight simulation (the single-flight path).
func (s *Scheduler) Dedups() int64 { return s.dedups.Load() }

// progressLine throttles the live progress rewrite: a worker that
// cannot take the lock, or that finds the line fresher than the
// interval, skips the print — progress I/O never serializes workers.
type progressLine struct {
	w     io.Writer
	every time.Duration
	mu    sync.Mutex
	last  time.Time
}

func (p *progressLine) update(done, total, cached int64) {
	if p.w == nil {
		return
	}
	if !p.mu.TryLock() {
		return // another worker is mid-print; this completion skips
	}
	defer p.mu.Unlock()
	if now := time.Now(); now.Sub(p.last) >= p.every {
		p.last = now
		fmt.Fprintf(p.w, "\rsched: %d/%d runs (%d cached)", done, total, cached)
	}
}

// Run executes the cells and returns their results in submission order.
// Cells run concurrently up to Workers; the first error wins and is
// wrapped with its cell's name. Once any cell has failed, the remaining
// cells are skipped instead of simulated — a failing 1000-cell sweep
// reports after the in-flight work drains, not after burning the whole
// suite. Results served from the cache are shared pointers — callers
// must treat them as read-only.
func (s *Scheduler) Run(cells []Cell) ([]*engine.Result, error) {
	workers := s.Workers
	if workers <= 0 {
		workers = 1
	}
	results := make([]*engine.Result, len(cells))
	every := s.ProgressEvery
	if every == 0 {
		every = 50 * time.Millisecond
	}
	var (
		wg                            sync.WaitGroup
		done, cached, failed, skipped atomic.Int64
		errMu                         sync.Mutex
		firstErr                      error
		prog                          = &progressLine{w: s.Progress, every: every}
	)
	batchFailed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}
	// The feeder hands out cell indices in submission order and stops
	// at the first recorded error, charging the undispatched tail to
	// the skip counter. The unbuffered channel keeps at most one cell
	// queued past the workers, so almost no work is committed before
	// the error check sees it.
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range cells {
			if batchFailed() {
				skipped.Add(int64(len(cells) - i))
				return
			}
			idx <- i
		}
	}()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				// Re-check on the worker: a cell the feeder queued
				// before the failure landed is skipped here.
				if batchFailed() {
					skipped.Add(1)
					continue
				}
				r, hit, err := s.runCell(&cells[i])
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("%s: %w", cells[i].Name, err)
					}
					errMu.Unlock()
					failed.Add(1)
					continue
				}
				// Each cell owns its slot: no lock needed for the write.
				results[i] = r
				c := cached.Load()
				if hit {
					c = cached.Add(1)
				}
				prog.update(done.Add(1), int64(len(cells)), c)
			}
		}()
	}
	wg.Wait()
	if s.Progress != nil && len(cells) > 0 {
		d, c, f, sk := done.Load(), cached.Load(), failed.Load(), skipped.Load()
		if f > 0 || sk > 0 {
			fmt.Fprintf(s.Progress, "\rsched: %d/%d runs (%d ok, %d failed, %d skipped), %d cache hits, %d simulated, workers=%d\n",
				d+f, int64(len(cells)), d, f, sk, c, d-c, workers)
		} else {
			fmt.Fprintf(s.Progress, "\rsched: %d runs, %d cache hits, %d simulated, workers=%d\n",
				d, c, d-c, workers)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// warnKeyError surfaces cache-key failures: a key error means
// engine.Config grew a field the hasher cannot canonicalize, which
// silently disables memoization for every affected cell — worth one loud
// line on stderr per *distinct* failure, not one per cell. Deduplication
// is by error message, not process-global: a second, different key
// failure later in a long session (a different config field, a different
// model serialization problem) still gets its own line instead of being
// swallowed by the first.
var (
	keyErrMu   sync.Mutex
	keyErrSeen map[string]bool
	keyErrOut  io.Writer = os.Stderr // swapped in tests
)

// WarnKeyError is the exported form for sibling packages that compute
// composite keys over engine configs (the cluster's whole-run key): the
// same once-per-distinct-message stderr warning, the same consequence
// (the affected runs execute uncached).
func WarnKeyError(err error) { warnKeyError(err) }

func warnKeyError(err error) {
	msg := err.Error()
	keyErrMu.Lock()
	defer keyErrMu.Unlock()
	if keyErrSeen[msg] {
		return
	}
	if keyErrSeen == nil {
		keyErrSeen = make(map[string]bool)
	}
	keyErrSeen[msg] = true
	fmt.Fprintf(keyErrOut,
		"sched: cannot compute result-cache keys; affected runs execute uncached: %v\n", err)
}

// runCell executes one cell: model resolution (lazy Build runs here, on
// the worker), cache lookup, single-flighted simulation on miss, store,
// then the cell's Done callback. The second return reports whether the
// result arrived without this cell simulating (a cache or dedup hit).
func (s *Scheduler) runCell(c *Cell) (*engine.Result, bool, error) {
	m, err := c.model()
	if err != nil {
		return nil, false, err
	}
	var key string
	if s.Cache != nil && Cacheable(c.Cfg) {
		if k, kerr := Key(m, c.Mode, c.Cfg); kerr != nil {
			warnKeyError(kerr)
		} else {
			key = k
		}
	}
	var r *engine.Result
	hit := false
	if key != "" {
		// Single flight: concurrent identical cells elect one leader,
		// which checks the cache and simulates+stores on a miss; the
		// rest share its pointer. The lookup lives inside the flight so
		// a key is probed exactly once per settled result.
		var simulated bool
		res, shared, err := s.flight.Do(key, func() (any, error) {
			if r, ok := s.Cache.Get(key); ok {
				return r, nil
			}
			simulated = true
			s.sims.Add(1)
			r, err := RunMode(m, c.Mode, c.Cfg)
			if err != nil {
				return nil, err
			}
			if err := s.Cache.Put(key, r); err != nil {
				return nil, err
			}
			return r, nil
		})
		if err != nil {
			return nil, false, err
		}
		if shared {
			s.dedups.Add(1)
		}
		r, hit = res.(*engine.Result), !simulated
	} else {
		s.sims.Add(1)
		if r, err = RunMode(m, c.Mode, c.Cfg); err != nil {
			return nil, false, err
		}
	}
	if c.Done != nil {
		if err := c.Done(r); err != nil {
			return nil, false, err
		}
	}
	return r, hit, nil
}

// Memo single-flights and memoizes an arbitrary keyed computation
// through the scheduler's flight group and result cache — the extension
// point that lets whole cluster runs share the machinery engine cells
// use. The contract mirrors runCell: concurrent callers with the same
// key elect one leader; the leader consults the cache (decode rebuilds a
// value from a verified disk entry) and computes+stores on a miss; every
// caller shares the settled pointer, so results must be treated as
// read-only. The computation must be deterministic and its value
// JSON-round-trippable — the same obligations the simulation's
// byte-identity tests prove for engine results. The second return
// reports whether the value arrived without this caller computing (a
// cache or dedup hit).
//
// Keys must be content hashes whose preimage starts with a
// caller-specific format header (engine cells use "cachedarrays-run v1",
// cluster runs "cachedarrays-cluster v1"), which keeps the shared key
// space collision-free. A scheduler without a Cache still single-flights;
// it just recomputes on every settled miss.
func (s *Scheduler) Memo(key string, decode func([]byte) (any, error), compute func() (any, error)) (any, bool, error) {
	var computed bool
	v, shared, err := s.flight.Do(key, func() (any, error) {
		if v, ok := s.Cache.GetAny(key, decode); ok {
			return v, nil
		}
		computed = true
		s.sims.Add(1)
		v, err := compute()
		if err != nil {
			return nil, err
		}
		if err := s.Cache.PutAny(key, v); err != nil {
			return nil, err
		}
		return v, nil
	})
	if err != nil {
		return nil, false, err
	}
	if shared {
		s.dedups.Add(1)
	}
	return v, !computed, nil
}

// Cacheable reports whether a run with this config may be served from (or
// stored into) the result cache. Any attached instrumentation — tracing,
// data-manager event logs, fault injection, invariant audits, a metrics
// registry — makes the run uncacheable: those runs produce per-run
// artifacts a memoized result cannot reproduce.
func Cacheable(cfg engine.Config) bool {
	return !cfg.Trace && cfg.TraceEvents == 0 && cfg.FaultSpec == "" &&
		!cfg.CheckEveryAdvance && !cfg.CheckInvariants && cfg.Metrics == nil
}

// Normalize canonicalizes a user-facing mode spelling ("os", "2LM:O",
// "plan") to the scheduler's canonical mode name.
func Normalize(mode string) (string, error) {
	switch strings.ToUpper(mode) {
	case "2LM:0", "2LM:O":
		return "2LM:0", nil
	case "2LM:M":
		return "2LM:M", nil
	case "CA:0", "CA:O":
		return "CA:0", nil
	case "CA:L":
		return "CA:L", nil
	case "CA:LM":
		return "CA:LM", nil
	case "CA:LMP":
		return "CA:LMP", nil
	case "CA:OG":
		return "CA:OG", nil
	case "CA:TG":
		return "CA:TG", nil
	case "CA:OGTG", "CA:TGOG":
		return "CA:OGTG", nil
	case "OS:PAGE", "OS":
		return "OS:page", nil
	case "AUTOTM", "AUTOTM:PLAN", "PLAN":
		return "AutoTM", nil
	default:
		return "", fmt.Errorf("sched: unknown mode %q (2LM:0, 2LM:M, CA:0, CA:L, CA:LM, CA:LMP, CA:OG, CA:TG, CA:OGTG, OS:page, AutoTM)", mode)
	}
}

// RunMode is the single authoritative mode dispatcher: it builds the
// engine's event-driven stepper for a canonical mode name (any Normalize
// spelling is accepted) and drives it to completion.
func RunMode(m *models.Model, mode string, cfg engine.Config) (*engine.Result, error) {
	st, err := engine.NewStepper(m, mode, cfg, nil)
	if errors.Is(err, engine.ErrUnknownMode) {
		canon, nerr := Normalize(mode)
		if nerr != nil {
			return nil, nerr
		}
		st, err = engine.NewStepper(m, canon, cfg, nil)
	}
	if err != nil {
		return nil, err
	}
	return engine.Drive(st)
}
