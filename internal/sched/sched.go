// Package sched is the run scheduler every experiment driver submits its
// engine cells to: a bounded worker pool with one mode dispatcher and an
// optional content-addressed result cache.
//
// The simulation is fully deterministic — identical (model, mode, config)
// cells produce byte-identical results, a property the repository's tests
// prove repeatedly — which is exactly what makes memoization safe: a cell
// another figure (or another process) already computed is returned from
// the cache as a reflect.DeepEqual-identical result instead of being
// re-simulated. Runs that attach instrumentation (tracing, fault
// injection, invariant audits, metrics) bypass the cache entirely, so an
// instrumented run never serves — or stores — a stale artifact.
package sched

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/models"
	"cachedarrays/internal/pagemig"
	"cachedarrays/internal/policy"
)

// Cell is one schedulable engine run: a model under an operating mode
// with a merged config. Name labels the cell in errors and progress
// output; Done, when non-nil, receives the completed (or cache-served)
// result on the worker goroutine — per-run exports hook here.
type Cell struct {
	Name  string
	Model *models.Model
	Mode  string
	Cfg   engine.Config
	Done  func(*engine.Result) error
}

// Scheduler executes cells on a bounded worker pool. The zero value is a
// serial, uncached scheduler.
type Scheduler struct {
	// Workers bounds concurrent simulations (<= 1 = serial).
	Workers int
	// Cache, when non-nil, memoizes cacheable cells (see Cacheable).
	Cache *Cache
	// Progress, when non-nil, receives a single live progress line
	// (carriage-return rewritten) plus a final summary per Run batch.
	// Commands point it at stderr so stdout stays clean for CSV output.
	Progress io.Writer
}

// Run executes the cells and returns their results in submission order.
// Cells run concurrently up to Workers; the first error wins and is
// wrapped with its cell's name. Results served from the cache are shared
// pointers — callers must treat them as read-only.
func (s *Scheduler) Run(cells []Cell) ([]*engine.Result, error) {
	workers := s.Workers
	if workers <= 0 {
		workers = 1
	}
	results := make([]*engine.Result, len(cells))
	var (
		mu           sync.Mutex
		wg           sync.WaitGroup
		firstErr     error
		sem          = make(chan struct{}, workers)
		done, cached int
	)
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, hit, err := s.runCell(&cells[i])
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%s: %w", cells[i].Name, err)
				}
				return
			}
			results[i] = r
			done++
			if hit {
				cached++
			}
			if s.Progress != nil {
				fmt.Fprintf(s.Progress, "\rsched: %d/%d runs (%d cached)", done, len(cells), cached)
			}
		}(i)
	}
	wg.Wait()
	if s.Progress != nil && len(cells) > 0 {
		fmt.Fprintf(s.Progress, "\rsched: %d runs, %d cache hits, %d simulated, workers=%d\n",
			done, cached, done-cached, workers)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// runCell executes one cell: cache lookup, simulation on miss, store,
// then the cell's Done callback. The second return reports a cache hit.
func (s *Scheduler) runCell(c *Cell) (*engine.Result, bool, error) {
	var key string
	if s.Cache != nil && Cacheable(c.Cfg) {
		// A key error means the config grew a field the hasher cannot
		// canonicalize — run uncached rather than fail the cell.
		if k, err := Key(c.Model, c.Mode, c.Cfg); err == nil {
			key = k
			if r, ok := s.Cache.Get(key); ok {
				if c.Done != nil {
					if err := c.Done(r); err != nil {
						return nil, false, err
					}
				}
				return r, true, nil
			}
		}
	}
	r, err := RunMode(c.Model, c.Mode, c.Cfg)
	if err != nil {
		return nil, false, err
	}
	if key != "" {
		if err := s.Cache.Put(key, r); err != nil {
			return nil, false, err
		}
	}
	if c.Done != nil {
		if err := c.Done(r); err != nil {
			return nil, false, err
		}
	}
	return r, false, nil
}

// Cacheable reports whether a run with this config may be served from (or
// stored into) the result cache. Any attached instrumentation — tracing,
// data-manager event logs, fault injection, invariant audits, a metrics
// registry — makes the run uncacheable: those runs produce per-run
// artifacts a memoized result cannot reproduce.
func Cacheable(cfg engine.Config) bool {
	return !cfg.Trace && cfg.TraceEvents == 0 && cfg.FaultSpec == "" &&
		!cfg.CheckEveryAdvance && !cfg.CheckInvariants && cfg.Metrics == nil
}

// Normalize canonicalizes a user-facing mode spelling ("os", "2LM:O",
// "plan") to the scheduler's canonical mode name.
func Normalize(mode string) (string, error) {
	switch strings.ToUpper(mode) {
	case "2LM:0", "2LM:O":
		return "2LM:0", nil
	case "2LM:M":
		return "2LM:M", nil
	case "CA:0", "CA:O":
		return "CA:0", nil
	case "CA:L":
		return "CA:L", nil
	case "CA:LM":
		return "CA:LM", nil
	case "CA:LMP":
		return "CA:LMP", nil
	case "OS:PAGE", "OS":
		return "OS:page", nil
	case "AUTOTM", "AUTOTM:PLAN", "PLAN":
		return "AutoTM", nil
	default:
		return "", fmt.Errorf("sched: unknown mode %q (2LM:0, 2LM:M, CA:0, CA:L, CA:LM, CA:LMP, OS:page, AutoTM)", mode)
	}
}

// RunMode is the single authoritative mode dispatcher: it maps a canonical
// mode name (any Normalize spelling is accepted) to the engine entry point
// and executes the run.
func RunMode(m *models.Model, mode string, cfg engine.Config) (*engine.Result, error) {
	switch mode {
	case "2LM:0":
		return engine.Run2LM(m, false, cfg)
	case "2LM:M":
		return engine.Run2LM(m, true, cfg)
	case "CA:0":
		return engine.RunCA(m, policy.CAZero, cfg)
	case "CA:L":
		return engine.RunCA(m, policy.CAL, cfg)
	case "CA:LM":
		return engine.RunCA(m, policy.CALM, cfg)
	case "CA:LMP":
		return engine.RunCA(m, policy.CALMP, cfg)
	case "OS:page":
		return engine.RunPageMig(m, pagemig.DefaultConfig(), cfg)
	case "AutoTM":
		return engine.RunPlanned(m, nil, cfg)
	default:
		canon, err := Normalize(mode)
		if err != nil {
			return nil, err
		}
		return RunMode(m, canon, cfg)
	}
}
