package sched

import "sync"

// flightGroup is in-memory single-flight over cache keys: when several
// workers submit the identical cell concurrently, exactly one (the
// leader) executes the work while the rest block on its completion and
// share the pointer — the simulation runs once and the on-disk cache
// sees one writer per key instead of a Put race. The zero value is
// ready to use.
//
// Values are untyped so one group serves both engine-result cells and
// whole cluster runs (Scheduler.Memo): keys are content hashes whose
// preimage includes a format header, so the two key spaces can never
// collide.
//
// Unlike a cache, entries live only while the leader is in flight:
// completion removes the key, so a later submission consults the result
// cache (which the leader populated) instead of pinning results here.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// flightCall is one in-flight execution.
type flightCall struct {
	done    chan struct{} // closed when val/err are final
	waiters int           // callers sharing this flight; guarded by the group's mu
	val     any
	err     error
}

// Do executes fn under key, deduplicating concurrent callers: the first
// caller for a key runs fn; callers arriving while it is in flight wait
// and receive the same result. The second return reports whether the
// result was shared from another caller's execution (a dedup hit).
func (g *flightGroup) Do(key string, fn func() (any, error)) (any, bool, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		c.waiters++
		g.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}
