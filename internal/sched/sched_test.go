package sched

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/metrics"
	"cachedarrays/internal/models"
)

// paperModel builds a paper-scale network (full batch size) for the
// cache tests: the acceptance bar is a DeepEqual-identical hit on real
// workloads, not toys.
func paperModel() *models.Model {
	return models.PaperLargeModels()[1].Build() // ResNet 200, batch 2048
}

func mustKey(t *testing.T, m *models.Model, mode string, cfg engine.Config) string {
	t.Helper()
	k, err := Key(m, mode, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestCacheHitDeepEqual proves the memoization contract at paper scale:
// a second scheduler with a fresh Cache over the same directory (forcing
// the disk path, not the in-memory map) returns a result that is
// reflect.DeepEqual-identical to the simulated one.
func TestCacheHitDeepEqual(t *testing.T) {
	dir := t.TempDir()
	cfg := engine.Config{Iterations: 2}
	cell := func() []Cell {
		return []Cell{{Name: "hit", Model: paperModel(), Mode: "CA:LM", Cfg: cfg}}
	}

	c1, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := (&Scheduler{Cache: c1}).Run(cell())
	if err != nil {
		t.Fatal(err)
	}
	if st := c1.Stats(); st.Misses != 1 || st.Stores != 1 || st.Hits != 0 {
		t.Fatalf("cold stats = %+v, want 1 miss, 1 store", st)
	}

	c2, err := OpenCache(dir) // fresh instance: empty memory, must load from disk
	if err != nil {
		t.Fatal(err)
	}
	warm, err := (&Scheduler{Cache: c2}).Run(cell())
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("warm stats = %+v, want 1 hit", st)
	}
	if !reflect.DeepEqual(cold[0], warm[0]) {
		t.Fatal("disk-cached result is not DeepEqual to the simulated one")
	}
}

// TestCacheSharedWithinProcess checks the in-memory path and that the
// run name is not part of the key: two differently-named cells with the
// same (model, mode, config) dedup to one simulation.
func TestCacheSharedWithinProcess(t *testing.T) {
	c, err := OpenCache("") // memory-only
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.Config{Iterations: 2}
	cells := []Cell{
		{Name: "matrix-resnet-calm", Model: paperModel(), Mode: "CA:LM", Cfg: cfg},
		{Name: "baselines-resnet-calm", Model: paperModel(), Mode: "ca:lm", Cfg: cfg},
	}
	results, err := (&Scheduler{Cache: c}).Run(cells)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits+st.Misses != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want exactly 1 miss and 1 hit for identical cells", st)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatal("deduped cells returned different results")
	}
}

// mutateField flips one leaf value in place, recursing into structs.
// Returns false for kinds the key hasher rejects anyway (pointers).
func mutateField(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 0.25)
	case reflect.String:
		v.SetString(v.String() + "x")
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if mutateField(v.Field(i)) {
				return true
			}
		}
		return false
	default:
		return false
	}
	return true
}

// TestKeySensitiveToEveryField walks engine.Config by reflection and
// checks that mutating any (hashable) field changes the cache key — the
// property that keeps a new config knob from aliasing an old result.
// The base config sets every defaultable field to a non-default value so
// a mutation can never be normalized away by Canonical.
func TestKeySensitiveToEveryField(t *testing.T) {
	m := paperModel()
	base := engine.Config{Iterations: 3, Allocator: "bestfit", SlowTier: "nvram"}.Canonical()
	baseKey := mustKey(t, m, "CA:LM", base)

	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		cfg := base
		if !mutateField(reflect.ValueOf(&cfg).Elem().Field(i)) {
			continue // pointer fields: covered by TestKeyRejectsLiveState
		}
		k, err := Key(m, "CA:LM", cfg)
		if err != nil {
			t.Errorf("Config.%s: key error after mutation: %v", f.Name, err)
			continue
		}
		if k == baseKey {
			t.Errorf("Config.%s: mutation did not change the cache key", f.Name)
		}
	}

	// Mode and model feed the key too.
	if mustKey(t, m, "CA:LMP", base) == baseKey {
		t.Error("mode change did not change the cache key")
	}
	if mustKey(t, models.PaperLargeModels()[0].Build(), "CA:LM", base) == baseKey {
		t.Error("model change did not change the cache key")
	}
	// Alias spellings of one mode share a key (that is the dedup point).
	if mustKey(t, m, "ca:lm", base) != baseKey {
		t.Error("mode alias spelling changed the cache key")
	}
}

// TestKeyRejectsLiveState: a config carrying live state (an attached
// metrics registry) must refuse to produce a key rather than alias.
func TestKeyRejectsLiveState(t *testing.T) {
	cfg := engine.Config{Metrics: metrics.New(0.5)}
	if _, err := Key(paperModel(), "CA:LM", cfg); err == nil {
		t.Fatal("Key accepted a config with a live metrics registry")
	}
	if Cacheable(cfg) {
		t.Fatal("Cacheable accepted a config with a live metrics registry")
	}
}

// TestInstrumentedBypass: any instrumentation flag makes the run bypass
// the cache entirely — no hit, no store.
func TestInstrumentedBypass(t *testing.T) {
	mutations := map[string]func(*engine.Config){
		"trace":       func(c *engine.Config) { c.Trace = true },
		"events":      func(c *engine.Config) { c.TraceEvents = 8 },
		"faults":      func(c *engine.Config) { c.FaultSpec = "seed=1;allocfail:fast:t0=0,t1=1,p=0.1" },
		"check":       func(c *engine.Config) { c.CheckEveryAdvance = true },
		"invariants":  func(c *engine.Config) { c.CheckInvariants = true },
		"metrics-reg": func(c *engine.Config) { c.Metrics = metrics.New(0.5) },
	}
	for name, mut := range mutations {
		t.Run(name, func(t *testing.T) {
			c, err := OpenCache(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			cfg := engine.Config{Iterations: 1}
			mut(&cfg)
			if Cacheable(cfg) {
				t.Fatalf("config with %s counts as cacheable", name)
			}
			cells := []Cell{{Name: name, Model: paperModel(), Mode: "CA:LM", Cfg: cfg}}
			if _, err := (&Scheduler{Cache: c}).Run(cells); err != nil {
				t.Fatal(err)
			}
			if st := c.Stats(); st != (CacheStats{}) {
				t.Fatalf("instrumented run touched the cache: %+v", st)
			}
		})
	}
}

// TestCorruptEntryRecomputed: a truncated or bit-flipped disk entry is
// detected by the integrity header, counted, and transparently
// recomputed (and the recompute overwrites the bad entry).
func TestCorruptEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	m := paperModel()
	cfg := engine.Config{Iterations: 2}
	key := mustKey(t, m, "CA:LM", cfg)

	c1, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	good, err := (&Scheduler{Cache: c1}).Run([]Cell{{Name: "seed", Model: m, Mode: "CA:LM", Cfg: cfg}})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, key+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("cache entry not on disk: %v", err)
	}
	for name, bad := range map[string][]byte{
		"truncated":   data[:len(data)/2],
		"bit-flipped": append(append([]byte{}, data[:len(data)-3]...), data[len(data)-3]^0x40, data[len(data)-2], data[len(data)-1]),
		"no-header":   []byte("not a cache entry"),
	} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			c2, err := OpenCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			again, err := (&Scheduler{Cache: c2}).Run([]Cell{{Name: "retry", Model: paperModel(), Mode: "CA:LM", Cfg: cfg}})
			if err != nil {
				t.Fatal(err)
			}
			st := c2.Stats()
			if st.Hits != 0 || st.Corrupt != 1 || st.Stores != 1 {
				t.Fatalf("stats after corruption = %+v, want corrupt=1, stores=1, hits=0", st)
			}
			if !reflect.DeepEqual(good[0], again[0]) {
				t.Fatal("recomputed result differs from the original")
			}
			// The overwrite must have repaired the entry.
			c3, _ := OpenCache(dir)
			if _, ok := c3.Get(key); !ok {
				t.Fatal("recompute did not repair the disk entry")
			}
		})
	}
}

// TestNilCache: the nil *Cache is a working no-op.
func TestNilCache(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache hit")
	}
	if err := c.Put("k", &engine.Result{}); err != nil {
		t.Fatal(err)
	}
	if c.Stats() != (CacheStats{}) {
		t.Fatal("nil cache has stats")
	}
}

// TestRunOrderAndErrors: results come back in submission order, and the
// first error is wrapped with the failing cell's name.
func TestRunOrderAndErrors(t *testing.T) {
	m := models.MLP(256, []int{256}, 64, 8)
	cfg := engine.Config{Iterations: 1}
	cells := []Cell{
		{Name: "a", Model: m, Mode: "CA:LM", Cfg: cfg},
		{Name: "b", Model: m, Mode: "2LM:0", Cfg: cfg},
		{Name: "c", Model: m, Mode: "CA:0", Cfg: cfg},
	}
	results, err := (&Scheduler{Workers: 3}).Run(cells)
	if err != nil {
		t.Fatal(err)
	}
	wantModes := []string{"CA:LM", "2LM:0", "CA:0"}
	for i, r := range results {
		if r == nil || r.Mode != wantModes[i] {
			t.Errorf("result %d: got %v, want mode %s", i, r, wantModes[i])
		}
	}

	cells[1].Mode = "NUMA"
	if _, err := (&Scheduler{Workers: 3}).Run(cells); err == nil {
		t.Fatal("bad mode did not fail the batch")
	} else if !strings.Contains(err.Error(), "b:") {
		t.Fatalf("error %q not wrapped with the cell name", err)
	}
}

// TestRunFastFailSkipsRemaining is the regression test for the
// run-after-error waste: a 32-cell batch whose first cell errors must
// not burn the remaining 31 simulations before reporting. With one
// worker the feeder dispatches in submission order, so the failure
// lands before any real cell runs and the whole tail is skipped.
func TestRunFastFailSkipsRemaining(t *testing.T) {
	const n = 32
	cells := make([]Cell, n)
	cells[0] = Cell{
		Name:  "poisoned",
		Build: func() (*models.Model, error) { return nil, fmt.Errorf("injected build failure") },
		Mode:  "CA:LM",
		Cfg:   engine.Config{Iterations: 1},
	}
	for i := 1; i < n; i++ {
		cells[i] = Cell{
			Name: fmt.Sprintf("real-%d", i),
			// Distinct iteration counts defeat single-flight dedup, so
			// Simulations() counts every cell that actually ran.
			Build: func() (*models.Model, error) { return models.MLP(256, []int{256}, 64, 8), nil },
			Mode:  "CA:LM",
			Cfg:   engine.Config{Iterations: 1 + i%4},
		}
	}
	s := &Scheduler{Workers: 1}
	_, err := s.Run(cells)
	if err == nil || !strings.Contains(err.Error(), "poisoned:") {
		t.Fatalf("batch error = %v, want the poisoned cell's wrapped error", err)
	}
	if sims := s.Simulations(); sims >= n-1 {
		t.Fatalf("scheduler simulated %d cells after the first error; fast-fail should skip the tail", sims)
	} else if sims > 2 {
		t.Errorf("scheduler simulated %d cells after an immediate cell-0 error, want at most the in-flight overlap (<= 2)", sims)
	}
}

// TestRunSummaryCountsFailures: the final sched: summary must account
// for every cell — errored cells used to skip the done counter, so the
// summary undercounted processed cells and never mentioned the failure.
func TestRunSummaryCountsFailures(t *testing.T) {
	var buf bytes.Buffer
	m := models.MLP(256, []int{256}, 64, 8)
	cells := []Cell{
		{Name: "ok", Model: m, Mode: "CA:LM", Cfg: engine.Config{Iterations: 1}},
		{Name: "bad", Model: m, Mode: "NUMA", Cfg: engine.Config{Iterations: 1}},
		{Name: "tail", Model: m, Mode: "CA:0", Cfg: engine.Config{Iterations: 1}},
	}
	s := &Scheduler{Workers: 1, Progress: &buf}
	if _, err := s.Run(cells); err == nil {
		t.Fatal("bad mode did not fail the batch")
	}
	out := buf.String()
	if !strings.Contains(out, "2/3 runs (1 ok, 1 failed, 1 skipped)") {
		t.Fatalf("summary does not account for the failed and skipped cells: %q", out)
	}

	// The success-path summary keeps its stable format (CI greps it).
	buf.Reset()
	okCells := []Cell{{Name: "ok", Model: m, Mode: "CA:LM", Cfg: engine.Config{Iterations: 1}}}
	if _, err := (&Scheduler{Workers: 1, Progress: &buf}).Run(okCells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 runs, 0 cache hits, 1 simulated, workers=1") {
		t.Fatalf("success summary format changed: %q", buf.String())
	}
}

// TestNormalizeAliases pins the canonical names and the accepted alias
// spellings (which must all share one cache key space).
func TestNormalizeAliases(t *testing.T) {
	want := map[string]string{
		"2LM:0": "2LM:0", "2lm:o": "2LM:0", "2LM:M": "2LM:M",
		"CA:0": "CA:0", "ca:o": "CA:0", "CA:L": "CA:L",
		"ca:lm": "CA:LM", "CA:LMP": "CA:LMP",
		"os": "OS:page", "OS:PAGE": "OS:page",
		"AutoTM": "AutoTM", "plan": "AutoTM", "autotm:plan": "AutoTM",
	}
	for in, out := range want {
		got, err := Normalize(in)
		if err != nil {
			t.Errorf("%s: %v", in, err)
		} else if got != out {
			t.Errorf("Normalize(%s) = %s, want %s", in, got, out)
		}
	}
	if _, err := Normalize("NUMA"); err == nil {
		t.Error("unknown mode normalized")
	}
}

// FuzzConfigKey feeds arbitrary field values through the key and checks
// the two properties the cache relies on: determinism (same inputs, same
// key) and injectivity over the fuzzed fields (any differing field gives
// a different key).
func FuzzConfigKey(f *testing.F) {
	f.Add(int64(0), int64(0), 4, "", "", false, 0)
	f.Add(int64(1<<30), int64(1<<34), 2, "buddy", "cxl", true, 3)
	m := models.MLP(64, []int{64}, 16, 4) // key hashing never simulates; small model keeps fuzzing fast
	mk := func(fast, slow int64, iters int, alloc, tier string, async bool, look int) engine.Config {
		return engine.Config{
			FastCapacity: fast, SlowCapacity: slow, Iterations: iters,
			Allocator: alloc, SlowTier: tier, AsyncMovement: async, HintLookahead: look,
		}
	}
	f.Fuzz(func(t *testing.T, fast, slow int64, iters int, alloc, tier string, async bool, look int) {
		cfg := mk(fast, slow, iters, alloc, tier, async, look)
		k1, err := Key(m, "CA:LM", cfg)
		if err != nil {
			t.Fatal(err)
		}
		k2, err := Key(m, "CA:LM", mk(fast, slow, iters, alloc, tier, async, look))
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k2 {
			t.Fatal("key is not deterministic")
		}
		// Canonicalization folds zero values to defaults, so compare
		// against a config that differs post-canonicalization.
		other := cfg.Canonical()
		other.HintLookahead++
		k3, err := Key(m, "CA:LM", other)
		if err != nil {
			t.Fatal(err)
		}
		if k3 == k1 {
			t.Fatal("differing configs share a key")
		}
	})
}
