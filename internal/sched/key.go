package sched

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"reflect"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/models"
)

// Key computes the content-addressed cache key of one run: a SHA-256 over
// the canonical (default-resolved) engine config, the canonical mode name
// and the model's deterministic JSON serialization. The run *name* is
// deliberately not part of the key: two drivers submitting the same
// (model, mode, config) cell — the baselines table re-running a matrix
// cell, fig7async's synchronous points re-running fig7's — address the
// same cached result.
//
// The config is hashed by reflection over its canonical form, field names
// included, so any field added to engine.Config automatically changes the
// key space — a new knob can never silently alias an old result. Fields
// the hasher cannot canonicalize (non-nil pointers carrying live state)
// yield an error; Cacheable screens those out before Key is consulted.
func Key(model *models.Model, mode string, cfg engine.Config) (string, error) {
	canon, err := Normalize(mode)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "cachedarrays-run v1\nmode=%s\n", canon)
	if err := hashValue(h, "cfg", reflect.ValueOf(cfg.Canonical())); err != nil {
		return "", err
	}
	fmt.Fprintf(h, "model=")
	if err := model.SaveJSON(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// HashConfig writes the canonical (default-resolved) config's
// name=value field lines into w under the given field-name prefix — the
// exact byte stream Key hashes for one run's config, exported so
// composite keys (the cluster's whole-run key hashes one platform config
// plus one per-job config each) stay field-name-sensitive the same way.
// Configs carrying live state (a non-nil Metrics registry) are an error,
// mirroring Key.
func HashConfig(w io.Writer, prefix string, cfg engine.Config) error {
	return hashValue(w, prefix, reflect.ValueOf(cfg.Canonical()))
}

// hashValue writes a canonical name=value line per leaf field, recursing
// through structs, slices and arrays. Unexported fields, non-nil pointers
// and uncanonicalizable kinds (maps, funcs, channels) are errors — better
// an uncacheable run than a key that ignores state.
func hashValue(w io.Writer, name string, v reflect.Value) error {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				return fmt.Errorf("sched: config field %s.%s is unexported", name, f.Name)
			}
			if err := hashValue(w, name+"."+f.Name, v.Field(i)); err != nil {
				return err
			}
		}
	case reflect.Pointer, reflect.Interface:
		if !v.IsNil() {
			return fmt.Errorf("sched: config field %s carries live state (%s)", name, v.Type())
		}
		fmt.Fprintf(w, "%s=nil\n", name)
	case reflect.Slice, reflect.Array:
		fmt.Fprintf(w, "%s.len=%d\n", name, v.Len())
		for i := 0; i < v.Len(); i++ {
			if err := hashValue(w, fmt.Sprintf("%s[%d]", name, i), v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.String:
		fmt.Fprintf(w, "%s=%v\n", name, v.Interface())
	default:
		return fmt.Errorf("sched: cannot hash config field %s of kind %s", name, v.Kind())
	}
	return nil
}
