// Package planner implements a static, ahead-of-time data-placement
// planner in the style of AutoTM (Hildebrand et al., ASPLOS'20) — the
// "Compiler" row of the paper's Table I. Given the full kernel schedule
// and tensor liveness up front (which CNN training provides), it decides
// offline, per tensor, one of three placements:
//
//   - FastAlways: live in DRAM for the tensor's whole lifetime;
//   - Offload: live in DRAM while hot, synchronously evict to NVRAM
//     across the forward/backward gap, prefetch back before reuse (the
//     classic vDNN/AutoTM offload pattern);
//   - SlowAlways: live in NVRAM, accessed in place.
//
// AutoTM solves this with an ILP; this implementation uses the standard
// greedy relaxation (benefit-density ordering against a per-step capacity
// timeline), which reaches the same placements on these workloads'
// strongly bimodal tensors.
//
// The point of carrying this baseline is the paper's §II argument: static
// planning works when "the workloads' reuse patterns" are regular (CNNs),
// and cannot adapt when they are not (DLRM — see the experiments package,
// where the static placement collapses after the first locality shift).
package planner

import (
	"fmt"
	"sort"

	"cachedarrays/internal/models"
)

// Placement is a tensor's planned residency.
type Placement int

const (
	// SlowAlways keeps the tensor in NVRAM for its whole life.
	SlowAlways Placement = iota
	// FastAlways keeps the tensor in DRAM for its whole life.
	FastAlways
	// Offload holds the tensor in DRAM while in use, parks it in NVRAM
	// across its idle gap, and restores it before reuse.
	Offload
)

func (p Placement) String() string {
	switch p {
	case SlowAlways:
		return "slow"
	case FastAlways:
		return "fast"
	case Offload:
		return "offload"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Plan is the static placement decision set for one model.
type Plan struct {
	Placement []Placement
	// OffloadAfter[t] / RestoreBefore[t] bound tensor t's parked
	// interval (kernel indices) when Placement[t] == Offload.
	OffloadAfter  []int
	RestoreBefore []int
	// FastBytesPeak is the planned peak DRAM usage (must be <= budget).
	FastBytesPeak int64
}

// CostModel supplies the per-byte costs the planner optimizes against.
// Units are arbitrary (seconds/byte); only ratios matter.
type CostModel struct {
	// SlowReadPenalty is the extra cost of reading one byte from NVRAM
	// instead of DRAM (kernel in-place access).
	SlowReadPenalty float64
	// SlowWritePenalty is the write-side counterpart (large: regular
	// stores to NVRAM are the scarce resource).
	SlowWritePenalty float64
	// MoveCost is the cost of moving one byte between tiers (the
	// offload pattern pays it twice).
	MoveCost float64
}

// DefaultCostModel mirrors the platform model's bandwidth ratios.
func DefaultCostModel() CostModel {
	return CostModel{
		SlowReadPenalty:  1.0/23e9 - 1.0/65e9,  // in-place read: NVRAM vs DRAM
		SlowWritePenalty: 1.0/5.6e9 - 1.0/55e9, // in-place write: NVRAM vs DRAM
		MoveCost:         1.0 / 11e9,           // shaped copy, read+write overlapped
	}
}

// tensorInfo aggregates what the greedy pass needs per tensor.
type tensorInfo struct {
	id            int
	bytes         int64
	first, last   int
	readBytes     float64 // rf-weighted bytes read over all kernels
	writeBytes    float64
	gapStart      int // last use before the largest idle gap
	gapEnd        int // first use after it
	gapLen        int
	benefitAlways float64 // stall avoided by FastAlways vs SlowAlways
}

// Build computes a plan for the model against a DRAM budget.
func Build(m *models.Model, fastBudget int64, cm CostModel) *Plan {
	n := len(m.Tensors)
	steps := len(m.Kernels)
	plan := &Plan{
		Placement:     make([]Placement, n),
		OffloadAfter:  make([]int, n),
		RestoreBefore: make([]int, n),
	}
	infos := make([]*tensorInfo, n)
	for id := range m.Tensors {
		infos[id] = &tensorInfo{id: id, bytes: m.Tensors[id].Bytes, first: steps, last: -1}
	}
	// Use points and traffic.
	uses := make([][]int, n)
	for ki := range m.Kernels {
		k := &m.Kernels[ki]
		rf := k.EffectiveReadFactor()
		for _, id := range k.Reads {
			ti := infos[id]
			f := 1.0
			if m.Tensors[id].Kind == models.Activation || m.Tensors[id].Kind == models.Input {
				f = rf
			}
			ti.readBytes += f * float64(ti.bytes)
			uses[id] = append(uses[id], ki)
		}
		for _, id := range k.Writes {
			infos[id].writeBytes += float64(infos[id].bytes)
			uses[id] = append(uses[id], ki)
		}
	}
	for id, us := range uses {
		ti := infos[id]
		if len(us) == 0 {
			continue
		}
		ti.first, ti.last = us[0], us[len(us)-1]
		// Largest idle gap between consecutive uses.
		for i := 1; i < len(us); i++ {
			if g := us[i] - us[i-1]; g > ti.gapLen {
				ti.gapLen = g
				ti.gapStart = us[i-1]
				ti.gapEnd = us[i]
			}
		}
		ti.benefitAlways = ti.readBytes*cm.SlowReadPenalty + ti.writeBytes*cm.SlowWritePenalty
	}

	// Greedy: order by benefit density, claim capacity on a per-step
	// timeline.
	order := make([]*tensorInfo, 0, n)
	for _, ti := range infos {
		if ti.last >= 0 {
			order = append(order, ti)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		return order[i].benefitAlways/float64(order[i].bytes) >
			order[j].benefitAlways/float64(order[j].bytes)
	})
	capUsed := make([]int64, steps)
	claim := func(from, to int, bytes int64) bool {
		for s := from; s <= to; s++ {
			if capUsed[s]+bytes > fastBudget {
				return false
			}
		}
		for s := from; s <= to; s++ {
			capUsed[s] += bytes
		}
		return true
	}
	const minOffloadGap = 8 // shorter gaps are not worth two copies
	for _, ti := range order {
		if claim(ti.first, ti.last, ti.bytes) {
			plan.Placement[ti.id] = FastAlways
			continue
		}
		// Try the offload pattern: resident only outside the big gap.
		if ti.gapLen >= minOffloadGap {
			// Offload still pays two moves; require the residency
			// benefit to cover them.
			if ti.benefitAlways <= 2*float64(ti.bytes)*cm.MoveCost {
				continue
			}
			okA := claim(ti.first, ti.gapStart, ti.bytes)
			okB := okA && claim(ti.gapEnd, ti.last, ti.bytes)
			if okA && !okB {
				// Roll back the first half.
				for s := ti.first; s <= ti.gapStart; s++ {
					capUsed[s] -= ti.bytes
				}
			}
			if okA && okB {
				plan.Placement[ti.id] = Offload
				plan.OffloadAfter[ti.id] = ti.gapStart
				plan.RestoreBefore[ti.id] = ti.gapEnd
			}
		}
	}
	for _, u := range capUsed {
		if u > plan.FastBytesPeak {
			plan.FastBytesPeak = u
		}
	}
	return plan
}

// Counts summarizes a plan.
func (p *Plan) Counts() (fast, offload, slow int) {
	for _, pl := range p.Placement {
		switch pl {
		case FastAlways:
			fast++
		case Offload:
			offload++
		default:
			slow++
		}
	}
	return
}
