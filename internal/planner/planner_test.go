package planner

import (
	"testing"

	"cachedarrays/internal/models"
	"cachedarrays/internal/units"
)

func TestPlanRespectsBudget(t *testing.T) {
	m := models.ResNet(50, 256)
	budget := int64(8 * units.GB)
	p := Build(m, budget, DefaultCostModel())
	if p.FastBytesPeak > budget {
		t.Fatalf("planned peak %s exceeds budget %s",
			units.Bytes(p.FastBytesPeak), units.Bytes(budget))
	}
	fast, offload, slow := p.Counts()
	if fast == 0 {
		t.Error("nothing planned into fast memory")
	}
	if fast+offload+slow != len(m.Tensors) {
		t.Error("placements do not cover all tensors")
	}
}

func TestPlanUsesOffloadUnderPressure(t *testing.T) {
	// A model whose footprint exceeds the budget should offload the
	// forward activations across their forward/backward gap.
	m := models.VGG(116, 320) // ~153 GB
	p := Build(m, 60*units.GB, DefaultCostModel())
	_, offload, _ := p.Counts()
	if offload == 0 {
		t.Fatal("no offload placements under memory pressure")
	}
	for id, pl := range p.Placement {
		if pl != Offload {
			continue
		}
		if p.OffloadAfter[id] >= p.RestoreBefore[id] {
			t.Fatalf("tensor %d: offload interval [%d,%d) inverted",
				id, p.OffloadAfter[id], p.RestoreBefore[id])
		}
	}
}

func TestGenerousBudgetKeepsEverythingFast(t *testing.T) {
	m := models.MLP(256, []int{128}, 10, 32)
	p := Build(m, 64*units.GB, DefaultCostModel())
	_, offload, slow := p.Counts()
	if offload != 0 {
		t.Errorf("offloads with an over-generous budget: %d", offload)
	}
	// Tiny tensors below the benefit threshold may stay slow; the bulk
	// must be fast.
	if slow > len(m.Tensors)/2 {
		t.Errorf("%d of %d tensors left slow despite ample budget", slow, len(m.Tensors))
	}
}

func TestZeroBudgetPlansEverythingSlow(t *testing.T) {
	m := models.MLP(256, []int{128}, 10, 32)
	p := Build(m, 0, DefaultCostModel())
	fast, offload, _ := p.Counts()
	if fast != 0 || offload != 0 {
		t.Fatalf("zero budget produced fast=%d offload=%d", fast, offload)
	}
	if p.FastBytesPeak != 0 {
		t.Fatalf("zero budget peak = %d", p.FastBytesPeak)
	}
}

func TestPlacementStrings(t *testing.T) {
	if SlowAlways.String() != "slow" || FastAlways.String() != "fast" || Offload.String() != "offload" {
		t.Error("placement strings wrong")
	}
	if Placement(9).String() == "" {
		t.Error("unknown placement renders empty")
	}
}

func TestTighterBudgetsNeverRaisePeak(t *testing.T) {
	m := models.ResNet(50, 128)
	var prev int64 = 1 << 62
	for _, b := range []int64{32 * units.GB, 16 * units.GB, 4 * units.GB, units.GB} {
		p := Build(m, b, DefaultCostModel())
		if p.FastBytesPeak > b {
			t.Fatalf("budget %s: peak %s over budget", units.Bytes(b), units.Bytes(p.FastBytesPeak))
		}
		if p.FastBytesPeak > prev {
			t.Fatalf("peak grew as budget shrank")
		}
		prev = p.FastBytesPeak
	}
}
