// Package runcfg is the shared instrumentation wiring of the run
// commands (carun, casweep, cafigures): one flag surface for execution
// tracing, fault injection, invariant checking, metrics sampling/export
// and the live HTTP endpoint, applied uniformly to every engine run a
// command makes. Adding a flag here lands it in all runners at once.
package runcfg

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"cachedarrays/internal/cluster"
	"cachedarrays/internal/engine"
	"cachedarrays/internal/metrics"
	"cachedarrays/internal/sched"
	"cachedarrays/internal/tracing"
)

// Flags holds the shared instrumentation and scheduling flag values.
type Flags struct {
	Trace           string
	Check           bool
	Faults          string
	Metrics         string
	MetricsSummary  string
	MetricsInterval float64
	Listen          string
	Parallel        int
	Cache           string
}

// Register installs the shared instrumentation flags on a flag set.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Trace, "trace", "",
		"write the execution trace to this file (CA modes; .jsonl for the raw event log, anything else for Chrome/Perfetto trace-event JSON)")
	fs.BoolVar(&f.Check, "check", false,
		"audit runtime invariants at every clock advance (CA modes; slower)")
	fs.StringVar(&f.Faults, "faults", "",
		"inject a deterministic fault schedule (CA modes), e.g. 'seed=42;allocfail:fast:t0=0.1,t1=0.3,p=0.5;copystall:nvram:t0=0,stall=2ms'")
	fs.StringVar(&f.Metrics, "metrics", "",
		"write the sampled metrics time series as wide CSV to this file")
	fs.StringVar(&f.MetricsSummary, "metrics-summary", "",
		"write the compact metrics JSON summary to this file (cametrics diff input)")
	fs.Float64Var(&f.MetricsInterval, "metrics-interval", metrics.DefaultInterval,
		"metrics sampling cadence in virtual seconds")
	fs.StringVar(&f.Listen, "listen", "",
		"serve live metrics over HTTP on this address (Prometheus text at /metrics, expvar at /debug/vars)")
	fs.IntVar(&f.Parallel, "parallel", runtime.GOMAXPROCS(0),
		"concurrent simulation runs (each run stays deterministic; 1 = serial)")
	fs.StringVar(&f.Cache, "cache", "",
		"content-addressed result cache directory: identical runs are served from disk instead of re-simulated (instrumented runs bypass it)")
	return f
}

// metricsWanted reports whether any metrics sink was requested.
func (f *Flags) metricsWanted() bool {
	return f.Metrics != "" || f.MetricsSummary != "" || f.Listen != ""
}

// Name builds a filesystem- and label-safe run name from parts: lowered,
// with anything outside [a-z0-9.-] folded to '_', joined by '-'.
func Name(parts ...string) string {
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteByte('-')
		}
		for _, r := range strings.ToLower(p) {
			switch {
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '.':
				b.WriteRune(r)
			default:
				b.WriteByte('_')
			}
		}
	}
	return b.String()
}

// Session is a command's instrumentation state: the metrics hub behind
// the live endpoint plus the output-writing discipline. One Session
// serves all of a command's runs.
type Session struct {
	flags *Flags
	multi bool

	hub   *metrics.Hub
	srv   *http.Server
	ln    net.Listener
	cache *sched.Cache

	// schedOnce memoizes the session's scheduler: one instance serves
	// every batch a command submits, so the single-flight group and the
	// lifetime simulation/dedup counters span all of its figures.
	schedOnce sync.Once
	sched     *sched.Scheduler

	// mu serializes status prints and output writes from parallel sweeps.
	mu     sync.Mutex
	status io.Writer
}

// Start validates the flags and brings up the live HTTP endpoint when
// requested. multi declares whether the command makes more than one
// engine run — multi-run sessions suffix every output path with the run
// name, and silently skip trace export for modes that produce no trace.
// Status lines (where outputs landed) go to status; nil discards them.
func (f *Flags) Start(multi bool, status io.Writer) (*Session, error) {
	if status == nil {
		status = io.Discard
	}
	s := &Session{flags: f, multi: multi, status: status}
	if f.metricsWanted() {
		if f.MetricsInterval < 0 {
			return nil, fmt.Errorf("runcfg: negative -metrics-interval %g", f.MetricsInterval)
		}
		s.hub = metrics.NewHub()
	}
	if f.Listen != "" {
		ln, err := net.Listen("tcp", f.Listen)
		if err != nil {
			return nil, fmt.Errorf("runcfg: -listen: %w", err)
		}
		s.ln = ln
		s.srv = &http.Server{Handler: s.hub.Handler()}
		go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
		fmt.Fprintf(status, "metrics     : serving on http://%s/metrics (expvar at /debug/vars)\n", ln.Addr())
	}
	if f.Cache != "" {
		cache, err := sched.OpenCache(f.Cache)
		if err != nil {
			return nil, err
		}
		s.cache = cache
	}
	return s, nil
}

// Scheduler returns the session's run scheduler: the -parallel worker
// bound, the -cache result store (nil when off) and a progress line on
// progress (usually stderr, keeping -csv stdout machine-readable; nil
// disables it). The instance is memoized — every call returns the same
// scheduler, so concurrent batches share one single-flight group and
// identical cells dedup across a command's whole figure sweep. The
// first call's progress writer wins.
func (s *Session) Scheduler(progress io.Writer) *sched.Scheduler {
	s.schedOnce.Do(func() {
		s.sched = &sched.Scheduler{Workers: s.flags.Parallel, Cache: s.cache, Progress: progress}
	})
	return s.sched
}

// CacheStats reports the session cache's traffic (zeros when -cache is
// off).
func (s *Session) CacheStats() sched.CacheStats {
	return s.cache.Stats()
}

// Addr returns the live endpoint's bound address ("" when -listen is off);
// with -listen :0 this is where the ephemeral port shows up.
func (s *Session) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts down the live endpoint.
func (s *Session) Close() error {
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}

// Apply merges the shared instrumentation into one named run's config
// and returns the completion callback that exports the run's outputs.
// It has the experiments.Options.Instrument shape and is safe for
// concurrent calls (parallel sweeps): per-run outputs go to distinct,
// name-suffixed files.
func (s *Session) Apply(name string, cfg *engine.Config) func(*engine.Result) error {
	cfg.CheckEveryAdvance = cfg.CheckEveryAdvance || s.flags.Check
	if s.flags.Faults != "" {
		cfg.FaultSpec = s.flags.Faults
	}
	if s.flags.Trace != "" {
		cfg.Trace = true
	}
	var reg *metrics.Registry
	if s.flags.metricsWanted() {
		reg = metrics.New(s.flags.MetricsInterval)
		reg.SetMeta("run", name)
		cfg.Metrics = reg
		s.hub.Register(name, reg)
	}
	return func(r *engine.Result) error {
		if s.flags.Trace != "" {
			if err := s.writeTrace(name, r); err != nil {
				return err
			}
		}
		if reg != nil {
			if err := s.writeMetrics(name, reg); err != nil {
				return err
			}
		}
		return nil
	}
}

// ApplyCluster merges the shared instrumentation into a cluster run's
// config and returns the completion callback that exports its outputs.
// It is the cluster-shaped sibling of Apply: -check/-faults/-trace land
// on the engine config (the cluster validates faults itself), -metrics
// and friends build the cluster-level registry plus one tenant-labeled
// registry per tenant, each served live on the hub with
// run="..."/tenant="..." labels and exported to tenant-suffixed files.
func (s *Session) ApplyCluster(name string, cfg *cluster.Config) func(*cluster.Result) error {
	cfg.Engine.CheckEveryAdvance = cfg.Engine.CheckEveryAdvance || s.flags.Check
	if s.flags.Faults != "" {
		cfg.Engine.FaultSpec = s.flags.Faults
	}
	if s.flags.Trace != "" {
		cfg.Engine.Trace = true
	}
	multi := len(cfg.Jobs) > 1
	var reg *metrics.Registry
	var tenantLabels []string
	tenantRegs := map[string]*metrics.Registry{}
	if s.flags.metricsWanted() {
		reg = metrics.New(s.flags.MetricsInterval)
		reg.SetMeta("run", name)
		cfg.Engine.Metrics = reg
		s.hub.Register(name, reg)
		if multi {
			cfg.TenantMetrics = func(label string) *metrics.Registry {
				r := metrics.New(s.flags.MetricsInterval)
				r.SetMeta("run", name)
				r.SetMeta("tenant", label)
				s.hub.RegisterLabeled(name+"/"+label,
					fmt.Sprintf("run=%q,tenant=%q", name, label), r)
				s.mu.Lock()
				tenantLabels = append(tenantLabels, label)
				tenantRegs[label] = r
				s.mu.Unlock()
				return r
			}
		}
	}
	return func(r *cluster.Result) error {
		if s.flags.Trace != "" {
			if len(r.Tenants) == 1 {
				// N=1 keeps the solo trace on the tenant's own result
				// (byte-identical to the solo engine run).
				if err := s.writeTrace(name, r.Tenants[0].Result); err != nil {
					return err
				}
			} else if err := s.writeClusterTrace(name, r.Trace); err != nil {
				return err
			}
		}
		if reg != nil {
			if err := s.writeMetrics(name, reg); err != nil {
				return err
			}
			for _, label := range tenantLabels {
				// Tenant files always carry the tenant suffix, whatever
				// the session's multi-run setting — they coexist with
				// the cluster-level files by construction.
				csv := suffix(s.path(s.flags.Metrics, name), label)
				sum := suffix(s.path(s.flags.MetricsSummary, name), label)
				if err := s.writeMetricsPaths(csv, sum, tenantRegs[label]); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// Registry creates, names and hub-registers a registry for auxiliary
// series outside any engine run (e.g. the router's placement counters).
// It returns nil — a valid, disabled registry — when no metrics sink was
// requested.
func (s *Session) Registry(name string) *metrics.Registry {
	if !s.flags.metricsWanted() {
		return nil
	}
	reg := metrics.New(s.flags.MetricsInterval)
	reg.SetMeta("run", name)
	s.hub.Register(name, reg)
	return reg
}

// path suffixes an output path with the run name for multi-run sessions:
// out.csv + fig7-vgg_116-30 -> out-fig7-vgg_116-30.csv.
func (s *Session) path(base, name string) string {
	if !s.multi {
		return base
	}
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "-" + name + ext
}

// suffix appends a suffix to a path before its extension, unconditionally.
func suffix(base, sfx string) string {
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "-" + sfx + ext
}

// writeTrace exports a run's execution trace, verifying first that it is
// an exact decomposition of the run's aggregates. The extension picks
// the format: .jsonl gets the raw event log (catrace's input), anything
// else the Chrome trace-event JSON.
func (s *Session) writeTrace(name string, r *engine.Result) error {
	if len(r.Trace) == 0 {
		if s.multi {
			return nil // baseline modes produce no trace; skip in sweeps
		}
		return fmt.Errorf("-trace: mode produced no trace (tracing covers the CA engines)")
	}
	if err := tracing.Verify(r.Trace); err != nil {
		return err
	}
	return s.writeTraceFile(s.path(s.flags.Trace, name), r.Trace)
}

// writeClusterTrace exports a multi-tenant run's multiplexed trace after
// verifying every tenant lane and the cross-tenant traffic partition.
func (s *Session) writeClusterTrace(name string, events []tracing.Event) error {
	if len(events) == 0 {
		return fmt.Errorf("-trace: cluster run produced no trace")
	}
	if err := tracing.VerifyLanes(events); err != nil {
		return err
	}
	return s.writeTraceFile(s.path(s.flags.Trace, name), events)
}

// writeTraceFile writes verified events to path in the extension-selected
// format: .jsonl for the raw event log, Chrome trace-event JSON otherwise.
func (s *Session) writeTraceFile(path string, events []tracing.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = tracing.WriteJSONL(f, events)
	} else {
		err = tracing.WriteChrome(f, events)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	s.mu.Lock()
	fmt.Fprintf(s.status, "trace       : %d events -> %s (consistency verified)\n", len(events), path)
	s.mu.Unlock()
	return nil
}

// writeMetrics exports a run's sampled series (CSV) and summary (JSON).
func (s *Session) writeMetrics(name string, reg *metrics.Registry) error {
	return s.writeMetricsPaths(s.path(s.flags.Metrics, name), s.path(s.flags.MetricsSummary, name), reg)
}

// writeMetricsPaths is writeMetrics with explicit output paths (tenant
// exports suffix the session paths themselves).
func (s *Session) writeMetricsPaths(csvPath, sumPath string, reg *metrics.Registry) error {
	if s.flags.Metrics != "" {
		if err := writeFile(csvPath, reg.WriteCSV); err != nil {
			return err
		}
		s.mu.Lock()
		fmt.Fprintf(s.status, "metrics     : %d samples -> %s\n", reg.Samples(), csvPath)
		s.mu.Unlock()
	}
	if s.flags.MetricsSummary != "" {
		write := func(w io.Writer) error { return metrics.WriteSummary(w, reg.Summarize()) }
		if err := writeFile(sumPath, write); err != nil {
			return err
		}
		s.mu.Lock()
		fmt.Fprintf(s.status, "metrics     : summary -> %s\n", sumPath)
		s.mu.Unlock()
	}
	return nil
}

// writeFile creates path and streams write into it, reporting the first
// error including the close.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
