package runcfg

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/metrics"
	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/sched"
	"cachedarrays/internal/units"
)

func TestNameSanitization(t *testing.T) {
	tests := []struct {
		parts []string
		want  string
	}{
		{[]string{"ResNet 200", "CA:LM"}, "resnet_200-ca_lm"},
		{[]string{"fig7", "VGG 116", "32212254720"}, "fig7-vgg_116-32212254720"},
		{[]string{"a.b-c"}, "a.b-c"},
	}
	for _, tc := range tests {
		if got := Name(tc.parts...); got != tc.want {
			t.Errorf("Name(%v) = %q, want %q", tc.parts, got, tc.want)
		}
	}
}

func parseFlags(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestStartRejectsNegativeInterval(t *testing.T) {
	f := parseFlags(t, "-metrics", "x.csv", "-metrics-interval", "-1")
	if _, err := f.Start(false, nil); err == nil ||
		!strings.Contains(err.Error(), "metrics-interval") {
		t.Fatalf("negative interval error = %v", err)
	}
}

// smallRun executes a tiny CA run through Apply, like a command would.
func smallRun(t *testing.T, sess *Session, name string, trace bool) {
	t.Helper()
	cfg := engine.Config{Iterations: 2, Trace: trace,
		FastCapacity: 2 * units.GB, SlowCapacity: 16 * units.GB}
	done := sess.Apply(name, &cfg)
	r, err := engine.RunCA(models.MLP(4096, []int{4096, 4096}, 1000, 16), policy.CALM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := done(r); err != nil {
		t.Fatal(err)
	}
}

func TestSingleRunExports(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "run.csv")
	sumPath := filepath.Join(dir, "run.json")
	tracePath := filepath.Join(dir, "run.jsonl")
	f := parseFlags(t, "-metrics", csvPath, "-metrics-summary", sumPath, "-trace", tracePath)
	sess, err := f.Start(false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	smallRun(t, sess, "mlp3-ca_lm", true)
	// Single-run sessions write to the exact paths given.
	for _, p := range []string{csvPath, sumPath, tracePath} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing export: %v", err)
		}
	}
	sf, err := os.Open(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := metrics.ReadSummary(sf)
	sf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Meta["run"] != "mlp3-ca_lm" {
		t.Errorf("run meta = %q", sum.Meta["run"])
	}
}

func TestSingleRunErrorsOnTracelessMode(t *testing.T) {
	dir := t.TempDir()
	f := parseFlags(t, "-trace", filepath.Join(dir, "t.jsonl"))
	sess, err := f.Start(false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	cfg := engine.Config{Iterations: 1,
		FastCapacity: 2 * units.GB, SlowCapacity: 16 * units.GB}
	done := sess.Apply("mlp3-2lm_0", &cfg)
	r, err := engine.Run2LM(models.MLP(4096, []int{4096, 4096}, 1000, 16), false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := done(r); err == nil || !strings.Contains(err.Error(), "no trace") {
		t.Fatalf("traceless single run error = %v", err)
	}
}

func TestMultiRunSuffixesPathsAndSkipsTraceless(t *testing.T) {
	dir := t.TempDir()
	f := parseFlags(t,
		"-metrics", filepath.Join(dir, "out.csv"),
		"-trace", filepath.Join(dir, "out.jsonl"))
	sess, err := f.Start(true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	smallRun(t, sess, "sweep-a", true)
	smallRun(t, sess, "sweep-b", true)
	for _, want := range []string{"out-sweep-a.csv", "out-sweep-b.csv",
		"out-sweep-a.jsonl", "out-sweep-b.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing suffixed export %s: %v", want, err)
		}
	}
	// A baseline mode produces no trace; multi-run sessions skip it
	// silently instead of failing the sweep.
	cfg := engine.Config{Iterations: 1,
		FastCapacity: 2 * units.GB, SlowCapacity: 16 * units.GB}
	done := sess.Apply("sweep-2lm", &cfg)
	r, err := engine.Run2LM(models.MLP(4096, []int{4096, 4096}, 1000, 16), false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := done(r); err != nil {
		t.Fatalf("traceless multi run not skipped: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "out-sweep-2lm.jsonl")); err == nil {
		t.Error("traceless run wrote a trace file")
	}
	// Its metrics still export.
	if _, err := os.Stat(filepath.Join(dir, "out-sweep-2lm.csv")); err != nil {
		t.Errorf("traceless run's metrics missing: %v", err)
	}
}

// TestLiveEndpoint serves a completed run over -listen and checks both
// the Prometheus text and the expvar JSON views.
func TestLiveEndpoint(t *testing.T) {
	f := parseFlags(t, "-listen", "127.0.0.1:0")
	var status strings.Builder
	sess, err := f.Start(true, &status)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	addr := sess.Addr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	if !strings.Contains(status.String(), addr) {
		t.Errorf("status %q does not announce %q", status.String(), addr)
	}
	smallRun(t, sess, "live-a", false)
	smallRun(t, sess, "live-b", false)

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	prom := get("/metrics")
	for _, want := range []string{"# TYPE ca_engine_iterations counter",
		`run="live-a"`, `run="live-b"`} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, "cametrics") || !strings.Contains(vars, "live-a") {
		t.Errorf("/debug/vars missing published runs: %.200s", vars)
	}
	if idx := get("/"); !strings.Contains(idx, "/metrics") {
		t.Errorf("index page does not link /metrics: %.200s", idx)
	}
}

// TestSchedulerFlags wires -parallel and -cache through Start into the
// session scheduler: a second session over the same cache directory
// must serve the identical run from disk, and an instrumented session
// must bypass the cache.
func TestSchedulerFlags(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	model := func() *models.Model { return models.MLP(4096, []int{4096, 4096}, 1000, 16) }
	cfg := engine.Config{Iterations: 2,
		FastCapacity: 2 * units.GB, SlowCapacity: 16 * units.GB}

	runOnce := func(f *Flags) (*engine.Result, sched.CacheStats) {
		sess, err := f.Start(false, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		c := cfg
		done := sess.Apply("flagtest", &c)
		results, err := sess.Scheduler(nil).Run([]sched.Cell{
			{Name: "flagtest", Model: model(), Mode: "CA:LM", Cfg: c, Done: done}})
		if err != nil {
			t.Fatal(err)
		}
		return results[0], sess.CacheStats()
	}

	cold, st := runOnce(parseFlags(t, "-parallel", "2", "-cache", dir))
	if st.Stores != 1 || st.Hits != 0 {
		t.Fatalf("cold stats = %+v, want 1 store", st)
	}
	warm, st := runOnce(parseFlags(t, "-cache", dir))
	if st.Hits != 1 {
		t.Fatalf("warm stats = %+v, want 1 hit", st)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("cached result differs across processes (sessions)")
	}

	// A traced session must not touch the cache.
	tracePath := filepath.Join(t.TempDir(), "t.jsonl")
	_, st = runOnce(parseFlags(t, "-cache", dir, "-trace", tracePath))
	if st.Hits != 0 || st.Stores != 0 {
		t.Fatalf("instrumented session touched the cache: %+v", st)
	}

	// Without -cache the session scheduler is uncached and CacheStats is
	// all zeros.
	if _, st := runOnce(parseFlags(t)); st != (sched.CacheStats{}) {
		t.Fatalf("cacheless session has stats %+v", st)
	}
}

// TestSchedulerMemoized: every Scheduler call on a session returns the
// same instance — one single-flight group and one lifetime counter set
// span all of a command's batches — and the first progress writer wins.
func TestSchedulerMemoized(t *testing.T) {
	f := parseFlags(t, "-parallel", "3")
	sess, err := f.Start(true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	s1 := sess.Scheduler(io.Discard)
	s2 := sess.Scheduler(nil) // later writers must not replace the first
	if s1 != s2 {
		t.Fatal("Scheduler returned distinct instances")
	}
	if s1.Workers != 3 {
		t.Fatalf("workers = %d, want the -parallel value 3", s1.Workers)
	}
	if s1.Progress == nil {
		t.Fatal("first call's progress writer was dropped")
	}
}

// TestCachelessSessionLifecycle: a session without -cache (and without
// -listen) still answers CacheStats with zeros and closes cleanly —
// commands call both unconditionally.
func TestCachelessSessionLifecycle(t *testing.T) {
	sess, err := parseFlags(t).Start(false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.CacheStats(); got != (sched.CacheStats{}) {
		t.Fatalf("cacheless CacheStats = %+v, want zeros", got)
	}
	if sess.Addr() != "" {
		t.Fatalf("cacheless session reports address %q", sess.Addr())
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCachedSessionSchedulerUsesCache: the -cache flag's store reaches
// the memoized scheduler, and a repeated batch is served from it.
func TestCachedSessionSchedulerUsesCache(t *testing.T) {
	f := parseFlags(t, "-cache", t.TempDir(), "-parallel", "1")
	sess, err := f.Start(true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	s := sess.Scheduler(nil)
	cells := []sched.Cell{{
		Name: "lifecycle",
		Build: func() (*models.Model, error) {
			return models.MLP(2048, []int{2048}, 100, 8), nil
		},
		Mode: "CA:LM",
		Cfg:  engine.Config{Iterations: 2, FastCapacity: units.GB, SlowCapacity: 8 * units.GB},
	}}
	if _, err := s.Run(cells); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(cells); err != nil {
		t.Fatal(err)
	}
	if s.Simulations() != 1 {
		t.Fatalf("simulations = %d, want 1 (second batch cache-served)", s.Simulations())
	}
	if st := sess.CacheStats(); st.Hits == 0 {
		t.Fatalf("cache stats = %+v, want a hit", st)
	}
}
