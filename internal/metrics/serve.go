package metrics

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// WritePrometheus renders the registry's most recent sample in Prometheus
// text exposition format. Series names get a "ca_" prefix; labels (e.g.
// `run="fig7-vgg-116"`) are appended verbatim when non-empty.
//
// Only *sampled* values are served — the source closures read live
// simulator state and may only run on the simulation goroutine, so the
// HTTP goroutine reads the last snapshot instead. A watched value is
// therefore at most one sampling interval (of virtual time) stale.
func (r *Registry) WritePrometheus(w io.Writer, labels string) {
	if r == nil {
		return
	}
	lbl := ""
	if labels != "" {
		lbl = "{" + labels + "}"
	}
	r.mu.Lock()
	cols := r.sortedCols()
	type lastVal struct {
		name string
		kind Kind
		v    float64
	}
	vals := make([]lastVal, 0, len(cols))
	for _, c := range cols {
		var v float64
		if n := len(c.samples); n > 0 {
			v = c.samples[n-1]
		}
		vals = append(vals, lastVal{c.name, c.kind, v})
	}
	hists := append([]*Histogram(nil), r.hists...)
	r.mu.Unlock()

	for _, lv := range vals {
		fmt.Fprintf(w, "# TYPE ca_%s %s\n", lv.name, lv.kind)
		fmt.Fprintf(w, "ca_%s%s %s\n", lv.name, lbl, strconv.FormatFloat(lv.v, 'g', -1, 64))
	}
	for _, h := range hists {
		s := h.snapshot()
		fmt.Fprintf(w, "# TYPE ca_%s_bucket gauge\n", h.name)
		keys := make([]string, 0, len(s.Buckets))
		for k := range s.Buckets {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, _ := strconv.ParseFloat(keys[i], 64)
			b, _ := strconv.ParseFloat(keys[j], 64)
			return a < b
		})
		inner := ""
		if labels != "" {
			inner = labels + ","
		}
		// Buckets are keyed by their power-of-two *lower* bound (the
		// "ge" label), unlike Prometheus's cumulative "le" convention —
		// these are per-bucket counts for human inspection, not for
		// PromQL quantile math.
		for _, k := range keys {
			fmt.Fprintf(w, "ca_%s_bucket{%sge=%q} %d\n", h.name, inner, k, s.Buckets[k])
		}
	}
}

// Hub serves one or more runs' registries over HTTP: /metrics in
// Prometheus text format (one run label per registry) and /debug/vars via
// the standard expvar handler, which includes a "cametrics" variable
// holding every run's JSON summary.
type Hub struct {
	mu   sync.Mutex
	keys []string // registration order
	runs map[string]*Registry
	// labels holds explicit Prometheus label strings for registries
	// registered via RegisterLabeled (e.g. `run="cluster",tenant="mix0"`);
	// they are served verbatim, overriding the default run label.
	labels map[string]string
}

// activeHub is the hub the process-wide expvar variable reads from; the
// most recently created hub wins (one command creates at most one).
var (
	activeHub  atomic.Pointer[Hub]
	expvarOnce sync.Once
)

// NewHub creates a hub and points the process's expvar "cametrics"
// variable at it.
func NewHub() *Hub {
	h := &Hub{runs: map[string]*Registry{}}
	activeHub.Store(h)
	expvarOnce.Do(func() {
		expvar.Publish("cametrics", expvar.Func(func() any {
			hub := activeHub.Load()
			if hub == nil {
				return nil
			}
			return hub.Summaries()
		}))
	})
	return h
}

// Register adds a run's registry under a name. Re-registering a name
// replaces it (multi-run commands reuse budget names across models only
// when the caller composes unique names).
func (h *Hub) Register(name string, r *Registry) {
	if h == nil || r == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.runs[name]; !ok {
		h.keys = append(h.keys, name)
	}
	h.runs[name] = r
}

// RegisterLabeled adds a run's registry with an explicit Prometheus label
// string (rendered verbatim inside {...} on every series), overriding the
// default run label. The cluster registers per-tenant registries this way
// so the endpoint serves `run="...",tenant="..."`-labeled series.
func (h *Hub) RegisterLabeled(name, labels string, r *Registry) {
	if h == nil || r == nil {
		return
	}
	h.Register(name, r)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.labels == nil {
		h.labels = map[string]string{}
	}
	h.labels[name] = labels
}

// Summaries returns every registered run's summary, keyed by run name.
func (h *Hub) Summaries() map[string]*Summary {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]*Summary, len(h.runs))
	for name, r := range h.runs {
		out[name] = r.Summarize()
	}
	return out
}

// Handler returns the hub's HTTP mux: / (index), /metrics (Prometheus
// text), /debug/vars (expvar JSON).
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		h.mu.Lock()
		keys := append([]string(nil), h.keys...)
		h.mu.Unlock()
		fmt.Fprintf(w, "cachedarrays metrics — %d run(s)\n", len(keys))
		for _, k := range keys {
			fmt.Fprintf(w, "  %s\n", k)
		}
		fmt.Fprintln(w, "endpoints: /metrics (Prometheus text), /debug/vars (expvar)")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		h.mu.Lock()
		keys := append([]string(nil), h.keys...)
		runs := make([]*Registry, len(keys))
		lbls := make([]string, len(keys))
		for i, k := range keys {
			runs[i] = h.runs[k]
			lbls[i] = h.labels[k]
		}
		single := len(keys) == 1
		h.mu.Unlock()
		for i, r := range runs {
			labels := lbls[i]
			if labels == "" && !single {
				labels = fmt.Sprintf("run=%q", keys[i])
			}
			r.WritePrometheus(w, labels)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
