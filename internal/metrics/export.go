package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// WriteCSV writes the sampled time series in wide form: a "t" column of
// virtual-time stamps followed by one column per series, sorted by name.
// Values round-trip exactly (%g with full precision), so two identical
// runs produce byte-identical files.
func (r *Registry) WriteCSV(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("metrics: no registry to export")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cols := r.sortedCols()
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(cols)+1)
	header = append(header, "t")
	for _, c := range cols {
		header = append(header, c.name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i, t := range r.times {
		row[0] = strconv.FormatFloat(t, 'g', -1, 64)
		for j, c := range cols {
			row[j+1] = strconv.FormatFloat(c.samples[i], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// TimeSeries is a parsed wide-CSV metrics export.
type TimeSeries struct {
	Times []float64
	Names []string // sorted, as written
	Cols  map[string][]float64
}

// ReadCSV parses a file written by WriteCSV.
func ReadCSV(rd io.Reader) (*TimeSeries, error) {
	cr := csv.NewReader(rd)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("metrics: reading CSV header: %w", err)
	}
	if len(header) < 1 || header[0] != "t" {
		return nil, fmt.Errorf("metrics: not a metrics CSV (first column %q, want \"t\")", header[0])
	}
	ts := &TimeSeries{
		Names: append([]string(nil), header[1:]...),
		Cols:  make(map[string][]float64, len(header)-1),
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return ts, nil
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("metrics: reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("metrics: CSV line %d has %d fields, want %d", line, len(rec), len(header))
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: CSV line %d: bad time %q", line, rec[0])
		}
		ts.Times = append(ts.Times, t)
		for j, name := range ts.Names {
			v, err := strconv.ParseFloat(rec[j+1], 64)
			if err != nil {
				return nil, fmt.Errorf("metrics: CSV line %d, column %s: bad value %q", line, name, rec[j+1])
			}
			ts.Cols[name] = append(ts.Cols[name], v)
		}
	}
}

// SeriesSummary condenses one series to its per-run statistics. Mean is
// the arithmetic mean over samples (not time-weighted; samples are evenly
// spaced in virtual time up to step quantization).
type SeriesSummary struct {
	Kind    Kind    `json:"kind"`
	Samples int     `json:"samples"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Mean    float64 `json:"mean"`
	Last    float64 `json:"last"`
}

// Summary is the compact JSON description of one run's metrics: what
// cametrics diffs and CI gates on.
type Summary struct {
	Meta       map[string]string            `json:"meta,omitempty"`
	Interval   float64                      `json:"interval"`
	Samples    int                          `json:"samples"`
	Start      float64                      `json:"start"`
	End        float64                      `json:"end"`
	Series     map[string]SeriesSummary     `json:"series"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// summarize reduces a sample vector to its summary statistics.
func summarize(kind Kind, samples []float64) SeriesSummary {
	s := SeriesSummary{Kind: kind, Samples: len(samples)}
	if len(samples) == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	for _, v := range samples {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		s.Mean += v
	}
	s.Mean /= float64(len(samples))
	s.Last = samples[len(samples)-1]
	return s
}

// Summarize reduces the registry's sampled series to a Summary.
func (r *Registry) Summarize() *Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Summary{
		Interval: r.interval,
		Samples:  len(r.times),
		Series:   make(map[string]SeriesSummary, len(r.cols)),
	}
	if len(r.meta) > 0 {
		s.Meta = make(map[string]string, len(r.meta))
		for k, v := range r.meta {
			s.Meta[k] = v
		}
	}
	if len(r.times) > 0 {
		s.Start, s.End = r.times[0], r.times[len(r.times)-1]
	}
	for _, c := range r.cols {
		s.Series[c.name] = summarize(c.kind, c.samples)
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for _, h := range r.hists {
			s.Histograms[h.name] = h.snapshot()
		}
	}
	return s
}

// WriteSummary writes the summary as indented JSON. Map keys marshal
// sorted, so identical runs produce byte-identical summaries — the
// property the committed-baseline regression gate relies on.
func WriteSummary(w io.Writer, s *Summary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSummary parses a JSON summary written by WriteSummary.
func ReadSummary(rd io.Reader) (*Summary, error) {
	var s Summary
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("metrics: reading summary: %w", err)
	}
	if s.Series == nil {
		return nil, fmt.Errorf("metrics: summary has no series — is this a -metrics-summary file?")
	}
	return &s, nil
}

// Delta is one statistic that moved between two summaries by more than
// the diff threshold.
type Delta struct {
	Series string
	Stat   string // min / max / mean / last / count, or "missing"/"added"
	Old    float64
	New    float64
	Rel    float64 // |new-old| / max(|old|, |new|); +Inf for missing series
}

// relDelta returns the symmetric relative difference of two values: 0 for
// exact equality (including 0 vs 0), else |b-a| scaled by the larger
// magnitude.
func relDelta(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(b-a) / den
}

// Diff compares two summaries and returns every per-series statistic
// whose relative delta exceeds rel, plus series present in only one run
// (reported with Rel=+Inf). Deltas are sorted largest first, then by
// series name — a deterministic regression report. Two summaries of the
// same deterministic run diff to nil.
func Diff(base, cur *Summary, rel float64) []Delta {
	var out []Delta
	names := make(map[string]bool, len(base.Series)+len(cur.Series))
	for n := range base.Series {
		names[n] = true
	}
	for n := range cur.Series {
		names[n] = true
	}
	for n := range names {
		o, inOld := base.Series[n]
		nw, inNew := cur.Series[n]
		switch {
		case !inOld:
			out = append(out, Delta{Series: n, Stat: "added", New: nw.Last, Rel: math.Inf(1)})
			continue
		case !inNew:
			out = append(out, Delta{Series: n, Stat: "missing", Old: o.Last, Rel: math.Inf(1)})
			continue
		}
		stats := []struct {
			name     string
			old, new float64
		}{
			{"min", o.Min, nw.Min},
			{"max", o.Max, nw.Max},
			{"mean", o.Mean, nw.Mean},
			{"last", o.Last, nw.Last},
			{"count", float64(o.Samples), float64(nw.Samples)},
		}
		for _, st := range stats {
			if d := relDelta(st.old, st.new); d > rel {
				out = append(out, Delta{Series: n, Stat: st.name, Old: st.old, New: st.new, Rel: d})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel != out[j].Rel {
			return out[i].Rel > out[j].Rel
		}
		if out[i].Series != out[j].Series {
			return out[i].Series < out[j].Series
		}
		return out[i].Stat < out[j].Stat
	})
	return out
}
