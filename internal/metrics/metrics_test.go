package metrics

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry claims to be enabled")
	}
	// Every entry point must be a no-op, not a panic.
	r.Tick(1, 0.5)
	r.Flush(2)
	r.SetMeta("model", "x")
	r.CounterFunc("a", func() float64 { return 1 })
	r.Gauge("b", func() float64 { return 2 })
	c := r.Counter("c")
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("nil counter holds value %g", c.Value())
	}
	h := r.Histogram("d")
	h.Observe(4)
	if r.Samples() != 0 || r.Interval() != 0 {
		t.Fatal("nil registry reports samples")
	}
	if s := r.Summarize(); s != nil {
		t.Fatal("nil registry produced a summary")
	}
}

func TestSamplingCadence(t *testing.T) {
	r := New(1.0)
	v := 0.0
	r.Gauge("g", func() float64 { return v })

	// Advances below the boundary take no sample.
	now := 0.0
	for _, dt := range []float64{0.3, 0.3, 0.3} {
		now += dt
		v += 1
		r.Tick(now, dt)
	}
	if r.Samples() != 0 {
		t.Fatalf("sampled %d times before the first boundary", r.Samples())
	}
	// Crossing 1.0 samples once, even when the step overshoots.
	now += 0.5 // 1.4
	v = 10
	r.Tick(now, 0.5)
	if r.Samples() != 1 {
		t.Fatalf("samples = %d after first crossing, want 1", r.Samples())
	}
	// A huge step crossing several boundaries still samples once and
	// re-arms past the current time.
	now += 3.0 // 4.4
	v = 20
	r.Tick(now, 3.0)
	if r.Samples() != 2 {
		t.Fatalf("samples = %d after multi-interval step, want 2", r.Samples())
	}
	// The next boundary is 5.0, not a backlog of missed ones.
	now += 0.1
	r.Tick(now, 0.1)
	if r.Samples() != 2 {
		t.Fatalf("backlogged boundary fired at t=%g", now)
	}

	s := r.Summarize()
	g := s.Series["g"]
	if g.Last != 20 || g.Min != 10 || g.Max != 20 || g.Samples != 2 {
		t.Fatalf("gauge summary = %+v", g)
	}
	if s.Start != 1.4 || s.End != 4.4 {
		t.Fatalf("summary window [%g, %g], want [1.4, 4.4]", s.Start, s.End)
	}
}

func TestFlushDeduplicatesFinalSample(t *testing.T) {
	r := New(1.0)
	r.Gauge("g", func() float64 { return 1 })
	r.Tick(1.5, 1.5)
	if r.Samples() != 1 {
		t.Fatalf("samples = %d", r.Samples())
	}
	r.Flush(1.5) // same timestamp: no duplicate point
	if r.Samples() != 1 {
		t.Fatalf("Flush duplicated the sample at the same time: %d", r.Samples())
	}
	r.Flush(1.7)
	if r.Samples() != 2 {
		t.Fatalf("Flush did not take the final sample: %d", r.Samples())
	}
	// Flush re-arms the boundary, so a later registry reuse would not
	// double-sample; and a second flush at the same time stays deduped.
	r.Flush(1.7)
	if r.Samples() != 2 {
		t.Fatalf("double Flush duplicated: %d", r.Samples())
	}
}

func TestLateRegistrationBackfills(t *testing.T) {
	r := New(1.0)
	r.Gauge("early", func() float64 { return 5 })
	r.Tick(1, 1)
	r.Gauge("late", func() float64 { return 7 })
	r.Tick(2, 1)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	ts, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.Cols["late"]; len(got) != 2 || got[0] != 0 || got[1] != 7 {
		t.Fatalf("late column = %v, want [0 7]", got)
	}
	if got := ts.Cols["early"]; len(got) != 2 || got[0] != 5 || got[1] != 5 {
		t.Fatalf("early column = %v", got)
	}
}

func TestDuplicateSeriesPanics(t *testing.T) {
	r := New(1)
	r.Gauge("x", func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.CounterFunc("x", func() float64 { return 0 })
}

func TestCSVRoundTrip(t *testing.T) {
	r := New(0.5)
	c := r.Counter("copies")
	r.Gauge("used_bytes", func() float64 { return 1e12 + 0.25 })
	c.Add(3.5)
	r.Tick(0.5, 0.5)
	c.Add(1)
	r.Tick(1.0, 0.5)

	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	ts, err := ReadCSV(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Times) != 2 || ts.Times[0] != 0.5 || ts.Times[1] != 1.0 {
		t.Fatalf("times = %v", ts.Times)
	}
	if got := ts.Cols["copies"]; got[0] != 3.5 || got[1] != 4.5 {
		t.Fatalf("copies = %v", got)
	}
	if got := ts.Cols["used_bytes"]; got[0] != 1e12+0.25 {
		t.Fatalf("used_bytes lost precision: %v", got)
	}
	// Header columns are sorted by name, deterministically.
	if ts.Names[0] != "copies" || ts.Names[1] != "used_bytes" {
		t.Fatalf("column order = %v", ts.Names)
	}

	var buf2 bytes.Buffer
	if err := r.WriteCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Fatal("re-export is not byte-identical")
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"a,b\n1,2\n",            // no t column
		"t,x\n1\n",              // short row
		"t,x\n1,notanumber\n",   // bad value
		"t,x\nnotanumber,1.0\n", // bad time
	} {
		if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadCSV accepted %q", bad)
		}
	}
}

func TestSummaryRoundTripAndSelfDiff(t *testing.T) {
	r := New(0.25)
	r.SetMeta("model", "resnet50")
	c := r.Counter("dm_copies")
	h := r.Histogram("kernel_seconds")
	for i := 1; i <= 8; i++ {
		c.Inc()
		h.Observe(float64(i) * 1e-3)
		r.Tick(float64(i)*0.25, 0.25)
	}
	r.Flush(2.1)

	var buf bytes.Buffer
	if err := WriteSummary(&buf, r.Summarize()); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	s, err := ReadSummary(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if s.Meta["model"] != "resnet50" || s.Interval != 0.25 {
		t.Fatalf("summary meta lost: %+v", s)
	}
	if got := s.Series["dm_copies"]; got.Last != 8 || got.Kind != KindCounter {
		t.Fatalf("dm_copies summary = %+v", got)
	}
	hs, ok := s.Histograms["kernel_seconds"]
	if !ok || hs.Count != 8 || hs.Min != 1e-3 || hs.Max != 8e-3 {
		t.Fatalf("histogram summary = %+v", hs)
	}
	// The _count/_sum companion columns ride in the time series.
	if got := s.Series["kernel_seconds_count"]; got.Last != 8 {
		t.Fatalf("kernel_seconds_count = %+v", got)
	}

	// Self-diff must be empty at any threshold, including zero.
	s2, err := ReadSummary(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(s, s2, 0); len(d) != 0 {
		t.Fatalf("self-diff produced deltas: %v", d)
	}

	// Byte-identical re-export (the committed-baseline property).
	var buf2 bytes.Buffer
	if err := WriteSummary(&buf2, r.Summarize()); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Fatal("summary re-export is not byte-identical")
	}
}

func TestDiffFlagsRegressions(t *testing.T) {
	mk := func(last float64, extra bool) *Summary {
		s := &Summary{Series: map[string]SeriesSummary{
			"iter_seconds": {Kind: KindGauge, Samples: 10, Min: 1, Max: last, Mean: last / 2, Last: last},
			"stable":       {Kind: KindCounter, Samples: 10, Last: 100, Max: 100, Mean: 50},
		}}
		if extra {
			s.Series["only_new"] = SeriesSummary{Last: 1}
		}
		return s
	}
	old, cur := mk(1.0, false), mk(1.10, true)
	d := Diff(old, cur, 0.05)
	if len(d) == 0 {
		t.Fatal("10% regression under a 5% threshold produced no deltas")
	}
	// Missing/added series rank first (infinite delta).
	if d[0].Series != "only_new" || d[0].Stat != "added" || !math.IsInf(d[0].Rel, 1) {
		t.Fatalf("first delta = %+v, want the added series", d[0])
	}
	found := false
	for _, x := range d {
		if x.Series == "stable" {
			t.Fatalf("unchanged series reported: %+v", x)
		}
		if x.Series == "iter_seconds" && x.Stat == "last" {
			found = true
			if x.Rel < 0.09 || x.Rel > 0.1 {
				t.Fatalf("rel delta = %g", x.Rel)
			}
		}
	}
	if !found {
		t.Fatalf("iter_seconds last-delta missing from %v", d)
	}
	// The same pair under a looser threshold keeps only the missing series.
	d = Diff(old, cur, 0.5)
	if len(d) != 1 || d[0].Stat != "added" {
		t.Fatalf("loose-threshold diff = %v", d)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h *Histogram
	h.Observe(1) // nil-safe
	r := New(1)
	h = r.Histogram("lat")
	h.Observe(0)    // non-positive bucket
	h.Observe(0.75) // 2^-1 bucket
	h.Observe(3)    // 2^1 bucket
	h.Observe(3.5)  // 2^1 bucket
	s := h.snapshot()
	if s.Count != 4 || s.Buckets["0"] != 1 || s.Buckets["0.5"] != 1 || s.Buckets["2"] != 2 {
		t.Fatalf("histogram snapshot = %+v", s)
	}
}

// TestHubServesTenantLabels: a registry registered with an explicit label
// string is served with those labels verbatim, while plainly registered
// registries keep the default run label — the cluster's per-tenant export.
func TestHubServesTenantLabels(t *testing.T) {
	h := NewHub()
	cluster := New(0)
	cluster.Gauge("cluster_active_tenants", func() float64 { return 2 })
	cluster.Flush(0)
	h.Register("cluster", cluster)

	tenant := New(0)
	tenant.Gauge("engine_iterations", func() float64 { return 3 })
	tenant.Flush(0)
	h.RegisterLabeled("cluster/mix0-ca_lm", `run="cluster",tenant="mix0-ca_lm"`, tenant)

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	h.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()

	if !strings.Contains(body, `ca_engine_iterations{run="cluster",tenant="mix0-ca_lm"} 3`) {
		t.Errorf("tenant series lost its explicit labels:\n%s", body)
	}
	if !strings.Contains(body, `ca_cluster_active_tenants{run="cluster"} 2`) {
		t.Errorf("cluster series lost the default run label:\n%s", body)
	}
	if strings.Contains(body, `tenant="mix0-ca_lm",tenant=`) {
		t.Errorf("labels doubled:\n%s", body)
	}
}
