// Package metrics is the virtual-time telemetry layer: a registry of
// counters, gauges and histograms sampled on a configurable virtual-time
// cadence into in-memory time series.
//
// Where the execution trace (internal/tracing) records every *event*, the
// metrics registry records *state over time*: tier occupancy, achieved
// bandwidth, queue depths, decision counters — the continuously-sampled
// tier-level telemetry online-guidance systems drive their policies with,
// and the raw material for run-to-run regression comparison.
//
// The package follows the tracing layer's nil-safety discipline exactly:
// every method on a nil *Registry, *Counter or *Histogram is a no-op, so
// the simulator layers thread a registry unconditionally and an
// uninstrumented run pays one branch per hot path. The registry never
// advances the clock and never perturbs simulation state, so instrumented
// runs are byte-identical to uninstrumented ones.
//
// Samples are taken by the virtual clock: Clock.Advance calls Tick after
// every step, and the registry samples all series whenever the step
// crossed a sampling boundary. Because virtual time moves in discrete
// kernel/copy-sized steps, a sample is stamped with the first advance *at
// or after* its boundary — deterministic for a deterministic simulation,
// which is what makes two runs of the same configuration diff to zero.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// DefaultInterval is the sampling cadence in virtual seconds when the
// caller does not choose one: 10 ms of simulated time, a few hundred
// points per paper-scale iteration.
const DefaultInterval = 1e-2

// Kind distinguishes monotonically non-decreasing series (counters) from
// instantaneous ones (gauges). The kind shows up in the Prometheus TYPE
// line and tells the diff which statistics are meaningful.
type Kind string

const (
	KindCounter Kind = "counter"
	KindGauge   Kind = "gauge"
)

// column is one registered series: a name, a kind, a source closure and
// the samples taken so far.
type column struct {
	name    string
	kind    Kind
	fn      func() float64
	samples []float64
}

// Registry collects series and samples them on a virtual-time cadence.
// A nil Registry is valid and records nothing.
type Registry struct {
	// mu guards the sampled data (times, columns' samples, histogram
	// state) against the HTTP serving goroutine. The simulator itself is
	// single-goroutine: registration and sampling happen there.
	mu sync.Mutex

	interval float64
	next     float64
	meta     map[string]string

	times  []float64
	cols   []*column
	byName map[string]*column
	hists  []*Histogram
}

// New creates a registry sampling every interval virtual seconds.
// Non-positive intervals take DefaultInterval.
func New(interval float64) *Registry {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Registry{
		interval: interval,
		next:     interval,
		meta:     map[string]string{},
		byName:   map[string]*column{},
	}
}

// Enabled reports whether the registry records anything; callers guard
// optional work (never correctness) behind it.
func (r *Registry) Enabled() bool { return r != nil }

// Interval returns the sampling cadence in virtual seconds.
func (r *Registry) Interval() float64 {
	if r == nil {
		return 0
	}
	return r.interval
}

// SetMeta attaches a key/value annotation (model name, mode, run name)
// carried into the JSON summary.
func (r *Registry) SetMeta(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.meta[key] = value
	r.mu.Unlock()
}

// register adds a series, backfilling zeros so its sample vector stays
// aligned with series registered before any sampling happened.
func (r *Registry) register(name string, kind Kind, fn func() float64) *column {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate series %q", name))
	}
	c := &column{name: name, kind: kind, fn: fn, samples: make([]float64, len(r.times))}
	r.cols = append(r.cols, c)
	r.byName[name] = c
	return c
}

// Counter registers a registry-owned cumulative counter. On a nil
// registry it returns nil, whose Add/Inc are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	ctr := &Counter{}
	r.register(name, KindCounter, ctr.Value)
	return ctr
}

// CounterFunc registers a cumulative counter sourced from a closure — the
// usual shape for simulator layers that already keep their own stats
// structs. The closure is only called from the sampling path (the
// simulation goroutine).
func (r *Registry) CounterFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, KindCounter, fn)
}

// Gauge registers an instantaneous series sourced from a closure
// (occupancy, queue depth, evictable bytes).
func (r *Registry) Gauge(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, KindGauge, fn)
}

// Histogram registers a distribution series. Observations land in
// power-of-two buckets; the time series carries the histogram's running
// count and sum as two counter columns (<name>_count, <name>_sum), the
// summary and Prometheus export carry the full bucket set.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{name: name, min: math.Inf(1), max: math.Inf(-1)}
	r.register(name+"_count", KindCounter, func() float64 { return float64(h.snapshot().Count) })
	r.register(name+"_sum", KindCounter, func() float64 { return h.snapshot().Sum })
	r.mu.Lock()
	r.hists = append(r.hists, h)
	r.mu.Unlock()
	return h
}

// Tick is the clock hook: called after every virtual-time advance with the
// new time and the step size. It samples all series when the step crossed
// a sampling boundary, then arms the next boundary. The fast path (no
// crossing) is one nil check and one comparison.
func (r *Registry) Tick(now, dt float64) {
	if r == nil {
		return
	}
	if now < r.next {
		return
	}
	r.sample(now)
	for r.next <= now {
		r.next += r.interval
	}
}

// Rewind discards all samples and re-arms the first sampling boundary, so
// a registry attached to a clock that rewinds to zero behaves exactly like
// a freshly constructed one. Sample storage keeps its capacity: the next
// run's sampling is allocation-free up to the previous run's length.
// Clock.Reset calls this for any attached registry — without it, a reused
// clock would leave the registry's next-boundary armed at the old run's
// end and the new run would record no early samples.
func (r *Registry) Rewind() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next = r.interval
	r.times = r.times[:0]
	for _, c := range r.cols {
		c.samples = c.samples[:0]
	}
}

// Flush makes the series end with the run's final state at the given
// time. If a sample already exists at exactly that time (the last clock
// advance crossed a boundary) it is re-taken in place — state mutated
// after the advance (end-of-iteration counters) must still land in the
// final point. Runners call it once after the last iteration.
func (r *Registry) Flush(now float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	n := len(r.times)
	if n > 0 && r.times[n-1] == now {
		for _, c := range r.cols {
			c.samples[n-1] = c.fn()
		}
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	r.sample(now)
	for r.next <= now {
		r.next += r.interval
	}
}

// sampleChunk sizes the initial sample-buffer allocation: paper-scale
// runs take a few hundred points per iteration, so one up-front chunk
// absorbs most of the append-growth reallocations on the sampling path.
const sampleChunk = 512

// sample appends one point to every series at virtual time now.
func (r *Registry) sample(now float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cap(r.times) == 0 {
		r.times = make([]float64, 0, sampleChunk)
	}
	r.times = append(r.times, now)
	for _, c := range r.cols {
		if cap(c.samples) == 0 {
			c.samples = make([]float64, 0, sampleChunk)
		}
		c.samples = append(c.samples, c.fn())
	}
}

// Value reads the live value of a registered series by name: the source
// closure evaluated now, not the last sample. This is the read path
// online-guidance policies steer by — the same per-tier bytes, bandwidth
// utilization and decision counters the exports publish, consumed
// mid-run to drive re-placement. The closure runs on the caller's
// goroutine, which for policies is the simulation goroutine that owns
// the sampled state. Returns (0, false) for unknown series or a nil
// registry.
func (r *Registry) Value(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	c, ok := r.byName[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	return c.fn(), true
}

// Samples returns the number of sample points taken so far.
func (r *Registry) Samples() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.times)
}

// sortedCols returns the columns in name order (export order) — callers
// must hold mu.
func (r *Registry) sortedCols() []*column {
	cols := append([]*column(nil), r.cols...)
	sort.Slice(cols, func(i, j int) bool { return cols[i].name < cols[j].name })
	return cols
}

// Counter is a registry-owned cumulative value. All methods are nil-safe.
type Counter struct {
	v float64
}

// Add accumulates d into the counter.
func (c *Counter) Add(d float64) {
	if c == nil {
		return
	}
	c.v += d
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current cumulative value.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Histogram accumulates a distribution in power-of-two buckets: bucket
// exponent e counts observations v with 2^e <= v < 2^(e+1). All methods
// are nil-safe. The histogram carries its own small mutex so the HTTP
// goroutine can snapshot it while the simulation observes.
type Histogram struct {
	mu      sync.Mutex
	name    string
	count   int64
	sum     float64
	min     float64
	max     float64
	zero    int64 // observations <= 0 (kept out of the log2 buckets)
	buckets map[int]int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if v <= 0 {
		h.zero++
		return
	}
	e := int(math.Floor(math.Log2(v)))
	if h.buckets == nil {
		h.buckets = map[int]int64{}
	}
	h.buckets[e]++
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	// Buckets maps each power-of-two bucket's inclusive lower bound
	// (rendered with %g) to its observation count; "0" holds
	// non-positive observations.
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// snapshot copies the histogram state under its lock.
func (h *Histogram) snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum}
	if h.count > 0 {
		s.Min, s.Max = h.min, h.max
	}
	if h.zero > 0 || len(h.buckets) > 0 {
		s.Buckets = make(map[string]int64, len(h.buckets)+1)
		if h.zero > 0 {
			s.Buckets["0"] = h.zero
		}
		for e, n := range h.buckets {
			s.Buckets[fmt.Sprintf("%g", math.Pow(2, float64(e)))] = n
		}
	}
	return s
}
