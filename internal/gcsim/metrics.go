package gcsim

import "cachedarrays/internal/metrics"

// RegisterMetrics registers the collector's telemetry: the deferred-death
// backlog (objects and bytes awaiting collection — the writeback
// obligation the paper's M optimization exists to avoid) and cumulative
// collection counters including total pause time. A nil registry
// registers nothing.
func (c *Collector) RegisterMetrics(reg *metrics.Registry) {
	if !reg.Enabled() {
		return
	}
	reg.Gauge("gc_pending_objects", func() float64 { return float64(c.PendingObjects()) })
	reg.Gauge("gc_pending_bytes", func() float64 { return float64(c.PendingBytes()) })
	reg.CounterFunc("gc_collections", func() float64 { return float64(c.stats.Collections) })
	reg.CounterFunc("gc_objects_freed", func() float64 { return float64(c.stats.ObjectsFreed) })
	reg.CounterFunc("gc_bytes_reclaimed", func() float64 { return float64(c.stats.BytesReclaimed) })
	reg.CounterFunc("gc_pause_seconds", func() float64 { return c.stats.PauseTime })
}
