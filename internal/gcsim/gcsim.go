// Package gcsim models the language garbage collector the paper's Julia
// prototype falls back on when the eager-retire memory optimization (M) is
// disabled (§IV "Memory Optimizations").
//
// Without M, the application never tells the runtime an object is dead; it
// just drops its reference. The object's heap space — and, crucially, the
// writeback obligation attached to it — survives until a collection runs.
// The paper triggers collection when memory pressure is detected and after
// every training iteration. This package reproduces exactly that: a
// deferred-death list plus a Collect that destroys everything on it and
// charges a pause to the virtual clock.
package gcsim

import (
	"cachedarrays/internal/dm"
	"cachedarrays/internal/memsim"
	"cachedarrays/internal/tracing"
)

// Stats counts collector activity.
type Stats struct {
	Collections    int64
	ObjectsFreed   int64
	BytesReclaimed int64
	PauseTime      float64
}

// Collector tracks dead-but-uncollected objects.
type Collector struct {
	m     *dm.Manager
	clock *memsim.Clock
	dead  []*dm.Object
	stats Stats

	// PauseBase and PausePerObject model the stop-the-world cost of a
	// collection. The defaults are small: the paper's point is not GC
	// pause time but the *writeback traffic* of keeping dead data alive.
	PauseBase      float64
	PausePerObject float64

	// OnDestroy, when set, is called for each object just before the
	// collector destroys it. The policy uses this to drop the object
	// from its residency tracking.
	OnDestroy func(*dm.Object)

	tracer *tracing.Recorder
}

// SetTracer attaches (or detaches, with nil) an execution-trace recorder;
// every collection then appears as a GC span, including the mid-iteration
// collections the policy triggers under memory pressure.
func (c *Collector) SetTracer(tr *tracing.Recorder) { c.tracer = tr }

// New creates a collector over the manager, charging pauses to clock.
func New(m *dm.Manager, clock *memsim.Clock) *Collector {
	return &Collector{
		m:              m,
		clock:          clock,
		PauseBase:      1e-3,
		PausePerObject: 2e-7,
	}
}

// MarkDead records that the application dropped its last reference to o.
// The object's memory is NOT freed until Collect runs — this is the
// mechanism that turns semantically-dead intermediates into NVRAM
// writebacks in the Ø and L operating modes.
func (c *Collector) MarkDead(o *dm.Object) {
	c.dead = append(c.dead, o)
}

// PendingObjects returns how many dead objects await collection.
func (c *Collector) PendingObjects() int { return len(c.dead) }

// PendingBytes returns the heap bytes held by dead objects (per primary
// region; secondaries add more underneath).
func (c *Collector) PendingBytes() int64 {
	var n int64
	for _, o := range c.dead {
		n += o.Size()
	}
	return n
}

// Collect destroys every dead object, reclaiming its regions on all tiers,
// and advances the clock by the modelled pause. It returns the bytes
// reclaimed.
func (c *Collector) Collect() int64 {
	if len(c.dead) == 0 {
		return 0
	}
	var t0 float64
	if c.clock != nil {
		t0 = c.clock.Now()
	}
	var reclaimed, freed int64
	for _, o := range c.dead {
		if o.Retired() {
			continue
		}
		reclaimed += o.Size()
		if c.OnDestroy != nil {
			c.OnDestroy(o)
		}
		c.m.DestroyObject(o)
		c.stats.ObjectsFreed++
		freed++
	}
	pause := c.PauseBase + float64(len(c.dead))*c.PausePerObject
	if c.clock != nil {
		c.clock.Advance(pause)
	}
	c.stats.PauseTime += pause
	c.stats.Collections++
	c.stats.BytesReclaimed += reclaimed
	c.dead = c.dead[:0]
	if c.tracer.Enabled() && c.clock != nil {
		c.tracer.GC(t0, c.clock.Now(), freed, reclaimed)
	}
	return reclaimed
}

// Stats returns a snapshot of collector activity.
func (c *Collector) Stats() Stats { return c.stats }
