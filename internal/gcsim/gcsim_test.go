package gcsim

import (
	"testing"

	"cachedarrays/internal/dm"
	"cachedarrays/internal/memsim"
	"cachedarrays/internal/units"
)

func setup(t *testing.T) (*memsim.Platform, *dm.Manager, *Collector) {
	t.Helper()
	p := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: units.MB, SlowCapacity: units.MB, CopyThreads: 2,
	})
	m := dm.New(p)
	return p, m, New(m, p.Clock)
}

func TestCollectEmptyIsFree(t *testing.T) {
	p, _, c := setup(t)
	if got := c.Collect(); got != 0 {
		t.Fatalf("reclaimed %d from empty collector", got)
	}
	if p.Clock.Now() != 0 {
		t.Fatal("empty collection advanced clock")
	}
	if c.Stats().Collections != 0 {
		t.Fatal("empty collection counted")
	}
}

func TestMarkDeadDefersFree(t *testing.T) {
	p, m, c := setup(t)
	o, err := m.NewObject(1000, dm.Fast)
	if err != nil {
		t.Fatal(err)
	}
	c.MarkDead(o)
	if o.Retired() {
		t.Fatal("MarkDead destroyed the object")
	}
	if c.PendingObjects() != 1 || c.PendingBytes() != 1000 {
		t.Fatalf("pending: %d objects, %d bytes", c.PendingObjects(), c.PendingBytes())
	}
	if m.UsedBytes(dm.Fast) == 0 {
		t.Fatal("dead object's memory already freed")
	}
	before := p.Clock.Now()
	if got := c.Collect(); got != 1000 {
		t.Fatalf("reclaimed %d, want 1000", got)
	}
	if !o.Retired() || m.UsedBytes(dm.Fast) != 0 {
		t.Fatal("collection did not free the object")
	}
	if p.Clock.Now() <= before {
		t.Fatal("collection pause not charged to clock")
	}
	s := c.Stats()
	if s.Collections != 1 || s.ObjectsFreed != 1 || s.BytesReclaimed != 1000 || s.PauseTime <= 0 {
		t.Fatalf("stats: %+v", s)
	}
	if c.PendingObjects() != 0 {
		t.Fatal("dead list not drained")
	}
}

func TestCollectSkipsAlreadyRetired(t *testing.T) {
	_, m, c := setup(t)
	o, _ := m.NewObject(64, dm.Fast)
	c.MarkDead(o)
	m.DestroyObject(o) // someone else destroyed it first
	if got := c.Collect(); got != 0 {
		t.Fatalf("reclaimed %d from pre-retired object", got)
	}
	if c.Stats().ObjectsFreed != 0 {
		t.Fatal("counted a pre-retired object")
	}
}

func TestOnDestroyHookRuns(t *testing.T) {
	_, m, c := setup(t)
	o, _ := m.NewObject(64, dm.Fast)
	var hooked []*dm.Object
	c.OnDestroy = func(x *dm.Object) { hooked = append(hooked, x) }
	c.MarkDead(o)
	c.Collect()
	if len(hooked) != 1 || hooked[0] != o {
		t.Fatalf("hook calls: %v", hooked)
	}
}

func TestCollectFreesAllTiers(t *testing.T) {
	_, m, c := setup(t)
	o, _ := m.NewObject(256, dm.Fast)
	s, _ := m.Allocate(dm.Slow, 256)
	if err := m.Link(m.GetPrimary(o), s); err != nil {
		t.Fatal(err)
	}
	c.MarkDead(o)
	c.Collect()
	if m.UsedBytes(dm.Fast) != 0 || m.UsedBytes(dm.Slow) != 0 {
		t.Fatal("collection left regions behind")
	}
}
