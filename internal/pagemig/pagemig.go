// Package pagemig models OS-level page-based memory tiering — the
// Nimble/HeMem/Thermostat family of Table I ("Operating System / Page /
// Transparent / Virtual Memory"). It is the third data-management
// mechanism this repository compares: reactive, application-transparent
// migration of fixed-size pages based on observed hotness, with no
// knowledge of the application's future data use.
//
// The model: a flat virtual address space backed by NVRAM; a per-page
// access counter; and a periodic migration epoch that promotes the
// hottest slow pages into DRAM and demotes the coldest fast pages to make
// room, charging the migration traffic to the copy engine. Hotness decays
// each epoch so the migrator tracks phase changes — eventually. "Like
// hardware-based techniques, these works do not take into account future
// information about the data use" (paper §II), which is exactly what this
// baseline demonstrates against CachedArrays' hint-driven policy.
package pagemig

import (
	"fmt"
	"sort"

	"cachedarrays/internal/memsim"
)

// Config parameterizes the migrator.
type Config struct {
	// PageSize is the migration granularity. Default 2 MiB (the huge
	// pages tiering systems prefer; 4 KiB pages are supported but make
	// terabyte address spaces slow to simulate).
	PageSize int64
	// EpochKernels is the number of kernel launches between migration
	// epochs (the OS daemon's scan interval in kernel-time units).
	EpochKernels int
	// Decay multiplies every page's hotness at each epoch (0..1).
	Decay float64
	// PromoteMargin is how much hotter a slow page must be than the
	// fast page it would displace (hysteresis against thrashing).
	PromoteMargin float64
	// MaxMigrateBytes bounds the data moved per epoch (the daemon's
	// bandwidth budget). 0 = unlimited.
	MaxMigrateBytes int64
}

// DefaultConfig returns a HeMem-flavoured configuration.
func DefaultConfig() Config {
	return Config{
		PageSize:        2 << 20,
		EpochKernels:    25,
		Decay:           0.5,
		PromoteMargin:   1.25,
		MaxMigrateBytes: 16 << 30,
	}
}

// Stats counts migrator activity.
type Stats struct {
	Promotions    int64
	Demotions     int64
	PromotedBytes int64
	DemotedBytes  int64
	Epochs        int64
	MigrateTime   float64
}

// Migrator is the page-tiering engine over a flat address space.
type Migrator struct {
	cfg    Config
	fast   *memsim.Device
	slow   *memsim.Device
	copier *memsim.CopyEngine

	numPages  int64
	fastQuota int64 // pages that fit in DRAM
	inFast    []bool
	hot       []float64
	fastUsed  int64
	stats     Stats
}

// New builds a migrator whose address space spans the slow device.
func New(p *memsim.Platform, cfg Config) (*Migrator, error) {
	if cfg.PageSize <= 0 {
		return nil, fmt.Errorf("pagemig: invalid page size %d", cfg.PageSize)
	}
	numPages := (p.Slow.Capacity + cfg.PageSize - 1) / cfg.PageSize
	if numPages <= 0 {
		return nil, fmt.Errorf("pagemig: empty address space")
	}
	const maxPages = 64 << 20
	if numPages > maxPages {
		return nil, fmt.Errorf("pagemig: %d pages exceeds simulation limit (raise PageSize)", numPages)
	}
	return &Migrator{
		cfg:       cfg,
		fast:      p.Fast,
		slow:      p.Slow,
		copier:    p.Copier,
		numPages:  numPages,
		fastQuota: p.Fast.Capacity / cfg.PageSize,
		inFast:    make([]bool, numPages),
		hot:       make([]float64, numPages),
	}, nil
}

// Stats returns a snapshot of migrator activity.
func (m *Migrator) Stats() Stats { return m.stats }

// FastPages returns how many pages currently reside in DRAM.
func (m *Migrator) FastPages() int64 { return m.fastUsed }

// AccessResult reports how one access was served.
type AccessResult struct {
	Time      float64
	FastBytes int64
	SlowBytes int64
}

// Access runs [addr, addr+size) through the tiered address space: hotness
// counters bump, traffic is recorded on whichever device each page lives
// on, and the modelled service time is returned. access is the kernel's
// access shape.
func (m *Migrator) Access(addr, size int64, write bool, access memsim.Access) AccessResult {
	if size <= 0 {
		return AccessResult{}
	}
	if addr < 0 || addr+size > m.numPages*m.cfg.PageSize {
		panic(fmt.Sprintf("pagemig: access [%d,%d) out of range", addr, addr+size))
	}
	first := addr / m.cfg.PageSize
	last := (addr + size - 1) / m.cfg.PageSize
	var fastBytes, slowBytes int64
	for pg := first; pg <= last; pg++ {
		m.hot[pg]++
		lo := pg * m.cfg.PageSize
		hi := lo + m.cfg.PageSize
		if lo < addr {
			lo = addr
		}
		if hi > addr+size {
			hi = addr + size
		}
		if m.inFast[pg] {
			fastBytes += hi - lo
		} else {
			slowBytes += hi - lo
		}
	}
	var t float64
	if write {
		t += m.fast.Write(fastBytes, access)
		t += m.slow.Write(slowBytes, access)
	} else {
		t += m.fast.Read(fastBytes, access)
		t += m.slow.Read(slowBytes, access)
	}
	return AccessResult{Time: t, FastBytes: fastBytes, SlowBytes: slowBytes}
}

// Epoch runs one migration pass: the hottest slow pages displace the
// coldest fast pages (with hysteresis), hotness decays, and the modelled
// migration time is returned (the caller charges it to the clock — the
// paper's OS baselines pay this on the application's critical path via
// page faults and TLB shootdowns).
func (m *Migrator) Epoch() float64 {
	m.stats.Epochs++
	type cand struct {
		pg  int64
		hot float64
	}
	var slowHot, fastCold []cand
	for pg := int64(0); pg < m.numPages; pg++ {
		if m.hot[pg] > 0 && !m.inFast[pg] {
			slowHot = append(slowHot, cand{pg, m.hot[pg]})
		} else if m.inFast[pg] {
			fastCold = append(fastCold, cand{pg, m.hot[pg]})
		}
	}
	sort.Slice(slowHot, func(i, j int) bool { return slowHot[i].hot > slowHot[j].hot })
	sort.Slice(fastCold, func(i, j int) bool { return fastCold[i].hot < fastCold[j].hot })

	var elapsed float64
	var moved int64
	budget := m.cfg.MaxMigrateBytes
	ci := 0
	for _, s := range slowHot {
		if budget > 0 && moved >= budget {
			break
		}
		if m.fastUsed < m.fastQuota {
			// Free DRAM: promotion costs one page copy up.
			elapsed += m.copier.Copy(m.fast, 0, m.slow, s.pg*m.cfg.PageSize%m.slow.Capacity, m.cfg.PageSize)
			m.inFast[s.pg] = true
			m.fastUsed++
			m.stats.Promotions++
			m.stats.PromotedBytes += m.cfg.PageSize
			moved += m.cfg.PageSize
			continue
		}
		// Must displace the coldest fast page — only worth it with a
		// hotness margin.
		if ci >= len(fastCold) {
			break
		}
		victim := fastCold[ci]
		if s.hot < victim.hot*m.cfg.PromoteMargin+1 {
			break // remaining candidates are colder still
		}
		ci++
		// Demote victim (fast -> slow), promote candidate.
		elapsed += m.copier.Copy(m.slow, victim.pg*m.cfg.PageSize%m.slow.Capacity, m.fast, 0, m.cfg.PageSize)
		elapsed += m.copier.Copy(m.fast, 0, m.slow, s.pg*m.cfg.PageSize%m.slow.Capacity, m.cfg.PageSize)
		m.inFast[victim.pg] = false
		m.inFast[s.pg] = true
		m.stats.Demotions++
		m.stats.Promotions++
		m.stats.DemotedBytes += m.cfg.PageSize
		m.stats.PromotedBytes += m.cfg.PageSize
		moved += 2 * m.cfg.PageSize
	}
	for pg := range m.hot {
		m.hot[pg] *= m.cfg.Decay
	}
	m.stats.MigrateTime += elapsed
	return elapsed
}
