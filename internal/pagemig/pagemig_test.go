package pagemig

import (
	"testing"

	"cachedarrays/internal/memsim"
	"cachedarrays/internal/units"
)

func newMig(t *testing.T, fastCap, slowCap int64, cfg Config) (*Migrator, *memsim.Platform) {
	t.Helper()
	p := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: fastCap, SlowCapacity: slowCap, CopyThreads: 4,
	})
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, p
}

var testCfg = Config{PageSize: 4096, EpochKernels: 1, Decay: 0.5, PromoteMargin: 1.25}

var seqAccess = memsim.Access{Threads: 4, Granularity: 32 << 10}

func TestNewValidation(t *testing.T) {
	p := memsim.NewPlatform(memsim.PlatformConfig{FastCapacity: 1 << 20, SlowCapacity: 1 << 22})
	if _, err := New(p, Config{PageSize: 0}); err == nil {
		t.Error("zero page size accepted")
	}
	if _, err := New(p, Config{PageSize: 64}); err == nil {
		// 1 << 22 / 64 = 64K pages: fine. Use a huge space instead.
		t.Log("small pages accepted for small spaces (ok)")
	}
	big := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: 180 * units.GB, SlowCapacity: 1300 * units.GB,
	})
	if _, err := New(big, Config{PageSize: 4096}); err == nil {
		t.Error("terabyte space with 4 KiB pages accepted (too many pages)")
	}
	if _, err := New(big, DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestAccessStartsSlow(t *testing.T) {
	m, p := newMig(t, 64<<10, 1<<20, testCfg)
	r := m.Access(0, 8192, false, seqAccess)
	if r.SlowBytes != 8192 || r.FastBytes != 0 {
		t.Fatalf("fresh pages not slow: %+v", r)
	}
	if r.Time <= 0 {
		t.Fatal("access free")
	}
	if p.Slow.Counters().ReadBytes != 8192 {
		t.Fatal("traffic not recorded")
	}
}

func TestEpochPromotesHotPages(t *testing.T) {
	m, _ := newMig(t, 64<<10, 1<<20, testCfg)
	// Hammer two pages.
	for i := 0; i < 10; i++ {
		m.Access(0, 2*4096, false, seqAccess)
	}
	el := m.Epoch()
	if el <= 0 {
		t.Fatal("promotion epoch took no time")
	}
	if m.FastPages() != 2 {
		t.Fatalf("fast pages = %d, want 2", m.FastPages())
	}
	r := m.Access(0, 2*4096, false, seqAccess)
	if r.FastBytes != 2*4096 {
		t.Fatalf("promoted pages not served from fast: %+v", r)
	}
	s := m.Stats()
	if s.Promotions != 2 || s.Demotions != 0 || s.Epochs != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestEpochDemotesColdForHotter(t *testing.T) {
	// Fast fits exactly 2 pages.
	m, _ := newMig(t, 8192, 1<<20, testCfg)
	// Pages 0,1 hot -> promoted.
	for i := 0; i < 4; i++ {
		m.Access(0, 2*4096, false, seqAccess)
	}
	m.Epoch()
	if m.FastPages() != 2 {
		t.Fatalf("fast pages = %d", m.FastPages())
	}
	// Now pages 8,9 become much hotter; 0,1 go cold (decay).
	for e := 0; e < 4; e++ {
		for i := 0; i < 8; i++ {
			m.Access(8*4096, 2*4096, false, seqAccess)
		}
		m.Epoch()
	}
	r := m.Access(8*4096, 2*4096, false, seqAccess)
	if r.FastBytes != 2*4096 {
		t.Fatalf("hot pages not promoted after displacement: %+v", r)
	}
	if m.Stats().Demotions == 0 {
		t.Fatal("no demotions recorded")
	}
	if m.FastPages() != 2 {
		t.Fatalf("fast over quota: %d", m.FastPages())
	}
}

func TestHysteresisPreventsThrash(t *testing.T) {
	m, _ := newMig(t, 4096, 1<<20, testCfg)
	// Page 0 and page 5 equally warm: after 0 is resident, 5 must not
	// displace it (margin not met).
	for i := 0; i < 4; i++ {
		m.Access(0, 4096, false, seqAccess)
	}
	m.Epoch()
	for i := 0; i < 2; i++ { // equal post-decay warmth
		m.Access(0, 4096, false, seqAccess)
		m.Access(5*4096, 4096, false, seqAccess)
	}
	m.Epoch()
	if m.Stats().Demotions != 0 {
		t.Fatalf("equal-warmth page displaced a resident one: %+v", m.Stats())
	}
}

func TestMigrateBudgetBounds(t *testing.T) {
	cfg := testCfg
	cfg.MaxMigrateBytes = 4096 // one page per epoch
	m, _ := newMig(t, 64<<10, 1<<20, cfg)
	for i := 0; i < 4; i++ {
		m.Access(0, 8*4096, false, seqAccess)
	}
	m.Epoch()
	if got := m.Stats().PromotedBytes; got > 4096 {
		t.Fatalf("epoch moved %d bytes, budget 4096", got)
	}
}

func TestAccessSplitAcrossTiers(t *testing.T) {
	m, _ := newMig(t, 4096, 1<<20, testCfg)
	for i := 0; i < 4; i++ {
		m.Access(0, 4096, false, seqAccess)
	}
	m.Epoch() // page 0 -> fast
	r := m.Access(0, 8192, true, seqAccess)
	if r.FastBytes != 4096 || r.SlowBytes != 4096 {
		t.Fatalf("split wrong: %+v", r)
	}
}

func TestZeroAndOutOfRange(t *testing.T) {
	m, _ := newMig(t, 4096, 1<<20, testCfg)
	if r := m.Access(0, 0, false, seqAccess); r != (AccessResult{}) {
		t.Fatal("zero access did something")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access did not panic")
		}
	}()
	m.Access(1<<20-100, 4096, false, seqAccess)
}

func TestDecayForgetsHistory(t *testing.T) {
	m, _ := newMig(t, 4096, 1<<20, testCfg)
	for i := 0; i < 8; i++ {
		m.Access(0, 4096, false, seqAccess)
	}
	for e := 0; e < 20; e++ {
		m.Epoch()
	}
	// After heavy decay, a newly warm page displaces the old one.
	for i := 0; i < 3; i++ {
		m.Access(7*4096, 4096, false, seqAccess)
	}
	m.Epoch()
	r := m.Access(7*4096, 4096, false, seqAccess)
	if r.FastBytes != 4096 {
		t.Fatalf("decayed resident page not displaced: %+v", r)
	}
}
