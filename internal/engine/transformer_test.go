package engine

import (
	"testing"

	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
)

// TestTransformerGeneralizes runs the §VI generality claim: the same
// hints, policy and mechanism that tier CNN activations tier Transformer
// attention activations, with the same mode ordering.
func TestTransformerGeneralizes(t *testing.T) {
	cfg := models.DefaultTransformerConfig()
	cfg.BatchSize = 96 // footprint well above the 180 GB DRAM budget
	m := models.Transformer(cfg)

	run := Config{Iterations: 2, CheckInvariants: true}
	lm0, err := Run2LM(m, false, run)
	if err != nil {
		t.Fatal(err)
	}
	caLM, err := RunCA(m, policy.CALM, run)
	if err != nil {
		t.Fatal(err)
	}
	caL, err := RunCA(m, policy.CAL, run)
	if err != nil {
		t.Fatal(err)
	}
	if caLM.IterTime >= caL.IterTime {
		t.Errorf("transformer: CA:LM (%.1fs) not faster than CA:L (%.1fs)",
			caLM.IterTime, caL.IterTime)
	}
	speedup := lm0.IterTime / caLM.IterTime
	if speedup < 1.3 || speedup > 3 {
		t.Errorf("transformer: CA:LM speedup %.2fx outside the CNN-like band", speedup)
	}
	// Eager retire must slash NVRAM writes here too.
	if caLM.Slow.WriteBytes*2 > caL.Slow.WriteBytes {
		t.Errorf("transformer: eager retire did not reduce NVRAM writes (%d vs %d)",
			caLM.Slow.WriteBytes, caL.Slow.WriteBytes)
	}
}
