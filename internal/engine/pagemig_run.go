package engine

import (
	"fmt"

	"cachedarrays/internal/alloc"
	"cachedarrays/internal/memsim"
	"cachedarrays/internal/models"
	"cachedarrays/internal/pagemig"
	"cachedarrays/internal/trace"
)

// RunPageMig executes a training run under the OS page-tiering baseline
// (Table I's "Operating System" row — Nimble/HeMem-style): transparent,
// reactive migration of fixed-size pages by observed hotness, with no
// application hints. The application side gets the same best-case
// treatment as 2LM:M (eager frees, the CachedArrays allocator over a
// pre-allocated heap) so the comparison isolates the data-movement
// mechanism.
func RunPageMig(model *models.Model, pcfg pagemig.Config, cfg Config) (*Result, error) {
	st, err := newPageMigStepper(model, pcfg, cfg, nil)
	if err != nil {
		return nil, err
	}
	return Drive(st)
}

// pagemigStepper is the event-driven form of the OS page-tiering run.
type pagemigStepper struct {
	model   *models.Model
	pcfg    pagemig.Config
	cfg     Config
	p       *memsim.Platform
	release func()
	mig     *pagemig.Migrator
	sched   *trace.Schedule
	res     *Result
	rm      runMetrics
	heap    alloc.Allocator
	addrs   []int64

	// The migration daemon's epoch cadence spans iteration boundaries:
	// the counter deliberately persists across iterations.
	kernelsSinceEpoch int

	iter               int
	ki                 int
	inIter             bool
	it                 IterationMetrics
	iterStart          float64
	fastBase, slowBase memsim.Counters
	sampling           bool
	done               bool
	finished           bool
}

func newPageMigStepper(model *models.Model, pcfg pagemig.Config, cfg Config, env *Env) (*pagemigStepper, error) {
	cfg = cfg.withDefaults()
	if pcfg.PageSize == 0 {
		pcfg = pagemig.DefaultConfig()
	}
	p, release := env.acquire(cfg)
	mig, err := pagemig.New(p, pcfg)
	if err != nil {
		return nil, err
	}
	sched := trace.New(model)
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	s := &pagemigStepper{
		model: model, pcfg: pcfg, cfg: cfg, p: p, release: release,
		mig: mig, sched: sched,
		res: &Result{ModelName: model.Name, Mode: "OS:page", Config: cfg},
	}
	s.res.recordPeaks(p)

	s.heap = env.limitSlow(alloc.NewFreeList(p.Slow.Capacity, alloc.FirstFit))
	registerPlatformMetrics(cfg.Metrics, p)
	env.attachRegistry(cfg.Metrics, p)
	s.rm = newRunMetrics(cfg.Metrics)
	if cfg.Metrics.Enabled() {
		cfg.Metrics.Gauge("pagemig_heap_used_bytes", func() float64 { return float64(s.heap.Used()) })
	}
	s.addrs = make([]int64, len(model.Tensors))
	for _, id := range sched.Persistent {
		if err := s.allocate(id); err != nil {
			return nil, err
		}
	}
	if cfg.Iterations <= 0 {
		s.done = true
	}
	return s, nil
}

func (s *pagemigStepper) allocate(id int) error {
	a, err := s.heap.Alloc(s.model.Tensors[id].Bytes)
	if err != nil {
		return fmt.Errorf("engine: pagemig heap: allocating %s: %w", s.model.Tensors[id].Name, err)
	}
	s.addrs[id] = a
	return nil
}

func (s *pagemigStepper) Done() bool { return s.done }

func (s *pagemigStepper) Step() (float64, error) {
	if s.done {
		return s.p.Clock.Now(), fmt.Errorf("engine: step after run completed")
	}
	if !s.inIter {
		s.iterStart = s.p.Clock.Now()
		s.fastBase, s.slowBase = s.p.Fast.Counters(), s.p.Slow.Counters()
		s.it = IterationMetrics{}
		s.sampling = s.cfg.SampleHeap && s.iter == s.cfg.Iterations-1
		if s.sampling {
			s.res.HeapSamples = s.res.HeapSamples[:0]
		}
		s.inIter = true
	}
	if s.ki < len(s.model.Kernels) {
		if err := s.kernelStep(); err != nil {
			return s.p.Clock.Now(), err
		}
		s.ki++
		return s.p.Clock.Now(), nil
	}
	if err := s.endIter(); err != nil {
		return s.p.Clock.Now(), err
	}
	s.iter++
	s.ki = 0
	s.inIter = false
	if s.iter >= s.cfg.Iterations {
		s.done = true
	}
	return s.p.Clock.Now(), nil
}

func (s *pagemigStepper) kernelStep() error {
	p, model, ki := s.p, s.model, s.ki
	k := &model.Kernels[ki]
	for _, id := range s.sched.AllocBefore[ki] {
		if err := s.allocate(id); err != nil {
			return err
		}
	}
	var memTime float64
	rf := k.EffectiveReadFactor()
	for _, id := range k.Reads {
		r := s.mig.Access(s.addrs[id], model.Tensors[id].Bytes, false, kernelAccess)
		memTime += r.Time
		if !amplified(model.Tensors[id].Kind) || rf <= 1 {
			continue
		}
		// Kernel-internal re-reads stream from wherever the
		// pages live, in the observed fast/slow proportion.
		extra := rf - 1
		memTime += p.Fast.Read(int64(float64(r.FastBytes)*extra), kernelAccess)
		memTime += p.Slow.Read(int64(float64(r.SlowBytes)*extra), kernelAccess)
	}
	for _, id := range k.Writes {
		memTime += s.mig.Access(s.addrs[id], model.Tensors[id].Bytes, true, kernelAccess).Time
	}
	kt := k.FLOPs/p.Compute.PeakFlops + p.Compute.LaunchOverhead
	if memTime > kt {
		kt = memTime
	}
	p.Clock.Advance(kt)
	s.it.ComputeTime += kt
	s.rm.kernel(kt)

	// The OS daemon wakes periodically; its migrations land
	// on the application's critical path (page faults, TLB
	// shootdowns). The copier has already advanced the
	// clock; account the duration as movement stall.
	s.kernelsSinceEpoch++
	if s.kernelsSinceEpoch >= s.pcfg.EpochKernels {
		epoch := s.mig.Epoch()
		s.it.MoveTime += epoch
		s.rm.stall(epoch)
		s.kernelsSinceEpoch = 0
	}

	for _, id := range s.sched.RetireAfter[ki] {
		s.heap.Free(s.addrs[id]) // eager, best-case resource management
	}
	if s.heap.Used() > s.res.PeakHeap {
		s.res.PeakHeap = s.heap.Used()
	}
	if s.sampling {
		s.res.HeapSamples = append(s.res.HeapSamples,
			HeapSample{Time: p.Clock.Now() - s.iterStart, Used: s.heap.Used()})
	}
	return nil
}

func (s *pagemigStepper) endIter() error {
	p, iter := s.p, s.iter
	s.it.Time = p.Clock.Now() - s.iterStart
	s.rm.iter(s.it.Time)
	s.it.Fast = p.Fast.Counters().Sub(s.fastBase)
	s.it.Slow = p.Slow.Counters().Sub(s.slowBase)
	s.res.Iterations = append(s.res.Iterations, s.it)

	if s.cfg.CheckInvariants {
		if err := s.heap.CheckInvariants(); err != nil {
			return fmt.Errorf("engine: pagemig heap after iter %d: %w", iter, err)
		}
	}
	return nil
}

func (s *pagemigStepper) Finish() (*Result, error) {
	if !s.done {
		return nil, fmt.Errorf("engine: finish before run completed")
	}
	if s.finished {
		return nil, fmt.Errorf("engine: double finish")
	}
	s.finished = true
	finishMetrics(s.cfg.Metrics, s.model.Name, "OS:page", s.p.Clock.Now())
	s.release()
	s.res.aggregate()
	return s.res, nil
}
