package engine

import (
	"fmt"

	"cachedarrays/internal/alloc"
	"cachedarrays/internal/models"
	"cachedarrays/internal/pagemig"
	"cachedarrays/internal/trace"
)

// RunPageMig executes a training run under the OS page-tiering baseline
// (Table I's "Operating System" row — Nimble/HeMem-style): transparent,
// reactive migration of fixed-size pages by observed hotness, with no
// application hints. The application side gets the same best-case
// treatment as 2LM:M (eager frees, the CachedArrays allocator over a
// pre-allocated heap) so the comparison isolates the data-movement
// mechanism.
func RunPageMig(model *models.Model, pcfg pagemig.Config, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if pcfg.PageSize == 0 {
		pcfg = pagemig.DefaultConfig()
	}
	p, release := acquirePlatform(cfg)
	mig, err := pagemig.New(p, pcfg)
	if err != nil {
		return nil, err
	}
	sched := trace.New(model)
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	res := &Result{ModelName: model.Name, Mode: "OS:page", Config: cfg}
	res.recordPeaks(p)

	heap := alloc.NewFreeList(p.Slow.Capacity, alloc.FirstFit)
	wirePlatformMetrics(cfg.Metrics, p)
	rm := newRunMetrics(cfg.Metrics)
	if cfg.Metrics.Enabled() {
		cfg.Metrics.Gauge("pagemig_heap_used_bytes", func() float64 { return float64(heap.Used()) })
	}
	addrs := make([]int64, len(model.Tensors))
	allocate := func(id int) error {
		a, err := heap.Alloc(model.Tensors[id].Bytes)
		if err != nil {
			return fmt.Errorf("engine: pagemig heap: allocating %s: %w", model.Tensors[id].Name, err)
		}
		addrs[id] = a
		return nil
	}
	for _, id := range sched.Persistent {
		if err := allocate(id); err != nil {
			return nil, err
		}
	}

	kernelsSinceEpoch := 0
	for iter := 0; iter < cfg.Iterations; iter++ {
		iterStart := p.Clock.Now()
		fastBase, slowBase := p.Fast.Counters(), p.Slow.Counters()
		var it IterationMetrics
		sampling := cfg.SampleHeap && iter == cfg.Iterations-1
		if sampling {
			res.HeapSamples = res.HeapSamples[:0]
		}

		for ki := range model.Kernels {
			k := &model.Kernels[ki]
			for _, id := range sched.AllocBefore[ki] {
				if err := allocate(id); err != nil {
					return nil, err
				}
			}
			var memTime float64
			rf := k.EffectiveReadFactor()
			for _, id := range k.Reads {
				r := mig.Access(addrs[id], model.Tensors[id].Bytes, false, kernelAccess)
				memTime += r.Time
				if !amplified(model.Tensors[id].Kind) || rf <= 1 {
					continue
				}
				// Kernel-internal re-reads stream from wherever the
				// pages live, in the observed fast/slow proportion.
				extra := rf - 1
				memTime += p.Fast.Read(int64(float64(r.FastBytes)*extra), kernelAccess)
				memTime += p.Slow.Read(int64(float64(r.SlowBytes)*extra), kernelAccess)
			}
			for _, id := range k.Writes {
				memTime += mig.Access(addrs[id], model.Tensors[id].Bytes, true, kernelAccess).Time
			}
			kt := k.FLOPs/p.Compute.PeakFlops + p.Compute.LaunchOverhead
			if memTime > kt {
				kt = memTime
			}
			p.Clock.Advance(kt)
			it.ComputeTime += kt
			rm.kernel(kt)

			// The OS daemon wakes periodically; its migrations land
			// on the application's critical path (page faults, TLB
			// shootdowns). The copier has already advanced the
			// clock; account the duration as movement stall.
			kernelsSinceEpoch++
			if kernelsSinceEpoch >= pcfg.EpochKernels {
				epoch := mig.Epoch()
				it.MoveTime += epoch
				rm.stall(epoch)
				kernelsSinceEpoch = 0
			}

			for _, id := range sched.RetireAfter[ki] {
				heap.Free(addrs[id]) // eager, best-case resource management
			}
			if heap.Used() > res.PeakHeap {
				res.PeakHeap = heap.Used()
			}
			if sampling {
				res.HeapSamples = append(res.HeapSamples,
					HeapSample{Time: p.Clock.Now() - iterStart, Used: heap.Used()})
			}
		}

		it.Time = p.Clock.Now() - iterStart
		rm.iter(it.Time)
		it.Fast = p.Fast.Counters().Sub(fastBase)
		it.Slow = p.Slow.Counters().Sub(slowBase)
		res.Iterations = append(res.Iterations, it)

		if cfg.CheckInvariants {
			if err := heap.CheckInvariants(); err != nil {
				return nil, fmt.Errorf("engine: pagemig heap after iter %d: %w", iter, err)
			}
		}
	}
	finishMetrics(cfg.Metrics, model.Name, "OS:page", p.Clock.Now())
	release()
	res.aggregate()
	return res, nil
}
