package engine

import (
	"math"
	"testing"

	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/units"
)

// TestAsyncMatchesFig7Projection validates the paper's Fig. 7 projection
// by actually building the projected system: with an asynchronous mover
// (separate movement timeline, proactive eviction on archive, optimally
// paced writeback streams), measured iteration time lands on the
// "perfectly asynchronous data movement" line the paper only extrapolates.
func TestAsyncMatchesFig7Projection(t *testing.T) {
	m := models.DenseNet(264, 504)
	for _, budget := range []int64{60 * units.GB, 10 * units.GB} {
		sync, err := RunCA(m, policy.CALM, Config{Iterations: 2, FastCapacity: budget})
		if err != nil {
			t.Fatal(err)
		}
		async, err := RunCA(m, policy.CALM, Config{
			Iterations: 2, FastCapacity: budget,
			AsyncMovement: true, CheckInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if async.IterTime >= sync.IterTime {
			t.Errorf("budget %s: async (%.1fs) not faster than sync (%.1fs)",
				units.Bytes(budget), async.IterTime, sync.IterTime)
		}
		// Within 15% of the sync run's projection.
		if rel := math.Abs(async.IterTime-sync.ProjectedAsyncTime) / sync.ProjectedAsyncTime; rel > 0.15 {
			t.Errorf("budget %s: async measured %.1fs vs projection %.1fs (%.0f%% off)",
				units.Bytes(budget), async.IterTime, sync.ProjectedAsyncTime, 100*rel)
		}
	}
}

// TestAsyncFlatAcrossBudgets asserts the projected property directly:
// DenseNet's async iteration time varies only slightly with the DRAM
// budget (paper: "this projected performance varies only slightly as the
// DRAM budget decreases").
func TestAsyncFlatAcrossBudgets(t *testing.T) {
	m := models.DenseNet(264, 504)
	var times []float64
	for _, budget := range []int64{120 * units.GB, 60 * units.GB, 10 * units.GB} {
		r, err := RunCA(m, policy.CALM, Config{
			Iterations: 2, FastCapacity: budget, AsyncMovement: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, r.IterTime)
	}
	for i := 1; i < len(times); i++ {
		if rel := math.Abs(times[i]-times[0]) / times[0]; rel > 0.1 {
			t.Errorf("async time moved %.0f%% between budgets: %v", 100*rel, times)
		}
	}
}

// TestAsyncVGGStillDegrades asserts the paper's counterpoint: VGG's
// read-bound kernels keep it slower at low DRAM even with perfect
// asynchronous movement.
func TestAsyncVGGStillDegrades(t *testing.T) {
	m := models.VGG(116, 320)
	full, err := RunCA(m, policy.CALM, Config{Iterations: 2, FastCapacity: 180 * units.GB, AsyncMovement: true})
	if err != nil {
		t.Fatal(err)
	}
	low, err := RunCA(m, policy.CALM, Config{Iterations: 2, FastCapacity: 10 * units.GB, AsyncMovement: true})
	if err != nil {
		t.Fatal(err)
	}
	if low.IterTime < 1.05*full.IterTime {
		t.Errorf("VGG async at 10 GB (%.1fs) should remain slower than at 180 GB (%.1fs)",
			low.IterTime, full.IterTime)
	}
}

// TestAsyncDataDependenciesRespected verifies that a kernel whose argument
// is being moved waits for that move (the clock reflects the dependency)
// while unrelated background writebacks do not serialize with it.
func TestAsyncDataDependenciesRespected(t *testing.T) {
	m := models.MLP(4096, []int{4096, 4096}, 1000, 512)
	r, err := RunCA(m, policy.CALMP, Config{
		Iterations: 2, FastCapacity: 64 * units.MB, SlowCapacity: 8 * units.GB,
		AsyncMovement: true, HintLookahead: 2, CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.IterTime <= 0 || r.MoveTime < 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	// The virtual clock can never run ahead of physics: iteration time
	// must cover at least the compute.
	if r.IterTime < r.ComputeTime-1e-9 {
		t.Fatalf("iteration %.3fs shorter than kernel time %.3fs", r.IterTime, r.ComputeTime)
	}
}

// TestWriteThreadCap checks the §V-d scheduling fix the async mover uses:
// capping write streams restores peak NVRAM write bandwidth.
func TestWriteThreadCap(t *testing.T) {
	p, _ := acquirePlatform(Config{AsyncMovement: true}.withDefaults())
	if p.Copier.WriteThreadCap != p.Slow.Profile.WritePeakThreads {
		t.Fatalf("async copier cap = %d, want %d",
			p.Copier.WriteThreadCap, p.Slow.Profile.WritePeakThreads)
	}
	capped := p.Copier.CopyTime(p.Slow, p.Fast, units.GB)
	uncappedP, _ := acquirePlatform(Config{}.withDefaults())
	uncapped := uncappedP.Copier.CopyTime(p.Slow, p.Fast, units.GB)
	if capped >= uncapped {
		t.Errorf("capped copy (%.4fs) not faster than uncapped (%.4fs)", capped, uncapped)
	}
}
