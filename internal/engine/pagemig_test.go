package engine

import (
	"testing"

	"cachedarrays/internal/models"
	"cachedarrays/internal/pagemig"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/units"
)

// TestPageMigBaselineOrdering places the OS page-tiering baseline where
// the paper's related-work discussion predicts: better than the
// unmanaged hardware cache (it avoids some conflict-miss churn and moves
// pages at decent granularity), but behind CachedArrays (it reacts to
// history instead of exploiting future-use hints).
func TestPageMigBaselineOrdering(t *testing.T) {
	m := resnetLarge
	cfg := Config{Iterations: 2}
	os, err := RunPageMig(m, pagemig.Config{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lm0 := run2LMT(t, m, false, checked)
	ca := runCAT(t, m, policy.CALM, checked)
	if os.IterTime >= lm0.IterTime {
		t.Errorf("OS paging (%.1fs) should beat 2LM:0 (%.1fs)", os.IterTime, lm0.IterTime)
	}
	if os.IterTime <= ca.IterTime {
		t.Errorf("CachedArrays (%.1fs) should beat OS paging (%.1fs)", ca.IterTime, os.IterTime)
	}
	if os.Mode != "OS:page" {
		t.Errorf("mode = %q", os.Mode)
	}
	// The daemon must actually have migrated something.
	if os.MoveTime <= 0 {
		t.Error("no migration time recorded")
	}
}

// TestPageMigInvariants runs the baseline with state checking on a small
// model.
func TestPageMigInvariants(t *testing.T) {
	m := models.ResNet(50, 256)
	r, err := RunPageMig(m, pagemig.Config{
		PageSize: 2 << 20, EpochKernels: 10, Decay: 0.5, PromoteMargin: 1.25,
	}, Config{Iterations: 3, CheckInvariants: true,
		FastCapacity: 8 * units.GB, SlowCapacity: 128 * units.GB})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Iterations) != 3 {
		t.Fatalf("iterations = %d", len(r.Iterations))
	}
	if r.Fast.TotalBytes() == 0 {
		t.Error("page tiering never promoted anything into DRAM")
	}
}

// TestPageMigErrors exercises failure paths.
func TestPageMigErrors(t *testing.T) {
	m := models.MLP(1024, []int{4096}, 10, 64)
	if _, err := RunPageMig(m, pagemig.Config{}, Config{
		Iterations: 1, FastCapacity: units.MB, SlowCapacity: units.MB,
	}); err == nil {
		t.Error("over-capacity page-tiering run succeeded")
	}
	if _, err := RunPageMig(m, pagemig.Config{PageSize: -1}, Config{Iterations: 1}); err == nil {
		t.Error("negative page size accepted")
	}
}
