package engine

import (
	"fmt"
	"math"
	"testing"

	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/twolm"
	"cachedarrays/internal/units"
)

// Most tests run the paper's actual workloads at paper scale — the engine
// is a virtual-time simulator, so a 500 GB-footprint run takes well under a
// second of host time. Shared results are cached across tests.

var (
	resultCache = map[string]*Result{}
)

func runCAT(t *testing.T, m *models.Model, mode policy.Mode, cfg Config) *Result {
	t.Helper()
	key := fmt.Sprintf("ca/%s/%d/%v/%d", m.Name, m.BatchSize, mode, cfg.FastCapacity)
	if r, ok := resultCache[key]; ok {
		return r
	}
	r, err := RunCA(m, mode, cfg)
	if err != nil {
		t.Fatalf("RunCA(%s, %v): %v", m.Name, mode, err)
	}
	resultCache[key] = r
	return r
}

func run2LMT(t *testing.T, m *models.Model, memOpt bool, cfg Config) *Result {
	t.Helper()
	key := fmt.Sprintf("2lm/%s/%d/%v", m.Name, m.BatchSize, memOpt)
	if r, ok := resultCache[key]; ok {
		return r
	}
	r, err := Run2LM(m, memOpt, cfg)
	if err != nil {
		t.Fatalf("Run2LM(%s, %v): %v", m.Name, memOpt, err)
	}
	resultCache[key] = r
	return r
}

var (
	denseLarge  = models.DenseNet(264, 1536)
	resnetLarge = models.ResNet(200, 2048)
	vggLarge    = models.VGG(416, 256)
	denseSmall  = models.DenseNet(264, 504)
)

var checked = Config{Iterations: 2, CheckInvariants: true}

func TestRunCAInvariantsAllModes(t *testing.T) {
	m := models.ResNet(50, 128)
	for _, mode := range policy.Modes {
		if _, err := RunCA(m, mode, Config{Iterations: 3, CheckInvariants: true,
			FastCapacity: 4 * units.GB, SlowCapacity: 64 * units.GB}); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

func TestRun2LMInvariants(t *testing.T) {
	m := models.ResNet(50, 128)
	for _, memOpt := range []bool{false, true} {
		if _, err := Run2LM(m, memOpt, Config{Iterations: 3, CheckInvariants: true,
			FastCapacity: 4 * units.GB, SlowCapacity: 64 * units.GB}); err != nil {
			t.Errorf("memOpt=%v: %v", memOpt, err)
		}
	}
}

// TestFig2CachedArraysBeats2LM asserts the paper's headline: CachedArrays
// (best configuration) outperforms the unoptimized hardware cache by
// 1.4x-2.03x on the large networks. Our simulator lands 1.2x-2.2x.
func TestFig2CachedArraysBeats2LM(t *testing.T) {
	for _, m := range []*models.Model{denseLarge, resnetLarge, vggLarge} {
		base := run2LMT(t, m, false, checked)
		best := math.Inf(1)
		for _, mode := range policy.Modes {
			if r := runCAT(t, m, mode, checked); r.IterTime < best {
				best = r.IterTime
			}
		}
		speedup := base.IterTime / best
		if speedup < 1.2 {
			t.Errorf("%s: CachedArrays speedup %.2fx below paper band", m.Name, speedup)
		}
		if speedup > 2.75 {
			t.Errorf("%s: CachedArrays speedup %.2fx implausibly above paper band", m.Name, speedup)
		}
	}
}

// TestFig2OptimizationOrdering asserts the within-CachedArrays ordering of
// Fig. 2: L improves on 0, and LM improves on L, for every large network.
func TestFig2OptimizationOrdering(t *testing.T) {
	for _, m := range []*models.Model{denseLarge, resnetLarge, vggLarge} {
		r0 := runCAT(t, m, policy.CAZero, checked)
		rl := runCAT(t, m, policy.CAL, checked)
		rlm := runCAT(t, m, policy.CALM, checked)
		if rl.IterTime >= r0.IterTime {
			t.Errorf("%s: CA:L (%.1fs) not faster than CA:0 (%.1fs)", m.Name, rl.IterTime, r0.IterTime)
		}
		if rlm.IterTime >= rl.IterTime {
			t.Errorf("%s: CA:LM (%.1fs) not faster than CA:L (%.1fs)", m.Name, rlm.IterTime, rl.IterTime)
		}
	}
}

// TestFig2PrefetchingSplit asserts the paper's "no one size fits all"
// finding: prefetching hurts DenseNet and ResNet but helps VGG.
func TestFig2PrefetchingSplit(t *testing.T) {
	for _, m := range []*models.Model{denseLarge, resnetLarge} {
		lm := runCAT(t, m, policy.CALM, checked)
		lmp := runCAT(t, m, policy.CALMP, checked)
		if lmp.IterTime <= lm.IterTime {
			t.Errorf("%s: prefetching should hurt (LM %.1fs, LMP %.1fs)",
				m.Name, lm.IterTime, lmp.IterTime)
		}
	}
	lm := runCAT(t, vggLarge, policy.CALM, checked)
	lmp := runCAT(t, vggLarge, policy.CALMP, checked)
	if lmp.IterTime >= lm.IterTime {
		t.Errorf("vgg416: prefetching should help (LM %.1fs, LMP %.1fs)", lm.IterTime, lmp.IterTime)
	}
}

// TestFig2MemOptHelps2LM asserts that the eager-freeing optimization
// improves the hardware cache too — the paper's "semantic information
// improves 2LM" finding.
func TestFig2MemOptHelps2LM(t *testing.T) {
	for _, m := range []*models.Model{denseLarge, resnetLarge, vggLarge} {
		r0 := run2LMT(t, m, false, checked)
		rm := run2LMT(t, m, true, checked)
		if rm.IterTime >= r0.IterTime {
			t.Errorf("%s: 2LM:M (%.1fs) not faster than 2LM:0 (%.1fs)", m.Name, rm.IterTime, r0.IterTime)
		}
	}
}

// TestFig4CacheTagStats asserts the ResNet cache-statistics deltas: the
// annotated run has a substantially higher hit rate (paper: +18%) and a
// roughly halved dirty-miss rate.
func TestFig4CacheTagStats(t *testing.T) {
	r0 := run2LMT(t, resnetLarge, false, checked)
	rm := run2LMT(t, resnetLarge, true, checked)
	if rm.Cache.HitRate() < r0.Cache.HitRate()+0.10 {
		t.Errorf("hit rate: 2LM:0 %.3f vs 2LM:M %.3f — want >= +0.10",
			r0.Cache.HitRate(), rm.Cache.HitRate())
	}
	if rm.Cache.DirtyMissRate() > 0.75*r0.Cache.DirtyMissRate() {
		t.Errorf("dirty miss rate: 2LM:0 %.3f vs 2LM:M %.3f — want ~50%% lower",
			r0.Cache.DirtyMissRate(), rm.Cache.DirtyMissRate())
	}
}

// TestFig5MemoryOptimizationSlashesNVRAMWrites asserts the DenseNet
// finding: applying M drops NVRAM writes by roughly 3x (paper: ~1100 GB ->
// ~350 GB), flipping the write/read balance.
func TestFig5MemoryOptimizationSlashesNVRAMWrites(t *testing.T) {
	rl := runCAT(t, denseLarge, policy.CAL, checked)
	rlm := runCAT(t, denseLarge, policy.CALM, checked)
	if ratio := float64(rl.Slow.WriteBytes) / float64(rlm.Slow.WriteBytes); ratio < 2 {
		t.Errorf("NVRAM write reduction %.2fx, want >= 2x (L: %s, LM: %s)",
			ratio, units.Bytes(rl.Slow.WriteBytes), units.Bytes(rlm.Slow.WriteBytes))
	}
	// With M, NVRAM reads exceed NVRAM writes (paper Fig. 5a).
	if rlm.Slow.ReadBytes <= rlm.Slow.WriteBytes {
		t.Errorf("CA:LM NVRAM reads (%s) should exceed writes (%s)",
			units.Bytes(rlm.Slow.ReadBytes), units.Bytes(rlm.Slow.WriteBytes))
	}
}

// TestFig5PrefetchShiftsReadTraffic asserts that prefetching moves read
// traffic from NVRAM to DRAM, with VGG's NVRAM reads dropping by a large
// factor (paper: 5.4x).
func TestFig5PrefetchShiftsReadTraffic(t *testing.T) {
	lm := runCAT(t, vggLarge, policy.CALM, checked)
	lmp := runCAT(t, vggLarge, policy.CALMP, checked)
	if ratio := float64(lm.Slow.ReadBytes) / float64(lmp.Slow.ReadBytes); ratio < 3 {
		t.Errorf("VGG NVRAM read reduction %.2fx, want >= 3x", ratio)
	}
	if lmp.Fast.ReadBytes <= lm.Fast.ReadBytes {
		t.Error("prefetching should increase DRAM reads")
	}
}

// TestFig6BusUtilization asserts the utilization cross-over: CA:0 has
// higher DRAM bus utilization than 2LM:0 for ResNet (large transfers) and
// lower for VGG (small batch, small transfers), and utilization rises as
// optimizations are applied.
func TestFig6BusUtilization(t *testing.T) {
	caRes := runCAT(t, resnetLarge, policy.CAZero, checked)
	lmRes := run2LMT(t, resnetLarge, false, checked)
	if caRes.FastBusUtil <= lmRes.FastBusUtil {
		t.Errorf("ResNet: CA:0 util %.3f should exceed 2LM:0 util %.3f",
			caRes.FastBusUtil, lmRes.FastBusUtil)
	}
	caVGG := runCAT(t, vggLarge, policy.CAZero, checked)
	lmVGG := run2LMT(t, vggLarge, false, checked)
	if caVGG.FastBusUtil >= lmVGG.FastBusUtil {
		t.Errorf("VGG: CA:0 util %.3f should be below 2LM:0 util %.3f",
			caVGG.FastBusUtil, lmVGG.FastBusUtil)
	}
	// Fully-optimized CachedArrays achieves higher utilization than the
	// unoptimized configuration while the memory-optimized modes move
	// less total traffic (paper: utilization tends to rise and traffic
	// tends to fall as optimizations apply).
	caLMP := runCAT(t, resnetLarge, policy.CALMP, checked)
	if caLMP.FastBusUtil <= caRes.FastBusUtil {
		t.Errorf("ResNet: CA:LMP util %.3f should exceed CA:0 util %.3f",
			caLMP.FastBusUtil, caRes.FastBusUtil)
	}
	caLM := runCAT(t, resnetLarge, policy.CALM, checked)
	if caLM.Fast.TotalBytes() >= caRes.Fast.TotalBytes() {
		t.Error("ResNet: CA:LM should move less DRAM traffic than CA:0")
	}
}

// TestFig7DRAMSensitivity asserts the sweep shape: NVRAM-only is 3x-7x
// slower; a modest DRAM budget recovers most of the loss; and the
// async-projected time stays nearly flat for DenseNet.
func TestFig7DRAMSensitivity(t *testing.T) {
	full := runCAT(t, denseSmall, policy.CALM, Config{Iterations: 2, FastCapacity: 180 * units.GB})
	half := runCAT(t, denseSmall, policy.CALM, Config{Iterations: 2, FastCapacity: 60 * units.GB})
	none := runCAT(t, denseSmall, policy.CALM, Config{Iterations: 2, FastCapacity: NVRAMOnly})

	penalty := none.IterTime / full.IterTime
	if penalty < 3 || penalty > 7 {
		t.Errorf("NVRAM-only penalty %.2fx outside the 3-7x band (paper: 3-4x)", penalty)
	}
	if half.IterTime >= none.IterTime {
		t.Error("60 GB of DRAM did not recover performance")
	}
	recovered := (none.IterTime - half.IterTime) / (none.IterTime - full.IterTime)
	if recovered < 0.5 {
		t.Errorf("60 GB DRAM recovered only %.0f%% of the NVRAM-only loss", 100*recovered)
	}
	// Async projection nearly flat (paper: "varies only slightly").
	if full.ProjectedAsyncTime <= 0 || half.ProjectedAsyncTime <= 0 {
		t.Fatal("async projections not positive")
	}
	if rel := math.Abs(half.ProjectedAsyncTime-full.ProjectedAsyncTime) / full.ProjectedAsyncTime; rel > 0.15 {
		t.Errorf("async projection moved %.0f%% between budgets, want < 15%%", 100*rel)
	}
}

// TestSmallModelsFitInDRAM asserts the Table III small-network premise:
// under CA:LM with the full budget, training generates no NVRAM traffic.
func TestSmallModelsFitInDRAM(t *testing.T) {
	for _, pm := range models.PaperSmallModels() {
		m := pm.Build()
		r := runCAT(t, m, policy.CALM, Config{Iterations: 2})
		if r.Slow.TotalBytes() != 0 {
			t.Errorf("%s: NVRAM traffic %s on a DRAM-fitting model",
				pm.Name, units.Bytes(r.Slow.TotalBytes()))
		}
	}
}

// TestFig3HeapOccupancyShapes asserts the Fig. 3 curves: without memory
// optimizations the 2LM heap grows to a much higher peak than with them,
// and the M curve turns downward during the backward pass.
func TestFig3HeapOccupancyShapes(t *testing.T) {
	cfg := Config{Iterations: 2, SampleHeap: true}
	r0, err := Run2LM(resnetLarge, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Run2LM(resnetLarge, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r0.HeapSamples) == 0 || len(rm.HeapSamples) == 0 {
		t.Fatal("no heap samples recorded")
	}
	if float64(r0.PeakHeap) < 1.8*float64(rm.PeakHeap) {
		t.Errorf("2LM:0 peak heap %s should dwarf 2LM:M peak %s",
			units.Bytes(r0.PeakHeap), units.Bytes(rm.PeakHeap))
	}
	// 2LM:M ends its iteration well below its own peak (freed on the
	// backward pass), while 2LM:0 stays near its peak until the final
	// collection.
	lastM := rm.HeapSamples[len(rm.HeapSamples)-1].Used
	if lastM > rm.PeakHeap/2 {
		t.Errorf("2LM:M final occupancy %s not well below peak %s",
			units.Bytes(lastM), units.Bytes(rm.PeakHeap))
	}
}

// TestIterationConsistency mirrors the paper's methodology check: behavior
// across measured iterations must be consistent.
func TestIterationConsistency(t *testing.T) {
	r, err := RunCA(denseSmall, policy.CALM, Config{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Iterations) != 4 {
		t.Fatalf("recorded %d iterations", len(r.Iterations))
	}
	base := r.Iterations[1].Time
	for i := 2; i < 4; i++ {
		if rel := math.Abs(r.Iterations[i].Time-base) / base; rel > 0.05 {
			t.Errorf("iteration %d time deviates %.1f%% from iteration 1", i, 100*rel)
		}
	}
}

// TestAggregateSkipsWarmup verifies the averaging convention.
func TestAggregateSkipsWarmup(t *testing.T) {
	r := &Result{Iterations: []IterationMetrics{
		{Time: 100, ComputeTime: 80, MoveTime: 20},
		{Time: 10, ComputeTime: 8, MoveTime: 2},
		{Time: 12, ComputeTime: 10, MoveTime: 2},
	}}
	r.aggregate()
	if r.IterTime != 11 {
		t.Errorf("IterTime = %v, want 11 (warm-up skipped)", r.IterTime)
	}
	if r.ProjectedAsyncTime != 9 {
		t.Errorf("ProjectedAsyncTime = %v, want 9", r.ProjectedAsyncTime)
	}
}

// TestTrafficConservation checks accounting consistency: every byte the
// data manager reports moving appears in the device counters.
func TestTrafficConservation(t *testing.T) {
	r := runCAT(t, denseSmall, policy.CAL, Config{Iterations: 2, FastCapacity: 60 * units.GB})
	// NVRAM writes come only from evictions (fast->slow copies); with
	// the copy engine the byte counts must match up to kernel writes,
	// which CA:L never sends to NVRAM-resident objects... except when
	// fast memory is too tight. At minimum, NVRAM writes >= dm's
	// fast->slow bytes per iteration is not directly comparable after
	// averaging, so check the full-run numbers instead.
	var nvW int64
	for _, it := range r.Iterations {
		nvW += it.Slow.WriteBytes
	}
	if nvW == 0 {
		t.Fatal("expected NVRAM writes under a 60 GB budget")
	}
	if r.DM.BytesFastToSlow == 0 {
		t.Fatal("dm recorded no fast->slow movement")
	}
}

// TestConfigErrors exercises failure paths.
func TestConfigErrors(t *testing.T) {
	tiny := Config{Iterations: 1, FastCapacity: units.MB, SlowCapacity: units.MB}
	if _, err := RunCA(models.MLP(1024, []int{4096}, 10, 64), policy.CALM, tiny); err == nil {
		t.Error("over-capacity CA run succeeded")
	}
	if _, err := Run2LM(models.MLP(1024, []int{4096}, 10, 64), true, tiny); err == nil {
		t.Error("over-capacity 2LM run succeeded")
	}
	bad := Config{Iterations: 1, TwoLM: twolm.Config{LineSize: -5}}
	if _, err := Run2LM(models.MLP(16, []int{8}, 2, 4), true, bad); err == nil {
		t.Error("bad 2LM config accepted")
	}
}
