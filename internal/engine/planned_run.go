package engine

import (
	"fmt"

	"cachedarrays/internal/dm"
	"cachedarrays/internal/memsim"
	"cachedarrays/internal/models"
	"cachedarrays/internal/planner"
	"cachedarrays/internal/trace"
)

// RunPlanned executes a training run under a static, ahead-of-time plan
// (the AutoTM-style "Compiler" row of Table I): every tensor's residency
// was decided offline; the runtime just executes the placements and the
// planned offload/restore copies. No hints, no adaptive policy.
//
// If the plan is nil, one is built from the model and the DRAM budget.
func RunPlanned(model *models.Model, plan *planner.Plan, cfg Config) (*Result, error) {
	st, err := newPlannedStepper(model, plan, cfg, nil)
	if err != nil {
		return nil, err
	}
	return Drive(st)
}

// plannedStepper is the event-driven form of the AutoTM-style planned run.
type plannedStepper struct {
	model   *models.Model
	plan    *planner.Plan
	cfg     Config
	p       *memsim.Platform
	release func()
	m       *dm.Manager
	sched   *trace.Schedule
	res     *Result
	rm      runMetrics
	objs    []*dm.Object

	// Planned offload and restore points indexed by kernel.
	offloadAt [][]int
	restoreAt [][]int

	iter               int
	ki                 int
	inIter             bool
	it                 IterationMetrics
	iterStart          float64
	fastBase, slowBase memsim.Counters
	done               bool
	finished           bool
}

func newPlannedStepper(model *models.Model, plan *planner.Plan, cfg Config, env *Env) (*plannedStepper, error) {
	cfg = cfg.withDefaults()
	p, release := env.acquire(cfg)
	m, err := newManager(p, cfg, env)
	if err != nil {
		return nil, err
	}
	if plan == nil {
		// Reserve a little headroom for allocator alignment slack.
		budget := resolveCapacity(cfg.FastCapacity, p.Fast.Capacity) * 97 / 100
		plan = planner.Build(model, budget, planner.DefaultCostModel())
	}
	if len(plan.Placement) != len(model.Tensors) {
		return nil, fmt.Errorf("engine: plan covers %d tensors, model has %d",
			len(plan.Placement), len(model.Tensors))
	}
	sched := trace.New(model)
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	s := &plannedStepper{
		model: model, plan: plan, cfg: cfg, p: p, release: release,
		m: m, sched: sched,
		res: &Result{ModelName: model.Name, Mode: "AutoTM:plan", Config: cfg},
	}
	s.res.recordPeaks(p)
	registerPlatformMetrics(cfg.Metrics, p)
	env.attachRegistry(cfg.Metrics, p)
	m.RegisterMetrics(cfg.Metrics)
	s.rm = newRunMetrics(cfg.Metrics)
	s.objs = make([]*dm.Object, len(model.Tensors))

	s.offloadAt = make([][]int, len(model.Kernels))
	s.restoreAt = make([][]int, len(model.Kernels))
	for id, pl := range plan.Placement {
		if pl == planner.Offload {
			s.offloadAt[plan.OffloadAfter[id]] = append(s.offloadAt[plan.OffloadAfter[id]], id)
			s.restoreAt[plan.RestoreBefore[id]] = append(s.restoreAt[plan.RestoreBefore[id]], id)
		}
	}

	for _, id := range sched.Persistent {
		if err := s.allocate(id); err != nil {
			return nil, err
		}
	}
	if cfg.Iterations <= 0 {
		s.done = true
	}
	return s, nil
}

// allocate places a tensor on its planned tier, falling back to slow
// memory if fragmentation defeats the plan (counted as a fetch
// failure — a real static system would crash or re-plan here).
func (s *plannedStepper) allocate(id int) error {
	class := dm.Slow
	if s.plan.Placement[id] != planner.SlowAlways {
		class = dm.Fast
	}
	o, err := s.m.NewObject(s.model.Tensors[id].Bytes, class)
	if err == dm.ErrExhausted && class == dm.Fast {
		s.res.Policy.FetchFailures++
		o, err = s.m.NewObject(s.model.Tensors[id].Bytes, dm.Slow)
	}
	if err != nil {
		return fmt.Errorf("engine: planned allocation of %s: %w", s.model.Tensors[id].Name, err)
	}
	s.objs[id] = o
	return nil
}

// park moves an offloaded tensor's primary to slow memory (the
// planned synchronous eviction copy).
func (s *plannedStepper) park(o *dm.Object) error {
	m := s.m
	x := m.GetPrimary(o)
	if !m.In(x, dm.Fast) {
		return nil
	}
	y, err := m.Allocate(dm.Slow, o.Size())
	if err != nil {
		return err
	}
	m.CopyTo(y, x)
	if err := m.SetPrimary(o, y); err != nil {
		return err
	}
	m.Free(x)
	return nil
}

// restore brings it back (the planned prefetch copy).
func (s *plannedStepper) restore(o *dm.Object) error {
	m := s.m
	x := m.GetPrimary(o)
	if !m.In(x, dm.Slow) {
		return nil
	}
	y, err := m.Allocate(dm.Fast, o.Size())
	if err != nil {
		s.res.Policy.FetchFailures++
		return nil // plan defeated by fragmentation; read in place
	}
	m.CopyTo(y, x)
	if err := m.SetPrimary(o, y); err != nil {
		return err
	}
	m.Free(x)
	return nil
}

func (s *plannedStepper) Done() bool { return s.done }

func (s *plannedStepper) Step() (float64, error) {
	if s.done {
		return s.p.Clock.Now(), fmt.Errorf("engine: step after run completed")
	}
	if !s.inIter {
		s.iterStart = s.p.Clock.Now()
		s.fastBase, s.slowBase = s.p.Fast.Counters(), s.p.Slow.Counters()
		s.it = IterationMetrics{}
		s.inIter = true
	}
	if s.ki < len(s.model.Kernels) {
		if err := s.kernelStep(); err != nil {
			return s.p.Clock.Now(), err
		}
		s.ki++
		return s.p.Clock.Now(), nil
	}
	if err := s.endIter(); err != nil {
		return s.p.Clock.Now(), err
	}
	s.iter++
	s.ki = 0
	s.inIter = false
	if s.iter >= s.cfg.Iterations {
		s.done = true
	}
	return s.p.Clock.Now(), nil
}

func (s *plannedStepper) kernelStep() error {
	p, m, model, ki := s.p, s.m, s.model, s.ki
	k := &model.Kernels[ki]
	moveStart := p.Clock.Now()
	for _, id := range s.sched.AllocBefore[ki] {
		if err := s.allocate(id); err != nil {
			return err
		}
	}
	// Planned restores land immediately before the kernel
	// that reuses the tensor.
	for _, id := range s.restoreAt[ki] {
		if s.objs[id] != nil && !s.objs[id].Retired() {
			if err := s.restore(s.objs[id]); err != nil {
				return err
			}
		}
	}
	moveStall := p.Clock.Now() - moveStart
	s.it.MoveTime += moveStall
	s.rm.stall(moveStall)

	var readBytes, writeBytes [2]int64
	rf := k.EffectiveReadFactor()
	for _, id := range k.Reads {
		f := 1.0
		if amplified(model.Tensors[id].Kind) {
			f = rf
		}
		readBytes[m.GetPrimary(s.objs[id]).Class()] += int64(float64(s.objs[id].Size()) * f)
	}
	for _, id := range k.Writes {
		writeBytes[m.GetPrimary(s.objs[id]).Class()] += s.objs[id].Size()
	}
	kt := kernelTime(p, k.FLOPs, readBytes, writeBytes)
	p.Clock.Advance(kt)
	s.it.ComputeTime += kt
	s.rm.kernel(kt)

	moveStart = p.Clock.Now()
	for _, id := range s.offloadAt[ki] {
		if s.objs[id] != nil && !s.objs[id].Retired() {
			if err := s.park(s.objs[id]); err != nil {
				return err
			}
		}
	}
	for _, id := range s.sched.RetireAfter[ki] {
		m.DestroyObject(s.objs[id])
		s.objs[id] = nil
	}
	moveStall = p.Clock.Now() - moveStart
	s.it.MoveTime += moveStall
	s.rm.stall(moveStall)

	used := m.UsedBytes(dm.Fast) + m.UsedBytes(dm.Slow)
	if used > s.res.PeakHeap {
		s.res.PeakHeap = used
	}
	return nil
}

func (s *plannedStepper) endIter() error {
	p, iter := s.p, s.iter
	s.it.Time = p.Clock.Now() - s.iterStart
	s.rm.iter(s.it.Time)
	s.it.Fast = p.Fast.Counters().Sub(s.fastBase)
	s.it.Slow = p.Slow.Counters().Sub(s.slowBase)
	s.res.Iterations = append(s.res.Iterations, s.it)

	if s.cfg.CheckInvariants {
		if err := s.m.CheckInvariants(); err != nil {
			return fmt.Errorf("engine: planned run after iter %d: %w", iter, err)
		}
	}
	s.m.Defrag(dm.Fast)
	s.m.Defrag(dm.Slow)
	return nil
}

func (s *plannedStepper) Finish() (*Result, error) {
	if !s.done {
		return nil, fmt.Errorf("engine: finish before run completed")
	}
	if s.finished {
		return nil, fmt.Errorf("engine: double finish")
	}
	s.finished = true
	s.res.DM = s.m.Stats()
	finishMetrics(s.cfg.Metrics, s.model.Name, "AutoTM:plan", s.p.Clock.Now())
	s.release()
	s.res.aggregate()
	return s.res, nil
}
