package engine

import (
	"fmt"

	"cachedarrays/internal/dm"
	"cachedarrays/internal/models"
	"cachedarrays/internal/planner"
	"cachedarrays/internal/trace"
)

// RunPlanned executes a training run under a static, ahead-of-time plan
// (the AutoTM-style "Compiler" row of Table I): every tensor's residency
// was decided offline; the runtime just executes the placements and the
// planned offload/restore copies. No hints, no adaptive policy.
//
// If the plan is nil, one is built from the model and the DRAM budget.
func RunPlanned(model *models.Model, plan *planner.Plan, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	p, release := acquirePlatform(cfg)
	m, err := newManager(p, cfg)
	if err != nil {
		return nil, err
	}
	if plan == nil {
		// Reserve a little headroom for allocator alignment slack.
		budget := resolveCapacity(cfg.FastCapacity, p.Fast.Capacity) * 97 / 100
		plan = planner.Build(model, budget, planner.DefaultCostModel())
	}
	if len(plan.Placement) != len(model.Tensors) {
		return nil, fmt.Errorf("engine: plan covers %d tensors, model has %d",
			len(plan.Placement), len(model.Tensors))
	}
	sched := trace.New(model)
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	res := &Result{ModelName: model.Name, Mode: "AutoTM:plan", Config: cfg}
	res.recordPeaks(p)
	wirePlatformMetrics(cfg.Metrics, p)
	m.RegisterMetrics(cfg.Metrics)
	rm := newRunMetrics(cfg.Metrics)
	objs := make([]*dm.Object, len(model.Tensors))

	// Index the planned offload and restore points by kernel.
	offloadAt := make([][]int, len(model.Kernels))
	restoreAt := make([][]int, len(model.Kernels))
	for id, pl := range plan.Placement {
		if pl == planner.Offload {
			offloadAt[plan.OffloadAfter[id]] = append(offloadAt[plan.OffloadAfter[id]], id)
			restoreAt[plan.RestoreBefore[id]] = append(restoreAt[plan.RestoreBefore[id]], id)
		}
	}

	// allocate places a tensor on its planned tier, falling back to slow
	// memory if fragmentation defeats the plan (counted as a fetch
	// failure — a real static system would crash or re-plan here).
	allocate := func(id int) error {
		class := dm.Slow
		if plan.Placement[id] != planner.SlowAlways {
			class = dm.Fast
		}
		o, err := m.NewObject(model.Tensors[id].Bytes, class)
		if err == dm.ErrExhausted && class == dm.Fast {
			res.Policy.FetchFailures++
			o, err = m.NewObject(model.Tensors[id].Bytes, dm.Slow)
		}
		if err != nil {
			return fmt.Errorf("engine: planned allocation of %s: %w", model.Tensors[id].Name, err)
		}
		objs[id] = o
		return nil
	}
	// park moves an offloaded tensor's primary to slow memory (the
	// planned synchronous eviction copy).
	park := func(o *dm.Object) error {
		x := m.GetPrimary(o)
		if !m.In(x, dm.Fast) {
			return nil
		}
		y, err := m.Allocate(dm.Slow, o.Size())
		if err != nil {
			return err
		}
		m.CopyTo(y, x)
		if err := m.SetPrimary(o, y); err != nil {
			return err
		}
		m.Free(x)
		return nil
	}
	// restore brings it back (the planned prefetch copy).
	restore := func(o *dm.Object) error {
		x := m.GetPrimary(o)
		if !m.In(x, dm.Slow) {
			return nil
		}
		y, err := m.Allocate(dm.Fast, o.Size())
		if err != nil {
			res.Policy.FetchFailures++
			return nil // plan defeated by fragmentation; read in place
		}
		m.CopyTo(y, x)
		if err := m.SetPrimary(o, y); err != nil {
			return err
		}
		m.Free(x)
		return nil
	}

	for _, id := range sched.Persistent {
		if err := allocate(id); err != nil {
			return nil, err
		}
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		iterStart := p.Clock.Now()
		fastBase, slowBase := p.Fast.Counters(), p.Slow.Counters()
		var it IterationMetrics

		for ki := range model.Kernels {
			k := &model.Kernels[ki]
			moveStart := p.Clock.Now()
			for _, id := range sched.AllocBefore[ki] {
				if err := allocate(id); err != nil {
					return nil, err
				}
			}
			// Planned restores land immediately before the kernel
			// that reuses the tensor.
			for _, id := range restoreAt[ki] {
				if objs[id] != nil && !objs[id].Retired() {
					if err := restore(objs[id]); err != nil {
						return nil, err
					}
				}
			}
			moveStall := p.Clock.Now() - moveStart
			it.MoveTime += moveStall
			rm.stall(moveStall)

			var readBytes, writeBytes [2]int64
			rf := k.EffectiveReadFactor()
			for _, id := range k.Reads {
				f := 1.0
				if amplified(model.Tensors[id].Kind) {
					f = rf
				}
				readBytes[m.GetPrimary(objs[id]).Class()] += int64(float64(objs[id].Size()) * f)
			}
			for _, id := range k.Writes {
				writeBytes[m.GetPrimary(objs[id]).Class()] += objs[id].Size()
			}
			kt := kernelTime(p, k.FLOPs, readBytes, writeBytes)
			p.Clock.Advance(kt)
			it.ComputeTime += kt
			rm.kernel(kt)

			moveStart = p.Clock.Now()
			for _, id := range offloadAt[ki] {
				if objs[id] != nil && !objs[id].Retired() {
					if err := park(objs[id]); err != nil {
						return nil, err
					}
				}
			}
			for _, id := range sched.RetireAfter[ki] {
				m.DestroyObject(objs[id])
				objs[id] = nil
			}
			moveStall = p.Clock.Now() - moveStart
			it.MoveTime += moveStall
			rm.stall(moveStall)

			used := m.UsedBytes(dm.Fast) + m.UsedBytes(dm.Slow)
			if used > res.PeakHeap {
				res.PeakHeap = used
			}
		}

		it.Time = p.Clock.Now() - iterStart
		rm.iter(it.Time)
		it.Fast = p.Fast.Counters().Sub(fastBase)
		it.Slow = p.Slow.Counters().Sub(slowBase)
		res.Iterations = append(res.Iterations, it)

		if cfg.CheckInvariants {
			if err := m.CheckInvariants(); err != nil {
				return nil, fmt.Errorf("engine: planned run after iter %d: %w", iter, err)
			}
		}
		m.Defrag(dm.Fast)
		m.Defrag(dm.Slow)
	}
	res.DM = m.Stats()
	finishMetrics(cfg.Metrics, model.Name, "AutoTM:plan", p.Clock.Now())
	release()
	res.aggregate()
	return res, nil
}
