// Package engine executes workload traces against either the CachedArrays
// runtime (data manager + policy, §III) or the 2LM hardware-cache baseline
// (§IV-A), in virtual time, producing all the metrics the paper's
// evaluation reports: iteration time (Fig. 2, 7), heap-occupancy time
// series (Fig. 3), DRAM-cache tag statistics (Fig. 4), per-device traffic
// (Fig. 5) and bus utilization (Fig. 6).
package engine

import (
	"fmt"

	"cachedarrays/internal/dm"
	"cachedarrays/internal/faults"
	"cachedarrays/internal/gcsim"
	"cachedarrays/internal/memsim"
	"cachedarrays/internal/metrics"
	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/tracing"
	"cachedarrays/internal/twolm"
	"cachedarrays/internal/units"
)

// Config parameterizes a run. Zero fields take paper defaults.
type Config struct {
	// FastCapacity is the DRAM budget (paper: 180 GB; Fig. 7 sweeps it).
	FastCapacity int64
	// SlowCapacity is the NVRAM budget (paper: 1300 GB).
	SlowCapacity int64
	// CopyThreads sizes the data-movement pool.
	CopyThreads int
	// Iterations to run (paper: 4). The first iteration is warm-up; the
	// reported Result averages the remaining ones.
	Iterations int
	// TwoLM configures the hardware cache for Run2LM.
	TwoLM twolm.Config
	// SampleHeap records the resident-heap time series (Fig. 3).
	SampleHeap bool
	// AsyncMovement runs data movement on the paper's future-work design
	// (§V-c): a separate mover timeline overlapping kernel execution,
	// instead of synchronous stalls. Kernels still wait for their own
	// arguments' in-flight moves (data dependencies).
	AsyncMovement bool
	// HintLookahead emits will_read hints this many kernels ahead of
	// use, giving an asynchronous mover time to stage data. 0 keeps the
	// paper's evaluated behaviour (hints immediately before the kernel).
	HintLookahead int
	// Allocator selects the heap allocator for ablations: "" or
	// "firstfit" (the default), "bestfit", or "buddy".
	Allocator string
	// NoArchiveHints suppresses the archive annotations (ablation: how
	// much of the win comes from eviction prioritization).
	NoArchiveHints bool
	// PreferCleanVictims enables the cost-aware victim refinement (see
	// policy.Config.PreferCleanVictims).
	PreferCleanVictims bool
	// TraceEvents, when positive, records the last N data-manager events
	// (allocations, copies, primary changes, destroys) into
	// Result.Events — the movement audit trail for debugging placement.
	TraceEvents int
	// Trace records the full structured execution trace (every transfer,
	// policy decision, kernel span and stall) into Result.Trace, for the
	// JSONL/Chrome exports. Off by default; the instrumented paths cost a
	// single nil-check when disabled.
	Trace bool
	// SlowTier selects the slow device technology: "" or "nvram"
	// (Optane DC, the paper's platform) or "cxl" (disaggregated remote
	// DRAM, the §VI extension target). Policies are untouched by the
	// switch — only the platform description changes, which is the
	// paper's portability claim.
	SlowTier string
	// CheckInvariants validates the full state machine after every
	// iteration (tests; cheap relative to the simulation itself).
	CheckInvariants bool
	// CheckEveryAdvance attaches the invariants checker to the virtual
	// clock: the platform/state-machine audit runs at every point
	// simulated time moves (carun -check, fuzzing). Much more expensive
	// than CheckInvariants; off by default.
	CheckEveryAdvance bool
	// FaultSpec, when non-empty, is a faults.Parse schedule injected into
	// the run: transient fast-tier allocation failures, copy-engine
	// stalls/errors, bandwidth-collapse episodes and capacity shrinks.
	// Empty (the default) wires no injector, keeping runs byte-identical
	// to builds without the fault layer (CachedArrays runs only).
	FaultSpec string
	// Metrics, when non-nil, is sampled on its virtual-time cadence
	// throughout the run: every simulator layer registers its series
	// (occupancy, bandwidth, queue depths, decision counters) and the
	// virtual clock drives sampling. Nil (the default) records nothing
	// and keeps runs byte-identical — the registry never advances the
	// clock or touches simulation state.
	Metrics *metrics.Registry
}

// Canonical returns the config with every zero field replaced by its
// paper default — the form every runner normalizes to before executing
// (and the form Result.Config records). Two configs that canonicalize
// equally describe the same run, which is what the scheduler's
// content-addressed result cache keys on.
func (c Config) Canonical() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.FastCapacity == 0 {
		c.FastCapacity = memsim.DefaultFastCapacity
	}
	if c.SlowCapacity == 0 {
		c.SlowCapacity = memsim.DefaultSlowCapacity
	}
	if c.CopyThreads == 0 {
		c.CopyThreads = memsim.DefaultCopyThreads
	}
	if c.Iterations == 0 {
		c.Iterations = 4
	}
	if c.TwoLM.LineSize == 0 {
		c.TwoLM = twolm.DefaultConfig()
	}
	return c
}

// HeapSample is one point of the Fig. 3 occupancy curve.
type HeapSample struct {
	Time float64 // virtual seconds since the sampled iteration began
	Used int64   // resident heap bytes
}

// IterationMetrics captures one iteration's measurements.
type IterationMetrics struct {
	Time        float64 // wall-clock (virtual) duration
	ComputeTime float64 // kernel execution time (includes kernel memory stalls)
	MoveTime    float64 // synchronous data-movement stalls outside kernels
	GCTime      float64 // collector pauses
	Fast        memsim.Counters
	Slow        memsim.Counters
	Cache       twolm.Stats // 2LM runs only
}

// Result is the aggregate outcome of a run. Traffic and times are averaged
// over the measured (post-warm-up) iterations.
type Result struct {
	ModelName string
	Mode      string
	Config    Config

	// IterTime is the average per-iteration virtual time (Fig. 2, 7).
	IterTime float64
	// ComputeTime and MoveTime split IterTime into kernel execution and
	// synchronous movement stalls; ProjectedAsyncTime = IterTime -
	// MoveTime is Fig. 7's "perfectly asynchronous data movement" line.
	ComputeTime        float64
	MoveTime           float64
	GCTime             float64
	ProjectedAsyncTime float64

	// Fast/Slow hold per-iteration average traffic (Fig. 5) and busy
	// time. FastBusUtil/SlowBusUtil are the Fig. 6 metric: achieved
	// bandwidth (bytes moved / iteration time) as a fraction of the
	// device's mixed peak bandwidth — what the paper's hardware counters
	// measure.
	Fast        memsim.Counters
	Slow        memsim.Counters
	FastBusUtil float64
	SlowBusUtil float64
	// FastPeakBW/SlowPeakBW are the mixed peak bandwidths used for the
	// utilization computation, recorded by the runner. Exported so a
	// Result survives a serialization round trip intact (the scheduler's
	// result cache relies on reflect.DeepEqual with a fresh run).
	FastPeakBW float64
	SlowPeakBW float64

	// Cache holds the DRAM-cache tag statistics (Fig. 4; 2LM only).
	Cache twolm.Stats

	// HeapSamples is the Fig. 3 occupancy series for the last measured
	// iteration (when Config.SampleHeap).
	HeapSamples []HeapSample
	// PeakHeap is the maximum resident heap observed.
	PeakHeap int64

	// Iterations holds the raw per-iteration metrics.
	Iterations []IterationMetrics

	// Runtime-side statistics (CachedArrays runs).
	Policy policy.Stats
	DM     dm.Stats
	GC     gcsim.Stats

	// Adaptive holds the adaptive-layer decision counters when the run
	// used an adaptive policy stack (CA:OG / CA:TG / CA:OGTG); zero for
	// the static paper modes.
	Adaptive policy.AdaptiveStats

	// Faults aggregates the injector's activity when Config.FaultSpec was
	// set (zero otherwise).
	Faults faults.Stats
	// InvariantChecks counts the audits run when Config.CheckEveryAdvance
	// was set.
	InvariantChecks int64

	// Events holds the tail of the data-manager event log when
	// Config.TraceEvents was set (CachedArrays runs only).
	Events []dm.Event

	// Trace holds the structured execution trace when Config.Trace was
	// set. The trailing totals event makes it self-contained:
	// tracing.Verify(Trace) re-derives the aggregates above from the
	// events and demands exact equality.
	Trace []tracing.Event
}

// aggregate fills the averaged fields from the measured iterations
// (skipping the warm-up iteration when more than one ran).
func (r *Result) aggregate() {
	measured := r.Iterations
	if len(measured) > 1 {
		measured = measured[1:]
	}
	n := float64(len(measured))
	for _, it := range measured {
		r.IterTime += it.Time / n
		r.ComputeTime += it.ComputeTime / n
		r.MoveTime += it.MoveTime / n
		r.GCTime += it.GCTime / n
		r.Fast.ReadBytes += it.Fast.ReadBytes / int64(n)
		r.Fast.WriteBytes += it.Fast.WriteBytes / int64(n)
		r.Fast.BusyTime += it.Fast.BusyTime / n
		r.Slow.ReadBytes += it.Slow.ReadBytes / int64(n)
		r.Slow.WriteBytes += it.Slow.WriteBytes / int64(n)
		r.Slow.BusyTime += it.Slow.BusyTime / n
		r.Cache.Hits += it.Cache.Hits / int64(n)
		r.Cache.CleanMisses += it.Cache.CleanMisses / int64(n)
		r.Cache.DirtyMisses += it.Cache.DirtyMisses / int64(n)
	}
	r.ProjectedAsyncTime = r.IterTime - r.MoveTime
	if r.IterTime > 0 && r.FastPeakBW > 0 {
		r.FastBusUtil = float64(r.Fast.TotalBytes()) / r.IterTime / r.FastPeakBW
	}
	if r.IterTime > 0 && r.SlowPeakBW > 0 {
		r.SlowBusUtil = float64(r.Slow.TotalBytes()) / r.IterTime / r.SlowPeakBW
	}
}

// recordPeaks captures the platform's mixed peak bandwidths for the
// utilization computation.
func (r *Result) recordPeaks(p *memsim.Platform) {
	r.FastPeakBW = (p.Fast.Profile.PeakRead + p.Fast.Profile.PeakWrite) / 2
	r.SlowPeakBW = (p.Slow.Profile.PeakRead + p.Slow.Profile.PeakWrite) / 2
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s %s: iter=%s move=%s dramR=%s dramW=%s nvR=%s nvW=%s util=%.0f%%",
		r.ModelName, r.Mode, units.Seconds(r.IterTime), units.Seconds(r.MoveTime),
		units.Bytes(r.Fast.ReadBytes), units.Bytes(r.Fast.WriteBytes),
		units.Bytes(r.Slow.ReadBytes), units.Bytes(r.Slow.WriteBytes),
		100*r.FastBusUtil)
}

// kernelAccess is the access shape of oneDNN-class kernels computing
// in place: blocked/tiled 32 KiB runs (far from pure memcpy — this is the
// paper's "traffic shaping" asymmetry: explicit copies stream at peak
// bandwidth, in-place kernel access does not, §V-b) with regular stores
// (the kernels are NOT non-temporal-store optimized — §V-d).
var kernelAccess = memsim.Access{Threads: 28, Granularity: 32 << 10, NonTemporal: false}

// amplified reports whether a tensor kind is subject to the kernel's
// ReadFactor: convolutions re-stream their *data input* (the activation)
// once per output-channel block; weights and gradients stream once.
func amplified(k models.TensorKind) bool {
	return k == models.Activation || k == models.Input
}

// kernelTime computes the roofline time for one kernel: compute overlapped
// with per-device memory streams; the slowest resource wins. Traffic is
// recorded on the devices.
func kernelTime(p *memsim.Platform, flops float64, readBytes, writeBytes [2]int64) float64 {
	compute := flops/p.Compute.PeakFlops + p.Compute.LaunchOverhead
	var devTime [2]float64
	devs := [2]*memsim.Device{p.Fast, p.Slow}
	for i, d := range devs {
		devTime[i] += d.Read(readBytes[i], kernelAccess)
		devTime[i] += d.Write(writeBytes[i], kernelAccess)
	}
	t := compute
	if devTime[0] > t {
		t = devTime[0]
	}
	if devTime[1] > t {
		t = devTime[1]
	}
	return t
}
