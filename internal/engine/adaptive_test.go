package engine

import (
	"fmt"
	"reflect"
	"testing"

	"cachedarrays/internal/metrics"
	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/units"
)

// thrashModel builds a synthetic worst case for eager fetching: n
// persistent objects read round-robin with near-zero compute, with the
// working set sized ~2x fast capacity by the caller. Under CA:LMP every
// read force-fetches and evicts the next victim — textbook ping-pong.
func thrashModel(n int, objBytes int64, passes int) *models.Model {
	m := &models.Model{Name: "thrash", BatchSize: 1}
	for i := 0; i < n; i++ {
		m.Tensors = append(m.Tensors, models.Tensor{
			ID: i, Name: fmt.Sprintf("w%d", i), Bytes: objBytes, Kind: models.Weight})
	}
	stats := len(m.Tensors)
	m.Tensors = append(m.Tensors, models.Tensor{
		ID: stats, Name: "stats", Bytes: 64, Kind: models.WeightGrad})
	for p := 0; p < passes; p++ {
		for i := 0; i < n; i++ {
			m.Kernels = append(m.Kernels, models.Kernel{
				Name:   fmt.Sprintf("k%d_%d", p, i),
				Phase:  models.Forward,
				Reads:  []int{i},
				Writes: []int{stats},
				FLOPs:  1e6,
			})
		}
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

// thrashCfg holds 4 of the model's 8 objects in fast memory, so the
// round-robin access pattern misses on every read.
func thrashCfg() (*models.Model, Config) {
	return thrashModel(8, 32*units.MB, 12),
		Config{Iterations: 2, FastCapacity: 140 * units.MB, SlowCapacity: 4 * units.GB}
}

// TestThrashGuardDampsPingPong is the headline thrash-guard property: on
// a workload where eager fetching ping-pongs, CA:TG trips, absorbs the
// churn, and beats the static CA:LMP baseline on movement and time.
func TestThrashGuardDampsPingPong(t *testing.T) {
	m, cfg := thrashCfg()
	lmp, err := RunCA(m, policy.CALMP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := RunCAAdaptive(m, AdaptiveTG, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tg.Adaptive.ThrashBackoffs == 0 || tg.Adaptive.SuppressedFetches == 0 {
		t.Fatalf("guard never engaged: %+v", tg.Adaptive)
	}
	if tg.Policy.Prefetches*2 >= lmp.Policy.Prefetches {
		t.Errorf("prefetches %d not halved vs CA:LMP's %d",
			tg.Policy.Prefetches, lmp.Policy.Prefetches)
	}
	if tg.DM.BytesSlowToFast*2 >= lmp.DM.BytesSlowToFast {
		t.Errorf("slow->fast bytes %d not halved vs CA:LMP's %d",
			tg.DM.BytesSlowToFast, lmp.DM.BytesSlowToFast)
	}
	if tg.IterTime >= lmp.IterTime {
		t.Errorf("CA:TG (%.4fs) not faster than CA:LMP (%.4fs) on the thrashing workload",
			tg.IterTime, lmp.IterTime)
	}
}

// TestOnlineGuidanceBeatsStaticBaseline: CA:OG must beat at least one
// static paper mode (CA:0, the hardware-cache-like baseline) while its
// guidance loop demonstrably runs.
func TestOnlineGuidanceBeatsStaticBaseline(t *testing.T) {
	m := models.ResNet(50, 128)
	cfg := Config{Iterations: 2, FastCapacity: 2 * units.GB, SlowCapacity: 64 * units.GB}
	og, err := RunCAAdaptive(m, AdaptiveOG, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunCA(m, policy.CAZero, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if og.Adaptive.Rebalances == 0 {
		t.Fatalf("guidance loop never ran: %+v", og.Adaptive)
	}
	if og.IterTime >= base.IterTime {
		t.Errorf("CA:OG (%.4fs) not faster than CA:0 (%.4fs)", og.IterTime, base.IterTime)
	}
}

// TestAdaptiveInvariants runs every adaptive variant under full invariant
// checking on the thrashing workload.
func TestAdaptiveInvariants(t *testing.T) {
	m, cfg := thrashCfg()
	cfg.CheckInvariants = true
	for _, v := range AdaptiveModes {
		if _, err := RunCAAdaptive(m, v, cfg); err != nil {
			t.Errorf("%s: %v", v, err)
		}
	}
}

// TestAdaptiveDeterministic: adaptive runs must be exactly reproducible —
// the property the scheduler's result cache depends on. The private
// registry the guidance policy steers by never perturbs the simulation.
func TestAdaptiveDeterministic(t *testing.T) {
	m, cfg := thrashCfg()
	for _, v := range AdaptiveModes {
		a, err := RunCAAdaptive(m, v, cfg)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		b, err := RunCAAdaptive(m, v, cfg)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two identical runs differ", v)
		}
	}
}

// TestAdaptiveCallerRegistry: when the caller provides a registry, the
// adaptive stack registers its decision counters there and the run is
// sampled as usual.
func TestAdaptiveCallerRegistry(t *testing.T) {
	m, cfg := thrashCfg()
	reg := metrics.New(0)
	cfg.Metrics = reg
	r, err := RunCAAdaptive(m, AdaptiveOGTG, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Samples() == 0 {
		t.Fatal("caller registry never sampled")
	}
	v, ok := reg.Value("guidance_rebalances")
	if !ok {
		t.Fatal("guidance counters not registered in caller registry")
	}
	if int64(v) != r.Adaptive.Rebalances {
		t.Errorf("registry rebalances %v != result %d", v, r.Adaptive.Rebalances)
	}
	if _, ok := reg.Value("thrash_backoffs"); !ok {
		t.Fatal("thrash counters not registered in caller registry")
	}
}

// TestAdaptiveUnknownVariant: the dispatcher rejects unknown names.
func TestAdaptiveUnknownVariant(t *testing.T) {
	m, cfg := thrashCfg()
	if _, err := RunCAAdaptive(m, "CA:BOGUS", cfg); err == nil {
		t.Fatal("unknown variant accepted")
	}
}
