package engine

import (
	"reflect"
	"sync"
	"testing"

	"cachedarrays/internal/metrics"
	"cachedarrays/internal/policy"
)

// TestPooledPlatformReuseMatchesFresh is the platform-pooling property
// test: after the pool has been dirtied by runs in every instrumented
// and configuration variant that shares the same pool key — async
// movement, tracing, fault injection, per-advance audits, a metrics
// registry — a plain run must still be reflect.DeepEqual-identical to
// the run that first populated the pool. Any hook or state leaking
// through a release would break this.
func TestPooledPlatformReuseMatchesFresh(t *testing.T) {
	cfg := Config{Iterations: 2}
	base, err := RunCA(resnetLarge, policy.CALM, cfg)
	if err != nil {
		t.Fatal(err)
	}

	dirty := []Config{
		{Iterations: 2, AsyncMovement: true},
		{Iterations: 2, Trace: true},
		{Iterations: 2, TraceEvents: 16},
		{Iterations: 2, FaultSpec: "seed=42;allocfail:fast:t0=0.1,t1=0.5,p=0.5;copystall:nvram:t0=0,stall=2ms"},
		{Iterations: 2, CheckInvariants: true},
	}
	for _, d := range dirty {
		if _, err := RunCA(resnetLarge, policy.CALM, d); err != nil {
			t.Fatal(err)
		}
	}
	reg := metrics.New(0.5)
	if _, err := RunCA(resnetLarge, policy.CALM, Config{Iterations: 2, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	if reg.Samples() == 0 {
		t.Fatal("metered dirty run recorded no samples")
	}

	again, err := RunCA(resnetLarge, policy.CALM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, again) {
		t.Fatal("run on a pool-recycled platform differs from the first run")
	}
	// And the reverse hazard: a sync run between two async runs must not
	// perturb the async timings (Copier.Async/WriteThreadCap are set per
	// acquire, not trusted from the pooled platform).
	acfg := Config{Iterations: 2, AsyncMovement: true}
	async1, err := RunCA(resnetLarge, policy.CALM, acfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCA(resnetLarge, policy.CALM, cfg); err != nil {
		t.Fatal(err)
	}
	async2, err := RunCA(resnetLarge, policy.CALM, acfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(async1, async2) {
		t.Fatal("async run after a sync pool cycle differs")
	}
}

// TestPoolRecyclesAcrossModes: every engine entry point releases its
// platform back to the pool on success, so a mixed-mode sequence reuses
// one platform per key instead of growing the pool per run.
func TestPoolRecyclesAcrossModes(t *testing.T) {
	cfg := Config{Iterations: 1}
	run := func() {
		if _, err := RunCA(vggLarge, policy.CALM, cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := Run2LM(vggLarge, true, cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := RunPlanned(vggLarge, nil, cfg); err != nil {
			t.Fatal(err)
		}
	}
	run() // populate the pool for this key
	key := platformKey{
		fast:     cfg.Canonical().FastCapacity,
		slow:     cfg.Canonical().SlowCapacity,
		threads:  cfg.Canonical().CopyThreads,
		slowTier: cfg.Canonical().SlowTier,
	}
	depth := poolDepth(key)
	if depth == 0 {
		t.Fatal("no platform returned to the pool")
	}
	run() // serial reruns must recycle, not grow
	if after := poolDepth(key); after != depth {
		t.Fatalf("pool grew from %d to %d across serial reruns", depth, after)
	}
}

// TestPoolConcurrentAcquireRelease is the sharded-pool contention test:
// many goroutines hammer acquire/release across one shared key and a set
// of distinct keys at once (mixed slow tiers and copy-thread counts, so
// distinct keys map to distinct shards). Under -race this proves the
// shard map and per-shard freelists are race-free; the DeepEqual check
// afterwards proves a platform recycled through concurrent churn still
// carries Reset's freshly-built semantics; and the depth bound proves
// concurrent same-key releases all land in one shard instead of leaking.
func TestPoolConcurrentAcquireRelease(t *testing.T) {
	shared := Config{Iterations: 1}
	base, err := RunCA(vggLarge, policy.CALM, shared)
	if err != nil {
		t.Fatal(err)
	}

	distinct := []Config{
		{Iterations: 1, SlowTier: "cxl"},
		{Iterations: 1, CopyThreads: 2},
		{Iterations: 1, CopyThreads: 3},
	}
	const workers, rounds = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				cfg := shared
				if w%2 == 1 { // half the workers churn distinct shards
					cfg = distinct[(w+r)%len(distinct)]
				}
				if _, err := RunCA(vggLarge, policy.CALM, cfg); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	again, err := RunCA(vggLarge, policy.CALM, shared)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, again) {
		t.Fatal("run on a concurrently-churned pooled platform differs from the fresh run")
	}
	key := platformKey{
		fast:     shared.Canonical().FastCapacity,
		slow:     shared.Canonical().SlowCapacity,
		threads:  shared.Canonical().CopyThreads,
		slowTier: shared.Canonical().SlowTier,
	}
	if depth := poolDepth(key); depth > workers+2 {
		t.Fatalf("shared-key shard holds %d idle platforms, more than the %d concurrent acquirers", depth, workers+2)
	}
}
