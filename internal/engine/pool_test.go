package engine

import (
	"reflect"
	"testing"

	"cachedarrays/internal/metrics"
	"cachedarrays/internal/policy"
)

// TestPooledPlatformReuseMatchesFresh is the platform-pooling property
// test: after the pool has been dirtied by runs in every instrumented
// and configuration variant that shares the same pool key — async
// movement, tracing, fault injection, per-advance audits, a metrics
// registry — a plain run must still be reflect.DeepEqual-identical to
// the run that first populated the pool. Any hook or state leaking
// through a release would break this.
func TestPooledPlatformReuseMatchesFresh(t *testing.T) {
	cfg := Config{Iterations: 2}
	base, err := RunCA(resnetLarge, policy.CALM, cfg)
	if err != nil {
		t.Fatal(err)
	}

	dirty := []Config{
		{Iterations: 2, AsyncMovement: true},
		{Iterations: 2, Trace: true},
		{Iterations: 2, TraceEvents: 16},
		{Iterations: 2, FaultSpec: "seed=42;allocfail:fast:t0=0.1,t1=0.5,p=0.5;copystall:nvram:t0=0,stall=2ms"},
		{Iterations: 2, CheckInvariants: true},
	}
	for _, d := range dirty {
		if _, err := RunCA(resnetLarge, policy.CALM, d); err != nil {
			t.Fatal(err)
		}
	}
	reg := metrics.New(0.5)
	if _, err := RunCA(resnetLarge, policy.CALM, Config{Iterations: 2, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	if reg.Samples() == 0 {
		t.Fatal("metered dirty run recorded no samples")
	}

	again, err := RunCA(resnetLarge, policy.CALM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, again) {
		t.Fatal("run on a pool-recycled platform differs from the first run")
	}
	// And the reverse hazard: a sync run between two async runs must not
	// perturb the async timings (Copier.Async/WriteThreadCap are set per
	// acquire, not trusted from the pooled platform).
	acfg := Config{Iterations: 2, AsyncMovement: true}
	async1, err := RunCA(resnetLarge, policy.CALM, acfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCA(resnetLarge, policy.CALM, cfg); err != nil {
		t.Fatal(err)
	}
	async2, err := RunCA(resnetLarge, policy.CALM, acfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(async1, async2) {
		t.Fatal("async run after a sync pool cycle differs")
	}
}

// TestPoolRecyclesAcrossModes: every engine entry point releases its
// platform back to the pool on success, so a mixed-mode sequence reuses
// one platform per key instead of growing the pool per run.
func TestPoolRecyclesAcrossModes(t *testing.T) {
	cfg := Config{Iterations: 1}
	run := func() {
		if _, err := RunCA(vggLarge, policy.CALM, cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := Run2LM(vggLarge, true, cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := RunPlanned(vggLarge, nil, cfg); err != nil {
			t.Fatal(err)
		}
	}
	run() // populate the pool for this key
	key := platformKey{
		fast:     cfg.Canonical().FastCapacity,
		slow:     cfg.Canonical().SlowCapacity,
		threads:  cfg.Canonical().CopyThreads,
		slowTier: cfg.Canonical().SlowTier,
	}
	platformMu.Lock()
	depth := len(platformPool[key])
	platformMu.Unlock()
	if depth == 0 {
		t.Fatal("no platform returned to the pool")
	}
	run() // serial reruns must recycle, not grow
	platformMu.Lock()
	after := len(platformPool[key])
	platformMu.Unlock()
	if after != depth {
		t.Fatalf("pool grew from %d to %d across serial reruns", depth, after)
	}
}
