package engine

import (
	"reflect"
	"testing"

	"cachedarrays/internal/metrics"
	"cachedarrays/internal/models"
	"cachedarrays/internal/pagemig"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/tracing"
)

// TestMetricsDoNotPerturbRun is the zero-cost contract of the metrics
// layer, mirroring the fault layer's: attaching a registry must leave
// every observable of a run — per-iteration metrics, device counters,
// policy/dm/gc statistics, and the full execution trace — exactly
// identical to a run with no registry at all.
func TestMetricsDoNotPerturbRun(t *testing.T) {
	model := models.ResNet(50, 256)
	for _, async := range []bool{false, true} {
		base := Config{Iterations: 3, Trace: true, CheckInvariants: true, AsyncMovement: async}

		r1, err := RunCA(model, policy.CALMP, base)
		if err != nil {
			t.Fatal(err)
		}
		instrumented := base
		instrumented.Metrics = metrics.New(0)
		r2, err := RunCA(model, policy.CALMP, instrumented)
		if err != nil {
			t.Fatal(err)
		}
		if err := tracing.Verify(r2.Trace); err != nil {
			t.Fatalf("async=%v: instrumented trace: %v", async, err)
		}
		// The configs differ by construction; everything else must not.
		r1.Config, r2.Config = Config{}, Config{}
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("async=%v: results diverged:\n  iter %v vs %v\n  dm %+v vs %+v\n  trace %d vs %d events",
				async, r1.IterTime, r2.IterTime, r1.DM, r2.DM, len(r1.Trace), len(r2.Trace))
		}
	}
}

// TestMetricsByteIdenticalBaselines extends the non-perturbation contract
// to the baseline runners (2LM, OS page migration, AutoTM plans).
func TestMetricsByteIdenticalBaselines(t *testing.T) {
	model := models.ResNet(50, 256)
	base := Config{Iterations: 2, CheckInvariants: true}
	instrumented := base
	instrumented.Metrics = metrics.New(0)

	runs := []struct {
		name string
		run  func(cfg Config) (*Result, error)
	}{
		{"2LM", func(cfg Config) (*Result, error) { return Run2LM(model, false, cfg) }},
		{"pagemig", func(cfg Config) (*Result, error) { return RunPageMig(model, pagemig.Config{}, cfg) }},
		{"planned", func(cfg Config) (*Result, error) { return RunPlanned(model, nil, cfg) }},
	}
	for _, tc := range runs {
		r1, err := tc.run(base)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		cfg := instrumented
		cfg.Metrics = metrics.New(0) // fresh registry per run (series re-register)
		r2, err := tc.run(cfg)
		if err != nil {
			t.Fatalf("%s instrumented: %v", tc.name, err)
		}
		r1.Config, r2.Config = Config{}, Config{}
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("%s: results diverged: iter %v vs %v", tc.name, r1.IterTime, r2.IterTime)
		}
	}
}

// TestMetricsSubstance checks the sampled series actually carry the run:
// samples were taken, and the final sampled counters agree with the
// authoritative Result statistics.
func TestMetricsSubstance(t *testing.T) {
	model := models.ResNet(50, 256)
	reg := metrics.New(0)
	cfg := Config{Iterations: 3, Metrics: reg}
	res, err := RunCA(model, policy.CALMP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Samples() == 0 {
		t.Fatal("no samples taken over a paper-scale run")
	}
	s := reg.Summarize()
	if s.Meta["model"] != model.Name || s.Meta["mode"] != "CA:LMP" {
		t.Fatalf("meta = %v", s.Meta)
	}
	check := func(series string, want float64) {
		t.Helper()
		ss, ok := s.Series[series]
		if !ok {
			t.Fatalf("series %s missing (have %d series)", series, len(s.Series))
		}
		if ss.Last != want {
			t.Errorf("%s last = %g, want %g", series, ss.Last, want)
		}
	}
	// Flush() ran at the end of the run, so the last sample is the final
	// state and must agree with the Result's cumulative stats.
	check("dm_copies", float64(res.DM.Copies))
	check("dm_region_allocs", float64(res.DM.RegionAllocs))
	check("policy_evictions", float64(res.Policy.Evictions))
	check("gc_collections", float64(res.GC.Collections))
	check("engine_iterations", float64(cfg.Iterations))
	// Region churn balances down to the live objects' regions.
	if res.DM.RegionAllocs <= 0 || res.DM.RegionFrees <= 0 {
		t.Errorf("region churn not counted: allocs=%d frees=%d", res.DM.RegionAllocs, res.DM.RegionFrees)
	}
	// Occupancy gauges exist for both tiers.
	for _, name := range []string{"dm_fast_used_bytes", "dm_slow_used_bytes", "mem_dram_read_bytes", "mem_nvram_write_bytes"} {
		if _, ok := s.Series[name]; !ok {
			t.Errorf("series %s missing", name)
		}
	}
	// Total kernel time across iterations matches the engine counter.
	var kernel float64
	for _, it := range res.Iterations {
		kernel += it.ComputeTime
	}
	if got := s.Series["engine_kernel_seconds"].Last; !approx(got, kernel) {
		t.Errorf("engine_kernel_seconds = %g, want %g", got, kernel)
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	return d <= 1e-9*(1+scale)
}
