package engine

import (
	"fmt"

	"cachedarrays/internal/alloc"
	"cachedarrays/internal/memsim"
	"cachedarrays/internal/models"
	"cachedarrays/internal/trace"
	"cachedarrays/internal/twolm"
)

// Run2LM executes a training run in the paper's baseline configuration:
// Intel memory mode, where the whole heap lives in a flat NVRAM-backed
// physical address space fronted by a transparent direct-mapped DRAM cache.
//
// memOpt selects "2LM: M" (eagerly free dead tensors, so physical pages
// are reused and stay cache-resident) versus "2LM: Ø" (rely on deferred
// collection, so the heap grows monotonically until the collector runs —
// Fig. 3's rising curve).
//
// As in the paper, the baseline uses the CachedArrays allocator over a
// pre-allocated heap (§IV-A: "we use 2LM with the CachedArrays allocator
// as the baseline"), so allocation-side effects are identical across
// systems and only the data-movement mechanism differs.
func Run2LM(model *models.Model, memOpt bool, cfg Config) (*Result, error) {
	st, err := new2LMStepper(model, memOpt, cfg, nil)
	if err != nil {
		return nil, err
	}
	return Drive(st)
}

// twolmStepper is the event-driven form of the 2LM baseline run.
type twolmStepper struct {
	model   *models.Model
	memOpt  bool
	cfg     Config
	p       *memsim.Platform
	release func()
	cache   *twolm.Cache
	sched   *trace.Schedule
	res     *Result
	rm      runMetrics
	mode    string
	heap    alloc.Allocator
	addrs   []int64
	live    []bool

	// Deferred-death list for the Ø mode (the GC the paper's Julia
	// runtime provides). Pause constants mirror gcsim.
	dead     []int
	gcPauses float64

	iter               int
	ki                 int
	inIter             bool
	it                 IterationMetrics
	iterStart          float64
	fastBase, slowBase memsim.Counters
	cacheBase          twolm.Stats
	gcBase             float64
	sampling           bool
	done               bool
	finished           bool
}

const twolmPauseBase, twolmPausePerObject = 1e-3, 2e-7

func new2LMStepper(model *models.Model, memOpt bool, cfg Config, env *Env) (*twolmStepper, error) {
	cfg = cfg.withDefaults()
	p, release := env.acquire(cfg)
	cache, err := twolm.New(p.Fast, p.Slow, cfg.TwoLM)
	if err != nil {
		return nil, err
	}
	sched := trace.New(model)
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	mode := "2LM:0"
	if memOpt {
		mode = "2LM:M"
	}
	s := &twolmStepper{
		model: model, memOpt: memOpt, cfg: cfg, p: p, release: release,
		cache: cache, sched: sched, mode: mode,
		res: &Result{ModelName: model.Name, Mode: mode, Config: cfg},
	}
	s.res.recordPeaks(p)

	// The flat heap spans the slow device's physical address space; under
	// a shared platform the slow-tier budget arbitrates it with the other
	// tenants' heaps.
	s.heap = env.limitSlow(alloc.NewFreeList(p.Slow.Capacity, alloc.FirstFit))
	registerPlatformMetrics(cfg.Metrics, p)
	env.attachRegistry(cfg.Metrics, p)
	s.rm = newRunMetrics(cfg.Metrics)
	if cfg.Metrics.Enabled() {
		cfg.Metrics.Gauge("twolm_heap_used_bytes", func() float64 { return float64(s.heap.Used()) })
		cfg.Metrics.CounterFunc("twolm_cache_hits", func() float64 { return float64(cache.Stats().Hits) })
		cfg.Metrics.CounterFunc("twolm_cache_clean_misses", func() float64 { return float64(cache.Stats().CleanMisses) })
		cfg.Metrics.CounterFunc("twolm_cache_dirty_misses", func() float64 { return float64(cache.Stats().DirtyMisses) })
	}
	s.addrs = make([]int64, len(model.Tensors))
	s.live = make([]bool, len(model.Tensors))

	for _, id := range sched.Persistent {
		if err := s.allocate(id); err != nil {
			return nil, err
		}
	}
	if cfg.Iterations <= 0 {
		s.done = true
	}
	return s, nil
}

// collect frees the deferred-death list and charges the GC pause.
func (s *twolmStepper) collect() {
	if len(s.dead) == 0 {
		return
	}
	for _, id := range s.dead {
		s.heap.Free(s.addrs[id])
		s.live[id] = false
	}
	pause := twolmPauseBase + float64(len(s.dead))*twolmPausePerObject
	s.p.Clock.Advance(pause)
	s.gcPauses += pause
	s.res.GC.Collections++
	s.res.GC.ObjectsFreed += int64(len(s.dead))
	s.dead = s.dead[:0]
}

func (s *twolmStepper) allocate(id int) error {
	a, err := s.heap.Alloc(s.model.Tensors[id].Bytes)
	if err == alloc.ErrExhausted && len(s.dead) > 0 {
		// Memory pressure: run the collector and retry — the
		// mid-iteration GC visible in Fig. 3's 2LM:Ø curve.
		s.collect()
		a, err = s.heap.Alloc(s.model.Tensors[id].Bytes)
	}
	if err != nil {
		return fmt.Errorf("engine: 2LM heap: allocating %s: %w", s.model.Tensors[id].Name, err)
	}
	s.addrs[id] = a
	s.live[id] = true
	return nil
}

func (s *twolmStepper) Done() bool { return s.done }

func (s *twolmStepper) Step() (float64, error) {
	if s.done {
		return s.p.Clock.Now(), fmt.Errorf("engine: step after run completed")
	}
	if !s.inIter {
		s.iterStart = s.p.Clock.Now()
		s.fastBase, s.slowBase = s.p.Fast.Counters(), s.p.Slow.Counters()
		s.cacheBase = s.cache.Stats()
		s.gcBase = s.gcPauses
		s.it = IterationMetrics{}
		s.sampling = s.cfg.SampleHeap && s.iter == s.cfg.Iterations-1
		if s.sampling {
			s.res.HeapSamples = s.res.HeapSamples[:0]
		}
		s.inIter = true
	}
	if s.ki < len(s.model.Kernels) {
		if err := s.kernelStep(); err != nil {
			return s.p.Clock.Now(), err
		}
		s.ki++
		return s.p.Clock.Now(), nil
	}
	if err := s.endIter(); err != nil {
		return s.p.Clock.Now(), err
	}
	s.iter++
	s.ki = 0
	s.inIter = false
	if s.iter >= s.cfg.Iterations {
		s.done = true
	}
	return s.p.Clock.Now(), nil
}

func (s *twolmStepper) kernelStep() error {
	p, model, ki := s.p, s.model, s.ki
	k := &model.Kernels[ki]
	for _, id := range s.sched.AllocBefore[ki] {
		if err := s.allocate(id); err != nil {
			return err
		}
	}
	// The hardware cache services every access; there are
	// no hints and no explicit movement. Kernel-internal
	// re-reads (ReadFactor) hit the DRAM cache after the
	// first pass brings the lines in — the one advantage a
	// transparent cache has over in-place NVRAM reads.
	// App-side DRAM streaming overlaps with compute like
	// any kernel traffic; demand-miss handling (fills,
	// metadata, writebacks) stalls the kernel.
	var cost twolm.Cost
	rf := k.EffectiveReadFactor()
	for _, id := range k.Reads {
		cost.Add(s.cache.Access(s.addrs[id], model.Tensors[id].Bytes, false))
		if !amplified(model.Tensors[id].Kind) {
			continue
		}
		if rereads := int64(float64(model.Tensors[id].Bytes) * (rf - 1)); rereads > 0 {
			cost.App += p.Fast.Read(rereads, kernelAccess)
		}
	}
	for _, id := range k.Writes {
		cost.Add(s.cache.Access(s.addrs[id], model.Tensors[id].Bytes, true))
	}
	kt := k.FLOPs/p.Compute.PeakFlops + p.Compute.LaunchOverhead
	if cost.App > kt {
		kt = cost.App
	}
	kt += cost.Stall()
	p.Clock.Advance(kt)
	s.it.ComputeTime += kt
	s.rm.kernel(kt)

	for _, id := range s.sched.RetireAfter[ki] {
		if s.memOpt {
			// 2LM:M — free eagerly; the physical pages
			// are recycled while their lines are still
			// cache-resident.
			s.heap.Free(s.addrs[id])
			s.live[id] = false
		} else {
			s.dead = append(s.dead, id)
		}
	}
	if s.heap.Used() > s.res.PeakHeap {
		s.res.PeakHeap = s.heap.Used()
	}
	if s.sampling {
		s.res.HeapSamples = append(s.res.HeapSamples,
			HeapSample{Time: p.Clock.Now() - s.iterStart, Used: s.heap.Used()})
	}
	return nil
}

func (s *twolmStepper) endIter() error {
	p, iter := s.p, s.iter
	s.collect()
	s.it.GCTime = s.gcPauses - s.gcBase
	s.it.Time = p.Clock.Now() - s.iterStart
	s.rm.iter(s.it.Time)
	s.it.Fast = p.Fast.Counters().Sub(s.fastBase)
	s.it.Slow = p.Slow.Counters().Sub(s.slowBase)
	s.it.Cache = s.cache.Stats().Sub(s.cacheBase)
	s.res.Iterations = append(s.res.Iterations, s.it)

	if s.cfg.CheckInvariants {
		if err := s.heap.CheckInvariants(); err != nil {
			return fmt.Errorf("engine: 2LM heap after iter %d: %w", iter, err)
		}
		for id := range s.live {
			if s.live[id] && !persistentTensor(s.sched, id) {
				return fmt.Errorf("engine: 2LM leaked tensor %s after iter %d",
					s.model.Tensors[id].Name, iter)
			}
		}
	}
	return nil
}

func (s *twolmStepper) Finish() (*Result, error) {
	if !s.done {
		return nil, fmt.Errorf("engine: finish before run completed")
	}
	if s.finished {
		return nil, fmt.Errorf("engine: double finish")
	}
	s.finished = true
	s.res.Cache = twolm.Stats{}
	finishMetrics(s.cfg.Metrics, s.model.Name, s.mode, s.p.Clock.Now())
	s.release()
	s.res.aggregate()
	return s.res, nil
}

// persistentTensor reports whether id is in the schedule's persistent set.
func persistentTensor(sched *trace.Schedule, id int) bool {
	for _, p := range sched.Persistent {
		if p == id {
			return true
		}
	}
	return false
}
