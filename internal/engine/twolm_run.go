package engine

import (
	"fmt"

	"cachedarrays/internal/alloc"
	"cachedarrays/internal/models"
	"cachedarrays/internal/trace"
	"cachedarrays/internal/twolm"
)

// Run2LM executes a training run in the paper's baseline configuration:
// Intel memory mode, where the whole heap lives in a flat NVRAM-backed
// physical address space fronted by a transparent direct-mapped DRAM cache.
//
// memOpt selects "2LM: M" (eagerly free dead tensors, so physical pages
// are reused and stay cache-resident) versus "2LM: Ø" (rely on deferred
// collection, so the heap grows monotonically until the collector runs —
// Fig. 3's rising curve).
//
// As in the paper, the baseline uses the CachedArrays allocator over a
// pre-allocated heap (§IV-A: "we use 2LM with the CachedArrays allocator
// as the baseline"), so allocation-side effects are identical across
// systems and only the data-movement mechanism differs.
func Run2LM(model *models.Model, memOpt bool, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	p, release := acquirePlatform(cfg)
	cache, err := twolm.New(p.Fast, p.Slow, cfg.TwoLM)
	if err != nil {
		return nil, err
	}
	sched := trace.New(model)
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	mode := "2LM:0"
	if memOpt {
		mode = "2LM:M"
	}
	res := &Result{ModelName: model.Name, Mode: mode, Config: cfg}
	res.recordPeaks(p)

	heap := alloc.NewFreeList(p.Slow.Capacity, alloc.FirstFit)
	wirePlatformMetrics(cfg.Metrics, p)
	rm := newRunMetrics(cfg.Metrics)
	if cfg.Metrics.Enabled() {
		cfg.Metrics.Gauge("twolm_heap_used_bytes", func() float64 { return float64(heap.Used()) })
		cfg.Metrics.CounterFunc("twolm_cache_hits", func() float64 { return float64(cache.Stats().Hits) })
		cfg.Metrics.CounterFunc("twolm_cache_clean_misses", func() float64 { return float64(cache.Stats().CleanMisses) })
		cfg.Metrics.CounterFunc("twolm_cache_dirty_misses", func() float64 { return float64(cache.Stats().DirtyMisses) })
	}
	addrs := make([]int64, len(model.Tensors))
	live := make([]bool, len(model.Tensors))

	// Deferred-death list for the Ø mode (the GC the paper's Julia
	// runtime provides). Pause constants mirror gcsim.
	var dead []int
	const pauseBase, pausePerObject = 1e-3, 2e-7
	var gcPauses float64
	collect := func() {
		if len(dead) == 0 {
			return
		}
		for _, id := range dead {
			heap.Free(addrs[id])
			live[id] = false
		}
		pause := pauseBase + float64(len(dead))*pausePerObject
		p.Clock.Advance(pause)
		gcPauses += pause
		res.GC.Collections++
		res.GC.ObjectsFreed += int64(len(dead))
		dead = dead[:0]
	}
	allocate := func(id int) error {
		a, err := heap.Alloc(model.Tensors[id].Bytes)
		if err == alloc.ErrExhausted && len(dead) > 0 {
			// Memory pressure: run the collector and retry — the
			// mid-iteration GC visible in Fig. 3's 2LM:Ø curve.
			collect()
			a, err = heap.Alloc(model.Tensors[id].Bytes)
		}
		if err != nil {
			return fmt.Errorf("engine: 2LM heap: allocating %s: %w", model.Tensors[id].Name, err)
		}
		addrs[id] = a
		live[id] = true
		return nil
	}

	for _, id := range sched.Persistent {
		if err := allocate(id); err != nil {
			return nil, err
		}
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		iterStart := p.Clock.Now()
		fastBase, slowBase := p.Fast.Counters(), p.Slow.Counters()
		cacheBase := cache.Stats()
		gcBase := gcPauses
		var it IterationMetrics
		sampling := cfg.SampleHeap && iter == cfg.Iterations-1
		if sampling {
			res.HeapSamples = res.HeapSamples[:0]
		}

		for ki := range model.Kernels {
			k := &model.Kernels[ki]
			for _, id := range sched.AllocBefore[ki] {
				if err := allocate(id); err != nil {
					return nil, err
				}
			}
			// The hardware cache services every access; there are
			// no hints and no explicit movement. Kernel-internal
			// re-reads (ReadFactor) hit the DRAM cache after the
			// first pass brings the lines in — the one advantage a
			// transparent cache has over in-place NVRAM reads.
			// App-side DRAM streaming overlaps with compute like
			// any kernel traffic; demand-miss handling (fills,
			// metadata, writebacks) stalls the kernel.
			var cost twolm.Cost
			rf := k.EffectiveReadFactor()
			for _, id := range k.Reads {
				cost.Add(cache.Access(addrs[id], model.Tensors[id].Bytes, false))
				if !amplified(model.Tensors[id].Kind) {
					continue
				}
				if rereads := int64(float64(model.Tensors[id].Bytes) * (rf - 1)); rereads > 0 {
					cost.App += p.Fast.Read(rereads, kernelAccess)
				}
			}
			for _, id := range k.Writes {
				cost.Add(cache.Access(addrs[id], model.Tensors[id].Bytes, true))
			}
			kt := k.FLOPs/p.Compute.PeakFlops + p.Compute.LaunchOverhead
			if cost.App > kt {
				kt = cost.App
			}
			kt += cost.Stall()
			p.Clock.Advance(kt)
			it.ComputeTime += kt
			rm.kernel(kt)

			for _, id := range sched.RetireAfter[ki] {
				if memOpt {
					// 2LM:M — free eagerly; the physical pages
					// are recycled while their lines are still
					// cache-resident.
					heap.Free(addrs[id])
					live[id] = false
				} else {
					dead = append(dead, id)
				}
			}
			if heap.Used() > res.PeakHeap {
				res.PeakHeap = heap.Used()
			}
			if sampling {
				res.HeapSamples = append(res.HeapSamples,
					HeapSample{Time: p.Clock.Now() - iterStart, Used: heap.Used()})
			}
		}

		collect()
		it.GCTime = gcPauses - gcBase
		it.Time = p.Clock.Now() - iterStart
		rm.iter(it.Time)
		it.Fast = p.Fast.Counters().Sub(fastBase)
		it.Slow = p.Slow.Counters().Sub(slowBase)
		it.Cache = cache.Stats().Sub(cacheBase)
		res.Iterations = append(res.Iterations, it)

		if cfg.CheckInvariants {
			if err := heap.CheckInvariants(); err != nil {
				return nil, fmt.Errorf("engine: 2LM heap after iter %d: %w", iter, err)
			}
			for id := range live {
				if live[id] && !persistentTensor(sched, id) {
					return nil, fmt.Errorf("engine: 2LM leaked tensor %s after iter %d",
						model.Tensors[id].Name, iter)
				}
			}
		}
	}
	res.Cache = twolm.Stats{}
	finishMetrics(cfg.Metrics, model.Name, mode, p.Clock.Now())
	release()
	res.aggregate()
	return res, nil
}

// persistentTensor reports whether id is in the schedule's persistent set.
func persistentTensor(sched *trace.Schedule, id int) bool {
	for _, p := range sched.Persistent {
		if p == id {
			return true
		}
	}
	return false
}
