package engine

import (
	"fmt"

	"cachedarrays/internal/gcsim"
	"cachedarrays/internal/metrics"
	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
)

// Adaptive policy variants: names accepted by RunCAAdaptive and exposed
// as scheduler modes. Each stacks adaptive layers on the full CA:LMP
// switch set — the adaptive layers refine the strongest static baseline
// rather than replace it.
const (
	// AdaptiveOG is online guidance alone: interval-based profiling and
	// re-placement steered by the live metrics registry.
	AdaptiveOG = "CA:OG"
	// AdaptiveTG is the thrash guard alone over the static policy:
	// evict/fetch ping-pong detection with fetch backoff.
	AdaptiveTG = "CA:TG"
	// AdaptiveOGTG is the full stack: thrash guard over online guidance.
	AdaptiveOGTG = "CA:OGTG"
)

// AdaptiveModes lists the adaptive variants in rank order.
var AdaptiveModes = []string{AdaptiveOG, AdaptiveTG, AdaptiveOGTG}

// RunCAAdaptive executes a training run under an adaptive policy stack.
// The stack always needs a live metrics registry (online guidance steers
// by the slow tier's bandwidth-utilization series); when the caller did
// not provide one, a private registry is created for the run. Sampling
// never advances the clock or perturbs simulation state, so an adaptive
// run with a private registry is exactly as deterministic — and as
// cacheable — as a static one.
func RunCAAdaptive(model *models.Model, variant string, cfg Config) (*Result, error) {
	st, err := newAdaptiveStepper(model, variant, cfg, nil)
	if err != nil {
		return nil, err
	}
	return Drive(st)
}

// newAdaptiveStepper builds the event-driven form of RunCAAdaptive.
func newAdaptiveStepper(model *models.Model, variant string, cfg Config, env *Env) (*caStepper, error) {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.New(0)
	}
	p, release := env.acquire(cfg)
	m, err := newManager(p, cfg, env)
	if err != nil {
		return nil, err
	}
	gc := gcsim.New(m, p.Clock)
	pcfg := policy.ConfigFor(policy.CALMP)
	pcfg.PreferCleanVictims = cfg.PreferCleanVictims
	base := policy.NewTieredConfig(m, pcfg, variant, gc)
	slowUtil := "mem_" + p.Slow.Name + "_bw_util"
	now := p.Clock.Now

	var pol policy.Runtime
	switch variant {
	case AdaptiveOG:
		pol = policy.NewOnlineGuidance(base, policy.GuidanceConfig{}, now, reg, slowUtil)
	case AdaptiveTG:
		pol = policy.NewThrashGuard(base, base, policy.ThrashConfig{}, now)
	case AdaptiveOGTG:
		og := policy.NewOnlineGuidance(base, policy.GuidanceConfig{}, now, reg, slowUtil)
		pol = policy.NewThrashGuard(og, base, policy.ThrashConfig{}, now)
	default:
		return nil, fmt.Errorf("engine: unknown adaptive variant %q", variant)
	}
	return newCAStepper(model, pol, gc, p, m, cfg, reg, release, env)
}
