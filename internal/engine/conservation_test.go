package engine

import (
	"testing"

	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/units"
)

// TestByteConservation cross-checks the two independent accounting layers:
// the data manager's movement statistics must be consistent with the
// devices' traffic counters. Every fast->slow byte the manager moved is an
// NVRAM write by the copy engine; kernel writes add on top.
func TestByteConservation(t *testing.T) {
	m := models.DenseNet(264, 504)
	r, err := RunCA(m, policy.CALM, Config{Iterations: 2, FastCapacity: 60 * units.GB})
	if err != nil {
		t.Fatal(err)
	}
	var nvWrites, nvReads int64
	for _, it := range r.Iterations {
		nvWrites += it.Slow.WriteBytes
		nvReads += it.Slow.ReadBytes
	}
	// Copy-engine movement is a lower bound on device traffic (kernels
	// may add NVRAM-resident access on top).
	if r.DM.BytesFastToSlow > nvWrites {
		t.Errorf("manager moved %s fast->slow but NVRAM saw only %s of writes",
			units.Bytes(r.DM.BytesFastToSlow), units.Bytes(nvWrites))
	}
	if r.DM.BytesSlowToFast > nvReads {
		t.Errorf("manager moved %s slow->fast but NVRAM saw only %s of reads",
			units.Bytes(r.DM.BytesSlowToFast), units.Bytes(nvReads))
	}
	// Policy eviction bytes equal the manager's fast->slow movement plus
	// elided (copy-free) evictions; every eviction is one or the other.
	if r.Policy.EvictionBytes < r.DM.BytesFastToSlow {
		t.Errorf("eviction bytes %s below manager fast->slow movement %s",
			units.Bytes(r.Policy.EvictionBytes), units.Bytes(r.DM.BytesFastToSlow))
	}
}

// Test2LMIterationConsistency mirrors the paper's methodology check for
// the baseline: steady-state iterations must agree.
func Test2LMIterationConsistency(t *testing.T) {
	m := models.ResNet(200, 640)
	r, err := Run2LM(m, true, Config{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	base := r.Iterations[1].Time
	for i := 2; i < len(r.Iterations); i++ {
		d := r.Iterations[i].Time/base - 1
		if d < -0.05 || d > 0.05 {
			t.Errorf("iteration %d deviates %.1f%%", i, 100*d)
		}
	}
}

// TestResultStringReadable guards the human-facing summary line.
func TestResultStringReadable(t *testing.T) {
	m := models.MLP(64, []int{32}, 4, 8)
	r, err := RunCA(m, policy.CALM, Config{Iterations: 1,
		FastCapacity: units.GB, SlowCapacity: 4 * units.GB})
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	for _, want := range []string{"mlp", "CA:LM", "iter="} {
		if !containsStr(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
