package engine

import (
	"bytes"
	"testing"

	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/units"
)

// TestJSONWorkloadRunsIdentically loads a model through the JSON workload
// format and verifies the engine produces the same result as the in-memory
// original — the custom-trace path is a first-class citizen.
func TestJSONWorkloadRunsIdentically(t *testing.T) {
	orig := models.MLP(2048, []int{4096, 2048}, 100, 256)
	var buf bytes.Buffer
	if err := orig.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := models.LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Iterations: 2, FastCapacity: 64 * units.MB, SlowCapacity: 8 * units.GB}
	a, err := RunCA(orig, policy.CALM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCA(loaded, policy.CALM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.IterTime != b.IterTime || a.Slow.WriteBytes != b.Slow.WriteBytes {
		t.Fatalf("JSON round trip changed behaviour: %.6f/%d vs %.6f/%d",
			a.IterTime, a.Slow.WriteBytes, b.IterTime, b.Slow.WriteBytes)
	}
}

// TestTraceEventsrecorded verifies the engine surfaces the event tail.
func TestTraceEventsRecorded(t *testing.T) {
	m := models.MLP(2048, []int{4096}, 100, 256)
	r, err := RunCA(m, policy.CALM, Config{
		Iterations: 1, FastCapacity: 32 * units.MB, SlowCapacity: units.GB,
		TraceEvents: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Events) == 0 || len(r.Events) > 32 {
		t.Fatalf("events = %d", len(r.Events))
	}
	for _, e := range r.Events {
		if e.String() == "" {
			t.Fatal("unrenderable event")
		}
	}
}

// TestAllocatorConfigErrors verifies unknown allocators fail fast.
func TestAllocatorConfigErrors(t *testing.T) {
	m := models.MLP(16, []int{8}, 2, 4)
	if _, err := RunCA(m, policy.CALM, Config{Iterations: 1, Allocator: "slab"}); err == nil {
		t.Error("unknown allocator accepted")
	}
	// Buddy works end to end.
	if _, err := RunCA(m, policy.CALM, Config{
		Iterations: 1, Allocator: "buddy",
		FastCapacity: 64 * units.MB, SlowCapacity: units.GB, CheckInvariants: true,
	}); err != nil {
		t.Errorf("buddy allocator run failed: %v", err)
	}
}
