package engine

import (
	"reflect"
	"testing"

	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/tracing"
)

// TestFaultlessInjectorByteIdentical is the zero-cost contract of the
// fault layer: wiring the injector with an episode-free schedule must
// leave every observable of a run — per-iteration metrics, device
// counters, policy/dm/gc statistics, and the full execution trace (from
// which the results CSVs are pure functions) — exactly identical to a run
// with no injector at all.
func TestFaultlessInjectorByteIdentical(t *testing.T) {
	model := models.ResNet(50, 256)
	base := Config{Iterations: 3, Trace: true, CheckInvariants: true}

	r1, err := RunCA(model, policy.CALMP, base)
	if err != nil {
		t.Fatal(err)
	}
	withInjector := base
	withInjector.FaultSpec = "seed=12345" // injector wired, no episodes
	r2, err := RunCA(model, policy.CALMP, withInjector)
	if err != nil {
		t.Fatal(err)
	}

	if err := tracing.Verify(r1.Trace); err != nil {
		t.Fatalf("baseline trace: %v", err)
	}
	if err := tracing.Verify(r2.Trace); err != nil {
		t.Fatalf("injector trace: %v", err)
	}
	if r2.Faults.Total() != 0 {
		t.Fatalf("episode-free injector fired: %+v", r2.Faults)
	}
	// The configs differ by construction; everything else must not.
	r1.Config, r2.Config = Config{}, Config{}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("results diverged:\n  iter %v vs %v\n  dm %+v vs %+v\n  policy %+v vs %+v\n  trace %d vs %d events",
			r1.IterTime, r2.IterTime, r1.DM, r2.DM, r1.Policy, r2.Policy,
			len(r1.Trace), len(r2.Trace))
	}
}

// TestPaperScaleFaultedRunCompletes is the graceful-degradation contract
// at paper scale: a full CA:LMP training run under a seeded schedule
// covering every fault kind must complete without panic, with the
// invariants checker auditing every clock advance, and must actually have
// exercised the degradation paths.
func TestPaperScaleFaultedRunCompletes(t *testing.T) {
	model := models.ResNet(200, 2048)
	cfg := Config{
		Iterations:        2,
		Trace:             true,
		CheckEveryAdvance: true,
		FaultSpec: "seed=7;" +
			"allocfail:fast:t0=0,p=0.2;" +
			"copyerr:t0=0,p=0.1;" +
			"copystall:nvram:t0=0,stall=2ms;" +
			"bw:nvram:t0=10,t1=40,factor=0.25;" +
			"shrink:fast:t0=30,bytes=60GB",
	}
	r, err := RunCA(model, policy.CALMP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.InvariantChecks == 0 {
		t.Fatal("no invariant audits ran despite CheckEveryAdvance")
	}
	if r.Faults.Total() == 0 {
		t.Fatalf("fault schedule never fired: %+v", r.Faults)
	}
	if r.Faults.AllocFailures == 0 || r.Faults.CopyErrors == 0 || r.Faults.CopyStalls == 0 {
		t.Fatalf("expected every per-opportunity fault kind to fire: %+v", r.Faults)
	}
	if r.DM.AllocRetries == 0 || r.DM.CopyRetries == 0 {
		t.Fatalf("manager never retried: %+v", r.DM)
	}
	// The trace must attribute the degradation: fault and retry events
	// carry the hint in whose window they fired.
	var faultEv, retryEv int
	for _, e := range r.Trace {
		switch e.Kind {
		case tracing.KindFault:
			faultEv++
		case tracing.KindRetry:
			retryEv++
		}
	}
	if faultEv == 0 || retryEv == 0 {
		t.Fatalf("trace missing fault attribution: %d fault, %d retry events", faultEv, retryEv)
	}
	// The trace's bit-exact decomposition must survive retry backoff
	// landing inside hint windows.
	if err := tracing.Verify(r.Trace); err != nil {
		t.Fatalf("faulted trace failed verification: %v", err)
	}
}
