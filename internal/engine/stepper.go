package engine

import (
	"errors"
	"fmt"

	"cachedarrays/internal/alloc"
	"cachedarrays/internal/invariants"
	"cachedarrays/internal/memsim"
	"cachedarrays/internal/metrics"
	"cachedarrays/internal/models"
	"cachedarrays/internal/pagemig"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/tracing"
)

// Stepper is the event-driven core of a run: the per-mode execution loops
// (CA, 2LM, OS page migration, AutoTM plans) are all expressed as a
// sequence of discrete events — one kernel with its surrounding hints and
// annotations, or one end-of-iteration boundary (drain, GC, defrag,
// audits) — that a driver dispatches one at a time. Run to completion
// (Drive) this is byte-identical to the old straight-line loops; dispatched
// by the cluster simulator, many jobs interleave their events on one
// shared platform under a single virtual clock.
type Stepper interface {
	// Step executes the run's next event and returns the virtual time at
	// which the job can next run — the global clock after the event, i.e.
	// the job's next-event time in a timestamp-ordered dispatch loop.
	Step() (float64, error)
	// Done reports whether every event has been executed.
	Done() bool
	// Finish finalizes and returns the result. Call exactly once, after
	// Done; it aggregates the measured iterations, embeds trace totals,
	// flushes metrics and returns the platform to the pool (solo runs).
	Finish() (*Result, error)
}

// ErrUnknownMode is returned by NewStepper for a mode name it does not
// recognize (the scheduler normalizes aliases before retrying).
var ErrUnknownMode = errors.New("engine: unknown mode")

// Env is the execution environment a cluster dispatch loop shares between
// the steppers it multiplexes. A nil Env (the solo path) makes each
// stepper acquire its own pooled platform and attach its instrumentation
// hooks directly to the clock.
type Env struct {
	// Platform, when non-nil, is the shared platform every tenant runs
	// on. The owner configures it (movement discipline, capacities) and
	// resets/releases it; steppers must not.
	Platform *memsim.Platform
	// FastQuota/SlowQuota, when non-nil, arbitrate the shared device
	// capacity between tenants: every tenant's allocator is wrapped so
	// the aggregate bytes held can never exceed the device, and a tenant
	// squeezed by its neighbours sees ErrExhausted exactly as it would on
	// a smaller device.
	FastQuota *alloc.Quota
	SlowQuota *alloc.Quota
	// OnChecker receives each tenant's invariant checker instead of
	// letting it claim the clock's single OnAdvance hook; the owner fans
	// the hook out to every registered checker.
	OnChecker func(*invariants.Checker)
	// OnRegistry receives each tenant's metrics registry instead of
	// letting it claim the clock's single Metrics attachment; the owner
	// ticks every registered registry from its fan-out hook.
	OnRegistry func(*metrics.Registry)
	// Tracer, when non-nil, is the owner-managed shared recorder (the
	// cluster's tenant-tagging mux) already installed in the platform's
	// tracer slot. Traced steppers emit into it instead of claiming the
	// slot themselves, and leave their events out of their own Result —
	// the owner assembles the multiplexed trace.
	Tracer *tracing.Recorder
	// Traffic, when Tracer is set, returns the device read/write bytes
	// (fast read, fast write, slow read, slow write) the owner attributed
	// to the currently-dispatched tenant — the per-tenant replacement for
	// the whole-platform counters a solo run embeds in its trace totals.
	Traffic func() (fr, fw, sr, sw int64)
}

// shared reports whether steppers run on an owner-managed platform.
func (e *Env) shared() bool { return e != nil && e.Platform != nil }

// acquire returns the run's platform: the shared one (with a no-op
// release — the owner resets it) or a freshly acquired pooled platform.
func (e *Env) acquire(cfg Config) (*memsim.Platform, func()) {
	if e.shared() {
		return e.Platform, func() {}
	}
	return acquirePlatform(cfg)
}

// limitFast wraps a with the shared fast-tier budget, if any.
func (e *Env) limitFast(a alloc.Allocator) alloc.Allocator {
	if e == nil {
		return a
	}
	return alloc.Limit(a, e.FastQuota)
}

// limitSlow wraps a with the shared slow-tier budget, if any.
func (e *Env) limitSlow(a alloc.Allocator) alloc.Allocator {
	if e == nil {
		return a
	}
	return alloc.Limit(a, e.SlowQuota)
}

// attachChecker wires an invariant checker: to the clock on the solo
// path, to the owner's fan-out in a shared environment.
func (e *Env) attachChecker(chk *invariants.Checker) {
	if e.shared() && e.OnChecker != nil {
		e.OnChecker(chk)
		return
	}
	chk.Attach()
}

// attachRegistry wires a metrics registry's sampling: the clock drives it
// on the solo path, the owner's fan-out in a shared environment.
func (e *Env) attachRegistry(reg *metrics.Registry, p *memsim.Platform) {
	if !reg.Enabled() {
		return
	}
	if e.shared() && e.OnRegistry != nil {
		e.OnRegistry(reg)
		return
	}
	p.Clock.Metrics = reg
}

// AcquirePlatform exposes the pooled-platform path to the cluster
// simulator: it resolves the config's defaults (pool keys use resolved
// capacities) and returns a platform plus the release function that
// resets it and returns it to the pool. Release only a platform in a
// known-good state; abandon one a failed run may have corrupted.
func AcquirePlatform(cfg Config) (*memsim.Platform, func()) {
	return acquirePlatform(cfg.withDefaults())
}

// Drive runs a stepper to completion: the solo execution path, and the
// proof obligation the cluster's N=1 property test leans on — a driven
// stepper is the run.
func Drive(st Stepper) (*Result, error) {
	for !st.Done() {
		if _, err := st.Step(); err != nil {
			return nil, err
		}
	}
	return st.Finish()
}

// NewStepper builds the event-driven form of a run in the given canonical
// operating mode ("2LM:0", "2LM:M", "CA:0", "CA:L", "CA:LM", "CA:LMP",
// "CA:OG", "CA:TG", "CA:OGTG", "OS:page", "AutoTM"). It is the single
// mode dispatcher underneath sched.RunMode and the cluster simulator.
func NewStepper(m *models.Model, mode string, cfg Config, env *Env) (Stepper, error) {
	switch mode {
	case "2LM:0":
		return new2LMStepper(m, false, cfg, env)
	case "2LM:M":
		return new2LMStepper(m, true, cfg, env)
	case "CA:0":
		return newCAModeStepper(m, policy.CAZero, cfg, env)
	case "CA:L":
		return newCAModeStepper(m, policy.CAL, cfg, env)
	case "CA:LM":
		return newCAModeStepper(m, policy.CALM, cfg, env)
	case "CA:LMP":
		return newCAModeStepper(m, policy.CALMP, cfg, env)
	case AdaptiveOG, AdaptiveTG, AdaptiveOGTG:
		return newAdaptiveStepper(m, mode, cfg, env)
	case "OS:page":
		return newPageMigStepper(m, pagemig.DefaultConfig(), cfg, env)
	case "AutoTM":
		return newPlannedStepper(m, nil, cfg, env)
	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownMode, mode)
	}
}
