package engine

import (
	"cachedarrays/internal/memsim"
	"cachedarrays/internal/metrics"
)

// registerPlatformMetrics registers the device- and copy-engine-level
// series: cumulative traffic and busy time per device, achieved bandwidth
// as a fraction of the mixed peak (the Fig. 6 bus-utilization metric,
// sampled over time instead of averaged per run), and the asynchronous
// mover's queue depth and backlog. A nil registry registers nothing.
// Sampling is wired separately (Env.attachRegistry): the clock drives it
// on a solo run, the cluster's fan-out hook on a shared platform.
// RegisterPlatformMetrics exposes the platform series to owners outside
// the engine: the cluster registers them into its cluster-level registry
// so a multi-tenant run exports the shared devices' traffic and
// utilization alongside the per-tenant series.
func RegisterPlatformMetrics(reg *metrics.Registry, p *memsim.Platform) {
	registerPlatformMetrics(reg, p)
}

func registerPlatformMetrics(reg *metrics.Registry, p *memsim.Platform) {
	if !reg.Enabled() {
		return
	}
	for _, d := range []*memsim.Device{p.Fast, p.Slow} {
		name := d.Name
		reg.CounterFunc("mem_"+name+"_read_bytes", func() float64 {
			return float64(d.Counters().ReadBytes)
		})
		reg.CounterFunc("mem_"+name+"_write_bytes", func() float64 {
			return float64(d.Counters().WriteBytes)
		})
		reg.CounterFunc("mem_"+name+"_busy_seconds", func() float64 {
			return d.Counters().BusyTime
		})
		peak := (d.Profile.PeakRead + d.Profile.PeakWrite) / 2
		reg.Gauge("mem_"+name+"_bw_util", func() float64 {
			now := p.Clock.Now()
			if now <= 0 || peak <= 0 {
				return 0
			}
			return float64(d.Counters().TotalBytes()) / now / peak
		})
	}
	reg.Gauge("copy_queue_depth", func() float64 { return float64(p.Copier.QueueDepth()) })
	reg.Gauge("copy_backlog_seconds", func() float64 { return p.Copier.Backlog() })
}

// runMetrics is the engine's own instrumentation: the per-iteration kernel
// vs. stall split as cumulative counters plus duration histograms. All
// fields are nil when metrics are off — every method on them is a no-op,
// so call sites stay unconditional.
type runMetrics struct {
	kernelSeconds *metrics.Counter
	stallSeconds  *metrics.Counter
	iterations    *metrics.Counter
	kernelHist    *metrics.Histogram
	iterHist      *metrics.Histogram
}

// newRunMetrics registers the engine series. With a nil registry every
// field stays nil (nil-safe no-ops).
func newRunMetrics(reg *metrics.Registry) runMetrics {
	return runMetrics{
		kernelSeconds: reg.Counter("engine_kernel_seconds"),
		stallSeconds:  reg.Counter("engine_stall_seconds"),
		iterations:    reg.Counter("engine_iterations"),
		kernelHist:    reg.Histogram("engine_kernel"),
		iterHist:      reg.Histogram("engine_iter"),
	}
}

func (rm runMetrics) kernel(dt float64) {
	rm.kernelSeconds.Add(dt)
	rm.kernelHist.Observe(dt)
}

func (rm runMetrics) stall(dt float64) {
	if dt > 0 {
		rm.stallSeconds.Add(dt)
	}
}

func (rm runMetrics) iter(dt float64) {
	rm.iterations.Inc()
	rm.iterHist.Observe(dt)
}

// finishMetrics stamps the run identity into the registry and takes the
// final sample so the series ends at the run's last virtual instant.
func finishMetrics(reg *metrics.Registry, model, mode string, now float64) {
	if !reg.Enabled() {
		return
	}
	reg.SetMeta("model", model)
	reg.SetMeta("mode", mode)
	reg.Flush(now)
}
