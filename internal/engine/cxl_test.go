package engine

import (
	"testing"

	"cachedarrays/internal/policy"
)

// TestCXLPortability asserts the §VI claim: swapping the slow tier from
// NVRAM to CXL remote memory — with zero policy changes — preserves the
// optimization ordering, while the symmetric link compresses the gaps.
func TestCXLPortability(t *testing.T) {
	cfg := Config{Iterations: 2, CheckInvariants: true, SlowTier: "cxl"}
	r0, err := RunCA(denseLarge, policy.CAZero, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := RunCA(denseLarge, policy.CAL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rlm, err := RunCA(denseLarge, policy.CALM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(rlm.IterTime < rl.IterTime && rl.IterTime < r0.IterTime) {
		t.Errorf("CXL ordering broken: 0=%.1f L=%.1f LM=%.1f",
			r0.IterTime, rl.IterTime, rlm.IterTime)
	}
	// The gap compresses relative to NVRAM (write symmetry).
	nv0 := runCAT(t, denseLarge, policy.CAZero, checked)
	nvLM := runCAT(t, denseLarge, policy.CALM, checked)
	cxlGap := r0.IterTime / rlm.IterTime
	nvGap := nv0.IterTime / nvLM.IterTime
	if cxlGap >= nvGap {
		t.Errorf("CXL gap (%.2fx) should be below the NVRAM gap (%.2fx)", cxlGap, nvGap)
	}
}

// TestUnknownSlowTierFallsBack ensures an unknown tier name keeps the
// NVRAM default rather than failing (the field is advisory).
func TestUnknownSlowTier(t *testing.T) {
	p, _ := acquirePlatform(Config{SlowTier: "weird"}.withDefaults())
	if p.Slow.Name != "nvram" {
		t.Fatalf("unknown tier produced device %q", p.Slow.Name)
	}
	c, _ := acquirePlatform(Config{SlowTier: "cxl"}.withDefaults())
	if c.Slow.Name != "cxl" {
		t.Fatalf("cxl tier produced device %q", c.Slow.Name)
	}
}
