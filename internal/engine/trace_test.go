package engine

import (
	"testing"

	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/tracing"
	"cachedarrays/internal/units"
)

// TestTraceConsistencyVGG416 is the acceptance check of the tracing
// subsystem: a paper-scale VGG 416 run under CA:LMP yields a trace whose
// event sums reproduce the run's published aggregates *exactly* — integer
// byte counters bit-for-bit, per-iteration stall seconds by exact float
// equality.
func TestTraceConsistencyVGG416(t *testing.T) {
	res, err := RunCA(vggLarge, policy.CALMP, Config{Iterations: 4, Trace: true})
	if err != nil {
		t.Fatalf("RunCA: %v", err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("Config.Trace set but Result.Trace empty")
	}
	if err := tracing.Verify(res.Trace); err != nil {
		t.Fatal(err)
	}
	// The trace must actually have substance: transfers, decisions,
	// kernels and stalls all present for a DRAM-overflowing model.
	counts := map[tracing.Kind]int{}
	for _, e := range res.Trace {
		counts[e.Kind]++
	}
	for _, k := range []tracing.Kind{tracing.KindXfer, tracing.KindCopy,
		tracing.KindDecision, tracing.KindKernel, tracing.KindKernelIO,
		tracing.KindStall, tracing.KindBind, tracing.KindIter, tracing.KindTotals} {
		if counts[k] == 0 {
			t.Errorf("trace has no %q events", k)
		}
	}
	if got, want := counts[tracing.KindKernel], 4*len(vggLarge.Kernels); got != want {
		t.Errorf("kernel events: got %d, want %d", got, want)
	}
	if got, want := counts[tracing.KindIter], 4; got != want {
		t.Errorf("iter events: got %d, want %d", got, want)
	}
}

// TestTraceConsistencyAllModes runs the verifier across every operating
// mode, both movement designs and the CXL tier at reduced scale.
func TestTraceConsistencyAllModes(t *testing.T) {
	m := models.ResNet(50, 128)
	small := Config{Iterations: 3, Trace: true,
		FastCapacity: 4 * units.GB, SlowCapacity: 64 * units.GB}
	for _, mode := range policy.Modes {
		res, err := RunCA(m, mode, small)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := tracing.Verify(res.Trace); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
	async := small
	async.AsyncMovement = true
	async.HintLookahead = 2
	res, err := RunCA(m, policy.CALMP, async)
	if err != nil {
		t.Fatalf("async: %v", err)
	}
	if err := tracing.Verify(res.Trace); err != nil {
		t.Errorf("async: %v", err)
	}
	cxl := small
	cxl.SlowTier = "cxl"
	res, err = RunCA(m, policy.CALMP, cxl)
	if err != nil {
		t.Fatalf("cxl: %v", err)
	}
	if err := tracing.Verify(res.Trace); err != nil {
		t.Errorf("cxl: %v", err)
	}
}

// TestTraceDoesNotPerturbRun asserts tracing is observation only: the same
// configuration with and without Config.Trace produces identical results.
func TestTraceDoesNotPerturbRun(t *testing.T) {
	m := models.ResNet(50, 128)
	cfg := Config{Iterations: 3, FastCapacity: 4 * units.GB, SlowCapacity: 64 * units.GB}
	plain, err := RunCA(m, policy.CALMP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = true
	traced, err := RunCA(m, policy.CALMP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.IterTime != traced.IterTime || plain.MoveTime != traced.MoveTime ||
		plain.ComputeTime != traced.ComputeTime || plain.GCTime != traced.GCTime {
		t.Errorf("tracing changed timings: plain %+v, traced %+v",
			plain.Iterations, traced.Iterations)
	}
	if plain.Fast != traced.Fast || plain.Slow != traced.Slow {
		t.Errorf("tracing changed traffic: plain fast=%+v slow=%+v, traced fast=%+v slow=%+v",
			plain.Fast, plain.Slow, traced.Fast, traced.Slow)
	}
	if plain.DM != traced.DM {
		t.Errorf("tracing changed dm stats: plain %+v, traced %+v", plain.DM, traced.DM)
	}
	if plain.Policy != traced.Policy {
		t.Errorf("tracing changed policy stats: plain %+v, traced %+v",
			plain.Policy, traced.Policy)
	}
}

// TestTraceBindsEveryObject asserts attribution works: every object that
// appears in a copy event was bound to a tensor name first.
func TestTraceBindsEveryObject(t *testing.T) {
	m := models.ResNet(50, 128)
	res, err := RunCA(m, policy.CALMP, Config{Iterations: 2, Trace: true,
		FastCapacity: 4 * units.GB, SlowCapacity: 64 * units.GB})
	if err != nil {
		t.Fatal(err)
	}
	bound := map[uint64]bool{}
	for _, e := range res.Trace {
		switch e.Kind {
		case tracing.KindBind:
			bound[e.Obj] = true
		case tracing.KindCopy:
			if e.Obj != 0 && !bound[e.Obj] {
				t.Fatalf("copy of object %d before any bind event", e.Obj)
			}
		}
	}
	if len(bound) == 0 {
		t.Fatal("no bind events recorded")
	}
}
