package engine

import (
	"testing"

	"cachedarrays/internal/models"
	"cachedarrays/internal/planner"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/units"
)

// TestPlannedCompetitiveOnCNNs reproduces the paper's §II concession: a
// static AutoTM-style plan performs comparably to the runtime policy on
// regular CNN workloads (their reuse patterns are fully known offline).
func TestPlannedCompetitiveOnCNNs(t *testing.T) {
	for _, m := range []*models.Model{denseLarge, resnetLarge, vggLarge} {
		pl, err := RunPlanned(m, nil, Config{Iterations: 2, CheckInvariants: true})
		if err != nil {
			t.Fatal(err)
		}
		ca := runCAT(t, m, policy.CALM, checked)
		base := run2LMT(t, m, false, checked)
		// Within 30% of the runtime policy in either direction, and
		// clearly ahead of the unmanaged cache.
		ratio := pl.IterTime / ca.IterTime
		if ratio > 1.3 || ratio < 0.7 {
			t.Errorf("%s: plan %.1fs vs CA:LM %.1fs (%.2fx) — not competitive",
				m.Name, pl.IterTime, ca.IterTime, ratio)
		}
		if pl.IterTime >= base.IterTime {
			t.Errorf("%s: plan (%.1fs) lost to 2LM:0 (%.1fs)", m.Name, pl.IterTime, base.IterTime)
		}
	}
}

// TestPlannedOffloadPatternExecutes checks the planned park/restore copies
// actually run (the vDNN/AutoTM offload pattern).
func TestPlannedOffloadPatternExecutes(t *testing.T) {
	m := models.VGG(116, 320)
	cfg := Config{Iterations: 2, FastCapacity: 60 * units.GB, CheckInvariants: true}
	plan := planner.Build(m, 58*units.GB, planner.DefaultCostModel())
	_, offload, _ := plan.Counts()
	if offload == 0 {
		t.Fatal("no offloads planned")
	}
	r, err := RunPlanned(m, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.DM.BytesFastToSlow == 0 || r.DM.BytesSlowToFast == 0 {
		t.Fatalf("offload copies did not execute: %+v", r.DM)
	}
	if r.MoveTime <= 0 {
		t.Error("no synchronous movement recorded")
	}
}

// TestPlannedPlanSizeMismatch exercises the validation path.
func TestPlannedPlanSizeMismatch(t *testing.T) {
	m := models.MLP(16, []int{8}, 2, 4)
	bad := &planner.Plan{Placement: make([]planner.Placement, 1)}
	if _, err := RunPlanned(m, bad, Config{Iterations: 1}); err == nil {
		t.Fatal("mismatched plan accepted")
	}
}
