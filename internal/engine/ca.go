package engine

import (
	"fmt"

	"cachedarrays/internal/alloc"
	"cachedarrays/internal/dm"
	"cachedarrays/internal/faults"
	"cachedarrays/internal/gcsim"
	"cachedarrays/internal/invariants"
	"cachedarrays/internal/memsim"
	"cachedarrays/internal/metrics"
	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/trace"
	"cachedarrays/internal/tracing"
)

// NVRAMOnly as a FastCapacity requests a zero-DRAM run (the right edge of
// Fig. 7). A plain zero means "paper default".
const NVRAMOnly = -1

// resolveCapacity maps the Config convention (0 = default, NVRAMOnly = 0
// bytes) to a concrete byte count.
func resolveCapacity(c, def int64) int64 {
	switch {
	case c == NVRAMOnly:
		return 0
	case c == 0:
		return def
	default:
		return c
	}
}

// RunCA executes a training run under the CachedArrays runtime in the
// given operating mode.
func RunCA(model *models.Model, mode policy.Mode, cfg Config) (*Result, error) {
	st, err := newCAModeStepper(model, mode, cfg, nil)
	if err != nil {
		return nil, err
	}
	return Drive(st)
}

// newCAModeStepper builds the event-driven form of RunCA.
func newCAModeStepper(model *models.Model, mode policy.Mode, cfg Config, env *Env) (*caStepper, error) {
	cfg = cfg.withDefaults()
	p, release := env.acquire(cfg)
	m, err := newManager(p, cfg, env)
	if err != nil {
		return nil, err
	}
	gc := gcsim.New(m, p.Clock)
	pcfg := policy.ConfigFor(mode)
	pcfg.PreferCleanVictims = cfg.PreferCleanVictims
	pol := policy.NewTieredConfig(m, pcfg, mode.String(), gc)
	return newCAStepper(model, pol, gc, p, m, cfg, cfg.Metrics, release, env)
}

// newManager builds the data manager with the configured heap allocator,
// wrapped with the environment's shared capacity budgets when tenants
// share the platform.
func newManager(p *memsim.Platform, cfg Config, env *Env) (*dm.Manager, error) {
	mk := func(capacity int64) (alloc.Allocator, error) {
		switch cfg.Allocator {
		case "", "firstfit":
			return alloc.NewFreeList(capacity, alloc.FirstFit), nil
		case "bestfit":
			return alloc.NewFreeList(capacity, alloc.BestFit), nil
		case "buddy":
			// Round capacity down to a power of two (the buddy
			// allocator's requirement); the lost tail models the
			// rounding a real deployment would accept.
			c := int64(1)
			for c*2 <= capacity {
				c *= 2
			}
			if capacity == 0 {
				return alloc.NewFreeList(0, alloc.FirstFit), nil
			}
			return alloc.NewBuddy(c, 0)
		default:
			return nil, fmt.Errorf("engine: unknown allocator %q", cfg.Allocator)
		}
	}
	fast, err := mk(p.Fast.Capacity)
	if err != nil {
		return nil, err
	}
	slow, err := mk(p.Slow.Capacity)
	if err != nil {
		return nil, err
	}
	return dm.NewWithAllocators(p, env.limitFast(fast), env.limitSlow(slow)), nil
}

// RunCAConfig is RunCA with explicit policy switches (ablations).
func RunCAConfig(model *models.Model, pcfg policy.Config, name string, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	p, release := acquirePlatform(cfg)
	m, err := newManager(p, cfg, nil)
	if err != nil {
		return nil, err
	}
	gc := gcsim.New(m, p.Clock)
	pol := policy.NewTieredConfig(m, pcfg, name, gc)
	st, err := newCAStepper(model, pol, gc, p, m, cfg, cfg.Metrics, release, nil)
	if err != nil {
		return nil, err
	}
	return Drive(st)
}

// caStepper is the event-driven CachedArrays run: construction performs
// setup (instrumentation wiring, persistent-tensor allocation), every
// Step executes one kernel event or one iteration boundary, and Finish
// produces the Result. Driven to completion it is byte-identical to the
// historical straight-line loop; dispatched by the cluster simulator its
// events interleave with other tenants' on the shared platform.
//
// pol is any policy runtime — the plain Tiered for the paper modes, a
// wrapped adaptive stack for the CA:OG/CA:TG variants. reg is the
// registry the run's series register into; it is usually cfg.Metrics,
// but adaptive runs pass a private registry when the caller did not ask
// for one (the guidance policy steers by live series, and sampling never
// perturbs the simulation, so those runs stay cacheable). release
// returns the platform to the pool and runs only on the success path
// (error paths abandon the platform in whatever state the failure left
// it).
type caStepper struct {
	model   *models.Model
	pol     policy.Runtime
	gc      *gcsim.Collector
	p       *memsim.Platform
	m       *dm.Manager
	cfg     Config
	reg     *metrics.Registry
	release func()

	sched  *trace.Schedule
	res    *Result
	events *dm.EventLog
	tr     *tracing.Recorder
	inj    *faults.Injector
	chk    *invariants.Checker
	rm     runMetrics
	objs   []*dm.Object
	// sharedTrace marks that tr is the cluster's multiplexed recorder: the
	// stepper emits into it but does not own it — Finish leaves the events
	// out of the Result (the owner assembles the full trace) and sources
	// the trace totals' device traffic from the owner's per-tenant
	// attribution instead of the whole-platform counters.
	sharedTrace bool
	traffic     func() (fr, fw, sr, sw int64)

	// Iteration-loop state.
	iter               int
	ki                 int
	inIter             bool
	it                 IterationMetrics
	iterStart          float64
	fastBase, slowBase memsim.Counters
	gcBase             float64
	sampling           bool
	// readyAt tracks, per tensor, when its in-flight asynchronous move
	// completes; kernels wait on their arguments' entries.
	readyAt map[int]float64

	done     bool
	finished bool
}

// newCAStepper performs the run's setup: instrumentation threading and
// the persistent-tensor allocations (the paper pre-allocates and
// first-touches all heaps before measuring, so setup traffic is excluded
// from iteration metrics).
func newCAStepper(model *models.Model, pol policy.Runtime, gc *gcsim.Collector,
	p *memsim.Platform, m *dm.Manager, cfg Config, reg *metrics.Registry,
	release func(), env *Env) (*caStepper, error) {

	sched := trace.New(model)
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	s := &caStepper{
		model: model, pol: pol, gc: gc, p: p, m: m, cfg: cfg, reg: reg,
		release: release, sched: sched,
		res: &Result{ModelName: model.Name, Mode: pol.Name(), Config: cfg},
	}
	s.res.recordPeaks(p)
	if cfg.TraceEvents > 0 {
		s.events = dm.NewEventLog(cfg.TraceEvents)
		m.SetEventLog(s.events)
	}
	// The execution-trace recorder threads through every layer; nil (the
	// default) records nothing and costs the instrumented paths a single
	// branch each.
	if cfg.Trace {
		if env.shared() && env.Tracer != nil {
			// The cluster owns the platform's tracer slot (its mux is
			// already installed there, tagging events by tenant); this
			// stepper only threads the shared recorder through its own
			// layers.
			s.tr = env.Tracer
			s.sharedTrace = true
			s.traffic = env.Traffic
		} else {
			s.tr = tracing.New(p.Clock.Now)
			p.Clock.Tracer = s.tr
			p.Copier.Tracer = s.tr
		}
		m.SetTracer(s.tr)
		pol.SetTracer(s.tr)
		gc.SetTracer(s.tr)
	}
	// The fault injector threads through the same layers as the tracer and
	// follows the same discipline: absent a schedule, every hook stays nil
	// and the run is byte-identical to an uninstrumented build.
	if cfg.FaultSpec != "" {
		fsched, err := faults.Parse(cfg.FaultSpec)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		s.inj = faults.New(fsched, p.Clock.Now)
		s.inj.SetTracer(s.tr)
		p.Fast.Faults = s.inj
		p.Slow.Faults = s.inj
		p.Copier.Faults = s.inj
		m.SetFaults(s.inj)
	}
	if cfg.CheckEveryAdvance {
		s.chk = invariants.New(m, p).WithPolicy(pol)
		env.attachChecker(s.chk)
	}
	// The metrics registry threads through the same layers with the same
	// nil-safety discipline: every layer registers its series, the clock
	// (or the cluster's fan-out hook) drives sampling, and a nil registry
	// records nothing.
	registerPlatformMetrics(reg, p)
	env.attachRegistry(reg, p)
	m.RegisterMetrics(reg)
	pol.RegisterMetrics(reg)
	gc.RegisterMetrics(reg)
	s.rm = newRunMetrics(reg)
	s.objs = make([]*dm.Object, len(model.Tensors))

	for _, id := range sched.Persistent {
		o, err := pol.NewObject(model.Tensors[id].Bytes)
		if err != nil {
			return nil, fmt.Errorf("engine: allocating persistent tensor %s: %w",
				model.Tensors[id].Name, err)
		}
		s.objs[id] = o
		s.tr.Bind(o.ID(), model.Tensors[id].Name, model.Tensors[id].Bytes)
	}
	if cfg.Iterations <= 0 {
		s.done = true
	}
	return s, nil
}

// Done reports whether every iteration has completed.
func (s *caStepper) Done() bool { return s.done }

// Step executes the next event: one kernel (with its hints, transient
// allocations and post-kernel annotations) or one iteration boundary.
func (s *caStepper) Step() (float64, error) {
	if s.done {
		return s.p.Clock.Now(), fmt.Errorf("engine: step after run completed")
	}
	if !s.inIter {
		s.beginIter()
		s.inIter = true
	}
	if s.ki < len(s.model.Kernels) {
		if err := s.kernelStep(); err != nil {
			return s.p.Clock.Now(), err
		}
		s.ki++
		return s.p.Clock.Now(), nil
	}
	if err := s.endIter(); err != nil {
		return s.p.Clock.Now(), err
	}
	s.iter++
	s.ki = 0
	s.inIter = false
	if s.iter >= s.cfg.Iterations {
		s.done = true
	}
	return s.p.Clock.Now(), nil
}

// beginIter opens an iteration's measurement window.
func (s *caStepper) beginIter() {
	s.tr.BeginIter(s.iter)
	s.iterStart = s.p.Clock.Now()
	s.fastBase, s.slowBase = s.p.Fast.Counters(), s.p.Slow.Counters()
	s.gcBase = s.gc.Stats().PauseTime
	s.it = IterationMetrics{}
	s.sampling = s.cfg.SampleHeap && s.iter == s.cfg.Iterations-1
	if s.sampling {
		s.res.HeapSamples = s.res.HeapSamples[:0]
	}
	s.readyAt = nil
	if s.cfg.AsyncMovement {
		s.readyAt = make(map[int]float64, 64)
	}
}

// kernelStep executes kernel s.ki: transient allocations, semantic hints
// (the policy may move data in response), the roofline kernel time with
// its arguments pinned, and the post-kernel archive/retire annotations.
func (s *caStepper) kernelStep() error {
	p, m, pol, model, iter, ki := s.p, s.m, s.pol, s.model, s.iter, s.ki
	k := &model.Kernels[ki]
	s.tr.BeginKernel(ki, k.Name)
	hintStart := p.Clock.Now()

	// Allocate transients whose first use is this kernel.
	for _, id := range s.sched.AllocBefore[ki] {
		o, err := pol.NewObject(model.Tensors[id].Bytes)
		if err != nil {
			return fmt.Errorf("engine: iter %d kernel %s: allocating %s: %w",
				iter, k.Name, model.Tensors[id].Name, err)
		}
		s.objs[id] = o
		s.tr.Bind(o.ID(), model.Tensors[id].Name, model.Tensors[id].Bytes)
	}
	// Emit the semantic hints; the policy may move data in
	// response. With synchronous movement the application
	// stalls here; with an asynchronous mover the copies
	// queue and only the data dependency is recorded.
	hint := func(id int, write bool) {
		o := s.objs[id]
		if o == nil || o.Retired() {
			return
		}
		before := p.Copier.BusyUntil()
		if write {
			pol.WillWrite(o)
		} else {
			pol.WillRead(o)
		}
		// Record the dependency only when this hint
		// actually queued movement for this object;
		// unrelated background writebacks do not block
		// the kernel.
		if after := p.Copier.BusyUntil(); s.readyAt != nil && after > before {
			s.readyAt[id] = after
		}
	}
	for _, id := range k.Reads {
		hint(id, false)
	}
	for _, id := range k.Writes {
		hint(id, true)
	}
	// Lookahead: announce a future kernel's reads now, so an
	// asynchronous mover can stage them behind this kernel's
	// execution ("will read in the NEAR future", Table II).
	if la := s.cfg.HintLookahead; la > 0 && ki+la < len(model.Kernels) {
		for _, id := range model.Kernels[ki+la].Reads {
			hint(id, false)
		}
	}
	// The stall events carry the exact floats MoveTime
	// accumulates, in the same order, so tracing.Verify can
	// demand bit-exact equality per iteration; zero deltas
	// are skipped (x + 0 == x).
	hintStall := p.Clock.Now() - hintStart
	s.it.MoveTime += hintStall
	s.rm.stall(hintStall)
	if hintStall != 0 {
		s.tr.Stall("hint", 0, hintStall)
	}
	// Wait for this kernel's arguments to finish moving.
	if s.readyAt != nil {
		var need float64
		blocking := -1
		for _, id := range append(append([]int{}, k.Reads...), k.Writes...) {
			if t, ok := s.readyAt[id]; ok && t > need {
				need = t
				blocking = id
			}
		}
		if wait := need - p.Clock.Now(); wait > 0 {
			p.Clock.Advance(wait)
			s.it.MoveTime += wait
			s.rm.stall(wait)
			if s.tr.Enabled() {
				var obj uint64
				if blocking >= 0 && s.objs[blocking] != nil {
					obj = s.objs[blocking].ID()
				}
				s.tr.Stall("wait", obj, wait)
			}
		}
	}

	// Execute the kernel: primaries are pinned for its
	// duration (§III-C) and the roofline time is charged.
	var readBytes, writeBytes [2]int64
	rf := k.EffectiveReadFactor()
	for _, id := range k.Reads {
		o := s.objs[id]
		pol.Pin(o)
		// Kernel-internal re-reads of the data input
		// stream from wherever the primary lives — there
		// is no hardware cache to absorb them (unlike
		// 2LM). Gradients and weights stream once.
		f := 1.0
		if amplified(model.Tensors[id].Kind) {
			f = rf
		}
		readBytes[m.GetPrimary(o).Class()] += int64(float64(o.Size()) * f)
	}
	for _, id := range k.Writes {
		o := s.objs[id]
		pol.Pin(o)
		writeBytes[m.GetPrimary(o).Class()] += o.Size()
	}
	kt := kernelTime(p, k.FLOPs, readBytes, writeBytes)
	p.Clock.Advance(kt)
	s.it.ComputeTime += kt
	s.rm.kernel(kt)
	if s.tr.Enabled() {
		now := p.Clock.Now()
		s.tr.Kernel(now-kt, now,
			k.FLOPs/p.Compute.PeakFlops+p.Compute.LaunchOverhead)
		s.tr.KernelIO(p.Fast.Name, readBytes[0], writeBytes[0])
		s.tr.KernelIO(p.Slow.Name, readBytes[1], writeBytes[1])
	}
	for _, id := range k.Reads {
		pol.Unpin(s.objs[id])
	}
	for _, id := range k.Writes {
		pol.Unpin(s.objs[id])
	}

	// Post-kernel annotations.
	if !s.cfg.NoArchiveHints {
		for _, id := range s.sched.ArchiveAfter[ki] {
			pol.Archive(s.objs[id])
		}
	}
	for _, id := range s.sched.RetireAfter[ki] {
		pol.Retire(s.objs[id])
		s.objs[id] = nil
	}

	used := m.UsedBytes(dm.Fast) + m.UsedBytes(dm.Slow)
	if used > s.res.PeakHeap {
		s.res.PeakHeap = used
	}
	if s.sampling {
		s.res.HeapSamples = append(s.res.HeapSamples,
			HeapSample{Time: p.Clock.Now() - s.iterStart, Used: used})
	}
	s.tr.EndKernel()
	return nil
}

// endIter closes the iteration: drain any in-flight asynchronous moves,
// then the paper's procedure — invoke the GC to clean up all temporary
// memory and defragment the heaps (§IV-A). The GC pause is measured;
// defragmentation happens between the measurement windows.
func (s *caStepper) endIter() error {
	p, iter := s.p, s.iter
	if s.cfg.AsyncMovement {
		if wait := p.Copier.BusyUntil() - p.Clock.Now(); wait > 0 {
			p.Clock.Advance(wait)
			s.it.MoveTime += wait
			s.rm.stall(wait)
			s.tr.Stall("drain", 0, wait)
		}
	}
	s.gc.Collect()
	s.it.GCTime = s.gc.Stats().PauseTime - s.gcBase
	s.it.Time = p.Clock.Now() - s.iterStart
	s.rm.iter(s.it.Time)
	s.it.Fast = p.Fast.Counters().Sub(s.fastBase)
	s.it.Slow = p.Slow.Counters().Sub(s.slowBase)
	s.res.Iterations = append(s.res.Iterations, s.it)
	s.tr.Iter(iter, s.iterStart, p.Clock.Now())

	if s.cfg.CheckInvariants {
		if err := s.pol.CheckInvariants(); err != nil {
			return fmt.Errorf("engine: after iter %d: %w", iter, err)
		}
		if live := transientLive(s.objs, s.sched); live != 0 {
			return fmt.Errorf("engine: %d transient objects leaked after iter %d", live, iter)
		}
	}
	if s.chk != nil {
		if err := s.chk.Err(); err != nil {
			return fmt.Errorf("engine: during iter %d: %w", iter, err)
		}
		// The iteration boundary is a quiesce point: every region
		// must be bound and the policy accounting exact.
		if err := s.chk.CheckQuiesced(); err != nil {
			return fmt.Errorf("engine: after iter %d: %w", iter, err)
		}
	}
	s.m.Defrag(dm.Fast)
	s.m.Defrag(dm.Slow)
	return nil
}

// Finish finalizes the run and returns the Result.
func (s *caStepper) Finish() (*Result, error) {
	if !s.done {
		return nil, fmt.Errorf("engine: finish before run completed")
	}
	if s.finished {
		return nil, fmt.Errorf("engine: double finish")
	}
	s.finished = true
	p, res := s.p, s.res
	res.Policy = s.pol.Stats()
	res.DM = s.m.Stats()
	res.GC = s.gc.Stats()
	res.Faults = s.inj.Stats()
	if src, ok := s.pol.(policy.AdaptiveSource); ok {
		res.Adaptive = src.AdaptiveStats()
	}
	if s.chk != nil {
		res.InvariantChecks = s.chk.Checks()
		if err := s.chk.Err(); err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}
	if s.events != nil {
		res.Events = s.events.Events()
	}
	if s.tr.Enabled() {
		// Embed the run's authoritative aggregates as the trailing
		// event, making the trace self-contained: tracing.Verify
		// re-derives each of these from the event stream and demands
		// exact equality.
		moveByIter := make([]float64, len(res.Iterations))
		for i := range res.Iterations {
			moveByIter[i] = res.Iterations[i].MoveTime
		}
		fc, sc := p.Fast.Counters(), p.Slow.Counters()
		fr, fw, sr, sw := fc.ReadBytes, fc.WriteBytes, sc.ReadBytes, sc.WriteBytes
		if s.traffic != nil {
			// Shared platform: whole-platform counters mix every tenant's
			// traffic; use the owner's per-tenant attribution so this
			// lane's totals decompose this tenant's events exactly.
			fr, fw, sr, sw = s.traffic()
		}
		s.tr.EmitTotals(tracing.Totals{
			Copies:          res.DM.Copies,
			BytesFastToSlow: res.DM.BytesFastToSlow,
			BytesSlowToFast: res.DM.BytesSlowToFast,
			BytesWithinFast: res.DM.BytesWithinFast,
			BytesWithinSlow: res.DM.BytesWithinSlow,
			DefragMoves:     res.DM.DefragMoves,
			FastDevice:      p.Fast.Name,
			SlowDevice:      p.Slow.Name,
			FastReadBytes:   fr,
			FastWriteBytes:  fw,
			SlowReadBytes:   sr,
			SlowWriteBytes:  sw,
			MoveTimeByIter:  moveByIter,
			Async:           s.cfg.AsyncMovement,
		})
		if !s.sharedTrace {
			res.Trace = s.tr.Events()
		}
	}
	finishMetrics(s.reg, s.model.Name, s.pol.Name(), p.Clock.Now())
	s.release()
	res.aggregate()
	return res, nil
}

// transientLive counts transient objects still alive (all must be nil or
// retired after an iteration's final GC).
func transientLive(objs []*dm.Object, sched *trace.Schedule) int {
	persistent := make(map[int]bool, len(sched.Persistent))
	for _, id := range sched.Persistent {
		persistent[id] = true
	}
	n := 0
	for id, o := range objs {
		if o == nil || persistent[id] {
			continue
		}
		if !o.Retired() {
			n++
		}
	}
	return n
}
