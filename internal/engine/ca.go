package engine

import (
	"fmt"

	"cachedarrays/internal/alloc"
	"cachedarrays/internal/dm"
	"cachedarrays/internal/faults"
	"cachedarrays/internal/gcsim"
	"cachedarrays/internal/invariants"
	"cachedarrays/internal/memsim"
	"cachedarrays/internal/metrics"
	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/trace"
	"cachedarrays/internal/tracing"
)

// NVRAMOnly as a FastCapacity requests a zero-DRAM run (the right edge of
// Fig. 7). A plain zero means "paper default".
const NVRAMOnly = -1

// resolveCapacity maps the Config convention (0 = default, NVRAMOnly = 0
// bytes) to a concrete byte count.
func resolveCapacity(c, def int64) int64 {
	switch {
	case c == NVRAMOnly:
		return 0
	case c == 0:
		return def
	default:
		return c
	}
}

// RunCA executes a training run under the CachedArrays runtime in the
// given operating mode.
func RunCA(model *models.Model, mode policy.Mode, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	p, release := acquirePlatform(cfg)
	m, err := newManager(p, cfg)
	if err != nil {
		return nil, err
	}
	gc := gcsim.New(m, p.Clock)
	pcfg := policy.ConfigFor(mode)
	pcfg.PreferCleanVictims = cfg.PreferCleanVictims
	pol := policy.NewTieredConfig(m, pcfg, mode.String(), gc)
	return runCA(model, pol, gc, p, m, cfg, cfg.Metrics, release)
}

// newManager builds the data manager with the configured heap allocator.
func newManager(p *memsim.Platform, cfg Config) (*dm.Manager, error) {
	mk := func(capacity int64) (alloc.Allocator, error) {
		switch cfg.Allocator {
		case "", "firstfit":
			return alloc.NewFreeList(capacity, alloc.FirstFit), nil
		case "bestfit":
			return alloc.NewFreeList(capacity, alloc.BestFit), nil
		case "buddy":
			// Round capacity down to a power of two (the buddy
			// allocator's requirement); the lost tail models the
			// rounding a real deployment would accept.
			c := int64(1)
			for c*2 <= capacity {
				c *= 2
			}
			if capacity == 0 {
				return alloc.NewFreeList(0, alloc.FirstFit), nil
			}
			return alloc.NewBuddy(c, 0)
		default:
			return nil, fmt.Errorf("engine: unknown allocator %q", cfg.Allocator)
		}
	}
	fast, err := mk(p.Fast.Capacity)
	if err != nil {
		return nil, err
	}
	slow, err := mk(p.Slow.Capacity)
	if err != nil {
		return nil, err
	}
	return dm.NewWithAllocators(p, fast, slow), nil
}

// RunCAConfig is RunCA with explicit policy switches (ablations).
func RunCAConfig(model *models.Model, pcfg policy.Config, name string, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	p, release := acquirePlatform(cfg)
	m, err := newManager(p, cfg)
	if err != nil {
		return nil, err
	}
	gc := gcsim.New(m, p.Clock)
	pol := policy.NewTieredConfig(m, pcfg, name, gc)
	return runCA(model, pol, gc, p, m, cfg, cfg.Metrics, release)
}

// runCA executes the run; release returns the platform to the pool and is
// called only on the success path (error paths abandon the platform in
// whatever state the failure left it). pol is any policy runtime — the
// plain Tiered for the paper modes, a wrapped adaptive stack for the
// CA:OG/CA:TG variants. reg is the registry the run's series register
// into; it is usually cfg.Metrics, but adaptive runs pass a private
// registry when the caller did not ask for one (the guidance policy
// steers by live series, and sampling never perturbs the simulation, so
// those runs stay cacheable).
func runCA(model *models.Model, pol policy.Runtime, gc *gcsim.Collector,
	p *memsim.Platform, m *dm.Manager, cfg Config, reg *metrics.Registry, release func()) (*Result, error) {

	sched := trace.New(model)
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	res := &Result{ModelName: model.Name, Mode: pol.Name(), Config: cfg}
	res.recordPeaks(p)
	var events *dm.EventLog
	if cfg.TraceEvents > 0 {
		events = dm.NewEventLog(cfg.TraceEvents)
		m.SetEventLog(events)
	}
	// The execution-trace recorder threads through every layer; nil (the
	// default) records nothing and costs the instrumented paths a single
	// branch each.
	var tr *tracing.Recorder
	if cfg.Trace {
		tr = tracing.New(p.Clock.Now)
		p.Clock.Tracer = tr
		p.Copier.Tracer = tr
		m.SetTracer(tr)
		pol.SetTracer(tr)
		gc.SetTracer(tr)
	}
	// The fault injector threads through the same layers as the tracer and
	// follows the same discipline: absent a schedule, every hook stays nil
	// and the run is byte-identical to an uninstrumented build.
	var inj *faults.Injector
	if cfg.FaultSpec != "" {
		fsched, err := faults.Parse(cfg.FaultSpec)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		inj = faults.New(fsched, p.Clock.Now)
		inj.SetTracer(tr)
		p.Fast.Faults = inj
		p.Slow.Faults = inj
		p.Copier.Faults = inj
		m.SetFaults(inj)
	}
	var chk *invariants.Checker
	if cfg.CheckEveryAdvance {
		chk = invariants.New(m, p).WithPolicy(pol)
		chk.Attach()
	}
	// The metrics registry threads through the same layers with the same
	// nil-safety discipline: every layer registers its series, the clock
	// drives sampling, and a nil registry records nothing.
	wirePlatformMetrics(reg, p)
	m.RegisterMetrics(reg)
	pol.RegisterMetrics(reg)
	gc.RegisterMetrics(reg)
	rm := newRunMetrics(reg)
	objs := make([]*dm.Object, len(model.Tensors))

	// Persistent tensors (weights, gradients, input batch) are allocated
	// once; the paper pre-allocates and first-touches all heaps before
	// measuring, so setup traffic is excluded from iteration metrics.
	for _, id := range sched.Persistent {
		o, err := pol.NewObject(model.Tensors[id].Bytes)
		if err != nil {
			return nil, fmt.Errorf("engine: allocating persistent tensor %s: %w",
				model.Tensors[id].Name, err)
		}
		objs[id] = o
		tr.Bind(o.ID(), model.Tensors[id].Name, model.Tensors[id].Bytes)
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		tr.BeginIter(iter)
		iterStart := p.Clock.Now()
		fastBase, slowBase := p.Fast.Counters(), p.Slow.Counters()
		gcBase := gc.Stats().PauseTime
		var it IterationMetrics
		sampling := cfg.SampleHeap && iter == cfg.Iterations-1
		if sampling {
			res.HeapSamples = res.HeapSamples[:0]
		}

		// readyAt tracks, per tensor, when its in-flight asynchronous
		// move completes; kernels wait on their arguments' entries.
		var readyAt map[int]float64
		if cfg.AsyncMovement {
			readyAt = make(map[int]float64, 64)
		}
		for ki := range model.Kernels {
			k := &model.Kernels[ki]
			tr.BeginKernel(ki, k.Name)
			hintStart := p.Clock.Now()

			// Allocate transients whose first use is this kernel.
			for _, id := range sched.AllocBefore[ki] {
				o, err := pol.NewObject(model.Tensors[id].Bytes)
				if err != nil {
					return nil, fmt.Errorf("engine: iter %d kernel %s: allocating %s: %w",
						iter, k.Name, model.Tensors[id].Name, err)
				}
				objs[id] = o
				tr.Bind(o.ID(), model.Tensors[id].Name, model.Tensors[id].Bytes)
			}
			// Emit the semantic hints; the policy may move data in
			// response. With synchronous movement the application
			// stalls here; with an asynchronous mover the copies
			// queue and only the data dependency is recorded.
			hint := func(id int, write bool) {
				o := objs[id]
				if o == nil || o.Retired() {
					return
				}
				before := p.Copier.BusyUntil()
				if write {
					pol.WillWrite(o)
				} else {
					pol.WillRead(o)
				}
				// Record the dependency only when this hint
				// actually queued movement for this object;
				// unrelated background writebacks do not block
				// the kernel.
				if after := p.Copier.BusyUntil(); readyAt != nil && after > before {
					readyAt[id] = after
				}
			}
			for _, id := range k.Reads {
				hint(id, false)
			}
			for _, id := range k.Writes {
				hint(id, true)
			}
			// Lookahead: announce a future kernel's reads now, so an
			// asynchronous mover can stage them behind this kernel's
			// execution ("will read in the NEAR future", Table II).
			if la := cfg.HintLookahead; la > 0 && ki+la < len(model.Kernels) {
				for _, id := range model.Kernels[ki+la].Reads {
					hint(id, false)
				}
			}
			// The stall events carry the exact floats MoveTime
			// accumulates, in the same order, so tracing.Verify can
			// demand bit-exact equality per iteration; zero deltas
			// are skipped (x + 0 == x).
			hintStall := p.Clock.Now() - hintStart
			it.MoveTime += hintStall
			rm.stall(hintStall)
			if hintStall != 0 {
				tr.Stall("hint", 0, hintStall)
			}
			// Wait for this kernel's arguments to finish moving.
			if readyAt != nil {
				var need float64
				blocking := -1
				for _, id := range append(append([]int{}, k.Reads...), k.Writes...) {
					if t, ok := readyAt[id]; ok && t > need {
						need = t
						blocking = id
					}
				}
				if wait := need - p.Clock.Now(); wait > 0 {
					p.Clock.Advance(wait)
					it.MoveTime += wait
					rm.stall(wait)
					if tr.Enabled() {
						var obj uint64
						if blocking >= 0 && objs[blocking] != nil {
							obj = objs[blocking].ID()
						}
						tr.Stall("wait", obj, wait)
					}
				}
			}

			// Execute the kernel: primaries are pinned for its
			// duration (§III-C) and the roofline time is charged.
			var readBytes, writeBytes [2]int64
			rf := k.EffectiveReadFactor()
			for _, id := range k.Reads {
				o := objs[id]
				pol.Pin(o)
				// Kernel-internal re-reads of the data input
				// stream from wherever the primary lives — there
				// is no hardware cache to absorb them (unlike
				// 2LM). Gradients and weights stream once.
				f := 1.0
				if amplified(model.Tensors[id].Kind) {
					f = rf
				}
				readBytes[m.GetPrimary(o).Class()] += int64(float64(o.Size()) * f)
			}
			for _, id := range k.Writes {
				o := objs[id]
				pol.Pin(o)
				writeBytes[m.GetPrimary(o).Class()] += o.Size()
			}
			kt := kernelTime(p, k.FLOPs, readBytes, writeBytes)
			p.Clock.Advance(kt)
			it.ComputeTime += kt
			rm.kernel(kt)
			if tr.Enabled() {
				now := p.Clock.Now()
				tr.Kernel(now-kt, now,
					k.FLOPs/p.Compute.PeakFlops+p.Compute.LaunchOverhead)
				tr.KernelIO(p.Fast.Name, readBytes[0], writeBytes[0])
				tr.KernelIO(p.Slow.Name, readBytes[1], writeBytes[1])
			}
			for _, id := range k.Reads {
				pol.Unpin(objs[id])
			}
			for _, id := range k.Writes {
				pol.Unpin(objs[id])
			}

			// Post-kernel annotations.
			if !cfg.NoArchiveHints {
				for _, id := range sched.ArchiveAfter[ki] {
					pol.Archive(objs[id])
				}
			}
			for _, id := range sched.RetireAfter[ki] {
				pol.Retire(objs[id])
				objs[id] = nil
			}

			used := m.UsedBytes(dm.Fast) + m.UsedBytes(dm.Slow)
			if used > res.PeakHeap {
				res.PeakHeap = used
			}
			if sampling {
				res.HeapSamples = append(res.HeapSamples,
					HeapSample{Time: p.Clock.Now() - iterStart, Used: used})
			}
			tr.EndKernel()
		}

		// End of iteration: drain any in-flight asynchronous moves,
		// then the paper's procedure — invoke the GC to clean up all
		// temporary memory and defragment the heaps (§IV-A). The GC
		// pause is measured; defragmentation happens between the
		// measurement windows.
		if cfg.AsyncMovement {
			if wait := p.Copier.BusyUntil() - p.Clock.Now(); wait > 0 {
				p.Clock.Advance(wait)
				it.MoveTime += wait
				rm.stall(wait)
				tr.Stall("drain", 0, wait)
			}
		}
		gc.Collect()
		it.GCTime = gc.Stats().PauseTime - gcBase
		it.Time = p.Clock.Now() - iterStart
		rm.iter(it.Time)
		it.Fast = p.Fast.Counters().Sub(fastBase)
		it.Slow = p.Slow.Counters().Sub(slowBase)
		res.Iterations = append(res.Iterations, it)
		tr.Iter(iter, iterStart, p.Clock.Now())

		if cfg.CheckInvariants {
			if err := pol.CheckInvariants(); err != nil {
				return nil, fmt.Errorf("engine: after iter %d: %w", iter, err)
			}
			if live := transientLive(objs, sched); live != 0 {
				return nil, fmt.Errorf("engine: %d transient objects leaked after iter %d", live, iter)
			}
		}
		if chk != nil {
			if err := chk.Err(); err != nil {
				return nil, fmt.Errorf("engine: during iter %d: %w", iter, err)
			}
			// The iteration boundary is a quiesce point: every region
			// must be bound and the policy accounting exact.
			if err := chk.CheckQuiesced(); err != nil {
				return nil, fmt.Errorf("engine: after iter %d: %w", iter, err)
			}
		}
		m.Defrag(dm.Fast)
		m.Defrag(dm.Slow)
	}

	res.Policy = pol.Stats()
	res.DM = m.Stats()
	res.GC = gc.Stats()
	res.Faults = inj.Stats()
	if src, ok := pol.(policy.AdaptiveSource); ok {
		res.Adaptive = src.AdaptiveStats()
	}
	if chk != nil {
		res.InvariantChecks = chk.Checks()
		if err := chk.Err(); err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}
	if events != nil {
		res.Events = events.Events()
	}
	if tr.Enabled() {
		// Embed the run's authoritative aggregates as the trailing
		// event, making the trace self-contained: tracing.Verify
		// re-derives each of these from the event stream and demands
		// exact equality.
		moveByIter := make([]float64, len(res.Iterations))
		for i := range res.Iterations {
			moveByIter[i] = res.Iterations[i].MoveTime
		}
		fc, sc := p.Fast.Counters(), p.Slow.Counters()
		tr.EmitTotals(tracing.Totals{
			Copies:          res.DM.Copies,
			BytesFastToSlow: res.DM.BytesFastToSlow,
			BytesSlowToFast: res.DM.BytesSlowToFast,
			BytesWithinFast: res.DM.BytesWithinFast,
			BytesWithinSlow: res.DM.BytesWithinSlow,
			DefragMoves:     res.DM.DefragMoves,
			FastDevice:      p.Fast.Name,
			SlowDevice:      p.Slow.Name,
			FastReadBytes:   fc.ReadBytes,
			FastWriteBytes:  fc.WriteBytes,
			SlowReadBytes:   sc.ReadBytes,
			SlowWriteBytes:  sc.WriteBytes,
			MoveTimeByIter:  moveByIter,
			Async:           cfg.AsyncMovement,
		})
		res.Trace = tr.Events()
	}
	finishMetrics(reg, model.Name, pol.Name(), p.Clock.Now())
	release()
	res.aggregate()
	return res, nil
}

// transientLive counts transient objects still alive (all must be nil or
// retired after an iteration's final GC).
func transientLive(objs []*dm.Object, sched *trace.Schedule) int {
	persistent := make(map[int]bool, len(sched.Persistent))
	for _, id := range sched.Persistent {
		persistent[id] = true
	}
	n := 0
	for id, o := range objs {
		if o == nil || persistent[id] {
			continue
		}
		if !o.Retired() {
			n++
		}
	}
	return n
}
