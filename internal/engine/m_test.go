package engine

import (
	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
	"testing"
)

func TestMatrixPrint(t *testing.T) {
	for _, m := range []*models.Model{denseLarge, resnetLarge, vggLarge} {
		for _, mode := range policy.Modes {
			r, _ := RunCA(m, mode, Config{Iterations: 2})
			t.Logf("%-12s %-7s iter=%7.1f util=%.3f nvR=%6.0fGB nvW=%6.0fGB", m.Name, r.Mode, r.IterTime, r.FastBusUtil, float64(r.Slow.ReadBytes)/1e9, float64(r.Slow.WriteBytes)/1e9)
		}
		for _, opt := range []bool{false, true} {
			r, _ := Run2LM(m, opt, Config{Iterations: 2})
			t.Logf("%-12s %-7s iter=%7.1f util=%.3f nvR=%6.0fGB nvW=%6.0fGB hit=%.2f dirty=%.2f", m.Name, r.Mode, r.IterTime, r.FastBusUtil, float64(r.Slow.ReadBytes)/1e9, float64(r.Slow.WriteBytes)/1e9, r.Cache.HitRate(), r.Cache.DirtyMissRate())
		}
	}
}
