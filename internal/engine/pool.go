package engine

import (
	"sync"

	"cachedarrays/internal/memsim"
)

// Platform pooling: every runner (CA, 2LM, pagemig, planned) used to build
// a fresh memsim.Platform per run. Platforms are cheap but not free —
// device structs, the copy engine and (for the 2LM baseline) the tag
// array churn the allocator in tight sweeps. Since Platform.Reset provably
// restores a platform to its freshly-built state (every hook detached,
// counters zeroed, clock rewound — see the reuse-equality tests), runs
// with the same hardware description can share one platform instance.
//
// The pool is keyed by everything that makes two platforms different:
// resolved capacities, copy-engine thread count and the slow-tier
// technology. Per-run knobs that survive Reset by design (Copier.Async,
// WriteThreadCap) are set explicitly on every acquire, so a reused
// platform can never leak a previous run's movement discipline.

// platformKey identifies one hardware description.
type platformKey struct {
	fast     int64
	slow     int64
	threads  int
	slowTier string
}

// poolShard holds the idle platforms of one hardware description behind
// its own short lock. Shards live in a sync.Map so concurrent acquires
// of *different* configs never contend at all (the sync.Map read path is
// lock-free once a shard exists), and acquires of the *same* config
// contend only on the shard's push/pop — never on buildPlatform or
// Reset, which both run outside any lock.
type poolShard struct {
	mu   sync.Mutex
	free []*memsim.Platform
}

var platformPool sync.Map // platformKey -> *poolShard

// shardFor returns the pool shard for one hardware description,
// creating it on first use.
func shardFor(key platformKey) *poolShard {
	if s, ok := platformPool.Load(key); ok {
		return s.(*poolShard)
	}
	s, _ := platformPool.LoadOrStore(key, &poolShard{})
	return s.(*poolShard)
}

// poolDepth reports how many idle platforms a key currently holds
// (test hook).
func poolDepth(key platformKey) int {
	s := shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.free)
}

// buildPlatform constructs a platform from a resolved config (the
// non-pooled path; acquirePlatform wraps it).
func buildPlatform(cfg Config) *memsim.Platform {
	clock := &memsim.Clock{}
	fast := memsim.NewDevice("dram", memsim.DRAM,
		resolveCapacity(cfg.FastCapacity, memsim.DefaultFastCapacity), memsim.DRAMProfile())
	slowProfile := memsim.NVRAMProfile()
	slowName := "nvram"
	if cfg.SlowTier == "cxl" {
		slowProfile = memsim.CXLProfile()
		slowName = "cxl"
	}
	slow := memsim.NewDevice(slowName, memsim.NVRAM,
		resolveCapacity(cfg.SlowCapacity, memsim.DefaultSlowCapacity), slowProfile)
	return &memsim.Platform{
		Clock:   clock,
		Fast:    fast,
		Slow:    slow,
		Copier:  memsim.NewCopyEngine(clock, cfg.CopyThreads),
		Compute: memsim.DefaultCompute(),
	}
}

// acquirePlatform returns a platform matching cfg — reused from the pool
// when one with the same hardware description is idle, freshly built
// otherwise — plus a release function that resets it and returns it to
// the pool. Callers release only on success paths; a platform abandoned
// mid-failure is simply dropped, so the pool never holds a platform in an
// unknown state.
func acquirePlatform(cfg Config) (*memsim.Platform, func()) {
	key := platformKey{
		fast:     resolveCapacity(cfg.FastCapacity, memsim.DefaultFastCapacity),
		slow:     resolveCapacity(cfg.SlowCapacity, memsim.DefaultSlowCapacity),
		threads:  cfg.CopyThreads,
		slowTier: cfg.SlowTier,
	}
	shard := shardFor(key)
	shard.mu.Lock()
	var p *memsim.Platform
	if n := len(shard.free); n > 0 {
		p = shard.free[n-1]
		shard.free[n-1] = nil
		shard.free = shard.free[:n-1]
	}
	shard.mu.Unlock()
	if p == nil {
		p = buildPlatform(cfg)
	}
	// Per-run movement discipline: set unconditionally so a pooled
	// platform carries exactly what this run's config asks for.
	p.Copier.Async = cfg.AsyncMovement
	p.Copier.WriteThreadCap = 0
	if cfg.AsyncMovement {
		// A mover that nothing blocks on is free to pace its write
		// streams at the destination's optimal parallelism (§V-d).
		p.Copier.WriteThreadCap = p.Slow.Profile.WritePeakThreads
	}
	release := func() {
		p.Reset() // outside the lock: Reset cost never serializes other releases
		shard.mu.Lock()
		shard.free = append(shard.free, p)
		shard.mu.Unlock()
	}
	return p, release
}
