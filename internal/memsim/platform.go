package memsim

import "cachedarrays/internal/units"

// ComputeProfile models the CPU side of the platform: the oneDNN-class
// kernels of the paper run on 28 cores of a Xeon Platinum 8276L. Kernel
// time is a roofline: max(flops/PeakFlops, Σ_device bytes/bandwidth) plus a
// fixed launch overhead.
type ComputeProfile struct {
	// PeakFlops is the effective fp32 throughput in FLOP/s (peak ×
	// realistic oneDNN efficiency).
	PeakFlops float64
	// KernelThreads is the thread count kernels use for their own memory
	// traffic.
	KernelThreads int
	// LaunchOverhead is the fixed per-kernel cost in seconds.
	LaunchOverhead float64
}

// Platform bundles the virtual clock, the two memory devices, the copy
// engine and the compute profile: everything the engines need to model one
// socket of the paper's testbed.
type Platform struct {
	Clock   *Clock
	Fast    *Device // DRAM
	Slow    *Device // NVRAM
	Copier  *CopyEngine
	Compute ComputeProfile
}

// PlatformConfig selects the capacities (and optional real backing) for a
// platform. Zero values take the paper defaults.
type PlatformConfig struct {
	// FastCapacity is the DRAM budget (paper: 180 GB usable per socket).
	FastCapacity int64
	// SlowCapacity is the NVRAM budget (paper: 1300 GB per socket).
	SlowCapacity int64
	// CopyThreads sizes the copy engine pool (paper: "highly
	// multi-threaded", one thread per core).
	CopyThreads int
	// Backed allocates real host memory for both devices. Only sensible
	// for small capacities (tests, examples).
	Backed bool
}

// DefaultFastCapacity and DefaultSlowCapacity are the per-socket budgets the
// paper configures for all large-network runs (§IV-A).
const (
	DefaultFastCapacity = 180 * units.GB
	DefaultSlowCapacity = 1300 * units.GB
	DefaultCopyThreads  = 28
)

// DRAMProfile returns the bandwidth profile for one socket's six DDR4
// channels.
func DRAMProfile() BandwidthProfile {
	return BandwidthProfile{
		PeakRead:          105e9,
		PeakWrite:         85e9,
		RandomRead:        25e9,
		RandomWrite:       20e9,
		WritePeakThreads:  0, // DRAM write bandwidth scales with threads
		TemporalWriteFrac: 1,
	}
}

// NVRAMProfile returns the bandwidth profile for one socket's six Optane DC
// DIMMs, following the measurements the paper cites (Izraelevitz et al.;
// Hildebrand et al. ISPASS'21): reads "not much slower than DRAM",
// sequential non-temporal writes ~12 GB/s peaking at low thread counts,
// severe degradation for 64 B-grain haphazard traffic.
func NVRAMProfile() BandwidthProfile {
	return BandwidthProfile{
		PeakRead:          38e9,
		PeakWrite:         12e9,
		RandomRead:        8e9,
		RandomWrite:       4e9,
		WritePeakThreads:  4,
		WriteFloorFrac:    0.35,
		TemporalWriteFrac: 0.65,
	}
}

// CXLProfile returns a bandwidth profile for CXL-attached remote memory —
// the disaggregated tier the paper's §VI extension targets. Compared to
// Optane NVRAM it is symmetric and considerably friendlier: DRAM behind a
// CXL 2.0 x8 link, roughly 28 GB/s each way, no write-parallelism collapse
// and no non-temporal-store sensitivity; small accesses pay the link's
// packetization overhead instead of media penalties.
func CXLProfile() BandwidthProfile {
	return BandwidthProfile{
		PeakRead:          28e9,
		PeakWrite:         28e9,
		RandomRead:        12e9,
		RandomWrite:       12e9,
		WritePeakThreads:  0,
		TemporalWriteFrac: 1,
	}
}

// DefaultCompute returns the compute profile for 28 Cascade Lake cores
// running oneDNN-class fp32 kernels.
func DefaultCompute() ComputeProfile {
	return ComputeProfile{
		PeakFlops:      2.2e12,
		KernelThreads:  28,
		LaunchOverhead: 20e-6,
	}
}

// NewPlatform builds a platform from cfg, applying paper defaults for zero
// fields.
func NewPlatform(cfg PlatformConfig) *Platform {
	if cfg.FastCapacity == 0 {
		cfg.FastCapacity = DefaultFastCapacity
	}
	if cfg.SlowCapacity == 0 {
		cfg.SlowCapacity = DefaultSlowCapacity
	}
	if cfg.CopyThreads == 0 {
		cfg.CopyThreads = DefaultCopyThreads
	}
	clock := &Clock{}
	fast := NewDevice("dram", DRAM, cfg.FastCapacity, DRAMProfile())
	slow := NewDevice("nvram", NVRAM, cfg.SlowCapacity, NVRAMProfile())
	if cfg.Backed {
		fast.AttachBacking(make([]byte, cfg.FastCapacity))
		slow.AttachBacking(make([]byte, cfg.SlowCapacity))
	}
	return &Platform{
		Clock:   clock,
		Fast:    fast,
		Slow:    slow,
		Copier:  NewCopyEngine(clock, cfg.CopyThreads),
		Compute: DefaultCompute(),
	}
}

// DefaultPlatform returns the paper's single-socket configuration
// (180 GB DRAM + 1300 GB NVRAM, unbacked).
func DefaultPlatform() *Platform { return NewPlatform(PlatformConfig{}) }

// Reset rewinds the clock, zeroes both devices' counters, drains the copy
// engine's asynchronous queue and detaches every per-run instrumentation
// hook (tracer, metrics registry, invariant hook, fault injector), so a
// reused platform is indistinguishable from a fresh one. Configuration
// (capacities, profiles, Copier.Async, WriteThreadCap) is deliberately
// kept — it describes the platform, not a run. The metrics registry is
// detached *before* the clock resets: the finished run's samples belong
// to its owner and must survive for export (Clock.Reset rewinds any
// still-attached registry).
func (p *Platform) Reset() {
	p.Clock.Tracer = nil
	p.Clock.Metrics = nil
	p.Clock.OnAdvance = nil
	p.Fast.Faults = nil
	p.Slow.Faults = nil
	p.Clock.Reset()
	p.Fast.ResetCounters()
	p.Slow.ResetCounters()
	if p.Copier != nil {
		p.Copier.Tracer = nil
		p.Copier.Faults = nil
		p.Copier.Reset()
	}
}

// Device returns the device of the given kind.
func (p *Platform) Device(k Kind) *Device {
	if k == DRAM {
		return p.Fast
	}
	return p.Slow
}
