package memsim

import (
	"testing"

	"cachedarrays/internal/metrics"
	"cachedarrays/internal/tracing"
)

// TestAdvanceHotPathAllocs pins the per-advance instrumentation cost at
// zero heap allocations: the trace recorder appends into pooled
// fixed-capacity chunks and the metrics registry samples into
// pre-grown buffers, so the simulator's hottest call — Clock.Advance
// with a tracer AND a registry attached — must not touch the allocator
// in steady state. Chunk turnover (one pooled-slab fetch per 1024
// events) and sampling-boundary appends are excluded by warming a chunk
// first and stepping well inside one sampling interval.
func TestAdvanceHotPathAllocs(t *testing.T) {
	c := &Clock{}
	rec := tracing.New(c.Now)
	reg := metrics.New(1e6) // one sample per 1e6 virtual seconds: never crossed here
	reg.Gauge("g", func() float64 { return 1 })
	c.Tracer = rec
	c.Metrics = reg

	// Warm the recorder's current chunk past its first-emit allocation.
	c.Advance(1e-9)

	const steps = 100 // stays far inside both the chunk and the interval
	allocs := testing.AllocsPerRun(1, func() {
		for i := 0; i < steps; i++ {
			c.Advance(1e-9)
		}
	})
	if allocs != 0 {
		t.Fatalf("traced+metered Advance allocates: %.2f allocs per %d advances", allocs, steps)
	}
	if len(rec.Events()) == 0 {
		t.Fatal("recorder captured no events (hot path not exercised)")
	}
}

// TestAdvanceHotPathAllocsUntraced: the uninstrumented advance (the
// default configuration) must also be allocation-free.
func TestAdvanceHotPathAllocsUntraced(t *testing.T) {
	c := &Clock{}
	if allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 100; i++ {
			c.Advance(1e-9)
		}
	}); allocs != 0 {
		t.Fatalf("bare Advance allocates: %.2f allocs per 100 advances", allocs)
	}
}
