package memsim

import (
	"fmt"

	"cachedarrays/internal/faults"
)

// Kind identifies the technology class of a memory device.
type Kind int

const (
	// DRAM is conventional high-bandwidth volatile memory.
	DRAM Kind = iota
	// NVRAM is phase-change persistent memory (Optane DC class): large,
	// with asymmetric bandwidth — reads are moderately slower than DRAM
	// while writes are slow, parallelism-sensitive and strongly favour
	// non-temporal, well-shaped streams.
	NVRAM
)

func (k Kind) String() string {
	switch k {
	case DRAM:
		return "DRAM"
	case NVRAM:
		return "NVRAM"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Access describes how a batch of traffic hits a device. The effective
// bandwidth of both DRAM and (especially) NVRAM depends on the shape of the
// traffic, which is the mechanism behind several of the paper's results
// ("traffic shaping", §V-b).
type Access struct {
	// Threads is the number of cooperating threads issuing the traffic.
	// NVRAM write bandwidth peaks at a small thread count and then
	// *decreases* (paper §V-d); 0 means 1.
	Threads int
	// Granularity is the contiguous run length in bytes of each access.
	// 0 means fully sequential (best case). Hardware-cache-line traffic
	// uses the cache's line size here.
	Granularity int64
	// NonTemporal marks writes that bypass the CPU cache hierarchy
	// (streaming stores). These are "crucial for best performance" on
	// NVRAM (paper §V-d); regular stores see roughly half the bandwidth.
	NonTemporal bool
}

// Sequential is the best-case access shape used by the copy engine.
func Sequential(threads int) Access {
	return Access{Threads: threads, NonTemporal: true}
}

// BandwidthProfile captures a device's bandwidth characteristics. All
// bandwidths are bytes/second.
type BandwidthProfile struct {
	// PeakRead/PeakWrite: sequential, well-shaped traffic.
	PeakRead  float64
	PeakWrite float64
	// RandomRead/RandomWrite: 64-byte-grain haphazard traffic (the 2LM
	// miss path).
	RandomRead  float64
	RandomWrite float64
	// WritePeakThreads is the thread count at which write bandwidth
	// peaks; beyond it, bandwidth decays as peak*WritePeakThreads/threads
	// down to WriteFloorFrac*peak. 0 disables the effect (DRAM).
	WritePeakThreads int
	// WriteFloorFrac bounds the parallelism decay from below.
	WriteFloorFrac float64
	// TemporalWriteFrac is the bandwidth fraction achieved by writes that
	// do NOT use non-temporal stores. 1.0 for DRAM; ~0.5 for NVRAM.
	TemporalWriteFrac float64
}

// granHalf is the run length at which shaped traffic reaches half the gap
// between random and peak bandwidth (a saturating g/(g+granHalf) curve).
const granHalf = 32 << 10 // 32 KiB

// shapeFactor interpolates between random and peak bandwidth for a given
// access granularity.
func shapeFactor(random, peak float64, granularity int64) float64 {
	if granularity <= 0 {
		return peak
	}
	g := float64(granularity)
	f := g / (g + granHalf)
	return random + (peak-random)*f
}

// ReadBandwidth returns the effective read bandwidth for an access shape.
func (p BandwidthProfile) ReadBandwidth(a Access) float64 {
	return shapeFactor(p.RandomRead, p.PeakRead, a.Granularity)
}

// WriteBandwidth returns the effective write bandwidth for an access shape.
// The parallelism collapse applies to concurrent non-temporal store streams
// (they thrash the DIMM's write-combining buffer); regular cached stores
// drain through the memory controller at its own pacing and instead pay the
// TemporalWriteFrac penalty.
func (p BandwidthProfile) WriteBandwidth(a Access) float64 {
	bw := shapeFactor(p.RandomWrite, p.PeakWrite, a.Granularity)
	threads := a.Threads
	if threads <= 0 {
		threads = 1
	}
	if a.NonTemporal && p.WritePeakThreads > 0 && threads > p.WritePeakThreads {
		frac := float64(p.WritePeakThreads) / float64(threads)
		if frac < p.WriteFloorFrac {
			frac = p.WriteFloorFrac
		}
		bw *= frac
	}
	if !a.NonTemporal && p.TemporalWriteFrac > 0 && p.TemporalWriteFrac < 1 {
		bw *= p.TemporalWriteFrac
	}
	return bw
}

// Counters accumulates the traffic and busy-time statistics the paper
// gathers from hardware performance counters (§IV-A).
type Counters struct {
	ReadBytes  int64
	WriteBytes int64
	ReadOps    int64
	WriteOps   int64
	// BusyTime is the total seconds the device's bus spent servicing
	// traffic; utilization = BusyTime / elapsed (Fig. 6).
	BusyTime float64
}

// Add accumulates o into c (used to diff counter snapshots).
func (c *Counters) Add(o Counters) {
	c.ReadBytes += o.ReadBytes
	c.WriteBytes += o.WriteBytes
	c.ReadOps += o.ReadOps
	c.WriteOps += o.WriteOps
	c.BusyTime += o.BusyTime
}

// Sub returns c - o, the traffic between two snapshots.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		ReadBytes:  c.ReadBytes - o.ReadBytes,
		WriteBytes: c.WriteBytes - o.WriteBytes,
		ReadOps:    c.ReadOps - o.ReadOps,
		WriteOps:   c.WriteOps - o.WriteOps,
		BusyTime:   c.BusyTime - o.BusyTime,
	}
}

// TotalBytes is read + write traffic.
func (c Counters) TotalBytes() int64 { return c.ReadBytes + c.WriteBytes }

// Device models one memory pool (one NUMA node's DRAM, or the NVRAM DIMMs
// behind it). A Device is an address space [0, Capacity); it may optionally
// be backed by host memory so that data actually round-trips (used by the
// examples and correctness tests), or unbacked so terabyte heaps are pure
// metadata (used by the paper-scale experiments).
type Device struct {
	Name     string
	Kind     Kind
	Capacity int64
	Profile  BandwidthProfile

	// Faults, when non-nil, lets bandwidth-collapse episodes inflate the
	// device's access times for their duration. Nil (the default) costs
	// one branch per time computation, so fault-free runs are
	// byte-identical to an uninstrumented device.
	Faults *faults.Injector

	counters Counters
	backing  []byte
}

// NewDevice creates an unbacked device.
func NewDevice(name string, kind Kind, capacity int64, profile BandwidthProfile) *Device {
	if capacity < 0 {
		panic(fmt.Sprintf("memsim: negative capacity %d for device %s", capacity, name))
	}
	return &Device{Name: name, Kind: kind, Capacity: capacity, Profile: profile}
}

// AttachBacking gives the device real host memory. len(buf) must equal
// Capacity.
func (d *Device) AttachBacking(buf []byte) {
	if int64(len(buf)) != d.Capacity {
		panic(fmt.Sprintf("memsim: backing size %d != capacity %d for device %s",
			len(buf), d.Capacity, d.Name))
	}
	d.backing = buf
}

// Backed reports whether the device holds real bytes.
func (d *Device) Backed() bool { return d.backing != nil }

// Data returns the backing bytes for [offset, offset+size). It panics if
// the device is unbacked or the range is out of bounds — both are program
// errors, not recoverable conditions.
func (d *Device) Data(offset, size int64) []byte {
	if d.backing == nil {
		panic(fmt.Sprintf("memsim: device %s is not backed", d.Name))
	}
	if offset < 0 || size < 0 || offset+size > d.Capacity {
		panic(fmt.Sprintf("memsim: out-of-bounds access [%d,%d) on device %s (capacity %d)",
			offset, offset+size, d.Name, d.Capacity))
	}
	return d.backing[offset : offset+size]
}

// Counters returns a snapshot of the device's traffic counters.
func (d *Device) Counters() Counters { return d.counters }

// ResetCounters zeroes the traffic counters (between iterations/runs).
func (d *Device) ResetCounters() { d.counters = Counters{} }

// ReadTime returns the seconds needed to read n bytes with the given access
// shape, without recording any traffic (used for projections).
func (d *Device) ReadTime(n int64, a Access) float64 {
	if n <= 0 {
		return 0
	}
	t := float64(n) / d.Profile.ReadBandwidth(a)
	if d.Faults != nil {
		t *= d.Faults.TimeScale(d.Name)
	}
	return t
}

// WriteTime is ReadTime's write-side counterpart.
func (d *Device) WriteTime(n int64, a Access) float64 {
	if n <= 0 {
		return 0
	}
	t := float64(n) / d.Profile.WriteBandwidth(a)
	if d.Faults != nil {
		t *= d.Faults.TimeScale(d.Name)
	}
	return t
}

// Read records n bytes of read traffic and returns the time it took.
func (d *Device) Read(n int64, a Access) float64 {
	t := d.ReadTime(n, a)
	if n > 0 {
		d.counters.ReadBytes += n
		d.counters.ReadOps++
		d.counters.BusyTime += t
	}
	return t
}

// Write records n bytes of write traffic and returns the time it took.
func (d *Device) Write(n int64, a Access) float64 {
	t := d.WriteTime(n, a)
	if n > 0 {
		d.counters.WriteBytes += n
		d.counters.WriteOps++
		d.counters.BusyTime += t
	}
	return t
}
