package memsim

import (
	"fmt"

	"cachedarrays/internal/faults"
	"cachedarrays/internal/tracing"
)

// CopyEngine is the data-movement mechanism of the data manager: a
// multi-threaded memcpy between (or within) devices that always uses
// well-shaped sequential streams and non-temporal stores on the
// destination. The paper's copy kernel "uses non-temporal stores to NVRAM,
// which are crucial for best performance" (§V-d), and its bandwidth
// *decreases* with excess parallelism when the destination is NVRAM.
type CopyEngine struct {
	Clock *Clock
	// Threads is the maximum number of copy threads. The effective thread
	// count for a transfer is min(Threads, ceil(n/ChunkBytes)) — small
	// transfers cannot use the full pool, which is why the paper's
	// small-batch VGG sees lower bus utilization than ResNet (Fig. 6).
	Threads int
	// ChunkBytes is the per-thread parallelization grain.
	ChunkBytes int64
	// LaunchOverhead is the fixed per-copy cost in seconds (thread
	// wake-up, argument marshalling). It penalizes many small copies.
	LaunchOverhead float64
	// WriteThreadCap, when positive, bounds the threads used for the
	// write side of a copy. NVRAM write bandwidth collapses beyond a
	// small number of concurrent streams (§V-d); a scheduler that is
	// free to pace its transfers (the asynchronous mover) caps its
	// writeback streams at the device's optimum instead of using the
	// whole pool.
	WriteThreadCap int
	// Async switches the engine from the paper's evaluated configuration
	// (synchronous movement: the caller stalls for the copy's duration)
	// to the separate-thread-pool design §V-c sketches as future work:
	// copies are queued on the mover's own timeline and the caller
	// continues immediately. Consumers of moved data must wait until
	// BusyUntil (the engine's executors do this per data dependency).
	Async bool

	// Tracer, when non-nil, records every transfer (with its stream
	// shapes and the mover's queue state) into the execution trace.
	Tracer *tracing.Recorder

	// Faults, when non-nil, lets copy-stall episodes add transient delay
	// to transfers (a device hiccuping without erroring). Nil costs one
	// branch per copy.
	Faults *faults.Injector

	// busyUntil is the virtual time at which the asynchronous mover
	// finishes its queued work.
	busyUntil float64
	// queued counts transfers enqueued since the asynchronous mover was
	// last idle — the queue depth the tracer reports.
	queued int
}

// BusyUntil returns the time the asynchronous mover drains its queue; for
// a synchronous engine it is simply "now".
func (e *CopyEngine) BusyUntil() float64 {
	if !e.Async {
		return e.Clock.Now()
	}
	if e.busyUntil < e.Clock.Now() {
		return e.Clock.Now()
	}
	return e.busyUntil
}

// QueueDepth returns the number of transfers the asynchronous mover has
// queued since it was last idle, or zero when the mover is idle (or the
// engine is synchronous). It is an instantaneous gauge for metrics.
func (e *CopyEngine) QueueDepth() int {
	if !e.Async || e.busyUntil <= e.Clock.Now() {
		return 0
	}
	return e.queued
}

// Backlog returns the virtual seconds of queued work ahead of the
// asynchronous mover: BusyUntil minus now, zero when idle or synchronous.
func (e *CopyEngine) Backlog() float64 {
	return e.BusyUntil() - e.Clock.Now()
}

// Reset returns the engine to its just-built state: the asynchronous
// mover's queue is empty. Experiments that reuse a platform across runs
// must reset the engine along with the clock — a rewound clock would
// otherwise leave busyUntil pointing at a stale future timestamp and the
// mover would appear busy at the start of the next run.
func (e *CopyEngine) Reset() {
	e.busyUntil = 0
	e.queued = 0
}

// NewCopyEngine returns an engine with the given thread pool over the
// clock, using a 4 MiB grain and a 5 µs launch overhead.
func NewCopyEngine(clock *Clock, threads int) *CopyEngine {
	if threads <= 0 {
		threads = 1
	}
	return &CopyEngine{
		Clock:          clock,
		Threads:        threads,
		ChunkBytes:     4 << 20,
		LaunchOverhead: 5e-6,
	}
}

// effectiveThreads returns the thread count usable for an n-byte transfer.
func (e *CopyEngine) effectiveThreads(n int64) int {
	if e.ChunkBytes <= 0 {
		return e.Threads
	}
	chunks := (n + e.ChunkBytes - 1) / e.ChunkBytes
	if chunks < 1 {
		chunks = 1
	}
	if int64(e.Threads) < chunks {
		return e.Threads
	}
	return int(chunks)
}

// writeAccess returns the access shape of a copy's write stream, applying
// the write-thread cap.
func (e *CopyEngine) writeAccess(threads int) Access {
	if e.WriteThreadCap > 0 && threads > e.WriteThreadCap {
		threads = e.WriteThreadCap
	}
	return Sequential(threads)
}

// CopyTime returns the modelled duration of an n-byte copy from src to dst
// without performing it (no counter updates, no clock advance). The copy is
// pipelined: its duration is the max of the read and write streams.
func (e *CopyEngine) CopyTime(dst, src *Device, n int64) float64 {
	if n <= 0 {
		return 0
	}
	threads := e.effectiveThreads(n)
	rt := src.ReadTime(n, Sequential(threads))
	wt := dst.WriteTime(n, e.writeAccess(threads))
	t := rt
	if wt > t {
		t = wt
	}
	return t + e.LaunchOverhead
}

// Copy moves n bytes from src[srcOff:] to dst[dstOff:]. It records traffic
// on both devices, advances the virtual clock, and — when both devices are
// backed — really copies the bytes. It returns the elapsed virtual time.
//
// Copying with overlapping ranges on the same device is allowed and behaves
// like Go's copy (memmove).
func (e *CopyEngine) Copy(dst *Device, dstOff int64, src *Device, srcOff int64, n int64) float64 {
	if n < 0 {
		panic(fmt.Sprintf("memsim: negative copy length %d", n))
	}
	if n == 0 {
		return 0
	}
	if dstOff < 0 || dstOff+n > dst.Capacity {
		panic(fmt.Sprintf("memsim: copy dst range [%d,%d) out of bounds on %s",
			dstOff, dstOff+n, dst.Name))
	}
	if srcOff < 0 || srcOff+n > src.Capacity {
		panic(fmt.Sprintf("memsim: copy src range [%d,%d) out of bounds on %s",
			srcOff, srcOff+n, src.Name))
	}
	threads := e.effectiveThreads(n)
	rt := src.Read(n, Sequential(threads))
	wt := dst.Write(n, e.writeAccess(threads))
	t := rt
	if wt > t {
		t = wt
	}
	t += e.LaunchOverhead
	if e.Faults != nil {
		t += e.Faults.CopyStall(dst.Name)
	}
	if e.Async {
		// Queue on the mover timeline; the application thread does
		// not stall. The region state machine updates immediately
		// (the object's primary is already reassigned by the caller);
		// only the *timing* of the bytes' arrival is deferred, and
		// consumers synchronize through BusyUntil.
		start := e.Clock.Now()
		if e.busyUntil > start {
			start = e.busyUntil
			e.queued++
		} else {
			e.queued = 1
		}
		e.busyUntil = start + t
		if e.Tracer.Enabled() {
			e.Tracer.Xfer(src.Name, dst.Name, n, start, e.busyUntil,
				threads, e.writeAccess(threads).Threads, e.queued, e.busyUntil-e.Clock.Now())
		}
	} else if e.Clock != nil {
		e.Clock.Advance(t)
		if e.Tracer.Enabled() {
			now := e.Clock.Now()
			e.Tracer.Xfer(src.Name, dst.Name, n, now-t, now,
				threads, e.writeAccess(threads).Threads, 0, 0)
		}
	}
	if dst.Backed() && src.Backed() {
		copy(dst.Data(dstOff, n), src.Data(srcOff, n))
	}
	return t
}
