package memsim

import (
	"math"
	"testing"
	"testing/quick"

	"cachedarrays/internal/units"
)

func TestClockAdvances(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock at %v", c.Now())
	}
	c.Advance(1.5)
	c.Advance(0.5)
	if c.Now() != 2.0 {
		t.Fatalf("clock at %v, want 2.0", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("reset clock at %v", c.Now())
	}
}

func TestClockPanicsOnNegativeAdvance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestShapeFactorInterpolates(t *testing.T) {
	p := NVRAMProfile()
	seq := p.ReadBandwidth(Access{})
	line := p.ReadBandwidth(Access{Granularity: 64})
	mid := p.ReadBandwidth(Access{Granularity: 64 << 10})
	if seq != p.PeakRead {
		t.Errorf("sequential read bw %v != peak %v", seq, p.PeakRead)
	}
	if line >= mid || mid >= seq {
		t.Errorf("bandwidth not monotone in granularity: 64B=%v 64KiB=%v seq=%v", line, mid, seq)
	}
	if line > p.RandomRead*1.1 {
		t.Errorf("64B-grain read bw %v should be near random floor %v", line, p.RandomRead)
	}
}

func TestNVRAMWriteParallelismDecay(t *testing.T) {
	p := NVRAMProfile()
	at4 := p.WriteBandwidth(Access{Threads: 4, NonTemporal: true})
	at28 := p.WriteBandwidth(Access{Threads: 28, NonTemporal: true})
	if at28 >= at4 {
		t.Errorf("NVRAM write bw should decay with parallelism: 4T=%v 28T=%v", at4, at28)
	}
	floor := p.PeakWrite * p.WriteFloorFrac
	if at28 < floor-1 {
		t.Errorf("decay fell through floor: %v < %v", at28, floor)
	}
}

func TestDRAMWriteNotParallelismSensitive(t *testing.T) {
	p := DRAMProfile()
	at1 := p.WriteBandwidth(Access{Threads: 1, NonTemporal: true})
	at28 := p.WriteBandwidth(Access{Threads: 28, NonTemporal: true})
	if at1 != at28 {
		t.Errorf("DRAM write bw should be flat in threads: 1T=%v 28T=%v", at1, at28)
	}
}

func TestNonTemporalStoresMatterOnNVRAM(t *testing.T) {
	p := NVRAMProfile()
	nt := p.WriteBandwidth(Access{Threads: 2, NonTemporal: true})
	reg := p.WriteBandwidth(Access{Threads: 2, NonTemporal: false})
	if reg >= nt {
		t.Errorf("regular stores should be slower than non-temporal: nt=%v reg=%v", nt, reg)
	}
	if got, want := reg/nt, p.TemporalWriteFrac; math.Abs(got-want) > 1e-9 {
		t.Errorf("temporal penalty = %v, want %v", got, want)
	}
}

func TestDeviceRecordsTraffic(t *testing.T) {
	d := NewDevice("dram", DRAM, units.GB, DRAMProfile())
	rt := d.Read(100*units.MB, Sequential(4))
	wt := d.Write(50*units.MB, Sequential(4))
	c := d.Counters()
	if c.ReadBytes != 100*units.MB || c.WriteBytes != 50*units.MB {
		t.Errorf("counters = %+v", c)
	}
	if c.ReadOps != 1 || c.WriteOps != 1 {
		t.Errorf("ops = %+v", c)
	}
	if got := c.BusyTime; math.Abs(got-(rt+wt)) > 1e-12 {
		t.Errorf("busy time %v != read %v + write %v", got, rt, wt)
	}
	d.ResetCounters()
	if d.Counters() != (Counters{}) {
		t.Errorf("reset counters = %+v", d.Counters())
	}
}

func TestZeroByteTrafficIsFree(t *testing.T) {
	d := NewDevice("dram", DRAM, units.GB, DRAMProfile())
	if d.Read(0, Sequential(1)) != 0 || d.Write(0, Sequential(1)) != 0 {
		t.Error("zero-byte traffic took time")
	}
	if d.Counters() != (Counters{}) {
		t.Errorf("zero-byte traffic recorded: %+v", d.Counters())
	}
}

func TestCountersSubAdd(t *testing.T) {
	a := Counters{ReadBytes: 10, WriteBytes: 20, ReadOps: 1, WriteOps: 2, BusyTime: 0.5}
	b := Counters{ReadBytes: 3, WriteBytes: 5, ReadOps: 1, WriteOps: 1, BusyTime: 0.25}
	d := a.Sub(b)
	if d.ReadBytes != 7 || d.WriteBytes != 15 || d.ReadOps != 0 || d.WriteOps != 1 {
		t.Errorf("Sub = %+v", d)
	}
	if d.TotalBytes() != 22 {
		t.Errorf("TotalBytes = %d", d.TotalBytes())
	}
	var acc Counters
	acc.Add(b)
	acc.Add(d)
	if acc != a {
		t.Errorf("Add round trip: %+v != %+v", acc, a)
	}
}

func TestBackedDeviceData(t *testing.T) {
	d := NewDevice("dram", DRAM, 1024, DRAMProfile())
	if d.Backed() {
		t.Fatal("device claims backing before attach")
	}
	d.AttachBacking(make([]byte, 1024))
	if !d.Backed() {
		t.Fatal("device not backed after attach")
	}
	buf := d.Data(100, 28)
	copy(buf, "hello heterogeneous memory!")
	if string(d.Data(100, 5)) != "hello" {
		t.Error("data did not persist in backing")
	}
}

func TestDataPanicsOutOfBounds(t *testing.T) {
	d := NewDevice("dram", DRAM, 1024, DRAMProfile())
	d.AttachBacking(make([]byte, 1024))
	for _, c := range []struct{ off, size int64 }{{-1, 4}, {1020, 8}, {0, 1025}, {4, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Data(%d,%d) did not panic", c.off, c.size)
				}
			}()
			d.Data(c.off, c.size)
		}()
	}
}

func TestAttachBackingSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched backing did not panic")
		}
	}()
	d := NewDevice("dram", DRAM, 1024, DRAMProfile())
	d.AttachBacking(make([]byte, 512))
}

func TestKindString(t *testing.T) {
	if DRAM.String() != "DRAM" || NVRAM.String() != "NVRAM" {
		t.Errorf("kind strings: %v %v", DRAM, NVRAM)
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind: %v", Kind(9))
	}
}

func newBackedPair(capacity int64) (*Platform, *Device, *Device) {
	p := NewPlatform(PlatformConfig{
		FastCapacity: capacity,
		SlowCapacity: capacity,
		CopyThreads:  4,
		Backed:       true,
	})
	return p, p.Fast, p.Slow
}

func TestCopyMovesBytesAndTime(t *testing.T) {
	p, fast, slow := newBackedPair(1 << 20)
	copy(fast.Data(0, 5), "tiers")
	el := p.Copier.Copy(slow, 100, fast, 0, 5)
	if el <= 0 {
		t.Fatal("copy took no time")
	}
	if p.Clock.Now() != el {
		t.Errorf("clock %v != elapsed %v", p.Clock.Now(), el)
	}
	if string(slow.Data(100, 5)) != "tiers" {
		t.Errorf("copied data = %q", slow.Data(100, 5))
	}
	if fast.Counters().ReadBytes != 5 || slow.Counters().WriteBytes != 5 {
		t.Errorf("traffic: fast=%+v slow=%+v", fast.Counters(), slow.Counters())
	}
}

func TestCopyZeroLength(t *testing.T) {
	p, fast, slow := newBackedPair(1 << 20)
	if el := p.Copier.Copy(slow, 0, fast, 0, 0); el != 0 {
		t.Errorf("zero-length copy took %v", el)
	}
	if p.Clock.Now() != 0 {
		t.Error("zero-length copy advanced clock")
	}
}

func TestCopyOutOfBoundsPanics(t *testing.T) {
	p, fast, slow := newBackedPair(1 << 10)
	cases := []struct{ dstOff, srcOff, n int64 }{
		{-1, 0, 4}, {0, -1, 4}, {1 << 10, 0, 4}, {0, 1020, 8}, {0, 0, -1},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Copy(dst@%d, src@%d, %d) did not panic", c.dstOff, c.srcOff, c.n)
				}
			}()
			p.Copier.Copy(slow, c.dstOff, fast, c.srcOff, c.n)
		}()
	}
}

func TestCopyDurationIsPipelinedMax(t *testing.T) {
	p := DefaultPlatform()
	n := int64(units.GB)
	threads := p.Copier.effectiveThreads(n)
	acc := Sequential(threads)
	rt := p.Fast.ReadTime(n, acc)
	wt := p.Slow.WriteTime(n, acc)
	want := math.Max(rt, wt) + p.Copier.LaunchOverhead
	if got := p.Copier.CopyTime(p.Slow, p.Fast, n); math.Abs(got-want) > 1e-12 {
		t.Errorf("CopyTime = %v, want %v", got, want)
	}
	// DRAM -> NVRAM is write-bound: the copy should take at least the
	// NVRAM write time.
	if got := p.Copier.CopyTime(p.Slow, p.Fast, n); got < wt {
		t.Errorf("copy %v faster than NVRAM write %v", got, wt)
	}
}

func TestSmallCopiesUseFewerThreads(t *testing.T) {
	e := NewCopyEngine(&Clock{}, 28)
	if got := e.effectiveThreads(1 << 10); got != 1 {
		t.Errorf("1KiB copy used %d threads", got)
	}
	if got := e.effectiveThreads(8 << 20); got != 2 {
		t.Errorf("8MiB copy used %d threads, want 2", got)
	}
	if got := e.effectiveThreads(1 << 30); got != 28 {
		t.Errorf("1GiB copy used %d threads, want 28", got)
	}
}

func TestCopyBandwidthDecreasesWithParallelismToNVRAM(t *testing.T) {
	// Paper §V-d: DRAM->NVRAM copy bandwidth decreases with increasing
	// parallelism. Model: more threads past the NVRAM write peak lowers
	// effective bandwidth.
	clock := &Clock{}
	fast := NewDevice("dram", DRAM, units.GB, DRAMProfile())
	slow := NewDevice("nvram", NVRAM, units.GB, NVRAMProfile())
	few := NewCopyEngine(clock, 4)
	many := NewCopyEngine(clock, 28)
	n := int64(512 * units.MB)
	tFew := few.CopyTime(slow, fast, n)
	tMany := many.CopyTime(slow, fast, n)
	if tMany <= tFew {
		t.Errorf("28-thread copy (%v) should be slower than 4-thread (%v)", tMany, tFew)
	}
}

func TestCopyWithinDeviceOverlap(t *testing.T) {
	p, fast, _ := newBackedPair(1 << 12)
	copy(fast.Data(0, 8), "abcdefgh")
	p.Copier.Copy(fast, 2, fast, 0, 8)
	if got := string(fast.Data(2, 8)); got != "abcdefgh" {
		t.Errorf("overlapping copy = %q", got)
	}
}

func TestDefaultPlatformConfiguration(t *testing.T) {
	p := DefaultPlatform()
	if p.Fast.Capacity != 180*units.GB {
		t.Errorf("fast capacity = %v", units.Bytes(p.Fast.Capacity))
	}
	if p.Slow.Capacity != 1300*units.GB {
		t.Errorf("slow capacity = %v", units.Bytes(p.Slow.Capacity))
	}
	if p.Fast.Kind != DRAM || p.Slow.Kind != NVRAM {
		t.Error("device kinds wrong")
	}
	if p.Device(DRAM) != p.Fast || p.Device(NVRAM) != p.Slow {
		t.Error("Device() lookup wrong")
	}
	if p.Fast.Backed() || p.Slow.Backed() {
		t.Error("default platform should be unbacked")
	}
}

func TestPlatformReset(t *testing.T) {
	p := DefaultPlatform()
	p.Copier.Copy(p.Slow, 0, p.Fast, 0, units.MB)
	if p.Clock.Now() == 0 {
		t.Fatal("copy did not advance clock")
	}
	p.Reset()
	if p.Clock.Now() != 0 || p.Fast.Counters() != (Counters{}) || p.Slow.Counters() != (Counters{}) {
		t.Error("reset did not clear state")
	}
}

func TestReadWriteTimePositiveProperty(t *testing.T) {
	p := DefaultPlatform()
	f := func(kb uint16, threads uint8, granKB uint8) bool {
		n := int64(kb) * 1024
		a := Access{Threads: int(threads), Granularity: int64(granKB) * 1024}
		rt := p.Slow.ReadTime(n, a)
		wt := p.Slow.WriteTime(n, a)
		if n == 0 {
			return rt == 0 && wt == 0
		}
		return rt > 0 && wt > 0 && !math.IsInf(rt, 0) && !math.IsInf(wt, 0) &&
			!math.IsNaN(rt) && !math.IsNaN(wt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCopyTimeMonotoneInSizeProperty(t *testing.T) {
	p := DefaultPlatform()
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return p.Copier.CopyTime(p.Slow, p.Fast, x) <= p.Copier.CopyTime(p.Slow, p.Fast, y)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
