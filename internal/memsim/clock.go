// Package memsim models a heterogeneous memory platform in virtual time.
//
// It is the hardware substitution layer for the CachedArrays reproduction:
// the paper evaluates on a real Cascade Lake machine with DRAM and Optane
// NVRAM; we model the devices' capacity and bandwidth characteristics and a
// multi-threaded copy engine, and account traffic the same way the paper's
// hardware performance counters do. All timing is virtual — the clock only
// advances when the simulation models compute or data movement — so
// terabyte-scale experiments run in milliseconds of host time.
package memsim

import (
	"fmt"

	"cachedarrays/internal/metrics"
	"cachedarrays/internal/tracing"
)

// Clock is a virtual-time clock measured in seconds. The zero value is a
// clock at time zero, ready to use.
type Clock struct {
	now float64

	// Tracer, when non-nil, records every advance into the execution
	// trace. A nil tracer costs one branch per advance.
	Tracer *tracing.Recorder

	// Metrics, when non-nil, is sampled on its virtual-time cadence:
	// every advance offers the new time to the registry, which samples
	// all registered series when the step crossed a sampling boundary.
	// A nil registry costs one branch per advance.
	Metrics *metrics.Registry

	// OnAdvance, when non-nil, runs after every advance with the new time
	// and the step size. The invariant checker hooks here to audit the
	// whole runtime state machine at every point virtual time moves; a
	// nil hook costs one branch per advance, the same discipline as the
	// tracer.
	OnAdvance func(now, dt float64)
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward by dt seconds. It panics on negative dt:
// virtual time is monotone and a negative advance always indicates a bug in
// the timing model.
func (c *Clock) Advance(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("memsim: negative clock advance %g", dt))
	}
	c.now += dt
	c.Tracer.ClockAdvance(c.now, dt)
	c.Metrics.Tick(c.now, dt)
	if c.OnAdvance != nil {
		c.OnAdvance(c.now, dt)
	}
}

// Reset rewinds the clock to zero. Experiments reuse one platform across
// iterations and reset between runs. An attached metrics registry rewinds
// with the clock: its next sampling boundary and recorded samples belong
// to the old timeline, so keeping them would make a reused clock+registry
// pair observably different from a fresh one (stale boundary, no early
// samples). Callers that need the old samples must detach the registry
// (Metrics = nil) before resetting — Platform.Reset does.
func (c *Clock) Reset() {
	c.now = 0
	c.Metrics.Rewind()
}
