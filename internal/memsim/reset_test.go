package memsim

import (
	"math/rand"
	"testing"

	"cachedarrays/internal/units"
)

// TestCopyEngineResetAfterPlatformReset is the regression test for the
// stale-mover bug: busyUntil survived Clock.Reset, so the first copy of a
// platform's second run queued behind the previous run's drained work and
// the mover appeared busy at virtual time zero.
func TestCopyEngineResetAfterPlatformReset(t *testing.T) {
	p := NewPlatform(PlatformConfig{
		FastCapacity: units.MB, SlowCapacity: units.MB, CopyThreads: 4,
	})
	p.Copier.Async = true

	// First run: queue work on the mover, leave it busy.
	p.Copier.Copy(p.Slow, 0, p.Fast, 0, 256*units.KB)
	if p.Copier.BusyUntil() <= 0 {
		t.Fatal("async copy did not occupy the mover")
	}

	p.Reset()
	if got := p.Copier.BusyUntil(); got != 0 {
		t.Fatalf("after Platform.Reset the mover is still busy until %v", got)
	}

	// Second run: the first copy must start at time zero, exactly like
	// on a fresh engine.
	el := p.Copier.Copy(p.Slow, 0, p.Fast, 0, 256*units.KB)
	if got, want := p.Copier.BusyUntil(), el; got != want {
		t.Fatalf("first copy after reset finishes at %v, want %v (queued behind stale work)", got, want)
	}
}

// TestReusedPlatformMatchesFresh is the reset-semantics property test: a
// platform that ran a workload and was Reset produces byte-identical
// counters and timings to a factory-fresh platform running the same
// workload — for both movement designs.
func TestReusedPlatformMatchesFresh(t *testing.T) {
	workload := func(p *Platform) {
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			n := int64(rng.Intn(int(512*units.KB))) + 1
			if rng.Intn(2) == 0 {
				p.Copier.Copy(p.Slow, 0, p.Fast, 0, n)
			} else {
				p.Copier.Copy(p.Fast, 0, p.Slow, 0, n)
			}
			if rng.Intn(4) == 0 {
				p.Fast.Read(n, Sequential(4))
				p.Slow.Write(n, Access{Threads: 2, Granularity: 64})
			}
		}
	}
	for _, async := range []bool{false, true} {
		mk := func() *Platform {
			p := NewPlatform(PlatformConfig{
				FastCapacity: units.MB, SlowCapacity: units.MB, CopyThreads: 4,
			})
			p.Copier.Async = async
			return p
		}
		reused := mk()
		workload(reused)
		reused.Reset()
		workload(reused)

		fresh := mk()
		workload(fresh)

		if reused.Fast.Counters() != fresh.Fast.Counters() {
			t.Errorf("async=%v: fast counters diverge: reused %+v, fresh %+v",
				async, reused.Fast.Counters(), fresh.Fast.Counters())
		}
		if reused.Slow.Counters() != fresh.Slow.Counters() {
			t.Errorf("async=%v: slow counters diverge: reused %+v, fresh %+v",
				async, reused.Slow.Counters(), fresh.Slow.Counters())
		}
		if reused.Clock.Now() != fresh.Clock.Now() {
			t.Errorf("async=%v: clocks diverge: reused %v, fresh %v",
				async, reused.Clock.Now(), fresh.Clock.Now())
		}
		if reused.Copier.BusyUntil() != fresh.Copier.BusyUntil() {
			t.Errorf("async=%v: movers diverge: reused %v, fresh %v",
				async, reused.Copier.BusyUntil(), fresh.Copier.BusyUntil())
		}
	}
}

// TestCountersSubAcrossReset pins the snapshot-diff semantics the engine
// relies on for per-iteration metrics: Sub of a later snapshot against an
// earlier one isolates exactly the traffic in between, and ResetCounters
// starts a clean epoch (snapshots must not be carried across it).
func TestCountersSubAcrossReset(t *testing.T) {
	d := NewDevice("dram", DRAM, units.MB, DRAMProfile())
	d.Read(1000, Sequential(1))
	d.Write(500, Sequential(1))
	snap := d.Counters()

	d.Read(300, Sequential(1))
	d.Write(200, Sequential(1))
	delta := d.Counters().Sub(snap)
	if delta.ReadBytes != 300 || delta.WriteBytes != 200 {
		t.Fatalf("delta = %+v, want reads 300 writes 200", delta)
	}
	if delta.ReadOps != 1 || delta.WriteOps != 1 {
		t.Fatalf("delta ops = %+v, want 1/1", delta)
	}
	if delta.BusyTime <= 0 || delta.BusyTime >= d.Counters().BusyTime {
		t.Fatalf("delta busy time %v outside (0, total)", delta.BusyTime)
	}

	d.ResetCounters()
	if d.Counters() != (Counters{}) {
		t.Fatalf("counters after reset: %+v", d.Counters())
	}
	d.Read(64, Sequential(1))
	epoch := d.Counters()
	if epoch.ReadBytes != 64 || epoch.WriteBytes != 0 {
		t.Fatalf("post-reset epoch = %+v", epoch)
	}
}
