package memsim

import (
	"testing"

	"cachedarrays/internal/faults"
	"cachedarrays/internal/metrics"
	"cachedarrays/internal/units"
)

// TestClockResetRewindsMetrics is the regression test for the
// platform-pooling sampling-boundary bug: Clock.Reset used to leave an
// attached registry's next sampling boundary (and recorded samples) on
// the old timeline, so a reused clock+registry pair skipped the early
// samples a fresh pair records.
func TestClockResetRewindsMetrics(t *testing.T) {
	sampled := func(c *Clock) int {
		reg := metrics.New(0.5)
		reg.Gauge("g", func() float64 { return 1 })
		c.Metrics = reg
		for i := 0; i < 10; i++ {
			c.Advance(0.3)
		}
		c.Metrics = nil
		return reg.Samples()
	}

	fresh := &Clock{}
	want := sampled(fresh)
	if want == 0 {
		t.Fatal("fresh clock recorded no samples")
	}

	reused := &Clock{}
	warmup := metrics.New(0.5)
	warmup.Gauge("g", func() float64 { return 1 })
	reused.Metrics = warmup
	reused.Advance(1.7) // leave the boundary mid-interval
	reused.Reset()
	if reused.Now() != 0 {
		t.Fatalf("clock at %v after Reset", reused.Now())
	}
	if warmup.Samples() != 0 {
		t.Fatalf("attached registry kept %d samples across Reset", warmup.Samples())
	}
	reused.Metrics = nil
	if got := sampled(reused); got != want {
		t.Fatalf("reused clock sampled %d times, fresh %d", got, want)
	}
}

// TestPlatformResetDetachesHooks: Platform.Reset must clear every
// per-run instrumentation hook (a pooled platform must never leak one
// run's tracer, registry, audit hook or fault injector into the next
// run) — while the detached registry keeps its samples for export.
func TestPlatformResetDetachesHooks(t *testing.T) {
	p := NewPlatform(PlatformConfig{
		FastCapacity: units.MB, SlowCapacity: units.MB, CopyThreads: 2,
	})
	reg := metrics.New(1e-7) // a 64 KB copy advances only microseconds of virtual time
	reg.Gauge("g", func() float64 { return 1 })
	p.Clock.Metrics = reg
	p.Clock.OnAdvance = func(now, dt float64) {}

	p.Copier.Copy(p.Slow, 0, p.Fast, 0, 64*units.KB)
	if reg.Samples() == 0 {
		t.Fatal("workload recorded no samples")
	}
	got := reg.Samples()

	// Attach injectors after the workload: the test only checks that
	// Reset detaches them (a zero injector cannot serve traffic).
	p.Fast.Faults = &faults.Injector{}
	p.Slow.Faults = &faults.Injector{}
	p.Copier.Faults = &faults.Injector{}

	p.Reset()
	if p.Clock.Tracer != nil || p.Clock.Metrics != nil || p.Clock.OnAdvance != nil {
		t.Fatal("Platform.Reset left a clock hook attached")
	}
	if p.Fast.Faults != nil || p.Slow.Faults != nil || p.Copier.Faults != nil {
		t.Fatal("Platform.Reset left a fault injector attached")
	}
	// The finished run's samples belong to its owner: the registry was
	// detached before the clock rewound, so they must survive.
	if reg.Samples() != got {
		t.Fatalf("Reset rewound the detached registry: %d samples, had %d", reg.Samples(), got)
	}
}
