package memsim

import (
	"math"
	"testing"

	"cachedarrays/internal/units"
)

func asyncPair() (*Clock, *Device, *Device, *CopyEngine) {
	clock := &Clock{}
	fast := NewDevice("dram", DRAM, units.GB, DRAMProfile())
	slow := NewDevice("nvram", NVRAM, units.GB, NVRAMProfile())
	e := NewCopyEngine(clock, 8)
	e.Async = true
	return clock, fast, slow, e
}

func TestAsyncCopyDoesNotAdvanceClock(t *testing.T) {
	clock, fast, slow, e := asyncPair()
	el := e.Copy(slow, 0, fast, 0, 64*units.MB)
	if el <= 0 {
		t.Fatal("copy reported zero duration")
	}
	if clock.Now() != 0 {
		t.Fatalf("async copy advanced the clock to %v", clock.Now())
	}
	if got := e.BusyUntil(); math.Abs(got-el) > 1e-12 {
		t.Fatalf("BusyUntil = %v, want %v", got, el)
	}
}

func TestAsyncQueueSerializes(t *testing.T) {
	_, fast, slow, e := asyncPair()
	a := e.Copy(slow, 0, fast, 0, 64*units.MB)
	b := e.Copy(slow, 0, fast, 0, 64*units.MB)
	if got := e.BusyUntil(); math.Abs(got-(a+b)) > 1e-12 {
		t.Fatalf("two queued copies: BusyUntil = %v, want %v", got, a+b)
	}
}

func TestAsyncIdleMoverStartsAtNow(t *testing.T) {
	clock, fast, slow, e := asyncPair()
	e.Copy(slow, 0, fast, 0, 64*units.MB)
	drain := e.BusyUntil()
	// Let the application run far past the queue.
	clock.Advance(drain + 5)
	if got := e.BusyUntil(); got != clock.Now() {
		t.Fatalf("idle mover BusyUntil = %v, want now %v", got, clock.Now())
	}
	// The next copy starts at now, not at the stale busyUntil.
	el := e.Copy(slow, 0, fast, 0, 64*units.MB)
	if got, want := e.BusyUntil(), clock.Now()+el; math.Abs(got-want) > 1e-12 {
		t.Fatalf("restarted mover BusyUntil = %v, want %v", got, want)
	}
}

func TestSyncBusyUntilIsNow(t *testing.T) {
	clock := &Clock{}
	e := NewCopyEngine(clock, 4)
	clock.Advance(1.5)
	if e.BusyUntil() != 1.5 {
		t.Fatalf("sync BusyUntil = %v", e.BusyUntil())
	}
}

func TestWriteThreadCapRestoresPeakWriteBandwidth(t *testing.T) {
	clock := &Clock{}
	fast := NewDevice("dram", DRAM, units.GB, DRAMProfile())
	slow := NewDevice("nvram", NVRAM, units.GB, NVRAMProfile())
	uncapped := NewCopyEngine(clock, 28)
	capped := NewCopyEngine(clock, 28)
	capped.WriteThreadCap = slow.Profile.WritePeakThreads
	n := int64(512 * units.MB)
	tu := uncapped.CopyTime(slow, fast, n)
	tc := capped.CopyTime(slow, fast, n)
	if tc >= tu {
		t.Fatalf("capped copy %v not faster than uncapped %v", tc, tu)
	}
	// Capped bandwidth should reach the NVRAM non-temporal peak.
	if bw := float64(n) / tc; bw < 0.95*slow.Profile.PeakWrite {
		t.Fatalf("capped bandwidth %.1f GB/s below peak %.1f GB/s", bw/1e9, slow.Profile.PeakWrite/1e9)
	}
	// The cap must not affect read-bound directions (NVRAM -> DRAM).
	if a, b := capped.CopyTime(fast, slow, n), uncapped.CopyTime(fast, slow, n); a != b {
		t.Fatalf("cap changed read-bound copy: %v vs %v", a, b)
	}
}

func TestAsyncBackedCopyStillMovesBytes(t *testing.T) {
	clock := &Clock{}
	fast := NewDevice("dram", DRAM, 4096, DRAMProfile())
	slow := NewDevice("nvram", NVRAM, 4096, NVRAMProfile())
	fast.AttachBacking(make([]byte, 4096))
	slow.AttachBacking(make([]byte, 4096))
	e := NewCopyEngine(clock, 2)
	e.Async = true
	copy(fast.Data(0, 5), "async")
	e.Copy(slow, 100, fast, 0, 5)
	if string(slow.Data(100, 5)) != "async" {
		t.Fatal("async copy lost the bytes")
	}
}
