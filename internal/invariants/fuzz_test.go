package invariants_test

import (
	"errors"
	"testing"

	"cachedarrays/internal/dm"
	"cachedarrays/internal/faults"
	"cachedarrays/internal/gcsim"
	"cachedarrays/internal/invariants"
	"cachedarrays/internal/memsim"
	"cachedarrays/internal/policy"
)

// fuzzPlatform builds a deliberately tiny two-tier platform (64 KiB fast,
// 256 KiB slow) so fuzzed hint sequences hit capacity pressure, forced
// evictions, GC triggers and defragmentation within a few dozen
// operations.
func fuzzPlatform() *memsim.Platform {
	clock := &memsim.Clock{}
	return &memsim.Platform{
		Clock:   clock,
		Fast:    memsim.NewDevice("fast", memsim.DRAM, 64<<10, memsim.DRAMProfile()),
		Slow:    memsim.NewDevice("slow", memsim.NVRAM, 256<<10, memsim.NVRAMProfile()),
		Copier:  memsim.NewCopyEngine(clock, 4),
		Compute: memsim.DefaultCompute(),
	}
}

// FuzzHintSequence drives the full runtime stack — policy over data
// manager over simulated devices, with an optional fuzzer-chosen fault
// schedule — through an arbitrary hint sequence, with the invariants
// checker attached to the clock as the oracle. Any state-machine
// violation, conservation failure, or panic at any clock advance is a
// finding.
func FuzzHintSequence(f *testing.F) {
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{3, 10, 0x04, 1, 0x14, 2, 0x24, 3, 0x31, 0, 0x41, 1, 0x52, 2})
	f.Add([]byte{7, 200, 0x00, 255, 0x00, 254, 0x01, 0, 0x02, 1, 0x05, 0, 0x03, 2, 0x00, 9})
	f.Fuzz(runHintSequence)
}

// runHintSequence is the fuzz body, shared with the deterministic
// worst-case budget test.
func runHintSequence(t *testing.T, data []byte) {
	{
		if len(data) < 3 {
			return
		}
		p := fuzzPlatform()
		m := dm.New(p)

		// The first two bytes pick a fault schedule: deterministic, and
		// aggressive enough that retry/backoff and fallback paths run
		// under the oracle. A zero first byte runs fault-free.
		if data[0] != 0 {
			inj := faults.New(faults.Schedule{
				Seed: int64(data[0]),
				Episodes: []faults.Episode{
					{Kind: faults.AllocFail, Target: "fast", T0: 0, Prob: float64(data[1]) / 512},
					{Kind: faults.CopyError, T0: 0, Prob: float64(data[1]) / 1024},
					{Kind: faults.CopyStall, Target: "slow", T0: 0, Stall: 1e-6},
					{Kind: faults.Bandwidth, Target: "slow", T0: 1e-4, T1: 2e-4, Factor: 0.5},
					{Kind: faults.CapacityShrink, Target: "fast", T0: 3e-4, Bytes: 16 << 10},
				},
			}, p.Clock.Now)
			p.Fast.Faults = inj
			p.Slow.Faults = inj
			p.Copier.Faults = inj
			m.SetFaults(inj)
		}

		gc := gcsim.New(m, p.Clock)
		pol := policy.NewTieredConfig(m, policy.Config{
			LocalAlloc: true, FetchOnRead: true, FetchOnWrite: true,
			PreferCleanVictims: data[1]&1 == 1,
		}, "fuzz", gc)
		chk := invariants.New(m, p).WithPolicy(pol)
		chk.Attach()

		var objs []*dm.Object
		pick := func(arg byte) *dm.Object {
			if len(objs) == 0 {
				return nil
			}
			return objs[int(arg)%len(objs)]
		}
		drop := func(o *dm.Object) {
			for i, x := range objs {
				if x == o {
					objs = append(objs[:i], objs[i+1:]...)
					return
				}
			}
		}

		ops := data[2:]
		// Bound the work per input: every op can advance the clock several
		// times and every advance runs a full O(state) audit, so an
		// unbounded fuzzer-grown input could take minutes for no extra
		// state-space coverage.
		if len(ops) > 512 {
			ops = ops[:512]
		}
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], ops[i+1]
			switch op % 8 {
			case 0: // new object, 256 B .. ~25 KiB
				size := int64(arg)*97 + 256
				o, err := pol.NewObject(size)
				if err != nil {
					// Exhaustion and injected faults are expected
					// under pressure; anything else is a finding.
					if !errors.Is(err, dm.ErrExhausted) && !errors.Is(err, dm.ErrFaultInjected) {
						t.Fatalf("op %d: NewObject(%d): %v", i, size, err)
					}
					continue
				}
				objs = append(objs, o)
			case 1:
				if o := pick(arg); o != nil {
					pol.WillRead(o)
				}
			case 2:
				if o := pick(arg); o != nil {
					pol.WillWrite(o)
				}
			case 3:
				if o := pick(arg); o != nil {
					pol.WillUse(o)
				}
			case 4:
				if o := pick(arg); o != nil {
					pol.Archive(o)
				}
			case 5:
				if o := pick(arg); o != nil {
					pol.Retire(o)
					drop(o)
				}
			case 6: // pinned hint window: pin, touch, unpin
				if o := pick(arg); o != nil {
					pol.Pin(o)
					pol.WillWrite(o)
					pol.Unpin(o)
				}
			case 7:
				gc.Collect()
			}
			if err := chk.Err(); err != nil {
				t.Fatalf("op %d (%d,%d): %v", i, op, arg, err)
			}
		}

		// Final quiesce: collect the dead, then demand the full audit —
		// including no-leaked-regions and the policy's accounting.
		gc.Collect()
		if err := chk.Err(); err != nil {
			t.Fatal(err)
		}
		if err := chk.CheckQuiesced(); err != nil {
			t.Fatal(err)
		}
	}
}
