package invariants_test

import "testing"

func TestFuzzWorstCaseBudget(t *testing.T) {
	data := make([]byte, 2+512)
	data[0], data[1] = 255, 255
	for i := 2; i < len(data); i += 2 {
		switch (i / 2) % 4 {
		case 0:
			data[i], data[i+1] = 0, 0 // alloc 256B
		case 1:
			data[i], data[i+1] = 2, byte(i) // willwrite
		case 2:
			data[i], data[i+1] = 0, 255 // alloc 25KB
		case 3:
			data[i], data[i+1] = 1, byte(i) // willread
		}
	}
	runHintSequence(t, data)
}
