// Package invariants audits the simulated runtime's global consistency
// while it runs. The data manager and the policy each validate their own
// bookkeeping (dm.Manager.CheckInvariants, policy.Tiered.CheckInvariants);
// this package composes those with platform-level conservation laws and
// hooks the whole audit to the virtual clock, so every point at which
// simulated time moves is a checkpoint:
//
//   - virtual time is monotone and finite;
//   - heap bytes are conserved per tier (used + free == capacity) and
//     occupancy never exceeds the device;
//   - device traffic counters are finite and never run backwards;
//   - the object/region state machine is legal (every allocator block has
//     exactly one region, regions point back at their objects, sizes
//     match — delegated to the manager's own checker);
//   - at quiesce points, additionally: no leaked regions (every region is
//     bound to a live object) and the policy's residency accounting is
//     exact.
//
// The checker is the oracle for the fuzz targets and backs `carun -check`;
// attached to a clock it costs one function call per advance, and it is
// never attached unless asked for, so ordinary runs are untouched.
package invariants

import (
	"fmt"
	"math"

	"cachedarrays/internal/dm"
	"cachedarrays/internal/memsim"
)

// Policy is the optional policy-level audit the checker runs at quiesce
// points (policy.Tiered satisfies it). Policy checks cannot run at
// arbitrary clock advances: mid-operation, a freshly allocated region is
// legitimately unbound while its bytes are in flight.
type Policy interface {
	CheckInvariants() error
}

// Checker audits a manager + platform pair. The zero value is not usable;
// construct with New.
type Checker struct {
	m   *dm.Manager
	p   *memsim.Platform
	pol Policy

	lastNow  float64
	lastFast memsim.Counters
	lastSlow memsim.Counters

	checks   int64
	firstErr error
	errAt    float64
}

// New builds a checker over a manager and the platform it manages.
func New(m *dm.Manager, p *memsim.Platform) *Checker {
	return &Checker{m: m, p: p, lastNow: p.Clock.Now()}
}

// WithPolicy adds the policy-level audit to quiesce-point checks and
// returns the checker for chaining.
func (c *Checker) WithPolicy(pol Policy) *Checker {
	c.pol = pol
	return c
}

// Attach hooks the checker to the platform's clock: every Advance runs the
// mid-operation audit. The hook records the first violation (with its
// virtual timestamp, via Err) rather than panicking, so the simulation
// finishes and the caller reports the failure with full context.
func (c *Checker) Attach() {
	c.p.Clock.OnAdvance = func(now, dt float64) { c.onAdvance(now, dt) }
}

// Detach removes the clock hook.
func (c *Checker) Detach() {
	c.p.Clock.OnAdvance = nil
}

// OnAdvance runs the per-advance audit directly. The clock has a single
// OnAdvance slot, so a multi-tenant dispatch loop claims the slot itself
// and fans each advance out to every tenant's checker through this method;
// it is exactly what Attach wires up.
func (c *Checker) OnAdvance(now, dt float64) { c.onAdvance(now, dt) }

// Checks returns how many audits have run.
func (c *Checker) Checks() int64 { return c.checks }

// Err returns the first violation found, annotated with the virtual time
// at which it was caught, or nil.
func (c *Checker) Err() error {
	if c.firstErr == nil {
		return nil
	}
	return fmt.Errorf("invariants: at t=%.9fs: %w", c.errAt, c.firstErr)
}

// onAdvance is the clock hook: the mid-operation audit, skipped while the
// manager is relocating regions (Defrag holds the allocator and the region
// index transiently out of sync; the next advance catches up). After the
// first violation the checker stands down — one failure is diagnostic,
// thousands are noise.
func (c *Checker) onAdvance(now, dt float64) {
	if c.firstErr != nil {
		return
	}
	if dt < 0 || math.IsNaN(dt) || math.IsInf(dt, 0) {
		c.fail(now, fmt.Errorf("clock advanced by illegal step %g", dt))
		return
	}
	if !c.m.Quiesced() {
		c.lastNow = now
		return
	}
	if err := c.Check(); err != nil {
		c.fail(now, err)
	}
}

func (c *Checker) fail(now float64, err error) {
	c.firstErr = err
	c.errAt = now
}

// Check runs the mid-operation audit now: platform conservation laws plus
// the manager's full state-machine check. Safe at any clock advance — it
// tolerates transiently unbound regions (data in flight during a prefetch
// or eviction copy).
func (c *Checker) Check() error {
	c.checks++
	now := c.p.Clock.Now()
	if math.IsNaN(now) || math.IsInf(now, 0) {
		return fmt.Errorf("invariants: clock is %g", now)
	}
	if now < c.lastNow {
		return fmt.Errorf("invariants: clock ran backwards: %g after %g", now, c.lastNow)
	}
	c.lastNow = now
	devices := [dm.NumClasses]*memsim.Device{c.p.Fast, c.p.Slow}
	for cls := dm.Class(0); cls < dm.NumClasses; cls++ {
		a := c.m.AllocatorFor(cls)
		used, free, capacity := a.Used(), a.FreeBytes(), a.Capacity()
		if used < 0 || free < 0 {
			return fmt.Errorf("invariants: %v heap accounting negative (used %d, free %d)", cls, used, free)
		}
		if used+free != capacity {
			return fmt.Errorf("invariants: %v heap bytes not conserved: used %d + free %d != capacity %d",
				cls, used, free, capacity)
		}
		if capacity > devices[cls].Capacity {
			return fmt.Errorf("invariants: %v allocator capacity %d exceeds device capacity %d",
				cls, capacity, devices[cls].Capacity)
		}
	}
	if err := c.checkCounters(c.p.Fast, &c.lastFast); err != nil {
		return err
	}
	if err := c.checkCounters(c.p.Slow, &c.lastSlow); err != nil {
		return err
	}
	return c.m.CheckInvariants()
}

// checkCounters validates one device's traffic counters: finite,
// non-negative, and never decreasing between audits.
func (c *Checker) checkCounters(d *memsim.Device, last *memsim.Counters) error {
	cur := d.Counters()
	if cur.ReadBytes < 0 || cur.WriteBytes < 0 || cur.ReadOps < 0 || cur.WriteOps < 0 {
		return fmt.Errorf("invariants: %s counters negative: %+v", d.Name, cur)
	}
	if math.IsNaN(cur.BusyTime) || math.IsInf(cur.BusyTime, 0) || cur.BusyTime < 0 {
		return fmt.Errorf("invariants: %s busy time is %g", d.Name, cur.BusyTime)
	}
	// Counters legitimately reset to zero between measurement windows
	// (ResetCounters); "ran backwards" means a partial decrease.
	if cur != (memsim.Counters{}) &&
		(cur.ReadBytes < last.ReadBytes || cur.WriteBytes < last.WriteBytes ||
			cur.ReadOps < last.ReadOps || cur.WriteOps < last.WriteOps) {
		return fmt.Errorf("invariants: %s counters ran backwards: %+v after %+v", d.Name, cur, *last)
	}
	*last = cur
	return nil
}

// CheckQuiesced runs the full audit at a quiesce point (between hints or
// iterations, when no operation is mid-flight): everything Check does,
// plus no-leaked-regions — every allocated block's region must be bound
// to a live object — and the policy's own invariants when one is attached.
func (c *Checker) CheckQuiesced() error {
	if err := c.Check(); err != nil {
		return err
	}
	for cls := dm.Class(0); cls < dm.NumClasses; cls++ {
		var leakErr error
		c.m.AllocatorFor(cls).Blocks(func(off, size int64) bool {
			r := c.m.RegionAt(cls, off)
			if r == nil {
				leakErr = fmt.Errorf("invariants: %v block at %d has no region", cls, off)
				return false
			}
			o := c.m.Parent(r)
			if o == nil {
				leakErr = fmt.Errorf("invariants: leaked %v region at %d (%d bytes, unbound at quiesce)",
					cls, off, size)
				return false
			}
			if o.Retired() {
				leakErr = fmt.Errorf("invariants: %v region at %d bound to retired object %d",
					cls, off, o.ID())
				return false
			}
			return true
		})
		if leakErr != nil {
			return leakErr
		}
	}
	if c.pol != nil {
		return c.pol.CheckInvariants()
	}
	return nil
}
