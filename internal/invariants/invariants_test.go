package invariants_test

import (
	"strings"
	"testing"

	"cachedarrays/internal/dm"
	"cachedarrays/internal/invariants"
	"cachedarrays/internal/memsim"
)

func testPlatform() *memsim.Platform {
	clock := &memsim.Clock{}
	return &memsim.Platform{
		Clock:   clock,
		Fast:    memsim.NewDevice("fast", memsim.DRAM, 1<<20, memsim.DRAMProfile()),
		Slow:    memsim.NewDevice("slow", memsim.NVRAM, 4<<20, memsim.NVRAMProfile()),
		Copier:  memsim.NewCopyEngine(clock, 4),
		Compute: memsim.DefaultCompute(),
	}
}

func TestHealthyRunPasses(t *testing.T) {
	p := testPlatform()
	m := dm.New(p)
	chk := invariants.New(m, p)
	chk.Attach()

	o, err := m.NewObject(64<<10, dm.Fast)
	if err != nil {
		t.Fatal(err)
	}
	y, err := m.Allocate(dm.Slow, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CopyToE(y, m.GetPrimary(o)); err != nil { // advances the clock -> audits
		t.Fatal(err)
	}
	if err := m.Link(m.GetPrimary(o), y); err != nil {
		t.Fatal(err)
	}
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
	if chk.Checks() == 0 {
		t.Fatal("attached checker never audited despite clock advances")
	}
	if err := chk.CheckQuiesced(); err != nil {
		t.Fatal(err)
	}
}

func TestDetectsLeakedRegionAtQuiesce(t *testing.T) {
	p := testPlatform()
	m := dm.New(p)
	chk := invariants.New(m, p)

	r, err := m.Allocate(dm.Fast, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Mid-operation, an unbound region is legal (its bytes are in
	// flight)...
	if err := chk.Check(); err != nil {
		t.Fatalf("mid-operation check rejected a transient unbound region: %v", err)
	}
	// ...but at a quiesce point it is a leak.
	err = chk.CheckQuiesced()
	if err == nil || !strings.Contains(err.Error(), "leaked") {
		t.Fatalf("CheckQuiesced = %v, want leaked-region violation", err)
	}
	m.Free(r)
	if err := chk.CheckQuiesced(); err != nil {
		t.Fatalf("after freeing the leak: %v", err)
	}
}

func TestDetectsClockRunningBackwards(t *testing.T) {
	p := testPlatform()
	m := dm.New(p)
	chk := invariants.New(m, p)

	p.Clock.Advance(1.0)
	if err := chk.Check(); err != nil {
		t.Fatal(err)
	}
	p.Clock.Reset() // rewinds time under the checker's feet
	err := chk.Check()
	if err == nil || !strings.Contains(err.Error(), "backwards") {
		t.Fatalf("Check = %v, want clock-ran-backwards violation", err)
	}
}

func TestAttachedCheckerRecordsFirstViolationWithTimestamp(t *testing.T) {
	p := testPlatform()
	m := dm.New(p)
	chk := invariants.New(m, p)
	chk.Attach()

	p.Clock.Advance(2.0)
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
	p.Clock.Reset()
	p.Clock.Advance(0.5) // now < lastNow: caught by the hook
	err := chk.Err()
	if err == nil || !strings.Contains(err.Error(), "at t=") {
		t.Fatalf("Err = %v, want timestamped violation", err)
	}
	before := chk.Checks()
	p.Clock.Advance(0.25) // checker stands down after the first violation
	if chk.Checks() != before {
		t.Fatal("checker kept auditing after recording a violation")
	}
	chk.Detach()
	if p.Clock.OnAdvance != nil {
		t.Fatal("Detach left the clock hook installed")
	}
}
