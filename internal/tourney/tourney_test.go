package tourney

import (
	"reflect"
	"testing"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/models"
	"cachedarrays/internal/sched"
	"cachedarrays/internal/units"
)

// testOptions is a small, fast tournament: two policies, two workloads,
// one fault variant.
func testOptions() Options {
	build := func() (*models.Model, error) { return models.ResNet(50, 16), nil }
	return Options{
		Modes: []string{"CA:0", "CA:TG"},
		Workloads: []Workload{
			{Name: "resnet", Build: build,
				Cfg: engine.Config{FastCapacity: 2 * units.GB, SlowCapacity: 64 * units.GB}},
			{Name: "resnet-tight", Build: build,
				Cfg: engine.Config{FastCapacity: 512 * units.MB, SlowCapacity: 64 * units.GB}},
		},
		Faults:     []FaultVariant{{Name: "bw", Spec: "seed=7;bw:{slow}:t0=0.01,factor=0.25"}},
		Iterations: 2,
	}
}

func TestRunShapeAndRanking(t *testing.T) {
	res, err := Run(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 2; len(res.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(res.Cells), want)
	}
	if len(res.Scores) != 2 {
		t.Fatalf("scores = %d, want 2", len(res.Scores))
	}
	for i, s := range res.Scores {
		if s.Rank != i+1 {
			t.Errorf("score %d has rank %d", i, s.Rank)
		}
		if s.RelTime < 1 {
			t.Errorf("%s: relative time %.3f below 1 (better than the best?)", s.Mode, s.RelTime)
		}
		if i > 0 && s.RelTime < res.Scores[i-1].RelTime {
			t.Errorf("ranking not sorted: %.3f after %.3f", s.RelTime, res.Scores[i-1].RelTime)
		}
		if s.FaultDegradation < 1 {
			t.Errorf("%s: fault degradation %.3f below 1", s.Mode, s.FaultDegradation)
		}
	}
	if res.Scores[0].Wins == 0 {
		t.Error("the winning mode won no workload")
	}
}

// TestRunDeterministic: two tournaments over the same options must be
// byte-identical in every rendering — the property the CI smoke pins.
func TestRunDeterministic(t *testing.T) {
	a, err := Run(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical tournaments differ")
	}
	if a.Ranking().CSV() != b.Ranking().CSV() {
		t.Fatal("ranking CSV not byte-identical")
	}
	if a.CellTable().CSV() != b.CellTable().CSV() {
		t.Fatal("cell CSV not byte-identical")
	}
}

// TestRunWarmCache: a second tournament through the same cached scheduler
// simulates nothing — every clean cell is served from the result cache.
func TestRunWarmCache(t *testing.T) {
	cache, err := sched.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := &sched.Scheduler{Cache: cache}
	opts := testOptions()
	opts.Faults = []FaultVariant{} // faulted cells always bypass the cache
	opts.Sched = s
	cold, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	coldSims := s.Simulations()
	if coldSims == 0 {
		t.Fatal("cold tournament simulated nothing")
	}
	warm, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Simulations(); got != coldSims {
		t.Fatalf("warm tournament simulated %d new cells, want 0", got-coldSims)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("cache-served tournament differs from the simulated one")
	}
}

func TestRunRejectsNonCAMode(t *testing.T) {
	opts := testOptions()
	opts.Modes = []string{"2LM:0"}
	if _, err := Run(opts); err == nil {
		t.Fatal("2LM baseline accepted as a tournament policy")
	}
	opts.Modes = []string{"CA:BOGUS"}
	if _, err := Run(opts); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestDefaultWorkloads: the standard matrix has the documented seven
// columns and the tight variants actually constrain DRAM.
func TestDefaultWorkloads(t *testing.T) {
	ws := DefaultWorkloads(64)
	if len(ws) != 7 {
		t.Fatalf("workloads = %d, want 7", len(ws))
	}
	names := map[string]bool{}
	tight, cxl := 0, 0
	for _, w := range ws {
		if names[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		names[w.Name] = true
		if w.Cfg.FastCapacity != 0 {
			tight++
		}
		if w.Cfg.SlowTier == "cxl" {
			cxl++
		}
		if m, err := w.Build(); err != nil || m == nil {
			t.Errorf("%s: build failed: %v", w.Name, err)
		}
	}
	if tight != 3 || cxl != 1 {
		t.Errorf("tight=%d cxl=%d, want 3 and 1", tight, cxl)
	}
}
