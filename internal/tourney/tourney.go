// Package tourney runs the policy tournament: every candidate policy mode
// against every workload — the paper's figure configurations plus
// fault-injected variants — through the shared run scheduler, producing a
// deterministic ranked comparison.
//
// The tournament answers the question the per-figure experiments cannot:
// across the whole workload matrix, which policy is the best default, by
// how much, and how gracefully does each degrade when the platform
// misbehaves? Every run is a deterministic virtual-time simulation, so
// two tournaments over the same configuration render byte-identical
// tables — the property the CI smoke job pins.
package tourney

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cachedarrays/internal/cluster"
	"cachedarrays/internal/engine"
	"cachedarrays/internal/experiments"
	"cachedarrays/internal/memsim"
	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
	"cachedarrays/internal/sched"
	"cachedarrays/internal/units"
)

// Workload is one tournament column: a named model build plus the engine
// configuration (capacities, slow-tier technology) it runs under.
type Workload struct {
	Name string
	// Build constructs a private model instance (cells may run
	// concurrently; they never share a model).
	Build func() (*models.Model, error)
	// Cfg is the workload's base engine configuration; the tournament
	// fills Iterations and FaultSpec per cell.
	Cfg engine.Config
}

// slowDevice names the workload's slow device for fault-spec templating.
func (w Workload) slowDevice() string {
	if w.Cfg.SlowTier == "cxl" {
		return "cxl"
	}
	return "nvram"
}

// FaultVariant is one fault-injected re-run of every (mode, workload)
// pair. The spec may reference {slow}, replaced by the workload's slow
// device name ("nvram" or "cxl") so bandwidth episodes hit the right
// device on every workload.
type FaultVariant struct {
	Name string
	Spec string
}

// DefaultFaults returns the standard degradation probes: a transient
// fast-tier allocation-failure episode and a slow-tier bandwidth
// collapse. Both are seeded, so faulted runs are as deterministic as
// clean ones.
func DefaultFaults() []FaultVariant {
	return []FaultVariant{
		{Name: "allocfail", Spec: "seed=42;allocfail:fast:t0=0.1,p=0.3"},
		{Name: "bwslow", Spec: "seed=42;bw:{slow}:t0=0.2,factor=0.25"},
	}
}

// DefaultModes returns the tournament's candidate policies: the paper's
// four static CachedArrays modes plus the adaptive stacks.
func DefaultModes() []string {
	m := make([]string, 0, len(policy.Modes)+len(engine.AdaptiveModes))
	for _, pm := range policy.Modes {
		m = append(m, pm.String())
	}
	return append(m, engine.AdaptiveModes...)
}

// scaledModel builds a paper model with its batch divided by scale
// (minimum 1), mirroring the experiments package's quick-look scaling.
func scaledModel(pm models.PaperModel, scale int) *models.Model {
	if scale <= 1 {
		return pm.Build()
	}
	batch := pm.BatchSize / scale
	if batch < 1 {
		batch = 1
	}
	switch pm.Name {
	case "DenseNet 264":
		return models.DenseNet(264, batch)
	case "ResNet 200":
		return models.ResNet(200, batch)
	case "VGG 416":
		return models.VGG(416, batch)
	case "VGG 116":
		return models.VGG(116, batch)
	default:
		panic(fmt.Sprintf("tourney: unknown paper model %q", pm.Name))
	}
}

// DefaultWorkloads returns the seven standard tournament workloads: the
// three large networks at paper capacity (the Fig. 2 setting), the three
// small networks under a tight DRAM budget derived from each model's
// footprint (the regime where placement quality matters most — Fig. 7's
// steep region), and one CXL-slow-tier variant (the §VI portability
// setting). scale divides batch sizes for quick looks (0 or 1 = paper
// scale).
func DefaultWorkloads(scale int) []Workload {
	if scale < 1 {
		scale = 1
	}
	var ws []Workload
	for _, pm := range models.PaperLargeModels() {
		ws = append(ws, Workload{
			Name:  runName(pm.Name, "large"),
			Build: func() (*models.Model, error) { return scaledModel(pm, scale), nil },
		})
	}
	for _, pm := range models.PaperSmallModels() {
		// Tight DRAM: a quarter of the model's own peak footprint, so
		// even the "fits in DRAM" networks are forced to tier.
		foot := scaledModel(pm, scale).PeakFootprint()
		ws = append(ws, Workload{
			Name:  runName(pm.Name, "tight"),
			Build: func() (*models.Model, error) { return scaledModel(pm, scale), nil },
			Cfg:   engine.Config{FastCapacity: tightCapacity(foot)},
		})
	}
	cxl := models.PaperLargeModels()[1] // ResNet 200
	ws = append(ws, Workload{
		Name:  runName(cxl.Name, "cxl"),
		Build: func() (*models.Model, error) { return scaledModel(cxl, scale), nil },
		Cfg:   engine.Config{SlowTier: "cxl"},
	})
	return ws
}

// tightCapacity derives the tight-DRAM budget from a model footprint: a
// quarter of peak liveness, floored at 256 MB so tiny quick-look scales
// still hold a few objects.
func tightCapacity(footprint int64) int64 {
	c := footprint / 4
	if min := int64(256 * units.MB); c < min {
		c = min
	}
	if c > memsim.DefaultFastCapacity {
		c = memsim.DefaultFastCapacity
	}
	return c
}

// Options configure a tournament.
type Options struct {
	// Modes are the candidate policies (default DefaultModes). Each must
	// be a CachedArrays mode — the tournament compares placement
	// policies over the same runtime, so 2LM/OS baselines don't enter.
	Modes []string
	// Workloads are the columns (default DefaultWorkloads(Scale)).
	Workloads []Workload
	// Faults are the degradation probes (default DefaultFaults; empty
	// non-nil slice disables fault variants).
	Faults []FaultVariant
	// Iterations per run (default 2: one warm-up, one measured).
	Iterations int
	// Scale divides batch sizes in the default workloads (quick looks).
	Scale int
	// NoCluster skips the contention column: a 2-tenant cluster run per
	// mode (the candidate sharing a tight platform with a CA:LMP
	// antagonist) that scores how gracefully each policy degrades under a
	// noisy neighbour.
	NoCluster bool
	// Sched executes the cells (nil = a private serial scheduler). A
	// shared scheduler brings its result cache: a re-run tournament is
	// served entirely from cache.
	Sched *sched.Scheduler
	// Instrument mirrors experiments.Options.Instrument: a per-cell hook
	// that may attach instrumentation to the run config (instrumented
	// cells bypass the result cache).
	Instrument func(name string, cfg *engine.Config) func(*engine.Result) error
}

func (o Options) withDefaults() (Options, error) {
	if o.Modes == nil {
		o.Modes = DefaultModes()
	}
	for i, m := range o.Modes {
		canon, err := sched.Normalize(m)
		if err != nil {
			return o, err
		}
		if !strings.HasPrefix(canon, "CA:") {
			return o, fmt.Errorf("tourney: mode %q is not a CachedArrays policy", m)
		}
		o.Modes[i] = canon
	}
	if o.Workloads == nil {
		o.Workloads = DefaultWorkloads(o.Scale)
	}
	if o.Faults == nil {
		o.Faults = DefaultFaults()
	}
	if o.Iterations == 0 {
		o.Iterations = 2
	}
	if o.Sched == nil {
		o.Sched = &sched.Scheduler{}
	}
	return o, nil
}

// CellResult is one (mode, workload, fault-variant) run's extract.
type CellResult struct {
	Mode     string  `json:"mode"`
	Workload string  `json:"workload"`
	Fault    string  `json:"fault,omitempty"` // empty = clean run
	IterTime float64 `json:"iter_time"`
	MoveTime float64 `json:"move_time"`
	// Moves counts placement decisions: prefetches + evictions plus the
	// adaptive layers' promotions and demotions.
	Moves    int64                `json:"moves"`
	Adaptive policy.AdaptiveStats `json:"adaptive,omitempty"`
}

// ModeScore is one ranked row of the tournament.
type ModeScore struct {
	Rank int    `json:"rank"`
	Mode string `json:"mode"`
	// RelTime is the geometric mean over clean workloads of this mode's
	// iteration time relative to the per-workload best mode (1.0 = best
	// everywhere).
	RelTime float64 `json:"rel_time"`
	// Wins counts clean workloads where this mode was the fastest.
	Wins int `json:"wins"`
	// MoveShare is the mean fraction of iteration time spent stalled on
	// data movement across clean workloads.
	MoveShare float64 `json:"move_share"`
	// Moves totals placement decisions across clean workloads.
	Moves int64 `json:"moves"`
	// FaultDegradation is the geometric mean over (workload, fault)
	// pairs of faulted iteration time over the same mode's clean time
	// (1.0 = faults cost nothing; absent fault variants report 1.0).
	FaultDegradation float64 `json:"fault_degradation"`
	// ClusterSlowdown is the mode's slowdown versus its solo run when it
	// shares a tight platform with a CA:LMP antagonist (the contention
	// column; 0 when Options.NoCluster). Lower is more neighbour-proof.
	ClusterSlowdown float64 `json:"cluster_slowdown,omitempty"`
	// ClusterInducedEvictions counts the evictions the antagonist forced
	// on this mode beyond its solo count in the same scenario.
	ClusterInducedEvictions int64 `json:"cluster_induced_evictions,omitempty"`
}

// Result is a completed tournament: the ranked scores plus every cell.
type Result struct {
	Modes  []string     `json:"modes"`
	Scores []ModeScore  `json:"scores"`
	Cells  []CellResult `json:"cells"`
}

// Run executes the tournament: len(Modes) x len(Workloads) x
// (1 + len(Faults)) cells through the scheduler, then scores and ranks.
func Run(opts Options) (*Result, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	type key struct{ mode, workload, fault string }
	var cells []sched.Cell
	var keys []key
	for _, w := range opts.Workloads {
		for _, mode := range opts.Modes {
			variants := append([]FaultVariant{{}}, opts.Faults...)
			for _, fv := range variants {
				cfg := w.Cfg
				cfg.Iterations = opts.Iterations
				if fv.Spec != "" {
					cfg.FaultSpec = strings.ReplaceAll(fv.Spec, "{slow}", w.slowDevice())
				}
				name := runName("tourney", w.Name, mode, fv.Name)
				cell := sched.Cell{Name: name, Build: w.Build, Mode: mode, Cfg: cfg}
				if opts.Instrument != nil {
					cell.Done = opts.Instrument(name, &cell.Cfg)
				}
				cells = append(cells, cell)
				keys = append(keys, key{mode, w.Name, fv.Name})
			}
		}
	}
	results, err := opts.Sched.Run(cells)
	if err != nil {
		return nil, err
	}

	res := &Result{Modes: opts.Modes}
	byKey := make(map[key]*engine.Result, len(results))
	for i, r := range results {
		byKey[keys[i]] = r
		moves := r.Policy.Prefetches + r.Policy.Evictions +
			r.Adaptive.Promotions + r.Adaptive.Demotions
		res.Cells = append(res.Cells, CellResult{
			Mode: keys[i].mode, Workload: keys[i].workload, Fault: keys[i].fault,
			IterTime: r.IterTime, MoveTime: r.MoveTime,
			Moves: moves, Adaptive: r.Adaptive,
		})
	}

	// Per-workload best clean time across modes (the ranking baseline).
	best := make(map[string]float64, len(opts.Workloads))
	for _, w := range opts.Workloads {
		b := math.Inf(1)
		for _, mode := range opts.Modes {
			if t := byKey[key{mode, w.Name, ""}].IterTime; t < b {
				b = t
			}
		}
		best[w.Name] = b
	}

	for _, mode := range opts.Modes {
		s := ModeScore{Mode: mode, RelTime: 1, FaultDegradation: 1}
		var relLog, moveShare, degLog float64
		var degN int
		var moves int64
		for _, w := range opts.Workloads {
			clean := byKey[key{mode, w.Name, ""}]
			relLog += math.Log(clean.IterTime / best[w.Name])
			if clean.IterTime == best[w.Name] {
				s.Wins++
			}
			if clean.IterTime > 0 {
				moveShare += clean.MoveTime / clean.IterTime
			}
			moves += byCell(res, mode, w.Name, "").Moves
			for _, fv := range opts.Faults {
				faulted := byKey[key{mode, w.Name, fv.Name}]
				degLog += math.Log(faulted.IterTime / clean.IterTime)
				degN++
			}
		}
		n := float64(len(opts.Workloads))
		s.RelTime = math.Exp(relLog / n)
		s.MoveShare = moveShare / n
		s.Moves = moves
		if degN > 0 {
			s.FaultDegradation = math.Exp(degLog / float64(degN))
		}
		res.Scores = append(res.Scores, s)
	}
	if !opts.NoCluster {
		if err := clusterColumn(res, opts); err != nil {
			return nil, err
		}
	}
	sort.SliceStable(res.Scores, func(i, j int) bool {
		if res.Scores[i].RelTime != res.Scores[j].RelTime {
			return res.Scores[i].RelTime < res.Scores[j].RelTime
		}
		return res.Scores[i].Mode < res.Scores[j].Mode
	})
	for i := range res.Scores {
		res.Scores[i].Rank = i + 1
	}
	return res, nil
}

// clusterModel builds the contention scenario's workload: an MLP whose
// working set overflows the scenario's fast tier when shared but fits
// solo, so the column isolates neighbour-induced cost.
func clusterModel() (*models.Model, error) {
	return models.MLP(1024, []int{4096, 4096}, 10, 256), nil
}

// clusterColumn fills each score's contention metrics: the candidate mode
// as victim against a CA:LMP antagonist on one tight shared platform,
// with the solo baselines going through the tournament's scheduler (and
// its cache — the antagonist's baseline dedups across candidates).
func clusterColumn(res *Result, opts Options) error {
	// The scenario is fixed (not scaled by Options): a tight fast tier
	// and enough iterations for thrash cycles to develop, so the column
	// stays comparable across tournament configurations.
	cfg := engine.Config{
		FastCapacity: 128 * units.MB,
		SlowCapacity: 4 * units.GB,
		Iterations:   3,
	}
	for i, s := range res.Scores {
		cres, err := cluster.Run(cluster.Config{
			Engine: cfg,
			Jobs: []cluster.Job{
				{Name: "victim", Build: clusterModel, Mode: s.Mode},
				{Name: "antagonist", Build: clusterModel, Mode: "CA:LMP"},
			},
			Baselines: opts.Sched,
			// The whole contention run memoizes too: a warm-cache
			// tournament re-serves every cluster column from disk.
			Sched: opts.Sched,
		})
		if err != nil {
			return fmt.Errorf("tourney: cluster column, mode %s: %w", s.Mode, err)
		}
		victim := cres.Tenants[0]
		res.Scores[i].ClusterSlowdown = victim.Slowdown
		res.Scores[i].ClusterInducedEvictions = victim.InducedEvictions
	}
	return nil
}

// byCell finds a cell extract (linear scan; tournament sizes are tiny).
func byCell(r *Result, mode, workload, fault string) CellResult {
	for _, c := range r.Cells {
		if c.Mode == mode && c.Workload == workload && c.Fault == fault {
			return c
		}
	}
	return CellResult{}
}

// Ranking renders the tournament's headline table: one row per mode,
// best first.
func (r *Result) Ranking() *experiments.Table {
	t := &experiments.Table{
		Title:  "Policy tournament — ranked over all workloads",
		Header: []string{"rank", "mode", "rel time (geo)", "wins", "move share", "moves", "fault degradation"},
		Notes: []string{
			"rel time: geometric mean of iteration time over the per-workload best (1.000 = best everywhere)",
			"fault degradation: geomean of faulted/clean iteration time for the same mode (1.000 = unaffected)",
		},
	}
	withCluster := false
	for _, s := range r.Scores {
		if s.ClusterSlowdown != 0 {
			withCluster = true
		}
	}
	if withCluster {
		t.Header = append(t.Header, "cluster slowdown", "induced evict")
		t.Notes = append(t.Notes,
			"cluster slowdown: the mode's slowdown vs. solo sharing a tight platform with a CA:LMP antagonist (lower = more neighbour-proof)")
	}
	for _, s := range r.Scores {
		row := []string{
			fmt.Sprint(s.Rank), s.Mode,
			fmt.Sprintf("%.3f", s.RelTime),
			fmt.Sprint(s.Wins),
			fmt.Sprintf("%.1f%%", 100*s.MoveShare),
			fmt.Sprint(s.Moves),
			fmt.Sprintf("%.3f", s.FaultDegradation),
		}
		if withCluster {
			row = append(row,
				fmt.Sprintf("%.2fx", s.ClusterSlowdown),
				fmt.Sprint(s.ClusterInducedEvictions))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// CellTable renders every cell: the full mode x workload x variant
// matrix behind the ranking.
func (r *Result) CellTable() *experiments.Table {
	t := &experiments.Table{
		Title:  "Policy tournament — per-run detail",
		Header: []string{"workload", "fault", "mode", "iter (s)", "move (s)", "moves", "backoffs", "suppressed"},
	}
	for _, c := range r.Cells {
		fault := c.Fault
		if fault == "" {
			fault = "clean"
		}
		t.Rows = append(t.Rows, []string{
			c.Workload, fault, c.Mode,
			fmt.Sprintf("%.4f", c.IterTime),
			fmt.Sprintf("%.4f", c.MoveTime),
			fmt.Sprint(c.Moves),
			fmt.Sprint(c.Adaptive.ThrashBackoffs),
			fmt.Sprint(c.Adaptive.SuppressedFetches),
		})
	}
	return t
}

// runName mirrors the experiments package's label discipline: lowered,
// anything outside [a-z0-9.-] folded to '_', parts joined by '-'. Empty
// parts are dropped (the clean variant has no fault name).
func runName(parts ...string) string {
	var b strings.Builder
	first := true
	for _, p := range parts {
		if p == "" {
			continue
		}
		if !first {
			b.WriteByte('-')
		}
		first = false
		for _, r := range strings.ToLower(p) {
			switch {
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '.':
				b.WriteRune(r)
			default:
				b.WriteByte('_')
			}
		}
	}
	return b.String()
}
