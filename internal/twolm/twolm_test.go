package twolm

import (
	"testing"
	"testing/quick"

	"cachedarrays/internal/memsim"
	"cachedarrays/internal/units"
)

// newCache builds a small cache: 1 KiB DRAM, 64 B lines -> 16 sets, over
// 16 KiB of NVRAM.
func newCache(t *testing.T) (*Cache, *memsim.Platform) {
	t.Helper()
	p := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: 1024, SlowCapacity: 16 * 1024, CopyThreads: 4,
	})
	c, err := New(p.Fast, p.Slow, Config{LineSize: 64, HWLineBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func TestNewValidation(t *testing.T) {
	p := memsim.NewPlatform(memsim.PlatformConfig{FastCapacity: 1024, SlowCapacity: 4096})
	if _, err := New(p.Fast, p.Slow, Config{LineSize: 0}); err == nil {
		t.Error("zero line size accepted")
	}
	if _, err := New(p.Fast, p.Slow, Config{LineSize: 2048}); err == nil {
		t.Error("line size above capacity accepted")
	}
	big := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: 180 * units.GB, SlowCapacity: 1300 * units.GB,
	})
	if _, err := New(big.Fast, big.Slow, Config{LineSize: 64}); err == nil {
		t.Error("terabyte-scale 64B tag array accepted")
	}
	if _, err := New(big.Fast, big.Slow, DefaultConfig()); err != nil {
		t.Errorf("default paper-scale config rejected: %v", err)
	}
}

func TestColdMissesThenHits(t *testing.T) {
	c, _ := newCache(t)
	c.Access(0, 256, false) // 4 lines, all cold
	s := c.Stats()
	if s.CleanMisses != 4 || s.Hits != 0 || s.DirtyMisses != 0 {
		t.Fatalf("cold read stats: %+v", s)
	}
	c.Access(0, 256, false) // all resident now
	s = c.Stats()
	if s.Hits != 4 || s.CleanMisses != 4 {
		t.Fatalf("warm read stats: %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

func TestWriteMarksDirtyAndConflictWritesBack(t *testing.T) {
	c, p := newCache(t)
	c.Access(0, 64, true) // line 0 -> set 0, dirty
	nvWritesBefore := p.Slow.Counters().WriteBytes
	// Line 16 also maps to set 0 (16 sets): conflict evicts dirty line 0.
	c.Access(16*64, 64, false)
	s := c.Stats()
	if s.DirtyMisses != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if p.Slow.Counters().WriteBytes <= nvWritesBefore {
		t.Fatal("dirty eviction produced no NVRAM writes")
	}
	// Clean conflict: line 32 -> set 0 again, but current line is clean.
	c.Access(32*64, 64, false)
	if got := c.Stats().DirtyMisses; got != 1 {
		t.Fatalf("clean conflict counted as dirty: %+v", c.Stats())
	}
}

func TestReadHitAfterWrite(t *testing.T) {
	c, _ := newCache(t)
	c.Access(0, 64, true)
	c.Access(0, 64, false)
	if got := c.Stats().Hits; got != 1 {
		t.Fatalf("hits = %d", got)
	}
}

func TestAddressReuseHitsLikeThePaper(t *testing.T) {
	// The Fig. 3/4 mechanism: with eager freeing, new tensors reuse
	// physical addresses whose lines are already cached -> hits instead
	// of compulsory misses.
	c, _ := newCache(t)
	c.Access(0, 1024, true) // "tensor A" fills the whole cache
	c.ResetStats()
	c.Access(0, 1024, true) // "tensor B" at the same physical pages
	s := c.Stats()
	if s.Hits != 16 || s.Accesses() != 16 {
		t.Fatalf("address reuse did not hit: %+v", s)
	}
	// Fresh addresses instead: all dirty misses.
	c.ResetStats()
	c.Access(2048, 1024, true)
	s = c.Stats()
	if s.DirtyMisses != 16 {
		t.Fatalf("fresh addresses should dirty-miss: %+v", s)
	}
}

func TestPartialLineAccessTouchesWholeLine(t *testing.T) {
	c, _ := newCache(t)
	c.Access(10, 4, false) // within line 0
	if got := c.Stats().Accesses(); got != 1 {
		t.Fatalf("accesses = %d", got)
	}
	c.Access(60, 8, false) // straddles lines 0 and 1
	s := c.Stats()
	if s.Accesses() != 3 || s.Hits != 1 || s.CleanMisses != 2 {
		t.Fatalf("straddle stats: %+v", s)
	}
}

func TestAccessTimingMissSlower(t *testing.T) {
	c, _ := newCache(t)
	tMiss := c.Access(0, 1024, false).Total()
	tHit := c.Access(0, 1024, false).Total()
	if tHit >= tMiss {
		t.Fatalf("hit time %v >= miss time %v", tHit, tMiss)
	}
	if tHit <= 0 {
		t.Fatal("hit took no time")
	}
}

func TestZeroSizeAccessFree(t *testing.T) {
	c, _ := newCache(t)
	if c.Access(0, 0, true).Total() != 0 {
		t.Fatal("zero access took time")
	}
	if c.Stats().Accesses() != 0 {
		t.Fatal("zero access counted")
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	c, _ := newCache(t)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds access did not panic")
		}
	}()
	c.Access(16*1024-32, 64, false)
}

func TestFlushInvalidates(t *testing.T) {
	c, _ := newCache(t)
	c.Access(0, 1024, true)
	if c.OccupiedLines() != 16 {
		t.Fatalf("occupied = %d", c.OccupiedLines())
	}
	c.Flush()
	if c.OccupiedLines() != 0 {
		t.Fatal("flush left lines valid")
	}
	c.ResetStats()
	c.Access(0, 64, false)
	if c.Stats().CleanMisses != 1 {
		t.Fatal("post-flush access did not miss")
	}
}

func TestWritebackAll(t *testing.T) {
	c, p := newCache(t)
	c.Access(0, 512, true)
	nvBefore := p.Slow.Counters().WriteBytes
	elapsed := c.WritebackAll()
	if elapsed <= 0 {
		t.Fatal("writeback of dirty cache took no time")
	}
	if got := p.Slow.Counters().WriteBytes - nvBefore; got != 512 {
		t.Fatalf("writeback bytes = %d, want 512", got)
	}
	if c.WritebackAll() != 0 {
		t.Fatal("second writeback not free")
	}
}

func TestStatsSubAndRates(t *testing.T) {
	a := Stats{Hits: 10, CleanMisses: 6, DirtyMisses: 4}
	b := Stats{Hits: 5, CleanMisses: 1, DirtyMisses: 2}
	d := a.Sub(b)
	if d != (Stats{Hits: 5, CleanMisses: 5, DirtyMisses: 2}) {
		t.Fatalf("Sub = %+v", d)
	}
	if a.HitRate() != 0.5 || a.CleanMissRate() != 0.3 || a.DirtyMissRate() != 0.2 {
		t.Fatalf("rates: %v %v %v", a.HitRate(), a.CleanMissRate(), a.DirtyMissRate())
	}
	var z Stats
	if z.HitRate() != 0 || z.CleanMissRate() != 0 || z.DirtyMissRate() != 0 {
		t.Fatal("zero stats rates not zero")
	}
}

func TestQuickHitsPlusMissesEqualLineCount(t *testing.T) {
	// Property: for any access stream, hits + misses == total lines
	// touched, and service time is finite and positive.
	f := func(ops []struct {
		Addr  uint16
		Size  uint8
		Write bool
	}) bool {
		p := memsim.NewPlatform(memsim.PlatformConfig{
			FastCapacity: 1024, SlowCapacity: 128 * 1024,
		})
		c, err := New(p.Fast, p.Slow, Config{LineSize: 64})
		if err != nil {
			return false
		}
		var wantLines int64
		for _, op := range ops {
			addr, size := int64(op.Addr), int64(op.Size)
			if size == 0 {
				continue
			}
			first := addr / 64
			last := (addr + size - 1) / 64
			wantLines += last - first + 1
			if tm := c.Access(addr, size, op.Write).Total(); tm <= 0 {
				return false
			}
		}
		return c.Stats().Accesses() == wantLines
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
