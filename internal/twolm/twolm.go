// Package twolm models Intel's "memory mode" (2LM): NVRAM as main memory
// with DRAM acting as a transparent, direct-mapped, write-back,
// write-allocate hardware cache (paper §IV-A). This is the baseline
// CachedArrays is compared against in Figures 2–6.
//
// The cache has no semantic knowledge: it sees physical addresses only, so
// dead data evicted from the cache must still be written back to NVRAM, and
// its NVRAM traffic is cache-line-grained and haphazard — the two
// mechanisms behind 2LM's losses in the paper.
//
// Tag tracking granularity is configurable. Real 2LM tracks 64-byte lines;
// at terabyte scale that much tag metadata is impractical to simulate
// densely, so paper-scale runs use a larger tracking sector (default
// 64 KiB) while NVRAM *timing* is still charged at the true hardware line
// granularity (64 B) — preserving both the miss-rate shape (streaming data
// misses once per fresh byte at any granularity) and the poor NVRAM
// bandwidth of line-grained traffic.
package twolm

import (
	"fmt"

	"cachedarrays/internal/memsim"
)

// Config parameterizes the DRAM cache.
type Config struct {
	// LineSize is the tag-tracking granularity (bytes). Default 64 KiB;
	// tests use small heaps with 64 B lines.
	LineSize int64
	// HWLineBytes is the true hardware transfer granularity used for
	// NVRAM timing. Default 64.
	HWLineBytes int64
	// MetadataFrac is the extra NVRAM read traffic charged per miss as a
	// fraction of the line size, modelling the cache-line-level metadata
	// tracking the paper blames for poor bandwidth utilization.
	MetadataFrac float64
}

// DefaultConfig returns the paper-scale configuration. HWLineBytes models
// the effective NVRAM transfer granularity of the miss path: the cache
// fetches 64 B lines, but Optane's internal 256 B access plus controller
// read/write combining on streaming miss bursts make ~8 KiB the effective
// run length for bandwidth purposes.
func DefaultConfig() Config {
	return Config{LineSize: 64 << 10, HWLineBytes: 8 << 10, MetadataFrac: 1.0 / 8}
}

// Stats are the DRAM cache tag statistics of Fig. 4.
type Stats struct {
	Hits        int64 // line-granularity hits
	CleanMisses int64 // misses evicting a clean (or invalid) line
	DirtyMisses int64 // misses that forced a writeback
}

// Accesses returns the total line accesses.
func (s Stats) Accesses() int64 { return s.Hits + s.CleanMisses + s.DirtyMisses }

// HitRate returns hits / accesses (0 for no accesses).
func (s Stats) HitRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses())
}

// CleanMissRate returns clean misses / accesses.
func (s Stats) CleanMissRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.CleanMisses) / float64(s.Accesses())
}

// DirtyMissRate returns dirty misses / accesses.
func (s Stats) DirtyMissRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.DirtyMisses) / float64(s.Accesses())
}

// Sub returns s - o (diffing snapshots).
func (s Stats) Sub(o Stats) Stats {
	return Stats{Hits: s.Hits - o.Hits, CleanMisses: s.CleanMisses - o.CleanMisses,
		DirtyMisses: s.DirtyMisses - o.DirtyMisses}
}

// maxSets bounds tag-array memory so a mis-scaled configuration fails fast
// instead of allocating gigabytes of host memory.
const maxSets = 256 << 20

// Cache is the direct-mapped write-back DRAM cache. Addresses are physical
// addresses in the flat NVRAM-backed heap.
type Cache struct {
	cfg     Config
	fast    *memsim.Device // DRAM (the cache data array)
	slow    *memsim.Device // NVRAM (backing memory)
	numSets int64
	tags    []int64 // line index resident in each set; -1 = invalid
	dirty   []bool
	stats   Stats
	// Incremental tag-array accounting, kept in lockstep with tags/dirty
	// so occupancy and writeback queries never rescan the array.
	occupied int64 // sets holding a valid line
	dirtyCnt int64 // sets holding a dirty line
}

// New builds a cache whose data array is the fast device and whose backing
// store is the slow device.
func New(fast, slow *memsim.Device, cfg Config) (*Cache, error) {
	if cfg.LineSize <= 0 {
		return nil, fmt.Errorf("twolm: invalid line size %d", cfg.LineSize)
	}
	if cfg.HWLineBytes <= 0 {
		cfg.HWLineBytes = 64
	}
	numSets := fast.Capacity / cfg.LineSize
	if numSets <= 0 {
		return nil, fmt.Errorf("twolm: cache capacity %d below line size %d",
			fast.Capacity, cfg.LineSize)
	}
	if numSets > maxSets {
		return nil, fmt.Errorf("twolm: %d sets exceeds tag-array limit %d (raise LineSize)",
			numSets, maxSets)
	}
	c := &Cache{cfg: cfg, fast: fast, slow: slow, numSets: numSets,
		tags: make([]int64, numSets), dirty: make([]bool, numSets)}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c, nil
}

// Flush invalidates every line without writing anything back (used between
// runs; real hardware cannot do this, which is part of the point).
func (c *Cache) Flush() {
	if c.occupied == 0 && c.dirtyCnt == 0 {
		return // nothing valid: the tag array is already all-invalid
	}
	for i := range c.tags {
		c.tags[i] = -1
		c.dirty[i] = false
	}
	c.occupied, c.dirtyCnt = 0, 0
}

// ResetStats zeroes the tag statistics.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Stats returns a snapshot of the tag statistics.
func (c *Cache) Stats() Stats { return c.stats }

// LineSize returns the tag-tracking granularity.
func (c *Cache) LineSize() int64 { return c.cfg.LineSize }

// OccupiedLines returns how many sets hold a valid line. The count is
// maintained incrementally by Access, so this is O(1).
func (c *Cache) OccupiedLines() int64 { return c.occupied }

// DirtyLines returns how many sets hold a dirty line, also O(1).
func (c *Cache) DirtyLines() int64 { return c.dirtyCnt }

// Cost breaks an access's service time into overlappable components.
type Cost struct {
	// App is the DRAM data-array time for the application's own bytes —
	// a streaming access that overlaps with compute like any DRAM read.
	App float64
	// FillDRAM is DRAM-side miss handling (fill writes, victim reads).
	FillDRAM float64
	// NVRAM is NVRAM-side miss handling (fill reads, metadata,
	// writeback writes).
	NVRAM float64
}

// Stall is the demand-miss stall: fill and writeback streams overlap each
// other across the two buses, but not with the kernel's compute — demand
// misses are what make hardware caching "transparent but not free".
func (c Cost) Stall() float64 {
	if c.FillDRAM > c.NVRAM {
		return c.FillDRAM
	}
	return c.NVRAM
}

// Total is the access's full serial time (App + Stall).
func (c Cost) Total() float64 { return c.App + c.Stall() }

// Add accumulates o into c componentwise.
func (c *Cost) Add(o Cost) {
	c.App += o.App
	c.FillDRAM += o.FillDRAM
	c.NVRAM += o.NVRAM
}

// Access runs the address range [addr, addr+size) through the cache as a
// read or a write, updating tag state and device traffic counters, and
// returns the modelled service-time components. The caller (the engine)
// decides how to overlap them with compute.
//
// The line range is processed as contiguous wrap-free runs over the set
// array instead of line by line: a run shares one base set, so the
// per-line modulo disappears and the classification loop is a tight
// array walk. A transfer longer than twice the cache folds its middle
// laps into closed-form miss counts (every middle line evicts the line
// this same access installed one lap earlier), so host cost is bounded
// by O(min(lines, 2·sets)) per access. Statistics, tag state and traffic
// are bit-identical to the per-line loop (see AccessReference).
func (c *Cache) Access(addr, size int64, write bool) Cost {
	if size <= 0 {
		return Cost{}
	}
	if addr < 0 || addr+size > c.slow.Capacity {
		panic(fmt.Sprintf("twolm: access [%d,%d) outside backing memory (%d)",
			addr, addr+size, c.slow.Capacity))
	}
	first := addr / c.cfg.LineSize
	last := (addr + size - 1) / c.cfg.LineSize
	n := last - first + 1
	set0 := first % c.numSets
	var hits, cleanMisses, dirtyMisses int64
	if n >= 2*c.numSets {
		// The access laps the whole cache at least twice. Only the
		// first lap sees pre-access state; every middle-lap line
		// misses on the line installed one lap earlier (same parity:
		// dirty iff this access writes), and the final lap leaves
		// the closing tag state. Count the middle arithmetically.
		h, cm, dm := c.runLines(first, set0, c.numSets, write)
		hits, cleanMisses, dirtyMisses = h, cm, dm
		middle := n - 2*c.numSets
		if write {
			dirtyMisses += middle
		} else {
			cleanMisses += middle
		}
		h, cm, dm = c.runLines(first+c.numSets+middle, (set0+middle)%c.numSets, c.numSets, write)
		hits += h
		cleanMisses += cm
		dirtyMisses += dm
	} else {
		hits, cleanMisses, dirtyMisses = c.runLines(first, set0, n, write)
	}
	c.stats.Hits += hits
	c.stats.CleanMisses += cleanMisses
	c.stats.DirtyMisses += dirtyMisses

	return c.accessCost(size, cleanMisses, dirtyMisses, write)
}

// runLines streams count consecutive lines starting at startLine (mapping
// to startSet) through the tag array, splitting at set-array wrap points
// so the inner loops index sets directly. Occupancy and dirty counters
// are maintained incrementally. Returns the hit/clean-miss/dirty-miss
// tallies.
func (c *Cache) runLines(startLine, startSet, count int64, write bool) (hits, cleanMisses, dirtyMisses int64) {
	tags, dirty := c.tags, c.dirty
	line, set := startLine, startSet
	for count > 0 {
		run := c.numSets - set
		if run > count {
			run = count
		}
		if write {
			for end := set + run; set < end; set, line = set+1, line+1 {
				if tags[set] == line {
					hits++
					if !dirty[set] {
						dirty[set] = true
						c.dirtyCnt++
					}
					continue
				}
				if tags[set] < 0 {
					cleanMisses++
					c.occupied++
					c.dirtyCnt++
				} else if dirty[set] {
					dirtyMisses++
				} else {
					cleanMisses++
					c.dirtyCnt++
				}
				tags[set] = line
				dirty[set] = true
			}
		} else {
			for end := set + run; set < end; set, line = set+1, line+1 {
				if tags[set] == line {
					hits++
					continue
				}
				if tags[set] < 0 {
					cleanMisses++
					c.occupied++
				} else if dirty[set] {
					dirtyMisses++
					dirty[set] = false
					c.dirtyCnt--
				} else {
					cleanMisses++
				}
				tags[set] = line
			}
		}
		count -= run
		set = 0
	}
	return hits, cleanMisses, dirtyMisses
}

// AccessReference is the seed per-line implementation of Access, kept as
// the equivalence baseline: property tests and the hot-path benchmarks
// verify and measure the batched Access against it. Tag state, statistics
// and modelled costs are bit-identical between the two.
func (c *Cache) AccessReference(addr, size int64, write bool) Cost {
	if size <= 0 {
		return Cost{}
	}
	if addr < 0 || addr+size > c.slow.Capacity {
		panic(fmt.Sprintf("twolm: access [%d,%d) outside backing memory (%d)",
			addr, addr+size, c.slow.Capacity))
	}
	first := addr / c.cfg.LineSize
	last := (addr + size - 1) / c.cfg.LineSize
	var hits, cleanMisses, dirtyMisses int64
	for line := first; line <= last; line++ {
		set := line % c.numSets
		if c.tags[set] == line {
			hits++
		} else {
			if c.tags[set] < 0 {
				c.occupied++
			}
			if c.tags[set] >= 0 && c.dirty[set] {
				dirtyMisses++
			} else {
				cleanMisses++
			}
			if c.dirty[set] {
				c.dirtyCnt--
			}
			c.tags[set] = line
			c.dirty[set] = false
		}
		if write && !c.dirty[set] {
			c.dirty[set] = true
			c.dirtyCnt++
		}
	}
	c.stats.Hits += hits
	c.stats.CleanMisses += cleanMisses
	c.stats.DirtyMisses += dirtyMisses

	return c.accessCost(size, cleanMisses, dirtyMisses, write)
}

// accessCost charges the modelled timing and traffic for an access of the
// given size and miss tallies.
func (c *Cache) accessCost(size, cleanMisses, dirtyMisses int64, write bool) Cost {
	// Timing and traffic. All application bytes are served by the DRAM
	// data array; misses add NVRAM fills (plus DRAM fill writes), dirty
	// misses add writebacks (DRAM victim reads plus NVRAM writes).
	misses := cleanMisses + dirtyMisses
	ls := c.cfg.LineSize
	appAcc := memsim.Access{Threads: 28, Granularity: ls}
	// NVRAM traffic moves at the hardware miss-path granularity. The
	// writeback path is controller-driven: no CPU cache allocation (so
	// no temporal-store penalty) and a small number of in-flight write
	// streams (so no parallelism collapse either) — its cost comes from
	// the short run lengths themselves.
	nvAcc := memsim.Access{Threads: 4, Granularity: c.cfg.HWLineBytes, NonTemporal: true}

	var cost Cost
	if write {
		cost.App += c.fast.Write(size, appAcc)
	} else {
		cost.App += c.fast.Read(size, appAcc)
	}
	if misses > 0 {
		fill := misses * ls
		cost.NVRAM += c.slow.Read(fill, nvAcc)
		cost.FillDRAM += c.fast.Write(fill, appAcc)
		if c.cfg.MetadataFrac > 0 {
			cost.NVRAM += c.slow.Read(int64(float64(fill)*c.cfg.MetadataFrac), nvAcc)
		}
	}
	if dirtyMisses > 0 {
		wb := dirtyMisses * ls
		cost.FillDRAM += c.fast.Read(wb, appAcc)
		cost.NVRAM += c.slow.Write(wb, nvAcc)
	}
	return cost
}

// WritebackAll flushes every dirty line to NVRAM and returns the modelled
// time; used to account end-of-run consistency if needed. The dirty count
// is already known incrementally, so a clean cache returns immediately
// and a dirty one stops scanning once the last dirty line is cleared.
func (c *Cache) WritebackAll() float64 {
	if c.dirtyCnt == 0 {
		return 0
	}
	lines := c.dirtyCnt
	remaining := lines
	for set := 0; remaining > 0; set++ {
		if c.dirty[set] {
			c.dirty[set] = false
			remaining--
		}
	}
	c.dirtyCnt = 0
	nvAcc := memsim.Access{Threads: 28, Granularity: c.cfg.HWLineBytes}
	appAcc := memsim.Access{Threads: 28, Granularity: c.cfg.LineSize}
	t := c.fast.Read(lines*c.cfg.LineSize, appAcc)
	t += c.slow.Write(lines*c.cfg.LineSize, nvAcc)
	return t
}
