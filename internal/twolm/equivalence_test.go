package twolm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cachedarrays/internal/memsim"
)

// equivalencePair builds two identically configured caches over separate
// platforms, so batched Access and the per-line AccessReference can run
// the same stream without sharing tag state or traffic counters.
func equivalencePair(t *testing.T, fastCap, slowCap, lineSize int64) (*Cache, *Cache) {
	t.Helper()
	mk := func() *Cache {
		p := memsim.NewPlatform(memsim.PlatformConfig{
			FastCapacity: fastCap, SlowCapacity: slowCap, CopyThreads: 4,
		})
		c, err := New(p.Fast, p.Slow, Config{LineSize: lineSize, HWLineBytes: 64, MetadataFrac: 1.0 / 8})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	return mk(), mk()
}

// compareCaches asserts every observable of the two caches is identical:
// statistics, tag array, dirty bits, incremental counters.
func compareCaches(t *testing.T, step int, batched, ref *Cache) {
	t.Helper()
	if batched.stats != ref.stats {
		t.Fatalf("step %d: stats diverged: batched %+v vs reference %+v", step, batched.stats, ref.stats)
	}
	if batched.occupied != ref.occupied || batched.dirtyCnt != ref.dirtyCnt {
		t.Fatalf("step %d: counters diverged: batched (%d, %d) vs reference (%d, %d)",
			step, batched.occupied, batched.dirtyCnt, ref.occupied, ref.dirtyCnt)
	}
	for set := range batched.tags {
		if batched.tags[set] != ref.tags[set] || batched.dirty[set] != ref.dirty[set] {
			t.Fatalf("step %d: set %d diverged: batched (tag %d, dirty %v) vs reference (tag %d, dirty %v)",
				step, set, batched.tags[set], batched.dirty[set], ref.tags[set], ref.dirty[set])
		}
	}
}

// runAccessTrace replays one random access stream through batched Access
// and per-line AccessReference, comparing full cache state and modelled
// cost after every access. Access sizes are drawn up to several times the
// cache capacity so the middle-lap arithmetic fold is exercised, not just
// the wrap-free segment walk.
func runAccessTrace(t *testing.T, seed int64, ops int) {
	t.Helper()
	const (
		lineSize = 64
		fastCap  = 16 * lineSize // 16 sets: laps are cheap to generate
		slowCap  = 64 << 10
	)
	batched, ref := equivalencePair(t, fastCap, slowCap, lineSize)
	rng := rand.New(rand.NewSource(seed))
	for step := 0; step < ops; step++ {
		if rng.Intn(20) == 0 {
			batched.Flush()
			ref.Flush()
		}
		write := rng.Intn(2) == 1
		var size int64
		switch rng.Intn(3) {
		case 0: // sub-line / few-line accesses, including unaligned
			size = 1 + rng.Int63n(4*lineSize)
		case 1: // around one cache lap
			size = fastCap/2 + rng.Int63n(fastCap)
		default: // multiple laps: middle fold path
			size = 2*fastCap + rng.Int63n(3*fastCap)
		}
		addr := rng.Int63n(slowCap - size)
		got := batched.Access(addr, size, write)
		want := ref.AccessReference(addr, size, write)
		if got != want {
			t.Fatalf("step %d: Access(%d, %d, write=%v) cost diverged: batched %+v vs reference %+v",
				step, addr, size, write, got, want)
		}
		compareCaches(t, step, batched, ref)
	}
	if wbB, wbR := batched.WritebackAll(), ref.WritebackAll(); wbB != wbR {
		t.Fatalf("WritebackAll diverged: batched %v vs reference %v", wbB, wbR)
	}
	compareCaches(t, ops, batched, ref)
}

// TestAccessMatchesReferenceQuick is the headline 2LM equivalence
// property: on random access streams the run-length batched Access is
// bit-identical to the seed per-line loop in statistics, tag state and
// modelled cost.
func TestAccessMatchesReferenceQuick(t *testing.T) {
	prop := func(seed int64) bool {
		runAccessTrace(t, seed, 200)
		return !t.Failed()
	}
	cfg := &quick.Config{MaxCount: 15}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestAccessMatchesReferenceBoundaries pins the exact boundary cases of
// the batching arithmetic: n == numSets (one full lap, no fold),
// n == 2*numSets (fold with zero middle lines), and one-line-either-side
// of both, plus accesses starting at every set offset.
func TestAccessMatchesReferenceBoundaries(t *testing.T) {
	const lineSize = 64
	const numSets = 16
	for _, write := range []bool{false, true} {
		for _, lines := range []int64{numSets - 1, numSets, numSets + 1,
			2*numSets - 1, 2 * numSets, 2*numSets + 1, 5 * numSets} {
			for startSet := int64(0); startSet < numSets; startSet++ {
				batched, ref := equivalencePair(t, numSets*lineSize, 1<<20, lineSize)
				// Warm both caches identically so evictions happen.
				batched.Access(0, numSets*lineSize, true)
				ref.AccessReference(0, numSets*lineSize, true)
				addr := (numSets + startSet) * lineSize
				got := batched.Access(addr, lines*lineSize, write)
				want := ref.AccessReference(addr, lines*lineSize, write)
				if got != want {
					t.Fatalf("lines=%d startSet=%d write=%v: cost diverged: %+v vs %+v",
						lines, startSet, write, got, want)
				}
				compareCaches(t, int(lines), batched, ref)
			}
		}
	}
}
