package models

import (
	"strings"
	"testing"

	"cachedarrays/internal/units"
)

func TestTransformerValidates(t *testing.T) {
	m := Transformer(DefaultTransformerConfig())
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per layer: qkv, attn, ctxmm, attnproj, res1, ff1, gelu, ff2, res2
	// = 9 forward kernels, plus input head.
	wantFwd := 24*9 + 1
	fwd := 0
	for i := range m.Kernels {
		if m.Kernels[i].Phase == Forward {
			fwd++
		}
	}
	if fwd != wantFwd {
		t.Fatalf("forward kernels = %d, want %d", fwd, wantFwd)
	}
}

func TestTransformerScoresDominate(t *testing.T) {
	// Attention score tensors (heads x seq x seq) must dominate the
	// footprint at long sequence lengths — the property that makes
	// Transformers a tiering workload.
	cfg := DefaultTransformerConfig()
	m := Transformer(cfg)
	var scoreBytes, total int64
	for i := range m.Tensors {
		if m.Tensors[i].Kind != Activation {
			continue
		}
		total += m.Tensors[i].Bytes
		if strings.HasSuffix(m.Tensors[i].Name, ".scores") {
			scoreBytes += m.Tensors[i].Bytes
		}
	}
	if scoreBytes*3 < total {
		t.Errorf("scores %s not a dominant fraction of activations %s",
			units.Bytes(scoreBytes), units.Bytes(total))
	}
}

func TestTransformerFootprintScalesWithSeq(t *testing.T) {
	a := DefaultTransformerConfig()
	a.Layers, a.BatchSize = 4, 8
	b := a
	b.SeqLen *= 2
	fa := Transformer(a).PeakFootprint()
	fb := Transformer(b).PeakFootprint()
	// Scores grow quadratically in sequence length.
	if float64(fb) < 2.5*float64(fa) {
		t.Errorf("seq doubling grew footprint only %.2fx", float64(fb)/float64(fa))
	}
}

func TestTransformerInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	Transformer(TransformerConfig{Layers: 0})
}
