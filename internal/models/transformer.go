package models

import "fmt"

// TransformerConfig sizes an encoder-style Transformer. The paper's §VI
// argues CachedArrays extends beyond CNNs to "applications exhibiting
// dynamic memory use such as Transformers"; this builder provides the
// workload — per-layer attention and feed-forward kernels whose
// intermediates (attention scores in particular) dominate memory and
// follow the same produce-on-forward/consume-on-backward pattern.
type TransformerConfig struct {
	Layers    int
	DModel    int
	Heads     int
	FFMult    int // feed-forward width multiplier (typically 4)
	SeqLen    int
	BatchSize int
}

// DefaultTransformerConfig returns a GPT-2-medium-flavoured encoder.
func DefaultTransformerConfig() TransformerConfig {
	return TransformerConfig{Layers: 24, DModel: 1024, Heads: 16, FFMult: 4, SeqLen: 1024, BatchSize: 32}
}

// Transformer builds a training iteration for an encoder stack.
func Transformer(cfg TransformerConfig) *Model {
	if cfg.Layers <= 0 || cfg.DModel <= 0 || cfg.Heads <= 0 ||
		cfg.SeqLen <= 0 || cfg.BatchSize <= 0 || cfg.FFMult <= 0 {
		panic(fmt.Sprintf("models: invalid transformer config %+v", cfg))
	}
	g := newGraph(fmt.Sprintf("transformer%dx%d", cfg.Layers, cfg.DModel), cfg.BatchSize)

	// Activations are (seq x features) per example: act{c: features,
	// h: seq, w: 1}.
	tokens := float64(cfg.BatchSize) * float64(cfg.SeqLen)
	d := cfg.DModel
	x := g.input(d, cfg.SeqLen, 1) // embedded input sequence

	// proj emits a dense per-token projection in -> out features.
	proj := func(name string, in act, outF int) act {
		w := g.weight(name+".w", int64(in.c)*int64(outF)+int64(outF))
		out := g.activation(name+".out", outF, in.h, 1, Activation)
		flops := 2 * float64(in.c) * float64(outF) * tokens
		return g.record(fwdOp{name: name, inputs: []act{in}, params: []int{w}, out: out, flops: flops})
	}

	for l := 0; l < cfg.Layers; l++ {
		name := fmt.Sprintf("l%d", l)
		// Self-attention: fused QKV projection, score matmul +
		// softmax, context matmul, output projection, residual.
		qkv := proj(name+".qkv", x, 3*d)
		// Attention scores: batch x heads x seq x seq — the memory
		// hog that makes long-sequence training tier-bound.
		scores := g.activation(name+".scores",
			cfg.Heads*cfg.SeqLen, cfg.SeqLen, 1, Activation)
		scoreFlops := 2 * float64(cfg.SeqLen) * float64(cfg.SeqLen) * float64(d) * float64(cfg.BatchSize)
		g.record(fwdOp{name: name + ".attn", inputs: []act{qkv}, out: scores,
			flops: scoreFlops})
		ctx := g.activation(name+".ctx", d, cfg.SeqLen, 1, Activation)
		g.record(fwdOp{name: name + ".ctxmm", inputs: []act{scores, qkv}, out: ctx,
			flops: scoreFlops})
		attnOut := proj(name+".attnproj", ctx, d)
		x = g.add(name+".res1", attnOut, x)

		// Feed-forward block with residual.
		ff1 := proj(name+".ff1", x, cfg.FFMult*d)
		ff1 = g.eltwise(name+".gelu", ff1)
		ff2 := proj(name+".ff2", ff1, d)
		x = g.add(name+".res2", ff2, x)
	}
	head := proj("head", x, d)
	return g.finish(head)
}
