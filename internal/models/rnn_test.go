package models

import (
	"testing"

	"cachedarrays/internal/units"
)

func TestLSTMValidates(t *testing.T) {
	cfg := LSTMConfig{Layers: 2, Hidden: 64, InputDim: 32, SeqLen: 8, BatchSize: 4}
	m := LSTM(cfg)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// seq*layers forward kernels.
	fwd := 0
	for i := range m.Kernels {
		if m.Kernels[i].Phase == Forward {
			fwd++
		}
	}
	if fwd != cfg.SeqLen*cfg.Layers {
		t.Fatalf("forward kernels = %d, want %d", fwd, cfg.SeqLen*cfg.Layers)
	}
	// 2 weight tensors, each with one gradient.
	var w, wg int
	for i := range m.Tensors {
		switch m.Tensors[i].Kind {
		case Weight:
			w++
		case WeightGrad:
			wg++
		}
	}
	if w != cfg.Layers {
		t.Fatalf("weights = %d", w)
	}
	// Weight gradients accumulate across all timesteps, so there are
	// SeqLen gradient tensors per layer in this unrolled formulation.
	if wg != cfg.Layers*cfg.SeqLen {
		t.Fatalf("weight grads = %d, want %d", wg, cfg.Layers*cfg.SeqLen)
	}
}

func TestLSTMDeepFILO(t *testing.T) {
	// BPTT: the first timestep's hidden state must be the last
	// activation retired.
	m := LSTM(LSTMConfig{Layers: 1, Hidden: 32, InputDim: 16, SeqLen: 16, BatchSize: 2})
	last := m.LastUse()
	firstStepHidden := -1
	for id := range m.Tensors {
		if m.Tensors[id].Name == "l0.t0.h" {
			firstStepHidden = id
		}
	}
	if firstStepHidden == -1 {
		t.Fatal("first-step hidden not found")
	}
	// Its last use should be near the end of the kernel stream.
	if last[firstStepHidden] < len(m.Kernels)*3/4 {
		t.Fatalf("t0 hidden last used at kernel %d of %d — not FILO",
			last[firstStepHidden], len(m.Kernels))
	}
}

func TestLSTMFootprintScalesWithSeq(t *testing.T) {
	a := LSTMConfig{Layers: 2, Hidden: 256, InputDim: 128, SeqLen: 32, BatchSize: 16}
	b := a
	b.SeqLen *= 2
	fa, fb := LSTM(a).PeakFootprint(), LSTM(b).PeakFootprint()
	if float64(fb) < 1.5*float64(fa) {
		t.Fatalf("seq doubling grew footprint only %.2fx (%s -> %s)",
			float64(fb)/float64(fa), units.Bytes(fa), units.Bytes(fb))
	}
}

func TestLSTMInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	LSTM(LSTMConfig{})
}
