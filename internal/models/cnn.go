package models

import "fmt"

// The paper's benchmark networks (Table III):
//
//	Large: DenseNet 264 @ 1536, ResNet 200 @ 2048, VGG 416 @ 256
//	Small: DenseNet 264 @ 504,  ResNet 200 @ 640,  VGG 116 @ 320
//
// All take 224x224x3 ImageNet-shaped inputs and produce 1000-way logits.

const (
	imageSize  = 224
	imageChans = 3
	numClasses = 1000
)

// VGG builds a VGG-style network with `depth` weight layers (depth-3 convs
// in five blocks plus three fully connected layers). VGG 416 is the paper's
// reimplementation of vDNN's extended VGG-16: same block structure and
// channel widths, with each block's conv count scaled up proportionally.
func VGG(depth, batch int) *Model {
	if depth < 11 {
		panic(fmt.Sprintf("models: VGG depth %d too small", depth))
	}
	convs := depth - 3
	base := [5]int{2, 2, 3, 3, 3} // VGG-16's 13 convs
	widths := [5]int{64, 128, 256, 512, 512}
	var counts [5]int
	total := 0
	for i := range counts {
		counts[i] = convs * base[i] / 13
		if counts[i] < 1 {
			counts[i] = 1
		}
		total += counts[i]
	}
	// Distribute the rounding remainder over the deeper (cheaper)
	// blocks; shrink from the shallow end if rounding overshot.
	for i := 0; total < convs; i = (i + 1) % 5 {
		counts[4-i]++
		total++
	}
	for i := 0; total > convs; i = (i + 1) % 5 {
		if counts[i] > 1 {
			counts[i]--
			total--
		}
	}

	g := newGraph(fmt.Sprintf("vgg%d", depth), batch)
	x := g.input(imageChans, imageSize, imageSize)
	for b := 0; b < 5; b++ {
		for l := 0; l < counts[b]; l++ {
			x = g.conv(fmt.Sprintf("b%d.conv%d", b+1, l+1), x, widths[b], 3, 1, 1)
		}
		x = g.pool(fmt.Sprintf("b%d.pool", b+1), x, 2, 2)
	}
	x = g.fc("fc1", x, 4096)
	x = g.fc("fc2", x, 4096)
	x = g.fc("fc3", x, numClasses)
	return g.finish(x)
}

// ResNet builds a pre-activation bottleneck ResNet. Supported depths
// follow depth = 9*sum(stageBlocks) + 2; ResNet 200 uses stages
// [3, 24, 36, 3].
func ResNet(depth, batch int) *Model {
	var stages [4]int
	switch depth {
	case 50:
		stages = [4]int{3, 4, 6, 3}
	case 101:
		stages = [4]int{3, 4, 23, 3}
	case 152:
		stages = [4]int{3, 8, 36, 3}
	case 200:
		stages = [4]int{3, 24, 36, 3}
	default:
		panic(fmt.Sprintf("models: unsupported ResNet depth %d", depth))
	}
	widths := [4]int{256, 512, 1024, 2048}

	g := newGraph(fmt.Sprintf("resnet%d", depth), batch)
	x := g.input(imageChans, imageSize, imageSize)
	x = g.conv("stem.conv", x, 64, 7, 2, 3)
	x = g.pool("stem.pool", x, 3, 2)
	// Spatial note: 224 -> 112 (stem) -> 55 with a 3x3/2 pool and no
	// padding; real implementations pad to reach 56, the difference is
	// negligible for byte accounting.
	for s := 0; s < 4; s++ {
		for b := 0; b < stages[s]; b++ {
			name := fmt.Sprintf("s%d.b%d", s+1, b+1)
			stride := 1
			if s > 0 && b == 0 {
				stride = 2
			}
			mid := widths[s] / 4
			shortcut := x
			if b == 0 {
				// Projection shortcut changes width (and stride).
				shortcut = g.conv(name+".proj", x, widths[s], 1, stride, 0)
			}
			y := g.conv(name+".conv1", x, mid, 1, stride, 0)
			y = g.conv(name+".conv2", y, mid, 3, 1, 1)
			y = g.conv(name+".conv3", y, widths[s], 1, 1, 0)
			x = g.add(name+".add", y, shortcut)
		}
	}
	x = g.globalPool("head.pool", x)
	x = g.fc("head.fc", x, numClasses)
	return g.finish(x)
}

// DenseNet builds a DenseNet-BC with growth rate 32 and compression 0.5.
// DenseNet 264 uses blocks [6, 12, 64, 48]. Concatenation is modelled as
// the explicit-copy concat of naive framework implementations — the
// quadratic activation memory that makes DenseNet the paper's most
// memory-hungry benchmark.
func DenseNet(depth, batch int) *Model {
	var blocks [4]int
	switch depth {
	case 121:
		blocks = [4]int{6, 12, 24, 16}
	case 169:
		blocks = [4]int{6, 12, 32, 32}
	case 201:
		blocks = [4]int{6, 12, 48, 32}
	case 264:
		blocks = [4]int{6, 12, 64, 48}
	default:
		panic(fmt.Sprintf("models: unsupported DenseNet depth %d", depth))
	}
	const growth = 32

	g := newGraph(fmt.Sprintf("densenet%d", depth), batch)
	x := g.input(imageChans, imageSize, imageSize)
	x = g.conv("stem.conv", x, 2*growth, 7, 2, 3)
	x = g.pool("stem.pool", x, 3, 2)
	for bi, layers := range blocks {
		for l := 0; l < layers; l++ {
			// Pre-activation BN-ReLU-conv1x1-BN-ReLU-conv3x3. The
			// first BN/ReLU pair runs on the full concatenated
			// input and cannot fuse with the preceding concat, so
			// both intermediates materialize at full width.
			name := fmt.Sprintf("d%d.l%d", bi+1, l+1)
			y := g.eltwise(name+".bn1", x)
			y = g.eltwise(name+".relu1", y)
			y = g.conv(name+".conv1", y, 4*growth, 1, 1, 0) // bottleneck
			y = g.conv(name+".conv2", y, growth, 3, 1, 1)
			x = g.concat(name+".cat", x, y)
		}
		if bi < 3 {
			name := fmt.Sprintf("t%d", bi+1)
			x = g.conv(name+".conv", x, x.c/2, 1, 1, 0) // compression
			x = g.pool(name+".pool", x, 2, 2)
		}
	}
	x = g.globalPool("head.pool", x)
	x = g.fc("head.fc", x, numClasses)
	return g.finish(x)
}

// PaperModel names one of the Table III configurations.
type PaperModel struct {
	Name      string
	Large     bool
	BatchSize int
	Build     func() *Model
}

// PaperLargeModels returns the three large-network configurations of
// Table III (footprints far exceeding the 180 GB DRAM budget).
func PaperLargeModels() []PaperModel {
	return []PaperModel{
		{Name: "DenseNet 264", Large: true, BatchSize: 1536, Build: func() *Model { return DenseNet(264, 1536) }},
		{Name: "ResNet 200", Large: true, BatchSize: 2048, Build: func() *Model { return ResNet(200, 2048) }},
		{Name: "VGG 416", Large: true, BatchSize: 256, Build: func() *Model { return VGG(416, 256) }},
	}
}

// PaperSmallModels returns the small-network configurations (footprints of
// 170–180 GB, fitting within one socket's DRAM).
func PaperSmallModels() []PaperModel {
	return []PaperModel{
		{Name: "DenseNet 264", BatchSize: 504, Build: func() *Model { return DenseNet(264, 504) }},
		{Name: "ResNet 200", BatchSize: 640, Build: func() *Model { return ResNet(200, 640) }},
		{Name: "VGG 116", BatchSize: 320, Build: func() *Model { return VGG(116, 320) }},
	}
}
