package models

import "fmt"

// LSTMConfig sizes an unrolled LSTM training iteration — the "RNNs" of the
// paper's §VI generality claim. Unrolled recurrent training has a
// different memory signature from CNNs: per-timestep hidden/cell states
// are produced in a long forward chain and consumed strictly in reverse
// (backpropagation through time), the deepest FILO pattern of all — the
// archive/retire hints map onto it directly.
type LSTMConfig struct {
	Layers    int
	Hidden    int
	InputDim  int
	SeqLen    int // unrolled timesteps
	BatchSize int
}

// DefaultLSTMConfig returns a speech-recognition-flavoured stack.
func DefaultLSTMConfig() LSTMConfig {
	return LSTMConfig{Layers: 4, Hidden: 2048, InputDim: 512, SeqLen: 256, BatchSize: 64}
}

// LSTM builds a training iteration for an unrolled LSTM stack. Each
// timestep of each layer is one fused kernel (the four gates computed
// together, as cuDNN/oneDNN do) reading the previous hidden state, the
// layer input, and the layer's weights, and writing the new hidden and
// cell state.
func LSTM(cfg LSTMConfig) *Model {
	if cfg.Layers <= 0 || cfg.Hidden <= 0 || cfg.InputDim <= 0 ||
		cfg.SeqLen <= 0 || cfg.BatchSize <= 0 {
		panic(fmt.Sprintf("models: invalid LSTM config %+v", cfg))
	}
	g := newGraph(fmt.Sprintf("lstm%dx%d", cfg.Layers, cfg.Hidden), cfg.BatchSize)

	// Per-layer fused gate weights: (in + hidden) x 4*hidden.
	weights := make([]int, cfg.Layers)
	for l := range weights {
		in := cfg.Hidden
		if l == 0 {
			in = cfg.InputDim
		}
		weights[l] = g.weight(fmt.Sprintf("l%d.w", l),
			int64(in+cfg.Hidden)*int64(4*cfg.Hidden)+int64(4*cfg.Hidden))
	}

	// Timestep inputs for layer 0.
	inputs := make([]act, cfg.SeqLen)
	for t := range inputs {
		inputs[t] = g.activation(fmt.Sprintf("x.t%d", t), cfg.InputDim, 1, 1, Input)
	}

	// hidden[l] is the rolling hidden state activation of layer l; the
	// initial states are inputs to the iteration.
	hidden := make([]act, cfg.Layers)
	for l := range hidden {
		hidden[l] = g.activation(fmt.Sprintf("h0.l%d", l), cfg.Hidden, 1, 1, Input)
	}

	var last act
	for t := 0; t < cfg.SeqLen; t++ {
		x := inputs[t]
		for l := 0; l < cfg.Layers; l++ {
			name := fmt.Sprintf("l%d.t%d", l, t)
			in := cfg.Hidden
			if l == 0 {
				in = cfg.InputDim
			}
			out := g.activation(name+".h", cfg.Hidden, 1, 1, Activation)
			flops := 2 * float64(in+cfg.Hidden) * float64(4*cfg.Hidden) * float64(cfg.BatchSize)
			g.record(fwdOp{
				name:   name,
				inputs: []act{x, hidden[l]},
				params: []int{weights[l]},
				out:    out,
				flops:  flops,
			})
			hidden[l] = out
			x = out
		}
		last = x
	}
	return g.finish(last)
}
