package models

import (
	"fmt"
	"math/rand"
)

// DLRMConfig parameterizes the recommendation-model workload of the
// paper's §VI extension discussion. DLRMs stress a tiering runtime very
// differently from CNNs: huge embedding tables are accessed *sparsely* and
// the hot set shifts with the input distribution, so static placement
// fails and the policy must adapt (Hildebrand et al., ISC'23).
type DLRMConfig struct {
	NumTables      int   // embedding tables
	RowsPerTable   int   // rows per table
	EmbeddingDim   int   // elements per row
	LookupsPerStep int   // rows gathered per table per step
	BottomMLP      []int // dense feature MLP widths
	TopMLP         []int // interaction MLP widths
	BatchSize      int
	Steps          int // inference/training steps in the trace
	Seed           int64
	// HotFraction of rows receive ZipfSkew of the traffic, shifting
	// every ShiftEvery steps (the locality drift the policy must track).
	HotFraction float64
	ZipfSkew    float64
	ShiftEvery  int
}

// DefaultDLRMConfig returns a laptop-scale configuration exercising the
// same code paths as a production model.
func DefaultDLRMConfig() DLRMConfig {
	return DLRMConfig{
		NumTables:      8,
		RowsPerTable:   4096,
		EmbeddingDim:   64,
		LookupsPerStep: 32,
		BottomMLP:      []int{512, 256, 64},
		TopMLP:         []int{512, 256, 1},
		BatchSize:      128,
		Steps:          64,
		Seed:           1,
		HotFraction:    0.05,
		ZipfSkew:       0.9,
		ShiftEvery:     16,
	}
}

// DLRMWorkload is a sparse-access trace over embedding-table row objects:
// each step gathers a set of rows per table, runs the dense MLP kernels,
// and moves on. Rows are separate objects so a tiering policy can place
// hot rows in fast memory — the object-granularity flexibility the paper
// argues for.
type DLRMWorkload struct {
	Config DLRMConfig
	// RowBytes is the size of one embedding row object.
	RowBytes int64
	// Steps[i][t] lists the row indices gathered from table t at step i.
	Steps [][][]int
	// MLPBytes is the total dense-parameter footprint.
	MLPBytes int64
	// MLPFLOPsPerStep approximates the dense compute per step.
	MLPFLOPsPerStep float64
}

// NewDLRMWorkload generates the sparse access trace: a hot set of rows
// receives most lookups, and the hot set rotates every ShiftEvery steps.
func NewDLRMWorkload(cfg DLRMConfig) *DLRMWorkload {
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &DLRMWorkload{
		Config:   cfg,
		RowBytes: int64(cfg.EmbeddingDim) * bytesPerElem,
	}
	prev := 0
	for _, width := range append(append([]int{}, cfg.BottomMLP...), cfg.TopMLP...) {
		if prev > 0 {
			w.MLPBytes += int64(prev) * int64(width) * bytesPerElem
			w.MLPFLOPsPerStep += 2 * float64(prev) * float64(width) * float64(cfg.BatchSize)
		}
		prev = width
	}
	hotRows := int(float64(cfg.RowsPerTable) * cfg.HotFraction)
	if hotRows < 1 {
		hotRows = 1
	}
	hotBase := 0
	for step := 0; step < cfg.Steps; step++ {
		if cfg.ShiftEvery > 0 && step > 0 && step%cfg.ShiftEvery == 0 {
			// The hot set drifts: new region of each table heats up.
			hotBase = (hotBase + hotRows) % cfg.RowsPerTable
		}
		tables := make([][]int, cfg.NumTables)
		for t := range tables {
			rows := make([]int, cfg.LookupsPerStep)
			for i := range rows {
				if rng.Float64() < cfg.ZipfSkew {
					rows[i] = (hotBase + rng.Intn(hotRows)) % cfg.RowsPerTable
				} else {
					rows[i] = rng.Intn(cfg.RowsPerTable)
				}
			}
			tables[t] = rows
		}
		w.Steps = append(w.Steps, tables)
	}
	return w
}

// TotalRows returns the number of embedding-row objects.
func (w *DLRMWorkload) TotalRows() int {
	return w.Config.NumTables * w.Config.RowsPerTable
}

// EmbeddingBytes returns the total embedding footprint.
func (w *DLRMWorkload) EmbeddingBytes() int64 {
	return int64(w.TotalRows()) * w.RowBytes
}

// String summarizes the workload.
func (w *DLRMWorkload) String() string {
	return fmt.Sprintf("dlrm(tables=%d rows=%d dim=%d steps=%d)",
		w.Config.NumTables, w.Config.RowsPerTable, w.Config.EmbeddingDim, len(w.Steps))
}
