package models

import (
	"testing"

	"cachedarrays/internal/units"
)

func TestKindAndPhaseStrings(t *testing.T) {
	if Weight.String() != "weight" || Activation.String() != "activation" ||
		WeightGrad.String() != "weight-grad" || ActivationGrad.String() != "activation-grad" ||
		Input.String() != "input" {
		t.Error("kind strings wrong")
	}
	if TensorKind(42).String() != "TensorKind(42)" {
		t.Error("unknown kind string")
	}
	if Forward.String() != "forward" || Backward.String() != "backward" {
		t.Error("phase strings wrong")
	}
}

func TestMLPStructure(t *testing.T) {
	m := MLP(784, []int{256, 128}, 10, 32)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3 forward fc kernels + loss + 3 backward kernels.
	if len(m.Kernels) != 7 {
		t.Fatalf("kernel count = %d, want 7", len(m.Kernels))
	}
	// 3 weights, 3 weight grads.
	var w, wg int
	for i := range m.Tensors {
		switch m.Tensors[i].Kind {
		case Weight:
			w++
		case WeightGrad:
			wg++
		}
	}
	if w != 3 || wg != 3 {
		t.Fatalf("weights=%d weight-grads=%d", w, wg)
	}
	// First fc weight: 784*256+256 elements.
	want := int64(784*256+256) * 4
	if got := m.Tensors[1].Bytes; got != want {
		t.Fatalf("fc1 weight bytes = %d, want %d", got, want)
	}
}

func TestBackwardMirrorsForward(t *testing.T) {
	m := VGG(16, 8)
	fw, bw := 0, 0
	for i := range m.Kernels {
		if m.Kernels[i].Phase == Forward {
			fw++
		} else {
			bw++
		}
	}
	// Every forward op gets one backward kernel, plus the loss kernel.
	if bw != fw+1 {
		t.Fatalf("forward=%d backward=%d, want backward = forward+1", fw, bw)
	}
}

func TestBackwardReadsSavedActivations(t *testing.T) {
	// The FILO activation pattern of §III-E: an activation produced by
	// forward kernel i must be read again by the matching backward
	// kernel — that is what forces the paper-scale footprints.
	m := VGG(16, 8)
	last := m.LastUse()
	first := m.FirstUse()
	nForward := 0
	for i := range m.Kernels {
		if m.Kernels[i].Phase == Forward {
			nForward++
		}
	}
	checked := 0
	for id := range m.Tensors {
		tt := &m.Tensors[id]
		if tt.Kind != Activation {
			continue
		}
		if first[id] >= nForward {
			t.Fatalf("activation %s first used in backward", tt.Name)
		}
		if last[id] < nForward {
			t.Fatalf("activation %s never read on the backward pass", tt.Name)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no activations checked")
	}
}

func TestResNetGradientAccumulation(t *testing.T) {
	// A ResNet block input feeds both conv1 and the shortcut, so its
	// gradient tensor must be written by more than one backward kernel.
	m := ResNet(50, 4)
	writers := map[int]int{}
	for ki := range m.Kernels {
		if m.Kernels[ki].Phase != Backward {
			continue
		}
		for _, w := range m.Kernels[ki].Writes {
			if m.Tensors[w].Kind == ActivationGrad {
				writers[w]++
			}
		}
	}
	multi := 0
	for _, n := range writers {
		if n > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no gradient accumulation found in ResNet backward pass")
	}
}

func TestAllPaperModelsValidate(t *testing.T) {
	for _, pm := range append(PaperLargeModels(), PaperSmallModels()...) {
		m := pm.Build()
		if err := m.Validate(); err != nil {
			t.Errorf("%s (batch %d): %v", pm.Name, pm.BatchSize, err)
		}
	}
}

func TestTableIIIFootprintBands(t *testing.T) {
	// Reproduction of Table III's constraints: every large network's
	// footprint must greatly exceed the 180 GB DRAM budget (paper: ~520
	// to 529 GB; our graph-derived figures land 420-470 GB), and every
	// small network must fit within DRAM (paper: 170-180 GB; ours
	// 130-155 GB).
	dram := int64(180 * units.GB)
	for _, pm := range PaperLargeModels() {
		peak := pm.Build().PeakFootprint()
		if peak < 2*dram {
			t.Errorf("%s large footprint %s does not greatly exceed DRAM %s",
				pm.Name, units.Bytes(peak), units.Bytes(dram))
		}
		if peak > 600*units.GB {
			t.Errorf("%s large footprint %s implausibly high vs paper's ~526 GB",
				pm.Name, units.Bytes(peak))
		}
	}
	for _, pm := range PaperSmallModels() {
		peak := pm.Build().PeakFootprint()
		if peak >= dram {
			t.Errorf("%s small footprint %s does not fit in DRAM", pm.Name, units.Bytes(peak))
		}
		if peak < 100*units.GB {
			t.Errorf("%s small footprint %s too small vs paper's 170-180 GB",
				pm.Name, units.Bytes(peak))
		}
	}
}

func TestFootprintScalesWithBatch(t *testing.T) {
	small := ResNet(50, 16).PeakFootprint()
	big := ResNet(50, 32).PeakFootprint()
	// Activations dominate: doubling batch should nearly double peak.
	if float64(big) < 1.8*float64(small) {
		t.Errorf("peak did not scale with batch: %d -> %d", small, big)
	}
}

func TestPeakFootprintBelowTotalAboveWeights(t *testing.T) {
	m := DenseNet(121, 16)
	peak := m.PeakFootprint()
	if peak <= m.WeightBytes() {
		t.Fatal("peak below weight bytes")
	}
	if peak > m.TotalTensorBytes() {
		t.Fatal("peak above no-reuse total")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := MLP(10, []int{10}, 2, 4)
	bad := *m
	bad.Kernels = append([]Kernel{}, m.Kernels...)
	bad.Kernels[0].Writes = []int{9999}
	if bad.Validate() == nil {
		t.Error("out-of-range tensor reference accepted")
	}

	bad2 := *m
	bad2.Tensors = append([]Tensor{}, m.Tensors...)
	bad2.Tensors[0].Bytes = 0
	if bad2.Validate() == nil {
		t.Error("zero-size tensor accepted")
	}

	bad3 := *m
	bad3.Kernels = append([]Kernel{}, m.Kernels...)
	// Move a forward kernel after the backward pass begins.
	bad3.Kernels[len(bad3.Kernels)-1].Phase = Forward
	if bad3.Validate() == nil {
		t.Error("forward-after-backward accepted")
	}
}

func TestUnsupportedDepthsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { ResNet(33, 4) },
		func() { DenseNet(100, 4) },
		func() { VGG(5, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unsupported depth did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestDLRMWorkloadShape(t *testing.T) {
	cfg := DefaultDLRMConfig()
	w := NewDLRMWorkload(cfg)
	if len(w.Steps) != cfg.Steps {
		t.Fatalf("steps = %d", len(w.Steps))
	}
	for _, step := range w.Steps {
		if len(step) != cfg.NumTables {
			t.Fatalf("tables per step = %d", len(step))
		}
		for _, rows := range step {
			if len(rows) != cfg.LookupsPerStep {
				t.Fatalf("lookups = %d", len(rows))
			}
			for _, r := range rows {
				if r < 0 || r >= cfg.RowsPerTable {
					t.Fatalf("row %d out of range", r)
				}
			}
		}
	}
	if w.EmbeddingBytes() != int64(w.TotalRows())*w.RowBytes {
		t.Fatal("embedding bytes inconsistent")
	}
	if w.MLPBytes <= 0 || w.MLPFLOPsPerStep <= 0 {
		t.Fatal("dense side empty")
	}
}

func TestDLRMHotSetShifts(t *testing.T) {
	cfg := DefaultDLRMConfig()
	cfg.ZipfSkew = 1.0 // all traffic to the hot set
	w := NewDLRMWorkload(cfg)
	seen := func(step int) map[int]bool {
		s := map[int]bool{}
		for _, r := range w.Steps[step][0] {
			s[r] = true
		}
		return s
	}
	early, late := seen(0), seen(cfg.ShiftEvery)
	overlap := 0
	for r := range late {
		if early[r] {
			overlap++
		}
	}
	if overlap == len(late) {
		t.Fatal("hot set did not shift")
	}
}

func TestDLRMDeterministicBySeed(t *testing.T) {
	a := NewDLRMWorkload(DefaultDLRMConfig())
	b := NewDLRMWorkload(DefaultDLRMConfig())
	for i := range a.Steps {
		for tbl := range a.Steps[i] {
			for j := range a.Steps[i][tbl] {
				if a.Steps[i][tbl][j] != b.Steps[i][tbl][j] {
					t.Fatal("same seed produced different traces")
				}
			}
		}
	}
}
