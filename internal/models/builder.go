package models

import "fmt"

// act is a reference to an activation tensor plus its NCHW shape (batch is
// implicit, held by the graph).
type act struct {
	id      int
	c, h, w int
}

// elems returns the per-batch element count of the activation.
func (a act) elems(batch int) int64 {
	return int64(batch) * int64(a.c) * int64(a.h) * int64(a.w)
}

// fwdOp records one forward operation so the graph can derive its backward
// kernel mechanically (reverse-mode differentiation over the op list, the
// same thing Zygote does for the paper's Julia prototype).
type fwdOp struct {
	name     string
	inputs   []act // activation inputs (gradients flow back through these)
	stopGrad bool  // no gradient for inputs (first op consuming the batch)
	params   []int // weight tensor IDs (each gets a gradient)
	out      act
	flops    float64
	// bwdFLOPs overrides the default 2x forward FLOPs when set.
	bwdFLOPs float64
	// readFactor is the kernel-internal read amplification (see
	// models.Kernel.ReadFactor); applied to both directions.
	readFactor float64
}

// graph accumulates forward ops and then mechanically emits the backward
// pass.
type graph struct {
	model *Model
	batch int
	ops   []fwdOp
}

func newGraph(name string, batch int) *graph {
	return &graph{model: &Model{Name: name, BatchSize: batch}, batch: batch}
}

// tensor appends a tensor and returns its ID.
func (g *graph) tensor(name string, bytes int64, kind TensorKind) int {
	id := len(g.model.Tensors)
	g.model.Tensors = append(g.model.Tensors, Tensor{ID: id, Name: name, Bytes: bytes, Kind: kind})
	return id
}

// activation appends an activation tensor for shape (c,h,w).
func (g *graph) activation(name string, c, h, w int, kind TensorKind) act {
	a := act{c: c, h: h, w: w}
	a.id = g.tensor(name, a.elems(g.batch)*bytesPerElem, kind)
	return a
}

// input declares the training batch.
func (g *graph) input(c, h, w int) act {
	return g.activation("input", c, h, w, Input)
}

// weight appends a weight tensor of the given element count.
func (g *graph) weight(name string, elems int64) int {
	return g.tensor(name, elems*bytesPerElem, Weight)
}

// record adds a forward op: it emits the forward kernel now and remembers
// enough to emit the backward kernel later.
func (g *graph) record(op fwdOp) act {
	reads := make([]int, 0, len(op.inputs)+len(op.params))
	for _, in := range op.inputs {
		reads = append(reads, in.id)
	}
	reads = append(reads, op.params...)
	g.model.Kernels = append(g.model.Kernels, Kernel{
		Name:       op.name,
		Phase:      Forward,
		Reads:      reads,
		Writes:     []int{op.out.id},
		FLOPs:      op.flops,
		ReadFactor: op.readFactor,
	})
	g.ops = append(g.ops, op)
	return op.out
}

// l2PerCore is the effective per-core cache a oneDNN conv can block its
// input into; inputs larger than this stream from memory once per
// output-channel block.
const l2PerCore = 1 << 20

// convReadFactor estimates how many times a convolution streams its input
// activation from memory.
func convReadFactor(in act) float64 {
	perImage := int64(in.c) * int64(in.h) * int64(in.w) * bytesPerElem
	rf := (perImage + l2PerCore - 1) / l2PerCore
	if rf < 1 {
		rf = 1
	}
	if rf > 16 {
		rf = 16
	}
	return float64(rf)
}

// convOut computes a convolution's output spatial size.
func convOut(in, k, stride, pad int) int { return (in+2*pad-k)/stride + 1 }

// conv adds a fused conv+bias+ReLU layer.
func (g *graph) conv(name string, in act, cout, k, stride, pad int) act {
	ho := convOut(in.h, k, stride, pad)
	wo := convOut(in.w, k, stride, pad)
	if ho <= 0 || wo <= 0 {
		panic(fmt.Sprintf("models: %s produces empty output (%dx%d)", name, ho, wo))
	}
	w := g.weight(name+".w", int64(k)*int64(k)*int64(in.c)*int64(cout)+int64(cout))
	out := g.activation(name+".out", cout, ho, wo, Activation)
	flops := 2 * float64(k) * float64(k) * float64(in.c) * float64(cout) *
		float64(ho) * float64(wo) * float64(g.batch)
	return g.record(fwdOp{name: name, inputs: []act{in}, params: []int{w}, out: out,
		flops: flops, readFactor: convReadFactor(in)})
}

// pool adds a max/avg pooling layer (no parameters).
func (g *graph) pool(name string, in act, k, stride int) act {
	ho := convOut(in.h, k, stride, 0)
	wo := convOut(in.w, k, stride, 0)
	out := g.activation(name+".out", in.c, ho, wo, Activation)
	flops := float64(k) * float64(k) * float64(out.elems(g.batch))
	return g.record(fwdOp{name: name, inputs: []act{in}, out: out, flops: flops})
}

// globalPool reduces spatial dims to 1x1.
func (g *graph) globalPool(name string, in act) act {
	out := g.activation(name+".out", in.c, 1, 1, Activation)
	return g.record(fwdOp{name: name, inputs: []act{in}, out: out,
		flops: float64(in.elems(g.batch))})
}

// eltwise adds a materialized elementwise layer (a non-fused BatchNorm or
// ReLU): output has the input's shape and must be retained for backward.
// DenseNet's pre-activation stages run on the concatenated input, which
// concat-then-normalize pipelines cannot fuse — these full-width
// intermediates are a large part of DenseNet's paper-scale footprint.
func (g *graph) eltwise(name string, in act) act {
	out := g.activation(name+".out", in.c, in.h, in.w, Activation)
	return g.record(fwdOp{name: name, inputs: []act{in}, out: out,
		flops: 4 * float64(out.elems(g.batch))})
}

// fc adds a fully connected layer over the flattened input.
func (g *graph) fc(name string, in act, outFeatures int) act {
	inFeatures := int64(in.c) * int64(in.h) * int64(in.w)
	w := g.weight(name+".w", inFeatures*int64(outFeatures)+int64(outFeatures))
	out := g.activation(name+".out", outFeatures, 1, 1, Activation)
	flops := 2 * float64(inFeatures) * float64(outFeatures) * float64(g.batch)
	return g.record(fwdOp{name: name, inputs: []act{in}, params: []int{w}, out: out, flops: flops})
}

// add performs a residual addition (ResNet skip connections).
func (g *graph) add(name string, a, b act) act {
	if a.c != b.c || a.h != b.h || a.w != b.w {
		panic(fmt.Sprintf("models: %s shape mismatch (%d,%d,%d) vs (%d,%d,%d)",
			name, a.c, a.h, a.w, b.c, b.h, b.w))
	}
	out := g.activation(name+".out", a.c, a.h, a.w, Activation)
	return g.record(fwdOp{name: name, inputs: []act{a, b}, out: out,
		flops: float64(out.elems(g.batch))})
}

// concat concatenates along the channel dimension (DenseNet). This is the
// memory-hungry explicit-copy concat of naive framework implementations,
// which is what drives DenseNet's paper-scale footprint.
func (g *graph) concat(name string, ins ...act) act {
	c := 0
	for _, in := range ins {
		if in.h != ins[0].h || in.w != ins[0].w {
			panic(fmt.Sprintf("models: %s spatial mismatch", name))
		}
		c += in.c
	}
	out := g.activation(name+".out", c, ins[0].h, ins[0].w, Activation)
	return g.record(fwdOp{name: name, inputs: ins, out: out,
		flops: float64(out.elems(g.batch)), bwdFLOPs: float64(out.elems(g.batch))})
}

// finish appends the loss kernel and the mechanically derived backward
// pass, then validates the model.
func (g *graph) finish(final act) *Model {
	m := g.model
	// Loss: consumes the final activation, produces its gradient — the
	// seed of the backward pass.
	gradOf := map[int]int{}
	seed := g.tensor("loss.grad", final.elems(g.batch)*bytesPerElem, ActivationGrad)
	gradOf[final.id] = seed
	m.Kernels = append(m.Kernels, Kernel{
		Name:   "loss",
		Phase:  Backward,
		Reads:  []int{final.id},
		Writes: []int{seed},
		FLOPs:  5 * float64(final.elems(g.batch)),
	})

	// gradTensor returns (creating on demand) the gradient tensor of an
	// activation, and whether it already existed (=> accumulate).
	gradTensor := func(a act) (int, bool) {
		if id, ok := gradOf[a.id]; ok {
			return id, true
		}
		id := g.tensor(m.Tensors[a.id].Name+".grad", a.elems(g.batch)*bytesPerElem, ActivationGrad)
		gradOf[a.id] = id
		return id, false
	}

	for i := len(g.ops) - 1; i >= 0; i-- {
		op := g.ops[i]
		outGrad, ok := gradOf[op.out.id]
		if !ok {
			// Dead branch (no consumer) — cannot happen in these
			// models, but guard anyway.
			continue
		}
		reads := []int{outGrad}
		// Backward needs the saved forward inputs and the weights.
		for _, in := range op.inputs {
			reads = append(reads, in.id)
		}
		reads = append(reads, op.params...)
		var writes []int
		for _, w := range op.params {
			wg := g.tensor(m.Tensors[w].Name+".grad", m.Tensors[w].Bytes, WeightGrad)
			// One gradient per weight: weights are not shared in
			// these models, so creation here is always fresh.
			writes = append(writes, wg)
		}
		if !op.stopGrad {
			for _, in := range op.inputs {
				if m.Tensors[in.id].Kind == Input {
					continue // no gradient for the batch itself
				}
				gid, accumulate := gradTensor(in)
				if accumulate {
					reads = append(reads, gid)
				}
				writes = append(writes, gid)
			}
		}
		if len(writes) == 0 {
			// Ops with no params and no differentiable inputs (the
			// stem consuming the batch): emit a token write so the
			// kernel is well-formed — real frameworks still launch
			// it for bias/BN statistics.
			tok := g.tensor(op.name+".stats", int64(op.out.c)*bytesPerElem, WeightGrad)
			writes = append(writes, tok)
		}
		flops := op.bwdFLOPs
		if flops == 0 {
			flops = 2 * op.flops
		}
		m.Kernels = append(m.Kernels, Kernel{
			Name:       op.name + ".bwd",
			Phase:      Backward,
			Reads:      reads,
			Writes:     writes,
			FLOPs:      flops,
			ReadFactor: op.readFactor,
		})
	}
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("models: built invalid model: %v", err))
	}
	return m
}
