package models

import "fmt"

// MLP builds a simple multi-layer perceptron training iteration: the
// quickstart-scale workload used by examples and tests. Hidden layers all
// have `hidden` units.
func MLP(inFeatures int, hidden []int, outFeatures, batch int) *Model {
	g := newGraph(fmt.Sprintf("mlp%d", len(hidden)+1), batch)
	x := g.input(inFeatures, 1, 1)
	for i, h := range hidden {
		x = g.fc(fmt.Sprintf("fc%d", i+1), x, h)
	}
	x = g.fc(fmt.Sprintf("fc%d", len(hidden)+1), x, outFeatures)
	return g.finish(x)
}
