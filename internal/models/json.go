package models

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// The JSON workload format lets users drive the harness with their own
// kernel traces — any application following the kernel programming model
// (§III-C) can be profiled once, exported, and replayed against every
// operating mode and platform this repository implements.
//
// Schema:
//
//	{
//	  "name": "myapp",
//	  "batchSize": 1,
//	  "tensors": [{"name": "w0", "bytes": 4096, "kind": "weight"}, ...],
//	  "kernels": [{"name": "k0", "phase": "forward",
//	               "reads": [0], "writes": [1],
//	               "flops": 1e9, "readFactor": 1}, ...]
//	}

type jsonTensor struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
	Kind  string `json:"kind"`
}

type jsonKernel struct {
	Name       string  `json:"name"`
	Phase      string  `json:"phase"`
	Reads      []int   `json:"reads"`
	Writes     []int   `json:"writes"`
	FLOPs      float64 `json:"flops"`
	ReadFactor float64 `json:"readFactor,omitempty"`
}

type jsonModel struct {
	Name      string       `json:"name"`
	BatchSize int          `json:"batchSize"`
	Tensors   []jsonTensor `json:"tensors"`
	Kernels   []jsonKernel `json:"kernels"`
}

var kindNames = map[string]TensorKind{
	"weight":          Weight,
	"weight-grad":     WeightGrad,
	"activation":      Activation,
	"activation-grad": ActivationGrad,
	"input":           Input,
}

// LoadJSON reads a workload model from JSON and validates it.
func LoadJSON(r io.Reader) (*Model, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var jm jsonModel
	if err := dec.Decode(&jm); err != nil {
		return nil, fmt.Errorf("models: decoding workload JSON: %w", err)
	}
	m := &Model{Name: jm.Name, BatchSize: jm.BatchSize}
	if m.Name == "" {
		m.Name = "workload"
	}
	if m.BatchSize == 0 {
		m.BatchSize = 1
	}
	for i, jt := range jm.Tensors {
		kind, ok := kindNames[strings.ToLower(jt.Kind)]
		if !ok {
			return nil, fmt.Errorf("models: tensor %d (%s): unknown kind %q", i, jt.Name, jt.Kind)
		}
		m.Tensors = append(m.Tensors, Tensor{ID: i, Name: jt.Name, Bytes: jt.Bytes, Kind: kind})
	}
	for i, jk := range jm.Kernels {
		var phase Phase
		switch strings.ToLower(jk.Phase) {
		case "forward", "":
			phase = Forward
		case "backward":
			phase = Backward
		default:
			return nil, fmt.Errorf("models: kernel %d (%s): unknown phase %q", i, jk.Name, jk.Phase)
		}
		m.Kernels = append(m.Kernels, Kernel{
			Name:       jk.Name,
			Phase:      phase,
			Reads:      jk.Reads,
			Writes:     jk.Writes,
			FLOPs:      jk.FLOPs,
			ReadFactor: jk.ReadFactor,
		})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveJSON writes the model in the workload JSON format.
func (m *Model) SaveJSON(w io.Writer) error {
	jm := jsonModel{Name: m.Name, BatchSize: m.BatchSize}
	for i := range m.Tensors {
		t := &m.Tensors[i]
		name := ""
		for k, v := range kindNames {
			if v == t.Kind {
				name = k
				break
			}
		}
		jm.Tensors = append(jm.Tensors, jsonTensor{Name: t.Name, Bytes: t.Bytes, Kind: name})
	}
	for i := range m.Kernels {
		k := &m.Kernels[i]
		jm.Kernels = append(jm.Kernels, jsonKernel{
			Name:       k.Name,
			Phase:      strings.ToLower(k.Phase.String()),
			Reads:      k.Reads,
			Writes:     k.Writes,
			FLOPs:      k.FLOPs,
			ReadFactor: k.ReadFactor,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jm)
}
