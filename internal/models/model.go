// Package models builds training-iteration workload graphs for the CNNs
// the paper benchmarks (Table III): VGG-416/116, ResNet-200 and
// DenseNet-264, plus an MLP and a DLRM-style embedding model used by the
// examples and the §VI extension experiments.
//
// A Model is a flat list of tensors and an ordered list of kernels (forward
// then backward), each kernel declaring its read set, write set and FLOP
// count. That is exactly the information the paper's kernel programming
// model exposes (§III-C): kernels read objects, write objects, and the
// runtime places hints around them.
package models

import (
	"fmt"
	"math"
)

// TensorKind classifies a tensor's role in training; the trace layer uses
// it to decide archive/retire placement.
type TensorKind int

const (
	// Weight tensors (and biases) persist across iterations.
	Weight TensorKind = iota
	// WeightGrad tensors persist until the optimizer step.
	WeightGrad
	// Activation tensors are produced on the forward pass and consumed
	// on the backward pass (the FILO pattern of §III-E).
	Activation
	// ActivationGrad tensors are short-lived backward-pass temporaries.
	ActivationGrad
	// Input is the training batch (and labels).
	Input
)

func (k TensorKind) String() string {
	switch k {
	case Weight:
		return "weight"
	case WeightGrad:
		return "weight-grad"
	case Activation:
		return "activation"
	case ActivationGrad:
		return "activation-grad"
	case Input:
		return "input"
	default:
		return fmt.Sprintf("TensorKind(%d)", int(k))
	}
}

// Tensor is one logical array in the workload.
type Tensor struct {
	ID    int
	Name  string
	Bytes int64
	Kind  TensorKind
}

// Phase marks which half of the iteration a kernel belongs to.
type Phase int

const (
	// Forward pass.
	Forward Phase = iota
	// Backward pass.
	Backward
)

func (p Phase) String() string {
	if p == Forward {
		return "forward"
	}
	return "backward"
}

// Kernel is one compute launch: it reads some tensors, writes others, and
// performs FLOPs of arithmetic.
type Kernel struct {
	Name   string
	Phase  Phase
	Reads  []int // tensor IDs
	Writes []int // tensor IDs
	FLOPs  float64
	// ReadFactor is the kernel-internal read amplification: how many
	// times the kernel streams its inputs from memory. Convolutions
	// whose per-image input exceeds the per-core L2 re-read it once per
	// output-channel block, which is what makes the paper's VGG kernels
	// "more sensitive to read bandwidth" (§V) than ResNet/DenseNet's.
	// Zero means 1.
	ReadFactor float64
}

// EffectiveReadFactor returns ReadFactor with the zero-default applied.
func (k *Kernel) EffectiveReadFactor() float64 {
	if k.ReadFactor <= 0 {
		return 1
	}
	return k.ReadFactor
}

// Model is a full training iteration: tensors plus the ordered kernel
// sequence (forward kernels followed by backward kernels).
type Model struct {
	Name      string
	BatchSize int
	Tensors   []Tensor
	Kernels   []Kernel
}

// bytesPerElem is fp32, as in the paper's oneDNN training runs.
const bytesPerElem = 4

// Tensor returns the tensor with the given ID.
func (m *Model) Tensor(id int) *Tensor { return &m.Tensors[id] }

// TotalFLOPs sums the FLOPs of every kernel.
func (m *Model) TotalFLOPs() float64 {
	var f float64
	for i := range m.Kernels {
		f += m.Kernels[i].FLOPs
	}
	return f
}

// WeightBytes sums the bytes of persistent tensors (weights and their
// gradients).
func (m *Model) WeightBytes() int64 {
	var n int64
	for i := range m.Tensors {
		if m.Tensors[i].Kind == Weight || m.Tensors[i].Kind == WeightGrad {
			n += m.Tensors[i].Bytes
		}
	}
	return n
}

// TotalTensorBytes sums every tensor's bytes (the no-reuse upper bound).
func (m *Model) TotalTensorBytes() int64 {
	var n int64
	for i := range m.Tensors {
		n += m.Tensors[i].Bytes
	}
	return n
}

// LastUse returns, for each tensor, the index of the last kernel that reads
// or writes it (-1 if never used).
func (m *Model) LastUse() []int {
	last := make([]int, len(m.Tensors))
	for i := range last {
		last[i] = -1
	}
	for ki := range m.Kernels {
		k := &m.Kernels[ki]
		for _, t := range k.Reads {
			last[t] = ki
		}
		for _, t := range k.Writes {
			last[t] = ki
		}
	}
	return last
}

// FirstUse returns, for each tensor, the index of the first kernel that
// touches it (len(Kernels) if never used). A tensor becomes live at its
// first write (allocation happens just before).
func (m *Model) FirstUse() []int {
	first := make([]int, len(m.Tensors))
	for i := range first {
		first[i] = len(m.Kernels)
	}
	for ki := len(m.Kernels) - 1; ki >= 0; ki-- {
		k := &m.Kernels[ki]
		for _, t := range k.Reads {
			first[t] = ki
		}
		for _, t := range k.Writes {
			first[t] = ki
		}
	}
	return first
}

// PeakFootprint computes the peak live bytes over the kernel sequence —
// the "approximate minimum memory footprint required for a single iteration
// of training" of Table III. Weights and weight gradients are live
// throughout; other tensors are live from first to last use.
func (m *Model) PeakFootprint() int64 {
	first, last := m.FirstUse(), m.LastUse()
	// Sweep kernel indices accumulating live bytes.
	live := m.WeightBytes()
	var peak int64 = live
	// Event lists per kernel index.
	starts := make([][]int, len(m.Kernels)+1)
	ends := make([][]int, len(m.Kernels)+1)
	for id := range m.Tensors {
		k := m.Tensors[id].Kind
		if k == Weight || k == WeightGrad {
			continue
		}
		if first[id] > last[id] || last[id] < 0 {
			continue // unused tensor
		}
		starts[first[id]] = append(starts[first[id]], id)
		ends[last[id]] = append(ends[last[id]], id)
	}
	for ki := 0; ki < len(m.Kernels); ki++ {
		for _, id := range starts[ki] {
			live += m.Tensors[id].Bytes
		}
		if live > peak {
			peak = live
		}
		for _, id := range ends[ki] {
			live -= m.Tensors[id].Bytes
		}
	}
	return peak
}

// Validate checks structural sanity: kernel tensor references in range,
// every tensor used, positive sizes, finite FLOPs.
func (m *Model) Validate() error {
	if len(m.Tensors) == 0 || len(m.Kernels) == 0 {
		return fmt.Errorf("models: %s is empty", m.Name)
	}
	used := make([]bool, len(m.Tensors))
	for ki := range m.Kernels {
		k := &m.Kernels[ki]
		if k.FLOPs < 0 || math.IsNaN(k.FLOPs) || math.IsInf(k.FLOPs, 0) {
			return fmt.Errorf("models: kernel %s has bad FLOPs %v", k.Name, k.FLOPs)
		}
		if len(k.Writes) == 0 {
			return fmt.Errorf("models: kernel %s writes nothing", k.Name)
		}
		for _, t := range append(append([]int{}, k.Reads...), k.Writes...) {
			if t < 0 || t >= len(m.Tensors) {
				return fmt.Errorf("models: kernel %s references tensor %d out of range", k.Name, t)
			}
			used[t] = true
		}
	}
	for id, u := range used {
		if !u {
			return fmt.Errorf("models: tensor %s (%d) never used", m.Tensors[id].Name, id)
		}
	}
	for id := range m.Tensors {
		if m.Tensors[id].Bytes <= 0 {
			return fmt.Errorf("models: tensor %s has size %d", m.Tensors[id].Name, m.Tensors[id].Bytes)
		}
		if m.Tensors[id].ID != id {
			return fmt.Errorf("models: tensor %d has mismatched ID %d", id, m.Tensors[id].ID)
		}
	}
	// Forward kernels must precede backward kernels.
	seenBackward := false
	for ki := range m.Kernels {
		if m.Kernels[ki].Phase == Backward {
			seenBackward = true
		} else if seenBackward {
			return fmt.Errorf("models: forward kernel %s after backward began", m.Kernels[ki].Name)
		}
	}
	return nil
}
