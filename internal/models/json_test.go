package models

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := MLP(64, []int{32}, 4, 8)
	var buf bytes.Buffer
	if err := orig.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.BatchSize != orig.BatchSize {
		t.Fatalf("header mismatch: %s/%d", got.Name, got.BatchSize)
	}
	if len(got.Tensors) != len(orig.Tensors) || len(got.Kernels) != len(orig.Kernels) {
		t.Fatalf("shape mismatch: %d/%d tensors, %d/%d kernels",
			len(got.Tensors), len(orig.Tensors), len(got.Kernels), len(orig.Kernels))
	}
	for i := range orig.Tensors {
		if got.Tensors[i] != orig.Tensors[i] {
			t.Fatalf("tensor %d: %+v != %+v", i, got.Tensors[i], orig.Tensors[i])
		}
	}
	for i := range orig.Kernels {
		a, b := got.Kernels[i], orig.Kernels[i]
		if a.Name != b.Name || a.Phase != b.Phase || a.FLOPs != b.FLOPs ||
			a.ReadFactor != b.ReadFactor {
			t.Fatalf("kernel %d mismatch: %+v != %+v", i, a, b)
		}
	}
	if got.PeakFootprint() != orig.PeakFootprint() {
		t.Fatal("footprint changed across round trip")
	}
}

func TestLoadJSONMinimal(t *testing.T) {
	src := `{
	  "tensors": [
	    {"name": "in", "bytes": 1024, "kind": "input"},
	    {"name": "w", "bytes": 4096, "kind": "weight"},
	    {"name": "out", "bytes": 1024, "kind": "activation"}
	  ],
	  "kernels": [
	    {"name": "fc", "reads": [0,1], "writes": [2], "flops": 1000}
	  ]
	}`
	m, err := LoadJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "workload" || m.BatchSize != 1 {
		t.Fatalf("defaults not applied: %s/%d", m.Name, m.BatchSize)
	}
	if m.Kernels[0].Phase != Forward {
		t.Fatal("default phase not forward")
	}
}

func TestLoadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{`,
		"unknown kind":  `{"tensors":[{"name":"x","bytes":8,"kind":"mystery"}],"kernels":[{"name":"k","writes":[0],"flops":1}]}`,
		"unknown phase": `{"tensors":[{"name":"x","bytes":8,"kind":"weight"}],"kernels":[{"name":"k","phase":"sideways","writes":[0],"flops":1}]}`,
		"bad reference": `{"tensors":[{"name":"x","bytes":8,"kind":"weight"}],"kernels":[{"name":"k","writes":[7],"flops":1}]}`,
		"unknown field": `{"wat": 1, "tensors":[], "kernels":[]}`,
		"zero size":     `{"tensors":[{"name":"x","bytes":0,"kind":"weight"}],"kernels":[{"name":"k","writes":[0],"flops":1}]}`,
	}
	for name, src := range cases {
		if _, err := LoadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestAllKindsSerializable(t *testing.T) {
	for name, kind := range kindNames {
		m := &Model{Name: "k", BatchSize: 1,
			Tensors: []Tensor{{ID: 0, Name: "t", Bytes: 8, Kind: kind}},
			Kernels: []Kernel{{Name: "k", Writes: []int{0}, FLOPs: 1}},
		}
		var buf bytes.Buffer
		if err := m.SaveJSON(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadJSON(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Tensors[0].Kind != kind {
			t.Errorf("%s: kind %v became %v", name, kind, got.Tensors[0].Kind)
		}
	}
}
