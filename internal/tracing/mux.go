package tracing

// Mux multiplexes one Recorder — the platform's single tracer slot —
// across N tenant lanes. The cluster dispatcher switches the active lane
// at every dispatch boundary, so each event lands in the lane of the
// tenant that was running when it fired. Because exactly one tenant runs
// at a time (the cluster is a single-clock interleaving, not a parallel
// execution), a lane's events are exactly the events that tenant's own
// solo recorder would have seen in its dispatch windows — which is why
// per-lane Verify can hold bit-exact.
//
// Besides the tenant tag, the recorder context (iteration, kernel, hint)
// is itself per-tenant state: tenant A may be mid-kernel in iteration 3
// when the dispatcher switches to tenant B starting iteration 0. Switch
// saves the outgoing lane's context and restores the incoming lane's, so
// events keep their owner's context across arbitrary interleavings.
type Mux struct {
	rec    *Recorder
	lanes  []laneContext
	names  []string
	active int
}

// laneContext is the saved recorder context of one suspended lane.
type laneContext struct {
	iter   int
	kernel int
	kname  string
	hint   string
}

// NewMux creates a mux over a fresh recorder stamping the given
// virtual-time source.
func NewMux(now func() float64) *Mux {
	return &Mux{rec: New(now), active: -1}
}

// Recorder returns the underlying recorder — the value to install in the
// platform's tracer slot and to hand to the active tenant's layers.
func (m *Mux) Recorder() *Recorder { return m.rec }

// Lane registers a tenant lane under the given name and returns its index.
func (m *Mux) Lane(name string) int {
	m.lanes = append(m.lanes, laneContext{iter: -1, kernel: -1})
	m.names = append(m.names, name)
	return len(m.lanes) - 1
}

// Switch makes lane i the active lane: subsequent events are tagged with
// its tenant name and stamped with its saved context. Switching to the
// already-active lane is a no-op.
func (m *Mux) Switch(i int) {
	if i == m.active {
		return
	}
	m.park()
	l := m.lanes[i]
	m.rec.iter, m.rec.kernel, m.rec.kname, m.rec.hint = l.iter, l.kernel, l.kname, l.hint
	m.rec.tenant = m.names[i]
	m.active = i
}

// park saves the active lane's context and detaches the recorder from any
// lane (events emitted while parked are untagged cluster-owned events).
func (m *Mux) park() {
	if m.active >= 0 {
		m.lanes[m.active] = laneContext{
			iter: m.rec.iter, kernel: m.rec.kernel, kname: m.rec.kname, hint: m.rec.hint,
		}
	}
	m.rec.iter, m.rec.kernel, m.rec.kname, m.rec.hint = -1, -1, "", ""
	m.rec.tenant = ""
	m.active = -1
}

// EmitCluster appends the trailing cluster record (untagged — it is
// cluster-owned, not any tenant's).
func (m *Mux) EmitCluster(c ClusterTotals) {
	m.park()
	m.rec.emit(Event{Kind: KindCluster, Cluster: &c})
}

// Events returns the recorded events across all lanes, in emission order.
func (m *Mux) Events() []Event { return m.rec.Events() }
