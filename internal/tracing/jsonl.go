package tracing

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL writes the events as one JSON object per line — the
// programmatic export catrace and analysis scripts consume.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("tracing: writing event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a JSONL event log written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return events, nil
		} else if err != nil {
			return nil, fmt.Errorf("tracing: reading event %d: %w", len(events), err)
		}
		events = append(events, e)
	}
}
