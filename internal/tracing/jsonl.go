package tracing

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL writes the events as one JSON object per line — the
// programmatic export catrace and analysis scripts consume.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("tracing: writing event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a JSONL event log written by WriteJSONL: one JSON
// object per line, blank lines ignored. Malformed input — truncated
// lines, non-object values like null (which encoding/json would silently
// decode into a zero event), trailing garbage — fails with the offending
// line number instead of being skipped or mis-parsed.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if raw[0] != '{' {
			return nil, fmt.Errorf("tracing: line %d: not a JSON event object (starts with %q)", line, rune(raw[0]))
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("tracing: line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tracing: reading line %d: %w", line+1, err)
	}
	return events, nil
}
