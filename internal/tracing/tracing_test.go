package tracing

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestNilRecorderIsSafe exercises every method on a nil receiver — the
// contract that lets the hot paths stay instrumented with tracing off.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder claims enabled")
	}
	r.BeginIter(0)
	r.BeginKernel(1, "k")
	r.EndKernel()
	r.SetHint("will_read")
	if r.Hint() != "" {
		t.Fatal("nil recorder has a hint")
	}
	r.ClockAdvance(1, 1)
	r.Xfer("dram", "nvram", 64, 0, 1, 4, 2, 1, 0.5)
	r.Copy(1, 64, "fast", "slow", 0, 1)
	r.DM(KindAlloc, 1, 64, "", "fast")
	r.Decision("evict", 1, 64)
	r.Kernel(0, 1, 0.5)
	r.KernelIO("dram", 64, 64)
	r.Stall("hint", 0, 0.1)
	r.Bind(1, "conv1.weights", 64)
	r.GC(0, 1, 2, 128)
	r.Iter(0, 0, 1)
	r.EmitTotals(Totals{})
	if r.Events() != nil {
		t.Fatal("nil recorder recorded events")
	}
}

// TestRecorderStampsContext checks iteration/kernel/hint context lands on
// emitted events.
func TestRecorderStampsContext(t *testing.T) {
	now := 3.5
	r := New(func() float64 { return now })
	r.DM(KindAlloc, 1, 64, "", "fast")
	r.BeginIter(2)
	r.BeginKernel(7, "conv3")
	r.SetHint("will_write")
	r.Copy(9, 128, "slow", "fast", 3.0, 3.5)
	r.SetHint("")
	r.EndKernel()
	r.Decision("defrag", 0, 64)

	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events", len(ev))
	}
	if ev[0].Iter != -1 || ev[0].Kernel != -1 || ev[0].T0 != now {
		t.Errorf("pre-run event context wrong: %+v", ev[0])
	}
	if ev[1].Iter != 2 || ev[1].Kernel != 7 || ev[1].KName != "conv3" || ev[1].Cause != "will_write" {
		t.Errorf("in-kernel event context wrong: %+v", ev[1])
	}
	if ev[2].Kernel != -1 || ev[2].KName != "" || ev[2].Cause != "" {
		t.Errorf("post-kernel event context wrong: %+v", ev[2])
	}
}

// traceFixture builds a small hand-made trace whose totals are consistent.
func traceFixture() []Event {
	r := New(func() float64 { return 0 })
	r.BeginIter(0)
	r.BeginKernel(0, "k0")
	// An eviction: object copy fast->slow backed by a dram->nvram xfer.
	r.Xfer("dram", "nvram", 100, 0, 1, 4, 2, 0, 0)
	r.Copy(1, 100, "fast", "slow", 0, 1)
	r.Stall("hint", 0, 1.0)
	// The kernel reads 40 from dram, writes 10 to nvram.
	r.Kernel(1, 2, 0.7)
	r.KernelIO("dram", 40, 0)
	r.KernelIO("nvram", 0, 10)
	r.EndKernel()
	r.BeginIter(1)
	// A prefetch back: nvram->dram.
	r.Xfer("nvram", "dram", 100, 2, 3, 4, 4, 0, 0)
	r.Copy(1, 100, "slow", "fast", 2, 3)
	r.Stall("wait", 1, 0.25)
	r.Stall("drain", 0, 0.5)
	r.EmitTotals(Totals{
		Copies:          2,
		BytesFastToSlow: 100,
		BytesSlowToFast: 100,
		FastDevice:      "dram",
		SlowDevice:      "nvram",
		FastReadBytes:   140, // xfer 100 + kernel 40
		FastWriteBytes:  100, // prefetch xfer
		SlowReadBytes:   100, // prefetch xfer
		SlowWriteBytes:  110, // xfer 100 + kernel 10
		MoveTimeByIter:  []float64{1.0, 0.25 + 0.5},
	})
	return r.Events()
}

func TestVerifyAcceptsConsistentTrace(t *testing.T) {
	if err := Verify(traceFixture()); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyCatchesTampering flips each aggregate in turn and checks Verify
// reports a mismatch — the consistency check has no blind spots among its
// checked quantities.
func TestVerifyCatchesTampering(t *testing.T) {
	tamper := map[string]func(*Totals){
		"copies":        func(tt *Totals) { tt.Copies++ },
		"fast to slow":  func(tt *Totals) { tt.BytesFastToSlow += 1 },
		"slow to fast":  func(tt *Totals) { tt.BytesSlowToFast += 1 },
		"within fast":   func(tt *Totals) { tt.BytesWithinFast += 1 },
		"within slow":   func(tt *Totals) { tt.BytesWithinSlow += 1 },
		"defrag":        func(tt *Totals) { tt.DefragMoves++ },
		"fast reads":    func(tt *Totals) { tt.FastReadBytes++ },
		"fast writes":   func(tt *Totals) { tt.FastWriteBytes++ },
		"slow reads":    func(tt *Totals) { tt.SlowReadBytes++ },
		"slow writes":   func(tt *Totals) { tt.SlowWriteBytes++ },
		"stall seconds": func(tt *Totals) { tt.MoveTimeByIter[0] += 1e-9 },
	}
	for name, f := range tamper {
		events := traceFixture()
		tt := *FindTotals(events)
		tt.MoveTimeByIter = append([]float64(nil), tt.MoveTimeByIter...)
		f(&tt)
		events[len(events)-1].Totals = &tt
		if err := Verify(events); err == nil {
			t.Errorf("%s: tampered trace verified clean", name)
		}
	}
}

func TestVerifyRequiresTotals(t *testing.T) {
	events := traceFixture()
	if err := Verify(events[:len(events)-1]); err == nil ||
		!strings.Contains(err.Error(), "no totals") {
		t.Fatalf("missing-totals error wrong: %v", err)
	}
}

// TestJSONLRoundTrip checks the JSONL export survives a write/read cycle
// losslessly — including the trailing totals, so a loaded file can be
// re-verified.
func TestJSONLRoundTrip(t *testing.T) {
	events := traceFixture()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, got) {
		t.Fatalf("round trip diverged:\n want %+v\n got  %+v", events, got)
	}
	if err := Verify(got); err != nil {
		t.Fatalf("re-loaded trace fails verification: %v", err)
	}
}

// TestReadJSONLRejectsMalformedInput checks the reader fails loudly, with
// the offending line number, on every corruption class a truncated or
// hand-edited trace file can exhibit — instead of skipping lines or
// silently decoding null into a zero event.
func TestReadJSONLRejectsMalformedInput(t *testing.T) {
	var good bytes.Buffer
	if err := WriteJSONL(&good, traceFixture()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(good.String(), "\n"), "\n")
	tests := []struct {
		name  string
		input string
		want  string // error substring
	}{
		{"truncated mid-object", lines[0] + "\n" + lines[1][:len(lines[1])/2] + "\n", "line 2"},
		{"null line", lines[0] + "\nnull\n", "line 2"},
		{"non-JSON garbage", "kind,t0,dur\n" + lines[0] + "\n", "line 1"},
		{"trailing garbage", lines[0] + " extra\n", "line 1"},
		{"bad field type", `{"kind":"stall","t0":"not-a-number"}` + "\n", "line 1"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJSONL(strings.NewReader(tc.input))
			if err == nil {
				t.Fatal("malformed input accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name %q", err, tc.want)
			}
		})
	}
	// Blank lines between events are tolerated (hand-concatenated files).
	withBlank := lines[0] + "\n\n" + strings.Join(lines[1:], "\n") + "\n"
	events, err := ReadJSONL(strings.NewReader(withBlank))
	if err != nil {
		t.Fatalf("blank line rejected: %v", err)
	}
	if len(events) != len(lines) {
		t.Errorf("got %d events, want %d", len(events), len(lines))
	}
}

// TestChromeExportIsValidJSON checks the Chrome export parses and contains
// the expected track structure.
func TestChromeExportIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, traceFixture()); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	var kernels, xfers, stalls int
	for _, e := range file.TraceEvents {
		if e.Ph == "X" && e.Dur < 0 {
			t.Errorf("negative duration on %q", e.Name)
		}
		switch {
		case e.Pid == pidCompute && e.Name == "k0":
			kernels++
		case e.Pid == pidPlatform && strings.HasPrefix(e.Name, "copy "):
			xfers++
		case strings.HasPrefix(e.Name, "stall:"):
			stalls++
		}
	}
	if kernels != 1 || xfers != 2 || stalls != 3 {
		t.Errorf("track content wrong: kernels=%d xfers=%d stalls=%d", kernels, xfers, stalls)
	}
}

// TestSummarizeStallOrder pins that per-iteration stall sums accumulate in
// event order (the exactness contract with the engine).
func TestSummarizeStallOrder(t *testing.T) {
	s := Summarize(traceFixture())
	if len(s.StallByIter) != 2 {
		t.Fatalf("stall iters = %d", len(s.StallByIter))
	}
	if s.StallByIter[0] != 1.0 || s.StallByIter[1] != 0.25+0.5 {
		t.Fatalf("stall sums = %v", s.StallByIter)
	}
	if s.StallSeconds != 1.0+0.25+0.5 {
		t.Fatalf("total stall = %v", s.StallSeconds)
	}
}
