package tracing

import (
	"encoding/json"
	"fmt"
	"io"

	"cachedarrays/internal/units"
)

// Chrome trace-event export: the trace rendered for chrome://tracing and
// Perfetto (ui.perfetto.dev). Track layout:
//
//	platform  — one track per memory device (transfers land on the write
//	            side's track), plus a counter track for the asynchronous
//	            mover's queue depth and backlog;
//	policy    — a "movement" track with object-copy spans and a
//	            "decisions" track with instant decision markers;
//	compute   — the kernel execution stream, the movement-stall track,
//	            GC pauses and iteration spans.
//
// Lifecycle events (alloc/free/link/setprimary/destroy) are deliberately
// left to the JSONL export: they are per-object bookkeeping, not timeline
// content, and at paper scale they would dominate the render.
//
// Multi-tenant (tenant-tagged) traces use a different layout: the
// platform process keeps one shared track per device — transfers carry
// their owning tenant in the span name, so cross-tenant copy-engine
// contention is visible as interleaved ownership on one track — and each
// tenant gets its own process ("tenant <name>") holding its kernels,
// stalls, gc, iterations, movement and decision tracks.

// chromeEvent is one trace-event record (Chrome Trace Event Format).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON object container format.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const (
	pidPlatform = 1
	pidPolicy   = 2
	pidCompute  = 3

	tidMovement   = 1
	tidDecisions  = 2
	tidKernels    = 1
	tidStalls     = 2
	tidGC         = 3
	tidIterations = 4

	// Tenant processes of a multi-tenant trace start here, one pid per
	// lane in first-seen order. Each reuses the compute tids above plus
	// movement/decision tracks at tidTenantMovement/tidTenantDecisions.
	pidTenantBase      = 10
	tidTenantMovement  = 5
	tidTenantDecisions = 6
)

const usec = 1e6 // seconds -> trace-event microseconds

// WriteChrome writes the events as a Chrome trace-event JSON file.
// Tenant-tagged (multi-tenant) traces get the per-tenant lane layout;
// untagged traces get the solo layout.
func WriteChrome(w io.Writer, events []Event) error {
	for _, e := range events {
		if e.Tenant != "" {
			return writeChromeCluster(w, events)
		}
	}
	return writeChromeSolo(w, events)
}

func writeChromeSolo(w io.Writer, events []Event) error {
	var out []chromeEvent
	meta := func(pid, tid int, key, name string) {
		out = append(out, chromeEvent{
			Name: key, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(pidPlatform, 0, "process_name", "platform")
	meta(pidPolicy, 0, "process_name", "policy")
	meta(pidPolicy, tidMovement, "thread_name", "movement")
	meta(pidPolicy, tidDecisions, "thread_name", "decisions")
	meta(pidCompute, 0, "process_name", "compute")
	meta(pidCompute, tidKernels, "thread_name", "kernels")
	meta(pidCompute, tidStalls, "thread_name", "movement stalls")
	meta(pidCompute, tidGC, "thread_name", "gc")
	meta(pidCompute, tidIterations, "thread_name", "iterations")

	// One platform track per device, allocated in first-seen order.
	deviceTid := map[string]int{}
	devTrack := func(name string) int {
		if tid, ok := deviceTid[name]; ok {
			return tid
		}
		tid := len(deviceTid) + 1
		deviceTid[name] = tid
		meta(pidPlatform, tid, "thread_name", "device "+name)
		return tid
	}

	for _, e := range events {
		switch e.Kind {
		case KindXfer:
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("copy %s %s→%s", units.Bytes(e.Bytes), e.From, e.To),
				Ph:   "X", Ts: e.T0 * usec, Dur: e.Dur * usec,
				Pid: pidPlatform, Tid: devTrack(e.To),
				Args: map[string]any{
					"bytes": e.Bytes, "src": e.From, "dst": e.To,
					"read_threads": e.RThreads, "write_threads": e.WThreads,
				},
			})
			if e.Depth > 0 {
				out = append(out, chromeEvent{
					Name: "async mover", Ph: "C", Ts: e.T0 * usec, Pid: pidPlatform,
					Args: map[string]any{"queue_depth": e.Depth, "backlog_s": e.Backlog},
				})
			}
		case KindCopy:
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("obj %d %s→%s", e.Obj, e.From, e.To),
				Ph:   "X", Ts: e.T0 * usec, Dur: e.Dur * usec,
				Pid: pidPolicy, Tid: tidMovement,
				Args: map[string]any{
					"obj": e.Obj, "bytes": e.Bytes, "cause": e.Cause,
					"kernel": e.KName, "iter": e.Iter,
				},
			})
		case KindDecision:
			out = append(out, chromeEvent{
				Name: e.Op, Ph: "i", Ts: e.T0 * usec, S: "t",
				Pid: pidPolicy, Tid: tidDecisions,
				Args: map[string]any{
					"obj": e.Obj, "bytes": e.Bytes, "cause": e.Cause, "kernel": e.KName,
				},
			})
		case KindKernel:
			out = append(out, chromeEvent{
				Name: e.KName, Ph: "X", Ts: e.T0 * usec, Dur: e.Dur * usec,
				Pid: pidCompute, Tid: tidKernels,
				Args: map[string]any{
					"iter": e.Iter, "compute_s": e.Compute,
					"memory_bound_s": e.Dur - e.Compute,
				},
			})
		case KindStall:
			if e.Dur <= 0 {
				continue
			}
			name := "stall:" + e.Op
			if e.KName != "" {
				name += " before " + e.KName
			}
			out = append(out, chromeEvent{
				Name: name, Ph: "X", Ts: e.T0 * usec, Dur: e.Dur * usec,
				Pid: pidCompute, Tid: tidStalls,
				Args: map[string]any{"obj": e.Obj, "iter": e.Iter},
			})
		case KindGC:
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("gc (%d objects, %s)", e.Obj, units.Bytes(e.Bytes)),
				Ph:   "X", Ts: e.T0 * usec, Dur: e.Dur * usec,
				Pid: pidCompute, Tid: tidGC,
			})
		case KindIter:
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("iteration %d", e.Iter),
				Ph:   "X", Ts: e.T0 * usec, Dur: e.Dur * usec,
				Pid: pidCompute, Tid: tidIterations,
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: out, DisplayTimeUnit: "ms"})
}

// writeChromeCluster renders a tenant-tagged trace: shared device tracks
// under the platform process (transfer spans named by their owning
// tenant) plus one process per tenant lane.
func writeChromeCluster(w io.Writer, events []Event) error {
	var out []chromeEvent
	meta := func(pid, tid int, key, name string) {
		out = append(out, chromeEvent{
			Name: key, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(pidPlatform, 0, "process_name", "platform (shared)")

	deviceTid := map[string]int{}
	devTrack := func(name string) int {
		if tid, ok := deviceTid[name]; ok {
			return tid
		}
		tid := len(deviceTid) + 1
		deviceTid[name] = tid
		meta(pidPlatform, tid, "thread_name", "device "+name)
		return tid
	}

	tenantPid := map[string]int{}
	lane := func(tenant string) int {
		if pid, ok := tenantPid[tenant]; ok {
			return pid
		}
		pid := pidTenantBase + len(tenantPid)
		tenantPid[tenant] = pid
		meta(pid, 0, "process_name", "tenant "+tenant)
		meta(pid, tidKernels, "thread_name", "kernels")
		meta(pid, tidStalls, "thread_name", "movement stalls")
		meta(pid, tidGC, "thread_name", "gc")
		meta(pid, tidIterations, "thread_name", "iterations")
		meta(pid, tidTenantMovement, "thread_name", "movement")
		meta(pid, tidTenantDecisions, "thread_name", "decisions")
		return pid
	}

	for _, e := range events {
		switch e.Kind {
		case KindXfer:
			name := fmt.Sprintf("copy %s %s→%s", units.Bytes(e.Bytes), e.From, e.To)
			if e.Tenant != "" {
				name = fmt.Sprintf("%s: %s", e.Tenant, name)
			}
			out = append(out, chromeEvent{
				Name: name,
				Ph:   "X", Ts: e.T0 * usec, Dur: e.Dur * usec,
				Pid: pidPlatform, Tid: devTrack(e.To),
				Args: map[string]any{
					"tenant": e.Tenant,
					"bytes":  e.Bytes, "src": e.From, "dst": e.To,
					"read_threads": e.RThreads, "write_threads": e.WThreads,
				},
			})
			if e.Depth > 0 {
				out = append(out, chromeEvent{
					Name: "async mover", Ph: "C", Ts: e.T0 * usec, Pid: pidPlatform,
					Args: map[string]any{"queue_depth": e.Depth, "backlog_s": e.Backlog},
				})
			}
		case KindCopy:
			if e.Tenant == "" {
				continue
			}
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("obj %d %s→%s", e.Obj, e.From, e.To),
				Ph:   "X", Ts: e.T0 * usec, Dur: e.Dur * usec,
				Pid: lane(e.Tenant), Tid: tidTenantMovement,
				Args: map[string]any{
					"obj": e.Obj, "bytes": e.Bytes, "cause": e.Cause,
					"kernel": e.KName, "iter": e.Iter,
				},
			})
		case KindDecision:
			if e.Tenant == "" {
				continue
			}
			out = append(out, chromeEvent{
				Name: e.Op, Ph: "i", Ts: e.T0 * usec, S: "t",
				Pid: lane(e.Tenant), Tid: tidTenantDecisions,
				Args: map[string]any{
					"obj": e.Obj, "bytes": e.Bytes, "cause": e.Cause, "kernel": e.KName,
				},
			})
		case KindKernel:
			if e.Tenant == "" {
				continue
			}
			out = append(out, chromeEvent{
				Name: e.KName, Ph: "X", Ts: e.T0 * usec, Dur: e.Dur * usec,
				Pid: lane(e.Tenant), Tid: tidKernels,
				Args: map[string]any{
					"iter": e.Iter, "compute_s": e.Compute,
					"memory_bound_s": e.Dur - e.Compute,
				},
			})
		case KindStall:
			if e.Dur <= 0 || e.Tenant == "" {
				continue
			}
			name := "stall:" + e.Op
			if e.KName != "" {
				name += " before " + e.KName
			}
			out = append(out, chromeEvent{
				Name: name, Ph: "X", Ts: e.T0 * usec, Dur: e.Dur * usec,
				Pid: lane(e.Tenant), Tid: tidStalls,
				Args: map[string]any{"obj": e.Obj, "iter": e.Iter},
			})
		case KindGC:
			if e.Tenant == "" {
				continue
			}
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("gc (%d objects, %s)", e.Obj, units.Bytes(e.Bytes)),
				Ph:   "X", Ts: e.T0 * usec, Dur: e.Dur * usec,
				Pid: lane(e.Tenant), Tid: tidGC,
			})
		case KindIter:
			if e.Tenant == "" {
				continue
			}
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("iteration %d", e.Iter),
				Ph:   "X", Ts: e.T0 * usec, Dur: e.Dur * usec,
				Pid: lane(e.Tenant), Tid: tidIterations,
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: out, DisplayTimeUnit: "ms"})
}
