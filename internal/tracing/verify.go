package tracing

import "fmt"

// Summary is what Verify recomputes from the raw event stream: the same
// shape as Totals, derived independently from the per-event records.
type Summary struct {
	Copies          int64
	BytesFastToSlow int64
	BytesSlowToFast int64
	BytesWithinFast int64
	BytesWithinSlow int64
	DefragMoves     int64
	ReadBytes       map[string]int64 // per device name
	WriteBytes      map[string]int64
	StallByIter     []float64
	StallSeconds    float64
}

// Summarize folds the event stream into a Summary. Stall durations are
// summed in event order so the per-iteration totals repeat the engine's own
// float additions exactly.
func Summarize(events []Event) Summary {
	s := Summary{
		ReadBytes:  map[string]int64{},
		WriteBytes: map[string]int64{},
	}
	for _, e := range events {
		switch e.Kind {
		case KindCopy:
			s.Copies++
			switch {
			case e.From == "fast" && e.To == "slow":
				s.BytesFastToSlow += e.Bytes
			case e.From == "slow" && e.To == "fast":
				s.BytesSlowToFast += e.Bytes
			case e.From == "fast":
				s.BytesWithinFast += e.Bytes
			default:
				s.BytesWithinSlow += e.Bytes
			}
		case KindDefrag:
			s.DefragMoves++
		case KindXfer:
			s.ReadBytes[e.From] += e.Bytes
			s.WriteBytes[e.To] += e.Bytes
		case KindKernelIO:
			s.ReadBytes[e.From] += e.RBytes
			s.WriteBytes[e.From] += e.WBytes
		case KindStall:
			for len(s.StallByIter) <= e.Iter {
				s.StallByIter = append(s.StallByIter, 0)
			}
			if e.Iter >= 0 {
				s.StallByIter[e.Iter] += e.Dur
				s.StallSeconds += e.Dur
			}
		}
	}
	return s
}

// FindTotals returns the trace's trailing aggregate record, or nil when
// the trace has none.
func FindTotals(events []Event) *Totals {
	for i := len(events) - 1; i >= 0; i-- {
		if events[i].Kind == KindTotals && events[i].Totals != nil {
			return events[i].Totals
		}
	}
	return nil
}

// FindCluster returns the trace's trailing cluster record, or nil when
// the trace has none (solo traces never do).
func FindCluster(events []Event) *ClusterTotals {
	for i := len(events) - 1; i >= 0; i-- {
		if events[i].Kind == KindCluster && events[i].Cluster != nil {
			return events[i].Cluster
		}
	}
	return nil
}

// Lanes splits a multiplexed trace by tenant tag, preserving event order
// within each lane. The returned names are in first-seen order; untagged
// events (cluster-owned: the trailing cluster record, clock advances
// outside any dispatch window) are dropped. A solo (untagged) trace
// yields no lanes.
func Lanes(events []Event) (names []string, lanes map[string][]Event) {
	lanes = map[string][]Event{}
	for _, e := range events {
		if e.Tenant == "" {
			continue
		}
		if _, ok := lanes[e.Tenant]; !ok {
			names = append(names, e.Tenant)
		}
		lanes[e.Tenant] = append(lanes[e.Tenant], e)
	}
	return names, lanes
}

// VerifyLanes is Verify for multiplexed multi-tenant traces. For an
// untagged trace it defers to Verify. For a tagged trace it checks:
//
//   - every lane that carries its own totals record verifies standalone
//     (the lane is an exact decomposition of that tenant's aggregates);
//   - the trailing cluster record exists, and each lane's totals agree
//     with the cluster record's per-tenant attributed device traffic;
//   - the per-tenant attributed traffic partitions the whole-platform
//     device counters exactly (Σ tenants == platform, bit-exact) — this
//     check is mode-independent and holds even for tenants whose modes
//     emit no per-event traffic records.
//
// Lanes without a totals record (non-CA modes trace no dm/kio events)
// are covered by the partition check only.
func VerifyLanes(events []Event) error {
	names, lanes := Lanes(events)
	if len(names) == 0 {
		return Verify(events)
	}
	c := FindCluster(events)
	if c == nil {
		return fmt.Errorf("tracing: multi-tenant trace has no cluster record")
	}
	byName := map[string]*TenantTotals{}
	for i := range c.Tenants {
		byName[c.Tenants[i].Name] = &c.Tenants[i]
	}
	for _, name := range names {
		lane := lanes[name]
		tt := byName[name]
		if tt == nil {
			return fmt.Errorf("tracing: lane %q has no tenant record in the cluster totals", name)
		}
		t := FindTotals(lane)
		if t == nil {
			continue // mode traces no aggregates; partition check still covers it
		}
		if err := Verify(lane); err != nil {
			return fmt.Errorf("tracing: lane %q: %w", name, err)
		}
		attr := []struct {
			name      string
			got, want int64
		}{
			{"fast read bytes", t.FastReadBytes, tt.FastReadBytes},
			{"fast write bytes", t.FastWriteBytes, tt.FastWriteBytes},
			{"slow read bytes", t.SlowReadBytes, tt.SlowReadBytes},
			{"slow write bytes", t.SlowWriteBytes, tt.SlowWriteBytes},
		}
		for _, a := range attr {
			if a.got != a.want {
				return fmt.Errorf("tracing: lane %q %s: lane totals say %d, cluster attribution says %d",
					name, a.name, a.got, a.want)
			}
		}
	}
	var fr, fw, sr, sw int64
	for _, tt := range c.Tenants {
		fr += tt.FastReadBytes
		fw += tt.FastWriteBytes
		sr += tt.SlowReadBytes
		sw += tt.SlowWriteBytes
	}
	part := []struct {
		name      string
		got, want int64
	}{
		{"fast read bytes", fr, c.FastReadBytes},
		{"fast write bytes", fw, c.FastWriteBytes},
		{"slow read bytes", sr, c.SlowReadBytes},
		{"slow write bytes", sw, c.SlowWriteBytes},
	}
	for _, p := range part {
		if p.got != p.want {
			return fmt.Errorf("tracing: cluster %s: tenants sum to %d, platform counted %d",
				p.name, p.got, p.want)
		}
	}
	return nil
}

// Verify checks that the trace is an exact decomposition of the run's
// published aggregates: summed per-event copy bytes equal the data
// manager's movement counters, summed transfer and kernel traffic equals
// the device counters, and summed stall durations equal each iteration's
// movement-stall time bit-for-bit. It returns the first mismatch found.
func Verify(events []Event) error {
	t := FindTotals(events)
	if t == nil {
		return fmt.Errorf("tracing: trace has no totals record")
	}
	s := Summarize(events)

	intChecks := []struct {
		name      string
		got, want int64
	}{
		{"copies", s.Copies, t.Copies},
		{"bytes fast->slow", s.BytesFastToSlow, t.BytesFastToSlow},
		{"bytes slow->fast", s.BytesSlowToFast, t.BytesSlowToFast},
		{"bytes within fast", s.BytesWithinFast, t.BytesWithinFast},
		{"bytes within slow", s.BytesWithinSlow, t.BytesWithinSlow},
		{"defrag moves", s.DefragMoves, t.DefragMoves},
		{"fast read bytes", s.ReadBytes[t.FastDevice], t.FastReadBytes},
		{"fast write bytes", s.WriteBytes[t.FastDevice], t.FastWriteBytes},
		{"slow read bytes", s.ReadBytes[t.SlowDevice], t.SlowReadBytes},
		{"slow write bytes", s.WriteBytes[t.SlowDevice], t.SlowWriteBytes},
	}
	for _, c := range intChecks {
		if c.got != c.want {
			return fmt.Errorf("tracing: %s: trace sums to %d, aggregates say %d", c.name, c.got, c.want)
		}
	}

	if got, want := len(s.StallByIter), len(t.MoveTimeByIter); got > want {
		return fmt.Errorf("tracing: stall events span %d iterations, run had %d", got, want)
	}
	for i, want := range t.MoveTimeByIter {
		var got float64
		if i < len(s.StallByIter) {
			got = s.StallByIter[i]
		}
		// Exact float equality is intentional: the engine accumulated
		// MoveTime from the same values in the same order.
		if got != want {
			return fmt.Errorf("tracing: iteration %d stall seconds: trace sums to %v, engine measured %v",
				i, got, want)
		}
	}
	return nil
}
