package tracing

import "fmt"

// Summary is what Verify recomputes from the raw event stream: the same
// shape as Totals, derived independently from the per-event records.
type Summary struct {
	Copies          int64
	BytesFastToSlow int64
	BytesSlowToFast int64
	BytesWithinFast int64
	BytesWithinSlow int64
	DefragMoves     int64
	ReadBytes       map[string]int64 // per device name
	WriteBytes      map[string]int64
	StallByIter     []float64
	StallSeconds    float64
}

// Summarize folds the event stream into a Summary. Stall durations are
// summed in event order so the per-iteration totals repeat the engine's own
// float additions exactly.
func Summarize(events []Event) Summary {
	s := Summary{
		ReadBytes:  map[string]int64{},
		WriteBytes: map[string]int64{},
	}
	for _, e := range events {
		switch e.Kind {
		case KindCopy:
			s.Copies++
			switch {
			case e.From == "fast" && e.To == "slow":
				s.BytesFastToSlow += e.Bytes
			case e.From == "slow" && e.To == "fast":
				s.BytesSlowToFast += e.Bytes
			case e.From == "fast":
				s.BytesWithinFast += e.Bytes
			default:
				s.BytesWithinSlow += e.Bytes
			}
		case KindDefrag:
			s.DefragMoves++
		case KindXfer:
			s.ReadBytes[e.From] += e.Bytes
			s.WriteBytes[e.To] += e.Bytes
		case KindKernelIO:
			s.ReadBytes[e.From] += e.RBytes
			s.WriteBytes[e.From] += e.WBytes
		case KindStall:
			for len(s.StallByIter) <= e.Iter {
				s.StallByIter = append(s.StallByIter, 0)
			}
			if e.Iter >= 0 {
				s.StallByIter[e.Iter] += e.Dur
				s.StallSeconds += e.Dur
			}
		}
	}
	return s
}

// FindTotals returns the trace's trailing aggregate record, or nil when
// the trace has none.
func FindTotals(events []Event) *Totals {
	for i := len(events) - 1; i >= 0; i-- {
		if events[i].Kind == KindTotals && events[i].Totals != nil {
			return events[i].Totals
		}
	}
	return nil
}

// Verify checks that the trace is an exact decomposition of the run's
// published aggregates: summed per-event copy bytes equal the data
// manager's movement counters, summed transfer and kernel traffic equals
// the device counters, and summed stall durations equal each iteration's
// movement-stall time bit-for-bit. It returns the first mismatch found.
func Verify(events []Event) error {
	t := FindTotals(events)
	if t == nil {
		return fmt.Errorf("tracing: trace has no totals record")
	}
	s := Summarize(events)

	intChecks := []struct {
		name      string
		got, want int64
	}{
		{"copies", s.Copies, t.Copies},
		{"bytes fast->slow", s.BytesFastToSlow, t.BytesFastToSlow},
		{"bytes slow->fast", s.BytesSlowToFast, t.BytesSlowToFast},
		{"bytes within fast", s.BytesWithinFast, t.BytesWithinFast},
		{"bytes within slow", s.BytesWithinSlow, t.BytesWithinSlow},
		{"defrag moves", s.DefragMoves, t.DefragMoves},
		{"fast read bytes", s.ReadBytes[t.FastDevice], t.FastReadBytes},
		{"fast write bytes", s.WriteBytes[t.FastDevice], t.FastWriteBytes},
		{"slow read bytes", s.ReadBytes[t.SlowDevice], t.SlowReadBytes},
		{"slow write bytes", s.WriteBytes[t.SlowDevice], t.SlowWriteBytes},
	}
	for _, c := range intChecks {
		if c.got != c.want {
			return fmt.Errorf("tracing: %s: trace sums to %d, aggregates say %d", c.name, c.got, c.want)
		}
	}

	if got, want := len(s.StallByIter), len(t.MoveTimeByIter); got > want {
		return fmt.Errorf("tracing: stall events span %d iterations, run had %d", got, want)
	}
	for i, want := range t.MoveTimeByIter {
		var got float64
		if i < len(s.StallByIter) {
			got = s.StallByIter[i]
		}
		// Exact float equality is intentional: the engine accumulated
		// MoveTime from the same values in the same order.
		if got != want {
			return fmt.Errorf("tracing: iteration %d stall seconds: trace sums to %v, engine measured %v",
				i, got, want)
		}
	}
	return nil
}
