// Package tracing is the execution-trace recorder for the simulator: a
// low-overhead structured event log that decomposes a run into the same
// quantities the paper's figures report — compute vs. movement stall per
// kernel (Fig. 2/7), per-device traffic (Fig. 5/6) and per-object movement
// (Fig. 3's resident heap is the integral of it).
//
// The recorder is threaded through every layer that produces time or
// traffic:
//
//   - memsim: virtual-clock advances, copy-engine transfers (with their
//     read/write stream shapes) and the asynchronous mover's queue depth;
//   - dm: allocate/free/copy/link/unlink/setprimary/destroy with the
//     owning object's ID;
//   - policy: every decision (evict, prefetch, forced eviction, eager and
//     deferred retire, GC trigger, defrag) with the hint that triggered it;
//   - engine: kernel start/stop with the compute-vs-stall split, iteration
//     boundaries, and the binding from object IDs to tensor names.
//
// A nil *Recorder is valid and records nothing: every method nil-checks its
// receiver, so instrumented hot paths pay one predictable branch when
// tracing is off. The package imports only the standard library — memsim,
// dm, policy and engine all import it, never the reverse.
//
// The trace is a *decomposition* of the published aggregates, not a second
// bookkeeping system: the run embeds its final dm/memsim counters in a
// trailing "totals" event and Verify checks the event sums reproduce them
// exactly (integer byte counts bit-exact, stall seconds summed in the same
// order the engine summed them, so float equality is exact too).
package tracing

import "sync"

// Kind labels one trace event.
type Kind string

// Event kinds. The string values are the wire format of the JSONL export.
const (
	// KindClock: the virtual clock advanced by Dur seconds (T0 is the
	// time after the advance).
	KindClock Kind = "clock"
	// KindXfer: one copy-engine transfer. From/To are device names,
	// RThreads/WThreads the stream shapes (the write side may be capped
	// at the destination's optimal parallelism), Depth/Backlog the
	// asynchronous mover's queue state at enqueue (zero for synchronous
	// engines).
	KindXfer Kind = "xfer"
	// KindCopy: a data-manager object copy (dm.CopyTo). From/To are
	// tiers, Obj the owning object, Cause the triggering hint.
	KindCopy Kind = "copy"
	// KindAlloc / KindFree: region lifecycle, Obj the owner (0 unbound).
	KindAlloc Kind = "alloc"
	KindFree  Kind = "free"
	// KindLink / KindUnlink: region association changes.
	KindLink   Kind = "link"
	KindUnlink Kind = "unlink"
	// KindSetPrimary: an object's primary moved between tiers.
	KindSetPrimary Kind = "setprimary"
	// KindDestroy: an object was destroyed.
	KindDestroy Kind = "destroy"
	// KindDefrag: compaction relocated a region within a tier.
	KindDefrag Kind = "defrag"
	// KindDecision: one policy decision; Op names it (evict,
	// evict-forced, prefetch, prefetch-forced, eager-retire,
	// deferred-retire, elide-writeback, gc-trigger, defrag), Cause the
	// hint that triggered it.
	KindDecision Kind = "decision"
	// KindKernel: one kernel execution span; Compute is the roofline's
	// pure-compute component, so T1-T0-Compute is the kernel's internal
	// memory-bound time.
	KindKernel Kind = "kernel"
	// KindKernelIO: one kernel's traffic on one device (From); RBytes
	// read, WBytes written.
	KindKernelIO Kind = "kio"
	// KindStall: a movement stall charged to the application thread.
	// Op is the stall site: "hint" (synchronous movement during the
	// pre-kernel hint window), "wait" (async data dependency, Obj the
	// blocking object) or "drain" (end-of-iteration mover drain). Dur
	// is the exact float the engine added to its MoveTime accounting.
	KindStall Kind = "stall"
	// KindBind: object Obj is tensor Op (the engine's name for it).
	KindBind Kind = "bind"
	// KindGC: one garbage-collection pause.
	KindGC Kind = "gc"
	// KindIter: one training-iteration span.
	KindIter Kind = "iter"
	// KindFault: the fault injector fired. Op names the fault
	// (alloc-fail, copy-error, copy-stall, bw-collapse, cap-shrink),
	// Bytes the affected size and Dur any injected stall; continuous
	// faults (bw-collapse, cap-shrink) announce once per episode.
	// KindRetry: a victim's bounded retry/backoff step in virtual time;
	// Op is the retried operation (alloc-retry, copy-retry), Dur the
	// backoff it waited.
	KindFault Kind = "fault"
	KindRetry Kind = "retry"
	// KindTotals: the trailing aggregate record Verify checks against.
	KindTotals Kind = "totals"
	// KindCluster: the trailing cluster record of a multi-tenant trace:
	// per-tenant outcomes (spans, fairness, attributed device traffic) and
	// the whole-platform device counters VerifyLanes checks the per-lane
	// attribution against.
	KindCluster Kind = "cluster"
)

// Event is one trace record. It is a flat union: each Kind uses the fields
// documented on its constant and leaves the rest zero (omitted in JSON).
type Event struct {
	Kind Kind    `json:"kind"`
	T0   float64 `json:"t0"`
	T1   float64 `json:"t1,omitempty"`
	// Dur is the event's duration where exactness matters (stalls use
	// the engine's own float, not T1-T0).
	Dur float64 `json:"dur,omitempty"`
	// Iter / Kernel / KName are the recorder's context when the event
	// fired: training iteration, kernel index (-1 outside kernels) and
	// kernel name.
	Iter   int    `json:"iter"`
	Kernel int    `json:"kernel"`
	KName  string `json:"kname,omitempty"`
	// Tenant labels the event's trace lane in a multi-tenant cluster run:
	// the tenant that was dispatched when the event fired. Empty in solo
	// traces (and on the trailing cluster record, which is cluster-owned).
	Tenant string `json:"tenant,omitempty"`
	Obj    uint64 `json:"obj,omitempty"`
	Bytes  int64  `json:"bytes,omitempty"`
	RBytes int64  `json:"rbytes,omitempty"`
	WBytes int64  `json:"wbytes,omitempty"`
	From   string `json:"from,omitempty"`
	To     string `json:"to,omitempty"`
	// Op is the decision/stall/bind payload; Cause the triggering hint.
	Op    string `json:"op,omitempty"`
	Cause string `json:"cause,omitempty"`
	// RThreads/WThreads are a transfer's stream shapes.
	RThreads int `json:"rthreads,omitempty"`
	WThreads int `json:"wthreads,omitempty"`
	// Depth/Backlog are the async mover's queue state: transfers queued
	// since the mover was last idle, and seconds of queued work ahead.
	Depth   int     `json:"depth,omitempty"`
	Backlog float64 `json:"backlog,omitempty"`
	// Compute is a kernel's pure-compute roofline component.
	Compute float64 `json:"compute,omitempty"`
	// Totals is only set on the trailing KindTotals event.
	Totals *Totals `json:"totals,omitempty"`
	// Cluster is only set on the trailing KindCluster event of a
	// multi-tenant trace.
	Cluster *ClusterTotals `json:"cluster,omitempty"`
}

// Totals is the run's authoritative aggregate record, filled by the engine
// from dm.Stats, the device counters and the per-iteration metrics — the
// numbers the paper's figures are built from. Verify recomputes each from
// the event stream and requires exact equality.
type Totals struct {
	// From dm.Stats.
	Copies          int64 `json:"copies"`
	BytesFastToSlow int64 `json:"bytes_fast_to_slow"`
	BytesSlowToFast int64 `json:"bytes_slow_to_fast"`
	BytesWithinFast int64 `json:"bytes_within_fast"`
	BytesWithinSlow int64 `json:"bytes_within_slow"`
	DefragMoves     int64 `json:"defrag_moves"`
	// From memsim.Counters (whole-run, both devices). FastDevice and
	// SlowDevice name the devices so Verify can assign xfer/kio traffic
	// to tiers.
	FastDevice     string `json:"fast_device"`
	SlowDevice     string `json:"slow_device"`
	FastReadBytes  int64  `json:"fast_read_bytes"`
	FastWriteBytes int64  `json:"fast_write_bytes"`
	SlowReadBytes  int64  `json:"slow_read_bytes"`
	SlowWriteBytes int64  `json:"slow_write_bytes"`
	// MoveTimeByIter is each iteration's movement-stall seconds exactly
	// as the engine accumulated them.
	MoveTimeByIter []float64 `json:"move_time_by_iter"`
	// Async records whether the run used the asynchronous mover (it
	// changes how stalls attribute: waits instead of copy durations).
	Async bool `json:"async,omitempty"`
}

// TenantTotals is one tenant's authoritative outcome inside a cluster
// record: its dispatch span, fairness metrics, and the device traffic the
// dispatcher attributed to its windows. VerifyLanes cross-checks the
// attributed byte counters against the tenant's own lane Totals, and the
// sum over tenants against the cluster's whole-platform counters.
type TenantTotals struct {
	Name    string  `json:"name"`
	Mode    string  `json:"mode"`
	Arrival float64 `json:"arrival"`
	Start   float64 `json:"start"`
	Finish  float64 `json:"finish"`
	Busy    float64 `json:"busy"`
	Wait    float64 `json:"wait"`
	Steps   int     `json:"steps"`
	// Fairness metrics (zero when the cluster ran without baselines).
	SoloTime         float64 `json:"solo_time,omitempty"`
	Slowdown         float64 `json:"slowdown,omitempty"`
	InducedEvictions int64   `json:"induced_evictions"`
	// Device traffic attributed to this tenant's dispatch windows
	// (counter deltas measured around every Step/setup the dispatcher ran
	// for it — one tenant runs at a time, so the deltas are exact).
	FastReadBytes  int64 `json:"fast_read_bytes"`
	FastWriteBytes int64 `json:"fast_write_bytes"`
	SlowReadBytes  int64 `json:"slow_read_bytes"`
	SlowWriteBytes int64 `json:"slow_write_bytes"`
}

// ClusterTotals is the trailing record of a multi-tenant trace: every
// tenant's outcome plus the whole-platform device counters the per-tenant
// attribution must sum to exactly.
type ClusterTotals struct {
	Tenants []TenantTotals `json:"tenants"`
	// Whole-platform device counters at the end of the run.
	FastDevice     string  `json:"fast_device"`
	SlowDevice     string  `json:"slow_device"`
	FastReadBytes  int64   `json:"fast_read_bytes"`
	FastWriteBytes int64   `json:"fast_write_bytes"`
	SlowReadBytes  int64   `json:"slow_read_bytes"`
	SlowWriteBytes int64   `json:"slow_write_bytes"`
	Makespan       float64 `json:"makespan"`
	Dispatches     int     `json:"dispatches"`
}

// eventChunkSize is the fixed capacity of one pooled event chunk. Events
// accumulate into fixed-size chunks taken from a package-level pool, so
// the emit hot path never triggers an append-growth copy of the whole
// event log: steady-state recording is allocation-free (chunks recycle
// through the pool) and a chunk grab happens once per chunkSize events.
const eventChunkSize = 1024

// chunkPool recycles event chunks across recorders. Chunks are cleared
// before being returned so recycled storage retains no string or *Totals
// references from earlier runs.
var chunkPool sync.Pool

func takeChunk() []Event {
	if p, ok := chunkPool.Get().(*[]Event); ok && p != nil {
		return (*p)[:0]
	}
	return make([]Event, 0, eventChunkSize)
}

func putChunk(c []Event) {
	if cap(c) != eventChunkSize {
		return
	}
	clear(c)
	c = c[:0]
	chunkPool.Put(&c)
}

// Recorder accumulates events for one run. It is single-goroutine, like
// the simulation itself; concurrent runs each get their own recorder.
// A nil *Recorder is a valid, disabled recorder.
type Recorder struct {
	now func() float64
	// full holds completed chunks, cur the chunk being filled and flat
	// the events already flattened by a previous Events() call.
	full [][]Event
	cur  []Event
	flat []Event

	iter   int
	kernel int
	kname  string
	hint   string
	tenant string
}

// New creates a recorder stamping events with the given virtual-time
// source (typically memsim's Clock.Now).
func New(now func() float64) *Recorder {
	return &Recorder{now: now, iter: -1, kernel: -1}
}

// Enabled reports whether events are being recorded (nil-safe).
func (r *Recorder) Enabled() bool { return r != nil }

// Events returns the recorded events, flattening the pooled chunks into
// one contiguous slice (the chunks go back to the pool). It returns nil
// when nothing was recorded. Calling it again returns the same flattened
// slice plus anything emitted since.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	n := len(r.flat)
	for _, c := range r.full {
		n += len(c)
	}
	n += len(r.cur)
	if n == 0 {
		return nil
	}
	if len(r.full) == 0 && len(r.cur) == 0 {
		return r.flat
	}
	flat := make([]Event, 0, n)
	flat = append(flat, r.flat...)
	for _, c := range r.full {
		flat = append(flat, c...)
		putChunk(c)
	}
	if r.cur != nil {
		flat = append(flat, r.cur...)
		putChunk(r.cur)
	}
	r.full, r.cur = nil, nil
	r.flat = flat
	return flat
}

// emit appends e, stamping the recorder context and, when T0 is unset, the
// current virtual time. The append target is a fixed-capacity pooled
// chunk, so the steady-state cost is one bounds check and a struct copy —
// never a grow-and-copy of the whole log.
func (r *Recorder) emit(e Event) {
	e.Iter, e.Kernel, e.KName = r.iter, r.kernel, r.kname
	e.Tenant = r.tenant
	if e.T0 == 0 && e.T1 == 0 && r.now != nil {
		e.T0 = r.now()
	}
	if len(r.cur) == cap(r.cur) {
		if r.cur != nil {
			r.full = append(r.full, r.cur)
		}
		r.cur = takeChunk()
	}
	r.cur = append(r.cur, e)
}

// ---------------------------------------------------------------------------
// Context (set by the engine and policy; stamped onto every event).

// BeginIter marks the start of a training iteration.
func (r *Recorder) BeginIter(i int) {
	if r == nil {
		return
	}
	r.iter = i
}

// BeginKernel sets the kernel context for subsequent events.
func (r *Recorder) BeginKernel(ki int, name string) {
	if r == nil {
		return
	}
	r.kernel, r.kname = ki, name
}

// EndKernel clears the kernel context.
func (r *Recorder) EndKernel() {
	if r == nil {
		return
	}
	r.kernel, r.kname = -1, ""
}

// SetHint records the semantic hint currently being serviced; data-manager
// and policy events fired while it is set carry it as their Cause.
func (r *Recorder) SetHint(h string) {
	if r == nil {
		return
	}
	r.hint = h
}

// Hint returns the hint context ("" when none).
func (r *Recorder) Hint() string {
	if r == nil {
		return ""
	}
	return r.hint
}

// ---------------------------------------------------------------------------
// Emitters (each nil-safe; one call site per instrumented action).

// ClockAdvance records a virtual-clock advance: now is the time after the
// advance, dt its size.
func (r *Recorder) ClockAdvance(now, dt float64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindClock, T0: now, Dur: dt})
}

// Xfer records one copy-engine transfer between devices.
func (r *Recorder) Xfer(from, to string, bytes int64, t0, t1 float64, rthreads, wthreads, depth int, backlog float64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindXfer, T0: t0, T1: t1, Dur: t1 - t0, From: from, To: to,
		Bytes: bytes, RThreads: rthreads, WThreads: wthreads, Depth: depth, Backlog: backlog})
}

// Copy records a data-manager object copy.
func (r *Recorder) Copy(obj uint64, bytes int64, from, to string, t0, t1 float64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindCopy, T0: t0, T1: t1, Dur: t1 - t0, Obj: obj,
		Bytes: bytes, From: from, To: to, Cause: r.hint})
}

// DM records a region/object lifecycle event (alloc, free, link, unlink,
// setprimary, destroy, defrag).
func (r *Recorder) DM(kind Kind, obj uint64, bytes int64, from, to string) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: kind, Obj: obj, Bytes: bytes, From: from, To: to, Cause: r.hint})
}

// Decision records one policy decision with its triggering hint.
func (r *Recorder) Decision(op string, obj uint64, bytes int64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindDecision, Op: op, Obj: obj, Bytes: bytes, Cause: r.hint})
}

// Kernel records a kernel execution span; compute is the roofline's
// pure-compute component.
func (r *Recorder) Kernel(t0, t1, compute float64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindKernel, T0: t0, T1: t1, Dur: t1 - t0, Compute: compute})
}

// KernelIO records one kernel's traffic on one device.
func (r *Recorder) KernelIO(device string, rbytes, wbytes int64) {
	if r == nil || (rbytes == 0 && wbytes == 0) {
		return
	}
	r.emit(Event{Kind: KindKernelIO, From: device, RBytes: rbytes, WBytes: wbytes})
}

// Stall records a movement stall. dur must be the exact float the engine
// adds to its MoveTime accounting — Verify re-sums these in order.
func (r *Recorder) Stall(op string, obj uint64, dur float64) {
	if r == nil {
		return
	}
	t1 := 0.0
	if r.now != nil {
		t1 = r.now()
	}
	r.emit(Event{Kind: KindStall, T0: t1 - dur, T1: t1, Dur: dur, Op: op, Obj: obj})
}

// Bind records that object obj holds the named tensor.
func (r *Recorder) Bind(obj uint64, name string, bytes int64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindBind, Obj: obj, Op: name, Bytes: bytes})
}

// Fault records one fault-injector firing (with the hint being serviced as
// its cause, so the fault is attributable to the decision it perturbed).
func (r *Recorder) Fault(op string, bytes int64, dur float64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindFault, Op: op, Bytes: bytes, Dur: dur, Cause: r.hint})
}

// Retry records one bounded retry/backoff step a victim took in response
// to an injected fault.
func (r *Recorder) Retry(op string, obj uint64, backoff float64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindRetry, Op: op, Obj: obj, Dur: backoff, Cause: r.hint})
}

// GC records a collection pause.
func (r *Recorder) GC(t0, t1 float64, objects int64, reclaimed int64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindGC, T0: t0, T1: t1, Dur: t1 - t0, Obj: uint64(objects), Bytes: reclaimed})
}

// Iter records a completed iteration span.
func (r *Recorder) Iter(i int, t0, t1 float64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindIter, T0: t0, T1: t1, Dur: t1 - t0, Op: "iteration"})
}

// EmitTotals appends the trailing aggregate record.
func (r *Recorder) EmitTotals(t Totals) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindTotals, Totals: &t})
}
