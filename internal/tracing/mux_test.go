package tracing

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// clusterFixture builds a hand-made two-lane multiplexed trace (plus a
// third lane whose mode traces no aggregates) whose per-lane totals and
// trailing cluster record are all consistent.
func clusterFixture() []Event {
	m := NewMux(func() float64 { return 0 })
	a := m.Lane("a")
	b := m.Lane("b")
	c := m.Lane("c")
	r := m.Recorder()

	// Tenant a: one eviction, one traced kernel.
	m.Switch(a)
	r.BeginIter(0)
	r.BeginKernel(0, "k0")
	r.Xfer("dram", "nvram", 100, 0, 1, 4, 2, 0, 0)
	r.Copy(1, 100, "fast", "slow", 0, 1)
	r.Stall("hint", 0, 1.0)
	r.Kernel(1, 2, 0.7)
	r.KernelIO("dram", 40, 0)
	r.KernelIO("nvram", 0, 10)

	// Tenant b: one prefetch, mid a's kernel.
	m.Switch(b)
	r.BeginIter(0)
	r.Xfer("nvram", "dram", 50, 1, 2, 4, 4, 0, 0)
	r.Copy(2, 50, "slow", "fast", 1, 2)
	r.Stall("drain", 0, 0.5)
	r.EmitTotals(Totals{
		Copies:          1,
		BytesSlowToFast: 50,
		FastDevice:      "dram",
		SlowDevice:      "nvram",
		FastWriteBytes:  50,
		SlowReadBytes:   50,
		MoveTimeByIter:  []float64{0.5},
	})

	// Tenant c runs a mode that traces nothing engine-side; the mux still
	// tags the platform's clock advances with its lane.
	m.Switch(c)
	r.ClockAdvance(1, 1)

	// Back to a for its finish.
	m.Switch(a)
	r.EndKernel()
	r.EmitTotals(Totals{
		Copies:          1,
		BytesFastToSlow: 100,
		FastDevice:      "dram",
		SlowDevice:      "nvram",
		FastReadBytes:   140, // xfer 100 + kernel 40
		SlowWriteBytes:  110, // xfer 100 + kernel 10
		MoveTimeByIter:  []float64{1.0},
	})

	m.EmitCluster(ClusterTotals{
		Tenants: []TenantTotals{
			{Name: "a", Mode: "CA:LM", FastReadBytes: 140, SlowWriteBytes: 110},
			{Name: "b", Mode: "CA:LM", FastWriteBytes: 50, SlowReadBytes: 50},
			{Name: "c", Mode: "OS:page"},
		},
		FastDevice:     "dram",
		SlowDevice:     "nvram",
		FastReadBytes:  140,
		FastWriteBytes: 50,
		SlowReadBytes:  50,
		SlowWriteBytes: 110,
	})
	return m.Events()
}

// TestMuxTagsAndRestoresContext: events land in the active lane with that
// lane's saved iteration/kernel/hint context, across arbitrary switches.
func TestMuxTagsAndRestoresContext(t *testing.T) {
	m := NewMux(func() float64 { return 0 })
	a := m.Lane("a")
	b := m.Lane("b")
	r := m.Recorder()

	m.Switch(a)
	r.BeginIter(2)
	r.BeginKernel(7, "conv3")
	r.SetHint("will_write")
	r.Copy(1, 64, "slow", "fast", 0, 1)

	m.Switch(b)
	r.Copy(2, 32, "fast", "slow", 1, 2)

	m.Switch(a)
	m.Switch(a) // switching to the active lane is a no-op
	r.Copy(3, 16, "slow", "fast", 2, 3)

	m.EmitCluster(ClusterTotals{})
	ev := m.Events()
	if len(ev) != 4 {
		t.Fatalf("got %d events", len(ev))
	}
	// a's first event carries its full context.
	if ev[0].Tenant != "a" || ev[0].Iter != 2 || ev[0].Kernel != 7 ||
		ev[0].KName != "conv3" || ev[0].Cause != "will_write" {
		t.Errorf("lane a event: %+v", ev[0])
	}
	// b never began an iteration: fresh context, its own tag.
	if ev[1].Tenant != "b" || ev[1].Iter != -1 || ev[1].Kernel != -1 ||
		ev[1].KName != "" || ev[1].Cause != "" {
		t.Errorf("lane b event: %+v", ev[1])
	}
	// Switching back restores a's mid-kernel context exactly.
	if ev[2].Tenant != "a" || ev[2].Iter != 2 || ev[2].Kernel != 7 ||
		ev[2].KName != "conv3" || ev[2].Cause != "will_write" {
		t.Errorf("lane a resumed event: %+v", ev[2])
	}
	// The cluster record is cluster-owned, not any tenant's.
	if ev[3].Tenant != "" || ev[3].Kind != KindCluster || ev[3].Cluster == nil {
		t.Errorf("cluster record: %+v", ev[3])
	}
}

func TestVerifyLanesAcceptsFixture(t *testing.T) {
	if err := VerifyLanes(clusterFixture()); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyLanesUntaggedDefersToVerify: a solo trace passes through
// VerifyLanes unchanged, so callers need not know which kind they hold.
func TestVerifyLanesUntaggedDefersToVerify(t *testing.T) {
	if err := VerifyLanes(traceFixture()); err != nil {
		t.Fatal(err)
	}
	solo := traceFixture()
	solo[len(solo)-1].Totals.Copies++
	if err := VerifyLanes(solo); err == nil {
		t.Fatal("tampered solo trace verified clean")
	}
}

// TestVerifyLanesCatchesTampering hits each check: lane-vs-attribution,
// the platform partition sum, and the missing cluster record.
func TestVerifyLanesCatchesTampering(t *testing.T) {
	tamperCluster := func(f func(*ClusterTotals)) []Event {
		events := clusterFixture()
		i := len(events) - 1
		c := *events[i].Cluster
		c.Tenants = append([]TenantTotals(nil), c.Tenants...)
		f(&c)
		events[i].Cluster = &c
		return events
	}

	// A tenant's attributed traffic disagrees with its own lane totals.
	events := tamperCluster(func(c *ClusterTotals) {
		c.Tenants[0].FastReadBytes++
		c.FastReadBytes++ // keep the partition consistent
	})
	if err := VerifyLanes(events); err == nil ||
		!strings.Contains(err.Error(), "cluster attribution") {
		t.Errorf("attribution tamper: %v", err)
	}

	// The tenants no longer partition the platform counters.
	events = tamperCluster(func(c *ClusterTotals) { c.SlowWriteBytes++ })
	if err := VerifyLanes(events); err == nil ||
		!strings.Contains(err.Error(), "tenants sum to") {
		t.Errorf("partition tamper: %v", err)
	}

	// A tagged lane with no tenant record in the cluster totals.
	events = tamperCluster(func(c *ClusterTotals) { c.Tenants = c.Tenants[:2] })
	if err := VerifyLanes(events); err == nil ||
		!strings.Contains(err.Error(), "no tenant record") {
		t.Errorf("missing tenant: %v", err)
	}

	// A lane's own events no longer match its totals record.
	events = clusterFixture()
	for i := range events {
		if events[i].Tenant == "b" && events[i].Kind == KindCopy {
			events[i].Bytes++
		}
	}
	if err := VerifyLanes(events); err == nil ||
		!strings.Contains(err.Error(), `lane "b"`) {
		t.Errorf("lane tamper: %v", err)
	}

	// Tagged events without a trailing cluster record.
	events = clusterFixture()
	if err := VerifyLanes(events[:len(events)-1]); err == nil ||
		!strings.Contains(err.Error(), "no cluster record") {
		t.Errorf("missing cluster record: %v", err)
	}
}

// TestLanesSplit pins the lane split: first-seen name order, per-lane
// event order preserved, untagged events dropped.
func TestLanesSplit(t *testing.T) {
	names, lanes := Lanes(clusterFixture())
	if !reflect.DeepEqual(names, []string{"a", "b", "c"}) {
		t.Fatalf("names = %v", names)
	}
	if n := len(lanes["c"]); n != 1 {
		t.Errorf("lane c has %d events, want 1 clock advance", n)
	}
	for name, lane := range lanes {
		for _, e := range lane {
			if e.Tenant != name {
				t.Errorf("lane %q holds a %q event", name, e.Tenant)
			}
		}
	}
	if n, _ := Lanes(traceFixture()); n != nil {
		t.Errorf("solo trace produced lanes: %v", n)
	}
}

// TestClusterJSONLRoundTrip: tenant tags and the cluster record survive
// the JSONL cycle losslessly, so a loaded file re-verifies per lane.
func TestClusterJSONLRoundTrip(t *testing.T) {
	events := clusterFixture()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, got) {
		t.Fatalf("round trip diverged:\n want %+v\n got  %+v", events, got)
	}
	if err := VerifyLanes(got); err != nil {
		t.Fatalf("re-loaded cluster trace fails verification: %v", err)
	}
}

// TestChromeClusterLayout: a tagged trace renders one process per tenant
// plus the shared platform tracks with owner-prefixed transfer spans.
func TestChromeClusterLayout(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, clusterFixture()); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("cluster chrome export is not valid JSON: %v", err)
	}
	procs := map[string]bool{}
	var ownedCopies int
	for _, e := range file.TraceEvents {
		if e.Name == "process_name" {
			procs[e.Args["name"].(string)] = true
		}
		if e.Pid == pidPlatform && strings.HasPrefix(e.Name, "a: copy ") {
			ownedCopies++
		}
	}
	for _, want := range []string{"platform (shared)", "tenant a", "tenant b"} {
		if !procs[want] {
			t.Errorf("missing process %q (have %v)", want, procs)
		}
	}
	if ownedCopies == 0 {
		t.Error("shared device track lost transfer ownership prefixes")
	}
}
