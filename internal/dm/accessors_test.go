package dm

import (
	"testing"

	"cachedarrays/internal/memsim"
	"cachedarrays/internal/units"
)

func TestAccessorsAndSmallPaths(t *testing.T) {
	p := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: units.MB, SlowCapacity: units.MB, CopyThreads: 2, Backed: true,
	})
	m := New(p)
	if m.Device(Fast) != p.Fast || m.Device(Slow) != p.Slow {
		t.Fatal("Device lookup wrong")
	}
	o, err := m.NewObject(256, Fast)
	if err != nil {
		t.Fatal(err)
	}
	if o.ID() == 0 {
		t.Fatal("object ID zero")
	}
	r := m.GetPrimary(o)
	if r.Class() != Fast || r.Size() != 256 || r.Offset() < 0 {
		t.Fatalf("region accessors: class=%v size=%d off=%d", r.Class(), r.Size(), r.Offset())
	}
	if m.RegionAt(Fast, r.Offset()) != r {
		t.Fatal("RegionAt lookup wrong")
	}
	if m.RegionAt(Fast, r.Offset()+64) != nil {
		t.Fatal("RegionAt on non-block offset returned a region")
	}
	if m.FreeBytes(Fast) != units.MB-m.UsedBytes(Fast) {
		t.Fatal("FreeBytes inconsistent")
	}
	m.MarkDirty(r)
	m.MarkClean(r)
	if m.IsDirty(r) {
		t.Fatal("MarkClean did not clear dirty")
	}
	if m.GetLinked(r, Fast) != r {
		t.Fatal("GetLinked on own tier should return self")
	}
	unbound, _ := m.Allocate(Slow, 256)
	if m.GetLinked(unbound, Fast) != nil {
		t.Fatal("GetLinked on unbound region returned something")
	}
	m.Free(unbound)
}

func TestGetPrimaryOnRetiredPanics(t *testing.T) {
	p := memsim.NewPlatform(memsim.PlatformConfig{FastCapacity: units.MB, SlowCapacity: units.MB})
	m := New(p)
	o, _ := m.NewObject(64, Fast)
	m.DestroyObject(o)
	defer func() {
		if recover() == nil {
			t.Fatal("GetPrimary on retired object did not panic")
		}
	}()
	m.GetPrimary(o)
}

func TestDataOnFreedRegionPanics(t *testing.T) {
	p := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: units.MB, SlowCapacity: units.MB, Backed: true,
	})
	m := New(p)
	r, _ := m.Allocate(Fast, 64)
	m.Free(r)
	defer func() {
		if recover() == nil {
			t.Fatal("Data on freed region did not panic")
		}
	}()
	m.Data(r)
}

func TestSetPrimaryFreedRegionRejected(t *testing.T) {
	p := memsim.NewPlatform(memsim.PlatformConfig{FastCapacity: units.MB, SlowCapacity: units.MB})
	m := New(p)
	o, _ := m.NewObject(64, Fast)
	r, _ := m.Allocate(Slow, 64)
	m.Free(r)
	if err := m.SetPrimary(o, r); err == nil {
		t.Fatal("SetPrimary accepted a freed region")
	}
}
