package dm

import (
	"math/rand"
	"strings"
	"testing"

	"cachedarrays/internal/alloc"
	"cachedarrays/internal/memsim"
	"cachedarrays/internal/units"
)

func newManager(t *testing.T, fastCap, slowCap int64, backed bool) *Manager {
	t.Helper()
	p := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: fastCap,
		SlowCapacity: slowCap,
		CopyThreads:  4,
		Backed:       backed,
	})
	return New(p)
}

func checkDM(t *testing.T, m *Manager) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestClassString(t *testing.T) {
	if Fast.String() != "fast" || Slow.String() != "slow" {
		t.Error("class strings wrong")
	}
	if !strings.Contains(Class(5).String(), "5") {
		t.Error("unknown class string wrong")
	}
}

func TestNewObjectLifecycle(t *testing.T) {
	m := newManager(t, units.MB, units.MB, false)
	o, err := m.NewObject(1000, Fast)
	if err != nil {
		t.Fatal(err)
	}
	checkDM(t, m)
	if o.Size() != 1000 || o.Retired() {
		t.Fatalf("object state: size=%d retired=%v", o.Size(), o.Retired())
	}
	p := m.GetPrimary(o)
	if p == nil || !m.In(p, Fast) || m.SizeOf(p) != 1000 {
		t.Fatalf("primary wrong: %+v", p)
	}
	if m.Parent(p) != o {
		t.Fatal("Parent(primary) != object")
	}
	if m.LiveObjects() != 1 {
		t.Fatalf("LiveObjects = %d", m.LiveObjects())
	}
	if m.UsedBytes(Fast) == 0 || m.UsedBytes(Slow) != 0 {
		t.Fatalf("used: fast=%d slow=%d", m.UsedBytes(Fast), m.UsedBytes(Slow))
	}
	m.DestroyObject(o)
	checkDM(t, m)
	if !o.Retired() || m.LiveObjects() != 0 || m.UsedBytes(Fast) != 0 {
		t.Fatal("destroy did not clean up")
	}
	if m.Stats().ObjectsCreated != 1 || m.Stats().ObjectsDestroyed != 1 {
		t.Fatalf("stats: %+v", m.Stats())
	}
}

func TestNewObjectExhaustion(t *testing.T) {
	m := newManager(t, 4096, units.MB, false)
	if _, err := m.NewObject(8192, Fast); err != ErrExhausted {
		t.Fatalf("got %v, want ErrExhausted", err)
	}
	if _, err := m.NewObject(-1, Fast); err == nil || err == ErrExhausted {
		t.Fatalf("negative size: %v", err)
	}
}

// evictToSlow implements the paper's Listing 1 on top of the manager — the
// same flow the policy package uses. Kept here so the dm tests exercise the
// full published sequence against the raw API.
func evictToSlow(t *testing.T, m *Manager, o *Object) {
	t.Helper()
	x := m.GetPrimary(o)
	if !m.In(x, Fast) {
		return
	}
	y := m.GetLinked(x, Slow)
	sz := m.SizeOf(x)
	allocated := false
	if y == nil {
		var err error
		y, err = m.Allocate(Slow, sz)
		if err != nil {
			t.Fatalf("allocate slow: %v", err)
		}
		allocated = true
	}
	if m.IsDirty(x) || allocated {
		m.CopyTo(y, x)
	}
	if err := m.SetPrimary(o, y); err != nil {
		t.Fatalf("setprimary: %v", err)
	}
	if !allocated {
		if err := m.Unlink(x, y); err != nil {
			t.Fatalf("unlink: %v", err)
		}
	}
	m.Free(x)
}

// prefetchToFast implements the paper's Listing 2 (without the forced path).
func prefetchToFast(t *testing.T, m *Manager, o *Object) {
	t.Helper()
	x := m.GetPrimary(o)
	if !m.In(x, Slow) {
		return
	}
	y, err := m.Allocate(Fast, m.SizeOf(x))
	if err != nil {
		t.Fatalf("allocate fast: %v", err)
	}
	m.CopyTo(y, x)
	if err := m.Link(x, y); err != nil {
		t.Fatalf("link: %v", err)
	}
	if err := m.SetPrimary(o, y); err != nil {
		t.Fatalf("setprimary: %v", err)
	}
}

func TestEvictListingFlowUnlinked(t *testing.T) {
	m := newManager(t, units.MB, units.MB, true)
	o, err := m.NewObject(512, Fast)
	if err != nil {
		t.Fatal(err)
	}
	copy(m.Data(m.GetPrimary(o)), "precious payload")

	evictToSlow(t, m, o)
	checkDM(t, m)
	p := m.GetPrimary(o)
	if !m.In(p, Slow) {
		t.Fatal("primary not on slow after evict")
	}
	if m.UsedBytes(Fast) != 0 {
		t.Fatal("fast heap not freed after evict")
	}
	if got := string(m.Data(p)[:16]); got != "precious payload" {
		t.Fatalf("data lost in eviction: %q", got)
	}
	if m.Stats().BytesFastToSlow != 512 {
		t.Fatalf("fast->slow bytes = %d", m.Stats().BytesFastToSlow)
	}
}

func TestEvictCleanLinkedElidesCopy(t *testing.T) {
	// Paper Listing 1 lines 11–13: a clean primary with a linked slow
	// secondary needs no copy at all — the key NVRAM-write-saving
	// optimization.
	m := newManager(t, units.MB, units.MB, false)
	o, err := m.NewObject(1024, Slow)
	if err != nil {
		t.Fatal(err)
	}
	prefetchToFast(t, m, o)
	checkDM(t, m)
	copiesBefore := m.Stats().Copies
	// Primary (fast) is clean: evict must not copy.
	evictToSlow(t, m, o)
	checkDM(t, m)
	if m.Stats().Copies != copiesBefore {
		t.Fatal("clean linked evict performed a copy")
	}
	if !m.In(m.GetPrimary(o), Slow) {
		t.Fatal("primary not back on slow")
	}
}

func TestEvictDirtyLinkedCopies(t *testing.T) {
	m := newManager(t, units.MB, units.MB, false)
	o, err := m.NewObject(1024, Slow)
	if err != nil {
		t.Fatal(err)
	}
	prefetchToFast(t, m, o)
	m.MarkDirty(m.GetPrimary(o)) // kernel wrote the fast copy
	copiesBefore := m.Stats().Copies
	evictToSlow(t, m, o)
	if m.Stats().Copies != copiesBefore+1 {
		t.Fatal("dirty evict did not write back")
	}
	checkDM(t, m)
}

func TestPrefetchListingFlow(t *testing.T) {
	m := newManager(t, units.MB, units.MB, true)
	o, err := m.NewObject(256, Slow)
	if err != nil {
		t.Fatal(err)
	}
	copy(m.Data(m.GetPrimary(o)), "slow-born tensor data")
	prefetchToFast(t, m, o)
	checkDM(t, m)
	p := m.GetPrimary(o)
	if !m.In(p, Fast) {
		t.Fatal("primary not on fast after prefetch")
	}
	if got := string(m.Data(p)[:21]); got != "slow-born tensor data" {
		t.Fatalf("prefetched data wrong: %q", got)
	}
	// Both regions remain, linked.
	if m.GetLinked(p, Slow) == nil {
		t.Fatal("slow secondary lost after prefetch")
	}
	if m.Stats().BytesSlowToFast != 256 {
		t.Fatalf("slow->fast bytes = %d", m.Stats().BytesSlowToFast)
	}
}

func TestRoundTripPreservesData(t *testing.T) {
	m := newManager(t, units.MB, units.MB, true)
	o, err := m.NewObject(4096, Fast)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	want := make([]byte, 4096)
	rng.Read(want)
	copy(m.Data(m.GetPrimary(o)), want)
	for i := 0; i < 5; i++ {
		evictToSlow(t, m, o)
		prefetchToFast(t, m, o)
		// Alternate dirtying the fast copy so both evict paths run.
		if i%2 == 0 {
			m.MarkDirty(m.GetPrimary(o))
		}
	}
	got := m.Data(m.GetPrimary(o))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d corrupted after round trips", i)
		}
	}
	checkDM(t, m)
}

func TestLinkErrors(t *testing.T) {
	m := newManager(t, units.MB, units.MB, false)
	o1, _ := m.NewObject(64, Fast)
	o2, _ := m.NewObject(64, Fast)
	r1 := m.GetPrimary(o1)
	r2 := m.GetPrimary(o2)
	if err := m.Link(r1, r2); err == nil {
		t.Error("linking two same-tier regions succeeded")
	}
	s1, _ := m.Allocate(Slow, 64)
	s2, _ := m.Allocate(Slow, 64)
	if err := m.Link(s1, s2); err == nil {
		t.Error("linking two unbound regions succeeded")
	}
	if err := m.Link(r1, s1); err != nil {
		t.Errorf("valid link failed: %v", err)
	}
	if err := m.Link(r1, s1); err != nil {
		t.Errorf("re-link of already-linked pair should be a no-op: %v", err)
	}
	if err := m.Link(r1, s2); err == nil {
		t.Error("second slow region linked to same object")
	}
	// Cross-object link.
	s3, _ := m.Allocate(Slow, 64)
	if err := m.Link(r2, s3); err != nil {
		t.Fatal(err)
	}
	if err := m.Link(r1, s3); err == nil {
		t.Error("linking regions of different objects succeeded")
	}
	m.Free(s2)
	checkDM(t, m)
}

func TestUnlinkErrors(t *testing.T) {
	m := newManager(t, units.MB, units.MB, false)
	o, _ := m.NewObject(64, Fast)
	r := m.GetPrimary(o)
	s, _ := m.Allocate(Slow, 64)
	if err := m.Unlink(r, s); err == nil {
		t.Error("unlink of non-linked regions succeeded")
	}
	if err := m.Link(r, s); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlink(r, s); err != nil {
		t.Fatalf("unlink failed: %v", err)
	}
	if m.Parent(s) != nil {
		t.Error("secondary still bound after unlink")
	}
	if m.GetPrimary(o) != r {
		t.Error("primary changed by unlink")
	}
	m.Free(s)
	checkDM(t, m)
}

func TestSetPrimaryErrors(t *testing.T) {
	m := newManager(t, units.MB, units.MB, false)
	o1, _ := m.NewObject(64, Fast)
	o2, _ := m.NewObject(64, Fast)
	if err := m.SetPrimary(o1, m.GetPrimary(o2)); err == nil {
		t.Error("SetPrimary with foreign region succeeded")
	}
	r, _ := m.Allocate(Fast, 64)
	if err := m.SetPrimary(o1, r); err == nil {
		t.Error("SetPrimary accepted a second fast region")
	}
	m.Free(r)
	s, _ := m.Allocate(Slow, 64)
	if err := m.SetPrimary(o1, s); err != nil {
		t.Errorf("SetPrimary with unbound slow region: %v", err)
	}
	if !m.In(m.GetPrimary(o1), Slow) {
		t.Error("primary did not move")
	}
	checkDM(t, m)
}

func TestFreePrimaryPanics(t *testing.T) {
	m := newManager(t, units.MB, units.MB, false)
	o, _ := m.NewObject(64, Fast)
	defer func() {
		if recover() == nil {
			t.Fatal("freeing live primary did not panic")
		}
	}()
	m.Free(m.GetPrimary(o))
}

func TestDoubleDestroyPanics(t *testing.T) {
	m := newManager(t, units.MB, units.MB, false)
	o, _ := m.NewObject(64, Fast)
	m.DestroyObject(o)
	defer func() {
		if recover() == nil {
			t.Fatal("double destroy did not panic")
		}
	}()
	m.DestroyObject(o)
}

func TestCopyToSizeMismatchPanics(t *testing.T) {
	m := newManager(t, units.MB, units.MB, false)
	a, _ := m.Allocate(Fast, 64)
	b, _ := m.Allocate(Slow, 128)
	defer func() {
		if recover() == nil {
			t.Fatal("size-mismatched copyto did not panic")
		}
	}()
	m.CopyTo(b, a)
}

func TestEvictFromFreesContiguousRange(t *testing.T) {
	m := newManager(t, 64*1024, units.MB, false)
	// Fill fast memory with 16 objects of 4 KiB.
	var objs []*Object
	for i := 0; i < 16; i++ {
		o, err := m.NewObject(4096, Fast)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, o)
	}
	if _, err := m.Allocate(Fast, 16*1024); err != ErrExhausted {
		t.Fatalf("fast heap should be full: %v", err)
	}
	// Free a 16 KiB contiguous range starting at 8 KiB by evicting the
	// overlapped objects to slow memory.
	err := m.EvictFrom(Fast, 8*1024, 16*1024, func(r *Region) {
		evictToSlow(t, m, m.Parent(r))
	})
	if err != nil {
		t.Fatal(err)
	}
	checkDM(t, m)
	if _, err := m.Allocate(Fast, 16*1024); err != nil {
		t.Fatalf("contiguous alloc after evictfrom: %v", err)
	}
	if m.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	// Evicted objects live on slow, others untouched on fast.
	fastCount := 0
	for _, o := range objs {
		if m.In(m.GetPrimary(o), Fast) {
			fastCount++
		}
	}
	if fastCount != 12 {
		t.Fatalf("%d objects remain on fast, want 12", fastCount)
	}
}

func TestEvictFromClampsRange(t *testing.T) {
	m := newManager(t, 64*1024, units.MB, false)
	o, _ := m.NewObject(60*1024, Fast)
	// start near the top: range must clamp to fit within capacity.
	err := m.EvictFrom(Fast, 60*1024, 32*1024, func(r *Region) {
		evictToSlow(t, m, m.Parent(r))
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.In(m.GetPrimary(o), Fast) {
		t.Fatal("object not evicted by clamped range")
	}
	if err := m.EvictFrom(Fast, 0, 128*1024, nil); err == nil {
		t.Fatal("oversized evictfrom succeeded")
	}
}

func TestEvictFromDetectsBadCallback(t *testing.T) {
	m := newManager(t, 64*1024, units.MB, false)
	if _, err := m.NewObject(4096, Fast); err != nil {
		t.Fatal(err)
	}
	err := m.EvictFrom(Fast, 0, 8*1024, func(r *Region) {
		// Bad policy: does not actually remove the region.
	})
	if err == nil {
		t.Fatal("evictfrom accepted a callback that freed nothing")
	}
}

func TestDefragCompactsAndPreservesData(t *testing.T) {
	m := newManager(t, units.MB, units.MB, true)
	var objs []*Object
	for i := 0; i < 10; i++ {
		o, err := m.NewObject(1024, Fast)
		if err != nil {
			t.Fatal(err)
		}
		m.Data(m.GetPrimary(o))[0] = byte('a' + i)
		objs = append(objs, o)
	}
	// Punch holes.
	for i := 0; i < 10; i += 2 {
		m.DestroyObject(objs[i])
	}
	m.Defrag(Fast)
	checkDM(t, m)
	if m.Stats().DefragMoves == 0 {
		t.Fatal("defrag moved nothing")
	}
	fl := m.AllocatorFor(Fast).(*alloc.FreeList)
	if fl.FragmentationRatio() != 0 {
		t.Fatalf("still fragmented: %v", fl.FragmentationRatio())
	}
	for i := 1; i < 10; i += 2 {
		if got := m.Data(m.GetPrimary(objs[i]))[0]; got != byte('a'+i) {
			t.Fatalf("object %d data corrupted by defrag: %q", i, got)
		}
	}
}

func TestNewWithAllocatorsBuddy(t *testing.T) {
	p := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: 1 << 20, SlowCapacity: 1 << 20, CopyThreads: 2,
	})
	fast, err := alloc.NewBuddy(1<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := alloc.NewBuddy(1<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	m := NewWithAllocators(p, fast, slow)
	o, err := m.NewObject(5000, Fast)
	if err != nil {
		t.Fatal(err)
	}
	checkDM(t, m)
	m.DestroyObject(o)
	checkDM(t, m)
}

func TestManagerRandomWorkload(t *testing.T) {
	m := newManager(t, 256*1024, 64*units.MB, false)
	rng := rand.New(rand.NewSource(7))
	var live []*Object
	for i := 0; i < 3000; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // allocate
			size := int64(1 + rng.Intn(8192))
			class := Class(rng.Intn(2))
			o, err := m.NewObject(size, class)
			if err == ErrExhausted {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, o)
		case 4, 5: // evict random object
			if len(live) > 0 {
				evictToSlow(t, m, live[rng.Intn(len(live))])
			}
		case 6, 7: // prefetch random object (skip if fast is tight)
			if len(live) > 0 {
				o := live[rng.Intn(len(live))]
				if m.In(m.GetPrimary(o), Slow) &&
					m.AllocatorFor(Fast).LargestFree() > o.Size()+alloc.DefaultMinBlock {
					prefetchToFast(t, m, o)
				}
			}
		case 8: // dirty the primary
			if len(live) > 0 {
				m.MarkDirty(m.GetPrimary(live[rng.Intn(len(live))]))
			}
		case 9: // destroy
			if len(live) > 0 {
				i := rng.Intn(len(live))
				m.DestroyObject(live[i])
				live = append(live[:i], live[i+1:]...)
			}
		}
		if i%100 == 0 {
			checkDM(t, m)
		}
	}
	for _, o := range live {
		m.DestroyObject(o)
	}
	checkDM(t, m)
	if m.UsedBytes(Fast) != 0 || m.UsedBytes(Slow) != 0 {
		t.Fatal("heaps not empty after destroying all objects")
	}
}

func TestStatsReset(t *testing.T) {
	m := newManager(t, units.MB, units.MB, false)
	o, _ := m.NewObject(64, Fast)
	evictToSlow(t, m, o)
	if m.Stats() == (Stats{}) {
		t.Fatal("stats empty after activity")
	}
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Fatal("stats not reset")
	}
}
