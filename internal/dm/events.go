package dm

import (
	"fmt"

	"cachedarrays/internal/tracing"
	"cachedarrays/internal/units"
)

// EventKind labels one data-manager action.
type EventKind int

const (
	// EvAlloc: a region was allocated.
	EvAlloc EventKind = iota
	// EvFree: a region was freed.
	EvFree
	// EvCopy: bytes moved between regions.
	EvCopy
	// EvSetPrimary: an object's primary moved to another region.
	EvSetPrimary
	// EvDestroy: an object was destroyed (retire/GC).
	EvDestroy
	// EvDefragMove: compaction relocated a region.
	EvDefragMove
)

func (k EventKind) String() string {
	switch k {
	case EvAlloc:
		return "alloc"
	case EvFree:
		return "free"
	case EvCopy:
		return "copy"
	case EvSetPrimary:
		return "setprimary"
	case EvDestroy:
		return "destroy"
	case EvDefragMove:
		return "defrag"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one recorded data-manager action — the movement audit trail a
// production tiering runtime needs for debugging placement decisions.
type Event struct {
	Time   float64 // virtual seconds
	Kind   EventKind
	Object uint64 // owning object ID (0 if unbound)
	Bytes  int64
	// From/To are tiers for movement events; for alloc/free, To/From
	// hold the region's tier respectively.
	From Class
	To   Class
}

// String renders a single-line trace entry.
func (e Event) String() string {
	switch e.Kind {
	case EvCopy, EvDefragMove, EvSetPrimary:
		return fmt.Sprintf("%10.6fs  %-10s obj=%-6d %10s  %v->%v",
			e.Time, e.Kind, e.Object, units.Bytes(e.Bytes), e.From, e.To)
	case EvAlloc:
		return fmt.Sprintf("%10.6fs  %-10s obj=%-6d %10s  on %v",
			e.Time, e.Kind, e.Object, units.Bytes(e.Bytes), e.To)
	default:
		return fmt.Sprintf("%10.6fs  %-10s obj=%-6d %10s  on %v",
			e.Time, e.Kind, e.Object, units.Bytes(e.Bytes), e.From)
	}
}

// EventLog is a bounded ring of recent events plus lifetime counts. The
// bound keeps terabyte-scale runs from hoarding host memory; Total always
// reflects the full history.
type EventLog struct {
	ring  []Event
	next  int
	full  bool
	total int64
}

// NewEventLog creates a log retaining the last n events.
func NewEventLog(n int) *EventLog {
	if n <= 0 {
		n = 1024
	}
	return &EventLog{ring: make([]Event, n)}
}

// Record appends an event.
func (l *EventLog) Record(e Event) {
	l.ring[l.next] = e
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	l.total++
}

// Total returns the lifetime event count.
func (l *EventLog) Total() int64 { return l.total }

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	if !l.full {
		return append([]Event(nil), l.ring[:l.next]...)
	}
	out := make([]Event, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// SetEventLog attaches (or detaches, with nil) an event log to the
// manager. Recording costs one struct copy per action; production runs
// leave it off.
func (m *Manager) SetEventLog(l *EventLog) { m.events = l }

// SetTracer attaches (or detaches, with nil) an execution-trace recorder.
// Unlike the bounded EventLog ring, the tracer retains the full history
// and is consumed by the tracing exports.
func (m *Manager) SetTracer(tr *tracing.Recorder) { m.tracer = tr }

// now returns the current virtual time for event stamps.
func (m *Manager) now() float64 {
	if m.copier == nil || m.copier.Clock == nil {
		return 0
	}
	return m.copier.Clock.Now()
}

// record appends an event if a log is attached.
func (m *Manager) record(kind EventKind, obj uint64, bytes int64, from, to Class) {
	if m.events == nil {
		return
	}
	m.events.Record(Event{Time: m.now(), Kind: kind, Object: obj, Bytes: bytes, From: from, To: to})
}
