package dm

import (
	"strings"
	"testing"

	"cachedarrays/internal/alloc"
	"cachedarrays/internal/memsim"
	"cachedarrays/internal/units"
)

// These tests pin down the outcome of the panic audit: conditions only a
// buggy caller can create still panic loudly, while conditions the
// environment can produce (user-supplied configurations, injected faults)
// surface as errors through the E-suffixed variants, which their
// panicking wrappers merely re-raise.

func TestCopyToESizeMismatchIsAnError(t *testing.T) {
	p := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: units.MB, SlowCapacity: units.MB, CopyThreads: 2,
	})
	m := New(p)
	a, _ := m.Allocate(Fast, 128)
	b, _ := m.Allocate(Slow, 256)
	if _, err := m.CopyToE(b, a); err == nil || !strings.Contains(err.Error(), "size") {
		t.Fatalf("CopyToE size mismatch = %v, want size error", err)
	}
	// The failed copy must not have perturbed any accounting.
	if m.Stats().Copies != 0 {
		t.Fatalf("failed copy was counted: %+v", m.Stats())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m.Free(a)
	m.Free(b)
}

func TestNewWithAllocatorsERejectsOversizedHeap(t *testing.T) {
	p := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: units.MB, SlowCapacity: units.MB, CopyThreads: 2,
	})
	fast := alloc.NewFreeList(2*units.MB, alloc.FirstFit) // larger than the device
	slow := alloc.NewFreeList(units.MB, alloc.FirstFit)
	if _, err := NewWithAllocatorsE(p, fast, slow); err == nil ||
		!strings.Contains(err.Error(), "exceeds device capacity") {
		t.Fatalf("NewWithAllocatorsE = %v, want capacity error", err)
	}
	// The legacy constructor keeps its panicking contract for wired-in
	// configurations.
	defer func() {
		if recover() == nil {
			t.Fatal("NewWithAllocators accepted an oversized allocator")
		}
	}()
	NewWithAllocators(p, fast, slow)
}

func TestDoubleFreePanics(t *testing.T) {
	p := memsim.NewPlatform(memsim.PlatformConfig{FastCapacity: units.MB, SlowCapacity: units.MB})
	m := New(p)
	r, _ := m.Allocate(Fast, 64)
	m.Free(r)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	m.Free(r)
}

func TestObjectAccessorsDoNotPanic(t *testing.T) {
	p := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: units.MB, SlowCapacity: units.MB, CopyThreads: 2,
	})
	m := New(p)
	o, err := m.NewObject(64, Fast)
	if err != nil {
		t.Fatal(err)
	}
	if o.Primary() != m.GetPrimary(o) {
		t.Fatal("Primary() disagrees with GetPrimary")
	}
	if o.Region(Fast) != o.Primary() {
		t.Fatal("Region(Fast) is not the primary for a fast-born object")
	}
	if o.Region(Slow) != nil {
		t.Fatal("Region(Slow) non-nil without a slow copy")
	}
	// Unlike GetPrimary, the inspection accessors stay safe on retired
	// objects — the invariants checker walks the object table with them.
	m.DestroyObject(o)
	if o.Primary() != nil || o.Region(Fast) != nil {
		t.Fatal("retired object still exposes regions")
	}
}

func TestForEachObjectVisitsLiveObjectsAndStopsEarly(t *testing.T) {
	p := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: units.MB, SlowCapacity: units.MB, CopyThreads: 2,
	})
	m := New(p)
	var objs []*Object
	for i := 0; i < 4; i++ {
		o, err := m.NewObject(64, Fast)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, o)
	}
	m.DestroyObject(objs[1])
	seen := 0
	m.ForEachObject(func(o *Object) bool { seen++; return true })
	if seen != 3 {
		t.Fatalf("visited %d objects, want 3 live", seen)
	}
	seen = 0
	m.ForEachObject(func(o *Object) bool { seen++; return false })
	if seen != 1 {
		t.Fatalf("early stop visited %d objects, want 1", seen)
	}
}
