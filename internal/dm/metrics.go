package dm

import "cachedarrays/internal/metrics"

// RegisterMetrics registers the manager's telemetry with a metrics
// registry: per-tier occupancy (used/free), per-tier dirty and linked
// byte totals (a regionAt walk at each sample — cheap at paper-scale
// region counts, and only paid when sampling fires), the live-object
// gauge, and cumulative counters mirroring Stats. A nil registry
// registers nothing.
func (m *Manager) RegisterMetrics(reg *metrics.Registry) {
	if !reg.Enabled() {
		return
	}
	for c := Class(0); c < NumClasses; c++ {
		tier := c.String()
		reg.Gauge("dm_"+tier+"_used_bytes", func() float64 {
			return float64(m.UsedBytes(c))
		})
		reg.Gauge("dm_"+tier+"_free_bytes", func() float64 {
			return float64(m.FreeBytes(c))
		})
		reg.Gauge("dm_"+tier+"_dirty_bytes", func() float64 {
			var n int64
			for _, r := range m.regionAt[c] {
				if r.dirty {
					n += r.size
				}
			}
			return float64(n)
		})
		reg.Gauge("dm_"+tier+"_linked_bytes", func() float64 {
			var n int64
			for _, r := range m.regionAt[c] {
				if o := r.obj; o != nil && o.regions[1-c] != nil {
					n += r.size
				}
			}
			return float64(n)
		})
	}
	reg.Gauge("dm_live_objects", func() float64 { return float64(m.LiveObjects()) })
	counters := []struct {
		name string
		fn   func() float64
	}{
		{"dm_region_allocs", func() float64 { return float64(m.stats.RegionAllocs) }},
		{"dm_region_frees", func() float64 { return float64(m.stats.RegionFrees) }},
		{"dm_copies", func() float64 { return float64(m.stats.Copies) }},
		{"dm_bytes_fast_to_slow", func() float64 { return float64(m.stats.BytesFastToSlow) }},
		{"dm_bytes_slow_to_fast", func() float64 { return float64(m.stats.BytesSlowToFast) }},
		{"dm_evictions", func() float64 { return float64(m.stats.Evictions) }},
		{"dm_defrag_moves", func() float64 { return float64(m.stats.DefragMoves) }},
		{"dm_alloc_retries", func() float64 { return float64(m.stats.AllocRetries) }},
		{"dm_copy_retries", func() float64 { return float64(m.stats.CopyRetries) }},
	}
	for _, c := range counters {
		reg.CounterFunc(c.name, c.fn)
	}
}
