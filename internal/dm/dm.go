// Package dm implements the CachedArrays data manager (paper §III-C): the
// data-movement *mechanism* that policies drive through the data management
// API.
//
// The manager owns one heap allocator per memory device and tracks the
// binding between logical objects and the regions that hold their bytes.
// Terminology follows the paper exactly:
//
//   - an *object* is the logical unit of data the application sees (a
//     tensor, an array);
//   - a *region* is a contiguous slice of one device's heap;
//   - the *primary* region holds the object's current data; other regions
//     bound to the same object are *secondaries* (copies);
//   - two regions are *linked* if they are associated with the same object.
//
// The API surface mirrors the paper's function list: getprimary/setprimary
// (objects), allocate/free/copyto/link/unlink/getlinked/sizeof/in/parent
// plus dirty marking (regions), and evictfrom (devices).
package dm

import (
	"errors"
	"fmt"

	"cachedarrays/internal/alloc"
	"cachedarrays/internal/faults"
	"cachedarrays/internal/memsim"
	"cachedarrays/internal/tracing"
)

// Class names the two tiers of the heterogeneous memory system.
type Class int

const (
	// Fast is the small high-bandwidth tier (DRAM).
	Fast Class = iota
	// Slow is the large low-write-bandwidth tier (NVRAM).
	Slow
	// NumClasses is the number of tiers.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case Fast:
		return "fast"
	case Slow:
		return "slow"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ErrExhausted mirrors alloc.ErrExhausted at the manager level: the
// requested device cannot hold the region. Policies respond by evicting.
var ErrExhausted = alloc.ErrExhausted

// ErrFaultInjected marks a transient injected failure that survived the
// manager's bounded retry/backoff. Unlike ErrExhausted, evicting will not
// cure it; policies respond by degrading (placing on the other tier,
// serving reads in place) instead of forcing room.
var ErrFaultInjected = faults.ErrInjected

// Bounded retry/backoff budgets for injected transient faults, in virtual
// time: the first retry waits the base, each subsequent retry doubles it.
// The budgets are deliberately small — they model a runtime briefly
// re-trying a stalled device, not an unbounded spin.
const (
	allocRetryMax  = 4
	allocRetryBase = 50e-6 // 50 µs
	copyRetryMax   = 6
	copyRetryBase  = 100e-6 // 100 µs
)

// Region is a contiguous slice of one device's heap, optionally bound to an
// object. Fields are read via accessors; all mutation goes through the
// Manager so invariants hold.
type Region struct {
	obj    *Object
	class  Class
	offset int64
	size   int64 // logical (requested) size
	dirty  bool
	freed  bool
}

// Class returns the device tier the region lives on.
func (r *Region) Class() Class { return r.class }

// Offset returns the region's byte offset within its device heap.
func (r *Region) Offset() int64 { return r.offset }

// Size returns the region's logical size in bytes.
func (r *Region) Size() int64 { return r.size }

// Object is the logical data unit. The application (via the policy) holds
// object handles; regions come and go underneath.
type Object struct {
	id      uint64
	size    int64
	primary *Region
	regions [NumClasses]*Region
	retired bool

	// PolicyData is an opaque slot for the policy's per-object state
	// (LRU links, usage class). The manager never touches it.
	PolicyData any
}

// ID returns the object's unique identifier.
func (o *Object) ID() uint64 { return o.id }

// Size returns the object's logical size in bytes.
func (o *Object) Size() int64 { return o.size }

// Retired reports whether the object has been destroyed.
func (o *Object) Retired() bool { return o.retired }

// Primary returns the object's primary region, or nil after destruction.
// Unlike Manager.GetPrimary it never panics, which the invariants checker
// relies on to audit arbitrary states.
func (o *Object) Primary() *Region { return o.primary }

// Region returns the object's region on tier c, or nil.
func (o *Object) Region(c Class) *Region { return o.regions[c] }

// Stats counts the manager's data-movement activity.
type Stats struct {
	ObjectsCreated   int64
	ObjectsDestroyed int64
	Copies           int64
	BytesFastToSlow  int64
	BytesSlowToFast  int64
	BytesWithinFast  int64
	BytesWithinSlow  int64
	Evictions        int64
	DefragMoves      int64
	// RegionAllocs and RegionFrees count heap-level region churn across
	// both tiers (allocation/free *rates* in the metrics layer, where
	// object counters only see whole-object lifecycle).
	RegionAllocs int64
	RegionFrees  int64
	// AllocRetries and CopyRetries count the bounded backoff steps taken
	// against injected transient faults (always zero without a fault
	// schedule).
	AllocRetries int64
	CopyRetries  int64
}

// Manager is the data manager: allocators over the two device heaps plus
// the object/region state machine.
type Manager struct {
	devices [NumClasses]*memsim.Device
	allocs  [NumClasses]alloc.Allocator
	copier  *memsim.CopyEngine

	// regionAt maps a heap offset to its region, per device. evictfrom
	// walks allocator blocks and resolves them to regions through this
	// index.
	regionAt [NumClasses]map[int64]*Region
	objects  map[uint64]*Object
	nextID   uint64
	stats    Stats
	events   *EventLog
	tracer   *tracing.Recorder
	faults   *faults.Injector

	// compacting is set while Defrag relocates regions: the allocator
	// and the region index are transiently out of sync inside the move
	// callback, so mid-operation invariant checks must stand down.
	compacting bool
}

// New creates a manager over the platform's two devices using free-list
// first-fit allocators sized to each device's capacity.
func New(p *memsim.Platform) *Manager {
	return NewWithAllocators(p,
		alloc.NewFreeList(p.Fast.Capacity, alloc.FirstFit),
		alloc.NewFreeList(p.Slow.Capacity, alloc.FirstFit))
}

// NewWithAllocators creates a manager with caller-chosen allocators (e.g. a
// buddy allocator for ablation studies). The allocators' capacities must
// not exceed the devices'; violating that is a programming error and
// panics. Callers wiring user-supplied configurations should prefer
// NewWithAllocatorsE.
func NewWithAllocators(p *memsim.Platform, fast, slow alloc.Allocator) *Manager {
	m, err := NewWithAllocatorsE(p, fast, slow)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// NewWithAllocatorsE is NewWithAllocators' error-returning variant: an
// allocator sized beyond its device is reported instead of panicking, for
// callers assembling platforms from external configuration.
func NewWithAllocatorsE(p *memsim.Platform, fast, slow alloc.Allocator) (*Manager, error) {
	if fast.Capacity() > p.Fast.Capacity || slow.Capacity() > p.Slow.Capacity {
		return nil, fmt.Errorf("dm: allocator capacity (fast %d, slow %d) exceeds device capacity (fast %d, slow %d)",
			fast.Capacity(), slow.Capacity(), p.Fast.Capacity, p.Slow.Capacity)
	}
	m := &Manager{
		devices: [NumClasses]*memsim.Device{p.Fast, p.Slow},
		allocs:  [NumClasses]alloc.Allocator{fast, slow},
		copier:  p.Copier,
		objects: make(map[uint64]*Object),
	}
	for c := range m.regionAt {
		m.regionAt[c] = make(map[int64]*Region)
	}
	return m, nil
}

// SetFaults installs a fault injector on the manager's hot paths. A nil
// injector (the default) keeps every path on its fault-free branch, so
// runs without a schedule stay byte-identical.
func (m *Manager) SetFaults(f *faults.Injector) { m.faults = f }

// Quiesced reports whether the manager's bookkeeping is internally
// consistent right now: false while Defrag is relocating regions (the
// allocator moves a block before the region index follows). Clock-advance
// invariant audits stand down while not quiesced and catch up on the next
// advance.
func (m *Manager) Quiesced() bool { return !m.compacting }

// ForEachObject visits every live object in unspecified order, stopping
// early if fn returns false. The invariants checker audits the object
// table through this.
func (m *Manager) ForEachObject(fn func(*Object) bool) {
	for _, o := range m.objects {
		if !fn(o) {
			return
		}
	}
}

// Device returns the memsim device backing a tier.
func (m *Manager) Device(c Class) *memsim.Device { return m.devices[c] }

// AllocatorFor returns the heap allocator for a tier.
func (m *Manager) AllocatorFor(c Class) alloc.Allocator { return m.allocs[c] }

// Stats returns a snapshot of the movement counters.
func (m *Manager) Stats() Stats { return m.stats }

// ResetStats zeroes the movement counters.
func (m *Manager) ResetStats() { m.stats = Stats{} }

// UsedBytes returns the allocated byte count on a tier (the resident-heap
// metric of Fig. 3).
func (m *Manager) UsedBytes(c Class) int64 { return m.allocs[c].Used() }

// FreeBytes returns the unallocated byte count on a tier.
func (m *Manager) FreeBytes(c Class) int64 { return m.allocs[c].FreeBytes() }

// LiveObjects returns the number of live (non-retired) objects.
func (m *Manager) LiveObjects() int { return len(m.objects) }

// ---------------------------------------------------------------------------
// Region functions (paper: allocate, free, copyto, link, unlink, getlinked,
// sizeof, in, parent, dirty marking).

// Allocate reserves an unbound region of the given size on a tier. It
// returns ErrExhausted when the tier is full — the policy reacts by
// evicting and retrying (paper Listing 2).
func (m *Manager) Allocate(c Class, size int64) (*Region, error) {
	return m.allocate(c, size, 0)
}

// allocate is Allocate with the owning object's ID for event attribution:
// NewObject passes the ID its object will get, so the allocation event can
// be tied to the object even though binding happens a moment later.
func (m *Manager) allocate(c Class, size int64, owner uint64) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("dm: invalid region size %d", size)
	}
	if m.faults.Enabled() {
		if err := m.preflightAlloc(c, size, owner); err != nil {
			return nil, err
		}
	}
	off, err := m.allocs[c].Alloc(size)
	if err != nil {
		return nil, err
	}
	r := &Region{class: c, offset: off, size: size}
	m.regionAt[c][off] = r
	m.stats.RegionAllocs++
	m.record(EvAlloc, owner, size, c, c)
	m.tracer.DM(tracing.KindAlloc, owner, size, "", c.String())
	return r, nil
}

// backoffWait advances virtual time by dt seconds between retries of an
// injected fault: the retries are not free, they model a runtime waiting
// out a device hiccup.
func (m *Manager) backoffWait(dt float64) {
	if m.copier != nil && m.copier.Clock != nil {
		m.copier.Clock.Advance(dt)
	}
}

// preflightAlloc consults the fault injector before touching the real
// allocator. A transient alloc-fail episode is retried with exponential
// backoff in virtual time and only surfaces as ErrFaultInjected once the
// bounded budget is spent; a capacity-shrink episode withholds bytes from
// the tier, so requests that no longer fit fail with ErrExhausted and the
// policy evicts exactly as it would on a genuinely smaller device.
func (m *Manager) preflightAlloc(c Class, size int64, owner uint64) error {
	tier := c.String()
	if m.faults.FailAlloc(tier, size) {
		backoff := allocRetryBase
		cleared := false
		for try := 0; try < allocRetryMax; try++ {
			m.stats.AllocRetries++
			m.tracer.Retry("alloc", owner, backoff)
			m.backoffWait(backoff)
			backoff *= 2
			if !m.faults.FailAlloc(tier, size) {
				cleared = true
				break
			}
		}
		if !cleared {
			return fmt.Errorf("dm: allocate %d bytes on %v: %w", size, c, ErrFaultInjected)
		}
	}
	if w := m.faults.Withheld(tier); w > 0 {
		if m.allocs[c].Used()+size > m.allocs[c].Capacity()-w {
			m.faults.NoteShrinkReject(tier, size)
			return ErrExhausted
		}
	}
	return nil
}

// Free releases a region's heap space. The region must not be the primary
// of a live object (that would orphan the data); a bound secondary is
// unbound automatically, matching the paper's evict flow where the old fast
// region is freed right after the primary moves to slow memory.
func (m *Manager) Free(r *Region) {
	if r.freed {
		panic("dm: double free of region")
	}
	var owner uint64
	if o := r.obj; o != nil {
		if o.primary == r && !o.retired {
			panic("dm: freeing the primary region of a live object")
		}
		owner = o.id
		o.regions[r.class] = nil
		r.obj = nil
	}
	delete(m.regionAt[r.class], r.offset)
	m.allocs[r.class].Free(r.offset)
	r.freed = true
	m.stats.RegionFrees++
	m.record(EvFree, owner, r.size, r.class, r.class)
	m.tracer.DM(tracing.KindFree, owner, r.size, r.class.String(), "")
}

// SizeOf returns the logical size of a region.
func (m *Manager) SizeOf(r *Region) int64 { return r.size }

// In reports whether a region lives on the given tier.
func (m *Manager) In(r *Region, c Class) bool { return r.class == c }

// Parent returns the object a region is bound to, or nil for an unbound
// region.
func (m *Manager) Parent(r *Region) *Object { return r.obj }

// GetLinked returns the region linked to r (bound to the same object) on
// the given tier, or nil if none exists. Asking for r's own tier returns r
// itself if bound there.
func (m *Manager) GetLinked(r *Region, c Class) *Region {
	if r.obj == nil {
		return nil
	}
	return r.obj.regions[c]
}

// Link associates two regions with the same object: exactly one of them
// must already be bound, and the other is bound to the same object as its
// copy on the other tier (paper Listing 2, after a prefetch copy). The
// freshly linked region starts clean.
func (m *Manager) Link(a, b *Region) error {
	if a.class == b.class {
		return fmt.Errorf("dm: cannot link two regions on the same tier (%v)", a.class)
	}
	var bound, loose *Region
	switch {
	case a.obj != nil && b.obj == nil:
		bound, loose = a, b
	case b.obj != nil && a.obj == nil:
		bound, loose = b, a
	case a.obj == nil && b.obj == nil:
		return errors.New("dm: linking two unbound regions")
	default:
		if a.obj == b.obj {
			return nil // already linked
		}
		return errors.New("dm: regions bound to different objects")
	}
	o := bound.obj
	if existing := o.regions[loose.class]; existing != nil && existing != loose {
		return fmt.Errorf("dm: object %d already has a region on %v", o.id, loose.class)
	}
	o.regions[loose.class] = loose
	loose.obj = o
	loose.dirty = false
	m.tracer.DM(tracing.KindLink, o.id, o.size, bound.class.String(), loose.class.String())
	return nil
}

// Unlink dissociates two linked regions: the one that is not the object's
// primary becomes unbound (paper Listing 1, before freeing the old fast
// region).
func (m *Manager) Unlink(a, b *Region) error {
	if a == b {
		// A bound region trivially shares its object with itself, so
		// without this check a same-region "unlink" of a non-primary
		// would pass the linkage test below and silently unbind the
		// region from its own object.
		return errors.New("dm: unlinking a region from itself")
	}
	if a.obj == nil || a.obj != b.obj {
		return errors.New("dm: unlinking regions that are not linked")
	}
	o := a.obj
	victim := a
	if o.primary == a {
		victim = b
	}
	if o.primary == victim {
		return errors.New("dm: cannot unlink the primary from itself")
	}
	o.regions[victim.class] = nil
	victim.obj = nil
	m.tracer.DM(tracing.KindUnlink, o.id, o.size, victim.class.String(), "")
	return nil
}

// MarkDirty flags a region as modified relative to its siblings (kernel
// wrote through it).
func (m *Manager) MarkDirty(r *Region) { r.dirty = true }

// MarkClean flags a region as consistent with its siblings (just copied).
func (m *Manager) MarkClean(r *Region) { r.dirty = false }

// IsDirty reports the region's dirty flag.
func (m *Manager) IsDirty(r *Region) bool { return r.dirty }

// CopyTo copies src's bytes into dst (sizes must match) using the
// high-bandwidth copy engine; it advances the virtual clock and returns the
// elapsed time. dst is marked clean: it now holds a faithful copy. It
// panics where CopyToE would error; fault-aware policies use CopyToE.
func (m *Manager) CopyTo(dst, src *Region) float64 {
	t, err := m.CopyToE(dst, src)
	if err != nil {
		panic(err.Error())
	}
	return t
}

// CopyToE is CopyTo's error-returning variant: a size mismatch is reported
// as an error instead of a panic, and an injected transient copy-engine
// fault is retried with exponential backoff in virtual time before
// surfacing as ErrFaultInjected. On success it returns the elapsed time.
func (m *Manager) CopyToE(dst, src *Region) (float64, error) {
	if dst.size != src.size {
		return 0, fmt.Errorf("dm: copyto size mismatch: dst %d, src %d", dst.size, src.size)
	}
	var owner uint64
	if src.obj != nil {
		owner = src.obj.id
	} else if dst.obj != nil {
		owner = dst.obj.id
	}
	if m.faults.Enabled() && m.faults.FailCopy() {
		backoff := copyRetryBase
		cleared := false
		for try := 0; try < copyRetryMax; try++ {
			m.stats.CopyRetries++
			m.tracer.Retry("copy", owner, backoff)
			m.backoffWait(backoff)
			backoff *= 2
			if !m.faults.FailCopy() {
				cleared = true
				break
			}
		}
		if !cleared {
			return 0, fmt.Errorf("dm: copyto %d bytes %v->%v: %w",
				src.size, src.class, dst.class, ErrFaultInjected)
		}
	}
	t := m.copier.Copy(m.devices[dst.class], dst.offset, m.devices[src.class], src.offset, src.size)
	m.stats.Copies++
	switch {
	case src.class == Fast && dst.class == Slow:
		m.stats.BytesFastToSlow += src.size
	case src.class == Slow && dst.class == Fast:
		m.stats.BytesSlowToFast += src.size
	case src.class == Fast:
		m.stats.BytesWithinFast += src.size
	default:
		m.stats.BytesWithinSlow += src.size
	}
	dst.dirty = false
	m.record(EvCopy, owner, src.size, src.class, dst.class)
	if m.tracer.Enabled() {
		// Synchronously the copy just finished at now; asynchronously
		// it was queued now and runs on the mover's timeline.
		now, t0, t1 := m.now(), 0.0, 0.0
		if m.copier.Async {
			t0, t1 = now, now+t
		} else {
			t0, t1 = now-t, now
		}
		m.tracer.Copy(owner, src.size, src.class.String(), dst.class.String(), t0, t1)
	}
	return t, nil
}

// RegionAt returns the region occupying the heap block at offset on tier c,
// or nil if the offset is not an allocated block's start. Policies use this
// together with the allocator's block iteration to inspect candidate
// eviction ranges.
func (m *Manager) RegionAt(c Class, offset int64) *Region {
	return m.regionAt[c][offset]
}

// Data returns the real backing bytes of a region. It panics if the
// region's device is unbacked; paper-scale simulation runs are unbacked and
// never touch data, while examples and correctness tests run backed.
func (m *Manager) Data(r *Region) []byte {
	if r.freed {
		panic("dm: Data on freed region")
	}
	return m.devices[r.class].Data(r.offset, r.size)
}

// ---------------------------------------------------------------------------
// Object functions (paper: getprimary, setprimary).

// NewObject creates an object whose initial primary region is allocated on
// the given tier. Where that tier is depends on the policy: with local
// allocation (optimization L) new objects start directly in fast memory;
// without it they start in slow memory like a hardware cache's backing
// store.
func (m *Manager) NewObject(size int64, c Class) (*Object, error) {
	// The object's ID is decided before the allocation so the alloc
	// event carries its owner; nextID only commits on success, keeping
	// the ID sequence identical whether or not allocations fail.
	r, err := m.allocate(c, size, m.nextID+1)
	if err != nil {
		return nil, err
	}
	m.nextID++
	o := &Object{id: m.nextID, size: size, primary: r}
	o.regions[c] = r
	r.obj = o
	m.objects[o.id] = o
	m.stats.ObjectsCreated++
	return o, nil
}

// GetPrimary returns the object's primary region.
func (m *Manager) GetPrimary(o *Object) *Region {
	if o.retired {
		panic(fmt.Sprintf("dm: GetPrimary on retired object %d", o.id))
	}
	return o.primary
}

// SetPrimary reassigns the object's primary region. An unbound region is
// bound to the object first (paper Listing 1 line 14: the freshly allocated
// slow region becomes primary without an explicit link).
func (m *Manager) SetPrimary(o *Object, r *Region) error {
	if r.freed {
		return errors.New("dm: SetPrimary with freed region")
	}
	if r.obj == nil {
		if existing := o.regions[r.class]; existing != nil && existing != r {
			return fmt.Errorf("dm: object %d already has a region on %v", o.id, r.class)
		}
		o.regions[r.class] = r
		r.obj = o
	} else if r.obj != o {
		return errors.New("dm: SetPrimary with a region bound to another object")
	}
	from := r.class
	if o.primary != nil {
		from = o.primary.class
	}
	o.primary = r
	m.record(EvSetPrimary, o.id, o.size, from, r.class)
	m.tracer.DM(tracing.KindSetPrimary, o.id, o.size, from.String(), r.class.String())
	return nil
}

// DestroyObject retires an object and frees all its regions. This is the
// mechanism behind the retire hint and garbage collection.
func (m *Manager) DestroyObject(o *Object) {
	if o.retired {
		panic(fmt.Sprintf("dm: double destroy of object %d", o.id))
	}
	o.retired = true
	var primaryClass Class
	if o.primary != nil {
		primaryClass = o.primary.class
	}
	m.record(EvDestroy, o.id, o.size, primaryClass, primaryClass)
	m.tracer.DM(tracing.KindDestroy, o.id, o.size, primaryClass.String(), "")
	o.primary = nil
	for c, r := range o.regions {
		if r == nil {
			continue
		}
		o.regions[c] = nil
		r.obj = nil
		delete(m.regionAt[r.class], r.offset)
		m.allocs[r.class].Free(r.offset)
		r.freed = true
		m.stats.RegionFrees++
	}
	delete(m.objects, o.id)
	m.stats.ObjectsDestroyed++
}

// ---------------------------------------------------------------------------
// Device functions.

// EvictFrom frees a contiguous block of at least `size` bytes on tier c
// starting at `start`, by invoking the policy's evict callback for every
// region overlapping the range (paper Listing 2 lines 9–11). The callback
// must remove the region from the tier (typically by moving its object's
// primary elsewhere and freeing it); EvictFrom verifies the range actually
// became free and returns an error otherwise.
func (m *Manager) EvictFrom(c Class, start, size int64, evict func(*Region)) error {
	capacity := m.allocs[c].Capacity()
	if size > capacity {
		return fmt.Errorf("dm: evictfrom size %d exceeds tier capacity %d", size, capacity)
	}
	if start < 0 {
		start = 0
	}
	if start+size > capacity {
		start = capacity - size
	}
	// Snapshot the overlapping regions first: the callback mutates the
	// allocator while we'd otherwise be iterating it.
	var victims []*Region
	m.allocs[c].BlocksIn(start, size, func(off, blockSize int64) bool {
		r, ok := m.regionAt[c][off]
		if !ok {
			panic(fmt.Sprintf("dm: allocator block at %d on %v has no region", off, c))
		}
		victims = append(victims, r)
		return true
	})
	for _, r := range victims {
		if r.freed {
			continue // a prior eviction already released it
		}
		evict(r)
		if !r.freed {
			return fmt.Errorf("dm: evict callback left region at %d on %v allocated", r.offset, c)
		}
		m.stats.Evictions++
	}
	// The walked range must now be free.
	blocked := false
	m.allocs[c].BlocksIn(start, size, func(off, blockSize int64) bool {
		blocked = true
		return false
	})
	if blocked {
		return fmt.Errorf("dm: evictfrom range [%d,%d) on %v still occupied", start, start+size, c)
	}
	return nil
}

// Defrag compacts a tier's heap, sliding regions toward offset zero and
// moving their bytes through the copy engine. The paper defragments the
// local heap between training iterations (§IV-A); the movement cost is
// modelled (clock advances) but callers typically reset counters afterward,
// as the paper's measurement windows do.
func (m *Manager) Defrag(c Class) {
	comp, ok := m.allocs[c].(alloc.Compactor)
	if !ok {
		return
	}
	dev := m.devices[c]
	m.compacting = true
	defer func() { m.compacting = false }()
	comp.Compact(func(old, new, size int64) {
		r, ok := m.regionAt[c][old]
		if !ok {
			panic(fmt.Sprintf("dm: defrag moved unknown block at %d on %v", old, c))
		}
		m.copier.Copy(dev, new, dev, old, r.size)
		delete(m.regionAt[c], old)
		r.offset = new
		m.regionAt[c][new] = r
		m.stats.DefragMoves++
		var owner uint64
		if r.obj != nil {
			owner = r.obj.id
		}
		m.record(EvDefragMove, owner, r.size, c, c)
		m.tracer.DM(tracing.KindDefrag, owner, r.size, c.String(), c.String())
	})
}

// ---------------------------------------------------------------------------
// Invariant checking (tests and debug builds).

// CheckInvariants validates the full object/region state machine and the
// underlying allocators. It returns the first violation found.
func (m *Manager) CheckInvariants() error {
	for c := Class(0); c < NumClasses; c++ {
		if err := m.allocs[c].CheckInvariants(); err != nil {
			return err
		}
		// Every allocator block has exactly one region and vice versa.
		count := 0
		var blockErr error
		m.allocs[c].Blocks(func(off, size int64) bool {
			count++
			r, ok := m.regionAt[c][off]
			if !ok {
				blockErr = fmt.Errorf("dm: block at %d on %v has no region", off, c)
				return false
			}
			if r.offset != off || r.class != c || r.freed {
				blockErr = fmt.Errorf("dm: region index mismatch at %d on %v", off, c)
				return false
			}
			if r.size > size {
				blockErr = fmt.Errorf("dm: region at %d larger than its block (%d > %d)", off, r.size, size)
				return false
			}
			return true
		})
		if blockErr != nil {
			return blockErr
		}
		if count != len(m.regionAt[c]) {
			return fmt.Errorf("dm: %v index has %d regions, allocator has %d blocks",
				c, len(m.regionAt[c]), count)
		}
	}
	for id, o := range m.objects {
		if o.retired {
			return fmt.Errorf("dm: retired object %d still tracked", id)
		}
		if o.primary == nil {
			return fmt.Errorf("dm: live object %d has no primary", id)
		}
		found := false
		for c, r := range o.regions {
			if r == nil {
				continue
			}
			if r.obj != o {
				return fmt.Errorf("dm: object %d region on %v points elsewhere", id, Class(c))
			}
			if r.class != Class(c) {
				return fmt.Errorf("dm: object %d region slot %v holds a %v region", id, Class(c), r.class)
			}
			if r.size != o.size {
				return fmt.Errorf("dm: object %d region size %d != object size %d", id, r.size, o.size)
			}
			if r == o.primary {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("dm: object %d primary not among its regions", id)
		}
	}
	return nil
}
