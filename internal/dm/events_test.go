package dm

import (
	"strings"
	"testing"

	"cachedarrays/internal/memsim"
	"cachedarrays/internal/units"
)

func TestEventLogRecordsLifecycle(t *testing.T) {
	p := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: units.MB, SlowCapacity: units.MB, CopyThreads: 2,
	})
	m := New(p)
	log := NewEventLog(64)
	m.SetEventLog(log)

	o, err := m.NewObject(4096, Fast)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Allocate(Slow, 4096)
	if err != nil {
		t.Fatal(err)
	}
	m.CopyTo(s, m.GetPrimary(o))
	if err := m.SetPrimary(o, s); err != nil {
		t.Fatal(err)
	}
	m.DestroyObject(o)

	kinds := map[EventKind]int{}
	for _, e := range log.Events() {
		kinds[e.Kind]++
	}
	if kinds[EvAlloc] != 2 {
		t.Errorf("allocs = %d, want 2", kinds[EvAlloc])
	}
	if kinds[EvCopy] != 1 || kinds[EvSetPrimary] != 1 || kinds[EvDestroy] != 1 {
		t.Errorf("kinds: %v", kinds)
	}
	// The copy event records the direction.
	for _, e := range log.Events() {
		if e.Kind == EvCopy {
			if e.From != Fast || e.To != Slow || e.Bytes != 4096 {
				t.Errorf("copy event wrong: %+v", e)
			}
			if !strings.Contains(e.String(), "fast->slow") {
				t.Errorf("copy render: %s", e)
			}
		}
	}
	if log.Total() != int64(len(log.Events())) {
		t.Errorf("total %d != retained %d", log.Total(), len(log.Events()))
	}
}

func TestEventLogRingBounds(t *testing.T) {
	log := NewEventLog(4)
	for i := 0; i < 10; i++ {
		log.Record(Event{Bytes: int64(i)})
	}
	ev := log.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d, want 4", len(ev))
	}
	// Oldest-first: 6,7,8,9.
	for i, e := range ev {
		if e.Bytes != int64(6+i) {
			t.Fatalf("ring order wrong: %v", ev)
		}
	}
	if log.Total() != 10 {
		t.Fatalf("total = %d", log.Total())
	}
}

func TestEventLogZeroSizeDefaults(t *testing.T) {
	log := NewEventLog(0)
	log.Record(Event{})
	if len(log.Events()) != 1 {
		t.Fatal("default-size log broken")
	}
}

func TestEventKindStrings(t *testing.T) {
	for _, k := range []EventKind{EvAlloc, EvFree, EvCopy, EvSetPrimary, EvDestroy, EvDefragMove} {
		if strings.Contains(k.String(), "EventKind") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if !strings.Contains(EventKind(99).String(), "99") {
		t.Error("unknown kind render wrong")
	}
}

func TestNoLogMeansNoRecording(t *testing.T) {
	p := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: units.MB, SlowCapacity: units.MB,
	})
	m := New(p)
	// Must not panic with a nil log.
	o, _ := m.NewObject(64, Fast)
	m.DestroyObject(o)
}
