package dm

import (
	"strings"
	"testing"

	"cachedarrays/internal/memsim"
	"cachedarrays/internal/units"
)

func TestEventLogRecordsLifecycle(t *testing.T) {
	p := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: units.MB, SlowCapacity: units.MB, CopyThreads: 2,
	})
	m := New(p)
	log := NewEventLog(64)
	m.SetEventLog(log)

	o, err := m.NewObject(4096, Fast)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Allocate(Slow, 4096)
	if err != nil {
		t.Fatal(err)
	}
	m.CopyTo(s, m.GetPrimary(o))
	if err := m.SetPrimary(o, s); err != nil {
		t.Fatal(err)
	}
	m.DestroyObject(o)

	kinds := map[EventKind]int{}
	for _, e := range log.Events() {
		kinds[e.Kind]++
	}
	if kinds[EvAlloc] != 2 {
		t.Errorf("allocs = %d, want 2", kinds[EvAlloc])
	}
	if kinds[EvCopy] != 1 || kinds[EvSetPrimary] != 1 || kinds[EvDestroy] != 1 {
		t.Errorf("kinds: %v", kinds)
	}
	// The copy event records the direction.
	for _, e := range log.Events() {
		if e.Kind == EvCopy {
			if e.From != Fast || e.To != Slow || e.Bytes != 4096 {
				t.Errorf("copy event wrong: %+v", e)
			}
			if !strings.Contains(e.String(), "fast->slow") {
				t.Errorf("copy render: %s", e)
			}
		}
	}
	if log.Total() != int64(len(log.Events())) {
		t.Errorf("total %d != retained %d", log.Total(), len(log.Events()))
	}
}

func TestEventLogRingBounds(t *testing.T) {
	log := NewEventLog(4)
	for i := 0; i < 10; i++ {
		log.Record(Event{Bytes: int64(i)})
	}
	ev := log.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d, want 4", len(ev))
	}
	// Oldest-first: 6,7,8,9.
	for i, e := range ev {
		if e.Bytes != int64(6+i) {
			t.Fatalf("ring order wrong: %v", ev)
		}
	}
	if log.Total() != 10 {
		t.Fatalf("total = %d", log.Total())
	}
}

func TestEventLogZeroSizeDefaults(t *testing.T) {
	log := NewEventLog(0)
	log.Record(Event{})
	if len(log.Events()) != 1 {
		t.Fatal("default-size log broken")
	}
}

func TestEventKindStrings(t *testing.T) {
	for _, k := range []EventKind{EvAlloc, EvFree, EvCopy, EvSetPrimary, EvDestroy, EvDefragMove} {
		if strings.Contains(k.String(), "EventKind") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if !strings.Contains(EventKind(99).String(), "99") {
		t.Error("unknown kind render wrong")
	}
}

// TestEventsCarryOwnerID is the regression test for the attribution bug:
// NewObject's allocation and a bound region's Free used to record owner 0,
// making per-object movement histories impossible to reconstruct.
func TestEventsCarryOwnerID(t *testing.T) {
	p := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: units.MB, SlowCapacity: units.MB, CopyThreads: 2,
	})
	m := New(p)
	log := NewEventLog(64)
	m.SetEventLog(log)

	o, err := m.NewObject(4096, Fast)
	if err != nil {
		t.Fatal(err)
	}
	// Evict flow: new slow region becomes primary, old fast region is
	// freed while still bound to the object (Free unbinds it itself).
	s, err := m.Allocate(Slow, 4096)
	if err != nil {
		t.Fatal(err)
	}
	fastRegion := m.GetPrimary(o)
	m.CopyTo(s, fastRegion)
	if err := m.SetPrimary(o, s); err != nil {
		t.Fatal(err)
	}
	m.Free(fastRegion)

	var allocOwner, freeOwner uint64
	seenAlloc := false
	for _, e := range log.Events() {
		switch e.Kind {
		case EvAlloc:
			if !seenAlloc { // the NewObject allocation
				allocOwner = e.Object
				seenAlloc = true
			}
		case EvFree:
			freeOwner = e.Object
		}
	}
	if allocOwner != o.ID() {
		t.Errorf("NewObject alloc event owner = %d, want %d", allocOwner, o.ID())
	}
	if freeOwner != o.ID() {
		t.Errorf("free event owner = %d, want %d", freeOwner, o.ID())
	}
}

// TestUnlinkSelfRejected is the regression test for the self-unlink bug:
// Unlink(a, a) on a bound non-primary used to pass the linkage test (a
// trivially shares its object with itself) and silently unbind the region
// from its own object.
func TestUnlinkSelfRejected(t *testing.T) {
	p := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: units.MB, SlowCapacity: units.MB, CopyThreads: 2,
	})
	m := New(p)
	o, err := m.NewObject(4096, Fast)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Allocate(Slow, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Link(m.GetPrimary(o), s); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlink(s, s); err == nil {
		t.Fatal("Unlink(s, s) on a bound non-primary succeeded")
	}
	if got := m.GetLinked(m.GetPrimary(o), Slow); got != s {
		t.Fatalf("self-unlink detached the secondary: GetLinked = %v, want %v", got, s)
	}
	if m.Parent(s) != o {
		t.Fatal("self-unlink unbound the region from its object")
	}
	// Unlinking the primary from itself stays rejected too.
	if err := m.Unlink(m.GetPrimary(o), m.GetPrimary(o)); err == nil {
		t.Fatal("Unlink(primary, primary) succeeded")
	}
}

func TestNoLogMeansNoRecording(t *testing.T) {
	p := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: units.MB, SlowCapacity: units.MB,
	})
	m := New(p)
	// Must not panic with a nil log.
	o, _ := m.NewObject(64, Fast)
	m.DestroyObject(o)
}
