package alloc

import (
	"fmt"
	"sort"
)

// Fit selects the free-block search strategy of a FreeList.
type Fit int

const (
	// FirstFit takes the lowest-addressed free block that fits. Cheap
	// and keeps allocations dense at low addresses.
	FirstFit Fit = iota
	// BestFit takes the smallest free block that fits, reducing external
	// fragmentation for mixed-size workloads.
	BestFit
)

func (f Fit) String() string {
	switch f {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	default:
		return fmt.Sprintf("Fit(%d)", int(f))
	}
}

// block is one node in the address-ordered block list. The list always
// covers [0, capacity) exactly, alternating allocated and (coalesced) free
// blocks — two free blocks are never adjacent.
type block struct {
	off, size  int64
	free       bool
	prev, next *block
}

// FreeList is an address-ordered free-list allocator with eager coalescing,
// configurable fit strategy, and compaction. It is the default heap
// allocator of the CachedArrays data manager.
type FreeList struct {
	capacity int64
	align    int64
	fit      Fit
	head     *block
	byOff    map[int64]*block // allocated blocks, keyed by offset
	used     int64
}

var (
	_ Allocator = (*FreeList)(nil)
	_ Compactor = (*FreeList)(nil)
)

// NewFreeList creates a free-list allocator over a heap of the given
// capacity with 64-byte block alignment.
func NewFreeList(capacity int64, fit Fit) *FreeList {
	if capacity < 0 {
		panic(fmt.Sprintf("alloc: negative capacity %d", capacity))
	}
	f := &FreeList{capacity: capacity, align: defaultAlign, fit: fit}
	f.Reset()
	return f
}

// Reset empties the allocator.
func (f *FreeList) Reset() {
	f.byOff = make(map[int64]*block)
	f.used = 0
	if f.capacity == 0 {
		f.head = nil
		return
	}
	f.head = &block{off: 0, size: f.capacity, free: true}
}

// Capacity returns the heap size.
func (f *FreeList) Capacity() int64 { return f.capacity }

// Used returns bytes held by allocated blocks (after alignment rounding).
func (f *FreeList) Used() int64 { return f.used }

// FreeBytes returns the unallocated byte count.
func (f *FreeList) FreeBytes() int64 { return f.capacity - f.used }

// LargestFree returns the largest contiguous free block size.
func (f *FreeList) LargestFree() int64 {
	var max int64
	for b := f.head; b != nil; b = b.next {
		if b.free && b.size > max {
			max = b.size
		}
	}
	return max
}

// Alloc reserves size bytes (rounded up to the alignment) and returns the
// block offset, or ErrExhausted.
func (f *FreeList) Alloc(size int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("alloc: invalid allocation size %d", size)
	}
	need := alignUp(size, f.align)
	var chosen *block
	for b := f.head; b != nil; b = b.next {
		if !b.free || b.size < need {
			continue
		}
		if f.fit == FirstFit {
			chosen = b
			break
		}
		if chosen == nil || b.size < chosen.size {
			chosen = b
		}
	}
	if chosen == nil {
		return 0, ErrExhausted
	}
	if chosen.size > need {
		// Split: the tail stays free.
		tail := &block{off: chosen.off + need, size: chosen.size - need, free: true,
			prev: chosen, next: chosen.next}
		if chosen.next != nil {
			chosen.next.prev = tail
		}
		chosen.next = tail
		chosen.size = need
	}
	chosen.free = false
	f.byOff[chosen.off] = chosen
	f.used += chosen.size
	return chosen.off, nil
}

// Free releases the block at offset, coalescing with free neighbours.
func (f *FreeList) Free(offset int64) {
	b, ok := f.byOff[offset]
	if !ok {
		panic(fmt.Sprintf("alloc: free of unknown offset %d", offset))
	}
	delete(f.byOff, offset)
	f.used -= b.size
	b.free = true
	// Coalesce with next, then prev.
	if n := b.next; n != nil && n.free {
		b.size += n.size
		b.next = n.next
		if n.next != nil {
			n.next.prev = b
		}
	}
	if p := b.prev; p != nil && p.free {
		p.size += b.size
		p.next = b.next
		if b.next != nil {
			b.next.prev = p
		}
	}
}

// SizeOf returns the (aligned) size of the allocated block at offset.
func (f *FreeList) SizeOf(offset int64) int64 {
	b, ok := f.byOff[offset]
	if !ok {
		panic(fmt.Sprintf("alloc: SizeOf of unknown offset %d", offset))
	}
	return b.size
}

// Blocks iterates allocated blocks in address order.
func (f *FreeList) Blocks(fn func(offset, size int64) bool) {
	for b := f.head; b != nil; b = b.next {
		if b.free {
			continue
		}
		if !fn(b.off, b.size) {
			return
		}
	}
}

// BlocksIn iterates allocated blocks overlapping [start, start+length).
func (f *FreeList) BlocksIn(start, length int64, fn func(offset, size int64) bool) {
	end := start + length
	for b := f.head; b != nil; b = b.next {
		if b.off >= end {
			return
		}
		if b.free || b.off+b.size <= start {
			continue
		}
		if !fn(b.off, b.size) {
			return
		}
	}
}

// Compact slides all allocated blocks to the bottom of the heap in address
// order. The move callback must relocate the owner's data before the next
// call (block moves never overlap destructively because compaction only
// moves blocks downward).
func (f *FreeList) Compact(move func(oldOffset, newOffset, size int64)) {
	var cursor int64
	var blocks []*block
	for b := f.head; b != nil; b = b.next {
		if !b.free {
			blocks = append(blocks, b)
		}
	}
	// Rebuild the list from scratch: allocated blocks packed at the
	// bottom, one free block on top.
	var head, tail *block
	appendBlock := func(nb *block) {
		if tail == nil {
			head, tail = nb, nb
			return
		}
		tail.next = nb
		nb.prev = tail
		tail = nb
	}
	for _, b := range blocks {
		old := b.off
		if old != cursor && move != nil {
			move(old, cursor, b.size)
		}
		delete(f.byOff, old)
		nb := &block{off: cursor, size: b.size}
		f.byOff[cursor] = nb
		appendBlock(nb)
		cursor += b.size
	}
	if cursor < f.capacity {
		appendBlock(&block{off: cursor, size: f.capacity - cursor, free: true})
	}
	f.head = head
	if f.capacity == 0 {
		f.head = nil
	}
}

// FragmentationRatio returns 1 - LargestFree/FreeBytes: 0 when all free
// space is contiguous, approaching 1 as it shatters. Returns 0 for a full
// or empty-free heap.
func (f *FreeList) FragmentationRatio() float64 {
	free := f.FreeBytes()
	if free == 0 {
		return 0
	}
	return 1 - float64(f.LargestFree())/float64(free)
}

// CheckInvariants validates the block list: exact coverage of
// [0, capacity), no adjacent free blocks, consistent links, byOff matching
// the allocated set, and used-byte accounting.
func (f *FreeList) CheckInvariants() error {
	if f.capacity == 0 {
		if f.head != nil || len(f.byOff) != 0 || f.used != 0 {
			return fmt.Errorf("alloc: zero-capacity heap has state")
		}
		return nil
	}
	var cursor, used int64
	seen := 0
	prevFree := false
	var prev *block
	for b := f.head; b != nil; b = b.next {
		if b.prev != prev {
			return fmt.Errorf("alloc: broken prev link at offset %d", b.off)
		}
		if b.off != cursor {
			return fmt.Errorf("alloc: gap or overlap at offset %d (expected %d)", b.off, cursor)
		}
		if b.size <= 0 {
			return fmt.Errorf("alloc: non-positive block size %d at offset %d", b.size, b.off)
		}
		if b.free && prevFree {
			return fmt.Errorf("alloc: adjacent free blocks at offset %d", b.off)
		}
		if !b.free {
			used += b.size
			got, ok := f.byOff[b.off]
			if !ok || got != b {
				return fmt.Errorf("alloc: allocated block at %d missing from index", b.off)
			}
			seen++
		}
		prevFree = b.free
		cursor += b.size
		prev = b
	}
	if cursor != f.capacity {
		return fmt.Errorf("alloc: blocks cover %d bytes, capacity %d", cursor, f.capacity)
	}
	if used != f.used {
		return fmt.Errorf("alloc: used accounting %d != actual %d", f.used, used)
	}
	if seen != len(f.byOff) {
		return fmt.Errorf("alloc: index has %d entries, list has %d allocated", len(f.byOff), seen)
	}
	return nil
}

// sortedOffsets returns the allocated offsets in ascending order (testing
// helper shared with the buddy allocator).
func sortedOffsets[V any](m map[int64]V) []int64 {
	out := make([]int64, 0, len(m))
	for off := range m {
		out = append(out, off)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
