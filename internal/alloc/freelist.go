package alloc

import (
	"fmt"
	"sort"
)

// Fit selects the free-block search strategy of a FreeList.
type Fit int

const (
	// FirstFit takes the lowest-addressed free block that fits. Cheap
	// and keeps allocations dense at low addresses.
	FirstFit Fit = iota
	// BestFit takes the smallest free block that fits, reducing external
	// fragmentation for mixed-size workloads.
	BestFit
)

func (f Fit) String() string {
	switch f {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	default:
		return fmt.Sprintf("Fit(%d)", int(f))
	}
}

// block is one node in the address-ordered block list. The list always
// covers [0, capacity) exactly, alternating allocated and (coalesced) free
// blocks — two free blocks are never adjacent.
//
// Every block is additionally a node of the offset treap (left/right),
// and every free block a node of the size treap (sizeLeft/sizeRight); see
// the index commentary on FreeList.
type block struct {
	off, size  int64
	free       bool
	prev, next *block

	// Offset-treap node state. Keyed by off, heap-ordered by prio,
	// augmented with maxFree: the largest free-block size in the
	// subtree rooted here (0 if the subtree holds no free block).
	left, right *block
	prio        uint64
	maxFree     int64

	// Size-treap node state (free blocks only). Keyed by (size, off),
	// heap-ordered by the same prio.
	sizeLeft, sizeRight *block
}

// FreeList is an address-ordered free-list allocator with eager coalescing,
// configurable fit strategy, and compaction. It is the default heap
// allocator of the CachedArrays data manager.
//
// The block list is the source of truth for coalescing and iteration
// order, but every lookup the hot paths need is served by an index kept
// in lockstep with it:
//
//   - an offset treap over all blocks, augmented with the largest free
//     size per subtree — FirstFit Alloc descends it in O(log n) and
//     still returns the exact block a head-to-tail scan would (the
//     lowest-addressed fit), BlocksIn starts at the block containing
//     the range start instead of scanning from head, and LargestFree
//     is the root's augmentation, read in O(1);
//   - a (size, offset) treap over free blocks — BestFit Alloc takes its
//     ceiling in O(log n), again matching the scan's choice exactly
//     (smallest fit, lowest address on ties).
//
// Treap priorities are a deterministic hash of the block offset, so the
// index shape — and therefore every allocation decision — is a pure
// function of the block set: indexing changes no simulated result.
type FreeList struct {
	capacity int64
	align    int64
	fit      Fit
	head     *block
	byOff    map[int64]*block // allocated blocks, keyed by offset
	used     int64
	root     *block // offset treap over all blocks
	sizeRoot *block // size treap over free blocks
}

var (
	_ Allocator = (*FreeList)(nil)
	_ Compactor = (*FreeList)(nil)
)

// NewFreeList creates a free-list allocator over a heap of the given
// capacity with 64-byte block alignment.
func NewFreeList(capacity int64, fit Fit) *FreeList {
	if capacity < 0 {
		panic(fmt.Sprintf("alloc: negative capacity %d", capacity))
	}
	f := &FreeList{capacity: capacity, align: defaultAlign, fit: fit}
	f.Reset()
	return f
}

// Reset empties the allocator.
func (f *FreeList) Reset() {
	f.byOff = make(map[int64]*block)
	f.used = 0
	f.root, f.sizeRoot = nil, nil
	if f.capacity == 0 {
		f.head = nil
		return
	}
	f.head = &block{off: 0, size: f.capacity, free: true}
	f.indexInsert(f.head)
}

// Capacity returns the heap size.
func (f *FreeList) Capacity() int64 { return f.capacity }

// Used returns bytes held by allocated blocks (after alignment rounding).
func (f *FreeList) Used() int64 { return f.used }

// FreeBytes returns the unallocated byte count.
func (f *FreeList) FreeBytes() int64 { return f.capacity - f.used }

// LargestFree returns the largest contiguous free block size. It is the
// offset treap root's augmentation — O(1), kept current by every
// split/coalesce instead of recomputed by a full scan.
func (f *FreeList) LargestFree() int64 {
	if f.root == nil {
		return 0
	}
	return f.root.maxFree
}

// Alloc reserves size bytes (rounded up to the alignment) and returns the
// block offset, or ErrExhausted.
func (f *FreeList) Alloc(size int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("alloc: invalid allocation size %d", size)
	}
	need := alignUp(size, f.align)
	var chosen *block
	if f.fit == FirstFit {
		chosen = treapFirstFit(f.root, need)
	} else {
		chosen = treapBestFit(f.sizeRoot, need)
	}
	if chosen == nil {
		return 0, ErrExhausted
	}
	f.sizeRoot = sizeTreapRemove(f.sizeRoot, chosen)
	if chosen.size > need {
		// Split: the tail stays free.
		tail := &block{off: chosen.off + need, size: chosen.size - need, free: true,
			prev: chosen, next: chosen.next}
		if chosen.next != nil {
			chosen.next.prev = tail
		}
		chosen.next = tail
		chosen.size = need
		f.indexInsert(tail)
	}
	chosen.free = false
	treapRefresh(f.root, chosen.off)
	f.byOff[chosen.off] = chosen
	f.used += chosen.size
	return chosen.off, nil
}

// Free releases the block at offset, coalescing with free neighbours.
func (f *FreeList) Free(offset int64) {
	b, ok := f.byOff[offset]
	if !ok {
		panic(fmt.Sprintf("alloc: free of unknown offset %d", offset))
	}
	delete(f.byOff, offset)
	f.used -= b.size
	b.free = true
	// Coalesce with next, then prev. The absorbed block leaves both
	// treaps; the absorbing block's size change re-keys it in the size
	// treap and refreshes its offset-treap path.
	if n := b.next; n != nil && n.free {
		f.indexRemove(n)
		b.size += n.size
		b.next = n.next
		if n.next != nil {
			n.next.prev = b
		}
	}
	if p := b.prev; p != nil && p.free {
		f.root = treapRemove(f.root, b.off)
		f.sizeRoot = sizeTreapRemove(f.sizeRoot, p)
		p.size += b.size
		f.sizeRoot = sizeTreapInsert(f.sizeRoot, p)
		treapRefresh(f.root, p.off)
		p.next = b.next
		if b.next != nil {
			b.next.prev = p
		}
		return
	}
	f.sizeRoot = sizeTreapInsert(f.sizeRoot, b)
	treapRefresh(f.root, b.off)
}

// SizeOf returns the (aligned) size of the allocated block at offset.
func (f *FreeList) SizeOf(offset int64) int64 {
	b, ok := f.byOff[offset]
	if !ok {
		panic(fmt.Sprintf("alloc: SizeOf of unknown offset %d", offset))
	}
	return b.size
}

// Blocks iterates allocated blocks in address order.
func (f *FreeList) Blocks(fn func(offset, size int64) bool) {
	for b := f.head; b != nil; b = b.next {
		if b.free {
			continue
		}
		if !fn(b.off, b.size) {
			return
		}
	}
}

// BlocksIn iterates allocated blocks overlapping [start, start+length).
// The offset treap locates the block containing start, so the walk covers
// only the range itself instead of scanning from head.
func (f *FreeList) BlocksIn(start, length int64, fn func(offset, size int64) bool) {
	end := start + length
	b := treapFloor(f.root, start)
	if b == nil {
		b = f.head
	}
	for ; b != nil; b = b.next {
		if b.off >= end {
			return
		}
		if b.free || b.off+b.size <= start {
			continue
		}
		if !fn(b.off, b.size) {
			return
		}
	}
}

// Compact slides all allocated blocks to the bottom of the heap in address
// order. The move callback must relocate the owner's data before the next
// call (block moves never overlap destructively because compaction only
// moves blocks downward).
func (f *FreeList) Compact(move func(oldOffset, newOffset, size int64)) {
	var cursor int64
	var blocks []*block
	for b := f.head; b != nil; b = b.next {
		if !b.free {
			blocks = append(blocks, b)
		}
	}
	// Rebuild the list from scratch: allocated blocks packed at the
	// bottom, one free block on top.
	var head, tail *block
	appendBlock := func(nb *block) {
		if tail == nil {
			head, tail = nb, nb
			return
		}
		tail.next = nb
		nb.prev = tail
		tail = nb
	}
	for _, b := range blocks {
		old := b.off
		if old != cursor && move != nil {
			move(old, cursor, b.size)
		}
		delete(f.byOff, old)
		nb := &block{off: cursor, size: b.size}
		f.byOff[cursor] = nb
		appendBlock(nb)
		cursor += b.size
	}
	if cursor < f.capacity {
		appendBlock(&block{off: cursor, size: f.capacity - cursor, free: true})
	}
	f.head = head
	if f.capacity == 0 {
		f.head = nil
	}
	f.rebuildIndex()
}

// rebuildIndex reconstructs both treaps from the block list (after a
// wholesale rebuild like Compact).
func (f *FreeList) rebuildIndex() {
	f.root, f.sizeRoot = nil, nil
	for b := f.head; b != nil; b = b.next {
		b.left, b.right, b.sizeLeft, b.sizeRight = nil, nil, nil, nil
		f.indexInsert(b)
	}
}

// indexInsert adds a block to the offset treap and, if free, the size
// treap. The block's treap links must be clear.
func (f *FreeList) indexInsert(b *block) {
	b.prio = blockPrio(b.off)
	f.root = treapInsert(f.root, b)
	if b.free {
		f.sizeRoot = sizeTreapInsert(f.sizeRoot, b)
	}
}

// indexRemove deletes a block from both treaps (size treap only if free).
func (f *FreeList) indexRemove(b *block) {
	if b.free {
		f.sizeRoot = sizeTreapRemove(f.sizeRoot, b)
	}
	f.root = treapRemove(f.root, b.off)
}

// FragmentationRatio returns 1 - LargestFree/FreeBytes: 0 when all free
// space is contiguous, approaching 1 as it shatters. Returns 0 for a full
// or empty-free heap.
func (f *FreeList) FragmentationRatio() float64 {
	free := f.FreeBytes()
	if free == 0 {
		return 0
	}
	return 1 - float64(f.LargestFree())/float64(free)
}

// CheckInvariants validates the block list: exact coverage of
// [0, capacity), no adjacent free blocks, consistent links, byOff matching
// the allocated set, used-byte accounting, and both treap indexes agreeing
// with the list.
func (f *FreeList) CheckInvariants() error {
	if f.capacity == 0 {
		if f.head != nil || len(f.byOff) != 0 || f.used != 0 || f.root != nil || f.sizeRoot != nil {
			return fmt.Errorf("alloc: zero-capacity heap has state")
		}
		return nil
	}
	var cursor, used, largest int64
	seen, total, freeBlocks := 0, 0, 0
	prevFree := false
	var prev *block
	for b := f.head; b != nil; b = b.next {
		if b.prev != prev {
			return fmt.Errorf("alloc: broken prev link at offset %d", b.off)
		}
		if b.off != cursor {
			return fmt.Errorf("alloc: gap or overlap at offset %d (expected %d)", b.off, cursor)
		}
		if b.size <= 0 {
			return fmt.Errorf("alloc: non-positive block size %d at offset %d", b.size, b.off)
		}
		if b.free && prevFree {
			return fmt.Errorf("alloc: adjacent free blocks at offset %d", b.off)
		}
		if !b.free {
			used += b.size
			got, ok := f.byOff[b.off]
			if !ok || got != b {
				return fmt.Errorf("alloc: allocated block at %d missing from index", b.off)
			}
			seen++
		} else {
			freeBlocks++
			if b.size > largest {
				largest = b.size
			}
		}
		prevFree = b.free
		cursor += b.size
		prev = b
		total++
	}
	if cursor != f.capacity {
		return fmt.Errorf("alloc: blocks cover %d bytes, capacity %d", cursor, f.capacity)
	}
	if used != f.used {
		return fmt.Errorf("alloc: used accounting %d != actual %d", f.used, used)
	}
	if seen != len(f.byOff) {
		return fmt.Errorf("alloc: index has %d entries, list has %d allocated", len(f.byOff), seen)
	}
	if got := f.LargestFree(); got != largest {
		return fmt.Errorf("alloc: cached largest free %d != scanned %d", got, largest)
	}
	return f.checkTreaps(total, freeBlocks)
}

// checkTreaps validates both treaps against the block list: in-order
// traversals match the list's blocks (all blocks for the offset treap,
// free blocks in (size, offset) order for the size treap), heap priority
// order holds, and the maxFree augmentation is exact at every node.
func (f *FreeList) checkTreaps(total, freeBlocks int) error {
	count := 0
	expect := f.head
	var err error
	var walk func(b *block) int64
	walk = func(b *block) int64 {
		if b == nil || err != nil {
			return 0
		}
		lmax := walk(b.left)
		if err == nil {
			count++
			if expect == nil || expect != b {
				err = fmt.Errorf("alloc: offset treap order diverges from list at offset %d", b.off)
				return 0
			}
			expect = expect.next
		}
		if err == nil && b.left != nil && b.left.prio > b.prio {
			err = fmt.Errorf("alloc: offset treap heap violation at offset %d", b.off)
		}
		if err == nil && b.right != nil && b.right.prio > b.prio {
			err = fmt.Errorf("alloc: offset treap heap violation at offset %d", b.off)
		}
		rmax := walk(b.right)
		max := lmax
		if rmax > max {
			max = rmax
		}
		if b.free && b.size > max {
			max = b.size
		}
		if err == nil && b.maxFree != max {
			err = fmt.Errorf("alloc: offset treap maxFree %d != actual %d at offset %d",
				b.maxFree, max, b.off)
		}
		return max
	}
	walk(f.root)
	if err != nil {
		return err
	}
	if count != total {
		return fmt.Errorf("alloc: offset treap has %d nodes, list has %d blocks", count, total)
	}
	scount := 0
	var sprev *block
	var swalk func(b *block)
	swalk = func(b *block) {
		if b == nil || err != nil {
			return
		}
		swalk(b.sizeLeft)
		if err == nil {
			scount++
			if !b.free {
				err = fmt.Errorf("alloc: allocated block at %d in size treap", b.off)
				return
			}
			if sprev != nil && !sizeLess(sprev, b) {
				err = fmt.Errorf("alloc: size treap out of order at offset %d", b.off)
				return
			}
			sprev = b
		}
		if err == nil && b.sizeLeft != nil && b.sizeLeft.prio > b.prio {
			err = fmt.Errorf("alloc: size treap heap violation at offset %d", b.off)
		}
		if err == nil && b.sizeRight != nil && b.sizeRight.prio > b.prio {
			err = fmt.Errorf("alloc: size treap heap violation at offset %d", b.off)
		}
		swalk(b.sizeRight)
	}
	swalk(f.sizeRoot)
	if err != nil {
		return err
	}
	if scount != freeBlocks {
		return fmt.Errorf("alloc: size treap has %d nodes, list has %d free blocks", scount, freeBlocks)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Offset treap: all blocks, keyed by offset, augmented with the largest
// free size per subtree.

// blockPrio derives a deterministic treap priority from a block offset
// (splitmix64 finalizer), so the index shape is a pure function of the
// block set and results are reproducible run to run.
func blockPrio(off int64) uint64 {
	z := uint64(off) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// treapPull recomputes b's maxFree from its children and own state.
func treapPull(b *block) {
	max := int64(0)
	if b.free {
		max = b.size
	}
	if b.left != nil && b.left.maxFree > max {
		max = b.left.maxFree
	}
	if b.right != nil && b.right.maxFree > max {
		max = b.right.maxFree
	}
	b.maxFree = max
}

func treapRotateRight(t *block) *block {
	l := t.left
	t.left = l.right
	l.right = t
	treapPull(t)
	treapPull(l)
	return l
}

func treapRotateLeft(t *block) *block {
	r := t.right
	t.right = r.left
	r.left = t
	treapPull(t)
	treapPull(r)
	return r
}

func treapInsert(t, b *block) *block {
	if t == nil {
		treapPull(b)
		return b
	}
	if b.off < t.off {
		t.left = treapInsert(t.left, b)
		if t.left.prio > t.prio {
			return treapRotateRight(t)
		}
	} else {
		t.right = treapInsert(t.right, b)
		if t.right.prio > t.prio {
			return treapRotateLeft(t)
		}
	}
	treapPull(t)
	return t
}

func treapMerge(a, b *block) *block {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio > b.prio {
		a.right = treapMerge(a.right, b)
		treapPull(a)
		return a
	}
	b.left = treapMerge(a, b.left)
	treapPull(b)
	return b
}

func treapRemove(t *block, off int64) *block {
	if t == nil {
		panic(fmt.Sprintf("alloc: offset treap remove of unknown offset %d", off))
	}
	switch {
	case off < t.off:
		t.left = treapRemove(t.left, off)
	case off > t.off:
		t.right = treapRemove(t.right, off)
	default:
		merged := treapMerge(t.left, t.right)
		t.left, t.right = nil, nil
		return merged
	}
	treapPull(t)
	return t
}

// treapRefresh recomputes maxFree along the search path to off after an
// in-place change to that block's size or free flag.
func treapRefresh(t *block, off int64) {
	if t == nil {
		return
	}
	if off < t.off {
		treapRefresh(t.left, off)
	} else if off > t.off {
		treapRefresh(t.right, off)
	}
	treapPull(t)
}

// treapFirstFit returns the lowest-offset free block with size >= need —
// exactly the block a head-to-tail first-fit scan would pick.
func treapFirstFit(t *block, need int64) *block {
	for t != nil {
		if t.left != nil && t.left.maxFree >= need {
			t = t.left
			continue
		}
		if t.free && t.size >= need {
			return t
		}
		if t.right == nil || t.right.maxFree < need {
			return nil
		}
		t = t.right
	}
	return nil
}

// treapFloor returns the block with the largest offset <= off, or nil.
// Because blocks tile the heap, this is the block containing off.
func treapFloor(t *block, off int64) *block {
	var floor *block
	for t != nil {
		if t.off <= off {
			floor = t
			t = t.right
		} else {
			t = t.left
		}
	}
	return floor
}

// ---------------------------------------------------------------------------
// Size treap: free blocks, keyed by (size, offset).

// sizeLess orders free blocks by (size, offset) — the best-fit scan's
// preference: smallest fit first, lowest address on ties.
func sizeLess(a, b *block) bool {
	return a.size < b.size || (a.size == b.size && a.off < b.off)
}

func sizeTreapRotateRight(t *block) *block {
	l := t.sizeLeft
	t.sizeLeft = l.sizeRight
	l.sizeRight = t
	return l
}

func sizeTreapRotateLeft(t *block) *block {
	r := t.sizeRight
	t.sizeRight = r.sizeLeft
	r.sizeLeft = t
	return r
}

func sizeTreapInsert(t, b *block) *block {
	if t == nil {
		return b
	}
	if sizeLess(b, t) {
		t.sizeLeft = sizeTreapInsert(t.sizeLeft, b)
		if t.sizeLeft.prio > t.prio {
			return sizeTreapRotateRight(t)
		}
	} else {
		t.sizeRight = sizeTreapInsert(t.sizeRight, b)
		if t.sizeRight.prio > t.prio {
			return sizeTreapRotateLeft(t)
		}
	}
	return t
}

func sizeTreapMerge(a, b *block) *block {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio > b.prio {
		a.sizeRight = sizeTreapMerge(a.sizeRight, b)
		return a
	}
	b.sizeLeft = sizeTreapMerge(a, b.sizeLeft)
	return b
}

// sizeTreapRemove deletes b from the size treap. b's (size, off) key must
// be unchanged since insertion; callers re-key a resizing block by
// removing it before the size change and reinserting after.
func sizeTreapRemove(t, b *block) *block {
	if t == nil {
		panic(fmt.Sprintf("alloc: size treap remove of unknown block at %d", b.off))
	}
	if t == b {
		merged := sizeTreapMerge(t.sizeLeft, t.sizeRight)
		t.sizeLeft, t.sizeRight = nil, nil
		return merged
	}
	if sizeLess(b, t) {
		t.sizeLeft = sizeTreapRemove(t.sizeLeft, b)
	} else {
		t.sizeRight = sizeTreapRemove(t.sizeRight, b)
	}
	return t
}

// treapBestFit returns the free block with the smallest (size, offset)
// key among those with size >= need — exactly the block an address-order
// best-fit scan would pick.
func treapBestFit(t *block, need int64) *block {
	var best *block
	for t != nil {
		if t.size >= need {
			best = t
			t = t.sizeLeft
		} else {
			t = t.sizeRight
		}
	}
	return best
}

// sortedOffsets returns the allocated offsets in ascending order (testing
// helper shared with the buddy allocator).
func sortedOffsets[V any](m map[int64]V) []int64 {
	out := make([]int64, 0, len(m))
	for off := range m {
		out = append(out, off)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
