package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// runEquivalenceTrace drives the indexed FreeList and the seed-scan
// Reference through one identical random alloc/free/query trace and
// fails on the first observable divergence. The indexed allocator must
// be indistinguishable: same offsets from Alloc, same errors, same
// statistics, same BlocksIn visit order.
func runEquivalenceTrace(t *testing.T, fit Fit, seed int64, ops int) {
	t.Helper()
	const capacity = 1 << 20
	fl := NewFreeList(capacity, fit)
	ref := NewReference(capacity, fit)
	rng := rand.New(rand.NewSource(seed))
	var live []int64

	compare := func(step int) {
		if fl.Used() != ref.Used() || fl.FreeBytes() != ref.FreeBytes() {
			t.Fatalf("step %d: used/free diverged: indexed (%d, %d) vs reference (%d, %d)",
				step, fl.Used(), fl.FreeBytes(), ref.Used(), ref.FreeBytes())
		}
		if fl.LargestFree() != ref.LargestFree() {
			t.Fatalf("step %d: LargestFree diverged: indexed %d vs reference %d",
				step, fl.LargestFree(), ref.LargestFree())
		}
		if fl.FragmentationRatio() != ref.FragmentationRatio() {
			t.Fatalf("step %d: FragmentationRatio diverged: indexed %v vs reference %v",
				step, fl.FragmentationRatio(), ref.FragmentationRatio())
		}
	}

	for step := 0; step < ops; step++ {
		switch op := rng.Intn(10); {
		case op < 6 || len(live) == 0: // alloc, biased so the heap fills up
			size := 1 + rng.Int63n(8<<10)
			got, gotErr := fl.Alloc(size)
			want, wantErr := ref.Alloc(size)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("step %d: Alloc(%d) errors diverged: indexed %v vs reference %v",
					step, size, gotErr, wantErr)
			}
			if gotErr == nil {
				if got != want {
					t.Fatalf("step %d: Alloc(%d) offsets diverged: indexed %d vs reference %d",
						step, size, got, want)
				}
				if fl.SizeOf(got) != ref.SizeOf(want) {
					t.Fatalf("step %d: SizeOf(%d) diverged: indexed %d vs reference %d",
						step, got, fl.SizeOf(got), ref.SizeOf(want))
				}
				live = append(live, got)
			}
		case op < 9: // free a random live block
			i := rng.Intn(len(live))
			off := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			fl.Free(off)
			ref.Free(off)
		default: // window query: identical visit sequences
			start := rng.Int63n(capacity)
			length := 1 + rng.Int63n(capacity-start)
			type span struct{ off, size int64 }
			var a, b []span
			fl.BlocksIn(start, length, func(off, size int64) bool {
				a = append(a, span{off, size})
				return true
			})
			ref.BlocksIn(start, length, func(off, size int64) bool {
				b = append(b, span{off, size})
				return true
			})
			if len(a) != len(b) {
				t.Fatalf("step %d: BlocksIn(%d,%d) visited %d vs %d blocks",
					step, start, length, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("step %d: BlocksIn(%d,%d) visit %d diverged: %+v vs %+v",
						step, start, length, i, a[i], b[i])
				}
			}
		}
		compare(step)
		if err := fl.CheckInvariants(); err != nil {
			t.Fatalf("step %d: indexed invariants: %v", step, err)
		}
		if err := ref.CheckInvariants(); err != nil {
			t.Fatalf("step %d: reference invariants: %v", step, err)
		}
	}
	// Drain everything: the final coalesce chain must also agree.
	for _, off := range live {
		fl.Free(off)
		ref.Free(off)
	}
	compare(ops)
	if fl.Used() != 0 || fl.LargestFree() != capacity {
		t.Fatalf("drained heap: used %d, largest free %d", fl.Used(), fl.LargestFree())
	}
}

// TestFreeListMatchesReferenceQuick is the headline equivalence property:
// for randomly seeded traces, the treap-indexed free list behaves exactly
// like the seed O(n)-scan allocator under both fit policies.
func TestFreeListMatchesReferenceQuick(t *testing.T) {
	for _, fit := range []Fit{FirstFit, BestFit} {
		t.Run(fit.String(), func(t *testing.T) {
			prop := func(seed int64) bool {
				runEquivalenceTrace(t, fit, seed, 300)
				return !t.Failed()
			}
			cfg := &quick.Config{MaxCount: 12}
			if testing.Short() {
				cfg.MaxCount = 3
			}
			if err := quick.Check(prop, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFreeListMatchesReferenceLongTrace runs one long fixed-seed trace so
// deep fragmentation (thousands of steps of churn) is exercised even when
// quick keeps its traces short.
func TestFreeListMatchesReferenceLongTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("long trace skipped in -short mode")
	}
	runEquivalenceTrace(t, FirstFit, 42, 3000)
	runEquivalenceTrace(t, BestFit, 1337, 3000)
}
