package alloc

import "fmt"

// Reference is the seed free-list allocator kept verbatim as an
// equivalence baseline: Alloc scans the address-ordered block list from
// head on every call (O(blocks)), and LargestFree rescans it. The
// property tests drive Reference and FreeList with identical traces and
// require identical offsets and statistics; the hot-path benchmarks
// measure the indexed allocator's speedup against it. It is not used by
// the simulator itself.
type Reference struct {
	capacity int64
	align    int64
	fit      Fit
	head     *refBlock
	byOff    map[int64]*refBlock
	used     int64
}

type refBlock struct {
	off, size  int64
	free       bool
	prev, next *refBlock
}

var _ Allocator = (*Reference)(nil)

// NewReference creates the scan-based baseline allocator over a heap of
// the given capacity with 64-byte block alignment.
func NewReference(capacity int64, fit Fit) *Reference {
	if capacity < 0 {
		panic(fmt.Sprintf("alloc: negative capacity %d", capacity))
	}
	r := &Reference{capacity: capacity, align: defaultAlign, fit: fit}
	r.Reset()
	return r
}

// Reset empties the allocator.
func (f *Reference) Reset() {
	f.byOff = make(map[int64]*refBlock)
	f.used = 0
	if f.capacity == 0 {
		f.head = nil
		return
	}
	f.head = &refBlock{off: 0, size: f.capacity, free: true}
}

// Capacity returns the heap size.
func (f *Reference) Capacity() int64 { return f.capacity }

// Used returns bytes held by allocated blocks.
func (f *Reference) Used() int64 { return f.used }

// FreeBytes returns the unallocated byte count.
func (f *Reference) FreeBytes() int64 { return f.capacity - f.used }

// LargestFree returns the largest contiguous free block size by scanning
// the whole block list.
func (f *Reference) LargestFree() int64 {
	var max int64
	for b := f.head; b != nil; b = b.next {
		if b.free && b.size > max {
			max = b.size
		}
	}
	return max
}

// Alloc reserves size bytes with a head-to-tail first-fit or best-fit
// scan — the behaviour the indexed allocator must reproduce exactly.
func (f *Reference) Alloc(size int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("alloc: invalid allocation size %d", size)
	}
	need := alignUp(size, f.align)
	var chosen *refBlock
	for b := f.head; b != nil; b = b.next {
		if !b.free || b.size < need {
			continue
		}
		if f.fit == FirstFit {
			chosen = b
			break
		}
		if chosen == nil || b.size < chosen.size {
			chosen = b
		}
	}
	if chosen == nil {
		return 0, ErrExhausted
	}
	if chosen.size > need {
		tail := &refBlock{off: chosen.off + need, size: chosen.size - need, free: true,
			prev: chosen, next: chosen.next}
		if chosen.next != nil {
			chosen.next.prev = tail
		}
		chosen.next = tail
		chosen.size = need
	}
	chosen.free = false
	f.byOff[chosen.off] = chosen
	f.used += chosen.size
	return chosen.off, nil
}

// Free releases the block at offset, coalescing with free neighbours.
func (f *Reference) Free(offset int64) {
	b, ok := f.byOff[offset]
	if !ok {
		panic(fmt.Sprintf("alloc: free of unknown offset %d", offset))
	}
	delete(f.byOff, offset)
	f.used -= b.size
	b.free = true
	if n := b.next; n != nil && n.free {
		b.size += n.size
		b.next = n.next
		if n.next != nil {
			n.next.prev = b
		}
	}
	if p := b.prev; p != nil && p.free {
		p.size += b.size
		p.next = b.next
		if b.next != nil {
			b.next.prev = p
		}
	}
}

// SizeOf returns the (aligned) size of the allocated block at offset.
func (f *Reference) SizeOf(offset int64) int64 {
	b, ok := f.byOff[offset]
	if !ok {
		panic(fmt.Sprintf("alloc: SizeOf of unknown offset %d", offset))
	}
	return b.size
}

// Blocks iterates allocated blocks in address order.
func (f *Reference) Blocks(fn func(offset, size int64) bool) {
	for b := f.head; b != nil; b = b.next {
		if b.free {
			continue
		}
		if !fn(b.off, b.size) {
			return
		}
	}
}

// BlocksIn iterates allocated blocks overlapping [start, start+length),
// scanning from head.
func (f *Reference) BlocksIn(start, length int64, fn func(offset, size int64) bool) {
	end := start + length
	for b := f.head; b != nil; b = b.next {
		if b.off >= end {
			return
		}
		if b.free || b.off+b.size <= start {
			continue
		}
		if !fn(b.off, b.size) {
			return
		}
	}
}

// FragmentationRatio returns 1 - LargestFree/FreeBytes.
func (f *Reference) FragmentationRatio() float64 {
	free := f.FreeBytes()
	if free == 0 {
		return 0
	}
	return 1 - float64(f.LargestFree())/float64(free)
}

// CheckInvariants validates the block list.
func (f *Reference) CheckInvariants() error {
	if f.capacity == 0 {
		if f.head != nil || len(f.byOff) != 0 || f.used != 0 {
			return fmt.Errorf("alloc: zero-capacity heap has state")
		}
		return nil
	}
	var cursor, used int64
	seen := 0
	prevFree := false
	var prev *refBlock
	for b := f.head; b != nil; b = b.next {
		if b.prev != prev {
			return fmt.Errorf("alloc: broken prev link at offset %d", b.off)
		}
		if b.off != cursor {
			return fmt.Errorf("alloc: gap or overlap at offset %d (expected %d)", b.off, cursor)
		}
		if b.size <= 0 {
			return fmt.Errorf("alloc: non-positive block size %d at offset %d", b.size, b.off)
		}
		if b.free && prevFree {
			return fmt.Errorf("alloc: adjacent free blocks at offset %d", b.off)
		}
		if !b.free {
			used += b.size
			got, ok := f.byOff[b.off]
			if !ok || got != b {
				return fmt.Errorf("alloc: allocated block at %d missing from index", b.off)
			}
			seen++
		}
		prevFree = b.free
		cursor += b.size
		prev = b
	}
	if cursor != f.capacity {
		return fmt.Errorf("alloc: blocks cover %d bytes, capacity %d", cursor, f.capacity)
	}
	if used != f.used {
		return fmt.Errorf("alloc: used accounting %d != actual %d", f.used, used)
	}
	if seen != len(f.byOff) {
		return fmt.Errorf("alloc: index has %d entries, list has %d allocated", len(f.byOff), seen)
	}
	return nil
}
