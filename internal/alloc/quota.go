package alloc

import "fmt"

// Quota is a shared byte budget arbitrating one device's capacity between
// several allocators. The cluster simulator gives every tenant a private
// allocator (its own address space, its own region index) but wires all of
// them to one Quota per tier, so the *aggregate* bytes the tenants hold can
// never exceed the device — the multi-tenant generalization of the single
// pre-allocated heap.
//
// A Quota is not safe for concurrent use: the cluster's event loop runs
// tenants one at a time under a single virtual clock, which is also what
// keeps runs deterministic.
type Quota struct {
	capacity int64
	used     int64
	// rejections / rejectedBytes count Alloc attempts the budget refused
	// — the cluster's per-tier contention signal (a tenant squeezed by
	// its neighbours shows up here before it shows up as evictions).
	rejections    int64
	rejectedBytes int64
}

// NewQuota builds a budget of capacity bytes.
func NewQuota(capacity int64) *Quota {
	if capacity < 0 {
		capacity = 0
	}
	return &Quota{capacity: capacity}
}

// Capacity returns the budget.
func (q *Quota) Capacity() int64 { return q.capacity }

// Used returns the bytes currently reserved across all sharing allocators.
func (q *Quota) Used() int64 { return q.used }

// Avail returns the bytes still reservable.
func (q *Quota) Avail() int64 { return q.capacity - q.used }

// Rejections returns the number of Alloc attempts the budget refused.
func (q *Quota) Rejections() int64 { return q.rejections }

// RejectedBytes returns the total size of refused Alloc attempts.
func (q *Quota) RejectedBytes() int64 { return q.rejectedBytes }

// reject records one refused allocation of n bytes.
func (q *Quota) reject(n int64) {
	q.rejections++
	q.rejectedBytes += n
}

// reserve takes n bytes from the budget, reporting false (and reserving
// nothing) when fewer than n are available.
func (q *Quota) reserve(n int64) bool {
	if q.used+n > q.capacity {
		return false
	}
	q.used += n
	return true
}

// release returns n bytes to the budget.
func (q *Quota) release(n int64) {
	q.used -= n
	if q.used < 0 {
		panic(fmt.Sprintf("alloc: quota released below zero (%d)", q.used))
	}
}

// Limited wraps an allocator with a shared Quota: Alloc additionally
// reserves the block's (rounded) size from the budget and fails with
// ErrExhausted when the budget cannot cover it — exactly the signal a full
// tier produces, so the policy layer evicts or degrades to slow placement
// with no new code paths. Free and Reset return the reservation.
//
// Capacity/Used/FreeBytes report the *inner* allocator's numbers: the
// per-allocator conservation law (used + free == capacity) that the
// invariants auditor enforces keeps holding per tenant; the cross-tenant
// budget is the Quota's own accounting.
type Limited struct {
	inner   Allocator
	quota   *Quota
	charged int64
}

// Limit wraps a with the shared quota (nil quota returns a unchanged).
// When the inner allocator supports compaction the wrapper does too —
// compaction moves blocks without changing their sizes, so the budget is
// untouched.
func Limit(a Allocator, q *Quota) Allocator {
	if q == nil {
		return a
	}
	l := &Limited{inner: a, quota: q}
	if _, ok := a.(Compactor); ok {
		return &limitedCompactor{l}
	}
	return l
}

// Alloc reserves from the budget, then from the inner allocator. The
// budget charge is the inner allocator's rounded block size, so quota
// accounting matches heap accounting exactly.
func (l *Limited) Alloc(size int64) (int64, error) {
	if size > l.quota.Avail() {
		l.quota.reject(size)
		return 0, ErrExhausted
	}
	off, err := l.inner.Alloc(size)
	if err != nil {
		return 0, err
	}
	actual := l.inner.SizeOf(off)
	if !l.quota.reserve(actual) {
		l.inner.Free(off)
		l.quota.reject(actual)
		return 0, ErrExhausted
	}
	l.charged += actual
	return off, nil
}

// Free releases the block and returns its reservation to the budget.
func (l *Limited) Free(offset int64) {
	actual := l.inner.SizeOf(offset)
	l.inner.Free(offset)
	l.quota.release(actual)
	l.charged -= actual
}

// Reset empties the allocator and refunds everything it had reserved.
func (l *Limited) Reset() {
	l.inner.Reset()
	l.quota.release(l.charged)
	l.charged = 0
}

// CheckInvariants validates the inner allocator and the quota bookkeeping:
// the wrapper's cumulative charge must equal the inner allocator's used
// bytes, and no quota can run past its budget.
func (l *Limited) CheckInvariants() error {
	if err := l.inner.CheckInvariants(); err != nil {
		return err
	}
	if l.charged != l.inner.Used() {
		return fmt.Errorf("alloc: quota charge %d != inner used %d", l.charged, l.inner.Used())
	}
	if l.quota.used > l.quota.capacity {
		return fmt.Errorf("alloc: quota overcommitted: used %d > capacity %d", l.quota.used, l.quota.capacity)
	}
	if l.quota.used < 0 {
		return fmt.Errorf("alloc: quota used negative: %d", l.quota.used)
	}
	return nil
}

// The rest of the interface delegates.

func (l *Limited) SizeOf(offset int64) int64 { return l.inner.SizeOf(offset) }
func (l *Limited) Capacity() int64           { return l.inner.Capacity() }
func (l *Limited) Used() int64               { return l.inner.Used() }
func (l *Limited) FreeBytes() int64          { return l.inner.FreeBytes() }
func (l *Limited) LargestFree() int64        { return l.inner.LargestFree() }
func (l *Limited) Blocks(fn func(offset, size int64) bool) {
	l.inner.Blocks(fn)
}
func (l *Limited) BlocksIn(start, length int64, fn func(offset, size int64) bool) {
	l.inner.BlocksIn(start, length, fn)
}

// limitedCompactor adds Compact for inner allocators that support it; the
// split type keeps the Compactor assertion honest for those that do not.
type limitedCompactor struct {
	*Limited
}

func (l *limitedCompactor) Compact(move func(oldOffset, newOffset, size int64)) {
	l.inner.(Compactor).Compact(move)
}
