// Package alloc provides memory allocators over pre-allocated device heaps.
//
// The CachedArrays prototype "requires its underlying memory heaps to be
// preallocated from the operating system prior to execution" (§III-C): each
// device owns one big address space and the runtime carves objects out of
// it. This package implements that carving. Allocators deal purely in
// offsets within [0, Capacity) — the binding to real or simulated bytes
// happens one layer up, in the data manager.
//
// Two allocators are provided: an address-ordered first-fit/best-fit
// free-list allocator with eager coalescing and compaction (the default, a
// good match for the large variable-size tensors of CNN workloads), and a
// binary buddy allocator (lower fragmentation bookkeeping cost, internal
// fragmentation instead). Both support the address-ordered block iteration
// the data manager's evictfrom needs to free a *contiguous* range (paper
// Listing 2).
package alloc

import "errors"

// ErrExhausted is returned by Alloc when no suitable free block exists.
// Callers (the policy) react by evicting and retrying, so exhaustion is an
// expected condition, not a failure.
var ErrExhausted = errors.New("alloc: out of memory")

// Allocator is the interface shared by the heap allocators. Offsets are
// byte offsets into the device heap. Implementations are not safe for
// concurrent use; the data manager serializes access.
type Allocator interface {
	// Alloc reserves size bytes and returns the block's offset.
	// It returns ErrExhausted when no block fits.
	Alloc(size int64) (int64, error)
	// Free releases a block previously returned by Alloc. Freeing an
	// unknown offset panics: a double free in the data manager is a
	// state-machine bug that must not be papered over.
	Free(offset int64)
	// SizeOf returns the usable size of the allocated block at offset.
	SizeOf(offset int64) int64
	// Capacity is the total heap size.
	Capacity() int64
	// Used is the total bytes in allocated blocks (including any
	// rounding the allocator applied).
	Used() int64
	// FreeBytes is Capacity - Used.
	FreeBytes() int64
	// LargestFree is the size of the largest contiguous free block —
	// the largest allocation that can currently succeed.
	LargestFree() int64
	// Blocks calls fn for every allocated block in address order,
	// stopping early if fn returns false.
	Blocks(fn func(offset, size int64) bool)
	// BlocksIn calls fn for every allocated block overlapping
	// [start, start+length), in address order, stopping early if fn
	// returns false. This is the walk evictfrom performs.
	BlocksIn(start, length int64, fn func(offset, size int64) bool)
	// CheckInvariants validates internal consistency; it returns an
	// error describing the first violation found, or nil.
	CheckInvariants() error
	// Reset returns the allocator to its initial empty state.
	Reset()
}

// Compactor is implemented by allocators that support defragmentation. The
// paper defragments the local heap between training iterations (§IV-A).
type Compactor interface {
	// Compact slides allocated blocks toward offset zero in address
	// order. For each moved block it calls move(oldOffset, newOffset,
	// size) so the owner can relocate the data and fix its metadata.
	// After Compact all free space is one contiguous block at the top.
	Compact(move func(oldOffset, newOffset, size int64))
}

const defaultAlign = 64

// alignUp rounds n up to the next multiple of align (a power of two).
func alignUp(n, align int64) int64 {
	return (n + align - 1) &^ (align - 1)
}
