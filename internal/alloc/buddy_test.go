package alloc

import (
	"testing"
	"testing/quick"
)

func newBuddy(t *testing.T, capacity, minBlock int64) *Buddy {
	t.Helper()
	b, err := NewBuddy(capacity, minBlock)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBuddyConstructionErrors(t *testing.T) {
	cases := []struct{ capacity, minBlock int64 }{
		{1000, 64},  // capacity not power of two
		{1024, 100}, // min block not power of two
		{64, 128},   // capacity below min block
		{0, 64},     // zero capacity
		{-1024, 64}, // negative capacity
		{1024, -64}, // negative min block
	}
	for _, c := range cases {
		if _, err := NewBuddy(c.capacity, c.minBlock); err == nil {
			t.Errorf("NewBuddy(%d, %d) succeeded, want error", c.capacity, c.minBlock)
		}
	}
}

func TestBuddyDefaultMinBlock(t *testing.T) {
	b := newBuddy(t, 1<<20, 0)
	off := mustAlloc(t, b, 1)
	if b.SizeOf(off) != DefaultMinBlock {
		t.Errorf("min allocation = %d, want %d", b.SizeOf(off), DefaultMinBlock)
	}
}

func TestBuddyAllocRoundsToPowerOfTwo(t *testing.T) {
	b := newBuddy(t, 1<<20, 64)
	off := mustAlloc(t, b, 100)
	if b.SizeOf(off) != 128 {
		t.Errorf("100-byte alloc got %d, want 128", b.SizeOf(off))
	}
	off2 := mustAlloc(t, b, 128)
	if b.SizeOf(off2) != 128 {
		t.Errorf("exact-size alloc got %d", b.SizeOf(off2))
	}
	checkInv(t, b)
}

func TestBuddySplitAndMerge(t *testing.T) {
	b := newBuddy(t, 1024, 64)
	a1 := mustAlloc(t, b, 64)
	a2 := mustAlloc(t, b, 64)
	checkInv(t, b)
	if b.LargestFree() != 512 {
		t.Errorf("largest free after two 64B allocs = %d, want 512", b.LargestFree())
	}
	b.Free(a1)
	checkInv(t, b)
	// a2 still blocks full merge.
	if b.LargestFree() != 512 {
		t.Errorf("largest free = %d, want 512", b.LargestFree())
	}
	b.Free(a2)
	checkInv(t, b)
	if b.LargestFree() != 1024 {
		t.Errorf("buddies did not merge back: largest = %d", b.LargestFree())
	}
	if b.Used() != 0 {
		t.Errorf("Used = %d", b.Used())
	}
}

func TestBuddyExhaustion(t *testing.T) {
	b := newBuddy(t, 1024, 64)
	mustAlloc(t, b, 1024)
	if _, err := b.Alloc(64); err != ErrExhausted {
		t.Errorf("got %v, want ErrExhausted", err)
	}
	if _, err := b.Alloc(2048); err != ErrExhausted {
		t.Errorf("oversized alloc: got %v, want ErrExhausted", err)
	}
}

func TestBuddyRejectsBadSizes(t *testing.T) {
	b := newBuddy(t, 1024, 64)
	for _, sz := range []int64{0, -5} {
		if _, err := b.Alloc(sz); err == nil || err == ErrExhausted {
			t.Errorf("Alloc(%d) = %v", sz, err)
		}
	}
}

func TestBuddyDoubleFreePanics(t *testing.T) {
	b := newBuddy(t, 1024, 64)
	off := mustAlloc(t, b, 64)
	b.Free(off)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	b.Free(off)
}

func TestBuddyBlocksOrdered(t *testing.T) {
	b := newBuddy(t, 1<<16, 64)
	for i := 0; i < 8; i++ {
		mustAlloc(t, b, 64)
	}
	var prev int64 = -1
	n := 0
	b.Blocks(func(off, size int64) bool {
		if off <= prev {
			t.Errorf("blocks out of order: %d after %d", off, prev)
		}
		prev = off
		n++
		return true
	})
	if n != 8 {
		t.Errorf("visited %d blocks, want 8", n)
	}
}

func TestBuddyBlocksIn(t *testing.T) {
	b := newBuddy(t, 1<<16, 64)
	var offs []int64
	for i := 0; i < 8; i++ {
		offs = append(offs, mustAlloc(t, b, 64))
	}
	var got []int64
	b.BlocksIn(offs[2], 3*64, func(off, size int64) bool {
		got = append(got, off)
		return true
	})
	if len(got) != 3 || got[0] != offs[2] {
		t.Errorf("BlocksIn = %v", got)
	}
}

func TestBuddyRandomOps(t *testing.T) {
	opSequence(t, newBuddy(t, 1<<22, 64), 3, 2000, 1<<14)
}

func TestBuddyQuickInvariants(t *testing.T) {
	f := func(sizes []uint16, frees []uint8) bool {
		b, err := NewBuddy(1<<20, 64)
		if err != nil {
			return false
		}
		var offs []int64
		for _, s := range sizes {
			if off, err := b.Alloc(int64(s) + 1); err == nil {
				offs = append(offs, off)
			}
		}
		for _, idx := range frees {
			if len(offs) == 0 {
				break
			}
			i := int(idx) % len(offs)
			b.Free(offs[i])
			offs = append(offs[:i], offs[i+1:]...)
		}
		return b.CheckInvariants() == nil && b.Used()+b.FreeBytes() == b.Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestBuddyFullDrainRestoresOneBlock(t *testing.T) {
	b := newBuddy(t, 1<<18, 64)
	var offs []int64
	for {
		off, err := b.Alloc(64)
		if err != nil {
			break
		}
		offs = append(offs, off)
	}
	if int64(len(offs))*64 != b.Capacity() {
		t.Fatalf("allocated %d blocks, want %d", len(offs), b.Capacity()/64)
	}
	// Free in an order that exercises merging from both directions.
	for i := 0; i < len(offs); i += 2 {
		b.Free(offs[i])
	}
	for i := 1; i < len(offs); i += 2 {
		b.Free(offs[i])
	}
	checkInv(t, b)
	if b.LargestFree() != b.Capacity() {
		t.Errorf("did not merge to a single block: %d", b.LargestFree())
	}
}
