package alloc

import (
	"testing"
)

// FuzzAllocFreeSequence drives the indexed FreeList and the scan-based
// Reference allocator with the same operation sequence decoded from the
// fuzz input and requires them to stay observably identical: same offsets,
// same errors, same usage statistics, and both internally consistent at
// every step. The Reference allocator is the executable specification; any
// divergence is a bug in the indexed fast path.
func FuzzAllocFreeSequence(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 0x10, 0x81, 0x20, 0x02, 0x00, 0x41, 0x7f, 0x03, 0x01})
	f.Add([]byte{0, 0xff, 0xff, 0x02, 0x00, 0x00, 0x08, 0x42, 0x02, 0x01, 0x81, 0x33})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		fit := FirstFit
		if data[0]&1 == 1 {
			fit = BestFit
		}
		const capacity = 1 << 16
		fl := NewFreeList(capacity, fit)
		ref := NewReference(capacity, fit)
		var live []int64 // offsets allocated and not yet freed

		check := func(step int) {
			if err := fl.CheckInvariants(); err != nil {
				t.Fatalf("step %d: freelist: %v", step, err)
			}
			if err := ref.CheckInvariants(); err != nil {
				t.Fatalf("step %d: reference: %v", step, err)
			}
			if fl.Used() != ref.Used() || fl.FreeBytes() != ref.FreeBytes() {
				t.Fatalf("step %d: usage diverged: freelist %d/%d, reference %d/%d",
					step, fl.Used(), fl.FreeBytes(), ref.Used(), ref.FreeBytes())
			}
			if fl.LargestFree() != ref.LargestFree() {
				t.Fatalf("step %d: LargestFree diverged: %d vs %d",
					step, fl.LargestFree(), ref.LargestFree())
			}
		}

		ops := data[1:]
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], ops[i+1]
			switch op % 3 {
			case 0, 1: // alloc; sizes span sub-align to multi-KiB
				size := int64(arg)*97 + 1
				offA, errA := fl.Alloc(size)
				offB, errB := ref.Alloc(size)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("step %d: alloc(%d) errors diverged: %v vs %v", i, size, errA, errB)
				}
				if errA != nil {
					if errA != ErrExhausted || errB != ErrExhausted {
						t.Fatalf("step %d: alloc(%d) unexpected errors: %v / %v", i, size, errA, errB)
					}
					continue
				}
				if offA != offB {
					t.Fatalf("step %d: alloc(%d) offsets diverged: %d vs %d", i, size, offA, offB)
				}
				if fl.SizeOf(offA) != ref.SizeOf(offB) {
					t.Fatalf("step %d: SizeOf(%d) diverged: %d vs %d",
						i, offA, fl.SizeOf(offA), ref.SizeOf(offB))
				}
				live = append(live, offA)
			case 2: // free a pseudo-random live block
				if len(live) == 0 {
					continue
				}
				k := int(arg) % len(live)
				off := live[k]
				live = append(live[:k], live[k+1:]...)
				fl.Free(off)
				ref.Free(off)
			}
			check(i)
		}

		// Drain: every remaining block must free cleanly and the heaps
		// must end empty and identical.
		for _, off := range live {
			fl.Free(off)
			ref.Free(off)
		}
		check(len(ops))
		if fl.Used() != 0 {
			t.Fatalf("drained heap still has %d used bytes", fl.Used())
		}
	})
}
