package alloc

import (
	"errors"
	"testing"
)

// TestQuotaAccounting: reserve/release bookkeeping through the wrapper.
func TestQuotaAccounting(t *testing.T) {
	q := NewQuota(1 << 20)
	a := Limit(NewFreeList(1<<20, FirstFit), q)

	off, err := a.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if q.Used() != a.SizeOf(off) {
		t.Fatalf("quota used %d != rounded block size %d", q.Used(), a.SizeOf(off))
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	a.Free(off)
	if q.Used() != 0 {
		t.Fatalf("quota used %d after free, want 0", q.Used())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQuotaCrossAllocatorExhaustion: two private allocators with room of
// their own still cannot jointly exceed the shared budget — the second
// tenant's allocation fails with ErrExhausted exactly as a full device
// would.
func TestQuotaCrossAllocatorExhaustion(t *testing.T) {
	q := NewQuota(1 << 20) // 1 MiB shared budget
	t0 := Limit(NewFreeList(1<<20, FirstFit), q)
	t1 := Limit(NewFreeList(1<<20, FirstFit), q)

	if _, err := t0.Alloc(768 << 10); err != nil {
		t.Fatalf("tenant 0: %v", err)
	}
	// Tenant 1's private heap is empty, but the shared budget has only
	// ~256 KiB left.
	if _, err := t1.Alloc(512 << 10); !errors.Is(err, ErrExhausted) {
		t.Fatalf("tenant 1 overcommitted the shared budget: err=%v", err)
	}
	if off, err := t1.Alloc(128 << 10); err != nil {
		t.Fatalf("tenant 1 within budget: %v", err)
	} else {
		t1.Free(off)
	}
	for _, a := range []Allocator{t0, t1} {
		if err := a.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestQuotaReset: Reset refunds exactly what this wrapper charged, not
// what other sharers hold.
func TestQuotaReset(t *testing.T) {
	q := NewQuota(1 << 20)
	t0 := Limit(NewFreeList(1<<20, FirstFit), q)
	t1 := Limit(NewFreeList(1<<20, FirstFit), q)
	if _, err := t0.Alloc(100 << 10); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Alloc(200 << 10); err != nil {
		t.Fatal(err)
	}
	held := q.Used()
	t0.Reset()
	if q.Used() >= held || q.Used() == 0 {
		t.Fatalf("quota used %d after tenant 0 reset; want only tenant 1's charge (had %d)", q.Used(), held)
	}
	t1.Reset()
	if q.Used() != 0 {
		t.Fatalf("quota used %d after all resets", q.Used())
	}
}

// TestQuotaInnerConservation: the wrapper reports the inner allocator's
// capacity/used/free, so the per-tenant conservation law the invariants
// auditor enforces keeps holding even while the shared budget is tighter
// than the private address space.
func TestQuotaInnerConservation(t *testing.T) {
	q := NewQuota(256 << 10) // budget far below the private heap
	a := Limit(NewFreeList(1<<20, FirstFit), q)
	off, err := a.Alloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Capacity() != 1<<20 {
		t.Fatalf("wrapper capacity %d, want inner 1 MiB", a.Capacity())
	}
	if a.Used()+a.FreeBytes() != a.Capacity() {
		t.Fatalf("conservation broken: %d + %d != %d", a.Used(), a.FreeBytes(), a.Capacity())
	}
	a.Free(off)
}

// TestQuotaNilPassthrough: Limit with a nil quota is the identity.
func TestQuotaNilPassthrough(t *testing.T) {
	inner := NewFreeList(1<<20, FirstFit)
	if got := Limit(inner, nil); got != Allocator(inner) {
		t.Fatal("Limit(a, nil) wrapped the allocator")
	}
}

// TestQuotaCompactorPassthrough: wrapping preserves (and only preserves)
// the inner allocator's compaction support, and compaction leaves the
// budget untouched.
func TestQuotaCompactorPassthrough(t *testing.T) {
	q := NewQuota(1 << 20)
	fl := Limit(NewFreeList(1<<20, FirstFit), q)
	c, ok := fl.(Compactor)
	if !ok {
		t.Fatal("free-list wrapper lost compaction support")
	}
	a, err := fl.Alloc(10 << 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fl.Alloc(10 << 10)
	if err != nil {
		t.Fatal(err)
	}
	fl.Free(a)
	held := q.Used()
	c.Compact(func(oldOffset, newOffset, size int64) {
		if oldOffset == b {
			b = newOffset
		}
	})
	if q.Used() != held {
		t.Fatalf("compaction changed the budget: %d -> %d", held, q.Used())
	}
	if err := fl.(interface{ CheckInvariants() error }).CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	fl.Free(b)

	bud, err := NewBuddy(1<<20, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Limit(bud, NewQuota(1<<20)).(Compactor); ok == isCompactor(bud) {
		// The wrapper must mirror the inner allocator's compaction
		// support exactly, whichever way that goes.
	} else {
		t.Fatal("wrapper compaction support diverges from inner allocator")
	}
}

func isCompactor(a Allocator) bool {
	_, ok := a.(Compactor)
	return ok
}

// TestQuotaRollbackOnBudgetRace: when the inner allocation succeeds but
// the rounded size overshoots the remaining budget, the block is freed
// and the budget left unchanged.
func TestQuotaRollbackOnBudgetRace(t *testing.T) {
	// Budget admits the requested size but not the rounded block size:
	// the free list rounds to its alignment, so ask for one byte under a
	// budget of one byte.
	q := NewQuota(1)
	a := Limit(NewFreeList(1<<20, FirstFit), q)
	if _, err := a.Alloc(1); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err=%v, want ErrExhausted", err)
	}
	if q.Used() != 0 {
		t.Fatalf("failed alloc leaked %d bytes of budget", q.Used())
	}
	if a.Used() != 0 {
		t.Fatalf("failed alloc leaked %d bytes of heap", a.Used())
	}
}

// TestQuotaRejectionCounters: every failed allocation under quota
// pressure increments the rejection counters the cluster's live series
// export — whether the budget check or the post-alloc reservation failed.
func TestQuotaRejectionCounters(t *testing.T) {
	q := NewQuota(1 << 20)
	a := Limit(NewFreeList(1<<20, FirstFit), q)

	if q.Rejections() != 0 || q.RejectedBytes() != 0 {
		t.Fatalf("fresh quota has rejections: %d/%d", q.Rejections(), q.RejectedBytes())
	}
	if _, err := a.Alloc(768 << 10); err != nil {
		t.Fatal(err)
	}
	// Over budget: rejected by the pre-check.
	if _, err := a.Alloc(512 << 10); !errors.Is(err, ErrExhausted) {
		t.Fatalf("overcommit err = %v", err)
	}
	if q.Rejections() != 1 || q.RejectedBytes() != 512<<10 {
		t.Fatalf("after overcommit: rejections=%d bytes=%d", q.Rejections(), q.RejectedBytes())
	}
	// A successful allocation does not move the counters.
	off, err := a.Alloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(off)
	if q.Rejections() != 1 {
		t.Fatalf("success moved the rejection counter to %d", q.Rejections())
	}
}
