package alloc

import (
	"fmt"
	"math/bits"
)

// Buddy is a binary buddy allocator. Block sizes are powers of two between
// minBlock and capacity; freeing merges buddy pairs eagerly. Compared to
// the free list it trades internal fragmentation (allocations round up to a
// power of two) for O(log n) operations and zero external-fragmentation
// surprises — a useful alternative heap for workloads with many same-size
// tensors, and an ablation point for the allocator choice.
type Buddy struct {
	capacity int64 // power of two
	minBlock int64 // power of two
	orders   int   // number of size classes
	// freeLists[o] holds offsets of free blocks of size minBlock<<o.
	freeLists []map[int64]struct{}
	// allocated maps offset -> order.
	allocated map[int64]int
	used      int64
}

var _ Allocator = (*Buddy)(nil)

// DefaultMinBlock is the smallest buddy block (4 KiB, one page).
const DefaultMinBlock = 4 << 10

// NewBuddy creates a buddy allocator. capacity must be a power of two and a
// multiple of minBlock; minBlock must be a power of two (0 selects
// DefaultMinBlock).
func NewBuddy(capacity, minBlock int64) (*Buddy, error) {
	if minBlock == 0 {
		minBlock = DefaultMinBlock
	}
	if minBlock <= 0 || minBlock&(minBlock-1) != 0 {
		return nil, fmt.Errorf("alloc: buddy min block %d is not a power of two", minBlock)
	}
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("alloc: buddy capacity %d is not a power of two", capacity)
	}
	if capacity < minBlock {
		return nil, fmt.Errorf("alloc: buddy capacity %d below min block %d", capacity, minBlock)
	}
	b := &Buddy{
		capacity: capacity,
		minBlock: minBlock,
		orders:   bits.TrailingZeros64(uint64(capacity/minBlock)) + 1,
	}
	b.Reset()
	return b, nil
}

// Reset empties the allocator.
func (b *Buddy) Reset() {
	b.freeLists = make([]map[int64]struct{}, b.orders)
	for i := range b.freeLists {
		b.freeLists[i] = make(map[int64]struct{})
	}
	b.allocated = make(map[int64]int)
	b.used = 0
	b.freeLists[b.orders-1][0] = struct{}{}
}

// blockSize returns the byte size of a block of the given order.
func (b *Buddy) blockSize(order int) int64 { return b.minBlock << order }

// orderFor returns the smallest order whose block size fits size.
func (b *Buddy) orderFor(size int64) int {
	o := 0
	for b.blockSize(o) < size {
		o++
	}
	return o
}

// Capacity returns the heap size.
func (b *Buddy) Capacity() int64 { return b.capacity }

// Used returns bytes held by allocated blocks (power-of-two rounded).
func (b *Buddy) Used() int64 { return b.used }

// FreeBytes returns Capacity - Used.
func (b *Buddy) FreeBytes() int64 { return b.capacity - b.used }

// LargestFree returns the size of the largest free block.
func (b *Buddy) LargestFree() int64 {
	for o := b.orders - 1; o >= 0; o-- {
		if len(b.freeLists[o]) > 0 {
			return b.blockSize(o)
		}
	}
	return 0
}

// Alloc reserves a block of at least size bytes.
func (b *Buddy) Alloc(size int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("alloc: invalid allocation size %d", size)
	}
	if size > b.capacity {
		return 0, ErrExhausted
	}
	want := b.orderFor(size)
	if want >= b.orders {
		return 0, ErrExhausted
	}
	// Find the smallest free order >= want.
	from := -1
	for o := want; o < b.orders; o++ {
		if len(b.freeLists[o]) > 0 {
			from = o
			break
		}
	}
	if from == -1 {
		return 0, ErrExhausted
	}
	// Take any block from that list (pick the lowest offset for
	// determinism).
	var off int64 = -1
	for o := range b.freeLists[from] {
		if off == -1 || o < off {
			off = o
		}
	}
	delete(b.freeLists[from], off)
	// Split down to the wanted order, returning the upper halves.
	for o := from; o > want; o-- {
		half := b.blockSize(o - 1)
		b.freeLists[o-1][off+half] = struct{}{}
	}
	b.allocated[off] = want
	b.used += b.blockSize(want)
	return off, nil
}

// Free releases the block at offset, merging buddies eagerly.
func (b *Buddy) Free(offset int64) {
	order, ok := b.allocated[offset]
	if !ok {
		panic(fmt.Sprintf("alloc: buddy free of unknown offset %d", offset))
	}
	delete(b.allocated, offset)
	b.used -= b.blockSize(order)
	off := offset
	for order < b.orders-1 {
		buddy := off ^ b.blockSize(order)
		if _, free := b.freeLists[order][buddy]; !free {
			break
		}
		delete(b.freeLists[order], buddy)
		if buddy < off {
			off = buddy
		}
		order++
	}
	b.freeLists[order][off] = struct{}{}
}

// SizeOf returns the (power-of-two) size of the allocated block at offset.
func (b *Buddy) SizeOf(offset int64) int64 {
	order, ok := b.allocated[offset]
	if !ok {
		panic(fmt.Sprintf("alloc: buddy SizeOf of unknown offset %d", offset))
	}
	return b.blockSize(order)
}

// Blocks iterates allocated blocks in address order.
func (b *Buddy) Blocks(fn func(offset, size int64) bool) {
	for _, off := range sortedOffsets(b.allocated) {
		if !fn(off, b.blockSize(b.allocated[off])) {
			return
		}
	}
}

// BlocksIn iterates allocated blocks overlapping [start, start+length).
func (b *Buddy) BlocksIn(start, length int64, fn func(offset, size int64) bool) {
	end := start + length
	for _, off := range sortedOffsets(b.allocated) {
		size := b.blockSize(b.allocated[off])
		if off >= end {
			return
		}
		if off+size <= start {
			continue
		}
		if !fn(off, size) {
			return
		}
	}
}

// CheckInvariants validates that allocated and free blocks tile the heap
// exactly, free buddies are never both free (eager merging), and used-byte
// accounting is consistent.
func (b *Buddy) CheckInvariants() error {
	type span struct{ off, size int64 }
	var spans []span
	var used int64
	for off, order := range b.allocated {
		spans = append(spans, span{off, b.blockSize(order)})
		used += b.blockSize(order)
	}
	for o, list := range b.freeLists {
		size := b.blockSize(o)
		for off := range list {
			if off%size != 0 {
				return fmt.Errorf("alloc: buddy free block %d misaligned for order %d", off, o)
			}
			if o < b.orders-1 {
				buddy := off ^ size
				if _, free := b.freeLists[o][buddy]; free && buddy > off {
					return fmt.Errorf("alloc: unmerged free buddies %d/%d at order %d", off, buddy, o)
				}
			}
			spans = append(spans, span{off, size})
		}
	}
	if used != b.used {
		return fmt.Errorf("alloc: buddy used accounting %d != actual %d", b.used, used)
	}
	// Spans must tile [0, capacity).
	offs := make(map[int64]span, len(spans))
	for _, s := range spans {
		if _, dup := offs[s.off]; dup {
			return fmt.Errorf("alloc: buddy duplicate span at %d", s.off)
		}
		offs[s.off] = s
	}
	var cursor int64
	for cursor < b.capacity {
		s, ok := offs[cursor]
		if !ok {
			return fmt.Errorf("alloc: buddy hole at %d", cursor)
		}
		cursor += s.size
	}
	if cursor != b.capacity {
		return fmt.Errorf("alloc: buddy spans overrun capacity (%d)", cursor)
	}
	return nil
}
