package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustAlloc(t *testing.T, a Allocator, size int64) int64 {
	t.Helper()
	off, err := a.Alloc(size)
	if err != nil {
		t.Fatalf("Alloc(%d): %v", size, err)
	}
	return off
}

func checkInv(t *testing.T, a Allocator) {
	t.Helper()
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeListBasicAllocFree(t *testing.T) {
	f := NewFreeList(1<<20, FirstFit)
	a := mustAlloc(t, f, 1000)
	b := mustAlloc(t, f, 2000)
	checkInv(t, f)
	if a == b {
		t.Fatal("overlapping allocations")
	}
	if f.SizeOf(a) < 1000 || f.SizeOf(b) < 2000 {
		t.Fatalf("SizeOf too small: %d %d", f.SizeOf(a), f.SizeOf(b))
	}
	if f.Used() != f.SizeOf(a)+f.SizeOf(b) {
		t.Fatalf("Used = %d", f.Used())
	}
	f.Free(a)
	f.Free(b)
	checkInv(t, f)
	if f.Used() != 0 || f.FreeBytes() != f.Capacity() {
		t.Fatalf("heap not empty after frees: used=%d", f.Used())
	}
	if f.LargestFree() != f.Capacity() {
		t.Fatalf("free space not coalesced: largest=%d", f.LargestFree())
	}
}

func TestFreeListAlignment(t *testing.T) {
	f := NewFreeList(1<<20, FirstFit)
	off := mustAlloc(t, f, 1)
	if off%defaultAlign != 0 {
		t.Errorf("offset %d not aligned", off)
	}
	if f.SizeOf(off) != defaultAlign {
		t.Errorf("1-byte alloc rounded to %d, want %d", f.SizeOf(off), defaultAlign)
	}
}

func TestFreeListExhaustion(t *testing.T) {
	f := NewFreeList(4096, FirstFit)
	mustAlloc(t, f, 4096)
	if _, err := f.Alloc(64); err != ErrExhausted {
		t.Errorf("expected ErrExhausted, got %v", err)
	}
	checkInv(t, f)
}

func TestFreeListRejectsBadSizes(t *testing.T) {
	f := NewFreeList(4096, FirstFit)
	for _, sz := range []int64{0, -1} {
		if _, err := f.Alloc(sz); err == nil || err == ErrExhausted {
			t.Errorf("Alloc(%d) = %v, want invalid-size error", sz, err)
		}
	}
}

func TestFreeListDoubleFreePanics(t *testing.T) {
	f := NewFreeList(4096, FirstFit)
	off := mustAlloc(t, f, 64)
	f.Free(off)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	f.Free(off)
}

func TestFreeListCoalescingMiddle(t *testing.T) {
	f := NewFreeList(3*defaultAlign, FirstFit)
	a := mustAlloc(t, f, defaultAlign)
	b := mustAlloc(t, f, defaultAlign)
	c := mustAlloc(t, f, defaultAlign)
	f.Free(a)
	f.Free(c)
	checkInv(t, f)
	if f.LargestFree() != defaultAlign {
		t.Fatalf("largest free = %d before middle free", f.LargestFree())
	}
	f.Free(b) // must merge with both neighbours
	checkInv(t, f)
	if f.LargestFree() != 3*defaultAlign {
		t.Fatalf("largest free = %d after middle free, want %d", f.LargestFree(), 3*defaultAlign)
	}
}

func TestFreeListFirstFitPrefersLowAddresses(t *testing.T) {
	f := NewFreeList(1<<20, FirstFit)
	a := mustAlloc(t, f, 1024)
	mustAlloc(t, f, 1024)
	f.Free(a)
	if got := mustAlloc(t, f, 512); got != a {
		t.Errorf("first-fit reused offset %d, want %d", got, a)
	}
}

func TestFreeListBestFitPicksTightestHole(t *testing.T) {
	f := NewFreeList(1<<20, BestFit)
	big := mustAlloc(t, f, 8192)
	sep1 := mustAlloc(t, f, 64)
	small := mustAlloc(t, f, 1024)
	sep2 := mustAlloc(t, f, 64)
	_ = sep1
	_ = sep2
	f.Free(big)
	f.Free(small)
	// A 1 KiB request should land in the 1 KiB hole, not the 8 KiB one.
	if got := mustAlloc(t, f, 1024); got != small {
		t.Errorf("best-fit chose offset %d, want tight hole at %d", got, small)
	}
	checkInv(t, f)
}

func TestFreeListBlocksOrdering(t *testing.T) {
	f := NewFreeList(1<<20, FirstFit)
	var want []int64
	for i := 0; i < 10; i++ {
		want = append(want, mustAlloc(t, f, 128))
	}
	f.Free(want[3])
	f.Free(want[7])
	want = append(want[:3], append(want[4:7], want[8:]...)...)
	var got []int64
	f.Blocks(func(off, size int64) bool {
		got = append(got, off)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Blocks returned %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Blocks[%d] = %d, want %d", i, got[i], want[i])
		}
		if i > 0 && got[i] <= got[i-1] {
			t.Fatalf("Blocks not address-ordered at %d", i)
		}
	}
}

func TestFreeListBlocksEarlyStop(t *testing.T) {
	f := NewFreeList(1<<20, FirstFit)
	for i := 0; i < 5; i++ {
		mustAlloc(t, f, 128)
	}
	n := 0
	f.Blocks(func(off, size int64) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("early stop visited %d blocks", n)
	}
}

func TestFreeListBlocksIn(t *testing.T) {
	f := NewFreeList(1<<20, FirstFit)
	offs := make([]int64, 8)
	for i := range offs {
		offs[i] = mustAlloc(t, f, 128)
	}
	// Window covering blocks 2..4 (each block is 128 bytes).
	start := offs[2] + 10 // overlap partially into block 2
	length := int64(128*2 + 20)
	var got []int64
	f.BlocksIn(start, length, func(off, size int64) bool {
		got = append(got, off)
		return true
	})
	want := []int64{offs[2], offs[3], offs[4]}
	if len(got) != len(want) {
		t.Fatalf("BlocksIn = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("BlocksIn = %v, want %v", got, want)
		}
	}
}

func TestFreeListCompact(t *testing.T) {
	f := NewFreeList(1<<20, FirstFit)
	var offs []int64
	for i := 0; i < 20; i++ {
		offs = append(offs, mustAlloc(t, f, 1024))
	}
	// Free every other block to fragment.
	for i := 0; i < 20; i += 2 {
		f.Free(offs[i])
	}
	if f.FragmentationRatio() == 0 {
		t.Fatal("heap should be fragmented")
	}
	moves := map[int64]int64{}
	f.Compact(func(old, new, size int64) {
		if new >= old {
			t.Errorf("compaction moved block up: %d -> %d", old, new)
		}
		moves[old] = new
	})
	checkInv(t, f)
	if f.FragmentationRatio() != 0 {
		t.Errorf("fragmentation %v after compaction", f.FragmentationRatio())
	}
	if f.LargestFree() != f.FreeBytes() {
		t.Error("free space not contiguous after compaction")
	}
	// Surviving blocks must be packed from zero.
	var cursor int64
	f.Blocks(func(off, size int64) bool {
		if off != cursor {
			t.Errorf("block at %d, expected packed at %d", off, cursor)
		}
		cursor += size
		return true
	})
	if len(moves) == 0 {
		t.Error("compaction moved nothing")
	}
}

func TestFreeListCompactEmptyAndFull(t *testing.T) {
	f := NewFreeList(1<<16, FirstFit)
	f.Compact(func(old, new, size int64) { t.Error("moved block in empty heap") })
	checkInv(t, f)
	mustAlloc(t, f, 1<<16)
	f.Compact(func(old, new, size int64) { t.Error("moved block in full packed heap") })
	checkInv(t, f)
}

func TestFreeListZeroCapacity(t *testing.T) {
	f := NewFreeList(0, FirstFit)
	checkInv(t, f)
	if _, err := f.Alloc(64); err != ErrExhausted {
		t.Errorf("Alloc on empty heap = %v", err)
	}
	if f.LargestFree() != 0 {
		t.Error("largest free nonzero")
	}
}

func TestFitString(t *testing.T) {
	if FirstFit.String() != "first-fit" || BestFit.String() != "best-fit" {
		t.Error("fit strings wrong")
	}
	if Fit(7).String() != "Fit(7)" {
		t.Error("unknown fit string wrong")
	}
}

// opSequence drives an allocator with a deterministic random workload and
// validates invariants throughout. Shared with the buddy tests.
func opSequence(t *testing.T, a Allocator, seed int64, ops int, maxSize int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	live := map[int64]int64{} // offset -> requested size
	for i := 0; i < ops; i++ {
		if rng.Intn(3) > 0 || len(live) == 0 { // bias toward allocation
			size := 1 + rng.Int63n(maxSize)
			off, err := a.Alloc(size)
			if err == ErrExhausted {
				// Free something and move on.
				for o := range live {
					a.Free(o)
					delete(live, o)
					break
				}
				continue
			}
			if err != nil {
				t.Fatalf("op %d: Alloc(%d): %v", i, size, err)
			}
			if got := a.SizeOf(off); got < size {
				t.Fatalf("op %d: SizeOf(%d) = %d < requested %d", i, off, got, size)
			}
			// No overlap with any live block.
			for o, s := range live {
				os := a.SizeOf(o)
				_ = s
				if off < o+os && o < off+a.SizeOf(off) {
					t.Fatalf("op %d: overlap [%d,%d) with [%d,%d)", i, off, off+a.SizeOf(off), o, o+os)
				}
			}
			live[off] = size
		} else {
			for o := range live {
				a.Free(o)
				delete(live, o)
				break
			}
		}
		if i%64 == 0 {
			if err := a.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	for o := range live {
		a.Free(o)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if a.Used() != 0 {
		t.Fatalf("Used = %d after freeing everything", a.Used())
	}
	if a.LargestFree() != a.Capacity() {
		t.Fatalf("free space not fully coalesced: %d != %d", a.LargestFree(), a.Capacity())
	}
}

func TestFreeListRandomOpsFirstFit(t *testing.T) {
	opSequence(t, NewFreeList(1<<22, FirstFit), 1, 2000, 1<<14)
}

func TestFreeListRandomOpsBestFit(t *testing.T) {
	opSequence(t, NewFreeList(1<<22, BestFit), 2, 2000, 1<<14)
}

func TestFreeListQuickAllocFreeRoundTrip(t *testing.T) {
	// Property: for any list of sizes that fits, allocating all then
	// freeing all restores an empty, fully-coalesced heap.
	f := func(sizes []uint16) bool {
		fl := NewFreeList(1<<22, FirstFit)
		var offs []int64
		for _, s := range sizes {
			size := int64(s) + 1
			off, err := fl.Alloc(size)
			if err != nil {
				return true // exhaustion is fine, just stop
			}
			offs = append(offs, off)
		}
		for _, o := range offs {
			fl.Free(o)
		}
		return fl.CheckInvariants() == nil && fl.Used() == 0 &&
			fl.LargestFree() == fl.Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFreeListQuickUsedPlusFreeIsCapacity(t *testing.T) {
	f := func(sizes []uint16, frees []uint8) bool {
		fl := NewFreeList(1<<22, BestFit)
		var offs []int64
		for _, s := range sizes {
			if off, err := fl.Alloc(int64(s) + 1); err == nil {
				offs = append(offs, off)
			}
		}
		for _, idx := range frees {
			if len(offs) == 0 {
				break
			}
			i := int(idx) % len(offs)
			fl.Free(offs[i])
			offs = append(offs[:i], offs[i+1:]...)
		}
		return fl.CheckInvariants() == nil && fl.Used()+fl.FreeBytes() == fl.Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompactionInvariants(t *testing.T) {
	// Property: after any alloc/free history, compaction preserves the
	// allocated set (same count and sizes), packs blocks from zero, and
	// leaves the heap invariant-clean.
	f := func(sizes []uint16, frees []uint8) bool {
		fl := NewFreeList(1<<22, FirstFit)
		var offs []int64
		for _, s := range sizes {
			if off, err := fl.Alloc(int64(s) + 1); err == nil {
				offs = append(offs, off)
			}
		}
		for _, idx := range frees {
			if len(offs) == 0 {
				break
			}
			i := int(idx) % len(offs)
			fl.Free(offs[i])
			offs = append(offs[:i], offs[i+1:]...)
		}
		var beforeSizes []int64
		fl.Blocks(func(off, size int64) bool {
			beforeSizes = append(beforeSizes, size)
			return true
		})
		usedBefore := fl.Used()
		fl.Compact(func(old, new, size int64) {
			if new > old {
				t.Errorf("compaction moved block upward")
			}
		})
		if fl.CheckInvariants() != nil || fl.Used() != usedBefore {
			return false
		}
		var cursor int64
		ok := true
		i := 0
		fl.Blocks(func(off, size int64) bool {
			if off != cursor || i >= len(beforeSizes) || size != beforeSizes[i] {
				ok = false
				return false
			}
			cursor += size
			i++
			return true
		})
		return ok && i == len(beforeSizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
