package cluster

import (
	"fmt"
	"math/rand"

	"cachedarrays/internal/models"
)

// MixModes are the operating modes the seeded job-mix generator draws
// from: every canonical mode that runs on a shared platform (all of them —
// tracing and fault injection are per-run config, not modes).
var MixModes = []string{
	"CA:LMP", "CA:LM", "CA:L", "CA:0", "CA:TG", "CA:OG",
	"2LM:M", "2LM:0", "OS:page", "AutoTM",
}

// Mix generates a deterministic, seeded synthetic job mix: n MLP training
// jobs with varied shapes, modes and arrival times. Identical seeds
// produce identical mixes — the determinism suite and the cacluster
// command both key their scenarios on the seed.
func Mix(seed int64, n int) []Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]Job, n)
	for i := range jobs {
		in := 256 << rng.Intn(3)     // 256 / 512 / 1024 features
		hidden := 512 << rng.Intn(3) // 512 / 1024 / 2048 wide
		layers := 1 + rng.Intn(3)    // 1-3 hidden layers
		batch := 16 << rng.Intn(3)   // 16 / 32 / 64
		mode := MixModes[rng.Intn(len(MixModes))]
		arrival := rng.Float64() * 0.02
		hs := make([]int, layers)
		for l := range hs {
			hs[l] = hidden
		}
		jobs[i] = Job{
			Name:    fmt.Sprintf("mix%d-%s", i, mode),
			Build:   func() (*models.Model, error) { return models.MLP(in, hs, 10, batch), nil },
			Mode:    mode,
			Arrival: arrival,
		}
	}
	return jobs
}
