package cluster

import (
	"fmt"
	"math/rand"

	"cachedarrays/internal/models"
)

// MixModes are the operating modes the seeded job-mix generator draws
// from: every canonical mode that runs on a shared platform (all of them —
// tracing and fault injection are per-run config, not modes).
var MixModes = []string{
	"CA:LMP", "CA:LM", "CA:L", "CA:0", "CA:TG", "CA:OG",
	"2LM:M", "2LM:0", "OS:page", "AutoTM",
}

// Mix generates a deterministic, seeded synthetic job mix: n MLP training
// jobs with varied shapes, modes and arrival times. Identical seeds
// produce identical mixes — the determinism suite and the cacluster
// command both key their scenarios on the seed.
func Mix(seed int64, n int) []Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]Job, n)
	for i := range jobs {
		in := 256 << rng.Intn(3)     // 256 / 512 / 1024 features
		hidden := 512 << rng.Intn(3) // 512 / 1024 / 2048 wide
		layers := 1 + rng.Intn(3)    // 1-3 hidden layers
		batch := 16 << rng.Intn(3)   // 16 / 32 / 64
		mode := MixModes[rng.Intn(len(MixModes))]
		arrival := rng.Float64() * 0.02
		hs := make([]int, layers)
		for l := range hs {
			hs[l] = hidden
		}
		jobs[i] = Job{
			Name:    fmt.Sprintf("mix%d-%s", i, mode),
			Build:   func() (*models.Model, error) { return models.MLP(in, hs, 10, batch), nil },
			Mode:    mode,
			Arrival: arrival,
		}
	}
	return jobs
}

// BenchMix generates the fleet-scale benchmark's job mix: n deliberately
// tiny MLP jobs (one short hidden layer, small batches) whose individual
// simulations are cheap enough that dispatch overhead — the thing
// BENCH_cluster measures — is a visible fraction of the run at N=128
// tenants. Sizes, modes and arrivals are drawn from the seeded source
// exactly like Mix; arrival offsets cluster in a narrow window so
// timestamp ties and near-ties (the heap's worst case) are common.
// Deterministic per seed.
func BenchMix(seed int64, n int) []Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]Job, n)
	for i := range jobs {
		in := 128 << rng.Intn(2)     // 128 / 256 features
		hidden := 256 << rng.Intn(2) // 256 / 512 wide
		batch := 16 << rng.Intn(2)   // 16 / 32
		mode := MixModes[rng.Intn(len(MixModes))]
		arrival := float64(rng.Intn(4)) * 0.001 // 4 shared arrival slots: ties abound
		jobs[i] = Job{
			Name:    fmt.Sprintf("bench%d-%s", i, mode),
			Build:   func() (*models.Model, error) { return models.MLP(in, []int{hidden}, 10, batch), nil },
			Mode:    mode,
			Arrival: arrival,
		}
	}
	return jobs
}
