package cluster

import "container/heap"

// The dispatch loop's job is to repeatedly select the unfinished tenant
// with the lexicographically smallest (next, jobIndex) key. Two
// implementations exist behind the dispatchQueue interface:
//
//   - tenantHeap, the production dispatcher: a container/heap priority
//     queue, O(log N) per selection, pre-sized so the dispatch hot path
//     performs zero allocations (pinned by TestDispatchQueueZeroAllocs).
//   - scanQueue, the pre-heap O(N) linear scan kept verbatim as the
//     executable reference (the alloc.Reference pattern): the
//     differential and fuzz tests prove the heap reproduces its
//     selection order — and therefore its results — byte for byte.
//
// Both break timestamp ties by job index: the scan visits tenants in
// index order and only a strictly smaller timestamp displaces the
// incumbent, which is exactly the lexicographic (next, idx) minimum the
// heap orders by.
type dispatchQueue interface {
	// peek returns the tenant with the smallest (next, idx), or nil when
	// every tenant has finished.
	peek() *tenant
	// bumped restores order after the peeked tenant's next advanced.
	bumped()
	// remove drops the peeked tenant (it finished).
	remove()
}

// tenantHeap orders tenants by (next, idx). Only the root is ever
// mutated — the dispatch loop peeks the minimum, advances its timestamp
// and sifts it down in place (heap.Fix) or pops it — so no per-tenant
// position index is needed and no operation allocates.
type tenantHeap struct {
	ts []*tenant
}

func newTenantHeap(tenants []*tenant) *tenantHeap {
	h := &tenantHeap{ts: make([]*tenant, len(tenants))}
	copy(h.ts, tenants)
	heap.Init(h)
	return h
}

func (h *tenantHeap) Len() int { return len(h.ts) }

func (h *tenantHeap) Less(i, j int) bool {
	a, b := h.ts[i], h.ts[j]
	if a.next != b.next {
		return a.next < b.next
	}
	return a.idx < b.idx
}

func (h *tenantHeap) Swap(i, j int) { h.ts[i], h.ts[j] = h.ts[j], h.ts[i] }

// Push and Pop satisfy heap.Interface. The dispatch loop never grows the
// heap (every tenant is present from Init), and Pop shrinks the pre-sized
// slice in place, so neither allocates.
func (h *tenantHeap) Push(x any) { h.ts = append(h.ts, x.(*tenant)) }

func (h *tenantHeap) Pop() any {
	n := len(h.ts) - 1
	t := h.ts[n]
	h.ts[n] = nil
	h.ts = h.ts[:n]
	return t
}

func (h *tenantHeap) peek() *tenant {
	if len(h.ts) == 0 {
		return nil
	}
	return h.ts[0]
}

func (h *tenantHeap) bumped() { heap.Fix(h, 0) }

func (h *tenantHeap) remove() { heap.Pop(h) }

// scanQueue is the pre-heap dispatcher kept as the reference
// implementation: an O(N) scan over all tenants in index order, strictly
// smaller timestamps displacing the incumbent. Used by RunScanReference
// (differential tests, the BENCH_cluster heap-vs-scan series); never on
// the production path.
type scanQueue struct {
	ts []*tenant
}

func newScanQueue(tenants []*tenant) *scanQueue {
	q := &scanQueue{ts: make([]*tenant, len(tenants))}
	copy(q.ts, tenants)
	return q
}

func (q *scanQueue) peek() *tenant {
	best := -1
	for i, t := range q.ts {
		if t.finished {
			continue
		}
		if best < 0 || t.next < q.ts[best].next {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return q.ts[best]
}

// bumped is a no-op: the scan recomputes the minimum from scratch on
// every peek.
func (q *scanQueue) bumped() {}

// remove is a no-op: the scan skips finished tenants.
func (q *scanQueue) remove() {}
