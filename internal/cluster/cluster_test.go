package cluster

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/metrics"
	"cachedarrays/internal/models"
	"cachedarrays/internal/sched"
	"cachedarrays/internal/tracing"
	"cachedarrays/internal/units"
)

// movementHeavy is a model whose working set overflows the tight fast
// tier below, forcing evictions, prefetches and GC — the regime where an
// event-driven refactor would show any drift.
func movementHeavy() *models.Model {
	return models.MLP(1024, []int{4096, 4096}, 10, 256)
}

var tight = engine.Config{
	FastCapacity: 32 * units.MB,
	SlowCapacity: 2 * units.GB,
	Iterations:   3,
}

// allModes is every canonical operating mode.
var allModes = []string{
	"2LM:0", "2LM:M", "CA:0", "CA:L", "CA:LM", "CA:LMP",
	"CA:OG", "CA:TG", "CA:OGTG", "OS:page", "AutoTM",
}

// TestSoloIdentityAllModes pins the tentpole refactor's core obligation:
// a cluster with a single tenant is byte-identical — reflect.DeepEqual
// over the full engine result, execution trace included — to the solo
// engine run, for every operating mode. Any perturbation the event-driven
// core introduced (reordered operations, quota wrapping, hook fan-out)
// would surface here as a diff.
func TestSoloIdentityAllModes(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode, func(t *testing.T) {
			cfg := tight
			cfg.Trace = true
			cfg.CheckEveryAdvance = true
			solo, err := sched.RunMode(movementHeavy(), mode, cfg)
			if err != nil {
				t.Fatalf("solo: %v", err)
			}
			res, err := Run(Config{
				Engine: cfg,
				Jobs:   []Job{{Name: "only", Model: movementHeavy(), Mode: mode}},
			})
			if err != nil {
				t.Fatalf("cluster: %v", err)
			}
			got := res.Tenants[0].Result
			if !reflect.DeepEqual(got, solo) {
				t.Fatalf("N=1 cluster result differs from solo run\ncluster: %+v\nsolo:    %+v", got, solo)
			}
			if res.Tenants[0].Wait != 0 {
				t.Errorf("solo tenant waited %g", res.Tenants[0].Wait)
			}
			if want := res.Tenants[0].Finish - res.Tenants[0].Start; res.Tenants[0].Busy != want {
				t.Errorf("solo tenant busy %g != active span %g", res.Tenants[0].Busy, want)
			}
		})
	}
}

// TestSoloIdentityAsync repeats the identity check under asynchronous
// movement, where the shared copy engine's backlog is part of the state.
func TestSoloIdentityAsync(t *testing.T) {
	cfg := tight
	cfg.AsyncMovement = true
	cfg.HintLookahead = 2
	solo, err := sched.RunMode(movementHeavy(), "CA:LMP", cfg)
	if err != nil {
		t.Fatalf("solo: %v", err)
	}
	res, err := Run(Config{
		Engine: cfg,
		Jobs:   []Job{{Model: movementHeavy(), Mode: "CA:LMP"}},
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	if !reflect.DeepEqual(res.Tenants[0].Result, solo) {
		t.Fatal("async N=1 cluster result differs from solo run")
	}
}

// TestSoloSlowdownIsOne: with a baseline scheduler attached, a lone
// tenant's slowdown is exactly 1.0 — its active span is its solo time.
func TestSoloSlowdownIsOne(t *testing.T) {
	res, err := Run(Config{
		Engine:    tight,
		Jobs:      []Job{{Model: movementHeavy(), Mode: "CA:LMP"}},
		Baselines: &sched.Scheduler{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tenants[0].Slowdown; got != 1.0 {
		t.Fatalf("solo slowdown = %v, want exactly 1.0", got)
	}
}

// TestRepeatRunDeterminism: the same seeded job mix produces a
// byte-identical cluster result on every run, including the fairness
// metrics computed through a parallel baseline scheduler.
func TestRepeatRunDeterminism(t *testing.T) {
	run := func(workers int) *Result {
		t.Helper()
		res, err := Run(Config{
			Engine:    tight,
			Jobs:      Mix(7, 4),
			Baselines: &sched.Scheduler{Workers: workers},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run(1)
	again := run(1)
	parallel := run(runtime.GOMAXPROCS(0))
	if !reflect.DeepEqual(first, again) {
		t.Fatal("repeat run differs")
	}
	if !reflect.DeepEqual(first, parallel) {
		t.Fatal("parallel-baseline run differs from serial")
	}
}

// TestTieBreakByJobIndex pins the dispatch loop's tie-breaking rule: two
// identical jobs collide at every event timestamp (both start at arrival
// 0 and consume identical durations), and the lower job index must win
// every tie — first dispatch, first start, first finish.
func TestTieBreakByJobIndex(t *testing.T) {
	job := func(name string) Job {
		return Job{Name: name, Model: models.MLP(512, []int{1024}, 10, 64), Mode: "CA:LMP"}
	}
	res, err := Run(Config{
		Engine: engine.Config{FastCapacity: 64 * units.MB, SlowCapacity: units.GB, Iterations: 2},
		Jobs:   []Job{job("a"), job("b")},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Tenants[0], res.Tenants[1]
	if a.FirstDispatch != 0 {
		t.Errorf("job a first dispatch = %d, want 0 (index tie-break)", a.FirstDispatch)
	}
	if b.FirstDispatch != 1 {
		t.Errorf("job b first dispatch = %d, want 1 (strict alternation from the first collision)", b.FirstDispatch)
	}
	if a.Start >= b.Start {
		t.Errorf("job a started at %g, not before b at %g", a.Start, b.Start)
	}
	// The iteration-boundary event consumes zero virtual time, so the
	// identical jobs may finish at the same instant — but a can never
	// finish after b.
	if a.Finish > b.Finish {
		t.Errorf("job a finished at %g, after b at %g", a.Finish, b.Finish)
	}
	// Identical jobs must interleave evenly: neither can run to
	// completion before the other starts.
	if b.Start >= a.Finish {
		t.Errorf("job b started at %g, after a finished at %g — tenants did not interleave", b.Start, a.Finish)
	}
}

// TestArrivalOrdersDispatch: a later arrival merges later regardless of
// job index.
func TestArrivalOrdersDispatch(t *testing.T) {
	m := func() *models.Model { return models.MLP(512, []int{1024}, 10, 64) }
	res, err := Run(Config{
		Engine: engine.Config{FastCapacity: 64 * units.MB, SlowCapacity: units.GB, Iterations: 2},
		Jobs: []Job{
			{Name: "late", Model: m(), Mode: "CA:LMP", Arrival: 1000},
			{Name: "early", Model: m(), Mode: "CA:LMP"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	late, early := res.Tenants[0], res.Tenants[1]
	if early.FirstDispatch != 0 {
		t.Errorf("early job's first dispatch = %d, want 0", early.FirstDispatch)
	}
	// An arrival far past the early job's total runtime serializes them.
	if late.FirstDispatch != early.Steps {
		t.Errorf("late job's first dispatch = %d, want %d (after every early event)",
			late.FirstDispatch, early.Steps)
	}
}

// TestPerTenantConservation runs a contended mixed-mode cluster under the
// invariants auditor attached to every clock advance: each tenant's
// private manager must conserve bytes (used + free == capacity per tier)
// at every point virtual time moves, with the audits fanned out from the
// cluster's single clock hook.
func TestPerTenantConservation(t *testing.T) {
	cfg := tight
	cfg.CheckEveryAdvance = true
	cfg.CheckInvariants = true
	res, err := Run(Config{
		Engine: cfg,
		Jobs: []Job{
			{Name: "ca", Model: movementHeavy(), Mode: "CA:LMP"},
			{Name: "co", Model: models.MLP(1024, []int{2048}, 10, 128), Mode: "CA:LM"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range res.Tenants {
		if tn.Result.InvariantChecks == 0 {
			t.Errorf("%s: no invariant audits ran", tn.Name)
		}
	}
}

// TestContendedFairnessMetrics is the acceptance scenario: a 4-tenant
// contended run must produce per-tenant slowdown and fast-tier-share
// metrics, no tenant may appear to speed up under contention (slowdown >=
// 1.0), shares must partition the fast-tier traffic, and the whole result
// must be reproducible byte-for-byte with parallel baseline workers.
func TestContendedFairnessMetrics(t *testing.T) {
	mk := func() Config {
		return Config{
			Engine: tight,
			Jobs: []Job{
				{Name: "t0", Model: movementHeavy(), Mode: "CA:LMP"},
				{Name: "t1", Model: movementHeavy(), Mode: "CA:LMP"},
				{Name: "t2", Model: models.MLP(1024, []int{2048, 2048}, 10, 128), Mode: "CA:LM"},
				{Name: "t3", Model: models.MLP(512, []int{4096}, 10, 256), Mode: "CA:TG"},
			},
			Baselines: &sched.Scheduler{Workers: runtime.GOMAXPROCS(0)},
		}
	}
	res, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	var shares float64
	for _, tn := range res.Tenants {
		if tn.Slowdown < 1.0 {
			t.Errorf("%s: slowdown %v < 1.0 — tenant sped up under contention", tn.Name, tn.Slowdown)
		}
		if tn.SoloTime <= 0 {
			t.Errorf("%s: no solo baseline time", tn.Name)
		}
		if tn.FastShare <= 0 || tn.FastShare >= 1 {
			t.Errorf("%s: fast share %v outside (0,1)", tn.Name, tn.FastShare)
		}
		if tn.Wait <= 0 {
			t.Errorf("%s: no wait time under 4-way contention", tn.Name)
		}
		shares += tn.FastShare
	}
	if math.Abs(shares-1) > 1e-9 {
		t.Errorf("fast shares sum to %v, want 1", shares)
	}
	// At least one tenant must show real interference beyond time
	// sharing: a 4-way contended run on a tight fast tier is not free.
	slowest := 0.0
	for _, tn := range res.Tenants {
		if tn.Slowdown > slowest {
			slowest = tn.Slowdown
		}
	}
	if slowest < 1.5 {
		t.Errorf("slowest tenant's slowdown %v suspiciously low for 4-way contention", slowest)
	}
	again, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Fatal("contended run is not reproducible")
	}
}

// TestThrashGuardSuppressesCrossTenantPingPong is the adversarial
// co-tenant scenario: an antagonist squeezes the shared fast tier so a
// static CA:LMP victim ping-pongs (evict to make room, fetch it back,
// evict again). The same victim under CA:TG must detect the cycle, back
// off its fetches, and do measurably less futile movement.
func TestThrashGuardSuppressesCrossTenantPingPong(t *testing.T) {
	victim := func(mode string) (Tenant, error) {
		res, err := Run(Config{
			Engine: engine.Config{
				FastCapacity: 24 * units.MB,
				SlowCapacity: 2 * units.GB,
				Iterations:   4,
			},
			Jobs: []Job{
				{Name: "victim", Model: movementHeavy(), Mode: mode},
				{Name: "antagonist", Model: movementHeavy(), Mode: "CA:LMP"},
			},
		})
		if err != nil {
			return Tenant{}, err
		}
		return res.Tenants[0], nil
	}
	lmp, err := victim("CA:LMP")
	if err != nil {
		t.Fatal(err)
	}
	tg, err := victim("CA:TG")
	if err != nil {
		t.Fatal(err)
	}
	lmpMoves := lmp.Result.Policy.Evictions + lmp.Result.Policy.Prefetches
	tgMoves := tg.Result.Policy.Evictions + tg.Result.Policy.Prefetches
	t.Logf("CA:LMP victim: %d evictions + %d prefetches; CA:TG victim: %d + %d (backoffs %d, suppressed %d)",
		lmp.Result.Policy.Evictions, lmp.Result.Policy.Prefetches,
		tg.Result.Policy.Evictions, tg.Result.Policy.Prefetches,
		tg.Result.Adaptive.ThrashBackoffs, tg.Result.Adaptive.SuppressedFetches)
	if lmpMoves == 0 {
		t.Fatal("scenario too loose: static victim did not move data at all")
	}
	if tg.Result.Adaptive.ThrashBackoffs == 0 {
		t.Error("CA:TG victim never detected cross-tenant-induced thrashing")
	}
	if tg.Result.Adaptive.SuppressedFetches == 0 {
		t.Error("CA:TG victim suppressed no fetches")
	}
	if tgMoves >= lmpMoves {
		t.Errorf("CA:TG victim moved as much as the static victim: %d >= %d", tgMoves, lmpMoves)
	}
}

// TestQuotaArbitration: the sum of all tenants' allocations can never
// exceed the device, so a co-tenant measurably displaces its neighbour.
// The fast tier is sized so one job fits without a single eviction but
// two do not — every cluster eviction is co-tenant-induced, and the
// InducedEvictions metric must catch it.
func TestQuotaArbitration(t *testing.T) {
	res, err := Run(Config{
		Engine: engine.Config{
			FastCapacity: 192 * units.MB,
			SlowCapacity: 2 * units.GB,
			Iterations:   3,
		},
		Jobs: []Job{
			{Name: "a", Model: movementHeavy(), Mode: "CA:LMP"},
			{Name: "b", Model: movementHeavy(), Mode: "CA:LMP"},
		},
		Baselines: &sched.Scheduler{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range res.Tenants {
		if tn.InducedEvictions == 0 {
			t.Errorf("%s: co-tenant induced no evictions", tn.Name)
		}
		if tn.InducedEvictions != tn.Result.Policy.Evictions {
			t.Errorf("%s: solo run evicted — fast tier not sized to fit one job (induced %d != total %d)",
				tn.Name, tn.InducedEvictions, tn.Result.Policy.Evictions)
		}
	}
}

// TestClusterErrors covers the config validations.
func TestClusterErrors(t *testing.T) {
	m := models.MLP(256, []int{256}, 10, 8)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no jobs", Config{Engine: tight}},
		{"bad mode", Config{Engine: tight, Jobs: []Job{{Model: m, Mode: "nope"}}}},
		{"no model", Config{Engine: tight, Jobs: []Job{{Mode: "CA:LMP"}}}},
		{"negative arrival", Config{Engine: tight, Jobs: []Job{{Model: m, Mode: "CA:LMP", Arrival: -1}}}},
		{"multi-tenant faults", Config{
			Engine: engine.Config{FaultSpec: "alloc-fail@0.1"},
			Jobs:   []Job{{Model: m, Mode: "CA:LMP"}, {Model: m, Mode: "CA:LMP"}},
		}},
		{"duplicate tenant labels", Config{
			Engine: tight,
			Jobs: []Job{
				{Name: "team a", Model: m, Mode: "CA:LMP"},
				{Name: "team:a", Model: m, Mode: "CA:LMP"},
			},
		}},
	}
	for _, c := range cases {
		if _, err := Run(c.cfg); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

// TestFaultsErrorNamesJob: the fault-injection restriction names the
// offending job so a mixed submission is actionable without digging.
func TestFaultsErrorNamesJob(t *testing.T) {
	m := models.MLP(256, []int{256}, 10, 8)
	_, err := Run(Config{
		Engine: engine.Config{FaultSpec: "alloc-fail@0.1"},
		Jobs: []Job{
			{Name: "victim", Model: m, Mode: "CA:LMP"},
			{Name: "bystander", Model: m, Mode: "CA:LMP"},
		},
	})
	if err == nil {
		t.Fatal("multi-tenant faults: no error")
	}
	for _, want := range []string{"job 0", "victim", "dedicated platform"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("faults error %q does not mention %q", err, want)
		}
	}
}

// TestMultiTenantTraceAllowed: the single-tracer restriction is lifted —
// a traced multi-tenant run succeeds and yields a verified, tenant-tagged
// trace (the regression twin of the faults restriction above).
func TestMultiTenantTraceAllowed(t *testing.T) {
	m := models.MLP(256, []int{256}, 10, 8)
	res, err := Run(Config{
		Engine: func() engine.Config { c := tight; c.Trace = true; return c }(),
		Jobs: []Job{
			{Name: "a", Model: m, Mode: "CA:LMP"},
			{Name: "b", Model: m, Mode: "CA:LMP"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("traced multi-tenant run produced no trace")
	}
	if err := tracing.VerifyLanes(res.Trace); err != nil {
		t.Fatal(err)
	}
	names, lanes := tracing.Lanes(res.Trace)
	if len(names) != 2 {
		t.Fatalf("trace has lanes %v, want one per tenant", names)
	}
	for _, n := range names {
		if len(lanes[n]) == 0 {
			t.Errorf("lane %s is empty", n)
		}
	}
	for _, tn := range res.Tenants {
		if len(tn.Result.Trace) != 0 {
			t.Errorf("%s: tenant result carries a private trace; the cluster owns the multiplexed one", tn.Name)
		}
	}
}

// TestTenantLabelSanitization: caller-chosen tenant names with characters
// that would corrupt series names, CSV headers or Prometheus labels are
// folded to safe labels, and the cluster registry's per-tenant series key
// by the sanitized label.
func TestTenantLabelSanitization(t *testing.T) {
	m := models.MLP(256, []int{256}, 10, 8)
	reg := metrics.New(0)
	cfg := tight
	cfg.Metrics = reg
	res, err := Run(Config{
		Engine: cfg,
		Jobs: []Job{
			{Name: "Team A, web", Model: m, Mode: "CA:LMP"},
			{Name: "mix1-CA:LM", Model: m, Mode: "CA:LM"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"team_a__web", "mix1-ca_lm"}
	for i, tn := range res.Tenants {
		if tn.Label != want[i] {
			t.Errorf("tenant %d label %q, want %q", i, tn.Label, want[i])
		}
	}
	reg.Flush(1)
	for _, lbl := range want {
		if _, ok := reg.Value("cluster_" + lbl + "_fast_bytes"); !ok {
			t.Errorf("cluster registry has no series for label %s", lbl)
		}
	}
	for s := range reg.Summarize().Series {
		if strings.ContainsAny(s, ", :") {
			t.Errorf("series name %q contains unsafe characters", s)
		}
	}
}

// normalizeObs strips the observability-only differences between an
// instrumented cluster result and a bare one so reflect.DeepEqual
// compares simulation outcomes: the recorded Config (which truthfully
// differs in Trace/Metrics), the tenant Labels' trace/metrics carriers
// and the multiplexed trace itself.
func normalizeObs(res, bare *Result) {
	res.Trace = nil
	for i := range res.Tenants {
		if res.Tenants[i].Result != nil && bare.Tenants[i].Result != nil {
			res.Tenants[i].Result.Config = bare.Tenants[i].Result.Config
		}
	}
}

// TestTraceDoesNotPerturbCluster: a traced multi-tenant run is, trace
// stripped, reflect.DeepEqual-identical to the bare run — the mux only
// observes; it never changes a byte of the simulation.
func TestTraceDoesNotPerturbCluster(t *testing.T) {
	jobs := []Job{
		{Name: "a", Model: movementHeavy(), Mode: "CA:LMP"},
		{Name: "b", Model: movementHeavy(), Mode: "CA:LM", Arrival: 0.001},
		{Name: "c", Model: movementHeavy(), Mode: "2LM:M", Arrival: 0.002},
	}
	bare, err := Run(Config{Engine: tight, Jobs: jobs, Baselines: &sched.Scheduler{}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tight
	cfg.Trace = true
	traced, err := Run(Config{Engine: cfg, Jobs: jobs, Baselines: &sched.Scheduler{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.Trace) == 0 {
		t.Fatal("traced run produced no trace")
	}
	if err := tracing.VerifyLanes(traced.Trace); err != nil {
		t.Fatal(err)
	}
	normalizeObs(traced, bare)
	if !reflect.DeepEqual(traced, bare) {
		t.Error("tracing perturbed the cluster run")
	}
}

// TestMetricsDoNotPerturbCluster: a fully metered multi-tenant run
// (cluster registry plus per-tenant registries) is identical to the bare
// run once the registries are stripped from the recorded configs.
func TestMetricsDoNotPerturbCluster(t *testing.T) {
	jobs := []Job{
		{Name: "a", Model: movementHeavy(), Mode: "CA:LMP"},
		{Name: "b", Model: movementHeavy(), Mode: "CA:LM", Arrival: 0.001},
		{Name: "c", Model: movementHeavy(), Mode: "2LM:M", Arrival: 0.002},
	}
	bare, err := Run(Config{Engine: tight, Jobs: jobs, Baselines: &sched.Scheduler{}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tight
	cfg.Metrics = metrics.New(0)
	tenantRegs := map[string]*metrics.Registry{}
	metered, err := Run(Config{
		Engine: cfg, Jobs: jobs, Baselines: &sched.Scheduler{},
		TenantMetrics: func(label string) *metrics.Registry {
			r := metrics.New(0)
			tenantRegs[label] = r
			return r
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tenantRegs) != len(jobs) {
		t.Fatalf("TenantMetrics supplied %d registries, want %d", len(tenantRegs), len(jobs))
	}
	for label, r := range tenantRegs {
		if r.Samples() == 0 {
			t.Errorf("tenant %s registry took no samples", label)
		}
	}
	normalizeObs(metered, bare)
	if !reflect.DeepEqual(metered, bare) {
		t.Error("metrics perturbed the cluster run")
	}
}

// TestPerTenantVerifyAtScale is the paper-scale bit-exactness test: a
// contended four-tenant mix (three CA variants plus a 2LM neighbour, all
// movement-heavy on a tight fast tier) traced end-to-end. Every CA lane
// must decompose its tenant's aggregates exactly, and the per-tenant
// attributed traffic must partition the platform counters bit-for-bit.
func TestPerTenantVerifyAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	cfg := tight
	cfg.Trace = true
	res, err := Run(Config{
		Engine: cfg,
		Jobs: []Job{
			{Name: "t0", Model: movementHeavy(), Mode: "CA:LMP"},
			{Name: "t1", Model: movementHeavy(), Mode: "CA:LM", Arrival: 0.001},
			{Name: "t2", Model: movementHeavy(), Mode: "CA:0", Arrival: 0.002},
			{Name: "t3", Model: movementHeavy(), Mode: "2LM:M", Arrival: 0.003},
		},
		Baselines: &sched.Scheduler{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tracing.VerifyLanes(res.Trace); err != nil {
		t.Fatal(err)
	}
	c := tracing.FindCluster(res.Trace)
	if c == nil {
		t.Fatal("trace has no cluster record")
	}
	if len(c.Tenants) != 4 {
		t.Fatalf("cluster record has %d tenants, want 4", len(c.Tenants))
	}
	_, lanes := tracing.Lanes(res.Trace)
	for _, tn := range res.Tenants {
		lane := lanes[tn.Label]
		if len(lane) == 0 {
			t.Errorf("%s: empty lane", tn.Name)
			continue
		}
		if tn.Mode == "2LM:M" {
			continue // 2LM emits no engine-side trace; covered by the partition check
		}
		tot := tracing.FindTotals(lane)
		if tot == nil {
			t.Errorf("%s: CA lane has no totals record", tn.Name)
			continue
		}
		if err := tracing.Verify(lane); err != nil {
			t.Errorf("%s: %v", tn.Name, err)
		}
	}
	// The cluster record repeats the fairness metrics the result reports.
	for i, tn := range res.Tenants {
		if c.Tenants[i].InducedEvictions != tn.InducedEvictions {
			t.Errorf("%s: cluster record induced evictions %d != result %d",
				tn.Name, c.Tenants[i].InducedEvictions, tn.InducedEvictions)
		}
	}
}

// TestMixSeeded: the generator is deterministic per seed and varies
// across seeds.
func TestMixSeeded(t *testing.T) {
	a, b := Mix(42, 6), Mix(42, 6)
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Mode != b[i].Mode || a[i].Arrival != b[i].Arrival {
			t.Fatalf("job %d differs across identical seeds", i)
		}
		am, err := a[i].Build()
		if err != nil {
			t.Fatal(err)
		}
		bm, err := b[i].Build()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(am, bm) {
			t.Fatalf("job %d models differ across identical seeds", i)
		}
	}
	other := Mix(43, 6)
	same := true
	for i := range a {
		if a[i].Mode != other[i].Mode || a[i].Arrival != other[i].Arrival {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical mixes")
	}
}

func ExampleRun() {
	res, err := Run(Config{
		Engine: engine.Config{FastCapacity: 64 * units.MB, SlowCapacity: units.GB, Iterations: 2},
		Jobs: []Job{
			{Name: "a", Model: models.MLP(512, []int{1024}, 10, 64), Mode: "CA:LMP"},
			{Name: "b", Model: models.MLP(512, []int{1024}, 10, 64), Mode: "2LM:M"},
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Tenants), "tenants finished")
	// Output: 2 tenants finished
}
