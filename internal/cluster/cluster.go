// Package cluster multiplexes N engine jobs onto one shared memsim
// platform under a single global virtual clock, then scales out to M
// platforms behind a Router with pluggable admission/placement policies.
//
// The simulator leans on the engine's event-driven core: every job is an
// engine.Stepper whose events (one kernel with its hints and annotations,
// or one iteration boundary) are dispatched one at a time in timestamp
// order. Each tenant carries a private event timestamp — its arrival time
// plus the virtual time its own events have consumed — and the dispatch
// loop always runs the tenant with the smallest timestamp, breaking ties
// by job index. The result is the deterministic merge of N solo event
// streams onto one platform: tenants interleave in proportion to their
// event durations, and a cluster with a single tenant replays the solo
// engine run byte-for-byte (the property the N=1 identity tests pin).
//
// Tenants share the platform's memory system but keep private runtimes:
// each job gets its own data manager, policy instance and GC over private
// allocators, while per-tier alloc.Quota budgets arbitrate the shared
// device capacity — the aggregate bytes held by all tenants can never
// exceed the device, and a tenant squeezed by its neighbours sees
// allocation exhaustion exactly as it would on a smaller device. The copy
// engine is genuinely shared: one tenant's queued movement delays
// another's waits, which is the interference channel the fairness metrics
// (slowdown vs. solo, fast-tier share, induced evictions) measure.
package cluster

import (
	"errors"
	"fmt"
	"strings"

	"cachedarrays/internal/alloc"
	"cachedarrays/internal/engine"
	"cachedarrays/internal/invariants"
	"cachedarrays/internal/memsim"
	"cachedarrays/internal/metrics"
	"cachedarrays/internal/models"
	"cachedarrays/internal/sched"
	"cachedarrays/internal/tracing"
)

// Job describes one tenant submitted to a cluster.
type Job struct {
	// Name labels the tenant in results and errors ("job<i>" if empty).
	Name string
	// Model is the pre-built workload. Leave nil and set Build to defer
	// construction until the job is placed (router runs build only the
	// jobs a platform actually admits).
	Model *models.Model
	// Build constructs the job's model when Model is nil. It must be
	// deterministic.
	Build func() (*models.Model, error)
	// Mode is the operating mode (any sched.Normalize spelling).
	Mode string
	// Arrival is the job's arrival offset in virtual seconds: the origin
	// of its private event timeline, so jobs arriving later merge later.
	// It biases the merge order only — the global clock never idles (no
	// events, no time), so arrival offsets do not appear in clock-based
	// timings. That is what keeps a lone tenant byte-identical to the
	// solo engine run for any arrival.
	Arrival float64
	// Iterations overrides the shared config's iteration count for this
	// job (0 keeps it). Platform-shaping fields cannot vary per job.
	Iterations int
}

// Config parameterizes one shared-platform cluster run.
type Config struct {
	// Engine is the shared platform description plus the per-run knobs
	// every tenant inherits. With more than one job, FaultSpec is
	// rejected (the platform has a single injector slot per device),
	// Trace multiplexes every tenant onto one tagged recorder (the
	// Result's Trace carries per-tenant lanes plus a trailing cluster
	// record), and Metrics becomes the cluster-level registry: the
	// per-tenant fairness series register there instead of the engine's
	// solo series. With exactly one job every field passes through
	// untouched.
	Engine engine.Config
	// Jobs are the tenants.
	Jobs []Job
	// Baselines, when non-nil, computes each tenant's solo run through
	// the shared scheduler/result cache and fills the fairness fields
	// (SoloTime, Slowdown, InducedEvictions). Solo runs strip
	// instrumentation that does not perturb results, so they cache.
	Baselines *sched.Scheduler
	// TenantMetrics, when non-nil on a multi-tenant run, supplies each
	// tenant's private metrics registry (keyed by the tenant's sanitized
	// label): the tenant's solo engine series land there instead of being
	// dropped, and the caller exports them with tenant="..." labels. The
	// cluster's fan-out hook drives sampling.
	TenantMetrics func(label string) *metrics.Registry
	// Sched, when non-nil, memoizes the whole cluster run through the
	// scheduler's content-addressed result cache and single-flight group:
	// an identical (platform, job list, baselines) run is served
	// reflect.DeepEqual-identical from the cache instead of re-simulated,
	// and concurrent identical runs simulate once. Instrumented runs —
	// tracing, fault injection, invariant audits, metrics (cluster-level
	// or TenantMetrics) — always bypass, exactly like solo engine cells.
	Sched *sched.Scheduler
}

// Tenant is one job's outcome and fairness metrics.
type Tenant struct {
	Name string
	// Label is the sanitized form of Name (lowercase, [a-z0-9.-], see
	// runcfg.Name): the tenant's identity in metric series names
	// (cluster_<label>_*), Prometheus tenant="..." labels and trace
	// lanes. Unique across the cluster.
	Label   string
	Mode    string
	Arrival float64

	// Start and Finish bound the tenant's active span on the global
	// clock: Start is taken after setup (persistent allocation), matching
	// the solo run's measurement origin; Finish after its last event.
	// The global clock only moves while events run, so these are not
	// comparable to Arrival, which lives on the tenant's private merge
	// timeline.
	Start  float64
	Finish float64
	// Busy is the virtual time the tenant's own events consumed; Wait is
	// the remainder of the active span — time the platform spent running
	// other tenants' events.
	Busy float64
	Wait float64
	// FirstDispatch is the global dispatch sequence number of the
	// tenant's first event — the observable the tie-breaking regression
	// tests pin.
	FirstDispatch int
	// Steps counts the tenant's dispatched events.
	Steps int

	// FastBytes/SlowBytes are the device traffic attributed to this
	// tenant (exact: only one tenant runs at a time, and movement is
	// charged when its owner dispatches). FastShare is this tenant's
	// fraction of all fast-tier traffic.
	FastBytes int64
	SlowBytes int64
	FastShare float64

	// SoloTime is the tenant's solo total (sum of iteration times) from
	// the baseline run; Slowdown is the active span over SoloTime. Both
	// zero when Config.Baselines is nil. InducedEvictions is the
	// tenant's evictions beyond its solo count — co-tenant pressure made
	// visible.
	SoloTime         float64
	Slowdown         float64
	InducedEvictions int64

	// Result is the tenant's full engine result.
	Result *engine.Result
}

// Result is a cluster run's outcome.
type Result struct {
	Tenants []Tenant
	// Makespan is the global clock when the last tenant finished.
	Makespan float64
	// Dispatches counts dispatched events across all tenants.
	Dispatches int
	// Trace is the multiplexed execution trace of a traced multi-tenant
	// run: every tenant's events tagged with its lane plus a trailing
	// cluster record (tracing.VerifyLanes checks it). A traced N=1 run
	// keeps its trace on the tenant's own Result instead — that path is
	// byte-identical to the solo engine. Excluded from JSON output: at
	// paper scale it dwarfs the results (export it with WriteJSONL).
	Trace []tracing.Event `json:"-"`
}

// tenant is the dispatch loop's per-job state.
type tenant struct {
	// idx is the job's submission index: the dispatch tie-breaker (equal
	// timestamps run in job order) and the key the heap orders by.
	idx  int
	name string
	// label is the sanitized (filesystem/label/series-safe) form of name:
	// the tenant's identity in metric series names, Prometheus labels and
	// trace lanes. Unique across the cluster (prepare rejects collisions).
	label string
	mode  string
	model *models.Model
	cfg   engine.Config
	job   Job

	st       engine.Stepper
	finished bool
	// next is the private event timestamp: arrival + the virtual time
	// this tenant's events have consumed. The dispatch loop runs the
	// smallest next first.
	next float64

	start, finish float64
	busy          float64
	firstDispatch int
	steps         int
	// fast/slow accumulate the device-counter deltas of this tenant's
	// dispatch windows: the traffic attribution behind FastBytes/SlowBytes,
	// the per-tenant series and the trace totals (exact — one tenant runs
	// at a time).
	fast   memsim.Counters
	slow   memsim.Counters
	lane   int // mux lane index (traced multi-tenant runs)
	result *engine.Result
}

// Run executes the cluster: all jobs on one shared platform. When
// cfg.Sched is set and the run carries no instrumentation, the whole
// cluster result is memoized in the scheduler's content-addressed cache
// (see Key) and concurrent identical runs are single-flighted.
func Run(cfg Config) (*Result, error) {
	tenants, ecfg, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	if key := cacheKey(cfg, tenants, ecfg); key != "" {
		v, _, err := cfg.Sched.Memo(key, decodeResult, func() (any, error) {
			return simulate(cfg, tenants, ecfg)
		})
		if err != nil {
			return nil, err
		}
		return v.(*Result), nil
	}
	return simulate(cfg, tenants, ecfg)
}

// RunScanReference executes the cluster with the pre-heap O(N)
// linear-scan dispatcher kept as the executable reference (the
// alloc.Reference pattern). It always simulates — no cache, no single
// flight — so differential tests and the BENCH_cluster heap-vs-scan
// series compare two fresh simulations.
func RunScanReference(cfg Config) (*Result, error) {
	tenants, ecfg, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	return simulateQueued(cfg, tenants, ecfg, newScanQueue(tenants))
}

// simulate is the uncached execution path: one fresh simulation through
// the production heap dispatcher.
func simulate(cfg Config, tenants []*tenant, ecfg engine.Config) (*Result, error) {
	return simulateQueued(cfg, tenants, ecfg, newTenantHeap(tenants))
}

func simulateQueued(cfg Config, tenants []*tenant, ecfg engine.Config, q dispatchQueue) (*Result, error) {
	multi := len(tenants) > 1
	p, release := engine.AcquirePlatform(ecfg)
	var mux *tracing.Mux
	if multi && ecfg.Trace {
		// The cluster claims the platform's one tracer slot: the mux tags
		// every event with the currently-dispatched tenant's lane, and
		// the steppers thread the same recorder through their own layers
		// (Env.Tracer) instead of installing private ones.
		mux = tracing.NewMux(p.Clock.Now)
		for _, t := range tenants {
			t.lane = mux.Lane(t.label)
		}
		p.Clock.Tracer = mux.Recorder()
		p.Copier.Tracer = mux.Recorder()
	}
	if err := dispatch(tenants, ecfg, p, mux, q); err != nil {
		return nil, err // abandon the platform in its failed state
	}
	res := collect(tenants, p.Clock.Now())
	if multi && ecfg.Metrics.Enabled() {
		ecfg.Metrics.SetMeta("mode", "cluster")
		ecfg.Metrics.SetMeta("model", fmt.Sprintf("%d-tenant", len(cfg.Jobs)))
		ecfg.Metrics.Flush(p.Clock.Now())
	}
	// Snapshot the whole-platform counters before release resets them:
	// the cluster trace record pins the per-tenant attribution to them.
	fc, sc := p.Fast.Counters(), p.Slow.Counters()
	fastDev, slowDev := p.Fast.Name, p.Slow.Name
	release()
	if cfg.Baselines != nil {
		if err := fairness(res, tenants, cfg.Baselines); err != nil {
			return nil, err
		}
	}
	if mux != nil {
		// Emitted after fairness so the record carries the solo-baseline
		// metrics; the mux no longer touches the (released) platform.
		mux.EmitCluster(clusterTotals(res, tenants, fc, sc, fastDev, slowDev))
		res.Trace = mux.Events()
	}
	return res, nil
}

// clusterTotals assembles the trailing trace record from the collected
// results and the dispatch loop's per-tenant traffic attribution.
func clusterTotals(res *Result, tenants []*tenant, fc, sc memsim.Counters, fastDev, slowDev string) tracing.ClusterTotals {
	c := tracing.ClusterTotals{
		FastDevice:     fastDev,
		SlowDevice:     slowDev,
		FastReadBytes:  fc.ReadBytes,
		FastWriteBytes: fc.WriteBytes,
		SlowReadBytes:  sc.ReadBytes,
		SlowWriteBytes: sc.WriteBytes,
		Makespan:       res.Makespan,
		Dispatches:     res.Dispatches,
	}
	for i, t := range tenants {
		tn := res.Tenants[i]
		c.Tenants = append(c.Tenants, tracing.TenantTotals{
			Name:             t.label,
			Mode:             t.mode,
			Arrival:          tn.Arrival,
			Start:            tn.Start,
			Finish:           tn.Finish,
			Busy:             tn.Busy,
			Wait:             tn.Wait,
			Steps:            tn.Steps,
			SoloTime:         tn.SoloTime,
			Slowdown:         tn.Slowdown,
			InducedEvictions: tn.InducedEvictions,
			FastReadBytes:    t.fast.ReadBytes,
			FastWriteBytes:   t.fast.WriteBytes,
			SlowReadBytes:    t.slow.ReadBytes,
			SlowWriteBytes:   t.slow.WriteBytes,
		})
	}
	return c
}

// sanitizeLabel folds a tenant name to its label form — lowercase, with
// anything outside [a-z0-9.-] folded to '_' — mirroring runcfg.Name so a
// tenant's metric series names, Prometheus labels, trace lanes and
// output-file suffixes all agree. Commas and spaces in particular would
// corrupt Prometheus label strings and wide-CSV headers.
func sanitizeLabel(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// prepare validates the config and resolves every job's model, mode and
// per-tenant config before any simulation state exists.
func prepare(cfg Config) ([]*tenant, engine.Config, error) {
	ecfg := cfg.Engine.Canonical()
	if len(cfg.Jobs) == 0 {
		return nil, ecfg, errors.New("cluster: no jobs")
	}
	multi := len(cfg.Jobs) > 1
	tenants := make([]*tenant, len(cfg.Jobs))
	labels := make(map[string]int, len(cfg.Jobs))
	for i, j := range cfg.Jobs {
		mode, err := sched.Normalize(j.Mode)
		if err != nil {
			return nil, ecfg, fmt.Errorf("cluster: job %d: %w", i, err)
		}
		m := j.Model
		if m == nil {
			if j.Build == nil {
				return nil, ecfg, fmt.Errorf("cluster: job %d has neither Model nor Build", i)
			}
			if m, err = j.Build(); err != nil {
				return nil, ecfg, fmt.Errorf("cluster: job %d: %w", i, err)
			}
			if m == nil {
				return nil, ecfg, fmt.Errorf("cluster: job %d: Build returned a nil model", i)
			}
		}
		name := j.Name
		if name == "" {
			name = fmt.Sprintf("job%d", i)
		}
		if multi && ecfg.FaultSpec != "" {
			// One injector slot per device: a shared schedule would fire
			// for whichever tenant happens to be dispatched, making the
			// faults unattributable.
			return nil, ecfg, fmt.Errorf(
				"cluster: job %d (%s): fault injection requires a dedicated platform (one injector slot per device); run the faulted job solo",
				i, name)
		}
		label := sanitizeLabel(name)
		if prev, ok := labels[label]; ok {
			return nil, ecfg, fmt.Errorf(
				"cluster: job %d (%s) and job %d (%s) collide on tenant label %q; give the jobs distinct names",
				prev, cfg.Jobs[prev].Name, i, j.Name, label)
		}
		labels[label] = i
		jobCfg := ecfg
		if j.Iterations > 0 {
			jobCfg.Iterations = j.Iterations
		}
		if multi {
			// The shared registry belongs to the cluster (fairness
			// series); tenants must not register their solo series into
			// it — series names would collide. A TenantMetrics supplier
			// gives each tenant a private registry instead.
			jobCfg.Metrics = nil
			if cfg.TenantMetrics != nil {
				jobCfg.Metrics = cfg.TenantMetrics(label)
			}
		}
		if j.Arrival < 0 {
			return nil, ecfg, fmt.Errorf("cluster: job %d: negative arrival %g", i, j.Arrival)
		}
		tenants[i] = &tenant{
			idx: i, name: name, label: label, mode: mode, model: m, cfg: jobCfg, job: j,
			next: j.Arrival,
		}
	}
	return tenants, ecfg, nil
}

// dispatch is the timestamp-ordered event loop: repeatedly run the
// unfinished tenant with the smallest private timestamp (ties broken by
// job index), until every tenant has finished. Selection comes from the
// queue — the production heap or the linear-scan reference, which the
// differential tests prove interchangeable. The per-dispatch hot path is
// allocation-free: the queue is pre-sized, counter snapshots are value
// copies, and the only closures (traffic attribution, the clock's hook
// fan-out) are built once per run, never per step.
func dispatch(tenants []*tenant, ecfg engine.Config, p *memsim.Platform, mux *tracing.Mux, q dispatchQueue) error {
	env := &engine.Env{
		Platform:  p,
		FastQuota: alloc.NewQuota(p.Fast.Capacity),
		SlowQuota: alloc.NewQuota(p.Slow.Capacity),
	}
	// active is the currently-dispatched tenant: the owner of every event
	// and byte the platform produces until the next dispatch decision.
	var active *tenant
	if mux != nil {
		env.Tracer = mux.Recorder()
		env.Traffic = func() (int64, int64, int64, int64) {
			return active.fast.ReadBytes, active.fast.WriteBytes,
				active.slow.ReadBytes, active.slow.WriteBytes
		}
	}
	// The clock has one OnAdvance hook and one Metrics slot; the cluster
	// claims the hook and fans each advance out to every tenant's
	// invariant checker and metrics registry.
	var checkers []*invariants.Checker
	var regs []*metrics.Registry
	env.OnChecker = func(c *invariants.Checker) { checkers = append(checkers, c) }
	env.OnRegistry = func(r *metrics.Registry) { regs = append(regs, r) }
	p.Clock.OnAdvance = func(now, dt float64) {
		for _, c := range checkers {
			c.OnAdvance(now, dt)
		}
		for _, r := range regs {
			r.Tick(now, dt)
		}
	}
	dispatches := 0
	if len(tenants) > 1 && ecfg.Metrics.Enabled() {
		registerClusterSeries(ecfg.Metrics, tenants, p, env, &dispatches)
		regs = append(regs, ecfg.Metrics)
	}

	for {
		t := q.peek()
		if t == nil {
			return nil
		}
		active = t
		if mux != nil {
			// Dispatch boundary: subsequent events belong to this
			// tenant's lane (the mux restores its iteration/kernel/hint
			// context alongside the tag).
			mux.Switch(t.lane)
		}
		if t.st == nil {
			// First dispatch: build the stepper now, so the job's setup
			// (persistent allocation, instrumentation wiring) happens at
			// its place in the merged order, atomically with its first
			// event. Setup traffic is attributed to the tenant; Start is
			// taken after setup, matching the solo measurement origin.
			fb, sb := p.Fast.Counters(), p.Slow.Counters()
			st, err := engine.NewStepper(t.model, t.mode, t.cfg, env)
			if err != nil {
				return fmt.Errorf("cluster: %s: %w", t.name, err)
			}
			t.st = st
			t.start = p.Clock.Now()
			t.firstDispatch = dispatches
			t.fast.Add(p.Fast.Counters().Sub(fb))
			t.slow.Add(p.Slow.Counters().Sub(sb))
		}
		stepped := false
		if !t.st.Done() {
			fb, sb := p.Fast.Counters(), p.Slow.Counters()
			before := p.Clock.Now()
			if _, err := t.st.Step(); err != nil {
				return fmt.Errorf("cluster: %s: %w", t.name, err)
			}
			dt := p.Clock.Now() - before
			t.busy += dt
			t.next += dt
			t.fast.Add(p.Fast.Counters().Sub(fb))
			t.slow.Add(p.Slow.Counters().Sub(sb))
			t.steps++
			dispatches++
			stepped = true
		}
		if t.st.Done() {
			res, err := t.st.Finish()
			if err != nil {
				return fmt.Errorf("cluster: %s: %w", t.name, err)
			}
			t.result = res
			t.finished = true
			t.finish = p.Clock.Now()
			q.remove()
		} else if stepped {
			q.bumped()
		}
	}
}

// collect assembles the tenants' outcomes.
func collect(tenants []*tenant, makespan float64) *Result {
	res := &Result{Makespan: makespan}
	var totalFast int64
	for _, t := range tenants {
		totalFast += t.fast.TotalBytes()
		res.Dispatches += t.steps
	}
	for _, t := range tenants {
		out := Tenant{
			Name: t.name, Label: t.label, Mode: t.mode, Arrival: t.job.Arrival,
			Start: t.start, Finish: t.finish, Busy: t.busy,
			Wait:          t.finish - t.start - t.busy,
			FirstDispatch: t.firstDispatch, Steps: t.steps,
			FastBytes: t.fast.TotalBytes(), SlowBytes: t.slow.TotalBytes(),
			Result: t.result,
		}
		if totalFast > 0 {
			out.FastShare = float64(t.fast.TotalBytes()) / float64(totalFast)
		}
		res.Tenants = append(res.Tenants, out)
	}
	return res
}

// fairness runs each tenant's solo baseline through the scheduler (and
// its result cache) and fills the interference metrics.
func fairness(res *Result, tenants []*tenant, s *sched.Scheduler) error {
	cells := make([]sched.Cell, len(tenants))
	for i, t := range tenants {
		cells[i] = sched.Cell{
			Name:  t.name + "/solo",
			Model: t.model,
			Mode:  t.mode,
			Cfg:   baselineConfig(t.cfg),
		}
	}
	solo, err := s.Run(cells)
	if err != nil {
		return fmt.Errorf("cluster: baselines: %w", err)
	}
	for i := range tenants {
		tn := &res.Tenants[i]
		var total float64
		for _, it := range solo[i].Iterations {
			total += it.Time
		}
		tn.SoloTime = total
		if total > 0 {
			tn.Slowdown = (tn.Finish - tn.Start) / total
		}
		if d := tn.Result.Policy.Evictions - solo[i].Policy.Evictions; d > 0 {
			tn.InducedEvictions = d
		}
	}
	return nil
}

// baselineConfig strips the instrumentation that never perturbs results
// (so solo baselines stay cacheable) while keeping everything that does.
func baselineConfig(cfg engine.Config) engine.Config {
	cfg.Metrics = nil
	cfg.Trace = false
	cfg.TraceEvents = 0
	cfg.CheckEveryAdvance = false
	cfg.CheckInvariants = false
	return cfg
}

// registerClusterSeries registers the cluster-level series: per-tenant
// fairness series (keyed by the tenant's sanitized label — prepare
// guarantees uniqueness), the shared-tier quota/contention series, the
// dispatch counter and the shared platform's device series.
func registerClusterSeries(reg *metrics.Registry, tenants []*tenant,
	p *memsim.Platform, env *engine.Env, dispatches *int) {

	for _, t := range tenants {
		pre := "cluster_" + t.label + "_"
		reg.CounterFunc(pre+"fast_bytes", func() float64 { return float64(t.fast.TotalBytes()) })
		reg.CounterFunc(pre+"slow_bytes", func() float64 { return float64(t.slow.TotalBytes()) })
		reg.CounterFunc(pre+"busy_seconds", func() float64 { return t.busy })
		reg.CounterFunc(pre+"wait_seconds", func() float64 {
			// Time the platform spent on other tenants while this one
			// was live: the live form of the post-run Wait column.
			if t.st == nil {
				return 0
			}
			end := p.Clock.Now()
			if t.finished {
				end = t.finish
			}
			if w := end - t.start - t.busy; w > 0 {
				return w
			}
			return 0
		})
		reg.CounterFunc(pre+"events", func() float64 { return float64(t.steps) })
		reg.Gauge(pre+"active", func() float64 {
			if t.st != nil && !t.finished {
				return 1
			}
			return 0
		})
	}
	reg.Gauge("cluster_active_tenants", func() float64 {
		n := 0
		for _, t := range tenants {
			if t.st != nil && !t.finished {
				n++
			}
		}
		return float64(n)
	})
	reg.CounterFunc("cluster_dispatches", func() float64 { return float64(*dispatches) })
	quota := func(tier string, q *alloc.Quota) {
		reg.Gauge("cluster_"+tier+"_quota_used_bytes", func() float64 { return float64(q.Used()) })
		reg.Gauge("cluster_"+tier+"_quota_avail_bytes", func() float64 { return float64(q.Avail()) })
		reg.CounterFunc("cluster_"+tier+"_quota_rejections", func() float64 { return float64(q.Rejections()) })
		reg.CounterFunc("cluster_"+tier+"_quota_rejected_bytes", func() float64 { return float64(q.RejectedBytes()) })
	}
	quota("fast", env.FastQuota)
	quota("slow", env.SlowQuota)
	// The shared devices' traffic/utilization series: on a multi-tenant
	// run no solo stepper owns the cluster registry, so the cluster
	// registers them itself (tenant registries carry their own copy —
	// same shared devices, separate Registry instances).
	engine.RegisterPlatformMetrics(reg, p)
}
