package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/metrics"
	"cachedarrays/internal/sched"
)

// Placement policies the router accepts.
const (
	// RoundRobin deals jobs to platforms in arrival order.
	RoundRobin = "round-robin"
	// LeastLoaded places each job on the platform with the least
	// accumulated compute demand (total FLOPs of the jobs placed so far).
	LeastLoaded = "least-loaded"
	// Headroom places each job on the platform with the most remaining
	// fast-tier headroom (fast capacity minus the peak footprints already
	// placed) — the placement that keeps hot working sets in DRAM.
	Headroom = "headroom"
	// RejectOnPressure is LeastLoaded with admission control: a job whose
	// peak footprint would push the platform's total placed footprint past
	// its combined fast+slow capacity is rejected instead of queued into
	// certain thrashing.
	RejectOnPressure = "reject-on-pressure"
)

// Policies lists the router's placement policies.
var Policies = []string{RoundRobin, LeastLoaded, Headroom, RejectOnPressure}

// RouterConfig parameterizes a multi-platform run.
type RouterConfig struct {
	// Platforms describes each platform (one cluster simulation per
	// entry); capacities may differ — the headroom policy exploits that.
	Platforms []engine.Config
	// Jobs are routed across the platforms.
	Jobs []Job
	// Policy selects the placement policy (default LeastLoaded).
	Policy string
	// Workers bounds how many platform simulations run concurrently
	// (<=1 serial). Each platform simulation is single-threaded and
	// results are indexed by platform, so the worker count never changes
	// any byte of the result.
	Workers int
	// Baselines is passed through to every platform's cluster run (the
	// scheduler is safe for concurrent use and single-flights duplicate
	// solo runs across platforms).
	Baselines *sched.Scheduler
	// Sched is passed through to every platform's cluster run: each
	// platform's whole result is memoized under its own cluster key, so
	// a repeated sweep re-serves every platform from the cache and two
	// platforms given identical (config, job list) pairs — within one
	// routed run or across runs — simulate once.
	Sched *sched.Scheduler
	// Metrics, when non-nil, receives the router's placement series:
	// per-platform placed-job counters and demand gauges plus the
	// rejection counter. The registry is flushed once after placement —
	// routing is a pre-pass in real time, not virtual time.
	Metrics *metrics.Registry
}

// RouterResult is a routed run's outcome.
type RouterResult struct {
	// Placement maps job index to platform index, -1 for rejected jobs.
	Placement []int
	// Rejected lists the rejected jobs' indices in job order.
	Rejected []int
	// Platforms holds each platform's cluster result; nil for a platform
	// no job was placed on.
	Platforms []*Result
}

// Route places every job on a platform (or rejects it), then runs each
// platform's cluster simulation. Placement is a deterministic pre-pass
// over the jobs in (arrival, index) order using model-derived demand
// estimates, so routing decisions never depend on simulation outcomes —
// which is what lets the M platform simulations run in parallel and still
// produce byte-identical results at any worker count.
func Route(cfg RouterConfig) (*RouterResult, error) {
	if len(cfg.Platforms) == 0 {
		return nil, errors.New("cluster: router has no platforms")
	}
	if len(cfg.Jobs) == 0 {
		return nil, errors.New("cluster: router has no jobs")
	}
	policy := cfg.Policy
	if policy == "" {
		policy = LeastLoaded
	}
	// Resolve every job's model up front: the placement pre-pass needs
	// demand estimates before any platform exists.
	jobs := make([]Job, len(cfg.Jobs))
	copy(jobs, cfg.Jobs)
	for i := range jobs {
		if jobs[i].Model != nil {
			continue
		}
		if jobs[i].Build == nil {
			return nil, fmt.Errorf("cluster: job %d has neither Model nor Build", i)
		}
		m, err := jobs[i].Build()
		if err != nil {
			return nil, fmt.Errorf("cluster: job %d: %w", i, err)
		}
		if m == nil {
			return nil, fmt.Errorf("cluster: job %d: Build returned a nil model", i)
		}
		jobs[i].Model = m
	}

	res := &RouterResult{
		Placement: make([]int, len(jobs)),
		Platforms: make([]*Result, len(cfg.Platforms)),
	}
	if err := place(res, jobs, cfg.Platforms, policy); err != nil {
		return nil, err
	}
	registerRouterSeries(cfg.Metrics, res, jobs, len(cfg.Platforms), policy)

	// Group placed jobs per platform, preserving original job order.
	perPlatform := make([][]Job, len(cfg.Platforms))
	for ji, pi := range res.Placement {
		if pi >= 0 {
			perPlatform[pi] = append(perPlatform[pi], jobs[ji])
		}
	}

	// Run the platforms: independent single-threaded simulations on a
	// bounded worker pool. Workers claim platform indices from a shared
	// atomic counter — no feeder goroutine, no channel per run — and each
	// writes only its own result and error slot, so the fan-out needs no
	// lock at all. Every failed platform's error is kept (indexed by
	// platform) and the joined error names each one, not just the first.
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(cfg.Platforms) {
		workers = len(cfg.Platforms)
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
	)
	errs := make([]error, len(cfg.Platforms))
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				pi := int(next.Add(1)) - 1
				if pi >= len(cfg.Platforms) {
					return
				}
				if len(perPlatform[pi]) == 0 {
					continue
				}
				r, err := Run(Config{
					Engine:    cfg.Platforms[pi],
					Jobs:      perPlatform[pi],
					Baselines: cfg.Baselines,
					Sched:     cfg.Sched,
				})
				if err != nil {
					errs[pi] = fmt.Errorf("cluster: platform %d: %w", pi, err)
					continue
				}
				res.Platforms[pi] = r
			}
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return res, nil
}

// place fills res.Placement and res.Rejected: a deterministic greedy pass
// over the jobs sorted by (arrival, original index), charging each
// platform with the placed jobs' model-derived demand.
func place(res *RouterResult, jobs []Job, platforms []engine.Config, policy string) error {
	fastCap := make([]int64, len(platforms))
	totalCap := make([]int64, len(platforms))
	for pi, pc := range platforms {
		c := pc.Canonical()
		fastCap[pi] = capBytes(c.FastCapacity)
		totalCap[pi] = capBytes(c.FastCapacity) + capBytes(c.SlowCapacity)
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if jobs[order[a]].Arrival != jobs[order[b]].Arrival {
			return jobs[order[a]].Arrival < jobs[order[b]].Arrival
		}
		return order[a] < order[b]
	})

	load := make([]float64, len(platforms)) // accumulated FLOPs
	foot := make([]int64, len(platforms))   // accumulated peak footprints
	rr := 0
	for _, ji := range order {
		demandF := jobs[ji].Model.TotalFLOPs()
		demandB := jobs[ji].Model.PeakFootprint()
		pi := -1
		switch policy {
		case RoundRobin:
			pi = rr % len(platforms)
			rr++
		case LeastLoaded:
			pi = argminLoad(load)
		case Headroom:
			pi = 0
			for c := 1; c < len(platforms); c++ {
				if fastCap[c]-foot[c] > fastCap[pi]-foot[pi] {
					pi = c
				}
			}
		case RejectOnPressure:
			pi = argminLoad(load)
			if foot[pi]+demandB > totalCap[pi] {
				pi = -1
			}
		default:
			return fmt.Errorf("cluster: unknown placement policy %q (%v)", policy, Policies)
		}
		res.Placement[ji] = pi
		if pi < 0 {
			res.Rejected = append(res.Rejected, ji)
			continue
		}
		load[pi] += demandF
		foot[pi] += demandB
	}
	sort.Ints(res.Rejected)
	return nil
}

// registerRouterSeries records the placement outcome as metric series and
// takes one sample: per-platform placed-job counts and aggregate demand,
// plus the rejection count. A nil registry records nothing.
func registerRouterSeries(reg *metrics.Registry, res *RouterResult, jobs []Job, platforms int, policy string) {
	if !reg.Enabled() {
		return
	}
	placed := make([]int, platforms)
	demand := make([]float64, platforms)
	for ji, pi := range res.Placement {
		if pi >= 0 {
			placed[pi]++
			demand[pi] += jobs[ji].Model.TotalFLOPs()
		}
	}
	for pi := 0; pi < platforms; pi++ {
		reg.CounterFunc(fmt.Sprintf("router_p%d_placed_jobs", pi), func() float64 { return float64(placed[pi]) })
		reg.Gauge(fmt.Sprintf("router_p%d_demand_flops", pi), func() float64 { return demand[pi] })
	}
	reg.CounterFunc("router_rejected_jobs", func() float64 { return float64(len(res.Rejected)) })
	reg.SetMeta("mode", "router")
	reg.SetMeta("model", policy)
	reg.Flush(0)
}

// argminLoad returns the least-loaded platform, ties to the lowest index.
func argminLoad(load []float64) int {
	pi := 0
	for c := 1; c < len(load); c++ {
		if load[c] < load[pi] {
			pi = c
		}
	}
	return pi
}

// capBytes maps the engine's capacity convention (NVRAMOnly = zero bytes)
// to a byte count for demand estimates.
func capBytes(c int64) int64 {
	if c == engine.NVRAMOnly {
		return 0
	}
	return c
}
