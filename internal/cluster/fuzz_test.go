package cluster

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"cachedarrays/internal/dm"
	"cachedarrays/internal/engine"
	"cachedarrays/internal/models"
	"cachedarrays/internal/units"
)

// fuzzScenario decodes an arbitrary byte string into a small but fully
// valid routed cluster scenario: 1-4 jobs over 1-2 platforms with
// fuzzer-chosen modes, arrivals, shapes, placement policy and a tight
// fast tier. The slow tier is kept generous so persistent working sets
// always fit — any failure beyond allocator exhaustion is then a finding,
// not a malformed input.
func fuzzScenario(data []byte) (RouterConfig, bool) {
	if len(data) < 7 {
		return RouterConfig{}, false
	}
	n := 1 + int(data[0])%4
	m := 1 + int(data[1])%2
	policy := Policies[int(data[2])%len(Policies)]
	fast := int64(8+int(data[3])%4*8) * units.MB
	iters := 1 + int(data[4])%2
	if len(data) < 5+2*n {
		return RouterConfig{}, false
	}
	jobs := make([]Job, n)
	for i := range jobs {
		x, y := data[5+2*i], data[6+2*i]
		jobs[i] = Job{
			Model:   models.MLP(256<<(x%2), []int{512 << (y % 3)}, 10, 32),
			Mode:    allModes[int(x)%len(allModes)],
			Arrival: float64(y) / 255 * 0.01,
		}
	}
	platforms := make([]engine.Config, m)
	for pi := range platforms {
		platforms[pi] = engine.Config{
			FastCapacity:      fast << pi,
			SlowCapacity:      units.GB,
			Iterations:        iters,
			CheckInvariants:   true,
			CheckEveryAdvance: true,
		}
	}
	return RouterConfig{Platforms: platforms, Jobs: jobs, Policy: policy}, true
}

// FuzzClusterSchedule drives arbitrary job mixes through the router and
// the shared-platform dispatch loop with the invariants auditor attached
// to every clock advance. The oracles: no panic; no error other than
// allocator exhaustion under pressure (in particular, no per-tenant
// byte-conservation violation at any virtual timestamp); every admitted
// tenant runs to completion with sane timing; and the whole scenario is
// deterministic — a second run is byte-identical.
func FuzzClusterSchedule(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 0, 1, 1, 0, 5, 10, 3, 200})
	f.Add([]byte{3, 1, 2, 0, 1, 0, 0, 4, 50, 8, 100, 10, 255})
	f.Add([]byte{2, 1, 3, 3, 1, 9, 0, 9, 0, 9, 0})
	// Every job arrives at the same offset: all dispatch decisions start as
	// timestamp ties, the regime where heap/scan tie-breaking must agree.
	f.Add([]byte{3, 0, 1, 1, 0, 1, 7, 2, 7, 3, 7, 4, 7})
	// Mixed iteration lengths on one platform: tenants finish mid-run while
	// others still dispatch (heap remove() under load).
	f.Add([]byte{3, 0, 0, 2, 1, 0, 0, 10, 128, 1, 64, 9, 192})
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, ok := fuzzScenario(data)
		if !ok {
			return
		}
		res, err := Route(cfg)
		if err != nil {
			if errors.Is(err, dm.ErrExhausted) {
				return // capacity pressure is a legal outcome, not a finding
			}
			t.Fatalf("scenario %v: %v", data, err)
		}
		again, err := Route(cfg)
		if err != nil {
			t.Fatalf("repeat run failed: %v", err)
		}
		if !reflect.DeepEqual(res, again) {
			t.Fatal("repeat run differs")
		}
		placed := 0
		for _, pi := range res.Placement {
			if pi >= 0 {
				placed++
			}
		}
		ran := 0
		for pi, pr := range res.Platforms {
			if pr == nil {
				continue
			}
			ran += len(pr.Tenants)
			var shares float64
			for _, tn := range pr.Tenants {
				if tn.Result == nil {
					t.Fatalf("platform %d tenant %s: no result", pi, tn.Name)
				}
				// Only the CA stack wires the per-advance auditor (the
				// baseline modes have no data manager to audit).
				if strings.HasPrefix(tn.Mode, "CA:") && tn.Result.InvariantChecks == 0 {
					t.Fatalf("platform %d tenant %s: no invariant audits ran", pi, tn.Name)
				}
				// Start/Finish live on the global clock, which never
				// idles; Arrival lives on the tenant's private merge
				// timeline — the two are not comparable.
				if tn.Finish < tn.Start || tn.Busy < 0 || tn.Wait < -1e-12 {
					t.Fatalf("platform %d tenant %s: incoherent timing start=%g finish=%g busy=%g wait=%g",
						pi, tn.Name, tn.Start, tn.Finish, tn.Busy, tn.Wait)
				}
				if tn.FastShare < 0 || tn.FastShare > 1 {
					t.Fatalf("platform %d tenant %s: fast share %g", pi, tn.Name, tn.FastShare)
				}
				shares += tn.FastShare
				if tn.Finish > pr.Makespan {
					t.Fatalf("platform %d tenant %s: finish %g past makespan %g", pi, tn.Name, tn.Finish, pr.Makespan)
				}
			}
			if shares > 0 && math.Abs(shares-1) > 1e-9 {
				t.Fatalf("platform %d: fast shares sum to %g", pi, shares)
			}
		}
		if ran != placed {
			t.Fatalf("%d jobs placed but %d ran", placed, ran)
		}
		// Single-platform scenarios double as a differential oracle for the
		// tentpole: routing with one platform keeps every job in submission
		// order, so the routed result must match a direct run through the
		// linear-scan reference dispatcher byte for byte.
		if len(cfg.Platforms) == 1 {
			scan, err := RunScanReference(Config{Engine: cfg.Platforms[0], Jobs: cfg.Jobs})
			if err != nil {
				t.Fatalf("scan reference failed where heap run succeeded: %v", err)
			}
			if !reflect.DeepEqual(res.Platforms[0], scan) {
				t.Fatal("heap dispatch diverged from scan reference")
			}
		}
	})
}

// FuzzDispatchQueue is the queue-level differential fuzz: arbitrary
// tenant counts, fuzzer-chosen initial timestamps (ties included),
// per-step bump amounts and mid-run finishes, with the heap and the scan
// reference driven in lockstep. The oracle: both queues select the same
// tenant at every step and drain together.
func FuzzDispatchQueue(f *testing.F) {
	f.Add([]byte{4, 0, 0, 0, 0, 1, 2, 3, 4, 5})
	f.Add([]byte{16, 7, 7, 7, 7})
	f.Add([]byte{128, 0, 1, 0, 1, 0, 2, 9, 9, 9, 255, 128, 64, 32})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := 1 + int(data[0])%128
		byteAt := func(i int) byte { return data[1+i%(len(data)-1)] }
		mk := func() []*tenant {
			ts := make([]*tenant, n)
			for i := range ts {
				// Coarse start slots from the fuzz bytes: ties are likely.
				ts[i] = &tenant{idx: i, next: float64(byteAt(i) % 8)}
			}
			return ts
		}
		h, s := newTenantHeap(mk()), newScanQueue(mk())
		for step := 0; ; step++ {
			ht, st := h.peek(), s.peek()
			if ht == nil || st == nil {
				if ht != st && (ht != nil || st != nil) {
					t.Fatalf("step %d: queues drained unevenly (heap=%v scan=%v)", step, ht, st)
				}
				return
			}
			if ht.idx != st.idx {
				t.Fatalf("step %d: heap picked idx %d (next=%g), scan picked idx %d (next=%g)",
					step, ht.idx, ht.next, st.idx, st.next)
			}
			b := byteAt(step + ht.idx)
			// Finish roughly one pick in four, and always after a budget so
			// every input terminates.
			if b%4 == 0 || ht.steps >= 32 {
				ht.finished, st.finished = true, true
				h.remove()
				s.remove()
				continue
			}
			bump := float64(b%16) * 0.125 // zero bumps keep ties alive
			ht.next += bump
			ht.steps++
			st.next += bump
			st.steps++
			h.bumped()
			s.bumped()
		}
	})
}
