package cluster

import (
	"reflect"
	"sync"
	"testing"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/metrics"
	"cachedarrays/internal/models"
	"cachedarrays/internal/sched"
	"cachedarrays/internal/units"
)

var cacheCfg = engine.Config{
	FastCapacity: 48 * units.MB,
	SlowCapacity: 1 * units.GB,
	Iterations:   2,
}

// TestClusterCacheHitIdentity pins the cluster-cache contract end to end:
// a cold memoized run equals an uncached fresh simulation, a warm run on
// the same scheduler is served without simulating, and a second process
// (modeled as a fresh scheduler over the same cache directory) is served
// from disk — all reflect.DeepEqual-identical.
func TestClusterCacheHitIdentity(t *testing.T) {
	jobs := BenchMix(11, 6)
	fresh, err := Run(Config{Engine: cacheCfg, Jobs: jobs})
	if err != nil {
		t.Fatalf("fresh: %v", err)
	}

	dir := t.TempDir()
	cache, err := sched.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := &sched.Scheduler{Cache: cache}
	cold, err := Run(Config{Engine: cacheCfg, Jobs: jobs, Sched: s})
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if !reflect.DeepEqual(cold, fresh) {
		t.Fatalf("cold memoized run differs from fresh simulation\ncold:  %+v\nfresh: %+v", cold, fresh)
	}
	if got := s.Simulations(); got != 1 {
		t.Fatalf("cold run simulated %d times, want 1", got)
	}

	warm, err := Run(Config{Engine: cacheCfg, Jobs: jobs, Sched: s})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if got := s.Simulations(); got != 1 {
		t.Fatalf("warm run re-simulated (simulations=%d, want 1)", got)
	}
	if !reflect.DeepEqual(warm, fresh) {
		t.Fatalf("warm hit differs from fresh simulation")
	}

	// Cross-process reuse: a new scheduler over the same directory decodes
	// the disk entry (integrity-checked JSON) instead of simulating.
	cache2, err := sched.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := &sched.Scheduler{Cache: cache2}
	disk, err := Run(Config{Engine: cacheCfg, Jobs: jobs, Sched: s2})
	if err != nil {
		t.Fatalf("disk: %v", err)
	}
	if got := s2.Simulations(); got != 0 {
		t.Fatalf("disk-warm run simulated %d times, want 0", got)
	}
	if !reflect.DeepEqual(disk, fresh) {
		t.Fatalf("disk-decoded hit differs from fresh simulation")
	}
}

// TestClusterCacheKeySensitivity proves the key covers what shapes the
// result — platform config, job identity (names included — they live in
// the Result), mode, arrival, iteration overrides, baselines presence —
// by asserting distinct keys, and stability by recomputing.
func TestClusterCacheKeySensitivity(t *testing.T) {
	base := Config{Engine: cacheCfg, Jobs: []Job{
		{Name: "a", Model: movementHeavy(), Mode: "CA:LM"},
		{Name: "b", Model: movementHeavy(), Mode: "2LM:M", Arrival: 0.001},
	}}
	k0, err := Key(base)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Key(base)
	if err != nil {
		t.Fatal(err)
	}
	if k0 != again {
		t.Fatalf("key not stable: %s vs %s", k0, again)
	}

	mutate := map[string]func(*Config){
		"platform":   func(c *Config) { c.Engine.FastCapacity *= 2 },
		"iterations": func(c *Config) { c.Jobs[0].Iterations = 5 },
		"name":       func(c *Config) { c.Jobs[0].Name = "a2" },
		"mode":       func(c *Config) { c.Jobs[1].Mode = "OS:page" },
		"arrival":    func(c *Config) { c.Jobs[1].Arrival = 0.002 },
		"model":      func(c *Config) { c.Jobs[0].Model = models.MLP(512, []int{1024}, 10, 32) },
		"baselines":  func(c *Config) { c.Baselines = &sched.Scheduler{} },
	}
	seen := map[string]string{k0: "base"}
	for label, mut := range mutate {
		cfg := base
		cfg.Jobs = append([]Job(nil), base.Jobs...)
		mut(&cfg)
		k, err := Key(cfg)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q", label, prev)
		}
		seen[k] = label
	}
}

// TestClusterCacheInstrumentedBypass pins that instrumented runs never
// touch the cache: tracing, invariant audits, a cluster metrics registry
// and per-tenant registries all simulate fresh and store nothing.
func TestClusterCacheInstrumentedBypass(t *testing.T) {
	cache, err := sched.OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	s := &sched.Scheduler{Cache: cache}
	jobs := BenchMix(11, 3)
	variants := map[string]func(*Config){
		"trace":   func(c *Config) { c.Engine.Trace = true },
		"audit":   func(c *Config) { c.Engine.CheckEveryAdvance = true },
		"metrics": func(c *Config) { c.Engine.Metrics = metrics.New(0.01) },
		"tenant-metrics": func(c *Config) {
			c.TenantMetrics = func(string) *metrics.Registry { return metrics.New(0.01) }
		},
	}
	for label, mut := range variants {
		cfg := Config{Engine: cacheCfg, Jobs: jobs, Sched: s}
		mut(&cfg)
		if _, err := Run(cfg); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
	}
	if got := s.Simulations(); got != 0 {
		t.Fatalf("instrumented runs went through Memo (simulations=%d, want 0)", got)
	}
	if st := cache.Stats(); st.Stores != 0 {
		t.Fatalf("instrumented runs stored %d cache entries, want 0", st.Stores)
	}
}

// TestClusterCacheSingleFlight submits the identical cluster run from
// many goroutines against one scheduler: exactly one simulation runs and
// every caller receives a DeepEqual-identical result.
func TestClusterCacheSingleFlight(t *testing.T) {
	cache, err := sched.OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	s := &sched.Scheduler{Cache: cache}
	jobs := BenchMix(5, 4)
	const callers = 8
	results := make([]*Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer wg.Done()
			results[i], errs[i] = Run(Config{Engine: cacheCfg, Jobs: jobs, Sched: s})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := s.Simulations(); got != 1 {
		t.Fatalf("%d concurrent identical runs simulated %d times, want 1", callers, got)
	}
	for i := 1; i < callers; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("caller %d received a different result", i)
		}
	}
}

// TestRouteReusesClusterCache pins Route's per-platform memoization: a
// repeated identical routed run re-serves every platform from the cache
// (zero new simulations) and returns a DeepEqual-identical result.
func TestRouteReusesClusterCache(t *testing.T) {
	cache, err := sched.OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	s := &sched.Scheduler{Cache: cache}
	rcfg := RouterConfig{
		Platforms: []engine.Config{cacheCfg, cacheCfg},
		Jobs:      BenchMix(13, 6),
		Policy:    RoundRobin,
		Workers:   2,
		Sched:     s,
	}
	first, err := Route(rcfg)
	if err != nil {
		t.Fatalf("first route: %v", err)
	}
	sims := s.Simulations()
	if sims == 0 {
		t.Fatalf("first routed run simulated nothing")
	}
	second, err := Route(rcfg)
	if err != nil {
		t.Fatalf("second route: %v", err)
	}
	if got := s.Simulations(); got != sims {
		t.Fatalf("repeat routed run re-simulated: %d -> %d", sims, got)
	}
	if !reflect.DeepEqual(second, first) {
		t.Fatalf("cached routed run differs from the first")
	}
}
