package cluster

import (
	"container/heap"
	"reflect"
	"testing"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/units"
)

// TestHeapMatchesScanReference is the tentpole's differential proof at
// the system level: the production heap dispatcher and the pre-heap
// linear-scan reference produce reflect.DeepEqual-identical cluster
// results — every tenant's full engine result, timings, traffic
// attribution and dispatch ordering — across contended mixes, arrival
// ties and fleet-scale tiny-job mixes.
func TestHeapMatchesScanReference(t *testing.T) {
	small := engine.Config{
		FastCapacity: 48 * units.MB,
		SlowCapacity: 1 * units.GB,
		Iterations:   2,
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"contended-mix", Config{Engine: tight, Jobs: Mix(3, 5)}},
		{"bench-mix", Config{Engine: small, Jobs: BenchMix(7, 16)}},
		{"all-ties", Config{Engine: small, Jobs: []Job{
			{Name: "a", Model: movementHeavy(), Mode: "CA:LM"},
			{Name: "b", Model: movementHeavy(), Mode: "2LM:M"},
			{Name: "c", Model: movementHeavy(), Mode: "CA:LM"},
			{Name: "d", Model: movementHeavy(), Mode: "OS:page"},
		}}},
		{"solo", Config{Engine: small, Jobs: []Job{
			{Name: "only", Model: movementHeavy(), Mode: "CA:LMP", Arrival: 0.5},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Run(tc.cfg)
			if err != nil {
				t.Fatalf("heap run: %v", err)
			}
			want, err := RunScanReference(tc.cfg)
			if err != nil {
				t.Fatalf("scan reference: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("heap dispatch diverged from scan reference\nheap: %+v\nscan: %+v", got, want)
			}
		})
	}
}

// TestQueueSelectionDifferential drives both dispatchQueue
// implementations through an identical synthetic schedule — pseudo-random
// timestamp bumps, deliberate ties, mid-run finishes — and asserts they
// select the same tenant at every step. This is the queue-level half of
// the differential proof: no simulation, just selection order.
func TestQueueSelectionDifferential(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64, 128} {
		mk := func() []*tenant {
			ts := make([]*tenant, n)
			for i := range ts {
				// Few distinct start slots: ties abound.
				ts[i] = &tenant{idx: i, next: float64(i % 3)}
			}
			return ts
		}
		ha, sa := mk(), mk()
		h, s := newTenantHeap(ha), newScanQueue(sa)
		// Deterministic bump schedule shared by both sides; a small prime
		// modulus keeps reproducing ties mid-run.
		step := 0
		for {
			ht, st := h.peek(), s.peek()
			switch {
			case ht == nil && st == nil:
				return
			case ht == nil || st == nil:
				t.Fatalf("n=%d step %d: one queue empty (heap=%v scan=%v)", n, step, ht, st)
			case ht.idx != st.idx:
				t.Fatalf("n=%d step %d: heap picked idx %d (next=%g), scan picked idx %d (next=%g)",
					n, step, ht.idx, ht.next, st.idx, st.next)
			}
			step++
			if step%5 == 4 || ht.steps >= 6 {
				ht.finished = true
				st.finished = true
				h.remove()
				s.remove()
				continue
			}
			bump := float64((step*7+ht.idx*13)%11) * 0.25
			ht.next += bump
			ht.steps++
			st.next += bump
			st.steps++
			h.bumped()
			s.bumped()
		}
	}
}

// TestDispatchQueueZeroAllocs pins the dispatch hot path's allocation
// budget at zero: peek, timestamp bump + sift (bumped) and finish (remove)
// on a pre-sized heap never allocate. A regression here — a closure, a
// snapshot, interface boxing — would show up as a fractional alloc count.
func TestDispatchQueueZeroAllocs(t *testing.T) {
	const n = 64
	tenants := make([]*tenant, n)
	for i := range tenants {
		tenants[i] = &tenant{idx: i}
	}
	backing := make([]*tenant, n)
	h := &tenantHeap{ts: backing}
	allocs := testing.AllocsPerRun(100, func() {
		h.ts = backing[:n]
		copy(h.ts, tenants)
		for _, tn := range tenants {
			tn.steps = 0
			tn.next = float64(tn.idx % 4) // shared slots: tie-heavy
			tn.finished = false
		}
		heap.Init(h)
		for {
			tn := h.peek()
			if tn == nil {
				break
			}
			tn.steps++
			if tn.steps >= 5 {
				tn.finished = true
				h.remove()
				continue
			}
			tn.next += 1 + float64(tn.idx%3)
			h.bumped()
		}
	})
	if allocs != 0 {
		t.Fatalf("dispatch queue hot path allocated %g allocs/run, want 0", allocs)
	}
}
