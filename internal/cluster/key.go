package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/sched"
)

// Key computes the content-addressed cache key of one cluster run: a
// SHA-256 over the canonical platform config plus, per job in submission
// order, the job's name, canonical mode, arrival offset, canonical
// per-job config (the Iterations override folded in) and the model's
// deterministic JSON serialization — everything that shapes a byte of
// the Result, and nothing that does not. Two deliberate departures from
// the solo-cell key (sched.Key):
//
//   - Job names are keyed. A solo run's name is a label outside the
//     result, but tenant names live inside the cluster Result (Name,
//     Label, metric-series identities), so two runs differing only in a
//     job name are different results.
//   - The baselines knob is keyed as a bool. Attaching a baseline
//     scheduler fills the fairness fields (SoloTime, Slowdown,
//     InducedEvictions); which scheduler computes them never changes a
//     byte (the determinism tests prove serial == parallel), so only
//     the presence is hashed.
//
// The format header keeps the cluster key space disjoint from the solo
// key space inside the one shared cache and flight group.
func Key(cfg Config) (string, error) {
	tenants, ecfg, err := prepare(cfg)
	if err != nil {
		return "", err
	}
	return runKey(cfg, tenants, ecfg)
}

// runKey is Key over an already-prepared tenant list (Run reuses the
// prepare it has to do anyway).
func runKey(cfg Config, tenants []*tenant, ecfg engine.Config) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "cachedarrays-cluster v1\nbaselines=%t\njobs=%d\n",
		cfg.Baselines != nil, len(tenants))
	if err := sched.HashConfig(h, "platform", ecfg); err != nil {
		return "", err
	}
	for _, t := range tenants {
		pre := fmt.Sprintf("job%d", t.idx)
		fmt.Fprintf(h, "%s.name=%s\n%s.mode=%s\n%s.arrival=%g\n",
			pre, t.name, pre, t.mode, pre, t.job.Arrival)
		if err := sched.HashConfig(h, pre+".cfg", t.cfg); err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s.model=", pre)
		if err := t.model.SaveJSON(h); err != nil {
			return "", err
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// cacheable reports whether this cluster run may be memoized: a
// scheduler must be attached and the run must carry no instrumentation.
// The engine-side knobs (tracing, faults, audits, a cluster-level
// metrics registry) reuse sched.Cacheable; TenantMetrics is the
// cluster-only instrumentation channel and bypasses the same way —
// per-run registries are artifacts a memoized result cannot reproduce.
func cacheable(cfg Config, ecfg engine.Config) bool {
	return cfg.Sched != nil && sched.Cacheable(ecfg) && cfg.TenantMetrics == nil
}

// cacheKey returns the run's memoization key, or "" when the run must
// execute uncached — no scheduler, instrumentation attached, or a config
// the hasher cannot canonicalize (surfaced once via the scheduler's
// key-error warning, mirroring solo cells).
func cacheKey(cfg Config, tenants []*tenant, ecfg engine.Config) string {
	if !cacheable(cfg, ecfg) {
		return ""
	}
	key, err := runKey(cfg, tenants, ecfg)
	if err != nil {
		sched.WarnKeyError(err)
		return ""
	}
	return key
}

// decodeResult rebuilds a cluster result from a verified cache entry.
func decodeResult(body []byte) (any, error) {
	var r Result
	if err := json.Unmarshal(body, &r); err != nil {
		return nil, err
	}
	return &r, nil
}
