package cluster

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/models"
	"cachedarrays/internal/units"
)

func twoPlatforms() []engine.Config {
	return []engine.Config{
		{FastCapacity: 64 * units.MB, SlowCapacity: units.GB, Iterations: 2},
		{FastCapacity: 32 * units.MB, SlowCapacity: units.GB, Iterations: 2},
	}
}

func smallJob(name, mode string) Job {
	return Job{Name: name, Model: models.MLP(512, []int{1024}, 10, 64), Mode: mode}
}

// TestRouteRoundRobin: jobs deal out in arrival order.
func TestRouteRoundRobin(t *testing.T) {
	res, err := Route(RouterConfig{
		Platforms: twoPlatforms(),
		Jobs:      []Job{smallJob("a", "CA:LMP"), smallJob("b", "CA:LM"), smallJob("c", "2LM:M")},
		Policy:    RoundRobin,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 0}; !reflect.DeepEqual(res.Placement, want) {
		t.Fatalf("placement %v, want %v", res.Placement, want)
	}
	if len(res.Platforms[0].Tenants) != 2 || len(res.Platforms[1].Tenants) != 1 {
		t.Fatalf("tenant split %d/%d, want 2/1",
			len(res.Platforms[0].Tenants), len(res.Platforms[1].Tenants))
	}
}

// TestRouteLeastLoaded: a heavy job tips the balance — later jobs land on
// the other platform until loads even out.
func TestRouteLeastLoaded(t *testing.T) {
	heavy := Job{Name: "heavy", Model: models.MLP(1024, []int{4096, 4096, 4096}, 10, 256), Mode: "CA:LMP"}
	res, err := Route(RouterConfig{
		Platforms: twoPlatforms(),
		Jobs:      []Job{heavy, smallJob("s1", "CA:LM"), smallJob("s2", "CA:LM")},
		Policy:    LeastLoaded,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement[0] != 0 {
		t.Errorf("heavy job placed on %d, want 0 (first, ties to lowest index)", res.Placement[0])
	}
	if res.Placement[1] != 1 || res.Placement[2] != 1 {
		t.Errorf("small jobs placed on %d,%d — both should dodge the heavy platform",
			res.Placement[1], res.Placement[2])
	}
}

// TestRouteHeadroom: the fast-tier-headroom policy prefers the platform
// with the bigger remaining fast tier, not the one with fewer FLOPs.
func TestRouteHeadroom(t *testing.T) {
	res, err := Route(RouterConfig{
		Platforms: twoPlatforms(), // 64 MB vs 32 MB fast
		Jobs:      []Job{smallJob("a", "CA:LMP"), smallJob("b", "CA:LMP")},
		Policy:    Headroom,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both jobs fit in the 64 MB platform's headroom; the 32 MB platform
	// never has more remaining fast tier.
	if res.Placement[0] != 0 || res.Placement[1] != 0 {
		t.Errorf("placement %v, want both on the 64 MB platform", res.Placement)
	}
}

// TestRouteRejectOnPressure: a job whose footprint exceeds the platform's
// combined capacity is rejected rather than placed into certain failure;
// reasonable jobs still land.
func TestRouteRejectOnPressure(t *testing.T) {
	res, err := Route(RouterConfig{
		Platforms: []engine.Config{
			{FastCapacity: 32 * units.MB, SlowCapacity: 64 * units.MB, Iterations: 1},
		},
		Jobs: []Job{
			smallJob("ok", "CA:LMP"),
			{Name: "huge", Model: models.MLP(1024, []int{8192, 8192}, 10, 512), Mode: "CA:LMP"},
		},
		Policy: RejectOnPressure,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement[0] != 0 {
		t.Errorf("fitting job rejected (placement %v)", res.Placement)
	}
	if res.Placement[1] != -1 {
		t.Errorf("oversized job admitted to platform %d", res.Placement[1])
	}
	if want := []int{1}; !reflect.DeepEqual(res.Rejected, want) {
		t.Errorf("rejected %v, want %v", res.Rejected, want)
	}
	if res.Platforms[0] == nil || len(res.Platforms[0].Tenants) != 1 {
		t.Error("admitted job did not run")
	}
}

// TestRouteArrivalOrder: placement follows arrival order, not slice
// order — an earlier arrival grabs the emptier platform first.
func TestRouteArrivalOrder(t *testing.T) {
	late := smallJob("late", "CA:LMP")
	late.Arrival = 0.5
	early := smallJob("early", "CA:LMP")
	res, err := Route(RouterConfig{
		Platforms: twoPlatforms(),
		Jobs:      []Job{late, early},
		Policy:    RoundRobin,
	})
	if err != nil {
		t.Fatal(err)
	}
	// early (slice index 1) arrives first, so it takes platform 0.
	if res.Placement[1] != 0 || res.Placement[0] != 1 {
		t.Errorf("placement %v, want early→0 late→1", res.Placement)
	}
}

// TestRouteWorkerCountInvariance: the M platform simulations are
// independent and results are indexed by platform, so any worker count —
// serial, GOMAXPROCS, more workers than platforms — yields a
// byte-identical RouterResult.
func TestRouteWorkerCountInvariance(t *testing.T) {
	run := func(workers int) *RouterResult {
		t.Helper()
		res, err := Route(RouterConfig{
			Platforms: []engine.Config{
				{FastCapacity: 48 * units.MB, SlowCapacity: units.GB, Iterations: 2},
				{FastCapacity: 32 * units.MB, SlowCapacity: units.GB, Iterations: 2},
				{FastCapacity: 24 * units.MB, SlowCapacity: units.GB, Iterations: 2},
			},
			Jobs:    Mix(11, 6),
			Policy:  LeastLoaded,
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(runtime.GOMAXPROCS(0))
	oversub := run(64)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("workers=GOMAXPROCS result differs from serial")
	}
	if !reflect.DeepEqual(serial, oversub) {
		t.Fatal("workers=64 result differs from serial")
	}
}

// TestRouteErrors covers router validation.
func TestRouteErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  RouterConfig
	}{
		{"no platforms", RouterConfig{Jobs: []Job{smallJob("a", "CA:LMP")}}},
		{"no jobs", RouterConfig{Platforms: twoPlatforms()}},
		{"bad policy", RouterConfig{
			Platforms: twoPlatforms(),
			Jobs:      []Job{smallJob("a", "CA:LMP")},
			Policy:    "coin-flip",
		}},
		{"no model", RouterConfig{
			Platforms: twoPlatforms(),
			Jobs:      []Job{{Name: "empty", Mode: "CA:LMP"}},
		}},
	}
	for _, c := range cases {
		if _, err := Route(c.cfg); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

// TestRouteSurfacesEveryPlatformFailure pins the fan-out's error
// contract: when several platform simulations fail, the joined error
// names every failed platform by index — not just whichever worker
// lost the race to report first.
func TestRouteSurfacesEveryPlatformFailure(t *testing.T) {
	// An invalid mode passes the placement pre-pass (which only needs
	// models) and fails inside each platform's cluster run, so every
	// platform that received a job fails independently.
	jobs := []Job{
		smallJob("a", "not-a-mode"), smallJob("b", "not-a-mode"),
		smallJob("c", "not-a-mode"), smallJob("d", "not-a-mode"),
	}
	for _, workers := range []int{1, 2} {
		_, err := Route(RouterConfig{
			Platforms: twoPlatforms(),
			Jobs:      jobs,
			Policy:    RoundRobin,
			Workers:   workers,
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		for _, want := range []string{"platform 0", "platform 1"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("workers=%d: error %q does not name %s", workers, err, want)
			}
		}
	}
}
