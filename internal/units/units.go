// Package units provides byte-size constants, parsing, and formatting
// helpers shared across the CachedArrays codebase.
//
// The paper reports capacities in decimal units (GB = 1e9 bytes) when
// talking about model footprints and traffic, and hardware ships in binary
// units (GiB = 2^30). Both families are provided; experiment code uses the
// decimal family to match the paper's tables.
package units

import (
	"fmt"
	"strconv"
	"strings"
)

// Decimal (SI) byte units, as used in the paper's tables and figures.
const (
	KB int64 = 1000
	MB       = 1000 * KB
	GB       = 1000 * MB
	TB       = 1000 * GB
)

// Binary (IEC) byte units, as used for hardware capacities.
const (
	KiB int64 = 1024
	MiB       = 1024 * KiB
	GiB       = 1024 * MiB
	TiB       = 1024 * GiB
)

// Bytes formats n using decimal units with two fractional digits,
// e.g. 526.43 GB. Values below 1 KB are printed as plain bytes.
func Bytes(n int64) string {
	switch {
	case n >= TB || n <= -TB:
		return fmt.Sprintf("%.2f TB", float64(n)/float64(TB))
	case n >= GB || n <= -GB:
		return fmt.Sprintf("%.2f GB", float64(n)/float64(GB))
	case n >= MB || n <= -MB:
		return fmt.Sprintf("%.2f MB", float64(n)/float64(MB))
	case n >= KB || n <= -KB:
		return fmt.Sprintf("%.2f KB", float64(n)/float64(KB))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// BytesBinary formats n using binary units, e.g. 192.00 GiB.
func BytesBinary(n int64) string {
	switch {
	case n >= TiB || n <= -TiB:
		return fmt.Sprintf("%.2f TiB", float64(n)/float64(TiB))
	case n >= GiB || n <= -GiB:
		return fmt.Sprintf("%.2f GiB", float64(n)/float64(GiB))
	case n >= MiB || n <= -MiB:
		return fmt.Sprintf("%.2f MiB", float64(n)/float64(MiB))
	case n >= KiB || n <= -KiB:
		return fmt.Sprintf("%.2f KiB", float64(n)/float64(KiB))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// GBf returns n expressed in (decimal) gigabytes as a float, the unit
// used on the paper's traffic figures.
func GBf(n int64) float64 { return float64(n) / float64(GB) }

// Seconds formats a duration given in (possibly fractional) seconds with
// millisecond resolution, e.g. "123.456 s".
func Seconds(s float64) string { return fmt.Sprintf("%.3f s", s) }

// ParseBytes parses strings like "180GB", "1.5TB", "64KiB", "512", with an
// optional space before the unit. Units are case-insensitive; a bare number
// is bytes.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("units: empty size string")
	}
	// Split number prefix from unit suffix.
	i := len(t)
	for j, r := range t {
		if (r < '0' || r > '9') && r != '.' && r != '-' && r != '+' {
			i = j
			break
		}
	}
	numStr := strings.TrimSpace(t[:i])
	unitStr := strings.TrimSpace(strings.ToLower(t[i:]))
	num, err := strconv.ParseFloat(numStr, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad number in %q: %v", s, err)
	}
	var mult float64
	switch unitStr {
	case "", "b":
		mult = 1
	case "kb":
		mult = float64(KB)
	case "mb":
		mult = float64(MB)
	case "gb":
		mult = float64(GB)
	case "tb":
		mult = float64(TB)
	case "kib":
		mult = float64(KiB)
	case "mib":
		mult = float64(MiB)
	case "gib":
		mult = float64(GiB)
	case "tib":
		mult = float64(TiB)
	default:
		return 0, fmt.Errorf("units: unknown unit %q in %q", unitStr, s)
	}
	return int64(num * mult), nil
}
