package units

import (
	"testing"
	"testing/quick"
)

func TestBytesFormatting(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{-512, "-512 B"},
		{1000, "1.00 KB"},
		{1500, "1.50 KB"},
		{2 * MB, "2.00 MB"},
		{526 * GB, "526.00 GB"},
		{1500 * GB, "1.50 TB"},
		{-3 * GB, "-3.00 GB"},
	}
	for _, c := range cases {
		if got := Bytes(c.n); got != c.want {
			t.Errorf("Bytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestBytesBinaryFormatting(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0 B"},
		{1024, "1.00 KiB"},
		{192 * GiB, "192.00 GiB"},
		{1536 * MiB, "1.50 GiB"},
		{3 * TiB, "3.00 TiB"},
	}
	for _, c := range cases {
		if got := BytesBinary(c.n); got != c.want {
			t.Errorf("BytesBinary(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"180GB", 180 * GB},
		{"180 GB", 180 * GB},
		{"180gb", 180 * GB},
		{"1.5TB", 1500 * GB},
		{"64KiB", 64 * KiB},
		{"512", 512},
		{"0", 0},
		{"2MiB", 2 * MiB},
		{"3gib", 3 * GiB},
		{"7 tib", 7 * TiB},
		{"100b", 100},
		{"250kb", 250 * KB},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Errorf("ParseBytes(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, in := range []string{"", "GB", "12XB", "abc", "1.2.3GB", "  "} {
		if _, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q) succeeded, want error", in)
		}
	}
}

func TestParseBytesRoundTripsFormatting(t *testing.T) {
	// Whole multiples of each decimal unit must survive a
	// format-then-parse round trip exactly.
	f := func(k uint16) bool {
		n := int64(k%1000) * GB // keep below 1 TB so the GB format stays exact
		got, err := ParseBytes(Bytes(n))
		return err == nil && got == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGBf(t *testing.T) {
	if got := GBf(526 * GB); got != 526 {
		t.Errorf("GBf(526GB) = %v, want 526", got)
	}
	if got := GBf(500 * MB); got != 0.5 {
		t.Errorf("GBf(500MB) = %v, want 0.5", got)
	}
}

func TestSeconds(t *testing.T) {
	if got := Seconds(123.4564); got != "123.456 s" {
		t.Errorf("Seconds = %q", got)
	}
}
