package faults

import (
	"math"
	"testing"

	"cachedarrays/internal/tracing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var i *Injector
	if i.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
	if i.FailAlloc("fast", 1) || i.FailCopy() {
		t.Fatal("nil injector injected a failure")
	}
	if s := i.CopyStall("nvram"); s != 0 {
		t.Fatalf("nil injector stalled: %v", s)
	}
	if f := i.TimeScale("nvram"); f != 1 {
		t.Fatalf("nil injector throttled: %v", f)
	}
	if w := i.Withheld("fast"); w != 0 {
		t.Fatalf("nil injector withheld: %v", w)
	}
	i.NoteShrinkReject("fast", 1)
	i.SetTracer(nil)
	if st := i.Stats(); st != (Stats{}) {
		t.Fatalf("nil injector has stats: %+v", st)
	}
}

func TestEmptyScheduleNeverFires(t *testing.T) {
	now := 0.0
	i := New(Schedule{Seed: 7}, func() float64 { return now })
	for now = 0; now < 10; now += 0.5 {
		if i.FailAlloc("fast", 64) || i.FailCopy() || i.CopyStall("nvram") != 0 ||
			i.TimeScale("nvram") != 1 || i.Withheld("fast") != 0 {
			t.Fatalf("empty schedule fired at t=%v", now)
		}
	}
	if i.Stats().Total() != 0 {
		t.Fatalf("empty schedule has stats: %+v", i.Stats())
	}
}

func TestEpisodeWindowsAndTargets(t *testing.T) {
	now := 0.0
	i := New(Schedule{Episodes: []Episode{
		{Kind: AllocFail, Target: "fast", T0: 1, T1: 2},               // p=0 -> always
		{Kind: Bandwidth, Target: "nvram", T0: 1, T1: 2, Factor: 0.5}, // 2x time
		{Kind: CapacityShrink, Target: "fast", T0: 3, Bytes: 1 << 20}, // open-ended
		{Kind: CopyStall, Target: "nvram", T0: 1, T1: 2, Stall: 0.25},
	}}, func() float64 { return now })

	// Before any window.
	if i.FailAlloc("fast", 1) || i.TimeScale("nvram") != 1 || i.Withheld("fast") != 0 {
		t.Fatal("fired before window")
	}
	// Inside the [1,2) windows.
	now = 1.5
	if !i.FailAlloc("fast", 1) {
		t.Fatal("allocfail did not fire in window")
	}
	if i.FailAlloc("slow", 1) {
		t.Fatal("allocfail fired on the wrong tier")
	}
	if got := i.TimeScale("nvram"); got != 2 {
		t.Fatalf("TimeScale = %v, want 2", got)
	}
	if got := i.TimeScale("dram"); got != 1 {
		t.Fatalf("untargeted device throttled: %v", got)
	}
	if got := i.CopyStall("nvram"); got != 0.25 {
		t.Fatalf("CopyStall = %v, want 0.25", got)
	}
	// Past the bounded windows, inside the open-ended shrink.
	now = 5
	if i.FailAlloc("fast", 1) || i.TimeScale("nvram") != 1 {
		t.Fatal("bounded episode fired after t1")
	}
	if got := i.Withheld("fast"); got != 1<<20 {
		t.Fatalf("Withheld = %v, want %v", got, 1<<20)
	}
	if got := i.Withheld("slow"); got != 0 {
		t.Fatalf("shrink leaked to wrong tier: %v", got)
	}

	st := i.Stats()
	if st.AllocFailures != 1 || st.CopyStalls != 1 || st.StallSeconds != 0.25 || st.ThrottleHits != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		now := 0.0
		i := New(Schedule{Seed: seed, Episodes: []Episode{
			{Kind: AllocFail, T0: 0, Prob: 0.5},
		}}, func() float64 { return now })
		out := make([]bool, 200)
		for k := range out {
			out[k] = i.FailAlloc("fast", 1)
		}
		return out
	}
	a, b := run(42), run(42)
	fails := 0
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("same seed diverged at draw %d", k)
		}
		if a[k] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("p=0.5 produced %d/%d failures", fails, len(a))
	}
	c := run(43)
	same := true
	for k := range a {
		if a[k] != c[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestContinuousFaultsAnnounceOncePerEpisode(t *testing.T) {
	now := 1.0
	i := New(Schedule{Episodes: []Episode{
		{Kind: Bandwidth, Target: "nvram", T0: 0, Factor: 0.25},
		{Kind: CapacityShrink, Target: "fast", T0: 0, Bytes: 4096},
	}}, func() float64 { return now })
	tr := tracing.New(func() float64 { return now })
	i.SetTracer(tr)
	for k := 0; k < 5; k++ {
		i.TimeScale("nvram")
		i.Withheld("fast")
		i.NoteShrinkReject("fast", 64)
	}
	faults := 0
	for _, e := range tr.Events() {
		if e.Kind == tracing.KindFault {
			faults++
		}
	}
	if faults != 2 {
		t.Fatalf("continuous faults emitted %d events, want 2 (one per episode)", faults)
	}
	if i.Stats().ShrinkRejects != 5 || i.Stats().ThrottleHits != 5 {
		t.Fatalf("stats: %+v", i.Stats())
	}
}

func TestParse(t *testing.T) {
	s, err := Parse("seed=42; allocfail:fast:t0=0.2,t1=600ms,p=0.5; copyerr:t0=0,p=0.25; copystall:nvram:t0=1s,stall=2ms; bw:nvram:t0=100ms,t1=200ms,factor=0.1; shrink:fast:t0=3,bytes=8GB")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 || len(s.Episodes) != 5 {
		t.Fatalf("seed=%d episodes=%d", s.Seed, len(s.Episodes))
	}
	e := s.Episodes[0]
	if e.Kind != AllocFail || e.Target != "fast" || e.T0 != 0.2 || math.Abs(e.T1-0.6) > 1e-12 || e.Prob != 0.5 {
		t.Fatalf("allocfail parsed wrong: %+v", e)
	}
	if e := s.Episodes[1]; e.Kind != CopyError || e.Target != "" || e.T1 != 0 {
		t.Fatalf("copyerr parsed wrong: %+v", e)
	}
	if e := s.Episodes[2]; e.Kind != CopyStall || e.Stall != 2e-3 {
		t.Fatalf("copystall parsed wrong: %+v", e)
	}
	if e := s.Episodes[3]; e.Kind != Bandwidth || e.Factor != 0.1 {
		t.Fatalf("bw parsed wrong: %+v", e)
	}
	if e := s.Episodes[4]; e.Kind != CapacityShrink || e.Bytes != 8_000_000_000 {
		t.Fatalf("shrink parsed wrong: %+v", e)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"seed=x",
		"quake:fast:t0=0",
		"allocfail:fast:t0",
		"allocfail:fast:extra:t0=0",
		"allocfail:fast:t0=1,t1=1",
		"allocfail:fast:p=2",
		"bw:nvram:t0=0",
		"bw:nvram:t0=0,factor=3",
		"shrink:fast:t0=0",
		"copystall:t0=0",
		"allocfail:fast:t0=-1",
		"allocfail:fast:zzz=1",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
	// Empty specs are empty schedules, not errors.
	if s, err := Parse(" ; "); err != nil || len(s.Episodes) != 0 {
		t.Fatalf("empty spec: %v %+v", err, s)
	}
}
