// Package faults is the deterministic fault-injection layer of the
// simulator: a seeded, schedule-driven injector that perturbs the virtual
// platform the way real heterogeneous-memory deployments are perturbed —
// fast-tier allocations that transiently fail under pressure, copy-engine
// stalls and errors, episodic NVRAM bandwidth collapse, and mid-run loss of
// fast-tier capacity.
//
// The injector follows the same discipline as the tracing recorder: a nil
// *Injector is valid and injects nothing, so every instrumented hot path
// pays exactly one predictable branch when fault injection is off, and a
// run with no fault schedule is byte-identical to a run built before this
// package existed.
//
// Determinism is the point: the simulation is single-goroutine and all
// randomness comes from one seeded source, so the same schedule and seed
// reproduce the same faults at the same virtual times, which makes failure
// paths regression-testable and fuzzable.
package faults

import (
	"errors"
	"fmt"
	"math/rand"

	"cachedarrays/internal/tracing"
)

// ErrInjected marks a transient failure the injector produced after the
// victim exhausted its retry budget. Callers distinguish it from genuine
// capacity exhaustion: evicting will not cure it, waiting might.
var ErrInjected = errors.New("faults: injected transient failure")

// Kind enumerates the fault classes the injector can produce.
type Kind int

const (
	// AllocFail makes allocations on the targeted tier transiently fail.
	AllocFail Kind = iota
	// CopyError makes data-manager copies transiently fail (the victim
	// retries with backoff in virtual time).
	CopyError
	// CopyStall adds a fixed stall to copy-engine transfers (a device
	// briefly hiccuping without erroring).
	CopyStall
	// Bandwidth collapses a device's effective bandwidth to a fraction of
	// nominal for the episode's duration.
	Bandwidth
	// CapacityShrink withholds bytes from a tier's heap: allocations that
	// would push occupancy past the reduced capacity fail with the same
	// exhaustion error a full tier produces, so policies respond by
	// evicting.
	CapacityShrink
)

func (k Kind) String() string {
	switch k {
	case AllocFail:
		return "alloc-fail"
	case CopyError:
		return "copy-error"
	case CopyStall:
		return "copy-stall"
	case Bandwidth:
		return "bw-collapse"
	case CapacityShrink:
		return "cap-shrink"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Episode is one scheduled fault: a kind, a virtual-time window and the
// kind-specific parameters.
type Episode struct {
	Kind Kind
	// T0 and T1 bound the episode in virtual seconds: active while
	// T0 <= now < T1. T1 <= 0 means open-ended (active from T0 on).
	T0, T1 float64
	// Target restricts the episode: a tier name ("fast", "slow") for
	// AllocFail and CapacityShrink, a device name ("dram", "nvram",
	// "cxl") for Bandwidth and CopyStall. Empty matches everything.
	Target string
	// Prob is the per-opportunity injection probability for AllocFail,
	// CopyError and CopyStall. 0 means 1 (always).
	Prob float64
	// Factor is the remaining bandwidth fraction for Bandwidth episodes
	// (0.1 = the device runs at a tenth of nominal speed).
	Factor float64
	// Stall is the extra seconds a CopyStall episode adds per transfer.
	Stall float64
	// Bytes is the capacity a CapacityShrink episode withholds.
	Bytes int64
}

// active reports whether the episode covers virtual time now.
func (e *Episode) active(now float64) bool {
	if now < e.T0 {
		return false
	}
	return e.T1 <= 0 || now < e.T1
}

// matches reports whether the episode applies to the named target.
func (e *Episode) matches(target string) bool {
	return e.Target == "" || e.Target == target
}

// Schedule is a fault plan: a seed plus the episode list. The zero value
// is an empty schedule (an injector built from it never fires).
type Schedule struct {
	Seed     int64
	Episodes []Episode
}

// Stats counts what the injector actually did to the run.
type Stats struct {
	AllocFailures int64 // allocation attempts it failed
	CopyErrors    int64 // copy attempts it failed
	CopyStalls    int64 // transfers it stalled
	StallSeconds  float64
	ThrottleHits  int64 // device time queries scaled by a bandwidth collapse
	ShrinkRejects int64 // allocations rejected by withheld capacity
}

// Total returns the number of discrete fault injections (throttle hits are
// continuous, not discrete, and are excluded).
func (s Stats) Total() int64 {
	return s.AllocFailures + s.CopyErrors + s.CopyStalls + s.ShrinkRejects
}

// Injector evaluates a schedule against the virtual clock. All methods are
// nil-safe no-ops so disabled injection costs one branch per site.
type Injector struct {
	sched Schedule
	now   func() float64
	rng   *rand.Rand
	stats Stats
	tr    *tracing.Recorder
	// fired marks episodes that have already announced themselves in the
	// trace, so continuous faults (bandwidth, shrink) emit one event per
	// episode instead of one per query.
	fired []bool
}

// New builds an injector over a schedule, reading virtual time from now
// (typically memsim's Clock.Now).
func New(s Schedule, now func() float64) *Injector {
	return &Injector{
		sched: s,
		now:   now,
		rng:   rand.New(rand.NewSource(s.Seed)),
		fired: make([]bool, len(s.Episodes)),
	}
}

// Enabled reports whether the injector exists (nil-safe).
func (i *Injector) Enabled() bool { return i != nil }

// Stats returns a snapshot of the injection counters.
func (i *Injector) Stats() Stats {
	if i == nil {
		return Stats{}
	}
	return i.stats
}

// SetTracer attaches an execution-trace recorder: every discrete injection
// (and the first hit of each continuous episode) appears as a fault event,
// so catrace can attribute the victim's retries and fallbacks to their
// faults.
func (i *Injector) SetTracer(tr *tracing.Recorder) {
	if i == nil {
		return
	}
	i.tr = tr
}

// roll draws the seeded source against an episode probability.
func (i *Injector) roll(p float64) bool {
	if p <= 0 || p >= 1 {
		return true
	}
	return i.rng.Float64() < p
}

// announce emits the trace event for an injection; once marks episodes
// that should announce only their first hit.
func (i *Injector) announce(idx int, op string, bytes int64, dur float64, once bool) {
	if once {
		if i.fired[idx] {
			return
		}
		i.fired[idx] = true
	}
	i.tr.Fault(op, bytes, dur)
}

// FailAlloc reports whether an allocation of size bytes on the named tier
// should transiently fail right now.
func (i *Injector) FailAlloc(tier string, size int64) bool {
	if i == nil {
		return false
	}
	now := i.now()
	for idx := range i.sched.Episodes {
		e := &i.sched.Episodes[idx]
		if e.Kind != AllocFail || !e.active(now) || !e.matches(tier) {
			continue
		}
		if i.roll(e.Prob) {
			i.stats.AllocFailures++
			i.announce(idx, Kind(AllocFail).String(), size, 0, false)
			return true
		}
	}
	return false
}

// FailCopy reports whether a copy attempt should transiently fail now.
func (i *Injector) FailCopy() bool {
	if i == nil {
		return false
	}
	now := i.now()
	for idx := range i.sched.Episodes {
		e := &i.sched.Episodes[idx]
		if e.Kind != CopyError || !e.active(now) {
			continue
		}
		if i.roll(e.Prob) {
			i.stats.CopyErrors++
			i.announce(idx, Kind(CopyError).String(), 0, 0, false)
			return true
		}
	}
	return false
}

// CopyStall returns the extra seconds to add to a transfer writing to the
// named device (0 when no stall episode fires).
func (i *Injector) CopyStall(device string) float64 {
	if i == nil {
		return 0
	}
	now := i.now()
	var total float64
	for idx := range i.sched.Episodes {
		e := &i.sched.Episodes[idx]
		if e.Kind != CopyStall || !e.active(now) || !e.matches(device) || e.Stall <= 0 {
			continue
		}
		if i.roll(e.Prob) {
			i.stats.CopyStalls++
			i.stats.StallSeconds += e.Stall
			i.announce(idx, Kind(CopyStall).String(), 0, e.Stall, false)
			total += e.Stall
		}
	}
	return total
}

// TimeScale returns the factor (>= 1) by which the named device's access
// times are currently inflated by bandwidth-collapse episodes.
func (i *Injector) TimeScale(device string) float64 {
	if i == nil {
		return 1
	}
	now := i.now()
	scale := 1.0
	for idx := range i.sched.Episodes {
		e := &i.sched.Episodes[idx]
		if e.Kind != Bandwidth || !e.active(now) || !e.matches(device) {
			continue
		}
		f := e.Factor
		if f <= 0 || f > 1 {
			continue
		}
		scale /= f
		i.stats.ThrottleHits++
		i.announce(idx, Kind(Bandwidth).String(), 0, 0, true)
	}
	return scale
}

// Withheld returns the bytes currently withheld from the named tier's heap
// by capacity-shrink episodes.
func (i *Injector) Withheld(tier string) int64 {
	if i == nil {
		return 0
	}
	now := i.now()
	var total int64
	for idx := range i.sched.Episodes {
		e := &i.sched.Episodes[idx]
		if e.Kind != CapacityShrink || !e.active(now) || !e.matches(tier) {
			continue
		}
		total += e.Bytes
	}
	return total
}

// NoteShrinkReject records that withheld capacity rejected an allocation
// (called by the data manager, which is where the rejection decision
// lives).
func (i *Injector) NoteShrinkReject(tier string, size int64) {
	if i == nil {
		return
	}
	i.stats.ShrinkRejects++
	now := i.now()
	for idx := range i.sched.Episodes {
		e := &i.sched.Episodes[idx]
		if e.Kind == CapacityShrink && e.active(now) && e.matches(tier) {
			i.announce(idx, Kind(CapacityShrink).String(), size, 0, true)
			return
		}
	}
}
