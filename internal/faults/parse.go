package faults

import (
	"fmt"
	"strconv"
	"strings"

	"cachedarrays/internal/units"
)

// Parse builds a Schedule from the compact spec carun's -faults flag takes.
//
// The spec is a semicolon-separated clause list. One optional clause seeds
// the injector ("seed=42"); every other clause is one episode:
//
//	kind[:target]:param=value[,param=value...]
//
// Kinds and their parameters (times accept s/ms/us/ns suffixes, bare
// numbers are seconds; byte sizes accept the usual KB/MB/GB/KiB... units):
//
//	allocfail  t0, t1, p          transient allocation failures on a tier
//	copyerr    t0, t1, p          transient copy errors (victims retry)
//	copystall  t0, t1, p, stall   extra stall per copy-engine transfer
//	bw         t0, t1, factor     bandwidth collapse on a device
//	shrink     t0, t1, bytes      capacity withheld from a tier
//
// t1 omitted (or 0) leaves the episode open-ended. Targets are tier names
// ("fast", "slow") for allocfail/shrink and device names ("dram", "nvram",
// "cxl") for copystall/bw.
//
// Example:
//
//	seed=42;allocfail:fast:t0=0.2,t1=0.6,p=0.5;bw:nvram:t0=1s,t1=2s,factor=0.1;shrink:fast:t0=3s,bytes=20GB
func Parse(spec string) (Schedule, error) {
	var s Schedule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Schedule{}, fmt.Errorf("faults: bad seed %q: %v", v, err)
			}
			s.Seed = seed
			continue
		}
		ep, err := parseEpisode(clause)
		if err != nil {
			return Schedule{}, err
		}
		s.Episodes = append(s.Episodes, ep)
	}
	return s, nil
}

// episodeKinds maps clause names to fault kinds.
var episodeKinds = map[string]Kind{
	"allocfail": AllocFail,
	"copyerr":   CopyError,
	"copystall": CopyStall,
	"bw":        Bandwidth,
	"shrink":    CapacityShrink,
}

func parseEpisode(clause string) (Episode, error) {
	parts := strings.Split(clause, ":")
	kind, ok := episodeKinds[parts[0]]
	if !ok {
		return Episode{}, fmt.Errorf("faults: unknown fault kind %q (allocfail, copyerr, copystall, bw, shrink)", parts[0])
	}
	ep := Episode{Kind: kind}
	var params string
	switch len(parts) {
	case 2:
		params = parts[1]
	case 3:
		ep.Target = parts[1]
		params = parts[2]
	default:
		return Episode{}, fmt.Errorf("faults: malformed clause %q (want kind[:target]:params)", clause)
	}
	for _, kv := range strings.Split(params, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, found := strings.Cut(kv, "=")
		if !found {
			return Episode{}, fmt.Errorf("faults: malformed parameter %q in %q", kv, clause)
		}
		var err error
		switch key {
		case "t0":
			ep.T0, err = parseSeconds(val)
		case "t1":
			ep.T1, err = parseSeconds(val)
		case "p":
			ep.Prob, err = strconv.ParseFloat(val, 64)
			if err == nil && (ep.Prob < 0 || ep.Prob > 1) {
				err = fmt.Errorf("probability outside [0,1]")
			}
		case "factor":
			ep.Factor, err = strconv.ParseFloat(val, 64)
			if err == nil && (ep.Factor <= 0 || ep.Factor > 1) {
				err = fmt.Errorf("factor outside (0,1]")
			}
		case "stall":
			ep.Stall, err = parseSeconds(val)
		case "bytes":
			ep.Bytes, err = units.ParseBytes(val)
		default:
			err = fmt.Errorf("unknown parameter")
		}
		if err != nil {
			return Episode{}, fmt.Errorf("faults: parameter %q in %q: %v", kv, clause, err)
		}
	}
	if ep.T1 > 0 && ep.T1 <= ep.T0 {
		return Episode{}, fmt.Errorf("faults: empty window [%g,%g) in %q", ep.T0, ep.T1, clause)
	}
	switch kind {
	case Bandwidth:
		if ep.Factor == 0 {
			return Episode{}, fmt.Errorf("faults: bw episode %q needs factor=", clause)
		}
	case CapacityShrink:
		if ep.Bytes <= 0 {
			return Episode{}, fmt.Errorf("faults: shrink episode %q needs bytes=", clause)
		}
	case CopyStall:
		if ep.Stall <= 0 {
			return Episode{}, fmt.Errorf("faults: copystall episode %q needs stall=", clause)
		}
	}
	return ep, nil
}

// parseSeconds parses a duration: bare numbers are seconds; s, ms, us and
// ns suffixes are accepted.
func parseSeconds(v string) (float64, error) {
	scale := 1.0
	switch {
	case strings.HasSuffix(v, "ms"):
		v, scale = strings.TrimSuffix(v, "ms"), 1e-3
	case strings.HasSuffix(v, "us"):
		v, scale = strings.TrimSuffix(v, "us"), 1e-6
	case strings.HasSuffix(v, "ns"):
		v, scale = strings.TrimSuffix(v, "ns"), 1e-9
	case strings.HasSuffix(v, "s"):
		v = strings.TrimSuffix(v, "s")
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration: %v", err)
	}
	if f < 0 {
		return 0, fmt.Errorf("negative duration")
	}
	return f * scale, nil
}
