package core

import (
	"sync"
	"testing"

	"cachedarrays/internal/policy"
)

// TestConcurrentHintsAndKernels hammers one runtime from many goroutines:
// the coarse runtime lock must keep the object/region state machine
// consistent (run with -race to check the host-level synchronization too).
func TestConcurrentHintsAndKernels(t *testing.T) {
	rt := NewRuntime(Config{FastBytes: 1 << 20, SlowBytes: 1 << 24, Mode: policy.CALMP})
	const workers = 8
	const arraysPerWorker = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			var arrs []*Array
			for i := 0; i < arraysPerWorker; i++ {
				a, err := rt.NewArray(16 << 10)
				if err != nil {
					errs <- err
					return
				}
				arrs = append(arrs, a)
			}
			for round := 0; round < 30; round++ {
				for i, a := range arrs {
					switch (round + i + seed) % 5 {
					case 0:
						_ = a.WillRead()
					case 1:
						_ = a.WillWrite()
					case 2:
						_ = a.Archive()
					case 3:
						_ = a.Evict()
					case 4:
						if err := rt.Kernel([]*Array{a}, nil, func(r, _ [][]byte) {
							_ = r[0][0]
						}); err != nil {
							errs <- err
							return
						}
					}
				}
			}
			for _, a := range arrs {
				a.Retire()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := rt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := rt.Telemetry().LiveArrays; got != 0 {
		t.Fatalf("%d arrays leaked", got)
	}
}

// TestConcurrentRuntimes runs independent runtimes in parallel — the
// common pattern in the experiment harness.
func TestConcurrentRuntimes(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt := NewRuntime(Config{FastBytes: 1 << 18, SlowBytes: 1 << 22, Mode: policy.CALM})
			for j := 0; j < 50; j++ {
				a, err := rt.NewArray(8 << 10)
				if err != nil {
					t.Error(err)
					return
				}
				if err := rt.Kernel(nil, []*Array{a}, func(_, w [][]byte) {
					w[0][0] = byte(j)
				}); err != nil {
					t.Error(err)
					return
				}
				a.Retire()
			}
			if err := rt.CheckInvariants(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
