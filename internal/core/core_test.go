package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"cachedarrays/internal/policy"
)

func newRT(t *testing.T, fast, slow int64, mode policy.Mode) *Runtime {
	t.Helper()
	return NewRuntime(Config{FastBytes: fast, SlowBytes: slow, Mode: mode})
}

func checkRT(t *testing.T, rt *Runtime) {
	t.Helper()
	if err := rt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRuntimeDefaults(t *testing.T) {
	rt := NewRuntime(Config{})
	if !rt.Backed() {
		t.Error("default runtime should be backed")
	}
	if rt.Mode() != "CA:0" {
		// Mode zero value is CAZero; callers pick CALM explicitly.
		t.Errorf("default mode = %s", rt.Mode())
	}
	tel := rt.Telemetry()
	if tel.FastCapacity != 256<<20 || tel.SlowCapacity != 1<<30 {
		t.Errorf("default capacities: %d/%d", tel.FastCapacity, tel.SlowCapacity)
	}
}

func TestArrayLifecycle(t *testing.T) {
	rt := newRT(t, 1<<20, 1<<22, policy.CALM)
	a, err := rt.NewArray(4096)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 4096 || a.Retired() {
		t.Fatalf("array state: size=%d retired=%v", a.Size(), a.Retired())
	}
	if !a.InFast() {
		t.Error("CA:LM array not born in fast memory")
	}
	if rt.Telemetry().LiveArrays != 1 {
		t.Error("telemetry live count wrong")
	}
	a.Retire()
	if !a.Retired() {
		t.Error("retire did not take effect (eager mode)")
	}
	a.Retire() // idempotent
	checkRT(t, rt)
}

func TestDataRoundTripThroughTiers(t *testing.T) {
	rt := newRT(t, 1<<20, 1<<22, policy.CALM)
	a, err := rt.NewArray(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 1<<12)
	rand.New(rand.NewSource(1)).Read(want)
	if err := rt.Kernel(nil, []*Array{a}, func(_, w [][]byte) {
		copy(w[0], want)
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Evict(); err != nil {
		t.Fatal(err)
	}
	if a.InFast() {
		t.Fatal("array still fast after evict")
	}
	if ok, err := a.Prefetch(true); err != nil || !ok {
		t.Fatalf("prefetch: ok=%v err=%v", ok, err)
	}
	var got []byte
	if err := rt.Kernel([]*Array{a}, nil, func(r, _ [][]byte) {
		got = append(got, r[0]...)
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data corrupted across evict/prefetch round trip")
	}
	checkRT(t, rt)
}

func TestKernelAppliesHints(t *testing.T) {
	rt := newRT(t, 1<<22, 1<<24, policy.CALM)
	src, _ := rt.NewArray(1024)
	dst, _ := rt.NewArray(1024)
	if err := src.Evict(); err != nil {
		t.Fatal(err)
	}
	// A kernel writing dst must move it to fast (FetchOnWrite); the
	// read arg stays wherever it is under CA:LM.
	if err := rt.Kernel([]*Array{src}, []*Array{dst}, func(r, w [][]byte) {
		copy(w[0], r[0])
	}); err != nil {
		t.Fatal(err)
	}
	if !dst.InFast() {
		t.Error("written array not in fast memory after kernel")
	}
	if src.InFast() {
		t.Error("read array fetched without prefetch mode")
	}
}

func TestKernelErrors(t *testing.T) {
	rt := newRT(t, 1<<20, 1<<22, policy.CALM)
	rt2 := newRT(t, 1<<20, 1<<22, policy.CALM)
	a, _ := rt.NewArray(64)
	b, _ := rt2.NewArray(64)
	if err := rt.Kernel([]*Array{b}, nil, func(_, _ [][]byte) {}); err == nil {
		t.Error("cross-runtime array accepted")
	}
	a.Retire()
	if err := rt.Kernel([]*Array{a}, nil, func(_, _ [][]byte) {}); !errors.Is(err, ErrRetired) {
		t.Errorf("retired array: %v", err)
	}
	c, _ := rt.NewArray(64)
	if err := rt.Kernel(nil, []*Array{c}, func(_, _ [][]byte) {
		// nested kernels are rejected (and would deadlock on the
		// runtime lock if attempted from another goroutine mid-flight;
		// within one goroutine we guard explicitly before locking).
	}); err != nil {
		t.Fatal(err)
	}
}

func TestHintsOnRetiredArray(t *testing.T) {
	rt := newRT(t, 1<<20, 1<<22, policy.CALM)
	a, _ := rt.NewArray(64)
	a.Retire()
	for name, fn := range map[string]func() error{
		"WillRead":  a.WillRead,
		"WillWrite": a.WillWrite,
		"WillUse":   a.WillUse,
		"Archive":   a.Archive,
		"Evict":     a.Evict,
	} {
		if err := fn(); !errors.Is(err, ErrRetired) {
			t.Errorf("%s on retired array: %v", name, err)
		}
	}
	if _, err := a.Prefetch(true); !errors.Is(err, ErrRetired) {
		t.Errorf("Prefetch on retired array: %v", err)
	}
}

func TestDeferredRetireCollect(t *testing.T) {
	rt := newRT(t, 1<<20, 1<<22, policy.CAL)
	a, _ := rt.NewArray(4096)
	a.Retire()
	if a.Retired() {
		t.Fatal("CA:L retire was eager")
	}
	if got := rt.Collect(); got < 4096 {
		t.Fatalf("collected %d bytes", got)
	}
	if !a.Retired() {
		t.Fatal("array alive after collection")
	}
	checkRT(t, rt)
}

func TestDefrag(t *testing.T) {
	rt := newRT(t, 1<<20, 1<<22, policy.CALM)
	var arrs []*Array
	for i := 0; i < 16; i++ {
		a, err := rt.NewArray(4096)
		if err != nil {
			t.Fatal(err)
		}
		arrs = append(arrs, a)
	}
	for i := 0; i < 16; i += 2 {
		arrs[i].Retire()
	}
	if err := rt.Defrag(); err != nil {
		t.Fatal(err)
	}
	checkRT(t, rt)
	// Survivors keep their content.
	for i := 1; i < 16; i += 2 {
		if arrs[i].Retired() {
			t.Fatalf("survivor %d retired by defrag", i)
		}
	}
}

func TestFloat32Array(t *testing.T) {
	rt := newRT(t, 1<<20, 1<<22, policy.CALM)
	f, err := rt.NewFloat32Array(256)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 256 {
		t.Fatalf("Len = %d", f.Len())
	}
	want := make([]float32, 256)
	for i := range want {
		want[i] = float32(i) * 0.5
	}
	if err := f.CopyIn(want); err != nil {
		t.Fatal(err)
	}
	// Round trip through slow memory.
	if err := f.Evict(); err != nil {
		t.Fatal(err)
	}
	got := make([]float32, 256)
	if err := f.CopyOut(got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: got %v want %v", i, got[i], want[i])
		}
	}
	if _, err := rt.NewFloat32Array(0); err == nil {
		t.Error("zero-length float array accepted")
	}
}

func TestF32Helpers(t *testing.T) {
	buf := make([]byte, 8)
	SetF32(buf, 1, 3.25)
	if got := F32(buf, 1); got != 3.25 {
		t.Fatalf("F32 round trip = %v", got)
	}
}

func TestTelemetryTracksTraffic(t *testing.T) {
	rt := newRT(t, 1<<20, 1<<22, policy.CALM)
	a, _ := rt.NewArray(1 << 16)
	if err := a.Evict(); err != nil {
		t.Fatal(err)
	}
	tel := rt.Telemetry()
	if tel.SlowTraffic.WriteBytes == 0 {
		t.Error("eviction produced no slow-tier writes in telemetry")
	}
	if tel.VirtualTime <= 0 {
		t.Error("virtual time did not advance")
	}
	if tel.Manager.BytesFastToSlow == 0 {
		t.Error("manager stats missing movement")
	}
}

func TestQuickDataIntegrityUnderChurn(t *testing.T) {
	// Property: arbitrary interleavings of writes, hints, evictions and
	// prefetches never corrupt array contents.
	rt := newRT(t, 1<<18, 1<<22, policy.CALMP)
	type tracked struct {
		arr  *Array
		data []byte
	}
	var live []tracked
	f := func(ops []uint8) bool {
		for _, op := range ops {
			switch op % 6 {
			case 0:
				if len(live) >= 24 {
					continue
				}
				a, err := rt.NewArray(2048)
				if err != nil {
					continue
				}
				d := make([]byte, 2048)
				rand.New(rand.NewSource(int64(op))).Read(d)
				if err := rt.Kernel(nil, []*Array{a}, func(_, w [][]byte) { copy(w[0], d) }); err != nil {
					return false
				}
				live = append(live, tracked{a, d})
			case 1:
				if len(live) > 0 {
					_ = live[int(op)%len(live)].arr.Evict()
				}
			case 2:
				if len(live) > 0 {
					_, _ = live[int(op)%len(live)].arr.Prefetch(true)
				}
			case 3:
				if len(live) > 0 {
					_ = live[int(op)%len(live)].arr.Archive()
				}
			case 4:
				if len(live) > 0 {
					i := int(op) % len(live)
					live[i].arr.Retire()
					live = append(live[:i], live[i+1:]...)
				}
			case 5:
				if len(live) > 0 {
					tr := live[int(op)%len(live)]
					ok := true
					err := rt.Kernel([]*Array{tr.arr}, nil, func(r, _ [][]byte) {
						ok = bytes.Equal(r[0], tr.data)
					})
					if err != nil || !ok {
						return false
					}
				}
			}
		}
		return rt.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
