// Package core is the public CachedArrays runtime: the user-facing
// realization of the paper's framework (§IV). It wires the platform model,
// the data manager, the garbage collector and a policy together, and
// exposes Arrays — objects with the Table II hint methods — plus a
// kernel-scoped access discipline that mirrors the paper's kernel
// programming model (§III-C): data is reached through the object's current
// primary region, which is pinned for the duration of a kernel.
//
// The runtime has two operating modes:
//
//   - backed: device heaps hold real host memory, Array data actually
//     lives on the (simulated) tiers and round-trips through evictions and
//     prefetches bit-for-bit. This is the mode applications use.
//   - unbacked: heaps are pure metadata; terabyte-scale placement studies
//     run in milliseconds. This is the mode the benchmark harness uses.
package core

import (
	"errors"
	"fmt"
	"sync"

	"cachedarrays/internal/dm"
	"cachedarrays/internal/gcsim"
	"cachedarrays/internal/memsim"
	"cachedarrays/internal/policy"
)

// Config configures a Runtime. Zero values select a small backed runtime
// suitable for applications (256 MiB DRAM / 1 GiB NVRAM).
type Config struct {
	// FastBytes is the fast-tier (DRAM) capacity.
	FastBytes int64
	// SlowBytes is the slow-tier (NVRAM) capacity.
	SlowBytes int64
	// Mode selects the operating mode (optimization set). Default CALM,
	// the paper's best all-round configuration.
	Mode policy.Mode
	// CopyThreads sizes the movement engine.
	CopyThreads int
	// Backed selects real host memory for the tiers. Default true.
	// Set Unbacked to run metadata-only.
	Unbacked bool
}

func (c Config) withDefaults() Config {
	if c.FastBytes == 0 {
		c.FastBytes = 256 << 20
	}
	if c.SlowBytes == 0 {
		c.SlowBytes = 1 << 30
	}
	if c.CopyThreads == 0 {
		c.CopyThreads = 4
	}
	return c
}

// Runtime is one CachedArrays instance: two memory tiers, a data manager,
// a policy, and a collector for deferred frees. A Runtime is safe for
// concurrent use; operations serialize on an internal mutex (the paper's
// prototype likewise runs one policy thread).
type Runtime struct {
	mu       sync.Mutex
	platform *memsim.Platform
	manager  *dm.Manager
	policy   *policy.Tiered
	gc       *gcsim.Collector
	inKernel bool
	cfg      Config
}

// NewRuntime constructs a runtime.
func NewRuntime(cfg Config) *Runtime {
	cfg = cfg.withDefaults()
	p := memsim.NewPlatform(memsim.PlatformConfig{
		FastCapacity: cfg.FastBytes,
		SlowCapacity: cfg.SlowBytes,
		CopyThreads:  cfg.CopyThreads,
		Backed:       !cfg.Unbacked,
	})
	m := dm.New(p)
	gc := gcsim.New(m, p.Clock)
	pol := policy.NewTiered(m, cfg.Mode, gc)
	return &Runtime{platform: p, manager: m, policy: pol, gc: gc, cfg: cfg}
}

// Mode returns the active operating mode name (e.g. "CA:LM").
func (rt *Runtime) Mode() string { return rt.policy.Name() }

// Backed reports whether arrays hold real data.
func (rt *Runtime) Backed() bool { return !rt.cfg.Unbacked }

// Telemetry bundles the runtime's observable state for monitoring.
type Telemetry struct {
	FastUsed, FastCapacity int64
	SlowUsed, SlowCapacity int64
	LiveArrays             int
	VirtualTime            float64
	Policy                 policy.Stats
	Manager                dm.Stats
	GC                     gcsim.Stats
	FastTraffic            memsim.Counters
	SlowTraffic            memsim.Counters
}

// Telemetry returns a snapshot of runtime state.
func (rt *Runtime) Telemetry() Telemetry {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return Telemetry{
		FastUsed:     rt.manager.UsedBytes(dm.Fast),
		FastCapacity: rt.platform.Fast.Capacity,
		SlowUsed:     rt.manager.UsedBytes(dm.Slow),
		SlowCapacity: rt.platform.Slow.Capacity,
		LiveArrays:   rt.manager.LiveObjects(),
		VirtualTime:  rt.platform.Clock.Now(),
		Policy:       rt.policy.Stats(),
		Manager:      rt.manager.Stats(),
		GC:           rt.gc.Stats(),
		FastTraffic:  rt.platform.Fast.Counters(),
		SlowTraffic:  rt.platform.Slow.Counters(),
	}
}

// Collect runs the garbage collector, reclaiming every retired-but-live
// array (a no-op under eager-retire modes). Returns bytes reclaimed.
func (rt *Runtime) Collect() int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.gc.Collect()
}

// Defrag compacts both tiers (the paper defragments between iterations).
// It must not be called while a kernel is executing.
func (rt *Runtime) Defrag() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.inKernel {
		return errors.New("core: Defrag during kernel execution")
	}
	rt.manager.Defrag(dm.Fast)
	rt.manager.Defrag(dm.Slow)
	return nil
}

// CheckInvariants validates the full object/region/policy state machine.
func (rt *Runtime) CheckInvariants() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.policy.CheckInvariants()
}

// ErrRetired is returned by operations on a retired array.
var ErrRetired = errors.New("core: array has been retired")

// Array is the user-facing object: a byte array whose placement the
// runtime manages. All methods are safe for concurrent use with other
// runtime operations.
type Array struct {
	rt   *Runtime
	obj  *dm.Object
	size int64
}

// NewArray allocates an array of the given size. Where it lands (DRAM or
// NVRAM) is the policy's decision (optimization L).
func (rt *Runtime) NewArray(size int64) (*Array, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	o, err := rt.policy.NewObject(size)
	if err != nil {
		return nil, fmt.Errorf("core: NewArray(%d): %w", size, err)
	}
	return &Array{rt: rt, obj: o, size: size}, nil
}

// Size returns the array's byte length.
func (a *Array) Size() int64 { return a.size }

// Retired reports whether the array has been retired (directly, or by a
// collection after a deferred retire).
func (a *Array) Retired() bool { return a.obj.Retired() }

// InFast reports whether the array's primary currently resides in fast
// memory.
func (a *Array) InFast() bool {
	a.rt.mu.Lock()
	defer a.rt.mu.Unlock()
	if a.obj.Retired() {
		return false
	}
	return a.rt.manager.In(a.rt.manager.GetPrimary(a.obj), dm.Fast)
}

// hint applies fn under the runtime lock, guarding retirement.
func (a *Array) hint(fn func()) error {
	a.rt.mu.Lock()
	defer a.rt.mu.Unlock()
	if a.obj.Retired() {
		return ErrRetired
	}
	fn()
	return nil
}

// WillRead hints an upcoming read (paper Table II).
func (a *Array) WillRead() error { return a.hint(func() { a.rt.policy.WillRead(a.obj) }) }

// WillWrite hints an upcoming write.
func (a *Array) WillWrite() error { return a.hint(func() { a.rt.policy.WillWrite(a.obj) }) }

// WillUse hints an upcoming use of unknown direction.
func (a *Array) WillUse() error { return a.hint(func() { a.rt.policy.WillUse(a.obj) }) }

// Archive hints that the array will not be used for some time.
func (a *Array) Archive() error { return a.hint(func() { a.rt.policy.Archive(a.obj) }) }

// Retire declares the array dead. Only improper use of Retire affects
// correctness (paper §III-D). Idempotent.
func (a *Array) Retire() {
	a.rt.mu.Lock()
	defer a.rt.mu.Unlock()
	if a.obj.Retired() {
		return
	}
	a.rt.policy.Retire(a.obj)
}

// Evict moves the array to slow memory immediately (exposed for policy
// experimentation; ordinary applications rely on hints).
func (a *Array) Evict() error {
	a.rt.mu.Lock()
	defer a.rt.mu.Unlock()
	if a.obj.Retired() {
		return ErrRetired
	}
	return a.rt.policy.Evict(a.obj)
}

// Prefetch moves the array to fast memory immediately, evicting to make
// room when force is set. Returns whether the array is now fast-resident.
func (a *Array) Prefetch(force bool) (bool, error) {
	a.rt.mu.Lock()
	defer a.rt.mu.Unlock()
	if a.obj.Retired() {
		return false, ErrRetired
	}
	return a.rt.policy.Prefetch(a.obj, force), nil
}

// Kernel executes fn under the kernel programming model: hints are applied
// for every argument (WillRead for reads, WillWrite for writes), primaries
// are pinned so they cannot move during execution (§III-C), and fn
// receives direct byte-slice views of each argument's primary region, in
// the order given (reads then writes). Writes are marked dirty.
//
// The runtime lock is held for fn's duration: kernels serialize, exactly
// like the paper's single compute stream.
func (rt *Runtime) Kernel(reads, writes []*Array, fn func(r, w [][]byte)) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.inKernel {
		return errors.New("core: nested Kernel call")
	}
	for _, a := range append(append([]*Array{}, reads...), writes...) {
		if a.rt != rt {
			return errors.New("core: array belongs to a different runtime")
		}
		if a.obj.Retired() {
			return ErrRetired
		}
	}
	// Hints first (may move data), then pin.
	for _, a := range reads {
		rt.policy.WillRead(a.obj)
	}
	for _, a := range writes {
		rt.policy.WillWrite(a.obj)
	}
	pinned := make([]*dm.Object, 0, len(reads)+len(writes))
	for _, a := range append(append([]*Array{}, reads...), writes...) {
		rt.policy.Pin(a.obj)
		pinned = append(pinned, a.obj)
	}
	defer func() {
		for _, o := range pinned {
			rt.policy.Unpin(o)
		}
		rt.inKernel = false
	}()
	rt.inKernel = true

	var rbufs, wbufs [][]byte
	if !rt.cfg.Unbacked {
		for _, a := range reads {
			rbufs = append(rbufs, rt.manager.Data(rt.manager.GetPrimary(a.obj)))
		}
		for _, a := range writes {
			wbufs = append(wbufs, rt.manager.Data(rt.manager.GetPrimary(a.obj)))
		}
	} else {
		rbufs = make([][]byte, len(reads))
		wbufs = make([][]byte, len(writes))
	}
	fn(rbufs, wbufs)
	return nil
}
