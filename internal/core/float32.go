package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Float32Array is a typed view over an Array holding little-endian float32
// elements — the element type of the paper's CNN training workloads. It
// uses explicit encode/decode through encoding/binary so the package stays
// within safe, portable Go; bulk access goes through CopyIn/CopyOut, and
// element access through At/Set inside a Kernel.
type Float32Array struct {
	*Array
	n int
}

// NewFloat32Array allocates an array of n float32 elements.
func (rt *Runtime) NewFloat32Array(n int) (*Float32Array, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: invalid float32 array length %d", n)
	}
	a, err := rt.NewArray(int64(n) * 4)
	if err != nil {
		return nil, err
	}
	return &Float32Array{Array: a, n: n}, nil
}

// Len returns the element count.
func (f *Float32Array) Len() int { return f.n }

// CopyIn writes src into the array (through a write kernel).
func (f *Float32Array) CopyIn(src []float32) error {
	if len(src) > f.n {
		return fmt.Errorf("core: CopyIn of %d elements into length-%d array", len(src), f.n)
	}
	return f.rt.Kernel(nil, []*Array{f.Array}, func(_, w [][]byte) {
		buf := w[0]
		for i, v := range src {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
	})
}

// CopyOut reads the array's contents into dst (through a read kernel).
func (f *Float32Array) CopyOut(dst []float32) error {
	if len(dst) > f.n {
		return fmt.Errorf("core: CopyOut of %d elements from length-%d array", len(dst), f.n)
	}
	return f.rt.Kernel([]*Array{f.Array}, nil, func(r, _ [][]byte) {
		buf := r[0]
		for i := range dst {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	})
}

// F32 reads element i from a kernel buffer.
func F32(buf []byte, i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
}

// SetF32 writes element i of a kernel buffer.
func SetF32(buf []byte, i int, v float32) {
	binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
}
