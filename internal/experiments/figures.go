package experiments

import (
	"fmt"

	"cachedarrays/internal/engine"
	"cachedarrays/internal/models"
	"cachedarrays/internal/sched"
	"cachedarrays/internal/units"
)

// TableIII reproduces Table III: the large and small benchmark networks
// with their batch sizes and the approximate minimum memory footprint of a
// single training iteration.
func TableIII() *Table {
	t := &Table{
		Title:  "Table III — benchmark networks and training footprints",
		Header: []string{"class", "model", "batch", "footprint (GB)", "paper (GB)"},
		Notes: []string{
			"large networks must greatly exceed the 180 GB DRAM budget; small ones must fit",
			"footprints are graph-derived peak-liveness; paper values are measured on the testbed",
		},
	}
	paper := map[string]string{
		"large/DenseNet 264": "526", "large/ResNet 200": "529", "large/VGG 416": "520",
		"small/DenseNet 264": "170-180", "small/ResNet 200": "170-180", "small/VGG 116": "170-180",
	}
	add := func(class string, pms []models.PaperModel) {
		for _, pm := range pms {
			m := pm.Build()
			t.Rows = append(t.Rows, []string{
				class, pm.Name, fmt.Sprint(pm.BatchSize),
				gb(m.PeakFootprint()), paper[class+"/"+pm.Name],
			})
		}
	}
	add("large", models.PaperLargeModels())
	add("small", models.PaperSmallModels())
	return t
}

// Fig2 reproduces Figure 2: average single-iteration training time for the
// large networks under each operating mode.
func Fig2(m *Matrix) *Table {
	t := &Table{
		Title:  "Fig. 2 — iteration time (s), large networks x operating mode",
		Header: append([]string{"model"}, ModeNames...),
		Notes: []string{
			"CachedArrays' best mode beats 2LM:0 on every network (paper: 1.4x-2.03x)",
			"prefetching (LMP) hurts DenseNet/ResNet but helps VGG — no one size fits all",
		},
	}
	for _, model := range m.Models {
		row := []string{model}
		for _, mode := range ModeNames {
			row = append(row, secs(m.Get(model, mode).IterTime))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig3 reproduces Figure 3: resident heap memory through one ResNet
// iteration under the two 2LM regimes. Points are down-sampled to at most
// maxPoints per curve.
func Fig3(opts Options, maxPoints int) (*Table, error) {
	opts = opts.withDefaults()
	if maxPoints <= 0 {
		maxPoints = 64
	}
	pm := models.PaperLargeModels()[1] // ResNet 200
	cfg := opts.config()
	cfg.SampleHeap = true
	name := buildModel(pm, opts.Scale).Name
	results, err := opts.runCells([]sched.Cell{
		{Name: runName("fig3", name, "2lm0"), Build: lazyModel(pm, opts.Scale), Mode: "2LM:0", Cfg: cfg},
		{Name: runName("fig3", name, "2lmM"), Build: lazyModel(pm, opts.Scale), Mode: "2LM:M", Cfg: cfg},
	})
	if err != nil {
		return nil, err
	}
	r0, rm := results[0], results[1]
	t := &Table{
		Title:  "Fig. 3 — resident heap (GB) through one ResNet iteration",
		Header: []string{"series", "time (s)", "heap (GB)"},
		Notes: []string{
			"2LM:0 grows monotonically until the collector runs; 2LM:M frees on the backward pass",
			fmt.Sprintf("peaks: 2LM:0 %s vs 2LM:M %s", units.Bytes(r0.PeakHeap), units.Bytes(rm.PeakHeap)),
		},
	}
	appendSeries := func(name string, samples []engine.HeapSample) {
		stride := (len(samples) + maxPoints - 1) / maxPoints
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < len(samples); i += stride {
			s := samples[i]
			t.Rows = append(t.Rows, []string{name, fmt.Sprintf("%.2f", s.Time), gb(s.Used)})
		}
	}
	appendSeries("2LM:0", r0.HeapSamples)
	appendSeries("2LM:M", rm.HeapSamples)
	return t, nil
}

// Fig4 reproduces Figure 4: DRAM cache tag statistics for one ResNet
// training iteration under the two 2LM regimes.
func Fig4(m *Matrix) *Table {
	t := &Table{
		Title:  "Fig. 4 — DRAM cache tag statistics, ResNet 200",
		Header: []string{"mode", "hit rate", "clean miss rate", "dirty miss rate"},
		Notes: []string{
			"the annotated run (2LM:M) has a higher hit rate (paper: +18%) and ~50% lower dirty-miss rate",
		},
	}
	for _, mode := range []string{"2LM:0", "2LM:M"} {
		c := m.Get("ResNet 200", mode).Cache
		t.Rows = append(t.Rows, []string{
			mode, pct(c.HitRate()), pct(c.CleanMissRate()), pct(c.DirtyMissRate()),
		})
	}
	return t
}

// Fig5 reproduces Figure 5: DRAM and NVRAM read/write traffic (GB) for a
// single training iteration, per model and mode.
func Fig5(m *Matrix) *Table {
	t := &Table{
		Title:  "Fig. 5 — data moved per iteration (GB)",
		Header: []string{"model", "mode", "DRAM read", "DRAM write", "NVRAM read", "NVRAM write"},
		Notes: []string{
			"memory optimization (M) slashes NVRAM writes (paper DenseNet: ~1100 GB -> ~350 GB)",
			"local allocation (L) removes the compulsory-miss copies of CA:0",
			"prefetching (P) converts NVRAM reads into DRAM reads",
		},
	}
	for _, model := range m.Models {
		for _, mode := range ModeNames {
			r := m.Get(model, mode)
			t.Rows = append(t.Rows, []string{
				model, mode,
				gb(r.Fast.ReadBytes), gb(r.Fast.WriteBytes),
				gb(r.Slow.ReadBytes), gb(r.Slow.WriteBytes),
			})
		}
	}
	return t
}

// Fig6 reproduces Figure 6: average DRAM bus utilization (achieved
// bandwidth over mixed peak) for ResNet 200 and VGG 416.
func Fig6(m *Matrix) *Table {
	t := &Table{
		Title:  "Fig. 6 — average DRAM bus utilization",
		Header: append([]string{"model"}, ModeNames...),
		Notes: []string{
			"CA:0 beats 2LM:0 for ResNet (large transfers) and loses for VGG (small batch)",
			"as optimizations apply, utilization rises while total traffic falls",
		},
	}
	for _, model := range []string{"ResNet 200", "VGG 416"} {
		row := []string{model}
		for _, mode := range ModeNames {
			row = append(row, pct(m.Get(model, mode).FastBusUtil))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// DefaultFig7Budgets are the DRAM allowances swept in Figure 7, from the
// full socket budget down to NVRAM-only.
func DefaultFig7Budgets() []int64 {
	return []int64{
		180 * units.GB, 150 * units.GB, 120 * units.GB, 90 * units.GB,
		60 * units.GB, 30 * units.GB, 10 * units.GB, engine.NVRAMOnly,
	}
}

// Fig7Async extends Figure 7 by *implementing* the system the paper only
// projects: an asynchronous mover (§V-c future work). For each small
// network and DRAM budget it reports the synchronous time, the paper-style
// projection derived from it, and the actually-measured asynchronous time.
func Fig7Async(opts Options, budgets []int64) (*Table, error) {
	opts = opts.withDefaults()
	if len(budgets) == 0 {
		budgets = DefaultFig7Budgets()
	}
	t := &Table{
		Title:  "Fig. 7 extension — asynchronous movement: projection vs implementation",
		Header: []string{"model", "DRAM (GB)", "sync (s)", "projection (s)", "async measured (s)"},
		Notes: []string{
			"the async mover (separate timeline, per-dependency waits, paced writebacks) lands on the projected line",
			"DenseNet/ResNet flatten out; VGG remains read-bound, exactly as the paper anticipates",
		},
	}
	var cells []sched.Cell
	for _, pm := range models.PaperSmallModels() {
		for _, b := range budgets {
			cfg := opts.config()
			cfg.FastCapacity = b
			acfg := cfg
			acfg.AsyncMovement = true
			cells = append(cells,
				sched.Cell{Name: runName("fig7async", pm.Name, fmt.Sprint(b), "sync"),
					Build: lazyModel(pm, opts.Scale), Mode: "CA:LM", Cfg: cfg},
				sched.Cell{Name: runName("fig7async", pm.Name, fmt.Sprint(b), "async"),
					Build: lazyModel(pm, opts.Scale), Mode: "CA:LM", Cfg: acfg})
		}
	}
	results, err := opts.runCells(cells)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, pm := range models.PaperSmallModels() {
		for _, b := range budgets {
			sync, async := results[i], results[i+1]
			i += 2
			shown := b
			if shown == engine.NVRAMOnly {
				shown = 0
			}
			t.Rows = append(t.Rows, []string{
				pm.Name, gb(shown), secs(sync.IterTime),
				secs(sync.ProjectedAsyncTime), secs(async.IterTime),
			})
		}
	}
	return t, nil
}

// Fig7 reproduces Figure 7: iteration time for the small networks under
// CA:LM as the DRAM budget shrinks, alongside the projected time with
// perfectly asynchronous data movement.
func Fig7(opts Options, budgets []int64) (*Table, error) {
	opts = opts.withDefaults()
	if len(budgets) == 0 {
		budgets = DefaultFig7Budgets()
	}
	t := &Table{
		Title:  "Fig. 7 — small networks, CA:LM, iteration time vs DRAM budget",
		Header: []string{"model", "DRAM (GB)", "iter (s)", "async projection (s)", "NVRAM read (GB)", "NVRAM write (GB)"},
		Notes: []string{
			"NVRAM-only costs 3x-7x (paper: 3-4x); a small DRAM budget recovers most of it",
			"the async projection stays nearly flat for DenseNet/ResNet; VGG remains read-bound",
		},
	}
	var cells []sched.Cell
	for _, pm := range models.PaperSmallModels() {
		for _, b := range budgets {
			cfg := opts.config()
			cfg.FastCapacity = b
			cells = append(cells, sched.Cell{
				Name:  runName("fig7", pm.Name, fmt.Sprint(b)),
				Build: lazyModel(pm, opts.Scale), Mode: "CA:LM", Cfg: cfg})
		}
	}
	results, err := opts.runCells(cells)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, pm := range models.PaperSmallModels() {
		for _, b := range budgets {
			r := results[i]
			i++
			shown := b
			if shown == engine.NVRAMOnly {
				shown = 0
			}
			t.Rows = append(t.Rows, []string{
				pm.Name, gb(shown), secs(r.IterTime), secs(r.ProjectedAsyncTime),
				gb(r.Slow.ReadBytes), gb(r.Slow.WriteBytes),
			})
		}
	}
	return t, nil
}
