package experiments

import (
	"cachedarrays/internal/engine"
	"cachedarrays/internal/models"
	"cachedarrays/internal/pagemig"
	"cachedarrays/internal/policy"
)

// Baselines compares the three data-management mechanisms of Table I that
// this repository implements, per large network:
//
//   - hardware-managed caching (2LM, with and without eager frees),
//   - OS-level page migration (reactive hotness tiering, no hints),
//   - CachedArrays (semantic hints, object granularity) — sync and with
//     the asynchronous mover.
//
// This extends Fig. 2 with the related-work tier the paper positions
// itself against in §II.
func Baselines(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		Title:  "Table I mechanisms compared — iteration time (s), large networks",
		Header: []string{"model", "2LM:0", "2LM:M", "OS:page", "AutoTM:plan", "CA:LM", "CA:LM+async"},
		Notes: []string{
			"OS paging reacts to observed hotness only: better than an unmanaged cache, behind semantic tiering",
			"the static AutoTM-style plan is competitive on these regular CNNs (it cannot adapt to dynamic workloads — see the DLRM experiment)",
			"the asynchronous mover removes CachedArrays' synchronous movement stalls on top",
		},
	}
	cfg := engine.Config{Iterations: opts.Iterations}
	for _, pm := range models.PaperLargeModels() {
		m := buildModel(pm, opts.Scale)
		row := []string{pm.Name}
		lm0, err := engine.Run2LM(m, false, cfg)
		if err != nil {
			return nil, err
		}
		lmM, err := engine.Run2LM(m, true, cfg)
		if err != nil {
			return nil, err
		}
		osPg, err := engine.RunPageMig(m, pagemig.DefaultConfig(), cfg)
		if err != nil {
			return nil, err
		}
		planned, err := engine.RunPlanned(m, nil, cfg)
		if err != nil {
			return nil, err
		}
		ca, err := engine.RunCA(m, policy.CALM, cfg)
		if err != nil {
			return nil, err
		}
		asyncCfg := cfg
		asyncCfg.AsyncMovement = true
		caAsync, err := engine.RunCA(m, policy.CALM, asyncCfg)
		if err != nil {
			return nil, err
		}
		row = append(row, secs(lm0.IterTime), secs(lmM.IterTime), secs(osPg.IterTime),
			secs(planned.IterTime), secs(ca.IterTime), secs(caAsync.IterTime))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
