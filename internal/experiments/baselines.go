package experiments

import (
	"cachedarrays/internal/engine"
	"cachedarrays/internal/models"
	"cachedarrays/internal/pagemig"
	"cachedarrays/internal/policy"
)

// Baselines compares the three data-management mechanisms of Table I that
// this repository implements, per large network:
//
//   - hardware-managed caching (2LM, with and without eager frees),
//   - OS-level page migration (reactive hotness tiering, no hints),
//   - CachedArrays (semantic hints, object granularity) — sync and with
//     the asynchronous mover.
//
// This extends Fig. 2 with the related-work tier the paper positions
// itself against in §II.
func Baselines(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		Title:  "Table I mechanisms compared — iteration time (s), large networks",
		Header: []string{"model", "2LM:0", "2LM:M", "OS:page", "AutoTM:plan", "CA:LM", "CA:LM+async"},
		Notes: []string{
			"OS paging reacts to observed hotness only: better than an unmanaged cache, behind semantic tiering",
			"the static AutoTM-style plan is competitive on these regular CNNs (it cannot adapt to dynamic workloads — see the DLRM experiment)",
			"the asynchronous mover removes CachedArrays' synchronous movement stalls on top",
		},
	}
	cfg := opts.config()
	for _, pm := range models.PaperLargeModels() {
		m := buildModel(pm, opts.Scale)
		row := []string{pm.Name}
		name := func(mode string) string { return runName("baselines", pm.Name, mode) }
		lm0, err := opts.run(name("2lm0"), cfg,
			func(c engine.Config) (*engine.Result, error) { return engine.Run2LM(m, false, c) })
		if err != nil {
			return nil, err
		}
		lmM, err := opts.run(name("2lmM"), cfg,
			func(c engine.Config) (*engine.Result, error) { return engine.Run2LM(m, true, c) })
		if err != nil {
			return nil, err
		}
		osPg, err := opts.run(name("ospage"), cfg,
			func(c engine.Config) (*engine.Result, error) { return engine.RunPageMig(m, pagemig.DefaultConfig(), c) })
		if err != nil {
			return nil, err
		}
		planned, err := opts.run(name("plan"), cfg,
			func(c engine.Config) (*engine.Result, error) { return engine.RunPlanned(m, nil, c) })
		if err != nil {
			return nil, err
		}
		ca, err := opts.run(name("calm"), cfg,
			func(c engine.Config) (*engine.Result, error) { return engine.RunCA(m, policy.CALM, c) })
		if err != nil {
			return nil, err
		}
		asyncCfg := cfg
		asyncCfg.AsyncMovement = true
		caAsync, err := opts.run(name("calm-async"), asyncCfg,
			func(c engine.Config) (*engine.Result, error) { return engine.RunCA(m, policy.CALM, c) })
		if err != nil {
			return nil, err
		}
		row = append(row, secs(lm0.IterTime), secs(lmM.IterTime), secs(osPg.IterTime),
			secs(planned.IterTime), secs(ca.IterTime), secs(caAsync.IterTime))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
