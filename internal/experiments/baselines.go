package experiments

import (
	"cachedarrays/internal/engine"
	"cachedarrays/internal/models"
	"cachedarrays/internal/sched"
)

// Baselines compares the three data-management mechanisms of Table I that
// this repository implements, per large network:
//
//   - hardware-managed caching (2LM, with and without eager frees),
//   - OS-level page migration (reactive hotness tiering, no hints),
//   - CachedArrays (semantic hints, object granularity) — sync and with
//     the asynchronous mover.
//
// This extends Fig. 2 with the related-work tier the paper positions
// itself against in §II.
func Baselines(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		Title:  "Table I mechanisms compared — iteration time (s), large networks",
		Header: []string{"model", "2LM:0", "2LM:M", "OS:page", "AutoTM:plan", "CA:LM", "CA:LM+async"},
		Notes: []string{
			"OS paging reacts to observed hotness only: better than an unmanaged cache, behind semantic tiering",
			"the static AutoTM-style plan is competitive on these regular CNNs (it cannot adapt to dynamic workloads — see the DLRM experiment)",
			"the asynchronous mover removes CachedArrays' synchronous movement stalls on top",
		},
	}
	cfg := opts.config()
	asyncCfg := cfg
	asyncCfg.AsyncMovement = true
	// Six mechanisms per model; four of these cells (the 2LM pair, CA:LM
	// and CA:LM+async) are identical to cells other figures submit, so a
	// caching scheduler computes them once across the whole suite.
	type variant struct {
		label string
		mode  string
		cfg   engine.Config
	}
	variants := []variant{
		{"2lm0", "2LM:0", cfg}, {"2lmM", "2LM:M", cfg}, {"ospage", "OS:page", cfg},
		{"plan", "AutoTM", cfg}, {"calm", "CA:LM", cfg}, {"calm-async", "CA:LM", asyncCfg},
	}
	var cells []sched.Cell
	for _, pm := range models.PaperLargeModels() {
		for _, v := range variants {
			cells = append(cells, sched.Cell{
				Name:  runName("baselines", pm.Name, v.label),
				Build: lazyModel(pm, opts.Scale), Mode: v.mode, Cfg: v.cfg})
		}
	}
	results, err := opts.runCells(cells)
	if err != nil {
		return nil, err
	}
	for mi, pm := range models.PaperLargeModels() {
		row := []string{pm.Name}
		for vi := range variants {
			row = append(row, secs(results[mi*len(variants)+vi].IterTime))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
