// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): Table III's model footprints, Fig. 2's iteration times,
// Fig. 3's heap-occupancy curves, Fig. 4's DRAM-cache tag statistics,
// Fig. 5's traffic breakdown, Fig. 6's bus utilization, Fig. 7's DRAM
// sensitivity sweep, the §V-d copy-bandwidth characterization, and the §VI
// DLRM extension. Each generator returns a typed result that renders both
// as an aligned text table (the form the README and EXPERIMENTS.md quote)
// and as CSV (for plotting).
package experiments

import (
	"fmt"
	"strings"
)

// Table is the common render form of every experiment: a header row plus
// data rows of pre-formatted cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry the qualitative claims the table supports, for the
	// text rendering.
	Notes []string
}

// Text renders the table with aligned columns.
func (t *Table) Text() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// gb formats a byte count as decimal gigabytes with one decimal.
func gb(n int64) string { return fmt.Sprintf("%.1f", float64(n)/1e9) }

// secs formats seconds with one decimal.
func secs(s float64) string { return fmt.Sprintf("%.1f", s) }

// pct formats a ratio as a percentage with one decimal.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
