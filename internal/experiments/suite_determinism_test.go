package experiments

import (
	"os"
	"testing"

	"cachedarrays/internal/sched"
)

// TestFig7MatchesCommittedCSV regenerates Fig. 7 at full paper scale on
// the parallel, cached scheduler and compares it byte-for-byte against
// the committed seed artifact: the scheduler, platform pooling and the
// cache round-trip must not move a single digit of the published
// results.
func TestFig7MatchesCommittedCSV(t *testing.T) {
	want, err := os.ReadFile("../../results/fig7.csv")
	if err != nil {
		t.Skipf("committed results not available: %v", err)
	}
	cache, err := sched.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := &sched.Scheduler{Workers: 8, Cache: cache}
	tab, err := Fig7(Options{Sched: s}, nil) // paper defaults: 4 iterations, scale 1
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.CSV(); got != string(want) {
		t.Fatal("regenerated fig7.csv differs from the committed seed artifact")
	}
	// And once more entirely from the cache.
	tab, err = Fig7(Options{Sched: s}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.CSV(); got != string(want) {
		t.Fatal("cache-served fig7.csv differs from the committed seed artifact")
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("second pass did not hit the cache: %+v", st)
	}
}

// TestSuiteCSVDeterminism is the suite-throughput acceptance test: the
// same figure produced serially, in parallel, and from a warm result
// cache must be byte-identical CSV. Any scheduler ordering bug, pooled-
// platform state leak or cache round-trip loss shows up here as a byte
// diff.
func TestSuiteCSVDeterminism(t *testing.T) {
	fig7 := func(s *sched.Scheduler) string {
		t.Helper()
		tab, err := Fig7(Options{Iterations: 2, Scale: 8, Sched: s}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return tab.CSV()
	}

	serial := fig7(&sched.Scheduler{Workers: 1})
	parallel := fig7(&sched.Scheduler{Workers: 8})
	if serial != parallel {
		t.Fatal("parallel CSV differs from serial CSV")
	}

	dir := t.TempDir()
	coldCache, err := sched.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := fig7(&sched.Scheduler{Workers: 8, Cache: coldCache})
	if cold != serial {
		t.Fatal("cache-populating CSV differs from serial CSV")
	}
	// Fresh Cache over the same directory: every cell must come off disk.
	warmCache, err := sched.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := fig7(&sched.Scheduler{Workers: 8, Cache: warmCache})
	if st := warmCache.Stats(); st.Misses != 0 || st.Hits == 0 {
		t.Fatalf("warm pass simulated instead of hitting the cache: %+v", st)
	}
	if warm != serial {
		t.Fatal("warm-cached CSV differs from serial CSV")
	}
}

// TestMatrixSharedSchedulerCache: the full mode matrix run twice through
// one scheduler simulates each cell exactly once — the cross-figure
// dedup the suite runner relies on.
func TestMatrixSharedSchedulerCache(t *testing.T) {
	cache, err := sched.OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	s := &sched.Scheduler{Workers: 4, Cache: cache}
	opts := Options{Iterations: 2, Scale: 64, Sched: s}
	m1, err := RunMatrix(opts)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := RunMatrix(opts)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	cells := len(ModeNames) * len(m1.Models)
	if int(st.Misses) != cells || int(st.Hits) != cells {
		t.Fatalf("stats = %+v, want %d misses then %d hits", st, cells, cells)
	}
	for cell, r1 := range m1.Results {
		if m2.Results[cell].IterTime != r1.IterTime {
			t.Fatalf("cell %v differs across cached reruns", cell)
		}
	}
}
