package experiments

import (
	"fmt"

	"cachedarrays/internal/dm"
	"cachedarrays/internal/gcsim"
	"cachedarrays/internal/memsim"
	"cachedarrays/internal/models"
	"cachedarrays/internal/policy"
)

// DLRMResult summarizes the §VI extension experiment: a DLRM-style
// sparse-embedding workload whose hot rows drift over time, served by
// three placements:
//
//   - static: the initially-hot rows are pinned in fast memory and never
//     move (the AutoTM/profile-guided approach the paper argues cannot
//     follow shifting locality);
//   - dynamic: the CachedArrays policy reacts to will_read hints,
//     migrating rows at object granularity as the hot set moves;
//   - nvram-only: no fast tier at all (lower bound).
type DLRMResult struct {
	Config models.DLRMConfig
	// Per-phase fast-tier hit fractions (one phase per hot-set
	// position).
	StaticHit  []float64
	DynamicHit []float64
	// Total gather time over the whole trace, seconds.
	StaticTime  float64
	DynamicTime float64
	NVRAMTime   float64
}

// Table renders the per-phase hit rates and the total gather times.
func (r *DLRMResult) Table() *Table {
	t := &Table{
		Title:  "§VI extension — DLRM sparse embeddings under shifting locality",
		Header: []string{"phase", "static fast-hit", "dynamic fast-hit"},
		Notes: []string{
			"the hot set shifts every phase; static placement only covers phase 0",
			fmt.Sprintf("gather time: static %.2f ms, dynamic %.2f ms, nvram-only %.2f ms",
				1e3*r.StaticTime, 1e3*r.DynamicTime, 1e3*r.NVRAMTime),
			"the dynamic policy tracks the drift — the flexibility §VI argues for",
		},
	}
	for i := range r.StaticHit {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(i), pct(r.StaticHit[i]), pct(r.DynamicHit[i]),
		})
	}
	return t
}

// dlrmPlatform builds a small two-tier platform sized so the fast tier
// holds roughly one hot set.
func dlrmPlatform(w *models.DLRMWorkload) *memsim.Platform {
	hotRows := int64(float64(w.Config.RowsPerTable)*w.Config.HotFraction) * int64(w.Config.NumTables)
	fastCap := hotRows * w.RowBytes * 2
	if fastCap < 1<<20 {
		fastCap = 1 << 20
	}
	clock := &memsim.Clock{}
	fast := memsim.NewDevice("dram", memsim.DRAM, fastCap, memsim.DRAMProfile())
	slow := memsim.NewDevice("nvram", memsim.NVRAM, 4*w.EmbeddingBytes(), memsim.NVRAMProfile())
	return &memsim.Platform{
		Clock:   clock,
		Fast:    fast,
		Slow:    slow,
		Copier:  memsim.NewCopyEngine(clock, 4),
		Compute: memsim.DefaultCompute(),
	}
}

// RunDLRM executes the extension experiment.
func RunDLRM(cfg models.DLRMConfig) (*DLRMResult, error) {
	w := models.NewDLRMWorkload(cfg)
	res := &DLRMResult{Config: cfg}
	phases := 1
	if cfg.ShiftEvery > 0 {
		phases = (cfg.Steps + cfg.ShiftEvery - 1) / cfg.ShiftEvery
	}
	res.StaticHit = make([]float64, phases)
	res.DynamicHit = make([]float64, phases)

	rowAccess := memsim.Access{Threads: 1, Granularity: w.RowBytes}

	// Pass 1: static placement. Rows hot in phase 0 go to fast memory;
	// nothing ever moves.
	{
		p := dlrmPlatform(w)
		m := dm.New(p)
		rows := make([]*dm.Object, w.TotalRows())
		// Determine phase-0 hot rows from the first phase of the
		// trace itself (a profile-guided placement, like the static
		// schemes the paper cites).
		hot := map[int]bool{}
		limit := cfg.ShiftEvery
		if limit <= 0 || limit > len(w.Steps) {
			limit = len(w.Steps)
		}
		for step := 0; step < limit; step++ {
			for tbl, rs := range w.Steps[step] {
				for _, rIdx := range rs {
					hot[tbl*cfg.RowsPerTable+rIdx] = true
				}
			}
		}
		for i := range rows {
			class := dm.Slow
			if hot[i] {
				class = dm.Fast
			}
			o, err := m.NewObject(w.RowBytes, class)
			if err != nil {
				// Fast tier overflow: spill to slow.
				o, err = m.NewObject(w.RowBytes, dm.Slow)
				if err != nil {
					return nil, err
				}
			}
			rows[i] = o
		}
		hits := make([]int, phases)
		total := make([]int, phases)
		for step, tables := range w.Steps {
			phase := 0
			if cfg.ShiftEvery > 0 {
				phase = step / cfg.ShiftEvery
			}
			for tbl, rs := range tables {
				for _, rIdx := range rs {
					o := rows[tbl*cfg.RowsPerTable+rIdx]
					pr := m.GetPrimary(o)
					dev := p.Fast
					if pr.Class() == dm.Slow {
						dev = p.Slow
					}
					res.StaticTime += dev.Read(w.RowBytes, rowAccess)
					total[phase]++
					if pr.Class() == dm.Fast {
						hits[phase]++
					}
				}
			}
		}
		for i := range hits {
			if total[i] > 0 {
				res.StaticHit[i] = float64(hits[i]) / float64(total[i])
			}
		}
	}

	// Pass 2: dynamic CachedArrays policy — will_read hints drive
	// object-granularity migration.
	{
		p := dlrmPlatform(w)
		m := dm.New(p)
		gc := gcsim.New(m, p.Clock)
		pol := policy.NewTieredConfig(m, policy.Config{
			LocalAlloc: false, EagerRetire: true, FetchOnRead: true, FetchOnWrite: true,
		}, "dlrm-dynamic", gc)
		rows := make([]*dm.Object, w.TotalRows())
		for i := range rows {
			o, err := m.NewObject(w.RowBytes, dm.Slow)
			if err != nil {
				return nil, err
			}
			rows[i] = o
		}
		hits := make([]int, phases)
		total := make([]int, phases)
		start := p.Clock.Now()
		// Promotion filter: a row is promoted to fast memory on its
		// second touch within the current locality phase. Promoting on
		// first touch would let the cold Zipf tail thrash the fast
		// tier — the kind of workload-specific adaptation the paper's
		// DLRM discussion (§VI, citing Hildebrand et al. ISC'23) says
		// the policy must be flexible enough to make.
		touches := map[int]int{}
		lastPhase := -1
		for step, tables := range w.Steps {
			phase := 0
			if cfg.ShiftEvery > 0 {
				phase = step / cfg.ShiftEvery
			}
			if phase != lastPhase {
				touches = map[int]int{}
				lastPhase = phase
			}
			for tbl, rs := range tables {
				for _, rIdx := range rs {
					key := tbl*cfg.RowsPerTable + rIdx
					o := rows[key]
					touches[key]++
					if touches[key] >= 2 {
						pol.WillRead(o) // may migrate the row
					}
					pr := m.GetPrimary(o)
					dev := p.Fast
					if pr.Class() == dm.Slow {
						dev = p.Slow
					}
					res.DynamicTime += dev.Read(w.RowBytes, rowAccess)
					total[phase]++
					if pr.Class() == dm.Fast {
						hits[phase]++
					}
				}
			}
		}
		// Migration copies advanced the clock; fold them into the
		// dynamic gather time.
		res.DynamicTime += p.Clock.Now() - start
		for i := range hits {
			if total[i] > 0 {
				res.DynamicHit[i] = float64(hits[i]) / float64(total[i])
			}
		}
	}

	// Pass 3: NVRAM-only lower bound.
	{
		p := dlrmPlatform(w)
		for _, tables := range w.Steps {
			for range tables {
				for i := 0; i < cfg.LookupsPerStep; i++ {
					res.NVRAMTime += p.Slow.ReadTime(w.RowBytes, rowAccess)
				}
			}
		}
	}
	return res, nil
}
