package experiments

import (
	"cachedarrays/internal/engine"
	"cachedarrays/internal/models"
	"cachedarrays/internal/sched"
	"cachedarrays/internal/twolm"
)

// BeyondCNNs runs the §VI generality check: a Transformer encoder whose
// training footprint exceeds the DRAM budget, through the same operating
// modes as the CNNs. The FILO activation pattern (attention score tensors
// produced on the forward pass, consumed on the backward pass) gives the
// hints the same leverage, without any CNN-specific assumptions in the
// policy.
func BeyondCNNs(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	cfg := models.DefaultTransformerConfig()
	cfg.BatchSize = 96 // ~320 GB footprint at seq 1024
	if opts.Scale > 1 {
		cfg.BatchSize /= opts.Scale
		if cfg.BatchSize < 1 {
			cfg.BatchSize = 1
		}
	}
	t := &Table{
		Title:  "§VI — beyond CNNs: Transformer and LSTM training, iteration time (s)",
		Header: append([]string{"model"}, ModeNames...),
		Notes: []string{
			"the Transformer reproduces the full CNN mode ordering: attention activations tier like CNN activations",
			"the LSTM (proportionally smaller platform) is compute-dense: its gate matmuls dwarf state movement,",
			"so all modes tie — the runtime's indirection costs nothing on workloads that do not need tiering",
		},
	}

	// The LSTM's unrolled states (BPTT) total single-digit gigabytes, so
	// it runs against a proportionally shrunk platform to stay
	// tier-bound. The model builders are deterministic, so each cell gets
	// a private instance (concurrent cells must not share a model).
	lcfg := models.DefaultLSTMConfig()
	lcfg.SeqLen, lcfg.BatchSize = 512, 128
	budget := models.LSTM(lcfg).PeakFootprint() / 3
	lstmCfg := opts.config()
	lstmCfg.FastCapacity = budget
	lstmCfg.SlowCapacity = 16 * models.LSTM(lcfg).PeakFootprint()
	lstmCfg.TwoLM = twolmConfigFor(budget)

	rows := []struct {
		name  string
		build func() *models.Model
		cfg   engine.Config
	}{
		// One build per row resolves the display name; the per-cell
		// builds below run lazily on the scheduler workers.
		{models.Transformer(cfg).Name, func() *models.Model { return models.Transformer(cfg) }, opts.config()},
		{models.LSTM(lcfg).Name, func() *models.Model { return models.LSTM(lcfg) }, lstmCfg},
	}
	var cells []sched.Cell
	for _, rw := range rows {
		build := rw.build
		for _, mode := range ModeNames {
			cells = append(cells, sched.Cell{
				Name:  runName("beyond", rw.name, mode),
				Build: func() (*models.Model, error) { return build(), nil },
				Mode:  mode, Cfg: rw.cfg})
		}
	}
	results, err := opts.runCells(cells)
	if err != nil {
		return nil, err
	}
	for ri, rw := range rows {
		row := []string{rw.name}
		for mi := range ModeNames {
			row = append(row, secs(results[ri*len(ModeNames)+mi].IterTime))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// twolmConfigFor scales the hardware cache's tag granularity down with the
// platform so small-budget runs keep a sensible set count.
func twolmConfigFor(fastBudget int64) (c twolm.Config) {
	c = twolm.DefaultConfig()
	for c.LineSize > 4096 && fastBudget/c.LineSize < 4096 {
		c.LineSize /= 2
	}
	return c
}
