package experiments

import (
	"cachedarrays/internal/engine"
	"cachedarrays/internal/models"
	"cachedarrays/internal/twolm"
)

// BeyondCNNs runs the §VI generality check: a Transformer encoder whose
// training footprint exceeds the DRAM budget, through the same operating
// modes as the CNNs. The FILO activation pattern (attention score tensors
// produced on the forward pass, consumed on the backward pass) gives the
// hints the same leverage, without any CNN-specific assumptions in the
// policy.
func BeyondCNNs(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	cfg := models.DefaultTransformerConfig()
	cfg.BatchSize = 96 // ~320 GB footprint at seq 1024
	if opts.Scale > 1 {
		cfg.BatchSize /= opts.Scale
		if cfg.BatchSize < 1 {
			cfg.BatchSize = 1
		}
	}
	t := &Table{
		Title:  "§VI — beyond CNNs: Transformer and LSTM training, iteration time (s)",
		Header: append([]string{"model"}, ModeNames...),
		Notes: []string{
			"the Transformer reproduces the full CNN mode ordering: attention activations tier like CNN activations",
			"the LSTM (proportionally smaller platform) is compute-dense: its gate matmuls dwarf state movement,",
			"so all modes tie — the runtime's indirection costs nothing on workloads that do not need tiering",
		},
	}

	addRow := func(m *models.Model, runCfg engine.Config) error {
		row := []string{m.Name}
		for _, mode := range ModeNames {
			r, err := opts.run(runName("beyond", m.Name, mode), runCfg,
				func(c engine.Config) (*engine.Result, error) { return runCell(m, mode, c) })
			if err != nil {
				return err
			}
			row = append(row, secs(r.IterTime))
		}
		t.Rows = append(t.Rows, row)
		return nil
	}

	if err := addRow(models.Transformer(cfg), opts.config()); err != nil {
		return nil, err
	}

	// The LSTM's unrolled states (BPTT) total single-digit gigabytes, so
	// it runs against a proportionally shrunk platform to stay
	// tier-bound.
	lcfg := models.DefaultLSTMConfig()
	lcfg.SeqLen, lcfg.BatchSize = 512, 128
	lstm := models.LSTM(lcfg)
	budget := lstm.PeakFootprint() / 3
	lstmCfg := opts.config()
	lstmCfg.FastCapacity = budget
	lstmCfg.SlowCapacity = 16 * lstm.PeakFootprint()
	lstmCfg.TwoLM = twolmConfigFor(budget)
	if err := addRow(lstm, lstmCfg); err != nil {
		return nil, err
	}
	return t, nil
}

// twolmConfigFor scales the hardware cache's tag granularity down with the
// platform so small-budget runs keep a sensible set count.
func twolmConfigFor(fastBudget int64) (c twolm.Config) {
	c = twolm.DefaultConfig()
	for c.LineSize > 4096 && fastBudget/c.LineSize < 4096 {
		c.LineSize /= 2
	}
	return c
}
