package experiments

import (
	"cachedarrays/internal/models"
	"cachedarrays/internal/sched"
)

// CXLPortability runs the §VI platform-portability claim: "when migrating
// an application to a new heterogeneous memory platform, the user-defined
// policy does not have to be modified." We rerun the large-network mode
// matrix with the slow tier swapped from Optane NVRAM to CXL-attached
// remote DRAM — no policy, hint, or application change — and check the
// same orderings emerge.
func CXLPortability(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		Title:  "§VI — CXL remote memory as the slow tier, iteration time (s)",
		Header: append([]string{"model"}, "CA:0", "CA:L", "CA:LM", "CA:LMP"),
		Notes: []string{
			"identical policies and hints as the NVRAM runs — only the platform description changed",
			"CXL's symmetric bandwidth shrinks the writeback penalty, so the optimization gaps compress",
		},
	}
	modes := []string{"CA:0", "CA:L", "CA:LM", "CA:LMP"}
	cfg := opts.config()
	cfg.SlowTier = "cxl"
	var cells []sched.Cell
	for _, pm := range models.PaperLargeModels() {
		for _, mode := range modes {
			cells = append(cells, sched.Cell{
				Name:  runName("cxl", pm.Name, mode),
				Build: lazyModel(pm, opts.Scale), Mode: mode, Cfg: cfg})
		}
	}
	results, err := opts.runCells(cells)
	if err != nil {
		return nil, err
	}
	for mi, pm := range models.PaperLargeModels() {
		row := []string{pm.Name}
		for vi := range modes {
			row = append(row, secs(results[mi*len(modes)+vi].IterTime))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
