package experiments

import (
	"cachedarrays/internal/engine"
	"cachedarrays/internal/models"
)

// CXLPortability runs the §VI platform-portability claim: "when migrating
// an application to a new heterogeneous memory platform, the user-defined
// policy does not have to be modified." We rerun the large-network mode
// matrix with the slow tier swapped from Optane NVRAM to CXL-attached
// remote DRAM — no policy, hint, or application change — and check the
// same orderings emerge.
func CXLPortability(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		Title:  "§VI — CXL remote memory as the slow tier, iteration time (s)",
		Header: append([]string{"model"}, "CA:0", "CA:L", "CA:LM", "CA:LMP"),
		Notes: []string{
			"identical policies and hints as the NVRAM runs — only the platform description changed",
			"CXL's symmetric bandwidth shrinks the writeback penalty, so the optimization gaps compress",
		},
	}
	for _, pm := range models.PaperLargeModels() {
		m := buildModel(pm, opts.Scale)
		row := []string{pm.Name}
		for _, mode := range []string{"CA:0", "CA:L", "CA:LM", "CA:LMP"} {
			cfg := opts.config()
			cfg.SlowTier = "cxl"
			r, err := opts.run(runName("cxl", pm.Name, mode), cfg,
				func(c engine.Config) (*engine.Result, error) { return runCell(m, mode, c) })
			if err != nil {
				return nil, err
			}
			row = append(row, secs(r.IterTime))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
